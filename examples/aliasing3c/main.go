// Aliasing3c: audit a predictor configuration with the paper's
// three-Cs aliasing classification. For a sweep of table sizes, the
// example decomposes gshare's aliasing into compulsory, capacity and
// conflict components and prints where conflicts start to dominate —
// the observation that motivates the skewed predictor.
//
// Run with: go run ./examples/aliasing3c [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"gskew/internal/alias"
	"gskew/internal/history"
	"gskew/internal/indexfn"
	"gskew/internal/report"
	"gskew/internal/trace"
	"gskew/internal/workload"
)

func main() {
	bench := "verilog"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	spec, err := workload.ByName(bench)
	if err != nil {
		log.Fatal(err)
	}
	branches, err := workload.Materialize(spec, workload.Config{Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}

	const histBits = 4
	sizes := []uint{8, 10, 12, 14, 16}

	// One classifier per table size, all fed in a single pass.
	classifiers := make([]*alias.Classifier, len(sizes))
	for i, n := range sizes {
		classifiers[i] = alias.NewClassifier(indexfn.NewGShare(n, histBits))
	}
	ghr := history.NewGlobal(histBits)
	for _, b := range branches {
		if b.Kind == trace.Conditional {
			for _, cl := range classifiers {
				cl.Observe(b.PC, ghr.Bits())
			}
		}
		ghr.Shift(b.Taken)
	}

	t := report.NewTable(
		fmt.Sprintf("gshare aliasing decomposition, %s, %d-bit history", bench, histBits),
		"entries", "total %", "compulsory %", "capacity %", "conflict %", "dominant")
	for i, n := range sizes {
		st := classifiers[i].Stats()
		dominant := "capacity"
		if st.Conflict > st.Capacity {
			dominant = "conflict"
		}
		if st.Compulsory > st.Capacity && st.Compulsory > st.Conflict {
			dominant = "compulsory"
		}
		t.AddRow(fmt.Sprintf("%d", 1<<n),
			fmt.Sprintf("%.3f", 100*st.TotalRatio()),
			fmt.Sprintf("%.3f", 100*st.CompulsoryRatio()),
			fmt.Sprintf("%.3f", 100*st.CapacityRatio()),
			fmt.Sprintf("%.3f", 100*st.ConflictRatio()),
			dominant)
	}
	if err := t.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOnce capacity has vanished, the remaining aliasing is conflict —")
	fmt.Println("removable by associativity, which the skewed predictor provides tag-free.")
}
