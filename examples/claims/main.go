// Claims: a self-check that re-measures the paper's headline claims
// and prints a PASS/FAIL verdict for each — the executable version of
// EXPERIMENTS.md. Useful as a quick regression check after touching
// the predictors or the workload generator.
//
// Run with: go run ./examples/claims [scale]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"gskew/internal/model"
	"gskew/internal/predictor"
	"gskew/internal/sim"
	"gskew/internal/workload"
)

type claim struct {
	name  string
	check func() (bool, string)
}

func main() {
	scale := 0.05
	if len(os.Args) > 1 {
		v, err := strconv.ParseFloat(os.Args[1], 64)
		if err != nil {
			log.Fatalf("bad scale %q: %v", os.Args[1], err)
		}
		scale = v
	}

	spec, err := workload.ByName("verilog")
	if err != nil {
		log.Fatal(err)
	}
	branches, err := workload.Materialize(spec, workload.Config{Scale: scale})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s at scale %g: %d events\n\n", spec.Name, scale, len(branches))

	miss := func(p predictor.Predictor) float64 {
		res, err := sim.RunBranches(branches, p, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return res.MissPercent()
	}

	claims := []claim{
		{"partial update beats total update (section 5.1)", func() (bool, string) {
			partial := miss(predictor.MustGSkewed(predictor.Config{BankBits: 12, HistoryBits: 8}))
			total := miss(predictor.MustGSkewed(predictor.Config{
				BankBits: 12, HistoryBits: 8, Policy: predictor.TotalUpdate,
			}))
			return partial <= total, fmt.Sprintf("partial %.3f%% vs total %.3f%%", partial, total)
		}},
		{"3N gskewed(partial) ~ N-entry fully-associative LRU (figure 8)", func() (bool, string) {
			sk := miss(predictor.MustGSkewed(predictor.Config{BankBits: 12, HistoryBits: 4}))
			fa := miss(predictor.NewAssocLRU(1<<12, 4, 2))
			return sk <= fa*1.15, fmt.Sprintf("gskewed %.3f%% vs assoc-lru %.3f%%", sk, fa)
		}},
		{"e-gskew rescues long histories (figure 12)", func() (bool, string) {
			plain := miss(predictor.MustGSkewed(predictor.Config{BankBits: 12, HistoryBits: 14}))
			enh := miss(predictor.MustGSkewed(predictor.Config{
				BankBits: 12, HistoryBits: 14, Enhanced: true,
			}))
			return enh < plain, fmt.Sprintf("egskew %.3f%% vs gskewed %.3f%%", enh, plain)
		}},
		{"3x4k e-gskew within 10%% of a 32k gshare (figure 12)", func() (bool, string) {
			enh := miss(predictor.MustGSkewed(predictor.Config{
				BankBits: 12, HistoryBits: 12, Enhanced: true,
			}))
			gsh := miss(predictor.MustSpec(predictor.Spec{Family: "gshare", N: 15, Hist: 12, Ctr: 2}))
			return enh <= gsh*1.10, fmt.Sprintf("egskew %.3f%% vs 32k gshare %.3f%%", enh, gsh)
		}},
		{"5 banks add less than 3 banks did (section 5.1)", func() (bool, string) {
			one := miss(predictor.MustSpec(predictor.Spec{Family: "gshare", N: 10, Hist: 4, Ctr: 2}))
			three := miss(predictor.MustGSkewed(predictor.Config{Banks: 3, BankBits: 10, HistoryBits: 4}))
			five := miss(predictor.MustGSkewed(predictor.Config{Banks: 5, BankBits: 10, HistoryBits: 4}))
			return one-three >= three-five,
				fmt.Sprintf("1 bank %.3f%%, 3 banks %.3f%%, 5 banks %.3f%%", one, three, five)
		}},
		{"analytical model P_sk < P_dm at small p (figures 9-10)", func() (bool, string) {
			p := 0.1
			return model.PSkewWorstCase(p) < model.PDirectWorstCase(p),
				fmt.Sprintf("P_sk(0.1)=%.4f vs P_dm(0.1)=%.4f",
					model.PSkewWorstCase(p), model.PDirectWorstCase(p))
		}},
		{"model crossover near N/10 (section 5.2)", func() (bool, string) {
			n := 3 * 4096
			d := model.CrossoverDistance(n, 0.5)
			return d > n/20 && d < n/5, fmt.Sprintf("crossover at D=%d for N=%d", d, n)
		}},
	}

	failures := 0
	for _, c := range claims {
		ok, detail := c.check()
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %s\n       %s\n", verdict, c.name, detail)
	}
	fmt.Printf("\n%d/%d claims hold\n", len(claims)-failures, len(claims))
	if failures > 0 {
		os.Exit(1)
	}
}
