// Customworkload: build a synthetic program by hand with the cfg
// builder — a nested-loop kernel with a history-correlated branch —
// and show that a global-history predictor learns the correlation
// while an address-only (bimodal) predictor cannot.
//
// Run with: go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"gskew/internal/cfg"
	"gskew/internal/predictor"
	"gskew/internal/sim"
	"gskew/internal/trace"
)

func main() {
	// Program sketch (one procedure):
	//
	//	for outer := 0; outer < ~40; outer++ {      // long scan loop
	//	    if guard (97% taken) { ... }
	//	    for i := 0; i < 6; i++ {                // fixed inner loop
	//	        if corr { ... }   // outcome = parity of last 2 outcomes
	//	    }
	//	}
	b := cfg.NewBuilder(0x1000)
	guard := b.NewSite(cfg.Biased{P: 0.97})
	guardBlk := b.NewBlock(8)
	corr := b.NewSite(cfg.Correlated{Mask: 0b11})
	corrBlk := b.NewBlock(4)
	innerBack := b.NewSite(cfg.Biased{P: 0.85}) // bias annotation only
	outerBack := b.NewSite(cfg.Biased{P: 0.97})

	inner := &cfg.Loop{
		Site:  innerBack,
		Body:  []cfg.Node{&cfg.If{Site: corr, Then: []cfg.Node{corrBlk}}},
		Trips: cfg.TripDist{Min: 6}, // fixed six trips
	}
	outer := &cfg.Loop{
		Site: outerBack,
		Body: []cfg.Node{
			&cfg.If{Site: guard, Then: []cfg.Node{guardBlk}},
			inner,
		},
		Trips: cfg.TripDist{Min: 20, MeanExtra: 20},
	}
	b.AddProc("kernel", []cfg.Node{outer})
	prog, err := b.Build(0)
	if err != nil {
		log.Fatal(err)
	}

	// Walk the program into a bounded trace.
	walker := cfg.NewWalker(prog, 7)
	var branches []trace.Branch
	branches = walker.EmitConditionals(branches, 200000)
	st, err := trace.Measure(trace.NewSliceSource(branches))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hand-built program: %d dynamic / %d static conditional branches\n\n",
		st.Dynamic, st.Static)

	// The correlated branch is invisible to an address-only predictor
	// but trivial for any global-history scheme.
	preds := []predictor.Predictor{
		predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 10, Ctr: 2}),
		predictor.MustSpec(predictor.Spec{Family: "gshare", N: 10, Hist: 4, Ctr: 2}),
		predictor.MustGSkewed(predictor.Config{BankBits: 8, HistoryBits: 4}),
	}
	for _, p := range preds {
		res, err := sim.RunBranches(branches, p, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28v miss %.3f%%\n", p, res.MissPercent())
	}
	fmt.Println("\nbimodal cannot learn the parity branch; history-based predictors can.")
}
