// Package examples_test smoke-tests every example program: each must
// build, exit 0, and print non-empty, deterministic output. The
// examples double as executable documentation, so a broken one is a
// broken document.
package examples_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// cases maps example directory -> extra arguments. Arguments pick the
// fastest configuration each example supports so the whole suite stays
// in CI budget.
var cases = map[string][]string{
	"quickstart":     nil,
	"customworkload": nil,
	"claims":         {"0.005"},
	"aliasing3c":     {"verilog"},
	"shootout":       {"verilog"},
}

func TestExamplesRunCleanAndDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build and run full simulations; skipped in -short")
	}
	binDir := t.TempDir()
	for dir, args := range cases {
		dir, args := dir, args
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			if _, err := os.Stat(dir); err != nil {
				t.Fatalf("example directory missing: %v", err)
			}
			bin := filepath.Join(binDir, dir)
			build := exec.Command("go", "build", "-o", bin, "./"+dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			runOnce := func() string {
				t.Helper()
				out, err := exec.Command(bin, args...).Output()
				if err != nil {
					t.Fatalf("run %v: %v", args, err)
				}
				return string(out)
			}
			first := runOnce()
			if len(first) == 0 {
				t.Fatal("example printed nothing to stdout")
			}
			if second := runOnce(); second != first {
				t.Errorf("output not deterministic across runs:\n--- first ---\n%s--- second ---\n%s", first, second)
			}
		})
	}
}
