// Quickstart: build a skewed branch predictor through the public API,
// drive it with one of the bundled IBS-like workloads, and compare it
// against gshare.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gskew"
)

func main() {
	// 1. Materialise a workload. The suite mirrors the paper's Table 1
	// benchmarks; Scale trades trace length for runtime (1.0 is the
	// paper's full length).
	spec, err := gskew.BenchmarkByName("groff")
	if err != nil {
		log.Fatal(err)
	}
	branches, err := gskew.Materialize(spec, gskew.WorkloadConfig{Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d branch events\n", spec.Name, len(branches))

	// 2. Build predictors. The skewed predictor (the paper's
	// contribution) uses 3 banks of 4k two-bit counters with the
	// partial-update policy; the baseline is a 16k-entry gshare.
	gskewed := gskew.MustGSkewed(gskew.GSkewedConfig{
		BankBits:    12, // 2^12 = 4096 entries per bank
		HistoryBits: 6,
		Policy:      gskew.PartialUpdate,
	})
	gshare := gskew.NewGShare(14, 6, 2) // 16k entries, 6 history bits

	// 3. Run both over the same trace and report.
	for _, p := range []gskew.Predictor{gshare, gskewed} {
		res, err := gskew.Run(branches, p, gskew.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34v storage %5.1f KiB  miss %.3f%%\n",
			p, float64(p.StorageBits())/8192, res.MissPercent())
	}

	// 4. Or regenerate a paper artifact programmatically.
	fmt.Println("\nFigure 3, regenerated:")
	ctx := &gskew.ExperimentContext{}
	if err := gskew.RunExperiment("fig3", ctx, logWriter{}); err != nil {
		log.Fatal(err)
	}
}

// logWriter adapts stdout printing for the experiment renderer.
type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
