// Shootout: compare every predictor organisation in the repository on
// one workload, at matched storage budgets, across two history
// lengths — a compact version of the paper's evaluation tables.
//
// Run with: go run ./examples/shootout [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"gskew/internal/predictor"
	"gskew/internal/report"
	"gskew/internal/sim"
	"gskew/internal/workload"
)

func main() {
	bench := "gs"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	spec, err := workload.ByName(bench)
	if err != nil {
		log.Fatal(err)
	}
	branches, err := workload.Materialize(spec, workload.Config{Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}

	for _, hist := range []uint{4, 10} {
		// ~32 Kbit budget: 16k 2-bit counters single-bank, or
		// 3 x 4k 2-bit counters (24 Kbit) skewed.
		preds := []predictor.Predictor{
			predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 14, Ctr: 2}),
			predictor.MustSpec(predictor.Spec{Family: "gselect", N: 14, Hist: hist, Ctr: 2}),
			predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: hist, Ctr: 2}),
			predictor.MustGSkewed(predictor.Config{
				BankBits: 12, HistoryBits: hist, Policy: predictor.TotalUpdate,
			}),
			predictor.MustGSkewed(predictor.Config{
				BankBits: 12, HistoryBits: hist, Policy: predictor.PartialUpdate,
			}),
			predictor.MustGSkewed(predictor.Config{
				BankBits: 12, HistoryBits: hist, Policy: predictor.PartialUpdate, Enhanced: true,
			}),
			predictor.NewAssocLRU(4096, hist, 2),
			predictor.NewUnaliased(hist, 2),
		}
		results, err := sim.Compare(branches, preds, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		t := report.NewTable(
			fmt.Sprintf("%s, %d-bit history (%d conditional branches)",
				bench, hist, results[0].Conditionals),
			"predictor", "storage Kbit", "miss %")
		for i, p := range preds {
			t.AddRow(fmt.Sprintf("%v", p),
				fmt.Sprintf("%.0f", float64(p.StorageBits())/1024),
				fmt.Sprintf("%.3f", results[i].MissPercent()))
		}
		if err := t.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
