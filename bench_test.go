// Package gskew_test is the benchmark harness that regenerates every
// table and figure of the paper (see DESIGN.md's per-experiment index)
// under `go test -bench`. Each BenchmarkTableN/BenchmarkFigN runs the
// corresponding experiment end to end — workload generation, predictor
// simulation, rendering — and reports headline numbers as custom
// metrics, so `go test -bench=. -benchmem` reproduces the paper's
// artifacts and their costs in one sweep.
//
// Benchmarks use a reduced workload scale to keep the sweep tractable;
// run `cmd/experiments -all -scale 1.0` to regenerate at the paper's
// full trace lengths.
package gskew_test

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"os"
	"strconv"
	"testing"

	"gskew/internal/experiments"
	"gskew/internal/kernel"
	"gskew/internal/predictor"
	"gskew/internal/report"
	"gskew/internal/sim"
	"gskew/internal/trace"
	"gskew/internal/workload"
)

// benchScale keeps each experiment benchmark to roughly a second.
const benchScale = 0.01

// -jobs bounds the concurrent simulation cells of every experiment
// benchmark, mirroring `cmd/experiments -jobs`. 0 = GOMAXPROCS;
// 1 preserves the old fully-serial behaviour.
var benchJobs = flag.Int("jobs", 0, "max concurrent simulation cells in experiment benchmarks (0 = GOMAXPROCS)")

// benchContext returns the reduced-scale two-benchmark context the
// experiment benchmarks run on, honouring -jobs.
func benchContext() *experiments.Context {
	return &experiments.Context{
		Scale:      benchScale,
		Benchmarks: []string{"verilog", "nroff"},
		Sched:      experiments.NewSched(*benchJobs),
	}
}

// runExperiment executes one registered experiment b.N times and
// reports the misprediction (or miss-ratio) metrics of the final run.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var result experiments.Renderable
	for i := 0; i < b.N; i++ {
		// A fresh context per iteration so trace generation cost is
		// included (it is part of regenerating the artifact).
		result, err = e.Run(benchContext())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportHeadline(b, result)
	if err := result.WriteText(io.Discard); err != nil {
		b.Fatal(err)
	}
}

// reportHeadline extracts representative numbers from a result and
// attaches them as benchmark metrics: the first and last numeric cell
// of the last row of each table (or figure series endpoints).
func reportHeadline(b *testing.B, r experiments.Renderable) {
	b.Helper()
	switch v := r.(type) {
	case *report.Table:
		if len(v.Rows) == 0 {
			return
		}
		last := v.Rows[len(v.Rows)-1]
		for i := len(last) - 1; i > 0; i-- {
			if f, err := strconv.ParseFloat(trimPct(last[i]), 64); err == nil {
				b.ReportMetric(f, "last_row_value")
				return
			}
		}
	case *report.Figure:
		if len(v.Series) == 0 || len(v.Series[0].Ys) == 0 {
			return
		}
		s := v.Series[len(v.Series)-1]
		b.ReportMetric(s.Ys[len(s.Ys)-1], "final_point")
	case *experiments.Bundle:
		if len(v.Items) > 0 {
			reportHeadline(b, v.Items[len(v.Items)-1])
		}
	}
}

func trimPct(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '%' || s[len(s)-1] == ' ') {
		s = s[:len(s)-1]
	}
	return s
}

// One benchmark per paper artifact.

func BenchmarkTable1(b *testing.B)  { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)  { runExperiment(b, "table2") }
func BenchmarkFig1(b *testing.B)    { runExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)    { runExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)    { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)    { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)    { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)    { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)    { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)    { runExperiment(b, "fig8") }
func BenchmarkFig9_10(b *testing.B) { runExperiment(b, "fig9"); runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)   { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)   { runExperiment(b, "fig12") }

func BenchmarkAblationBanks(b *testing.B)    { runExperiment(b, "ablation-banks") }
func BenchmarkAblationPolicy(b *testing.B)   { runExperiment(b, "ablation-policy") }
func BenchmarkAblationCounters(b *testing.B) { runExperiment(b, "ablation-counters") }
func BenchmarkAblationEnhanced(b *testing.B) { runExperiment(b, "ablation-enhanced-bank0") }

// Predictor-throughput micro-benchmarks: cost per predicted branch for
// each organisation at the paper's reference sizes.

func benchPredictor(b *testing.B, p predictor.Predictor) {
	b.Helper()
	spec, err := workload.ByName("verilog")
	if err != nil {
		b.Fatal(err)
	}
	branches, err := workload.Materialize(spec, workload.Config{Scale: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	done := 0
	for done < b.N {
		chunk := len(branches)
		if b.N-done < chunk {
			chunk = b.N - done
		}
		if _, err := sim.RunBranches(branches[:chunk], p, sim.Options{}); err != nil {
			b.Fatal(err)
		}
		done += chunk
	}
}

func BenchmarkPredictGShare16k(b *testing.B) {
	benchPredictor(b, predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: 12, Ctr: 2}))
}

func BenchmarkPredictGSkewed3x4k(b *testing.B) {
	benchPredictor(b, predictor.MustGSkewed(predictor.Config{BankBits: 12, HistoryBits: 12}))
}

func BenchmarkPredictEGSkew3x4k(b *testing.B) {
	benchPredictor(b, predictor.MustGSkewed(predictor.Config{
		BankBits: 12, HistoryBits: 12, Enhanced: true,
	}))
}

func BenchmarkPredictAssocLRU4k(b *testing.B) {
	benchPredictor(b, predictor.NewAssocLRU(4096, 12, 2))
}

func BenchmarkPredictUnaliased(b *testing.B) {
	benchPredictor(b, predictor.NewUnaliased(12, 2))
}

// Extension-experiment benchmarks (paper future-work directions).

func BenchmarkExtPAs(b *testing.B)          { runExperiment(b, "ext-pas") }
func BenchmarkExtHybrid(b *testing.B)       { runExperiment(b, "ext-hybrid") }
func BenchmarkExtConfidence(b *testing.B)   { runExperiment(b, "ext-confidence") }
func BenchmarkExtEncoding(b *testing.B)     { runExperiment(b, "ext-encoding") }
func BenchmarkExtOpt(b *testing.B)          { runExperiment(b, "ext-opt") }
func BenchmarkExtPipeline(b *testing.B)     { runExperiment(b, "ext-pipeline") }
func BenchmarkExtInterference(b *testing.B) { runExperiment(b, "ext-interference") }
func BenchmarkExtQuantum(b *testing.B)      { runExperiment(b, "ext-quantum") }
func BenchmarkExtFlush(b *testing.B)        { runExperiment(b, "ext-flush") }
func BenchmarkExtModelM(b *testing.B)       { runExperiment(b, "ext-model-m") }
func BenchmarkExtVariance(b *testing.B)     { runExperiment(b, "ext-variance") }
func BenchmarkExtRivals(b *testing.B)       { runExperiment(b, "ext-rivals") }
func BenchmarkExtEV8(b *testing.B)          { runExperiment(b, "ext-ev8") }
func BenchmarkExtBestHist(b *testing.B)     { runExperiment(b, "ext-besthist") }
func BenchmarkExtSetAssoc(b *testing.B)     { runExperiment(b, "ext-setassoc") }

// Single-pass vs sequential simulation: the same predictor set driven
// over the same trace by N sim.RunBranches calls versus one
// sim.RunManyBranches call. The /Many variant decodes the trace and
// maintains global history once per event instead of once per
// (event, predictor), which is where the experiment-suite speedup
// comes from.

func manyBenchPredictors() []predictor.Predictor {
	return []predictor.Predictor{
		predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 14, Ctr: 2}),
		predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: 12, Ctr: 2}),
		predictor.MustSpec(predictor.Spec{Family: "gselect", N: 14, Hist: 7, Ctr: 2}),
		predictor.MustGSkewed(predictor.Config{BankBits: 12, HistoryBits: 12}),
		predictor.MustGSkewed(predictor.Config{BankBits: 12, HistoryBits: 12, Enhanced: true}),
		predictor.MustGSkewed(predictor.Config{
			BankBits: 12, HistoryBits: 12, Policy: predictor.TotalUpdate,
		}),
	}
}

func manyBenchTrace(b *testing.B) []trace.Branch {
	b.Helper()
	spec, err := workload.ByName("verilog")
	if err != nil {
		b.Fatal(err)
	}
	branches, err := workload.Materialize(spec, workload.Config{Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	return branches
}

func BenchmarkRunManyVsSequential(b *testing.B) {
	branches := manyBenchTrace(b)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range manyBenchPredictors() {
				if _, err := sim.RunBranches(branches, p, sim.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("runmany", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunManyBranches(branches, manyBenchPredictors(), sim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Scheduler benchmark: the same four-experiment slice of the suite run
// serially (jobs=1) and with the worker pool wide open (jobs=0, i.e.
// GOMAXPROCS). On a multi-core host the second sub-benchmark shows the
// wall-clock win; on one core the two match, demonstrating that the
// pool adds no measurable overhead.

func benchSchedule(b *testing.B, jobs int) {
	b.Helper()
	ids := []string{"fig5", "fig6", "fig7", "fig12"}
	exps := make([]experiments.Experiment, len(ids))
	for i, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		exps[i] = e
	}
	for i := 0; i < b.N; i++ {
		ctx := &experiments.Context{
			Scale:      benchScale,
			Benchmarks: []string{"verilog", "nroff"},
			Sched:      experiments.NewSched(jobs),
		}
		if _, err := experiments.RunAll(ctx, exps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleSerial(b *testing.B)   { benchSchedule(b, 1) }
func BenchmarkScheduleParallel(b *testing.B) { benchSchedule(b, 0) }

// Compiled-kernel benchmarks: the same simulation driven through the
// compiled fast path (internal/kernel) and through the generic
// interface path (Options.NoKernel). `make bench` runs these and
// records the comparison in BENCH_kernel.json.

// kernelBenchTrace materialises the shared step-loop workload once.
func kernelBenchTrace(b *testing.B) []trace.Branch {
	b.Helper()
	spec, err := workload.ByName("verilog")
	if err != nil {
		b.Fatal(err)
	}
	branches, err := workload.Materialize(spec, workload.Config{Scale: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	return branches
}

// benchStepLoop runs the full simulation loop (trace iteration,
// history maintenance, predict, train) over one predictor on both
// paths. The kernel/interface ratio is the headline speedup of the
// compiled layer.
func benchStepLoop(b *testing.B, mk func() predictor.Predictor) {
	branches := kernelBenchTrace(b)
	for _, path := range []struct {
		name     string
		noKernel bool
	}{
		{"kernel", false},
		{"interface", true},
	} {
		b.Run(path.name, func(b *testing.B) {
			p := mk()
			opts := sim.Options{NoKernel: path.noKernel}
			b.ReportAllocs()
			b.ResetTimer()
			done := 0
			for done < b.N {
				chunk := len(branches)
				if b.N-done < chunk {
					chunk = b.N - done
				}
				if _, err := sim.RunBranches(branches[:chunk], p, opts); err != nil {
					b.Fatal(err)
				}
				done += chunk
			}
		})
	}
}

func BenchmarkKernelBimodal16k(b *testing.B) {
	benchStepLoop(b, func() predictor.Predictor {
		return predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 14, Ctr: 2})
	})
}

func BenchmarkKernelGShare16k(b *testing.B) {
	benchStepLoop(b, func() predictor.Predictor {
		return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: 12, Ctr: 2})
	})
}

func BenchmarkKernelGSelect16k(b *testing.B) {
	benchStepLoop(b, func() predictor.Predictor {
		return predictor.MustSpec(predictor.Spec{Family: "gselect", N: 14, Hist: 6, Ctr: 2})
	})
}

func BenchmarkKernelGSkewed3x4k(b *testing.B) {
	benchStepLoop(b, func() predictor.Predictor {
		return predictor.MustGSkewed(predictor.Config{BankBits: 12, HistoryBits: 12})
	})
}

func BenchmarkKernelEGSkew3x4k(b *testing.B) {
	benchStepLoop(b, func() predictor.Predictor {
		return predictor.MustGSkewed(predictor.Config{BankBits: 12, HistoryBits: 12, Enhanced: true})
	})
}

func BenchmarkKernel2BcGSkew4x4k(b *testing.B) {
	benchStepLoop(b, func() predictor.Predictor {
		return predictor.MustSpec(predictor.Spec{Family: "2bcgskew", N: 12, HistShort: 8, Hist: 16})
	})
}

// BenchmarkKernelStepBatch measures the compiled step loop alone — no
// trace decoding, no history maintenance — on a prepared step block.
// This is the ns/branch floor of the predictor inner loop.
func BenchmarkKernelStepBatch(b *testing.B) {
	branches := kernelBenchTrace(b)
	for _, cfg := range []struct {
		name string
		mk   func() predictor.Predictor
	}{
		{"gshare16k", func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: 12, Ctr: 2})
		}},
		{"gskewed3x4k", func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{BankBits: 12, HistoryBits: 12})
		}},
		{"egskew3x4k", func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{BankBits: 12, HistoryBits: 12, Enhanced: true})
		}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			p := cfg.mk()
			kern, ok := kernel.Compile(p, p.HistoryBits())
			if !ok {
				b.Fatal("predictor did not compile")
			}
			steps := make([]kernel.Step, 0, len(branches))
			hist, mask := uint64(0), uint64(1)<<p.HistoryBits()-1
			for _, br := range branches {
				if br.Kind == trace.Conditional {
					steps = append(steps, kernel.Step{PC: br.PC, Hist: hist, Taken: br.Taken})
				}
				hist = hist << 1 & mask
				if br.Taken {
					hist |= 1
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			done := 0
			for done < b.N {
				chunk := len(steps)
				if b.N-done < chunk {
					chunk = b.N - done
				}
				kern.StepBatch(steps[:chunk])
				done += chunk
			}
		})
	}
}

// BenchmarkKernelRunMany drives the paper's main five-predictor
// comparison set in one pass on both paths — the shape every sweep
// experiment runs.
func BenchmarkKernelRunMany(b *testing.B) {
	branches := kernelBenchTrace(b)
	mk := func() []predictor.Predictor {
		return []predictor.Predictor{
			predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 14, Ctr: 2}),
			predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: 12, Ctr: 2}),
			predictor.MustSpec(predictor.Spec{Family: "gselect", N: 14, Hist: 6, Ctr: 2}),
			predictor.MustGSkewed(predictor.Config{BankBits: 12, HistoryBits: 12}),
			predictor.MustGSkewed(predictor.Config{BankBits: 12, HistoryBits: 12, Enhanced: true}),
		}
	}
	for _, path := range []struct {
		name     string
		noKernel bool
	}{
		{"kernel", false},
		{"interface", true},
	} {
		b.Run(path.name, func(b *testing.B) {
			preds := mk()
			opts := sim.Options{NoKernel: path.noKernel}
			b.ReportAllocs()
			b.ResetTimer()
			done := 0
			for done < b.N {
				chunk := len(branches)
				if b.N-done < chunk {
					chunk = b.N - done
				}
				if _, err := sim.RunManyBranches(branches[:chunk], preds, opts); err != nil {
					b.Fatal(err)
				}
				done += chunk
			}
		})
	}
}

// BenchmarkKernelStepBatch64 measures the bitsliced 64-lane group
// kernel on a prepared step block. b.N counts lane-steps (steps ×
// lanes), so ns/op is directly comparable per-lane against the scalar
// BenchmarkKernelStepBatch numbers: the lanes64 sub-benchmark must
// come in under the matching scalar kernel for the transposition to
// pay (bench_guard_test.go enforces this from the committed
// snapshot).
func BenchmarkKernelStepBatch64(b *testing.B) {
	branches := kernelBenchTrace(b)
	for _, cfg := range []struct {
		name string
		mk   func() predictor.Predictor
	}{
		{"gshare16k", func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: 12, Ctr: 2})
		}},
		{"egskew3x4k", func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{BankBits: 12, HistoryBits: 12, Enhanced: true})
		}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			probe := cfg.mk()
			steps := make([]kernel.Step, 0, len(branches))
			hist, mask := uint64(0), uint64(1)<<probe.HistoryBits()-1
			for _, br := range branches {
				if br.Kind == trace.Conditional {
					steps = append(steps, kernel.Step{PC: br.PC, Hist: hist, Taken: br.Taken})
				}
				hist = hist << 1 & mask
				if br.Taken {
					hist |= 1
				}
			}
			for _, lanes := range []int{1, 8, 64} {
				b.Run("lanes"+strconv.Itoa(lanes), func(b *testing.B) {
					preds := make([]predictor.Predictor, lanes)
					hists := make([]uint, lanes)
					for i := range preds {
						preds[i] = cfg.mk()
						hists[i] = probe.HistoryBits()
					}
					g, ok := kernel.CompileGroup64(preds, hists)
					if !ok {
						b.Fatal("predictors did not compile to a bitsliced group")
					}
					mis := make([]int, lanes)
					b.ReportAllocs()
					b.ResetTimer()
					done := 0
					for done < b.N {
						chunk := len(steps) * lanes
						if b.N-done < chunk {
							chunk = b.N - done
						}
						g.StepBatch64(steps[:(chunk+lanes-1)/lanes], mis)
						done += chunk
					}
				})
			}
		})
	}
}

// Segment-parallel and bitsliced whole-trace benchmarks. `make bench`
// snapshots these (the ^BenchmarkSim pattern) into BENCH_sim.json:
// wall-clock for one trace at segment counts K=1/2/4/8, and for a
// 64-predictor sweep with the bitsliced group path off and on. On a
// single-core host the segmented numbers document parity rather than
// speedup — the engine's value there is that it is bit-identical, not
// faster.

// simBenchTrace materialises the longer trace the whole-trace
// benchmarks run on; long enough that segment warm-up (default 4096
// branches per boundary) is amortised.
func simBenchTrace(b *testing.B) []trace.Branch {
	b.Helper()
	spec, err := workload.ByName("verilog")
	if err != nil {
		b.Fatal(err)
	}
	branches, err := workload.Materialize(spec, workload.Config{Scale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	return branches
}

// BenchmarkSimSegmented runs one gshare predictor over the whole
// trace with segment-parallel simulation forced to K segments; ns/op
// is per branch. K1 is the serial baseline (Segments=1 bypasses the
// segmented engine entirely).
func BenchmarkSimSegmented(b *testing.B) {
	branches := simBenchTrace(b)
	for _, k := range []int{1, 2, 4, 8} {
		b.Run("K"+strconv.Itoa(k), func(b *testing.B) {
			p := predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: 12, Ctr: 2})
			opts := sim.Options{Segments: k}
			b.ReportAllocs()
			b.ResetTimer()
			done := 0
			for done < b.N {
				chunk := len(branches)
				if b.N-done < chunk {
					chunk = b.N - done
				}
				if _, err := sim.RunManyBranches(branches[:chunk], []predictor.Predictor{p}, opts); err != nil {
					b.Fatal(err)
				}
				done += chunk
			}
		})
	}
}

// BenchmarkSimBitsliced sweeps 64 same-shape gshare predictors over
// one trace with the bitsliced group path disabled (64 scalar kernel
// cells) and enabled (one 64-lane Group64); ns/op is per branch per
// predictor.
func BenchmarkSimBitsliced(b *testing.B) {
	branches := simBenchTrace(b)
	const lanes = 64
	for _, path := range []struct {
		name       string
		noBitslice bool
	}{
		{"lanes1", true},
		{"lanes64", false},
	} {
		b.Run(path.name, func(b *testing.B) {
			preds := make([]predictor.Predictor, lanes)
			for i := range preds {
				preds[i] = predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: 12, Ctr: 2})
			}
			opts := sim.Options{NoBitslice: path.noBitslice}
			b.ReportAllocs()
			b.ResetTimer()
			done := 0
			for done < b.N {
				chunk := len(branches) * lanes
				if b.N-done < chunk {
					chunk = b.N - done
				}
				n := (chunk + lanes - 1) / lanes
				if _, err := sim.RunManyBranches(branches[:n], preds, opts); err != nil {
					b.Fatal(err)
				}
				done += chunk
			}
		})
	}
}

// BenchmarkTraceDecode compares the per-record and block binary
// decoders; ns/op is per decoded record.
func BenchmarkTraceDecode(b *testing.B) {
	branches := kernelBenchTrace(b)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		b.Fatal(err)
	}
	for _, br := range branches {
		if err := w.Write(br); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()

	b.Run("next", func(b *testing.B) {
		b.ReportAllocs()
		done := 0
		for done < b.N {
			r, err := trace.NewReader(bytes.NewReader(enc))
			if err != nil {
				b.Fatal(err)
			}
			for done < b.N {
				if _, err := r.Next(); err != nil {
					if errors.Is(err, io.EOF) {
						break
					}
					b.Fatal(err)
				}
				done++
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		dst := make([]trace.Branch, 4096)
		b.ReportAllocs()
		done := 0
		for done < b.N {
			r, err := trace.NewReader(bytes.NewReader(enc))
			if err != nil {
				b.Fatal(err)
			}
			for done < b.N {
				n, err := r.NextBatch(dst)
				done += n
				if err != nil {
					if errors.Is(err, io.EOF) {
						break
					}
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkTraceCodec compares the trace codecs and readers end to
// end; ns/op is per decoded record. `make bench` snapshots this family
// (the ^BenchmarkTrace pattern) into BENCH_trace.json, and
// bench_guard_test.go holds the columnar block decoder to beating the
// varint decoder and the mmap batch path to zero allocations.
//
//   - varint-batch / columnar-batch: NextBatch through a streaming
//     reader over an in-memory buffer (bufio-equivalent byte source)
//   - columnar-next: the per-record path over the same stream
//   - mmap-varint / mmap-columnar: NextBatch through the zero-copy
//     mapped reader over a real file
func BenchmarkTraceCodec(b *testing.B) {
	branches := simBenchTrace(b)
	varint := encodeBench(b, branches, false)
	columnar := encodeBench(b, branches, true)
	dir := b.TempDir()
	paths := map[string]string{}
	for name, enc := range map[string][]byte{"v.trace": varint, "v.ctrace": columnar} {
		p := dir + "/" + name
		if err := os.WriteFile(p, enc, 0o644); err != nil {
			b.Fatal(err)
		}
		paths[name] = p
	}

	type batchSource interface {
		NextBatch([]trace.Branch) (int, error)
	}
	drain := func(b *testing.B, open func() (batchSource, func(), error)) {
		dst := make([]trace.Branch, 4096)
		b.ReportAllocs()
		b.ResetTimer()
		done := 0
		for done < b.N {
			r, closer, err := open()
			if err != nil {
				b.Fatal(err)
			}
			for done < b.N {
				n, err := r.NextBatch(dst)
				done += n
				if err != nil {
					if errors.Is(err, io.EOF) {
						break
					}
					b.Fatal(err)
				}
			}
			closer()
		}
	}

	b.Run("varint-batch", func(b *testing.B) {
		drain(b, func() (batchSource, func(), error) {
			r, err := trace.NewReader(bytes.NewReader(varint))
			return r, func() {}, err
		})
	})
	b.Run("columnar-batch", func(b *testing.B) {
		drain(b, func() (batchSource, func(), error) {
			r, err := trace.NewColumnarReader(bytes.NewReader(columnar))
			return r, func() {}, err
		})
	})
	b.Run("columnar-next", func(b *testing.B) {
		b.ReportAllocs()
		done := 0
		for done < b.N {
			r, err := trace.NewColumnarReader(bytes.NewReader(columnar))
			if err != nil {
				b.Fatal(err)
			}
			for done < b.N {
				if _, err := r.Next(); err != nil {
					if errors.Is(err, io.EOF) {
						break
					}
					b.Fatal(err)
				}
				done++
			}
		}
	})
	b.Run("mmap-varint", func(b *testing.B) {
		drain(b, func() (batchSource, func(), error) {
			m, err := trace.MapFile(paths["v.trace"])
			if err != nil {
				return nil, nil, err
			}
			return m, func() { m.Close() }, nil
		})
	})
	b.Run("mmap-columnar", func(b *testing.B) {
		drain(b, func() (batchSource, func(), error) {
			m, err := trace.MapFile(paths["v.ctrace"])
			if err != nil {
				return nil, nil, err
			}
			return m, func() { m.Close() }, nil
		})
	})
}

// encodeBench serialises branches through one of the binary writers.
func encodeBench(b *testing.B, branches []trace.Branch, columnar bool) []byte {
	b.Helper()
	if columnar {
		enc, err := trace.EncodeColumnar(branches)
		if err != nil {
			b.Fatal(err)
		}
		return enc
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		b.Fatal(err)
	}
	for _, br := range branches {
		if err := w.Write(br); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}
