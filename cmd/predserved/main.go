// Command predserved serves the simulator over HTTP: a long-running
// prediction/experiment service with a content-addressed result store,
// so many clients sweeping overlapping (spec, trace, options) cells
// pay for each simulation once.
//
//	predserved -addr 127.0.0.1:8149 -store-dir /var/cache/gskew
//
//	curl -s localhost:8149/v1/specs | jq .
//	curl -s -X POST localhost:8149/v1/simulate -d '{
//	    "specs": ["gshare:n=14,k=12", "egskew:n=12,k=12"],
//	    "bench": "groff", "scale": 0.01}' | jq .
//
// Endpoints, cache-key semantics and the wire format are documented in
// the README's Serving section. The obs debug surface (/metrics,
// /debug/vars, /debug/pprof) is mounted on the same listener. On
// SIGTERM or SIGINT the server stops accepting connections, drains
// in-flight requests for up to -drain, then exits 0.
//
// Cluster mode (-cluster, -peers, -peers-file) shards the result store
// and trace pool across a static set of nodes by consistent hashing;
// see the README's Cluster section. A node started with -cluster but
// no peers boots on a self-only ring and waits for a topology push
// (POST /internal/v1/topology, e.g. via predload topology).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gskew/internal/cli"
	"gskew/internal/cluster"
	"gskew/internal/experiments"
	"gskew/internal/server"
	"gskew/internal/store"
	"gskew/internal/tracepool"
)

func main() { cli.Main("predserved", run) }

// Test hooks: in-process tests (cmd/predserved/main_test.go) set these
// to learn the bound address and to trigger the drain path without
// delivering a real signal. Both are nil in production.
var (
	notifyReady  func(addr string)
	testShutdown <-chan struct{}
)

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("predserved", stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8149", "listen address (host:port; port 0 picks a free one)")
		storeDir   = fs.String("store-dir", "", "on-disk result store directory (empty = memory-only store)")
		memEntries = fs.Int("mem-entries", server.DefaultMemEntries, "result store in-memory tier capacity (entries)")
		jobs       = fs.Int("jobs", 0, "max concurrent simulation passes (0 = GOMAXPROCS)")
		maxBody    = fs.Int64("max-body", server.DefaultMaxBodyBytes, "request body size limit (bytes)")
		timeout    = fs.Duration("timeout", server.DefaultSimTimeout, "per-request simulation queue timeout")
		sessions   = fs.Int("sessions", server.DefaultMaxSessions, "max live /v1/predict sessions (LRU-evicted beyond)")
		poolDir    = fs.String("trace-pool", "", "on-disk trace segment pool directory (empty = memory-only pool)")
		poolMem    = fs.Int("pool-entries", server.DefaultPoolEntries, "trace pool in-memory tier capacity (segments)")
		drain      = fs.Duration("drain", 10*time.Second, "graceful drain window on SIGTERM/SIGINT")

		clusterOn = fs.Bool("cluster", false, "enable cluster mode even with no peers (self-only ring awaiting a topology push)")
		peers     = fs.String("peers", "", "comma-separated peer base URLs (implies -cluster; self is added if absent)")
		peersFile = fs.String("peers-file", "", `topology JSON file {"nodes":[...],"replicas":N} (implies -cluster)`)
		replicas  = fs.Int("replicas", 1, "replication factor R for cluster cells")
		selfURL   = fs.String("self", "", "this node's base URL as peers reach it (default http://<bound addr>)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	if *memEntries <= 0 {
		return cli.Usagef("-mem-entries must be positive, got %d", *memEntries)
	}
	if *maxBody <= 0 {
		return cli.Usagef("-max-body must be positive, got %d", *maxBody)
	}
	if *sessions <= 0 {
		return cli.Usagef("-sessions must be positive, got %d", *sessions)
	}
	if *poolMem <= 0 {
		return cli.Usagef("-pool-entries must be positive, got %d", *poolMem)
	}

	st, err := store.Open(*memEntries, *storeDir)
	if err != nil {
		return err
	}
	pool, err := tracepool.Open(*poolMem, *poolDir)
	if err != nil {
		return err
	}

	// Listen before building the Server: with port 0 the node's own
	// base URL — which seeds its ring membership — is only known once
	// the listener is bound.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	cl, err := buildCluster(*clusterOn, *peers, *peersFile, *replicas, *selfURL, ln.Addr().String())
	if err != nil {
		ln.Close()
		return err
	}
	srv := server.New(server.Config{
		Store:        st,
		Sched:        experiments.NewSched(*jobs),
		MaxBodyBytes: *maxBody,
		SimTimeout:   *timeout,
		MaxSessions:  *sessions,
		Pool:         pool,
		Cluster:      cl,
	})
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(stdout, "predserved listening on http://%s\n", ln.Addr())
	if *storeDir != "" {
		fmt.Fprintf(stderr, "predserved: result store at %s (mem tier %d entries)\n", *storeDir, *memEntries)
	}
	if *poolDir != "" {
		fmt.Fprintf(stderr, "predserved: trace pool at %s (mem tier %d segments)\n", *poolDir, *poolMem)
	}
	if cl != nil {
		info := cl.Info()
		fmt.Fprintf(stderr, "predserved: cluster self=%s nodes=%d replicas=%d gen=%d\n",
			info.Self, len(info.Nodes), info.Replicas, info.Gen)
	}
	if notifyReady != nil {
		notifyReady(ln.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Serve only returns before Shutdown on listener failure.
		return fmt.Errorf("serving: %w", err)
	case s := <-sig:
		fmt.Fprintf(stderr, "predserved: %v, draining (up to %v)\n", s, *drain)
	case <-testShutdown:
		fmt.Fprintf(stderr, "predserved: shutdown requested, draining (up to %v)\n", *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("draining: %w", err)
	}
	<-serveErr // reap http.ErrServerClosed
	fmt.Fprintln(stderr, "predserved: drained, exiting")
	return nil
}

// buildCluster assembles the node's initial ring from the cluster
// flags, or returns nil when none are set (standalone mode). The
// member set is -peers (or the -peers-file "nodes" list) plus this
// node; a bare -cluster boots a self-only ring so an operator can
// push the real topology once every node is up.
func buildCluster(on bool, peersCSV, peersFile string, replicas int, self, boundAddr string) (*cluster.Cluster, error) {
	if !on && peersCSV == "" && peersFile == "" {
		return nil, nil
	}
	if self == "" {
		self = "http://" + boundAddr
	}
	nodes := splitList(peersCSV)
	if peersFile != "" {
		raw, err := os.ReadFile(peersFile)
		if err != nil {
			return nil, err
		}
		var topo struct {
			Nodes    []string `json:"nodes"`
			Replicas int      `json:"replicas"`
		}
		if err := json.Unmarshal(raw, &topo); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", peersFile, err)
		}
		nodes = append(nodes, topo.Nodes...)
		if topo.Replicas > 0 {
			replicas = topo.Replicas
		}
	}
	if !contains(nodes, self) {
		nodes = append(nodes, self)
	}
	return cluster.New(cluster.Config{Self: self, Nodes: nodes, Replicas: replicas})
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}
