// Command predserved serves the simulator over HTTP: a long-running
// prediction/experiment service with a content-addressed result store,
// so many clients sweeping overlapping (spec, trace, options) cells
// pay for each simulation once.
//
//	predserved -addr 127.0.0.1:8149 -store-dir /var/cache/gskew
//
//	curl -s localhost:8149/v1/specs | jq .
//	curl -s -X POST localhost:8149/v1/simulate -d '{
//	    "specs": ["gshare:n=14,k=12", "egskew:n=12,k=12"],
//	    "bench": "groff", "scale": 0.01}' | jq .
//
// Endpoints, cache-key semantics and the wire format are documented in
// the README's Serving section. The obs debug surface (/metrics,
// /debug/vars, /debug/pprof) is mounted on the same listener. On
// SIGTERM or SIGINT the server stops accepting connections, drains
// in-flight requests for up to -drain, then exits 0.
package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gskew/internal/cli"
	"gskew/internal/experiments"
	"gskew/internal/server"
	"gskew/internal/store"
	"gskew/internal/tracepool"
)

func main() { cli.Main("predserved", run) }

// Test hooks: in-process tests (cmd/predserved/main_test.go) set these
// to learn the bound address and to trigger the drain path without
// delivering a real signal. Both are nil in production.
var (
	notifyReady  func(addr string)
	testShutdown <-chan struct{}
)

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("predserved", stderr)
	var (
		addr       = fs.String("addr", "127.0.0.1:8149", "listen address (host:port; port 0 picks a free one)")
		storeDir   = fs.String("store-dir", "", "on-disk result store directory (empty = memory-only store)")
		memEntries = fs.Int("mem-entries", server.DefaultMemEntries, "result store in-memory tier capacity (entries)")
		jobs       = fs.Int("jobs", 0, "max concurrent simulation passes (0 = GOMAXPROCS)")
		maxBody    = fs.Int64("max-body", server.DefaultMaxBodyBytes, "request body size limit (bytes)")
		timeout    = fs.Duration("timeout", server.DefaultSimTimeout, "per-request simulation queue timeout")
		sessions   = fs.Int("sessions", server.DefaultMaxSessions, "max live /v1/predict sessions (LRU-evicted beyond)")
		poolDir    = fs.String("trace-pool", "", "on-disk trace segment pool directory (empty = memory-only pool)")
		poolMem    = fs.Int("pool-entries", server.DefaultPoolEntries, "trace pool in-memory tier capacity (segments)")
		drain      = fs.Duration("drain", 10*time.Second, "graceful drain window on SIGTERM/SIGINT")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	if *memEntries <= 0 {
		return cli.Usagef("-mem-entries must be positive, got %d", *memEntries)
	}
	if *maxBody <= 0 {
		return cli.Usagef("-max-body must be positive, got %d", *maxBody)
	}
	if *sessions <= 0 {
		return cli.Usagef("-sessions must be positive, got %d", *sessions)
	}
	if *poolMem <= 0 {
		return cli.Usagef("-pool-entries must be positive, got %d", *poolMem)
	}

	st, err := store.Open(*memEntries, *storeDir)
	if err != nil {
		return err
	}
	pool, err := tracepool.Open(*poolMem, *poolDir)
	if err != nil {
		return err
	}
	srv := server.New(server.Config{
		Store:        st,
		Sched:        experiments.NewSched(*jobs),
		MaxBodyBytes: *maxBody,
		SimTimeout:   *timeout,
		MaxSessions:  *sessions,
		Pool:         pool,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(stdout, "predserved listening on http://%s\n", ln.Addr())
	if *storeDir != "" {
		fmt.Fprintf(stderr, "predserved: result store at %s (mem tier %d entries)\n", *storeDir, *memEntries)
	}
	if *poolDir != "" {
		fmt.Fprintf(stderr, "predserved: trace pool at %s (mem tier %d segments)\n", *poolDir, *poolMem)
	}
	if notifyReady != nil {
		notifyReady(ln.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Serve only returns before Shutdown on listener failure.
		return fmt.Errorf("serving: %w", err)
	case s := <-sig:
		fmt.Fprintf(stderr, "predserved: %v, draining (up to %v)\n", s, *drain)
	case <-testShutdown:
		fmt.Fprintf(stderr, "predserved: shutdown requested, draining (up to %v)\n", *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("draining: %w", err)
	}
	<-serveErr // reap http.ErrServerClosed
	fmt.Fprintln(stderr, "predserved: drained, exiting")
	return nil
}
