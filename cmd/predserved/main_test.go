package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gskew/internal/cli"
)

// syncBuffer guards concurrent writes: run() writes from the serving
// goroutine while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestBadFlagValuesAreUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-mem-entries", "0"},
		{"-max-body", "-1"},
		{"-sessions", "0"},
		{"-addr", "127.0.0.1:0", "stray-positional"},
	} {
		var out, errw bytes.Buffer
		err := run(args, &out, &errw)
		var usage *cli.UsageError
		if !errors.As(err, &usage) {
			t.Errorf("args %v: got %v, want UsageError", args, err)
		}
	}
}

func TestUnknownFlagIsFlagError(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, &errw); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestHelpIsErrHelp(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-h"}, &out, &errw)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: got %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errw.String(), "-store-dir") {
		t.Errorf("usage text missing flags:\n%s", errw.String())
	}
}

func TestBusyAddressIsRuntimeError(t *testing.T) {
	// Occupy a port, then ask the server to bind the same one.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var out, errw bytes.Buffer
	err = run([]string{"-addr", ln.Addr().String()}, &out, &errw)
	if err == nil {
		t.Fatal("busy address accepted")
	}
	var usage *cli.UsageError
	if errors.As(err, &usage) {
		t.Fatalf("listen failure misclassified as usage error: %v", err)
	}
}

// TestStartRequestShutdownSmoke runs the whole service in-process:
// start on a loopback port, hit the API, then drain via the test
// shutdown hook and check run() exits cleanly.
func TestStartRequestShutdownSmoke(t *testing.T) {
	ready := make(chan string, 1)
	shutdown := make(chan struct{})
	notifyReady = func(addr string) { ready <- addr }
	testShutdown = shutdown
	defer func() { notifyReady = nil; testShutdown = nil }()

	var stdout, stderr syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-store-dir", t.TempDir(), "-drain", "5s"}, &stdout, &stderr)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v\nstderr: %s", err, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}
	base := "http://" + addr

	// Liveness.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// A small sweep, twice: identical bodies, second pass cached.
	body := `{"specs":["bimodal:n=8","gshare:n=8,k=4"],"bench":"verilog","scale":0.002}`
	fetch := func() (string, string) {
		t.Helper()
		resp, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate status %d: %s", resp.StatusCode, data)
		}
		return string(data), resp.Header.Get("X-Cache")
	}
	first, cache1 := fetch()
	second, cache2 := fetch()
	if first != second {
		t.Errorf("cold and cached responses differ:\n--- cold ---\n%s--- cached ---\n%s", first, second)
	}
	if cache1 != "hits=0 misses=2" || cache2 != "hits=2 misses=0" {
		t.Errorf("X-Cache progression wrong: first %q, second %q", cache1, cache2)
	}
	var doc struct {
		Results []struct {
			Spec   string `json:"spec"`
			Result struct {
				Conditionals int `json:"conditionals"`
			} `json:"result"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(first), &doc); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if len(doc.Results) != 2 || doc.Results[0].Result.Conditionals == 0 {
		t.Errorf("unexpected sweep results: %+v", doc.Results)
	}

	// Drain and check a clean exit.
	close(shutdown)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain")
	}
	if !strings.Contains(stdout.String(), "predserved listening on http://") {
		t.Errorf("missing listening line on stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "drained") {
		t.Errorf("missing drain line on stderr:\n%s", stderr.String())
	}
}

// TestListeningLineIsParseable pins the stdout contract scripts rely
// on (scripts/serve_smoke.sh greps this exact prefix).
func TestListeningLineIsParseable(t *testing.T) {
	ready := make(chan string, 1)
	shutdown := make(chan struct{})
	notifyReady = func(addr string) { ready <- addr }
	testShutdown = shutdown
	defer func() { notifyReady = nil; testShutdown = nil }()

	var stdout, stderr syncBuffer
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0"}, &stdout, &stderr) }()
	addr := <-ready
	close(shutdown)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	want := fmt.Sprintf("predserved listening on http://%s\n", addr)
	if stdout.String() != want {
		t.Errorf("stdout = %q, want %q", stdout.String(), want)
	}
}
