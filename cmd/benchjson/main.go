// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON snapshot, so benchmark history can be diffed
// and checked by tools rather than eyeballed.
//
// Usage:
//
//	go test -bench Kernel -benchmem -count 3 . | benchjson -o BENCH_kernel.json
//
// Each benchmark appears once in the output; when -count produced
// repeated measurements the minimum ns/op is kept (the best run is the
// least-disturbed one on a noisy machine). Lines that are not
// benchmark results (goos/goarch/cpu headers, PASS/ok trailers) set
// the environment fields or are ignored.
//
// -runs FILE attaches the simulation cells of a run manifest (from
// `experiments -manifest` or `predsim -manifest`) to the snapshot, so
// one document carries both the timing (ns/op) and the accuracy
// (sim.Result) of a commit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"gskew/internal/cli"
	"gskew/internal/obs"
	"gskew/internal/sim"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Run is one simulation cell carried over from a run manifest: the
// cell's predictors and their scalar results (sim.Result JSON).
type Run struct {
	ID         string       `json:"id"`
	Predictors []string     `json:"predictors,omitempty"`
	Results    []sim.Result `json:"results,omitempty"`
}

// Snapshot is the full JSON document.
type Snapshot struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
	// Runs carries simulation accuracy alongside the timing, when a
	// manifest was attached with -runs.
	Runs []Run `json:"runs,omitempty"`
}

func main() { cli.Main("benchjson", run) }

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("benchjson", stderr)
	out := fs.String("o", "", "write JSON to `file` (default stdout)")
	runs := fs.String("runs", "", "attach the simulation cells of this run-manifest `file` to the snapshot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return cli.Usagef("at most one input file, got %d", fs.NArg())
	}
	in := io.Reader(os.Stdin)
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	snap, err := Parse(in)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark results in input")
	}
	if *runs != "" {
		snap.Runs, err = loadRuns(*runs)
		if err != nil {
			return err
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// loadRuns reads a run manifest and converts its cells into Run
// records, round-tripping the per-predictor results through the
// sim.Result JSON form.
func loadRuns(path string) ([]Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m obs.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("benchjson: parsing manifest %s: %w", path, err)
	}
	runs := make([]Run, 0, len(m.Cells))
	for _, c := range m.Cells {
		r := Run{ID: c.ID, Predictors: c.Predictors}
		if c.Result != nil {
			// Cell.Result is decoded as loose JSON; re-encode and decode
			// it through sim.Result so malformed cells fail loudly.
			raw, err := json.Marshal(c.Result)
			if err != nil {
				return nil, err
			}
			if err := json.Unmarshal(raw, &r.Results); err != nil {
				return nil, fmt.Errorf("benchjson: cell %s results: %w", c.ID, err)
			}
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// Parse reads `go test -bench` output and collapses it into a
// Snapshot. Repeated measurements of the same benchmark (from -count)
// keep the run with the minimum ns/op.
func Parse(r io.Reader) (Snapshot, error) {
	var snap Snapshot
	best := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok, err := parseLine(line)
			if err != nil {
				return snap, err
			}
			if !ok {
				continue
			}
			if prev, seen := best[res.Name]; !seen || res.NsPerOp < prev.NsPerOp {
				best[res.Name] = res
			}
		}
	}
	if err := sc.Err(); err != nil {
		return snap, err
	}
	for _, res := range best {
		snap.Benchmarks = append(snap.Benchmarks, res)
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	return snap, nil
}

// parseLine parses one result line, e.g.
//
//	BenchmarkKernelGShare16k/kernel-8  155018275  7.080 ns/op  1 B/op  0 allocs/op
//
// The GOMAXPROCS suffix (-8) is stripped from the name. Lines that
// start with "Benchmark" but carry no ns/op measurement (e.g. a name
// echoed by -v) report ok=false.
func parseLine(line string) (res Result, ok bool, err error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return res, false, nil
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res.Name = name
	res.Iterations, err = strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return res, false, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
	}
	// The remainder is unit-tagged value pairs: <value> <unit>.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			res.NsPerOp, err = strconv.ParseFloat(val, 64)
			ok = true
		case "B/op":
			res.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		default:
			continue // MB/s and custom metrics are ignored
		}
		if err != nil {
			return res, false, fmt.Errorf("benchjson: bad %s value in %q: %w", unit, line, err)
		}
	}
	return res, ok, nil
}
