// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON snapshot, so benchmark history can be diffed
// and checked by tools rather than eyeballed.
//
// Usage:
//
//	go test -bench Kernel -benchmem -count 3 . | benchjson -o BENCH_kernel.json
//
// Each benchmark appears once in the output; when -count produced
// repeated measurements the minimum ns/op is kept (the best run is the
// least-disturbed one on a noisy machine). Lines that are not
// benchmark results (goos/goarch/cpu headers, PASS/ok trailers) set
// the environment fields or are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"gskew/internal/cli"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is the full JSON document.
type Snapshot struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() { cli.Main("benchjson", run) }

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("benchjson", stderr)
	out := fs.String("o", "", "write JSON to `file` (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return cli.Usagef("at most one input file, got %d", fs.NArg())
	}
	in := io.Reader(os.Stdin)
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	snap, err := Parse(in)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark results in input")
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Parse reads `go test -bench` output and collapses it into a
// Snapshot. Repeated measurements of the same benchmark (from -count)
// keep the run with the minimum ns/op.
func Parse(r io.Reader) (Snapshot, error) {
	var snap Snapshot
	best := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok, err := parseLine(line)
			if err != nil {
				return snap, err
			}
			if !ok {
				continue
			}
			if prev, seen := best[res.Name]; !seen || res.NsPerOp < prev.NsPerOp {
				best[res.Name] = res
			}
		}
	}
	if err := sc.Err(); err != nil {
		return snap, err
	}
	for _, res := range best {
		snap.Benchmarks = append(snap.Benchmarks, res)
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	return snap, nil
}

// parseLine parses one result line, e.g.
//
//	BenchmarkKernelGShare16k/kernel-8  155018275  7.080 ns/op  1 B/op  0 allocs/op
//
// The GOMAXPROCS suffix (-8) is stripped from the name. Lines that
// start with "Benchmark" but carry no ns/op measurement (e.g. a name
// echoed by -v) report ok=false.
func parseLine(line string) (res Result, ok bool, err error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return res, false, nil
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res.Name = name
	res.Iterations, err = strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return res, false, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
	}
	// The remainder is unit-tagged value pairs: <value> <unit>.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			res.NsPerOp, err = strconv.ParseFloat(val, 64)
			ok = true
		case "B/op":
			res.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			res.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		default:
			continue // MB/s and custom metrics are ignored
		}
		if err != nil {
			return res, false, fmt.Errorf("benchjson: bad %s value in %q: %w", unit, line, err)
		}
	}
	return res, ok, nil
}
