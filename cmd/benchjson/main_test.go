package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: gskew
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkKernelGShare16k/kernel-8         	155018275	         7.080 ns/op	       1 B/op	       0 allocs/op
BenchmarkKernelGShare16k/kernel-8         	160178374	        10.10 ns/op	       1 B/op	       0 allocs/op
BenchmarkKernelGShare16k/interface-8      	100000000	        11.36 ns/op	       1 B/op	       0 allocs/op
BenchmarkKernelStepBatch/gshare16k-8      	575586747	         3.779 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	gskew	17.084s
`

func TestParse(t *testing.T) {
	snap, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GOOS != "linux" || snap.GOARCH != "amd64" || snap.Pkg != "gskew" {
		t.Errorf("environment fields = %q/%q/%q", snap.GOOS, snap.GOARCH, snap.Pkg)
	}
	if !strings.Contains(snap.CPU, "Xeon") {
		t.Errorf("cpu = %q", snap.CPU)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3 (repeats collapsed): %+v", len(snap.Benchmarks), snap.Benchmarks)
	}
	// Sorted by name; repeated kernel measurement keeps the minimum.
	b := snap.Benchmarks
	if b[0].Name != "KernelGShare16k/interface" ||
		b[1].Name != "KernelGShare16k/kernel" ||
		b[2].Name != "KernelStepBatch/gshare16k" {
		t.Fatalf("names = %q, %q, %q", b[0].Name, b[1].Name, b[2].Name)
	}
	if b[1].NsPerOp != 7.080 {
		t.Errorf("kernel ns/op = %v, want min of repeats 7.080", b[1].NsPerOp)
	}
	if b[1].Iterations != 155018275 || b[1].BytesPerOp != 1 || b[1].AllocsPerOp != 0 {
		t.Errorf("kernel result = %+v", b[1])
	}
	if b[2].NsPerOp != 3.779 || b[2].BytesPerOp != 0 {
		t.Errorf("stepbatch result = %+v", b[2])
	}
}

func TestParseEmptyAndMalformed(t *testing.T) {
	snap, err := Parse(strings.NewReader("PASS\nok gskew 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 0 {
		t.Fatalf("got %d benchmarks from empty input", len(snap.Benchmarks))
	}
	// A benchmark name echoed without a measurement (as with -v) is
	// skipped, not an error.
	snap, err = Parse(strings.NewReader("BenchmarkFoo\nBenchmarkBar-8 100 5.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 1 || snap.Benchmarks[0].Name != "Bar" {
		t.Fatalf("benchmarks = %+v", snap.Benchmarks)
	}
	// A corrupt numeric field is an error, not a silent zero.
	if _, err := Parse(strings.NewReader("BenchmarkX-8 12x 5.0 ns/op\n")); err == nil {
		t.Fatal("corrupt iteration count not rejected")
	}
}

func TestRunEndToEnd(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Skip("stdin unexpectedly held benchmark output")
	}
	// File input → JSON output.
	dir := t.TempDir()
	in := dir + "/bench.txt"
	out := dir + "/bench.json"
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	if err := run([]string{"-o", out, in}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("round-tripped %d benchmarks, want 3", len(snap.Benchmarks))
	}
}
