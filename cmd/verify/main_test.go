package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"gskew/internal/cli"
	"gskew/internal/refmodel/diff"
)

// runVerify invokes run in-process and returns stdout, stderr and err.
func runVerify(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

func TestListPrintsEverySweepCell(t *testing.T) {
	out, _, err := runVerify(t, "-list")
	if err != nil {
		t.Fatalf("-list: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	cells := diff.DefaultSweep()
	if len(lines) != len(cells) {
		t.Fatalf("-list printed %d lines, want %d", len(lines), len(cells))
	}
	for i, c := range cells {
		if lines[i] != c.String() {
			t.Errorf("line %d: %q, want %q", i, lines[i], c)
		}
	}
}

func TestSingleCellVerifiesClean(t *testing.T) {
	out, _, err := runVerify(t, "-cell", "gshare/n10/h6/c2", "-branches", "2000")
	if err != nil {
		t.Fatalf("-cell: %v", err)
	}
	if !strings.Contains(out, "verified 1 cells") || !strings.Contains(out, "0 divergences") {
		t.Errorf("unexpected summary:\n%s", out)
	}
}

func TestUnknownCellIsUsageError(t *testing.T) {
	_, _, err := runVerify(t, "-cell", "oracle/n64")
	var usage *cli.UsageError
	if !errors.As(err, &usage) {
		t.Fatalf("unknown cell: got %v, want UsageError", err)
	}
}

func TestNoModeIsUsageError(t *testing.T) {
	_, _, err := runVerify(t)
	var usage *cli.UsageError
	if !errors.As(err, &usage) {
		t.Fatalf("no mode: got %v, want UsageError", err)
	}
}

func TestBadFlagIsReturnedNotFatal(t *testing.T) {
	_, stderr, err := runVerify(t, "-no-such-flag")
	if err == nil {
		t.Fatal("bad flag accepted")
	}
	if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "flag") {
		t.Errorf("no usage text on stderr:\n%s", stderr)
	}
}

func TestSelfTestSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("selftest shrinks many mutants; skipped in -short")
	}
	out, _, err := runVerify(t, "-selftest", "-branches", "2000")
	if err != nil {
		t.Fatalf("-selftest: %v\n%s", err, out)
	}
	if !strings.Contains(out, "selftest ok") {
		t.Errorf("missing success line:\n%s", out)
	}
}

func TestOutputIsDeterministic(t *testing.T) {
	a, _, err := runVerify(t, "-cell", "gskewed/n6/h6/c2/partial", "-branches", "1500", "-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := runVerify(t, "-cell", "gskewed/n6/h6/c2/partial", "-branches", "1500", "-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same invocation produced different output:\n%q\nvs\n%q", a, b)
	}
}
