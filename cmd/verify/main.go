// Command verify is the differential verification harness: it drives
// the optimized predictors against the independent executable paper
// specification in internal/refmodel, over randomized traces, across
// a sweep of configurations, and reports any divergence as a shrunk,
// replayable counterexample.
//
// Examples:
//
//	verify -sweep                 # the full matrix (the CI tier)
//	verify -sweep -branches 250000 -seed 7
//	verify -cell gskewed/n8/h10/c2/partial -seed 3
//	verify -selftest              # inject faults, prove they are caught
//	verify -list                  # name every sweep cell
//
// On a divergence the tool prints the cell, the implementation path
// (predict/update pair, fused step or compiled kernel), the trace seed
// and a minimal counterexample in the text trace format, then exits 1.
// Re-running with the printed -cell and -seed reproduces the failure
// exactly.
package main

import (
	"fmt"
	"io"

	"gskew/internal/cli"
	"gskew/internal/refmodel/diff"
)

func main() { cli.Main("verify", run) }

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("verify", stderr)
	var (
		sweep    = fs.Bool("sweep", false, "verify every cell of the default sweep")
		codec    = fs.Bool("codec", false, "verify the trace codecs: every sweep cell replayed from varint, columnar and mmap sources")
		cellName = fs.String("cell", "", "verify a single cell by name (see -list)")
		selftest = fs.Bool("selftest", false, "inject deliberate faults and require the harness to catch and shrink them")
		list     = fs.Bool("list", false, "list the sweep cells and exit")
		branches = fs.Int("branches", 60000, "trace length per cell, in conditional branches")
		seed     = fs.Uint64("seed", 1, "base trace seed (cell i of a sweep uses seed+i)")
		maxCE    = fs.Int("max-counterexample", 50, "selftest: maximum acceptable shrunk counterexample length")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *list:
		for _, c := range diff.DefaultSweep() {
			fmt.Fprintln(stdout, c)
		}
		return nil

	case *selftest:
		cells := selftestCells()
		fmt.Fprintf(stdout, "injecting faults into %d cells (%d branches each, seed %d):\n",
			len(cells), *branches, *seed)
		_, err := diff.SelfTest(cells, *branches, *seed, *maxCE, stdout)
		if err != nil {
			return err
		}
		if err := diff.CodecSelfTest(*branches, *seed, stdout); err != nil {
			return err
		}
		if err := diff.RecorderSelfTest(*seed, stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "selftest ok: every injected fault caught and shrunk")
		return nil

	case *cellName != "":
		c, err := diff.CellByName(*cellName)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		res, err := diff.VerifyCell(c, *seed, *branches)
		if err != nil {
			return err
		}
		return summarise(stdout, []diff.CellResult{res})

	case *codec:
		cells := diff.DefaultSweep()
		records, err := diff.VerifyCodecs(cells, *branches, *seed, stdout)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "codec arm ok: %d cells replayed from varint, columnar and mmap sources, %d records checked, 0 divergences\n",
			len(cells), records)
		return nil

	case *sweep:
		results, err := diff.Sweep(diff.DefaultSweep(), diff.Options{
			Branches: *branches, Seed: *seed, Log: stdout,
		})
		if err != nil {
			return err
		}
		return summarise(stdout, results)

	default:
		return cli.Usagef("specify one of -sweep, -codec, -cell, -selftest or -list")
	}
}

// summarise prints totals and any counterexamples, and returns an
// error (so the process exits nonzero) if anything diverged.
func summarise(stdout io.Writer, results []diff.CellResult) error {
	totalSteps, diverged := 0, 0
	for _, r := range results {
		totalSteps += r.Steps
		if r.Div == nil {
			continue
		}
		diverged++
		fmt.Fprintf(stdout, "\nDIVERGENCE in %s: %v\n", r.Cell, r.Div)
		fmt.Fprintf(stdout, "reproduce with: verify -cell %s -seed %d -branches %d\n",
			r.Cell, r.Seed, r.Branches)
		if err := diff.WriteCounterexample(stdout, r.Cell, r.Seed, r.Path, r.Shrunk); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "verified %d cells, %d trace records checked, %d divergences\n",
		len(results), totalSteps, diverged)
	if diverged > 0 {
		return fmt.Errorf("%d of %d cells diverged from the paper specification", diverged, len(results))
	}
	return nil
}

// selftestCells is the representative subset faults are injected into:
// one cell per family, covering both skewed policies.
func selftestCells() []diff.Cell {
	return []diff.Cell{
		{Family: "bimodal", N: 8, Ctr: 2},
		{Family: "gshare", N: 8, Hist: 6, Ctr: 2},
		{Family: "gselect", N: 8, Hist: 4, Ctr: 2},
		{Family: "gskewed", N: 6, Hist: 6, Ctr: 2, Partial: true},
		{Family: "egskew", N: 6, Hist: 8, Ctr: 2},
		// History longer than both the index and tag widths, so the
		// planted fold fault has chunks to misalign.
		{Family: "tage", N: 6, Hist: 16, Ctr: 3, Tables: 4, Tag: 6},
		{Family: "perceptron", N: 6, Hist: 12, Ctr: 8, Tables: 4},
	}
}
