// Package cmd_test integration-tests the command-line tools end to
// end: each binary is built once with `go build` and exercised against
// a small workload, checking output contents and exit codes.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "gskew-tools-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	binDir = dir
	// Build every tool once.
	for _, tool := range []string{"experiments", "predsim", "aliasing", "tracegen", "calibrate", "report", "predserved"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./"+tool)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			panic("building " + tool + ": " + err.Error() + "\n" + string(out))
		}
	}
	os.Exit(m.Run())
}

func run(t *testing.T, tool string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestExperimentsList(t *testing.T) {
	out, err := run(t, "experiments", "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"table1", "fig12", "ext-ev8", "ablation-policy"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q", want)
		}
	}
}

func TestExperimentsRunOne(t *testing.T) {
	out, err := run(t, "experiments", "-id", "fig3")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "gshare only") || !strings.Contains(out, "completed in") {
		t.Errorf("fig3 output unexpected:\n%s", out)
	}
}

// TestExperimentsJobsByteIdentical checks the -jobs contract: stdout
// must not depend on the scheduler width (timing goes to stderr).
func TestExperimentsJobsByteIdentical(t *testing.T) {
	stdout := func(jobs string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(binDir, "experiments"),
			"-id", "table1", "-bench", "verilog,nroff", "-scale", "0.005", "-jobs", jobs)
		out, err := cmd.Output() // stdout only
		if err != nil {
			t.Fatalf("-jobs %s: %v", jobs, err)
		}
		return string(out)
	}
	serial, wide := stdout("1"), stdout("4")
	if serial != wide {
		t.Errorf("stdout differs between -jobs 1 and -jobs 4:\n--- jobs=1 ---\n%s--- jobs=4 ---\n%s", serial, wide)
	}
	if !strings.Contains(serial, "table1") {
		t.Errorf("unexpected output:\n%s", serial)
	}
}

func TestExperimentsCSVAndPlot(t *testing.T) {
	out, err := run(t, "experiments", "-id", "fig9", "-format", "csv")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "P_dm (1-bank),P_sk (3-bank skewed)") {
		t.Errorf("csv header missing:\n%s", out)
	}
	out, err = run(t, "experiments", "-id", "fig9", "-format", "plot")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "+---") && !strings.Contains(out, "|") {
		t.Errorf("plot frame missing:\n%s", out)
	}
}

func TestExperimentsRejectsUnknown(t *testing.T) {
	if out, err := run(t, "experiments", "-id", "fig99"); err == nil {
		t.Errorf("unknown experiment accepted:\n%s", out)
	}
	if out, err := run(t, "experiments", "-bench", "quake3", "-id", "fig3"); err == nil {
		t.Errorf("unknown benchmark accepted:\n%s", out)
	}
	if out, err := run(t, "experiments"); err == nil {
		t.Errorf("missing mode accepted:\n%s", out)
	}
}

func TestPredsimOnBenchmark(t *testing.T) {
	out, err := run(t, "predsim",
		"-bench", "verilog", "-pred", "gskewed", "-entries", "1024",
		"-hist", "6", "-scale", "0.005")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"gskewed", "miss rate", "storage bits"} {
		if !strings.Contains(out, want) {
			t.Errorf("predsim output missing %q:\n%s", want, out)
		}
	}
}

func TestPredsimRejectsBadFlags(t *testing.T) {
	if out, err := run(t, "predsim", "-bench", "verilog", "-pred", "oracle"); err == nil {
		t.Errorf("unknown predictor accepted:\n%s", out)
	}
	if out, err := run(t, "predsim", "-pred", "gshare"); err == nil {
		t.Errorf("missing input accepted:\n%s", out)
	}
	if out, err := run(t, "predsim", "-bench", "verilog", "-policy", "middling"); err == nil {
		t.Errorf("unknown policy accepted:\n%s", out)
	}
}

func TestTracegenAndPredsimPipeline(t *testing.T) {
	tf := filepath.Join(t.TempDir(), "v.trace")
	out, err := run(t, "tracegen", "-bench", "verilog", "-scale", "0.005", "-o", tf)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if fi, err := os.Stat(tf); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}
	out, err = run(t, "predsim", "-trace", tf, "-pred", "gshare", "-entries", "4096", "-hist", "4")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "miss rate") {
		t.Errorf("pipeline output unexpected:\n%s", out)
	}
}

func TestTracegenStatsAndText(t *testing.T) {
	out, err := run(t, "tracegen", "-bench", "nroff", "-scale", "0.002", "-stats")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"dynamic conditional", "taken ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	tf := filepath.Join(t.TempDir(), "t.txt")
	if out, err := run(t, "tracegen", "-bench", "nroff", "-scale", "0.001", "-format", "text", "-o", tf); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(tf)
	if err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(string(data), "\n", 2)[0]
	if !strings.Contains(first, " ") {
		t.Errorf("text trace first line unexpected: %q", first)
	}
}

func TestAliasingTool(t *testing.T) {
	out, err := run(t, "aliasing",
		"-bench", "verilog", "-fn", "gshare", "-entries", "1024", "-hist", "4", "-scale", "0.005")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"compulsory", "capacity", "conflict", "DM miss ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("aliasing output missing %q:\n%s", want, out)
		}
	}
	if out, err := run(t, "aliasing", "-bench", "verilog", "-fn", "gspaghetti"); err == nil {
		t.Errorf("unknown index fn accepted:\n%s", out)
	}
}

func TestCalibrateTool(t *testing.T) {
	out, err := run(t, "calibrate", "-sites", "300", "-events", "20000")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"loop-backedge", "TOTAL", "correlated"} {
		if !strings.Contains(out, want) {
			t.Errorf("calibrate output missing %q:\n%s", want, out)
		}
	}
}

func TestReportTool(t *testing.T) {
	rf := filepath.Join(t.TempDir(), "REPORT.md")
	out, err := run(t, "report", "-only", "fig9,fig3", "-o", rf, "-scale", "0.002")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(rf)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"# Regenerated evaluation", "## fig9", "## fig3", "```"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestPredsimTopMisses(t *testing.T) {
	out, err := run(t, "predsim",
		"-bench", "verilog", "-pred", "gshare", "-entries", "1024",
		"-hist", "4", "-scale", "0.005", "-top", "5")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "top mispredicting branches") {
		t.Errorf("-top output missing table:\n%s", out)
	}
	if strings.Count(out, "0x") < 3 {
		t.Errorf("-top listed too few branches:\n%s", out)
	}
}

// TestPredservedUsageErrors checks the server binary classifies flag
// misuse as usage (exit 2) without ever binding a socket. Lifecycle
// coverage lives in cmd/predserved's in-process tests and
// scripts/serve_smoke.sh.
func TestPredservedUsageErrors(t *testing.T) {
	out, err := run(t, "predserved", "-mem-entries", "0")
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 2 {
		t.Fatalf("bad flag value: err=%v (want exit 2)\n%s", err, out)
	}
	if out, err := run(t, "predserved", "stray-arg"); err == nil {
		t.Errorf("positional argument accepted:\n%s", out)
	}
}

func TestPredsimAllPredictorKinds(t *testing.T) {
	for _, kind := range []string{
		"bimodal", "gshare", "gselect", "gskewed", "egskew", "2bcgskew",
		"agree", "bimode", "pas", "skewed-pas", "hybrid", "unaliased", "assoc-lru",
	} {
		out, err := run(t, "predsim",
			"-bench", "verilog", "-pred", kind, "-entries", "512",
			"-hist", "6", "-scale", "0.002")
		if err != nil {
			t.Fatalf("%s: %v\n%s", kind, err, out)
		}
		if !strings.Contains(out, "miss rate") {
			t.Errorf("%s: no miss rate in output:\n%s", kind, out)
		}
	}
}
