package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"gskew/internal/cli"
)

func runReport(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), err
}

func TestSingleExperimentToStdout(t *testing.T) {
	out, err := runReport(t, "-only", "fig3", "-scale", "0.002")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"# Regenerated evaluation", "## fig3", "```"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownExperimentIsUsageError(t *testing.T) {
	_, err := runReport(t, "-only", "fig99")
	var usage *cli.UsageError
	if !errors.As(err, &usage) {
		t.Fatalf("unknown experiment: got %v, want UsageError", err)
	}
}

func TestUnknownBenchmarkIsUsageError(t *testing.T) {
	_, err := runReport(t, "-bench", "quake3", "-only", "fig3")
	var usage *cli.UsageError
	if !errors.As(err, &usage) {
		t.Fatalf("unknown benchmark: got %v, want UsageError", err)
	}
}

// TestOutputStableWithoutTiming: with -timing=false the document is a
// pure function of the experiment results, hence byte-stable.
func TestOutputStableWithoutTiming(t *testing.T) {
	args := []string{"-only", "fig3", "-scale", "0.002", "-timing=false", "-plots=false"}
	a, err := runReport(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runReport(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("report not byte-stable without timing:\n%q\nvs\n%q", a, b)
	}
	if strings.Contains(a, "Generated in") {
		t.Errorf("-timing=false still printed the timing line:\n%s", a)
	}
}
