// Command report regenerates the paper's entire evaluation section as
// one Markdown document: every table and figure (figures both as data
// tables and ASCII charts), with the experiment descriptions inline.
//
// Usage:
//
//	report -o REPORT.md [-scale 0.1] [-bench groff,gs] [-plots=false]
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gskew/internal/cli"
	"gskew/internal/experiments"
	"gskew/internal/report"
	"gskew/internal/workload"
)

func main() { cli.Main("report", run) }

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("report", stderr)
	var (
		out    = fs.String("o", "", "output file (default stdout)")
		scale  = fs.Float64("scale", 0, "workload scale factor (0 = default 0.1)")
		bench  = fs.String("bench", "", "comma-separated benchmark subset")
		plots  = fs.Bool("plots", true, "include ASCII charts for figures")
		subset = fs.String("only", "", "comma-separated experiment ids (default: all)")
		timing = fs.Bool("timing", true, "append the wall-clock generation time")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := experiments.NewContext(*scale)
	if *bench != "" {
		for _, b := range strings.Split(*bench, ",") {
			b = strings.TrimSpace(b)
			if _, err := workload.ByName(b); err != nil {
				return cli.Usagef("%v", err)
			}
			ctx.Benchmarks = append(ctx.Benchmarks, b)
		}
	}

	toRun := experiments.All()
	if *subset != "" {
		var filtered []experiments.Experiment
		for _, id := range strings.Split(*subset, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return cli.Usagef("%v", err)
			}
			filtered = append(filtered, e)
		}
		toRun = filtered
	}

	w := stdout
	var flush func() error
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		flush = func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
		w = bw
	}

	fmt.Fprintf(w, "# Regenerated evaluation — skewed branch predictor (ISCA 1997)\n\n")
	fmt.Fprintf(w, "Workload scale %.3g; see EXPERIMENTS.md for the paper-vs-measured discussion.\n\n",
		effectiveScale(*scale))

	start := time.Now()
	for _, e := range toRun {
		fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title)
		fmt.Fprintf(w, "*Paper:* %s\n\n", e.Paper)
		result, err := e.Run(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w, "```")
		if err := result.WriteText(w); err != nil {
			return err
		}
		fmt.Fprintln(w, "```")
		if *plots {
			if hasFigure(result) {
				fmt.Fprintln(w, "\n```")
				if err := experiments.WritePlot(w, result); err != nil {
					return err
				}
				fmt.Fprintln(w, "```")
			}
		}
		fmt.Fprintln(w)
	}
	if *timing {
		fmt.Fprintf(w, "---\nGenerated in %v.\n", time.Since(start).Round(time.Second))
	}
	if flush != nil {
		return flush()
	}
	return nil
}

// hasFigure reports whether the result contains at least one figure
// worth plotting.
func hasFigure(r experiments.Renderable) bool {
	switch v := r.(type) {
	case *report.Figure:
		return true
	case *experiments.Bundle:
		for _, item := range v.Items {
			if hasFigure(item) {
				return true
			}
		}
	}
	return false
}

func effectiveScale(s float64) float64 {
	if s <= 0 {
		return experiments.DefaultScale
	}
	return s
}
