// Command report regenerates the paper's entire evaluation section as
// one Markdown document: every table and figure (figures both as data
// tables and ASCII charts), with the experiment descriptions inline.
//
// Usage:
//
//	report -o REPORT.md [-scale 0.1] [-bench groff,gs] [-plots=false]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gskew/internal/experiments"
	"gskew/internal/report"
	"gskew/internal/workload"
)

func main() {
	var (
		out    = flag.String("o", "", "output file (default stdout)")
		scale  = flag.Float64("scale", 0, "workload scale factor (0 = default 0.1)")
		bench  = flag.String("bench", "", "comma-separated benchmark subset")
		plots  = flag.Bool("plots", true, "include ASCII charts for figures")
		subset = flag.String("only", "", "comma-separated experiment ids (default: all)")
	)
	flag.Parse()

	ctx := experiments.NewContext(*scale)
	if *bench != "" {
		for _, b := range strings.Split(*bench, ",") {
			b = strings.TrimSpace(b)
			if _, err := workload.ByName(b); err != nil {
				fatal(err)
			}
			ctx.Benchmarks = append(ctx.Benchmarks, b)
		}
	}

	toRun := experiments.All()
	if *subset != "" {
		var filtered []experiments.Experiment
		for _, id := range strings.Split(*subset, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			filtered = append(filtered, e)
		}
		toRun = filtered
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}

	fmt.Fprintf(w, "# Regenerated evaluation — skewed branch predictor (ISCA 1997)\n\n")
	fmt.Fprintf(w, "Workload scale %.3g; see EXPERIMENTS.md for the paper-vs-measured discussion.\n\n",
		effectiveScale(*scale))

	start := time.Now()
	for _, e := range toRun {
		fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title)
		fmt.Fprintf(w, "*Paper:* %s\n\n", e.Paper)
		result, err := e.Run(ctx)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Fprintln(w, "```")
		if err := result.WriteText(w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "```")
		if *plots {
			if hasFigure(result) {
				fmt.Fprintln(w, "\n```")
				if err := experiments.WritePlot(w, result); err != nil {
					fatal(err)
				}
				fmt.Fprintln(w, "```")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "---\nGenerated in %v.\n", time.Since(start).Round(time.Second))
}

// hasFigure reports whether the result contains at least one figure
// worth plotting.
func hasFigure(r experiments.Renderable) bool {
	switch v := r.(type) {
	case *report.Figure:
		return true
	case *experiments.Bundle:
		for _, item := range v.Items {
			if hasFigure(item) {
				return true
			}
		}
	}
	return false
}

func effectiveScale(s float64) float64 {
	if s <= 0 {
		return experiments.DefaultScale
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
