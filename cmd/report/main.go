// Command report regenerates the paper's entire evaluation section as
// one Markdown document: every table and figure (figures both as data
// tables and ASCII charts), with the experiment descriptions inline.
//
// Usage:
//
//	report -o REPORT.md [-scale 0.1] [-bench groff,gs] [-plots=false]
//
// -manifest FILE additionally writes a machine-readable run record:
// every simulation cell with its predictor specs, scalar results
// (sim.Result JSON) and wall time. -progress prints live per-cell
// completion lines to stderr.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gskew/internal/cli"
	"gskew/internal/experiments"
	"gskew/internal/obs"
	"gskew/internal/report"
	"gskew/internal/workload"
)

func main() { cli.Main("report", run) }

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("report", stderr)
	var (
		out    = fs.String("o", "", "output file (default stdout)")
		scale  = fs.Float64("scale", 0, "workload scale factor (0 = default 0.1)")
		bench  = fs.String("bench", "", "comma-separated benchmark subset")
		plots  = fs.Bool("plots", true, "include ASCII charts for figures")
		subset = fs.String("only", "", "comma-separated experiment ids (default: all)")
		timing = fs.Bool("timing", true, "append the wall-clock generation time")

		manifestOut = fs.String("manifest", "", "write a JSON run manifest (cells, results, timing) to this file")
		progress    = fs.Bool("progress", false, "print live per-cell progress lines to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := experiments.NewContext(*scale)
	var manifest *obs.Manifest
	if *manifestOut != "" || *progress {
		obs.Enable()
		runObs := &experiments.RunObs{}
		if *progress {
			runObs.Progress = obs.NewProgress(stderr, 0)
		}
		if *manifestOut != "" {
			manifest = obs.NewManifest("report", args)
			manifest.SetParam("scale", effectiveScale(*scale))
			manifest.SetParam("bench", *bench)
			manifest.SetParam("only", *subset)
			runObs.Manifest = manifest
		}
		ctx.Obs = runObs
	}
	if *bench != "" {
		for _, b := range strings.Split(*bench, ",") {
			b = strings.TrimSpace(b)
			if _, err := workload.ByName(b); err != nil {
				return cli.Usagef("%v", err)
			}
			ctx.Benchmarks = append(ctx.Benchmarks, b)
		}
	}

	toRun := experiments.All()
	if *subset != "" {
		var filtered []experiments.Experiment
		for _, id := range strings.Split(*subset, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return cli.Usagef("%v", err)
			}
			filtered = append(filtered, e)
		}
		toRun = filtered
	}

	w := stdout
	var flush func() error
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		flush = func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
		w = bw
	}

	fmt.Fprintf(w, "# Regenerated evaluation — skewed branch predictor (ISCA 1997)\n\n")
	fmt.Fprintf(w, "Workload scale %.3g; see EXPERIMENTS.md for the paper-vs-measured discussion.\n\n",
		effectiveScale(*scale))

	start := time.Now()
	for _, e := range toRun {
		fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title)
		fmt.Fprintf(w, "*Paper:* %s\n\n", e.Paper)
		result, err := e.Run(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w, "```")
		if err := result.WriteText(w); err != nil {
			return err
		}
		fmt.Fprintln(w, "```")
		if *plots {
			if hasFigure(result) {
				fmt.Fprintln(w, "\n```")
				if err := experiments.WritePlot(w, result); err != nil {
					return err
				}
				fmt.Fprintln(w, "```")
			}
		}
		fmt.Fprintln(w)
	}
	if *timing {
		fmt.Fprintf(w, "---\nGenerated in %v.\n", time.Since(start).Round(time.Second))
	}
	if manifest != nil {
		if err := manifest.WriteFile(*manifestOut); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "[manifest (%d cell(s)) -> %s]\n", len(manifest.Cells), *manifestOut)
	}
	if flush != nil {
		return flush()
	}
	return nil
}

// hasFigure reports whether the result contains at least one figure
// worth plotting.
func hasFigure(r experiments.Renderable) bool {
	switch v := r.(type) {
	case *report.Figure:
		return true
	case *experiments.Bundle:
		for _, item := range v.Items {
			if hasFigure(item) {
				return true
			}
		}
	}
	return false
}

func effectiveScale(s float64) float64 {
	if s <= 0 {
		return experiments.DefaultScale
	}
	return s
}
