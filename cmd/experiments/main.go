// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -id fig5 [-scale 0.1] [-bench groff,gs] [-format text|csv]
//	experiments -all [-scale 0.03] [-jobs N]
//
// Each experiment prints its result as an aligned text table (or CSV),
// with one sub-table per benchmark for the paper's per-benchmark
// figures.
//
// -jobs bounds the concurrent (experiment, benchmark) simulation cells
// (default GOMAXPROCS; -jobs 1 runs fully serially). Results are
// assembled in experiment order whatever the completion order, and
// timing lines go to stderr, so stdout is byte-identical across -jobs
// settings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gskew/internal/cli"
	"gskew/internal/experiments"
	"gskew/internal/workload"
)

// prof is package-level so fatal can flush profiles on error exits.
var prof cli.Profile

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		id     = flag.String("id", "", "experiment id to run (e.g. table1, fig5)")
		all    = flag.Bool("all", false, "run every experiment")
		scale  = flag.Float64("scale", 0, "workload scale factor (0 = default 0.1; 1.0 = paper-length traces)")
		bench  = flag.String("bench", "", "comma-separated benchmark subset (default: all six)")
		format = flag.String("format", "text", "output format: text, csv or plot (ASCII charts)")
		seed   = flag.Uint64("seed", 0, "seed offset for workload generation")
		jobs   = flag.Int("jobs", 0, "max concurrent simulation cells (0 = GOMAXPROCS; 1 = serial)")
	)
	prof.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop() // early returns (e.g. -list); Stop is idempotent

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-24s %s\n", e.ID, e.Title)
			fmt.Printf("  %-24s paper: %s\n", "", e.Paper)
		}
		return
	}

	ctx := experiments.NewContext(*scale)
	ctx.SeedOffset = *seed
	ctx.Sched = experiments.NewSched(*jobs)
	if *bench != "" {
		for _, b := range strings.Split(*bench, ",") {
			b = strings.TrimSpace(b)
			if _, err := workload.ByName(b); err != nil {
				fatal(err)
			}
			ctx.Benchmarks = append(ctx.Benchmarks, b)
		}
	}

	var toRun []experiments.Experiment
	switch {
	case *all:
		toRun = experiments.All()
	case *id != "":
		e, err := experiments.ByID(*id)
		if err != nil {
			fatal(err)
		}
		toRun = []experiments.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "specify -list, -id <experiment> or -all")
		flag.Usage()
		os.Exit(2)
	}

	// Run every experiment through the scheduler — independent
	// (experiment, benchmark) cells execute on up to -jobs goroutines —
	// then render in experiment order, so stdout does not depend on
	// -jobs. Timing goes to stderr for the same reason.
	start := time.Now()
	results, err := experiments.RunAll(ctx, toRun)
	if err != nil {
		fatal(err)
	}
	for i, e := range toRun {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		var err error
		switch *format {
		case "text":
			err = results[i].WriteText(os.Stdout)
		case "csv":
			err = results[i].WriteCSV(os.Stdout)
		case "plot":
			err = experiments.WritePlot(os.Stdout, results[i])
		default:
			fatal(fmt.Errorf("unknown format %q", *format))
		}
		if err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "[%d experiment(s) completed in %v, jobs=%d]\n",
		len(toRun), time.Since(start).Round(time.Millisecond), ctx.Sched.Jobs())
	if err := prof.Stop(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	prof.Stop() // flush any partial profiles before exiting
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
