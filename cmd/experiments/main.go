// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -id fig5 [-scale 0.1] [-bench groff,gs] [-format text|csv]
//	experiments -all [-scale 0.03] [-jobs N]
//
// Each experiment prints its result as an aligned text table (or CSV),
// with one sub-table per benchmark for the paper's per-benchmark
// figures.
//
// -jobs bounds the concurrent (experiment, benchmark) simulation cells
// (default GOMAXPROCS; -jobs 1 runs fully serially). Results are
// assembled in experiment order whatever the completion order, and
// timing lines go to stderr, so stdout is byte-identical across -jobs
// settings.
//
// -segments additionally splits each cell's trace into N contiguous
// segments simulated concurrently by the segment-parallel engine
// (sim.Options.Segments). Segmentation is an execution strategy, not
// a model change: results — and therefore stdout — are byte-identical
// across -segments settings too.
//
// Run telemetry is opt-in and never touches stdout:
//
//	-progress            live per-cell completion lines on stderr
//	-manifest FILE       JSON run manifest (configs, timing, versions)
//	-intervals N         per-cell misprediction curves every N branches
//	-intervals-out FILE  where the curves go (JSON; default stderr)
//	-debug-addr ADDR     expvar/pprof/metrics HTTP endpoint
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gskew/internal/cli"
	"gskew/internal/experiments"
	"gskew/internal/obs"
	"gskew/internal/tracepool"
	"gskew/internal/workload"
)

// prof is package-level so fatal can flush profiles on error exits.
var prof cli.Profile

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		id       = flag.String("id", "", "experiment id to run (e.g. table1, fig5)")
		runID    = flag.String("run", "", "alias for -id; a bare name also tries the ext- prefix (e.g. -run shootout)")
		all      = flag.Bool("all", false, "run every experiment")
		scale    = flag.Float64("scale", 0, "workload scale factor (0 = default 0.1; 1.0 = paper-length traces)")
		bench    = flag.String("bench", "", "comma-separated benchmark subset (default: all six)")
		format   = flag.String("format", "text", "output format: text, csv or plot (ASCII charts)")
		seed     = flag.Uint64("seed", 0, "seed offset for workload generation")
		jobs     = flag.Int("jobs", 0, "max concurrent simulation cells (0 = GOMAXPROCS; 1 = serial)")
		segments = flag.Int("segments", 1, "segment-parallel split per simulation cell (bit-identical results; 1 = serial, 0 = auto)")
		poolDir  = flag.String("trace-pool", "", "content-addressed trace pool directory: reuse pooled workload traces across runs and processes (empty = off)")

		progress     = flag.Bool("progress", false, "print live per-cell progress lines to stderr")
		manifestOut  = flag.String("manifest", "", "write a JSON run manifest (configs, timing, versions) to this file")
		intervals    = flag.Int("intervals", 0, "record per-cell misprediction curves every N conditional branches (0 = off)")
		intervalsOut = flag.String("intervals-out", "", "write interval curves as JSON to this file (default stderr)")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:0)")
	)
	prof.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop() // early returns (e.g. -list); Stop is idempotent

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-24s %s\n", e.ID, e.Title)
			fmt.Printf("  %-24s paper: %s\n", "", e.Paper)
		}
		return
	}

	if *debugAddr != "" {
		bound, err := obs.Serve(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[debug endpoint on http://%s]\n", bound)
	}

	ctx := experiments.NewContext(*scale)
	ctx.SeedOffset = *seed
	ctx.Sched = experiments.NewSched(*jobs)
	ctx.Segments = *segments
	if *poolDir != "" {
		pool, err := tracepool.Open(len(workload.Names()), *poolDir)
		if err != nil {
			fatal(err)
		}
		ctx.Pool = pool
	}
	if *bench != "" {
		for _, b := range strings.Split(*bench, ",") {
			b = strings.TrimSpace(b)
			if _, err := workload.ByName(b); err != nil {
				fatal(err)
			}
			ctx.Benchmarks = append(ctx.Benchmarks, b)
		}
	}

	// Telemetry is opt-in: with none of the flags set ctx.Obs stays nil
	// and every cell runs exactly as before. All telemetry goes to
	// stderr or files, keeping stdout byte-identical.
	var runObs *experiments.RunObs
	var manifest *obs.Manifest
	if *progress || *manifestOut != "" || *intervals > 0 {
		obs.Enable()
		runObs = &experiments.RunObs{Intervals: *intervals}
		if *progress {
			runObs.Progress = obs.NewProgress(os.Stderr, 0)
		}
		if *manifestOut != "" {
			manifest = obs.NewManifest("experiments", os.Args[1:])
			effScale := *scale
			if effScale <= 0 {
				effScale = experiments.DefaultScale
			}
			manifest.SetParam("scale", effScale)
			manifest.SetParam("seed", *seed)
			manifest.SetParam("jobs", ctx.Sched.Jobs())
			manifest.SetParam("bench", ctx.BenchmarkNames())
			runObs.Manifest = manifest
		}
		ctx.Obs = runObs
	}

	if *runID != "" {
		if *id != "" && *id != *runID {
			fatal(fmt.Errorf("-id %q and -run %q conflict; specify one", *id, *runID))
		}
		*id = *runID
	}
	var toRun []experiments.Experiment
	switch {
	case *all:
		toRun = experiments.All()
	case *id != "":
		e, err := experiments.ByID(*id)
		if err != nil {
			// Accept bare extension names: -run shootout = -run ext-shootout.
			ext, extErr := experiments.ByID("ext-" + *id)
			if extErr != nil {
				fatal(err)
			}
			e = ext
		}
		toRun = []experiments.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "specify -list, -id <experiment> or -all")
		flag.Usage()
		os.Exit(2)
	}

	// Run every experiment through the scheduler — independent
	// (experiment, benchmark) cells execute on up to -jobs goroutines —
	// then render in experiment order, so stdout does not depend on
	// -jobs. Timing goes to stderr for the same reason.
	start := time.Now()
	results, err := experiments.RunAll(ctx, toRun)
	if err != nil {
		fatal(err)
	}
	for i, e := range toRun {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		var err error
		switch *format {
		case "text":
			err = results[i].WriteText(os.Stdout)
		case "csv":
			err = results[i].WriteCSV(os.Stdout)
		case "plot":
			err = experiments.WritePlot(os.Stdout, results[i])
		default:
			fatal(fmt.Errorf("unknown format %q", *format))
		}
		if err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "[%d experiment(s) completed in %v, jobs=%d]\n",
		len(toRun), time.Since(start).Round(time.Millisecond), ctx.Sched.Jobs())

	if runObs != nil && *intervals > 0 {
		series := runObs.Series()
		if *intervalsOut != "" {
			f, err := os.Create(*intervalsOut)
			if err != nil {
				fatal(err)
			}
			err = obs.WriteSeriesJSON(f, series)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "[%d interval curve(s) -> %s]\n", len(series), *intervalsOut)
		} else if err := obs.WriteSeriesJSON(os.Stderr, series); err != nil {
			fatal(err)
		}
	}
	if manifest != nil {
		if err := manifest.WriteFile(*manifestOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[manifest (%d cell(s)) -> %s]\n", len(manifest.Cells), *manifestOut)
	}
	if err := prof.Stop(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	prof.Stop() // flush any partial profiles before exiting
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
