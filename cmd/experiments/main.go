// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -id fig5 [-scale 0.1] [-bench groff,gs] [-format text|csv]
//	experiments -all [-scale 0.03]
//
// Each experiment prints its result as an aligned text table (or CSV),
// with one sub-table per benchmark for the paper's per-benchmark
// figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gskew/internal/experiments"
	"gskew/internal/workload"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		id     = flag.String("id", "", "experiment id to run (e.g. table1, fig5)")
		all    = flag.Bool("all", false, "run every experiment")
		scale  = flag.Float64("scale", 0, "workload scale factor (0 = default 0.1; 1.0 = paper-length traces)")
		bench  = flag.String("bench", "", "comma-separated benchmark subset (default: all six)")
		format = flag.String("format", "text", "output format: text, csv or plot (ASCII charts)")
		seed   = flag.Uint64("seed", 0, "seed offset for workload generation")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-24s %s\n", e.ID, e.Title)
			fmt.Printf("  %-24s paper: %s\n", "", e.Paper)
		}
		return
	}

	ctx := experiments.NewContext(*scale)
	ctx.SeedOffset = *seed
	if *bench != "" {
		for _, b := range strings.Split(*bench, ",") {
			b = strings.TrimSpace(b)
			if _, err := workload.ByName(b); err != nil {
				fatal(err)
			}
			ctx.Benchmarks = append(ctx.Benchmarks, b)
		}
	}

	var toRun []experiments.Experiment
	switch {
	case *all:
		toRun = experiments.All()
	case *id != "":
		e, err := experiments.ByID(*id)
		if err != nil {
			fatal(err)
		}
		toRun = []experiments.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "specify -list, -id <experiment> or -all")
		flag.Usage()
		os.Exit(2)
	}

	for i, e := range toRun {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		result, err := e.Run(ctx)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		switch *format {
		case "text":
			err = result.WriteText(os.Stdout)
		case "csv":
			err = result.WriteCSV(os.Stdout)
		case "plot":
			err = experiments.WritePlot(os.Stdout, result)
		default:
			fatal(fmt.Errorf("unknown format %q", *format))
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
