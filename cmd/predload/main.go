// Command predload is the typed-client toolbelt and load generator for
// predserved. Every byte it sends travels through internal/client —
// it is both the reference consumer of the /v1 wire contract and the
// machinery behind the serve/cluster smoke scripts and the serving
// benchmark snapshot (BENCH_serve.json).
//
// Subcommands:
//
//	sweep     zipfian spec/trace load against live or in-process nodes;
//	          emits p50/p99/p999 latency and cache-hit curves as JSON
//	simulate  post one SimulateRequest (JSON from a file or stdin),
//	          print the raw response body
//	ingest    upload a binary trace file, print the ingest response
//	trace     fetch a pooled trace by hash, write the canonical bytes
//	health    print GET /v1/health
//	metric    print one numeric /metrics value (smoke counter deltas)
//	ring      print GET /internal/v1/ring
//	topology  push a TopologyUpdate to every listed node (resharding)
//
// Examples:
//
//	predload sweep -nodes 3 -passes 3 -requests 120 -out BENCH_serve.json
//	predload simulate -target http://127.0.0.1:8149 -body sweep.json
//	predload metric -target http://127.0.0.1:8149 server.simulate.cache_hits
//	predload topology -targets http://n0,http://n1,http://n2 -replicas 2
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"gskew/internal/api"
	"gskew/internal/cli"
	"gskew/internal/client"
)

func main() { cli.Main("predload", run) }

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return cli.Usagef("no subcommand: want sweep, simulate, ingest, trace, health, metric, ring or topology")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "sweep":
		return runSweep(rest, stdout, stderr)
	case "simulate":
		return runSimulate(rest, stdout, stderr)
	case "ingest":
		return runIngest(rest, stdout, stderr)
	case "trace":
		return runTrace(rest, stdout, stderr)
	case "health":
		return runHealth(rest, stdout, stderr)
	case "metric":
		return runMetric(rest, stdout, stderr)
	case "ring":
		return runRing(rest, stdout, stderr)
	case "topology":
		return runTopology(rest, stdout, stderr)
	default:
		return cli.Usagef("unknown subcommand %q", cmd)
	}
}

// targetFlag declares the shared -target flag.
func targetFlag(fs interface {
	String(name, value, usage string) *string
}) *string {
	return fs.String("target", "http://127.0.0.1:8149", "predserved base URL")
}

// printJSON renders v in the server's deterministic 2-space style.
func printJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// runSimulate posts one SimulateRequest read from -body (a file, or
// "-" for stdin) and writes the raw response body to stdout, so shell
// pipelines can cmp responses byte-for-byte. The X-Cache summary goes
// to stderr.
func runSimulate(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("predload simulate", stderr)
	target := targetFlag(fs)
	body := fs.String("body", "-", "SimulateRequest JSON file (- = stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	raw, err := readInput(*body)
	if err != nil {
		return err
	}
	var req api.SimulateRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return fmt.Errorf("parsing request body: %w", err)
	}
	resp, stats, err := client.New(*target).SimulateRaw(context.Background(), &req)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "X-Cache: hits=%d misses=%d\n", stats.Hits, stats.Misses)
	_, err = stdout.Write(resp)
	return err
}

// runIngest uploads a binary trace file and prints the response.
func runIngest(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("predload ingest", stderr)
	target := targetFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return cli.Usagef("want exactly one trace file argument")
	}
	raw, err := readInput(fs.Arg(0))
	if err != nil {
		return err
	}
	resp, err := client.New(*target).IngestTrace(context.Background(), raw)
	if err != nil {
		return err
	}
	return printJSON(stdout, resp)
}

// runTrace fetches a pooled segment's canonical bytes.
func runTrace(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("predload trace", stderr)
	target := targetFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return cli.Usagef("want exactly one trace hash argument")
	}
	data, err := client.New(*target).GetTrace(context.Background(), fs.Arg(0))
	if err != nil {
		return err
	}
	_, err = stdout.Write(data)
	return err
}

// runHealth prints the typed health document.
func runHealth(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("predload health", stderr)
	target := targetFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, err := client.New(*target).Health(context.Background())
	if err != nil {
		return err
	}
	return printJSON(stdout, h)
}

// runMetric prints one numeric metric value (bare, for shell
// arithmetic in the smoke scripts).
func runMetric(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("predload metric", stderr)
	target := targetFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return cli.Usagef("want exactly one metric name argument")
	}
	v, err := client.New(*target).Metric(context.Background(), fs.Arg(0))
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(stdout, v)
	return err
}

// runRing prints the node's current membership view.
func runRing(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("predload ring", stderr)
	target := targetFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	info, err := client.New(*target).Ring(context.Background())
	if err != nil {
		return err
	}
	return printJSON(stdout, info)
}

// runTopology pushes one TopologyUpdate — the full member set — to
// every member (static-topology discipline: a reshard is delivered
// everywhere, or the sender keeps retrying until it is).
func runTopology(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("predload topology", stderr)
	targets := fs.String("targets", "", "comma-separated node base URLs (the new member set)")
	replicas := fs.Int("replicas", 1, "replication factor R")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	nodes := splitList(*targets)
	if len(nodes) == 0 {
		return cli.Usagef("-targets must list at least one node")
	}
	upd := &api.TopologyUpdate{Nodes: nodes, Replicas: *replicas}
	for _, n := range nodes {
		info, err := client.New(n).SetTopology(context.Background(), upd)
		if err != nil {
			return fmt.Errorf("pushing topology to %s: %w", n, err)
		}
		fmt.Fprintf(stdout, "%s gen=%d replicas=%d nodes=%d\n", n, info.Gen, info.Replicas, len(info.Nodes))
	}
	return nil
}

// readInput reads a file, or stdin for "-".
func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
