package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"gskew/internal/api"
	"gskew/internal/cli"
	"gskew/internal/client"
	"gskew/internal/cluster"
	"gskew/internal/server"
	"gskew/internal/store"
	"gskew/internal/tracepool"
)

// The sweep subcommand drives a zipfian request mix against one or
// more predserved nodes and reports latency quantiles and cache-hit
// curves. The cell universe is -cells distinct store keys built from
// one cheap spec by varying Options.FlushEvery (options are part of
// the content address, so each variant is its own cell); a zipfian
// draw over that universe gives the hot/cold skew a shared cache
// feeds on. Cells are revisited across -passes passes, so the hit
// rate must climb as the store (and, in cluster mode, peer fill)
// warms. Every response body is checked against the first body seen
// for its cell — byte identity under load is the same invariant the
// cluster smoke asserts with cmp.

// sweepReport is the BENCH_serve.json schema.
type sweepReport struct {
	Config     sweepConfig `json:"config"`
	ColdP50US  int64       `json:"cold_p50_us"`
	CachedP50  int64       `json:"cached_p50_us"`
	Passes     []passStats `json:"passes"`
	Identical  bool        `json:"bodies_identical"`
	TotalHits  int         `json:"total_hits"`
	TotalMiss  int         `json:"total_misses"`
	ElapsedMS  int64       `json:"elapsed_ms"`
	TargetsHit []string    `json:"targets"`
}

type sweepConfig struct {
	Cells       int     `json:"cells"`
	Passes      int     `json:"passes"`
	Requests    int     `json:"requests_per_pass"`
	Concurrency int     `json:"concurrency"`
	ZipfS       float64 `json:"zipf_s"`
	Seed        int64   `json:"seed"`
	Spec        string  `json:"spec"`
	Bench       string  `json:"bench"`
	Scale       float64 `json:"scale"`
	Nodes       int     `json:"nodes"`
	Replicas    int     `json:"replicas"`
}

type passStats struct {
	Pass     int     `json:"pass"`
	Requests int     `json:"requests"`
	Hits     int     `json:"hits"`
	Misses   int     `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	P50US    int64   `json:"p50_us"`
	P99US    int64   `json:"p99_us"`
	P999US   int64   `json:"p999_us"`
}

// sample is one request's outcome.
type sample struct {
	cell    int
	latency time.Duration
	stats   client.CacheStats
	body    string
	err     error
}

func runSweep(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("predload sweep", stderr)
	targets := fs.String("targets", "", "comma-separated node base URLs (default: boot -nodes in-process)")
	nodes := fs.Int("nodes", 1, "in-process nodes to boot when -targets is empty")
	replicas := fs.Int("replicas", 1, "replication factor for in-process nodes")
	cells := fs.Int("cells", 27, "distinct store cells in the universe")
	passes := fs.Int("passes", 3, "zipfian passes over the universe")
	requests := fs.Int("requests", 0, "requests per pass (default 3x cells)")
	concurrency := fs.Int("concurrency", 4, "in-flight requests")
	zipfS := fs.Float64("zipf-s", 1.2, "zipf exponent (>1; larger = hotter head)")
	seed := fs.Int64("seed", 1, "zipf sequence seed")
	spec := fs.String("spec", "gshare:n=8,k=6", "predictor spec every cell shares")
	bench := fs.String("bench", "verilog", "built-in benchmark workload")
	scale := fs.Float64("scale", 0.002, "workload scale factor")
	out := fs.String("out", "", "write the JSON report here (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	if *cells < 1 || *passes < 1 || *concurrency < 1 {
		return cli.Usagef("-cells, -passes and -concurrency must be positive")
	}
	if *zipfS <= 1 {
		return cli.Usagef("-zipf-s must be > 1")
	}
	if *requests == 0 {
		*requests = 3 * *cells
	}

	urls := splitList(*targets)
	booted := 0
	if len(urls) == 0 {
		var stop func()
		var err error
		urls, stop, err = bootNodes(*nodes, *replicas)
		if err != nil {
			return err
		}
		defer stop()
		booted = *nodes
		fmt.Fprintf(stderr, "booted %d in-process node(s): %v\n", *nodes, urls)
	}
	clients := make([]*client.Client, len(urls))
	for i, u := range urls {
		clients[i] = client.New(u)
	}

	cfg := sweepConfig{
		Cells: *cells, Passes: *passes, Requests: *requests,
		Concurrency: *concurrency, ZipfS: *zipfS, Seed: *seed,
		Spec: *spec, Bench: *bench, Scale: *scale,
		Nodes: booted, Replicas: *replicas,
	}
	report, err := sweep(clients, cfg, stderr)
	if err != nil {
		return err
	}
	report.TargetsHit = urls
	if *out == "" {
		return printJSON(stdout, report)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := printJSON(f, report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", *out)
	return nil
}

// cellRequest builds the SimulateRequest addressing one cell. The
// FlushEvery offset keeps flushes from ever firing on the scaled
// trace — the cells differ only in content address, so the universe
// is cheap to fill but exercises the full store/peer-fill path.
func cellRequest(cfg sweepConfig, cell int) *api.SimulateRequest {
	return &api.SimulateRequest{
		Specs:   []string{cfg.Spec},
		Bench:   cfg.Bench,
		Scale:   cfg.Scale,
		Options: store.Options{FlushEvery: flushBase + cell},
	}
}

// sweep runs the full multi-pass load and assembles the report.
func sweep(clients []*client.Client, cfg sweepConfig, stderr io.Writer) (*sweepReport, error) {
	zr := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(zr, cfg.ZipfS, 1, uint64(cfg.Cells-1))

	report := &sweepReport{Config: cfg, Identical: true}
	var coldLat, warmLat []time.Duration
	bodies := make(map[int]string, cfg.Cells)
	start := time.Now()

	for pass := 1; pass <= cfg.Passes; pass++ {
		// Draw the pass's cell sequence up front so the zipf stream is
		// deterministic regardless of worker interleaving.
		seq := make([]int, cfg.Requests)
		for i := range seq {
			seq[i] = int(zipf.Uint64())
		}
		samples, err := runPass(clients, cfg, seq)
		if err != nil {
			return nil, err
		}

		ps := passStats{Pass: pass, Requests: len(samples)}
		var lats []time.Duration
		for _, s := range samples {
			ps.Hits += s.stats.Hits
			ps.Misses += s.stats.Misses
			lats = append(lats, s.latency)
			if s.stats.Misses > 0 {
				coldLat = append(coldLat, s.latency)
			} else {
				warmLat = append(warmLat, s.latency)
			}
			if prev, ok := bodies[s.cell]; ok {
				if prev != s.body {
					report.Identical = false
				}
			} else {
				bodies[s.cell] = s.body
			}
		}
		if total := ps.Hits + ps.Misses; total > 0 {
			ps.HitRate = float64(ps.Hits) / float64(total)
		}
		ps.P50US = quantileUS(lats, 0.50)
		ps.P99US = quantileUS(lats, 0.99)
		ps.P999US = quantileUS(lats, 0.999)
		report.Passes = append(report.Passes, ps)
		report.TotalHits += ps.Hits
		report.TotalMiss += ps.Misses
		fmt.Fprintf(stderr, "pass %d: %d req, hit rate %.3f, p50 %dus p99 %dus\n",
			pass, ps.Requests, ps.HitRate, ps.P50US, ps.P99US)
	}

	report.ColdP50US = quantileUS(coldLat, 0.50)
	report.CachedP50 = quantileUS(warmLat, 0.50)
	report.ElapsedMS = time.Since(start).Milliseconds()
	if !report.Identical {
		return nil, fmt.Errorf("byte-identity violated: same cell returned different bodies under load")
	}
	return report, nil
}

// runPass issues one pass's requests across the workers, round-robin
// over the targets.
func runPass(clients []*client.Client, cfg sweepConfig, seq []int) ([]sample, error) {
	type job struct{ idx, cell int }
	jobs := make(chan job)
	samples := make([]sample, len(seq))
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				c := clients[j.idx%len(clients)]
				req := cellRequest(cfg, j.cell)
				t0 := time.Now()
				body, stats, err := c.SimulateRaw(context.Background(), req)
				samples[j.idx] = sample{
					cell:    j.cell,
					latency: time.Since(t0),
					stats:   stats,
					body:    string(body),
					err:     err,
				}
			}
		}()
	}
	for i, cell := range seq {
		jobs <- job{idx: i, cell: cell}
	}
	close(jobs)
	wg.Wait()
	for _, s := range samples {
		if s.err != nil {
			return nil, fmt.Errorf("cell %d: %w", s.cell, s.err)
		}
	}
	return samples, nil
}

// flushBase keeps the per-cell FlushEvery far above any scaled trace
// length, so the option varies the content address without ever
// triggering a flush.
const flushBase = 1 << 30

// quantileUS returns the q-th latency quantile in microseconds.
func quantileUS(lats []time.Duration, q float64) int64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Microseconds()
}

// bootNodes starts n in-process predserved nodes on loopback ports
// that know each other, for self-contained benchmarking without a
// running daemon. Returns the node URLs and a shutdown func.
func bootNodes(n, replicas int) ([]string, func(), error) {
	if n < 1 {
		return nil, nil, cli.Usagef("-nodes must be positive")
	}
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	servers := make([]*http.Server, n)
	for i := range listeners {
		cl, err := cluster.New(cluster.Config{Self: urls[i], Nodes: urls, Replicas: replicas})
		if err != nil {
			return nil, nil, err
		}
		st, err := store.Open(4096, "")
		if err != nil {
			return nil, nil, err
		}
		pool, err := tracepool.Open(64, "")
		if err != nil {
			return nil, nil, err
		}
		servers[i] = &http.Server{Handler: server.New(server.Config{Store: st, Pool: pool, Cluster: cl}).Handler()}
		go servers[i].Serve(listeners[i])
	}
	stop := func() {
		for _, hs := range servers {
			hs.Close()
		}
	}
	return urls, stop, nil
}
