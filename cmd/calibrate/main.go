// Command calibrate reports the dynamic composition of a synthetic
// program's branch stream and the per-behaviour-class misprediction of
// an ideal (unaliased) predictor. It exists to keep the workload
// generator honest against the paper's Table 2 targets: run it after
// touching the generator and check that the dynamic mix is dominated
// by predictable branches.
//
// Usage: calibrate [-sites 2000] [-events 300000] [-hist 12] [-seed 1]
package main

import (
	"fmt"
	"io"
	"sort"

	"gskew/internal/cfg"
	"gskew/internal/cli"
	"gskew/internal/history"

	"gskew/internal/predictor"
	"gskew/internal/trace"
)

func classify(b cfg.Behavior) string {
	switch v := b.(type) {
	case cfg.Biased:
		switch {
		case v.P >= 0.95 || v.P <= 0.05:
			return "strong-biased"
		case v.P >= 0.75 || v.P <= 0.25:
			return "weak-biased"
		default:
			return "random"
		}
	case cfg.Correlated:
		return "correlated"
	case cfg.Alternating:
		return "alternating"
	default:
		return fmt.Sprintf("%T", b)
	}
}

func main() { cli.Main("calibrate", run) }

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("calibrate", stderr)
	var (
		sites  = fs.Int("sites", 2000, "static conditional sites")
		events = fs.Int("events", 300000, "conditional branches to simulate")
		hist   = fs.Uint("hist", 12, "history bits for the unaliased predictor")
		seed   = fs.Uint64("seed", 1, "generator seed")
		trips  = fs.Float64("trips", 12, "mean loop trips")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sites <= 0 || *events <= 0 {
		return cli.Usagef("-sites and -events must be positive")
	}

	prog, err := cfg.Generate(cfg.GenConfig{
		Procs:          4 + *sites/64,
		StaticBranches: *sites,
		MeanTrips:      *trips,
	}, *seed)
	if err != nil {
		return err
	}

	// Tag every site PC with its class; loop backedges are the sites
	// attached to Loop nodes, which we identify by walking the tree.
	class := make(map[uint64]string, prog.NumSites())
	for _, s := range prog.Sites() {
		class[s.PC] = classify(s.Behavior)
	}
	markLoops(prog, class)

	w := cfg.NewWalker(prog, *seed+1)
	u := predictor.NewUnaliased(*hist, 2)
	ghr := history.NewGlobal(*hist)

	type agg struct{ events, misses int }
	perClass := make(map[string]*agg)
	total := agg{}
	cond := 0
	for cond < *events {
		b, _ := w.Next()
		if b.Kind != trace.Conditional {
			ghr.Shift(b.Taken)
			continue
		}
		cond++
		h := ghr.Bits()
		c := class[b.PC]
		a := perClass[c]
		if a == nil {
			a = &agg{}
			perClass[c] = a
		}
		a.events++
		total.events++
		if u.Seen(b.PC, h) && u.Predict(b.PC, h) != b.Taken {
			a.misses++
			total.misses++
		}
		u.Update(b.PC, h, b.Taken)
		ghr.Shift(b.Taken)
	}

	names := make([]string, 0, len(perClass))
	for n := range perClass {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(stdout, "%-14s %10s %8s %9s %12s\n", "class", "events", "share", "missrate", "contribution")
	for _, n := range names {
		a := perClass[n]
		share := float64(a.events) / float64(total.events)
		miss := float64(a.misses) / float64(a.events)
		fmt.Fprintf(stdout, "%-14s %10d %7.1f%% %8.2f%% %11.2f%%\n",
			n, a.events, 100*share, 100*miss, 100*float64(a.misses)/float64(total.events))
	}
	fmt.Fprintf(stdout, "%-14s %10d %7.1f%% %8.2f%%\n", "TOTAL", total.events, 100.0,
		100*float64(total.misses)/float64(total.events))
	return nil
}

// markLoops overrides the class of loop-backedge sites.
func markLoops(p *cfg.Program, class map[uint64]string) {
	var walk func(seq []cfg.Node)
	walk = func(seq []cfg.Node) {
		for _, n := range seq {
			switch n := n.(type) {
			case *cfg.If:
				walk(n.Then)
				walk(n.Else)
			case *cfg.Loop:
				class[n.Site.PC] = "loop-backedge"
				walk(n.Body)
			}
		}
	}
	for _, proc := range p.Procs {
		walk(proc.Body)
	}
}
