package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"gskew/internal/cli"
)

func runCalibrate(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), err
}

func TestClassTable(t *testing.T) {
	out, err := runCalibrate(t, "-sites", "300", "-events", "20000")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"class", "loop-backedge", "correlated", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestNonPositiveCountsAreUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-sites", "0"},
		{"-events", "-5"},
	} {
		_, err := runCalibrate(t, args...)
		var usage *cli.UsageError
		if !errors.As(err, &usage) {
			t.Errorf("%v: got %v, want UsageError", args, err)
		}
	}
}

func TestOutputStableOnFixedSeed(t *testing.T) {
	args := []string{"-sites", "200", "-events", "10000", "-seed", "7"}
	a, err := runCalibrate(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runCalibrate(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("output not byte-stable:\n%q\nvs\n%q", a, b)
	}
}
