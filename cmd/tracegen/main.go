// Command tracegen materialises a benchmark workload into a trace
// file, in the binary format (default) or the debug text format.
//
// -bench accepts a synthetic benchmark name or a recorded-algorithm
// spec ("algo:name,key=value,..."); -list prints every registered
// workload family with its key grammar.
//
// Examples:
//
//	tracegen -list
//	tracegen -bench groff -o groff.trace
//	tracegen -bench gs -scale 1.0 -o gs-full.trace
//	tracegen -bench groff -format columnar -o groff.ctrace
//	tracegen -bench algo:kmp,n=300000,m=8 -format columnar -o kmp.ctrace
//	tracegen -bench verilog -format text -o verilog.txt
//	tracegen -bench nroff -stats
package main

import (
	"fmt"
	"io"
	"os"

	"gskew/internal/cli"
	"gskew/internal/trace"
	"gskew/internal/workload"
)

func main() { cli.Main("tracegen", run) }

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("tracegen", stderr)
	var (
		benchName = fs.String("bench", "", "workload name: a benchmark or an algo:... spec")
		scale     = fs.Float64("scale", 0, "workload scale (default 0.1; 1.0 = paper-length; synthetic benchmarks only)")
		seed      = fs.Uint64("seed", 0, "workload seed offset")
		out       = fs.String("o", "", "output file (default stdout)")
		format    = fs.String("format", "binary", "output format: binary (varint), columnar or text")
		statsOnly = fs.Bool("stats", false, "print trace statistics instead of writing a trace")
		list      = fs.Bool("list", false, "list all registered workload families and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintf(stdout, "%-16s %-40s %s\n", "FAMILY", "KEYS", "DESCRIPTION")
		for _, f := range workload.AllFamilies() {
			fmt.Fprintf(stdout, "%-16s %-40s %s\n", f.Name, f.Keys, f.Doc)
		}
		return nil
	}

	if *benchName == "" {
		return cli.Usagef("specify -bench (see -list); available: %v + algo:... specs", workload.Names())
	}
	src, err := workload.OpenAny(*benchName, workload.Config{Scale: *scale, SeedOffset: *seed})
	if err != nil {
		return err
	}

	if *statsOnly {
		st, err := trace.Measure(src)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchmark:            %s\n", *benchName)
		fmt.Fprintf(stdout, "dynamic conditional:  %d\n", st.Dynamic)
		if spec, err := workload.ByName(*benchName); err == nil {
			fmt.Fprintf(stdout, "static conditional:   %d (spec target %d)\n", st.Static, spec.StaticBranches)
		} else {
			fmt.Fprintf(stdout, "static conditional:   %d\n", st.Static)
		}
		fmt.Fprintf(stdout, "dynamic uncond:       %d\n", st.DynamicUncond)
		fmt.Fprintf(stdout, "static uncond:        %d\n", st.StaticUncond)
		fmt.Fprintf(stdout, "taken ratio:          %.3f\n", st.TakenRatio())
		return nil
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "binary", "columnar":
		var bw interface {
			Write(trace.Branch) error
			Flush() error
		}
		if *format == "columnar" {
			bw, err = trace.NewColumnarWriter(w)
		} else {
			bw, err = trace.NewWriter(w)
		}
		if err != nil {
			return err
		}
		n := 0
		for {
			b, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := bw.Write(b); err != nil {
				return err
			}
			n++
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "tracegen: wrote %d events\n", n)
	case "text":
		if err := trace.WriteText(w, src); err != nil {
			return err
		}
	default:
		return cli.Usagef("unknown format %q", *format)
	}
	if f, ok := w.(*os.File); ok {
		return f.Close()
	}
	return nil
}
