// Command tracegen materialises a benchmark workload into a trace
// file, in the binary format (default) or the debug text format.
//
// Examples:
//
//	tracegen -bench groff -o groff.trace
//	tracegen -bench gs -scale 1.0 -o gs-full.trace
//	tracegen -bench verilog -format text -o verilog.txt
//	tracegen -bench nroff -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gskew/internal/trace"
	"gskew/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark workload name")
		scale     = flag.Float64("scale", 0, "workload scale (default 0.1; 1.0 = paper-length)")
		seed      = flag.Uint64("seed", 0, "workload seed offset")
		out       = flag.String("o", "", "output file (default stdout)")
		format    = flag.String("format", "binary", "output format: binary or text")
		statsOnly = flag.Bool("stats", false, "print trace statistics instead of writing a trace")
	)
	flag.Parse()

	if *benchName == "" {
		fmt.Fprintln(os.Stderr, "tracegen: specify -bench; available:", workload.Names())
		os.Exit(2)
	}
	spec, err := workload.ByName(*benchName)
	if err != nil {
		fatal(err)
	}
	g, err := workload.New(spec, workload.Config{Scale: *scale, SeedOffset: *seed})
	if err != nil {
		fatal(err)
	}
	src := workload.NewTake(g, g.Length())

	if *statsOnly {
		st, err := trace.Measure(src)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("benchmark:            %s\n", spec.Name)
		fmt.Printf("dynamic conditional:  %d\n", st.Dynamic)
		fmt.Printf("static conditional:   %d (spec target %d)\n", st.Static, spec.StaticBranches)
		fmt.Printf("dynamic uncond:       %d\n", st.DynamicUncond)
		fmt.Printf("static uncond:        %d\n", st.StaticUncond)
		fmt.Printf("taken ratio:          %.3f\n", st.TakenRatio())
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	switch *format {
	case "binary":
		bw, err := trace.NewWriter(w)
		if err != nil {
			fatal(err)
		}
		n := 0
		for {
			b, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
			if err := bw.Write(b); err != nil {
				fatal(err)
			}
			n++
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d events\n", n)
	case "text":
		if err := trace.WriteText(w, src); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
