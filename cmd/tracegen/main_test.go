package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gskew/internal/cli"
	"gskew/internal/trace"
)

func runTracegen(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

func TestMissingBenchIsUsageError(t *testing.T) {
	_, _, err := runTracegen(t)
	var usage *cli.UsageError
	if !errors.As(err, &usage) {
		t.Fatalf("missing -bench: got %v, want UsageError", err)
	}
}

func TestUnknownFormatIsUsageError(t *testing.T) {
	_, _, err := runTracegen(t, "-bench", "verilog", "-scale", "0.001", "-format", "yaml")
	var usage *cli.UsageError
	if !errors.As(err, &usage) {
		t.Fatalf("unknown format: got %v, want UsageError", err)
	}
}

func TestStatsMode(t *testing.T) {
	out, _, err := runTracegen(t, "-bench", "nroff", "-scale", "0.002", "-stats")
	if err != nil {
		t.Fatalf("-stats: %v", err)
	}
	for _, want := range []string{"dynamic conditional", "taken ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestBinaryToStdoutRoundTrips(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bench", "verilog", "-scale", "0.001"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stderr.String(), "wrote") {
		t.Errorf("event count missing from stderr: %q", stderr.String())
	}
	r, err := trace.NewReader(bytes.NewReader(stdout.Bytes()))
	if err != nil {
		t.Fatalf("stdout is not a binary trace: %v", err)
	}
	n := 0
	for {
		if _, err := r.Next(); err != nil {
			break
		}
		n++
	}
	if n == 0 {
		t.Error("binary trace on stdout decoded to zero records")
	}
}

func TestTextFileOutputStable(t *testing.T) {
	write := func(name string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), name)
		if _, _, err := runTracegen(t,
			"-bench", "nroff", "-scale", "0.001", "-seed", "5", "-format", "text", "-o", path); err != nil {
			t.Fatalf("run: %v", err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	a, b := write("a.txt"), write("b.txt")
	if a == "" || a != b {
		t.Errorf("text trace not byte-stable on a fixed seed (lens %d, %d)", len(a), len(b))
	}
}
