// Command aliasing runs the three-Cs aliasing classification (section
// 2 of the paper) for a given index scheme over a benchmark workload
// or trace file, printing compulsory / capacity / conflict ratios and
// the underlying tagged-table miss ratios.
//
// Examples:
//
//	aliasing -bench groff -fn gshare -entries 4096 -hist 4
//	aliasing -bench gs -fn gselect -entries 65536 -hist 12
//	aliasing -trace t.bin -fn bimodal -entries 1024
//
// -intervals N additionally emits the classification as a curve —
// per-interval total, compulsory, capacity and conflict aliasing —
// so the warmup transient (cold compulsory misses) is separable from
// the steady-state conflict behaviour the paper studies.
package main

import (
	"errors"
	"fmt"
	"io"
	"os"

	"gskew/internal/alias"
	"gskew/internal/cli"
	"gskew/internal/history"
	"gskew/internal/indexfn"
	"gskew/internal/obs"
	"gskew/internal/trace"
	"gskew/internal/workload"
)

func main() { cli.Main("aliasing", run) }

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("aliasing", stderr)
	var (
		benchName = fs.String("bench", "", "benchmark workload name")
		traceFile = fs.String("trace", "", "binary trace file (alternative to -bench)")
		scale     = fs.Float64("scale", 0, "workload scale (default 0.1)")
		fnName    = fs.String("fn", "gshare", "index function: gshare, gselect, bimodal")
		entries   = fs.Int("entries", 4096, "table entries (rounded up to a power of two)")
		hist      = fs.Uint("hist", 4, "global history bits")

		intervals    = fs.Int("intervals", 0, "record the per-class aliasing curve every N references (0 = off)")
		intervalsOut = fs.String("intervals-out", "", "write the interval curve as JSON to this file (default stderr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	n := uint(0)
	for 1<<n < *entries {
		n++
	}
	var fn indexfn.Func
	switch *fnName {
	case "gshare":
		fn = indexfn.NewGShare(n, *hist)
	case "gselect":
		fn = indexfn.NewGSelect(n, *hist)
	case "bimodal":
		fn = indexfn.NewBimodal(n)
	default:
		return cli.Usagef("unknown index function %q", *fnName)
	}

	var src trace.Source
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return err
		}
		src = r
	case *benchName != "":
		spec, err := workload.ByName(*benchName)
		if err != nil {
			return err
		}
		g, err := workload.New(spec, workload.Config{Scale: *scale})
		if err != nil {
			return err
		}
		src = workload.NewTake(g, g.Length())
	default:
		return cli.Usagef("specify -bench or -trace")
	}

	var rec *obs.Recorder
	if *intervals > 0 {
		rec = obs.NewRecorder(*intervals, fn.Name())
	}

	cl := alias.NewClassifier(fn)
	ghr := history.NewGlobal(*hist)
	for {
		b, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if b.Kind == trace.Conditional {
			class := cl.Observe(b.PC, ghr.Bits())
			if rec != nil {
				// The curve's "mispredicts" column carries total aliasing
				// (any DM miss), decomposed into the three-Cs fields.
				aliased, comp, cap, conf := 0, 0, 0, 0
				switch class {
				case alias.Compulsory:
					aliased, comp = 1, 1
				case alias.Capacity:
					aliased, cap = 1, 1
				case alias.Conflict:
					aliased, conf = 1, 1
				}
				rec.AddClassified(0, 1, aliased, comp, cap, conf)
			}
		}
		ghr.Shift(b.Taken)
	}

	if rec != nil {
		series := rec.Series()
		if *intervalsOut != "" {
			f, err := os.Create(*intervalsOut)
			if err != nil {
				return err
			}
			err = obs.WriteSeriesJSON(f, series)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(stderr, "[interval curve -> %s]\n", *intervalsOut)
		} else if err := obs.WriteSeriesJSON(stderr, series); err != nil {
			return err
		}
	}

	st := cl.Stats()
	fmt.Fprintf(stdout, "index function:   %s (%d entries, %d history bits)\n", fn.Name(), 1<<n, *hist)
	fmt.Fprintf(stdout, "references:       %d\n", st.Accesses)
	fmt.Fprintf(stdout, "DM miss ratio:    %.3f %%  (total aliasing)\n", 100*cl.DM().MissRatio())
	fmt.Fprintf(stdout, "FA-LRU miss:      %.3f %%  (compulsory + capacity)\n", 100*cl.FA().MissRatio())
	fmt.Fprintf(stdout, "compulsory:       %.3f %%\n", 100*st.CompulsoryRatio())
	fmt.Fprintf(stdout, "capacity:         %.3f %%\n", 100*st.CapacityRatio())
	fmt.Fprintf(stdout, "conflict:         %.3f %%\n", 100*st.ConflictRatio())
	return nil
}
