package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"gskew/internal/cli"
)

func runAliasing(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), err
}

func TestThreeCsReport(t *testing.T) {
	out, err := runAliasing(t,
		"-bench", "verilog", "-fn", "gshare", "-entries", "1024", "-hist", "4", "-scale", "0.002")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"compulsory", "capacity", "conflict", "DM miss ratio", "FA-LRU miss"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownIndexFnIsUsageError(t *testing.T) {
	_, err := runAliasing(t, "-bench", "verilog", "-fn", "gspaghetti")
	var usage *cli.UsageError
	if !errors.As(err, &usage) {
		t.Fatalf("unknown fn: got %v, want UsageError", err)
	}
}

func TestMissingInputIsUsageError(t *testing.T) {
	_, err := runAliasing(t, "-fn", "bimodal")
	var usage *cli.UsageError
	if !errors.As(err, &usage) {
		t.Fatalf("missing -bench/-trace: got %v, want UsageError", err)
	}
}

func TestOutputStableOnFixedSeed(t *testing.T) {
	args := []string{"-bench", "nroff", "-fn", "gselect", "-entries", "512", "-hist", "6", "-scale", "0.002"}
	a, err := runAliasing(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runAliasing(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("output not byte-stable:\n%q\nvs\n%q", a, b)
	}
}
