package main

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"

	"gskew/internal/cli"
)

func runPredsim(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

func TestRunOnBenchmark(t *testing.T) {
	out, _, err := runPredsim(t,
		"-bench", "verilog", "-pred", "gskewed", "-entries", "512", "-hist", "6", "-scale", "0.002")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"predictor:", "storage bits:", "miss rate:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMissingInputIsUsageError(t *testing.T) {
	_, _, err := runPredsim(t, "-pred", "gshare")
	var usage *cli.UsageError
	if !errors.As(err, &usage) {
		t.Fatalf("missing -bench/-trace: got %v, want UsageError", err)
	}
}

func TestUnknownPredictorIsUsageError(t *testing.T) {
	_, _, err := runPredsim(t, "-bench", "verilog", "-pred", "oracle")
	var usage *cli.UsageError
	if !errors.As(err, &usage) {
		t.Fatalf("unknown predictor: got %v, want UsageError", err)
	}
}

func TestUnknownPolicyIsUsageError(t *testing.T) {
	_, _, err := runPredsim(t, "-bench", "verilog", "-policy", "middling")
	var usage *cli.UsageError
	if !errors.As(err, &usage) {
		t.Fatalf("unknown policy: got %v, want UsageError", err)
	}
}

func TestHelpIsReturnedAsErrHelp(t *testing.T) {
	_, stderr, err := runPredsim(t, "-h")
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: got %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr, "-bench") {
		t.Errorf("usage text missing from stderr:\n%s", stderr)
	}
}

func TestMissingTraceFileIsRuntimeError(t *testing.T) {
	_, _, err := runPredsim(t, "-trace", "/no/such/file.trace")
	if err == nil {
		t.Fatal("missing trace file accepted")
	}
	var usage *cli.UsageError
	if errors.As(err, &usage) {
		t.Fatalf("missing file misclassified as usage error: %v", err)
	}
}

func TestOutputStableOnFixedSeed(t *testing.T) {
	args := []string{"-bench", "nroff", "-pred", "gshare", "-entries", "512",
		"-hist", "4", "-scale", "0.002", "-seed", "3"}
	a, _, err := runPredsim(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := runPredsim(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("output not byte-stable on a fixed seed:\n%q\nvs\n%q", a, b)
	}
}

// TestSegmentsOutputByteIdentical: -segments is a pure execution
// strategy; stdout must be byte-identical across every segment count,
// including auto (0), for both a single-table and a skewed family.
func TestSegmentsOutputByteIdentical(t *testing.T) {
	for _, pred := range []string{"gshare:n=9,k=7,ctr=2", "egskew:n=7,k=8,ctr=2"} {
		base := []string{"-bench", "verilog", "-pred", pred, "-scale", "0.01", "-seed", "7"}
		want, _, err := runPredsim(t, append(base, "-segments", "1")...)
		if err != nil {
			t.Fatal(err)
		}
		for _, segs := range []string{"0", "2", "5", "64"} {
			got, _, err := runPredsim(t, append(base, "-segments", segs)...)
			if err != nil {
				t.Fatalf("%s -segments %s: %v", pred, segs, err)
			}
			if got != want {
				t.Errorf("%s: -segments %s output differs from serial:\n%q\nvs\n%q", pred, segs, got, want)
			}
		}
	}
}
