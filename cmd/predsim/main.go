// Command predsim runs one predictor configuration over a benchmark
// workload (or a trace file) and reports the misprediction rate.
//
// -pred accepts either a family name configured by the individual
// flags, or a canonical spec string ("family:key=value,...") that
// fully describes the organisation (see the predictor package docs
// for the grammar):
//
//	predsim -bench groff -pred gshare -entries 16384 -hist 12
//	predsim -bench groff -pred gshare:n=14,k=12,ctr=2
//	predsim -bench gs -pred gskewed:n=12,k=8,banks=3,ctr=2,policy=partial
//	predsim -trace trace.bin -pred assoc-lru -entries 1024 -hist 4
//	predsim -bench verilog -pred unaliased -hist 12 -skip-first-use
//
// Run telemetry is opt-in: -json emits the result as JSON instead of
// text, -intervals N records the warmup/steady-state misprediction
// curve, and -manifest FILE writes a machine-readable run record.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"gskew/internal/cli"
	"gskew/internal/history"
	"gskew/internal/obs"
	"gskew/internal/predictor"
	"gskew/internal/sim"
	"gskew/internal/trace"
	"gskew/internal/workload"
)

func main() { cli.Main("predsim", run) }

func run(args []string, stdout, stderr io.Writer) error {
	fs := cli.NewFlagSet("predsim", stderr)
	var (
		benchName = fs.String("bench", "", "workload name ("+joinNames()+") or an algo:... spec (see tracegen -list)")
		traceFile = fs.String("trace", "", "binary trace file, varint or columnar (alternative to -bench)")
		scale     = fs.Float64("scale", 0, "workload scale (default 0.1)")
		seed      = fs.Uint64("seed", 0, "workload seed offset")
		pred      = fs.String("pred", "gshare", "predictor family (bimodal, gshare, gselect, gskewed, egskew, 2bcgskew, agree, bimode, pas, skewed-pas, hybrid, unaliased, assoc-lru) or a spec string like gshare:n=14,k=12,ctr=2")
		entries   = fs.Int("entries", 16384, "table entries (per bank for gskewed/egskew)")
		banks     = fs.Int("banks", 3, "bank count for gskewed")
		hist      = fs.Uint("hist", 8, "global history bits")
		ctrBits   = fs.Uint("counter", 2, "counter width in bits")
		policy    = fs.String("policy", "partial", "gskewed update policy: partial or total")
		skipFirst = fs.Bool("skip-first-use", false, "exclude first-time (address,history) references (ideal-table accounting)")
		segments  = fs.Int("segments", 1, "segment-parallel simulation: split the trace into N segments simulated concurrently, bit-identically to serial (1 = serial, 0 = auto)")
		top       = fs.Int("top", 0, "also report the top-N mispredicting branch addresses")

		asJSON       = fs.Bool("json", false, "emit the result as JSON (sim.Result serialization) instead of text")
		intervals    = fs.Int("intervals", 0, "record the misprediction curve every N conditional branches (0 = off)")
		intervalsOut = fs.String("intervals-out", "", "write the interval curve as JSON to this file (default stderr)")
		manifestOut  = fs.String("manifest", "", "write a JSON run manifest to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p predictor.Predictor
	var err error
	if strings.Contains(*pred, ":") {
		// Canonical spec string: the whole organisation in one flag.
		var s predictor.Spec
		if s, err = predictor.ParseSpec(*pred); err == nil {
			p, err = s.New()
		}
	} else {
		p, err = buildPredictor(*pred, *entries, *banks, *hist, *ctrBits, *policy)
	}
	if err != nil {
		return err
	}

	var src trace.Source
	switch {
	case *traceFile != "":
		// Zero-copy mapped reader; sniffs the varint or columnar magic,
		// so either tracegen format works without a flag.
		m, err := trace.MapFile(*traceFile)
		if err != nil {
			return err
		}
		defer m.Close()
		src = m
	case *benchName != "":
		src, err = workload.OpenAny(*benchName, workload.Config{Scale: *scale, SeedOffset: *seed})
		if err != nil {
			return err
		}
	default:
		return cli.Usagef("specify -bench or -trace")
	}

	label := specLabel(p)
	var rec *obs.Recorder
	opts := sim.Options{SkipFirstUse: *skipFirst, Segments: *segments}
	if *intervals > 0 {
		obs.Enable()
		rec = obs.NewRecorder(*intervals, label)
		opts.Recorder = rec
	}

	start := time.Now()
	var res sim.Result
	var topMisses []missEntry
	if *top > 0 {
		res, topMisses, err = runWithTopMisses(src, p, *top)
	} else {
		res, err = sim.Run(src, p, opts)
	}
	took := time.Since(start)
	if err != nil {
		return err
	}

	if rec != nil {
		series := rec.Series()
		if *intervalsOut != "" {
			f, err := os.Create(*intervalsOut)
			if err != nil {
				return err
			}
			err = obs.WriteSeriesJSON(f, series)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(stderr, "[interval curve -> %s]\n", *intervalsOut)
		} else if err := obs.WriteSeriesJSON(stderr, series); err != nil {
			return err
		}
	}
	if *manifestOut != "" {
		m := obs.NewManifest("predsim", args)
		m.SetParam("bench", *benchName)
		m.SetParam("trace", *traceFile)
		m.SetParam("seed", *seed)
		cellID := *benchName
		if cellID == "" {
			cellID = *traceFile
		}
		m.AddCell(obs.Cell{
			ID:           cellID,
			Predictors:   []string{label},
			Conditionals: res.Conditionals,
			WallMS:       float64(took.Nanoseconds()) / float64(time.Millisecond),
			Result:       []sim.Result{res},
		})
		if err := m.WriteFile(*manifestOut); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "[manifest -> %s]\n", *manifestOut)
	}

	if *asJSON {
		doc := struct {
			Predictor   string     `json:"predictor"`
			StorageBits uint64     `json:"storage_bits"`
			Result      sim.Result `json:"result"`
		}{label, uint64(p.StorageBits()), res}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	fmt.Fprintf(stdout, "predictor:      %v\n", p)
	fmt.Fprintf(stdout, "storage bits:   %d (%.1f KiB)\n", p.StorageBits(), float64(p.StorageBits())/8192)
	fmt.Fprintf(stdout, "conditionals:   %d\n", res.Conditionals)
	fmt.Fprintf(stdout, "unconditionals: %d\n", res.Unconditionals)
	if res.FirstUses > 0 {
		fmt.Fprintf(stdout, "first uses:     %d (excluded)\n", res.FirstUses)
	}
	fmt.Fprintf(stdout, "mispredicts:    %d\n", res.Mispredicts)
	fmt.Fprintf(stdout, "miss rate:      %.3f %%\n", res.MissPercent())
	if len(topMisses) > 0 {
		fmt.Fprintf(stdout, "\ntop mispredicting branches:\n")
		fmt.Fprintf(stdout, "%-12s %10s %10s %9s\n", "pc(word)", "executed", "misses", "missrate")
		for _, m := range topMisses {
			fmt.Fprintf(stdout, "%#-12x %10d %10d %8.2f%%\n",
				m.pc, m.execs, m.misses, 100*float64(m.misses)/float64(m.execs))
		}
	}
	return nil
}

// missEntry is one row of the -top report.
type missEntry struct {
	pc            uint64
	execs, misses int
}

// runWithTopMisses replicates the sim runner's accounting while
// tallying per-branch misses (the runner itself stays allocation-free;
// this diagnostic path pays for a map).
func runWithTopMisses(src trace.Source, p predictor.Predictor, n int) (sim.Result, []missEntry, error) {
	type tally struct{ execs, misses int }
	perPC := make(map[uint64]*tally)
	ghr := history.NewGlobal(p.HistoryBits())
	var res sim.Result
	for {
		b, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return res, nil, err
		}
		switch b.Kind {
		case trace.Conditional:
			res.Conditionals++
			t := perPC[b.PC]
			if t == nil {
				t = &tally{}
				perPC[b.PC] = t
			}
			t.execs++
			if p.Predict(b.PC, ghr.Bits()) != b.Taken {
				res.Mispredicts++
				t.misses++
			}
			p.Update(b.PC, ghr.Bits(), b.Taken)
			ghr.Shift(b.Taken)
		case trace.Unconditional:
			res.Unconditionals++
			ghr.Shift(true)
		}
	}
	entries := make([]missEntry, 0, len(perPC))
	for pc, t := range perPC {
		if t.misses > 0 {
			entries = append(entries, missEntry{pc: pc, execs: t.execs, misses: t.misses})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].misses != entries[j].misses {
			return entries[i].misses > entries[j].misses
		}
		return entries[i].pc < entries[j].pc
	})
	if len(entries) > n {
		entries = entries[:n]
	}
	return res, entries, nil
}

// buildPredictor constructs the requested organisation. entries is
// rounded to the next power of two (tables are power-of-two indexed).
func buildPredictor(kind string, entries, banks int, hist, ctrBits uint, policy string) (predictor.Predictor, error) {
	n := uint(0)
	for 1<<n < entries {
		n++
	}
	var pol predictor.UpdatePolicy
	switch policy {
	case "partial":
		pol = predictor.PartialUpdate
	case "total":
		pol = predictor.TotalUpdate
	default:
		return nil, cli.Usagef("unknown policy %q", policy)
	}
	switch kind {
	case "bimodal":
		return predictor.MustSpec(predictor.Spec{Family: "bimodal", N: n, Ctr: ctrBits}), nil
	case "gshare":
		return predictor.MustSpec(predictor.Spec{Family: "gshare", N: n, Hist: hist, Ctr: ctrBits}), nil
	case "gselect":
		return predictor.MustSpec(predictor.Spec{Family: "gselect", N: n, Hist: hist, Ctr: ctrBits}), nil
	case "gskewed":
		return predictor.NewGSkewed(predictor.Config{
			Banks: banks, BankBits: n, HistoryBits: hist,
			CounterBits: ctrBits, Policy: pol,
		})
	case "egskew":
		return predictor.NewGSkewed(predictor.Config{
			Banks: 3, BankBits: n, HistoryBits: hist,
			CounterBits: ctrBits, Policy: pol, Enhanced: true,
		})
	case "2bcgskew":
		short := hist / 2
		return (predictor.Spec{Family: "2bcgskew", N: n, HistShort: short, Hist: hist}).New()
	case "agree":
		return (predictor.Spec{Family: "agree", N: n, Hist: hist, Bias: min(n, 12), Ctr: ctrBits}).New()
	case "bimode":
		return (predictor.Spec{Family: "bimode", N: n, Hist: hist, Choice: min(n, 12), Ctr: ctrBits}).New()
	case "pas":
		local := hist
		if local > n {
			local = n
		}
		return (predictor.Spec{Family: "pas", BHT: min(n, 10), Local: local, N: n, Ctr: ctrBits}).New()
	case "skewed-pas":
		local := hist
		return (predictor.Spec{Family: "skewed-pas", BHT: min(n, 10), Local: local, N: n, Ctr: ctrBits, Policy: pol}).New()
	case "hybrid":
		return predictor.NewHybrid(
			predictor.MustSpec(predictor.Spec{Family: "bimodal", N: n, Ctr: ctrBits}),
			predictor.MustSpec(predictor.Spec{Family: "gshare", N: n, Hist: hist, Ctr: ctrBits}),
			min(n, 12))
	case "unaliased":
		return predictor.NewUnaliased(hist, ctrBits), nil
	case "assoc-lru":
		return predictor.NewAssocLRU(entries, hist, ctrBits), nil
	default:
		return nil, cli.Usagef("unknown predictor %q", kind)
	}
}

// specLabel names a predictor for telemetry and JSON output: its
// canonical Spec string when it has one, its String form otherwise.
func specLabel(p predictor.Predictor) string {
	if sp, ok := p.(predictor.Speccer); ok {
		return sp.Spec().String()
	}
	return fmt.Sprintf("%v", p)
}

func joinNames() string {
	out := ""
	for i, n := range workload.Names() {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
