#!/usr/bin/env bash
# Serve-smoke: end-to-end exercise of the prediction service. Builds
# predserved and the predload client, starts the server on a random
# loopback port with an on-disk store, sweeps a 21-cell spec grid
# twice, and checks the contract the subsystem exists for:
#
#   - both sweep responses are byte-identical (cold vs cached),
#   - the second pass is served entirely from the result store
#     (server.simulate.cache_hits advances by exactly 21),
#   - ingesting the same workload twice (once varint, once columnar)
#     pools exactly one segment (dedup counter +1, one pool blob), the
#     pooled segment reads back as canonical columnar bytes, and a
#     sweep addressed by trace_sha256 is byte-identical to the same
#     sweep with the trace inlined,
#   - SIGTERM drains and the process exits 0.
#
# All HTTP goes through cmd/predload (the typed internal/client), so
# this script also smoke-tests the client against a real server.
# Run via `make serve-smoke`. Needs jq (request construction only).
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
        kill -KILL "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/predserved" ./cmd/predserved
go build -o "$workdir/predload" ./cmd/predload
go build -o "$workdir/tracegen" ./cmd/tracegen
predload="$workdir/predload"

"$workdir/predserved" -addr 127.0.0.1:0 -store-dir "$workdir/store" \
    -trace-pool "$workdir/pool" \
    >"$workdir/stdout.log" 2>"$workdir/stderr.log" &
server_pid=$!

# The first stdout line is the contract `predserved listening on
# http://host:port` (pinned by cmd/predserved's tests).
base=""
for _ in $(seq 1 100); do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve-smoke: server died at startup" >&2
        cat "$workdir/stderr.log" >&2
        exit 1
    fi
    base=$(sed -n 's/^predserved listening on \(http:\/\/.*\)$/\1/p' "$workdir/stdout.log")
    [[ -n "$base" ]] && break
    sleep 0.1
done
if [[ -z "$base" ]]; then
    echo "serve-smoke: server never reported its address" >&2
    exit 1
fi
echo "serve-smoke: server at $base"

"$predload" health -target "$base" >"$workdir/health.json"
[[ $(jq -r .status "$workdir/health.json") == ok ]]
[[ $(jq .store.mem_entries "$workdir/health.json") -eq 0 ]]

# A 21-cell grid: the paper's three main organisations at seven sizes.
jq -n '{
    specs: ([range(8; 15)] | map(
        "bimodal:n=\(.)",
        "gshare:n=\(.),k=\(.)",
        "gskewed:n=\(. - 1),k=\(. - 1)")),
    bench: "verilog",
    scale: 0.005
}' >"$workdir/sweep.req"
[[ $(jq '.specs | length' "$workdir/sweep.req") -eq 21 ]]

hits0=$("$predload" metric -target "$base" server.simulate.cache_hits)

"$predload" simulate -target "$base" -body "$workdir/sweep.req" >"$workdir/pass1.json" 2>/dev/null
"$predload" simulate -target "$base" -body "$workdir/sweep.req" >"$workdir/pass2.json" 2>/dev/null

cmp "$workdir/pass1.json" "$workdir/pass2.json"
echo "serve-smoke: 21-cell sweep byte-identical across passes"

[[ $(jq '.results | length' "$workdir/pass1.json") -eq 21 ]]
[[ $(jq '[.results[].result.conditionals] | min' "$workdir/pass1.json") -gt 0 ]]

hits1=$("$predload" metric -target "$base" server.simulate.cache_hits)
if [[ $((hits1 - hits0)) -ne 21 ]]; then
    echo "serve-smoke: cache hit delta $((hits1 - hits0)), want 21" >&2
    exit 1
fi
echo "serve-smoke: second pass served entirely from the store"

# The store directory holds one blob per cell.
blobs=$(find "$workdir/store" -type f | wc -l)
if [[ "$blobs" -ne 21 ]]; then
    echo "serve-smoke: $blobs store blobs, want 21" >&2
    exit 1
fi

# Every error response carries the structured envelope with a stable
# code (the /v1 error contract).
jq -n '{specs: ["gshare:n=999"], bench: "verilog", scale: 0.005}' >"$workdir/bad.req"
if "$predload" simulate -target "$base" -body "$workdir/bad.req" >/dev/null 2>"$workdir/bad.err"; then
    echo "serve-smoke: bad spec was accepted" >&2
    exit 1
fi
grep -q "bad_spec" "$workdir/bad.err"
echo "serve-smoke: bad spec rejected with stable error code"

# --- Trace pool: ingest, dedup, read-back, sweep-by-hash. ---

# The same workload in both serialisations; ingest must canonicalise
# to one pooled segment. The sweep above already pooled its bench
# workload, so assert on deltas, not absolute counts.
"$workdir/tracegen" -bench verilog -scale 0.01 -format binary -o "$workdir/w.trace" 2>/dev/null
"$workdir/tracegen" -bench verilog -scale 0.01 -format columnar -o "$workdir/w.ctrace" 2>/dev/null

pool_blobs0=$(find "$workdir/pool" -maxdepth 1 -name '*.ctrace' | wc -l)
dedup0=$("$predload" metric -target "$base" tracepool.dedup_hits)

"$predload" ingest -target "$base" "$workdir/w.trace" >"$workdir/ingest1.json"
"$predload" ingest -target "$base" "$workdir/w.ctrace" >"$workdir/ingest2.json"
cmp "$workdir/ingest1.json" "$workdir/ingest2.json"
hash=$(jq -r .trace_sha256 "$workdir/ingest1.json")
[[ -n "$hash" && "$hash" != "null" ]]

dedup1=$("$predload" metric -target "$base" tracepool.dedup_hits)
if [[ $((dedup1 - dedup0)) -ne 1 ]]; then
    echo "serve-smoke: dedup hit delta $((dedup1 - dedup0)), want 1" >&2
    exit 1
fi
pool_blobs1=$(find "$workdir/pool" -maxdepth 1 -name '*.ctrace' | wc -l)
if [[ $((pool_blobs1 - pool_blobs0)) -ne 1 ]]; then
    echo "serve-smoke: double ingest added $((pool_blobs1 - pool_blobs0)) pool blobs, want 1" >&2
    exit 1
fi
echo "serve-smoke: double ingest pooled one segment ($hash)"

# The pooled segment reads back as exactly the canonical columnar
# bytes tracegen wrote.
"$predload" trace -target "$base" "$hash" >"$workdir/readback.ctrace"
cmp "$workdir/readback.ctrace" "$workdir/w.ctrace"
echo "serve-smoke: pooled segment reads back byte-identical to the columnar file"

# Sweeping by hash must match sweeping with the trace inlined.
b64=$(base64 -w0 <"$workdir/w.ctrace")
jq -n --arg h "$hash" \
    '{specs: ["gshare:n=12,k=12", "gskewed:n=11,k=11"], trace_sha256: $h}' \
    >"$workdir/byhash.req"
jq -n --arg b "$b64" \
    '{specs: ["gshare:n=12,k=12", "gskewed:n=11,k=11"], trace_b64: $b}' \
    >"$workdir/inline.req"
"$predload" simulate -target "$base" -body "$workdir/byhash.req" >"$workdir/byhash.json" 2>/dev/null
"$predload" simulate -target "$base" -body "$workdir/inline.req" >"$workdir/inline.json" 2>/dev/null
cmp "$workdir/byhash.json" "$workdir/inline.json"
[[ $(jq '.results | length' "$workdir/byhash.json") -eq 2 ]]
echo "serve-smoke: sweep by trace_sha256 byte-identical to inline trace"

kill -TERM "$server_pid"
if ! wait "$server_pid"; then
    echo "serve-smoke: server exited non-zero on SIGTERM" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
fi
server_pid=""
grep -q "drained" "$workdir/stderr.log"
echo "serve-smoke: clean SIGTERM drain"
echo "serve-smoke: OK"
