#!/usr/bin/env bash
# Serve-smoke: end-to-end exercise of the prediction service. Builds
# predserved, starts it on a random loopback port with an on-disk
# store, sweeps a 21-cell spec grid twice, and checks the contract the
# subsystem exists for:
#
#   - both sweep responses are byte-identical (cold vs cached),
#   - the second pass is served entirely from the result store
#     (server.simulate.cache_hits advances by exactly 21),
#   - ingesting the same workload twice (once varint, once columnar)
#     pools exactly one segment (dedup counter +1, one pool blob), the
#     pooled segment reads back as canonical columnar bytes, and a
#     sweep addressed by trace_sha256 is byte-identical to the same
#     sweep with the trace inlined,
#   - SIGTERM drains and the process exits 0.
#
# Run via `make serve-smoke`. Needs curl and jq.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
        kill -KILL "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/predserved" ./cmd/predserved
go build -o "$workdir/tracegen" ./cmd/tracegen

"$workdir/predserved" -addr 127.0.0.1:0 -store-dir "$workdir/store" \
    -trace-pool "$workdir/pool" \
    >"$workdir/stdout.log" 2>"$workdir/stderr.log" &
server_pid=$!

# The first stdout line is the contract `predserved listening on
# http://host:port` (pinned by cmd/predserved's tests).
base=""
for _ in $(seq 1 100); do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve-smoke: server died at startup" >&2
        cat "$workdir/stderr.log" >&2
        exit 1
    fi
    base=$(sed -n 's/^predserved listening on \(http:\/\/.*\)$/\1/p' "$workdir/stdout.log")
    [[ -n "$base" ]] && break
    sleep 0.1
done
if [[ -z "$base" ]]; then
    echo "serve-smoke: server never reported its address" >&2
    exit 1
fi
echo "serve-smoke: server at $base"

curl -fsS "$base/healthz" >/dev/null

# A 21-cell grid: the paper's three main organisations at seven sizes.
sweep=$(jq -n '{
    specs: ([range(8; 15)] | map(
        "bimodal:n=\(.)",
        "gshare:n=\(.),k=\(.)",
        "gskewed:n=\(. - 1),k=\(. - 1)")),
    bench: "verilog",
    scale: 0.005
}')
[[ $(jq '.specs | length' <<<"$sweep") -eq 21 ]]

hits0=$(curl -fsS "$base/metrics" | jq '."server.simulate.cache_hits"')

curl -fsS -X POST -d "$sweep" "$base/v1/simulate" >"$workdir/pass1.json"
curl -fsS -X POST -d "$sweep" "$base/v1/simulate" >"$workdir/pass2.json"

cmp "$workdir/pass1.json" "$workdir/pass2.json"
echo "serve-smoke: 21-cell sweep byte-identical across passes"

[[ $(jq '.results | length' "$workdir/pass1.json") -eq 21 ]]
[[ $(jq '[.results[].result.conditionals] | min' "$workdir/pass1.json") -gt 0 ]]

hits1=$(curl -fsS "$base/metrics" | jq '."server.simulate.cache_hits"')
if [[ $((hits1 - hits0)) -ne 21 ]]; then
    echo "serve-smoke: cache hit delta $((hits1 - hits0)), want 21" >&2
    exit 1
fi
echo "serve-smoke: second pass served entirely from the store"

# The store directory holds one blob per cell.
blobs=$(find "$workdir/store" -type f | wc -l)
if [[ "$blobs" -ne 21 ]]; then
    echo "serve-smoke: $blobs store blobs, want 21" >&2
    exit 1
fi

# --- Trace pool: ingest, dedup, read-back, sweep-by-hash. ---

# The same workload in both serialisations; ingest must canonicalise
# to one pooled segment. The sweep above already pooled its bench
# workload, so assert on deltas, not absolute counts.
"$workdir/tracegen" -bench verilog -scale 0.01 -format binary -o "$workdir/w.trace" 2>/dev/null
"$workdir/tracegen" -bench verilog -scale 0.01 -format columnar -o "$workdir/w.ctrace" 2>/dev/null

pool_blobs0=$(find "$workdir/pool" -maxdepth 1 -name '*.ctrace' | wc -l)
dedup0=$(curl -fsS "$base/metrics" | jq '."tracepool.dedup_hits"')

curl -fsS -X POST --data-binary "@$workdir/w.trace" "$base/v1/traces" >"$workdir/ingest1.json"
curl -fsS -X POST --data-binary "@$workdir/w.ctrace" "$base/v1/traces" >"$workdir/ingest2.json"
cmp "$workdir/ingest1.json" "$workdir/ingest2.json"
hash=$(jq -r .trace_sha256 "$workdir/ingest1.json")
[[ -n "$hash" && "$hash" != "null" ]]

dedup1=$(curl -fsS "$base/metrics" | jq '."tracepool.dedup_hits"')
if [[ $((dedup1 - dedup0)) -ne 1 ]]; then
    echo "serve-smoke: dedup hit delta $((dedup1 - dedup0)), want 1" >&2
    exit 1
fi
pool_blobs1=$(find "$workdir/pool" -maxdepth 1 -name '*.ctrace' | wc -l)
if [[ $((pool_blobs1 - pool_blobs0)) -ne 1 ]]; then
    echo "serve-smoke: double ingest added $((pool_blobs1 - pool_blobs0)) pool blobs, want 1" >&2
    exit 1
fi
echo "serve-smoke: double ingest pooled one segment ($hash)"

# The pooled segment reads back as exactly the canonical columnar
# bytes tracegen wrote.
curl -fsS "$base/v1/traces/$hash" >"$workdir/readback.ctrace"
cmp "$workdir/readback.ctrace" "$workdir/w.ctrace"
echo "serve-smoke: pooled segment reads back byte-identical to the columnar file"

# Sweeping by hash must match sweeping with the trace inlined.
b64=$(base64 -w0 <"$workdir/w.ctrace")
jq -n --arg h "$hash" \
    '{specs: ["gshare:n=12,k=12", "gskewed:n=11,k=11"], trace_sha256: $h}' \
    >"$workdir/byhash.req"
jq -n --arg b "$b64" \
    '{specs: ["gshare:n=12,k=12", "gskewed:n=11,k=11"], trace_b64: $b}' \
    >"$workdir/inline.req"
curl -fsS -X POST --data-binary "@$workdir/byhash.req" "$base/v1/simulate" >"$workdir/byhash.json"
curl -fsS -X POST --data-binary "@$workdir/inline.req" "$base/v1/simulate" >"$workdir/inline.json"
cmp "$workdir/byhash.json" "$workdir/inline.json"
[[ $(jq '.results | length' "$workdir/byhash.json") -eq 2 ]]
echo "serve-smoke: sweep by trace_sha256 byte-identical to inline trace"

kill -TERM "$server_pid"
if ! wait "$server_pid"; then
    echo "serve-smoke: server exited non-zero on SIGTERM" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
fi
server_pid=""
grep -q "drained" "$workdir/stderr.log"
echo "serve-smoke: clean SIGTERM drain"
echo "serve-smoke: OK"
