#!/usr/bin/env bash
# Trace-smoke: end-to-end exercise of the trace formats. Generates the
# same workload with tracegen in the varint and block-columnar codecs
# and checks the contract the columnar pipeline exists for:
#
#   - predsim produces byte-identical stdout replaying either file
#     (the mmap reader sniffs the magic, so the same -trace flag
#     exercises both decoders),
#   - a byte-identical regeneration proves the writers are
#     deterministic (the columnar file is canonical bytes for a given
#     branch sequence — the property the trace pool's GET depends on),
#   - the columnar file stays within 1.25x of the varint file (the
#     format trades a little size for ~2.5x decode speed; this bounds
#     the trade).
#
# Run via `make trace-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/tracegen" ./cmd/tracegen
go build -o "$workdir/predsim" ./cmd/predsim

bench=verilog
scale=0.02

"$workdir/tracegen" -bench "$bench" -scale "$scale" -format binary -o "$workdir/t.trace"
"$workdir/tracegen" -bench "$bench" -scale "$scale" -format columnar -o "$workdir/t.ctrace"
"$workdir/tracegen" -bench "$bench" -scale "$scale" -format columnar -o "$workdir/t2.ctrace"

cmp "$workdir/t.ctrace" "$workdir/t2.ctrace"
echo "trace-smoke: columnar writer is deterministic"

varint_size=$(wc -c <"$workdir/t.trace")
columnar_size=$(wc -c <"$workdir/t.ctrace")
if [[ $((columnar_size * 4)) -gt $((varint_size * 5)) ]]; then
    echo "trace-smoke: columnar ($columnar_size B) exceeds 1.25x varint ($varint_size B)" >&2
    exit 1
fi
echo "trace-smoke: columnar $columnar_size B vs varint $varint_size B"

for pred in gshare "gskewed:n=11,k=11" "2bcgskew:n=10"; do
    "$workdir/predsim" -bench "$bench" -scale "$scale" -pred "$pred" >"$workdir/out.bench"
    "$workdir/predsim" -trace "$workdir/t.trace" -pred "$pred" >"$workdir/out.varint"
    "$workdir/predsim" -trace "$workdir/t.ctrace" -pred "$pred" >"$workdir/out.columnar"
    cmp "$workdir/out.bench" "$workdir/out.varint"
    cmp "$workdir/out.varint" "$workdir/out.columnar"
done
echo "trace-smoke: predsim stdout byte-identical across generator, varint and columnar sources"
echo "trace-smoke: OK"
