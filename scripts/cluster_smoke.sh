#!/usr/bin/env bash
# Cluster-smoke: end-to-end exercise of predserved cluster mode. Boots
# a standalone node and a 3-node cluster (each node started with
# -cluster on a self-only ring, then given the real topology with
# `predload topology` — the same push an operator would use), runs the
# identical 27-cell sweep against both, and checks the tentpole
# invariant:
#
#   - the 3-node response is byte-identical (cmp) to the standalone
#     response, from every node, cold and warm,
#   - serving a warm sweep from a node that did not simulate it moves
#     the peer-fill counters (the cells crossed the wire instead of
#     being recomputed),
#   - pushing a new topology (replication bump => reshard) bumps every
#     ring generation and changes no response byte,
#   - all four processes drain cleanly on SIGTERM.
#
# All HTTP goes through cmd/predload (the typed internal/client).
# Run via `make cluster-smoke`. Needs jq (request construction only).
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
    for pidfile in "$workdir"/*.pid; do
        [[ -e "$pidfile" ]] || continue
        local_pid=$(cat "$pidfile")
        if kill -0 "$local_pid" 2>/dev/null; then
            kill -KILL "$local_pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/predserved" ./cmd/predserved
go build -o "$workdir/predload" ./cmd/predload
predload="$workdir/predload"

# boot_node NAME [extra flags...]: start a node on a random port and
# echo its base URL (from the pinned first stdout line). The PID lands
# in NAME.pid — boot_node runs in a command substitution, so it cannot
# update the parent shell's variables.
boot_node() {
    local name=$1
    shift
    "$workdir/predserved" -addr 127.0.0.1:0 "$@" \
        >"$workdir/$name.out" 2>"$workdir/$name.err" &
    local pid=$!
    echo "$pid" >"$workdir/$name.pid"
    local base=""
    for _ in $(seq 1 100); do
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "cluster-smoke: $name died at startup" >&2
            cat "$workdir/$name.err" >&2
            exit 1
        fi
        base=$(sed -n 's/^predserved listening on \(http:\/\/.*\)$/\1/p' "$workdir/$name.out")
        [[ -n "$base" ]] && break
        sleep 0.1
    done
    if [[ -z "$base" ]]; then
        echo "cluster-smoke: $name never reported its address" >&2
        exit 1
    fi
    echo "$base"
}

solo=$(boot_node solo)
n0=$(boot_node n0 -cluster)
n1=$(boot_node n1 -cluster)
n2=$(boot_node n2 -cluster)
echo "cluster-smoke: solo=$solo nodes=$n0,$n1,$n2"

# Deliver the real topology to every node (each booted on a self-only
# ring at gen 1; the push bumps all of them to gen 2).
"$predload" topology -targets "$n0,$n1,$n2" -replicas 1 | tee "$workdir/topo1.log"
[[ $(grep -c 'gen=2 replicas=1 nodes=3' "$workdir/topo1.log") -eq 3 ]]

# The identical 27-cell sweep: the paper's three organisations at nine
# sizes each.
jq -n '{
    specs: ([range(8; 17)] | map(
        "bimodal:n=\(.)",
        "gshare:n=\(.),k=\(.)",
        "gskewed:n=\(. - 1),k=\(. - 1)")),
    bench: "verilog",
    scale: 0.002
}' >"$workdir/sweep.req"
[[ $(jq '.specs | length' "$workdir/sweep.req") -eq 27 ]]

"$predload" simulate -target "$solo" -body "$workdir/sweep.req" >"$workdir/solo.json" 2>/dev/null

# Cold 3-node sweep against node 0: byte-identical to standalone.
"$predload" simulate -target "$n0" -body "$workdir/sweep.req" >"$workdir/n0_cold.json" 2>/dev/null
cmp "$workdir/solo.json" "$workdir/n0_cold.json"
echo "cluster-smoke: cold 3-node sweep byte-identical to standalone"

# Warm sweep from a node that simulated nothing: identical bytes, no
# recomputation (X-Cache reports all hits), and the peer-fill counter
# moves — with R=1 the cells node 1 does not own must cross the wire.
fills0=$("$predload" metric -target "$n1" cluster.peer_fill_hits)
"$predload" simulate -target "$n1" -body "$workdir/sweep.req" >"$workdir/n1_warm.json" 2>"$workdir/n1_warm.err"
cmp "$workdir/solo.json" "$workdir/n1_warm.json"
grep -q "misses=0" "$workdir/n1_warm.err"
fills1=$("$predload" metric -target "$n1" cluster.peer_fill_hits)
if [[ "$fills1" -le "$fills0" ]]; then
    echo "cluster-smoke: peer_fill_hits did not move ($fills0 -> $fills1)" >&2
    exit 1
fi
echo "cluster-smoke: warm sweep on node 1 served without recomputation ($((fills1 - fills0)) peer fills)"

# Health on a cluster node carries the membership view.
"$predload" health -target "$n2" >"$workdir/n2_health.json"
[[ $(jq '.cluster.nodes | length' "$workdir/n2_health.json") -eq 3 ]]
[[ $(jq -r .cluster.self "$workdir/n2_health.json") == "$n2" ]]

# Reshard: bump replication to 3. Every ring generation advances and
# no response byte changes.
"$predload" topology -targets "$n0,$n1,$n2" -replicas 3 | tee "$workdir/topo2.log"
[[ $(grep -c 'gen=3 replicas=3 nodes=3' "$workdir/topo2.log") -eq 3 ]]
for node in "$n0" "$n1" "$n2"; do
    "$predload" simulate -target "$node" -body "$workdir/sweep.req" >"$workdir/reshard.json" 2>/dev/null
    cmp "$workdir/solo.json" "$workdir/reshard.json"
done
echo "cluster-smoke: post-reshard sweep byte-identical on every node"

# Clean SIGTERM drain for all four processes. The servers are
# children of boot_node's subshells, not of this shell, so poll for
# exit instead of wait(1).
for name in solo n0 n1 n2; do
    kill -TERM "$(cat "$workdir/$name.pid")"
done
for name in solo n0 n1 n2; do
    pid=$(cat "$workdir/$name.pid")
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "cluster-smoke: $name did not exit on SIGTERM" >&2
        exit 1
    fi
    rm -f "$workdir/$name.pid"
    grep -q "drained" "$workdir/$name.err"
done
echo "cluster-smoke: clean SIGTERM drain on all nodes"
echo "cluster-smoke: OK"
