#!/usr/bin/env bash
# Algo-smoke: end-to-end exercise of the recorded real-algorithm
# workloads (internal/algotrace). Records one instrumented KMP run with
# tracegen in both codecs and checks the contract the subsystem exists
# for — recorded streams are ordinary traces everywhere:
#
#   - the recording is deterministic (regenerating the columnar file is
#     byte-identical),
#   - predsim produces byte-identical stdout whether it re-records the
#     algorithm (-bench algo:...) or replays either trace file,
#   - a live predserved accepts the spec as a bench, ingests the
#     recorded file, and a sweep addressed by trace_sha256 is
#     byte-identical cold vs cached and equal to the bench-addressed
#     sweep,
#   - SIGTERM drains and the process exits 0.
#
# Run via `make algo-smoke`. Needs jq (request construction only).
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
        kill -KILL "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/tracegen" ./cmd/tracegen
go build -o "$workdir/predsim" ./cmd/predsim
go build -o "$workdir/predserved" ./cmd/predserved
go build -o "$workdir/predload" ./cmd/predload
predload="$workdir/predload"

spec='algo:kmp,n=50000,m=6,sigma=2,dist=uniform,pat=rand,seed=9'

# The family listing must advertise the recorded-algorithm workloads.
"$workdir/tracegen" -list >"$workdir/families.txt"
for fam in mp kmp binsearch insertion quick heap scanmax; do
    grep -Eq "^algo:$fam " "$workdir/families.txt"
done
echo "algo-smoke: tracegen -list advertises all recorded-algorithm families"

"$workdir/tracegen" -bench "$spec" -format binary -o "$workdir/a.trace"
"$workdir/tracegen" -bench "$spec" -format columnar -o "$workdir/a.ctrace"
"$workdir/tracegen" -bench "$spec" -format columnar -o "$workdir/a2.ctrace"
cmp "$workdir/a.ctrace" "$workdir/a2.ctrace"
echo "algo-smoke: recording is deterministic (columnar bytes identical across runs)"

for pred in "bimodal:n=4,ctr=2" "gshare:n=9,k=8" "gskewed:n=7,k=8"; do
    "$workdir/predsim" -bench "$spec" -pred "$pred" >"$workdir/out.bench"
    "$workdir/predsim" -trace "$workdir/a.trace" -pred "$pred" >"$workdir/out.varint"
    "$workdir/predsim" -trace "$workdir/a.ctrace" -pred "$pred" >"$workdir/out.columnar"
    cmp "$workdir/out.bench" "$workdir/out.varint"
    cmp "$workdir/out.varint" "$workdir/out.columnar"
done
echo "algo-smoke: predsim stdout byte-identical across re-recording, varint and columnar"

# --- Live server: algo bench, ingest, sweep-by-hash. ---

"$workdir/predserved" -addr 127.0.0.1:0 -store-dir "$workdir/store" \
    -trace-pool "$workdir/pool" \
    >"$workdir/stdout.log" 2>"$workdir/stderr.log" &
server_pid=$!

base=""
for _ in $(seq 1 100); do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "algo-smoke: server died at startup" >&2
        cat "$workdir/stderr.log" >&2
        exit 1
    fi
    base=$(sed -n 's/^predserved listening on \(http:\/\/.*\)$/\1/p' "$workdir/stdout.log")
    [[ -n "$base" ]] && break
    sleep 0.1
done
if [[ -z "$base" ]]; then
    echo "algo-smoke: server never reported its address" >&2
    exit 1
fi
echo "algo-smoke: server at $base"

"$predload" ingest -target "$base" "$workdir/a.ctrace" >"$workdir/ingest.json"
hash=$(jq -r .trace_sha256 "$workdir/ingest.json")
[[ -n "$hash" && "$hash" != "null" ]]

# The pooled segment reads back as the canonical columnar bytes.
"$predload" trace -target "$base" "$hash" >"$workdir/readback.ctrace"
cmp "$workdir/readback.ctrace" "$workdir/a.ctrace"
echo "algo-smoke: ingested recording reads back byte-identical ($hash)"

# Sweep by hash twice (cold, then from the result store) and once
# addressed by the algo spec as a bench: all three byte-identical.
jq -n --arg h "$hash" \
    '{specs: ["bimodal:n=9", "gshare:n=9,k=8", "gskewed:n=7,k=8"], trace_sha256: $h}' \
    >"$workdir/byhash.req"
jq -n --arg b "$spec" \
    '{specs: ["bimodal:n=9", "gshare:n=9,k=8", "gskewed:n=7,k=8"], bench: $b}' \
    >"$workdir/bybench.req"
"$predload" simulate -target "$base" -body "$workdir/byhash.req" >"$workdir/byhash1.json" 2>/dev/null
"$predload" simulate -target "$base" -body "$workdir/byhash.req" >"$workdir/byhash2.json" 2>/dev/null
cmp "$workdir/byhash1.json" "$workdir/byhash2.json"
[[ $(jq '.results | length' "$workdir/byhash1.json") -eq 3 ]]
"$predload" simulate -target "$base" -body "$workdir/bybench.req" >"$workdir/bybench.json" 2>/dev/null
if ! diff <(jq -S '.results' "$workdir/byhash1.json") <(jq -S '.results' "$workdir/bybench.json"); then
    echo "algo-smoke: bench-addressed sweep diverged from hash-addressed sweep" >&2
    exit 1
fi
echo "algo-smoke: sweep by trace_sha256 byte-identical cold vs cached, equal to bench-addressed sweep"

# An unknown algorithm is rejected with the stable workload error code.
jq -n '{specs: ["gshare:n=9,k=8"], bench: "algo:bogosort"}' >"$workdir/bad.req"
if "$predload" simulate -target "$base" -body "$workdir/bad.req" >/dev/null 2>"$workdir/bad.err"; then
    echo "algo-smoke: unknown algorithm accepted" >&2
    exit 1
fi
grep -q "bad_workload" "$workdir/bad.err"
echo "algo-smoke: unknown algorithm rejected with stable error code"

kill -TERM "$server_pid"
if ! wait "$server_pid"; then
    echo "algo-smoke: server exited non-zero on SIGTERM" >&2
    cat "$workdir/stderr.log" >&2
    exit 1
fi
server_pid=""
grep -q "drained" "$workdir/stderr.log"
echo "algo-smoke: clean SIGTERM drain"
echo "algo-smoke: OK"
