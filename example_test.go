package gskew_test

import (
	"fmt"
	"log"

	"gskew"
)

// ExampleMustGSkewed builds the paper's 3x4k skewed predictor and
// trains one branch substream.
func ExampleMustGSkewed() {
	p := gskew.MustGSkewed(gskew.GSkewedConfig{
		BankBits:    12, // 3 banks x 4096 entries
		HistoryBits: 8,
		Policy:      gskew.PartialUpdate,
	})
	for i := 0; i < 4; i++ {
		p.Update(0x4000, 0xa5, false)
	}
	fmt.Println(p.Predict(0x4000, 0xa5))
	fmt.Println(p)
	// Output:
	// false
	// 3x4k-gskewed(h8,2bit,partial)
}

// ExampleRun simulates a tiny hand-written trace: a loop branch taken
// three times then falling through, repeated.
func ExampleRun() {
	var branches []gskew.Branch
	for rep := 0; rep < 100; rep++ {
		for i := 0; i < 3; i++ {
			branches = append(branches, gskew.Branch{PC: 0x40, Taken: true, Kind: gskew.Conditional})
		}
		branches = append(branches, gskew.Branch{PC: 0x40, Taken: false, Kind: gskew.Conditional})
	}
	p := gskew.NewGShare(10, 4, 2)
	res, err := gskew.Run(branches, p, gskew.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// A 4-bit history distinguishes the loop iterations, so after
	// warm-up the exit is perfectly predicted.
	fmt.Printf("conditionals: %d\n", res.Conditionals)
	fmt.Printf("mispredicts under 10: %v\n", res.Mispredicts < 10)
	// Output:
	// conditionals: 400
	// mispredicts under 10: true
}

// ExampleBenchmarks lists the bundled IBS-like workload suite.
func ExampleBenchmarks() {
	for _, spec := range gskew.Benchmarks() {
		fmt.Printf("%s: %d static conditional branches\n", spec.Name, spec.StaticBranches)
	}
	// Output:
	// groff: 5634 static conditional branches
	// gs: 10935 static conditional branches
	// mpeg_play: 4752 static conditional branches
	// nroff: 4480 static conditional branches
	// real_gcc: 16716 static conditional branches
	// verilog: 3918 static conditional branches
}
