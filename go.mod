module gskew

go 1.22
