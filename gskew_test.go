package gskew_test

// Public-API tests: exercise the curated surface exactly as a
// downstream user would.

import (
	"strings"
	"testing"

	"gskew"
)

func TestPublicQuickstartFlow(t *testing.T) {
	spec, err := gskew.BenchmarkByName("verilog")
	if err != nil {
		t.Fatal(err)
	}
	branches, err := gskew.Materialize(spec, gskew.WorkloadConfig{Scale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) == 0 {
		t.Fatal("empty trace")
	}

	p := gskew.MustGSkewed(gskew.GSkewedConfig{
		BankBits:    10,
		HistoryBits: 6,
		Policy:      gskew.PartialUpdate,
	})
	res, err := gskew.Run(branches, p, gskew.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conditionals == 0 || res.MissRate() <= 0 || res.MissRate() >= 0.5 {
		t.Errorf("implausible result: %+v", res)
	}
}

func TestPublicCompare(t *testing.T) {
	spec, _ := gskew.BenchmarkByName("verilog")
	branches, err := gskew.Materialize(spec, gskew.WorkloadConfig{Scale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	preds := []gskew.Predictor{
		gskew.NewBimodal(10, 2),
		gskew.NewGShare(10, 6, 2),
		gskew.NewGSelect(10, 6, 2),
		gskew.NewAssocLRU(256, 6, 2),
		gskew.NewUnaliased(6, 2),
	}
	results, err := gskew.Compare(branches, preds, gskew.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(preds) {
		t.Fatalf("results = %d", len(results))
	}
	// The ideal table must beat bimodal.
	if results[4].MissRate() >= results[0].MissRate() {
		t.Errorf("unaliased (%.4f) not better than bimodal (%.4f)",
			results[4].MissRate(), results[0].MissRate())
	}
}

func TestPublicHybrid(t *testing.T) {
	h, err := gskew.NewHybrid(gskew.NewBimodal(8, 2), gskew.NewGShare(8, 6, 2), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		h.Update(0x20, 0x1, false)
	}
	if h.Predict(0x20, 0x1) {
		t.Error("hybrid did not learn through the public API")
	}
}

func TestPublicBenchmarkSuite(t *testing.T) {
	specs := gskew.Benchmarks()
	if len(specs) != 6 {
		t.Fatalf("suite size = %d", len(specs))
	}
	if _, err := gskew.BenchmarkByName("quake"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	all := gskew.Experiments()
	if len(all) < 23 {
		t.Fatalf("only %d experiments exposed", len(all))
	}
	if _, err := gskew.ExperimentByID("fig5"); err != nil {
		t.Fatal(err)
	}
	if _, err := gskew.ExperimentByID("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPublicRunExperiment(t *testing.T) {
	var sb strings.Builder
	ctx := &gskew.ExperimentContext{Scale: 0.004, Benchmarks: []string{"verilog"}}
	if err := gskew.RunExperiment("fig3", ctx, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gshare") {
		t.Errorf("experiment output missing expected content:\n%s", sb.String())
	}
	if err := gskew.RunExperiment("nope", ctx, &sb); err == nil {
		t.Error("unknown experiment ran")
	}
}

func TestPublicExtendedConstructors(t *testing.T) {
	builders := map[string]func() (gskew.Predictor, error){
		"2bcgskew": func() (gskew.Predictor, error) { return gskew.NewTwoBcGSkew(10, 4, 10) },
		"agree":    func() (gskew.Predictor, error) { return gskew.NewAgree(10, 6, 10, 2) },
		"bimode":   func() (gskew.Predictor, error) { return gskew.NewBiMode(10, 6, 10, 2) },
		"pas":      func() (gskew.Predictor, error) { return gskew.NewPAs(8, 6, 12, 2) },
	}
	for name, build := range builders {
		p, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 8; i++ {
			p.Update(0x33, 0x2, false)
		}
		if p.Predict(0x33, 0x2) {
			t.Errorf("%s did not learn through the public API", name)
		}
	}
}
