# Tiered developer targets. `make check` is the concurrency tier: it
# vets the whole module and runs the race detector over the packages
# that execute simulation cells in parallel (the scheduler, the trace
# cache and the single-pass multi-predictor runner).

GO ?= go

.PHONY: build test check bench output

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

check:
	$(GO) vet ./...
	$(GO) test -race ./internal/experiments ./internal/sim

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

# Regenerate the committed full-suite output (timing goes to stderr,
# so the file is byte-identical whatever -jobs is used).
output:
	$(GO) run ./cmd/experiments -all > experiments_output.txt
