# Tiered developer targets. `make check` is the concurrency tier: it
# vets the whole module and runs the race detector over the packages
# that execute simulation cells in parallel (the scheduler, the trace
# cache, the single-pass multi-predictor runner, the HTTP service and
# its shared result store). `make verify` is
# the differential tier: the optimized predictors against the
# executable paper spec, plus the fault-injection selftest. `make fuzz`
# runs each fuzz target for FUZZTIME. `make bench` runs the compiled
# kernel vs interface comparison BENCHCOUNT times and snapshots the
# best runs to BENCH_kernel.json, then the whole-trace segmented and
# bitsliced comparison into BENCH_sim.json, then the trace codec
# comparison (varint vs columnar vs mmap) into BENCH_trace.json, then
# a predload zipfian sweep against an in-process server into
# BENCH_serve.json (latency quantiles + cache-hit curve, guarded by
# bench_guard_test.go); `make bench-all` runs the full benchmark suite
# without snapshotting. `make trace-smoke` round-trips both trace
# formats through tracegen and predsim and exercises the server-side
# trace pool. `make algo-smoke` does the same for a recorded
# real-algorithm workload, including a live server's hash-addressed
# sweeps. `make cluster-smoke` boots a 3-node predserved cluster
# and requires its responses byte-identical to a standalone server,
# before and after a reshard.

GO ?= go
FUZZTIME ?= 10s
BENCHCOUNT ?= 3

.PHONY: build test check lint verify fuzz bench bench-all output obs-smoke serve-smoke trace-smoke algo-smoke cluster-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

check:
	$(GO) vet ./...
	$(GO) test -race ./internal/experiments ./internal/sim ./internal/server ./internal/store ./internal/algotrace

# Lint tier: vet always; staticcheck when installed (CI installs it,
# see .github/workflows/ci.yml; locally `go install
# honnef.co/go/tools/cmd/staticcheck@latest`). Configured by
# staticcheck.conf.
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

verify:
	$(GO) run ./cmd/verify -sweep
	$(GO) run ./cmd/verify -codec
	$(GO) run ./cmd/verify -selftest

fuzz:
	$(GO) test -fuzz=FuzzSkewerAgainstSpec -fuzztime=$(FUZZTIME) ./internal/skewfn
	$(GO) test -fuzz=FuzzCounterAgainstSpec -fuzztime=$(FUZZTIME) ./internal/counter
	$(GO) test -fuzz=FuzzTableAgainstCounter -fuzztime=$(FUZZTIME) ./internal/counter
	$(GO) test -fuzz=FuzzBinaryRoundTrip -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -fuzz=FuzzColumnarRoundTrip -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) ./internal/predictor
	$(GO) test -fuzz=FuzzAlgoSpec -fuzztime=$(FUZZTIME) ./internal/algotrace
	$(GO) test -fuzz=FuzzRecorder -fuzztime=$(FUZZTIME) ./internal/algotrace
	$(GO) test -fuzz=FuzzRunSegmented -fuzztime=$(FUZZTIME) ./internal/sim
	$(GO) test -fuzz=FuzzTAGEFoldedHistory -fuzztime=$(FUZZTIME) ./internal/refmodel/diff
	$(GO) test -fuzz=FuzzPerceptronStep -fuzztime=$(FUZZTIME) ./internal/refmodel/diff

bench:
	$(GO) test -bench='Kernel|TraceDecode' -benchmem -count=$(BENCHCOUNT) -run '^$$' . \
		| $(GO) run ./cmd/benchjson -o BENCH_kernel.json
	@cat BENCH_kernel.json
	$(GO) test -bench='^BenchmarkSim' -benchmem -count=$(BENCHCOUNT) -run '^$$' . \
		| $(GO) run ./cmd/benchjson -o BENCH_sim.json
	@cat BENCH_sim.json
	$(GO) test -bench='^BenchmarkTraceCodec' -benchmem -count=$(BENCHCOUNT) -run '^$$' . \
		| $(GO) run ./cmd/benchjson -o BENCH_trace.json
	@cat BENCH_trace.json
	$(GO) run ./cmd/predload sweep -cells 27 -passes 3 -out BENCH_serve.json
	@cat BENCH_serve.json

bench-all:
	$(GO) test -bench=. -benchmem -run '^$$'

# Regenerate the committed full-suite output (timing goes to stderr,
# so the file is byte-identical whatever -jobs is used).
output:
	$(GO) run ./cmd/experiments -all > experiments_output.txt

# Observability smoke: the full suite with every telemetry flag on
# must still produce byte-identical stdout, while demonstrably
# emitting interval curves and a run manifest.
obs-smoke:
	$(GO) run ./cmd/experiments -all -debug-addr localhost:0 -progress \
		-intervals 100000 -intervals-out /tmp/gskew_intervals.json \
		-manifest /tmp/gskew_manifest.json > /tmp/gskew_obs_output.txt
	cmp experiments_output.txt /tmp/gskew_obs_output.txt
	@test -s /tmp/gskew_intervals.json && test -s /tmp/gskew_manifest.json
	@echo "obs-smoke: stdout byte-identical; curves and manifest emitted"

# Service smoke: boot predserved, sweep a 21-cell spec grid twice,
# check byte-identity and full cache reuse, drain on SIGTERM.
serve-smoke:
	./scripts/serve_smoke.sh

# Trace-format smoke: tracegen writes the same workload in both
# formats, predsim must produce byte-identical stdout from each, and
# the mmap path must agree with the streaming path.
trace-smoke:
	./scripts/trace_smoke.sh

# Recorded-algorithm smoke: one instrumented recording must replay
# byte-identically from re-recording, varint and columnar through
# predsim, and a live predserved must ingest it and serve the
# hash-addressed sweep byte-identical cold vs cached and equal to the
# bench-addressed sweep.
algo-smoke:
	./scripts/algo_smoke.sh

# Cluster smoke: a standalone node and a 3-node cluster must serve the
# identical 27-cell sweep byte-for-byte, peer fill must replace
# recomputation on warm nodes, and a topology push (reshard) must
# change no response byte.
cluster-smoke:
	./scripts/cluster_smoke.sh
