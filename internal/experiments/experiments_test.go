package experiments

import (
	"strings"
	"testing"

	"gskew/internal/report"
	"gskew/internal/trace"
	"gskew/internal/tracepool"
)

// testCtx returns a context small enough for unit tests: a single
// benchmark at a tiny scale.
func testCtx() *Context {
	return &Context{Scale: 0.004, Benchmarks: []string{"verilog"}}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"ablation-banks", "ablation-policy", "ablation-counters", "ablation-enhanced-bank0",
		"ext-pas", "ext-hybrid", "ext-confidence", "ext-encoding", "ext-opt", "ext-pipeline",
		"ext-interference", "ext-quantum", "ext-flush", "ext-model-m", "ext-variance", "ext-rivals", "ext-ev8", "ext-besthist", "ext-setassoc",
		"ext-shootout", "ext-realwork",
	}
	all := All()
	got := make(map[string]bool, len(all))
	for _, e := range all {
		got[e.ID] = true
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %q incompletely registered", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(all) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(all), len(want))
	}
}

func TestAllOrdering(t *testing.T) {
	all := All()
	var ids []string
	for _, e := range all {
		ids = append(ids, e.ID)
	}
	// Tables first, then figures in numeric order, ablations last.
	if ids[0] != "table1" || ids[1] != "table2" {
		t.Errorf("tables not first: %v", ids[:3])
	}
	figOrder := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}
	for i, want := range figOrder {
		if ids[2+i] != want {
			t.Fatalf("figure order wrong at %d: %v", i, ids)
		}
	}
	for _, id := range ids[14:] {
		if !strings.HasPrefix(id, "ablation-") && !strings.HasPrefix(id, "ext-") {
			t.Errorf("non-ablation/extension %q after figures", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig9")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fig9" {
		t.Errorf("ByID returned %q", e.ID)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("ByID accepted unknown id")
	}
}

func TestContextTraceCache(t *testing.T) {
	ctx := testCtx()
	a, err := ctx.Trace("verilog")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Trace("verilog")
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("trace not cached")
	}
	ctx.DropTrace("verilog")
	c, err := ctx.Trace("verilog")
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != len(a) {
		t.Error("regenerated trace differs in length")
	}
}

// TestContextTracePool: with a Pool set, materialisations write
// through under the (name, scale, seed) identity, a second context
// sharing the pool serves the pooled segment instead of regenerating,
// and the pool is authoritative for the name — whatever it binds is
// what Trace returns.
func TestContextTracePool(t *testing.T) {
	pool, err := tracepool.Open(4, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx()
	ctx.Pool = pool
	a, err := ctx.Trace("verilog")
	if err != nil {
		t.Fatal(err)
	}
	key := "verilog|0.004|0"
	pooled, hash, ok := pool.GetNamed(key)
	if !ok {
		t.Fatalf("materialisation not pooled under %q", key)
	}
	if hash != trace.HashBranches(a) || len(pooled) != len(a) {
		t.Error("pooled segment differs from the materialised trace")
	}

	// A fresh context over the same pool must come back with the pooled
	// content. Prove the pool path is taken (not a regeneration that
	// happens to match) by rebinding the name to different content first.
	other := []trace.Branch{
		{PC: 0x40, Taken: true, Kind: trace.Conditional},
		{PC: 0x44, Taken: false, Kind: trace.Conditional},
	}
	if _, err := pool.PutNamed(key, other); err != nil {
		t.Fatal(err)
	}
	ctx2 := testCtx()
	ctx2.Pool = pool
	b, err := ctx2.Trace("verilog")
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != len(other) {
		t.Errorf("pool-backed Trace returned %d branches, want the pooled %d (pool not consulted)", len(b), len(other))
	}
}

func TestContextDefaults(t *testing.T) {
	ctx := NewContext(0)
	if ctx.scale() != DefaultScale {
		t.Errorf("scale() = %v", ctx.scale())
	}
	if len(ctx.BenchmarkNames()) != 6 {
		t.Errorf("BenchmarkNames = %v", ctx.BenchmarkNames())
	}
	ctx.Benchmarks = []string{"gs"}
	if n := ctx.BenchmarkNames(); len(n) != 1 || n[0] != "gs" {
		t.Errorf("restricted BenchmarkNames = %v", n)
	}
}

func TestBundleRendering(t *testing.T) {
	tab := report.NewTable("inner", "a")
	tab.AddRow("x")
	b := (&Bundle{Title: "outer"}).Add(tab).Add(tab)
	var sb strings.Builder
	if err := b.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "outer") || strings.Count(out, "inner") != 2 {
		t.Errorf("bundle text:\n%s", out)
	}
	sb.Reset()
	if err := b.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "a\nx") != 2 {
		t.Errorf("bundle csv:\n%s", sb.String())
	}
}

// TestModelFiguresNoTrace ensures the closed-form experiments run
// without any workload generation.
func TestModelFiguresNoTrace(t *testing.T) {
	for _, id := range []string{"fig9", "fig10", "fig3", "fig4"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run(&Context{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s produced empty output", id)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	e, _ := ByID("fig9")
	r, err := e.Run(&Context{})
	if err != nil {
		t.Fatal(err)
	}
	fig, ok := r.(*report.Figure)
	if !ok {
		t.Fatalf("fig9 returned %T", r)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("fig9 series = %d", len(fig.Series))
	}
	dm, sk := fig.Series[0].Ys, fig.Series[1].Ys
	// P_dm ends at 0.5; P_sk starts below P_dm and ends at 0.5.
	last := len(dm) - 1
	if dm[last] != 0.5 || sk[last] != 0.5 {
		t.Errorf("endpoints: dm=%v sk=%v", dm[last], sk[last])
	}
	for i := 1; i < last; i++ {
		if sk[i] >= dm[i] {
			t.Errorf("P_sk >= P_dm at interior point %d (%v >= %v)", i, sk[i], dm[i])
		}
	}
}

func TestFig3Verdicts(t *testing.T) {
	e, _ := ByID("fig3")
	r, err := e.Run(&Context{})
	if err != nil {
		t.Fatal(err)
	}
	tab := r.(*report.Table)
	if len(tab.Rows) != 4 {
		t.Fatalf("fig3 rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][5] != "gshare only" || tab.Rows[2][5] != "gselect only" {
		t.Errorf("fig3 verdicts: %v / %v", tab.Rows[0][5], tab.Rows[2][5])
	}
}

// TestTraceDrivenExperimentsRun smoke-tests every trace-driven
// experiment on a tiny single-benchmark context. Shape assertions live
// in shape_test.go; this test only checks they run and render.
func TestTraceDrivenExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven sweep is slow")
	}
	ctx := testCtx()
	for _, e := range All() {
		r, err := e.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatalf("%s render: %v", e.ID, err)
		}
		if !strings.Contains(sb.String(), "") || sb.Len() == 0 {
			t.Fatalf("%s produced empty output", e.ID)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Errorf("geomean(2,8) = %v", g)
	}
	if geomean(nil) != 0 {
		t.Error("geomean(nil)")
	}
	if g := geomean([]float64{0, 4}); g <= 0 {
		t.Errorf("geomean with zero = %v", g)
	}
}
