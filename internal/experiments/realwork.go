package experiments

import (
	"fmt"

	"gskew/internal/algotrace"
	"gskew/internal/alias"
	"gskew/internal/history"
	"gskew/internal/indexfn"
	"gskew/internal/predictor"
	"gskew/internal/report"
	"gskew/internal/sim"
	"gskew/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "ext-realwork",
		Title: "Real-algorithm streams: analytic MP/KMP validation, matched budgets, three Cs",
		Paper: "Nicaud/Pivoteau/Vialette (arXiv 2503.13694) derive expected miss rates of real Morris-Pratt/KMP code under first-order predictors; our recorded streams must reproduce them, and the paper's conflict/capacity trade is then measured on real-program branches",
		Run:   runExtRealwork,
	})
}

// realworkTolerancePP is the acceptance tolerance between the
// analytic expectation and the simulated rate on the ≥1M-branch
// validation streams, in absolute percentage points. Violations are a
// hard experiment error, not a footnote: the analytic model is an
// external oracle for the whole record→encode→simulate pipeline.
const realworkTolerancePP = 1.0

type realworkStream struct {
	label, spec string
}

// realworkValidation are the MP/KMP streams checked against the
// analytic chain. Each records >= 4 conditionals per text character,
// so n=300000 yields >= 1.2M-branch streams.
func realworkValidation() []realworkStream {
	return []realworkStream{
		{"mp  m=8 s=2 rand", "algo:mp,n=300000,m=8,sigma=2,pat=rand,seed=2"},
		{"kmp m=8 s=2 rand", "algo:kmp,n=300000,m=8,sigma=2,pat=rand,seed=2"},
		{"mp  m=4 s=4 rand", "algo:mp,n=300000,m=4,sigma=4,pat=rand,seed=5"},
		{"kmp m=6 s=2 uni", "algo:kmp,n=300000,m=6,pat=uni,seed=3"},
		{"mp  m=6 bern.7 alt", "algo:mp,n=300000,m=6,dist=bern,p=0.7,pat=alt,seed=7"},
		{"kmp m=6 bern.7 alt", "algo:kmp,n=300000,m=6,dist=bern,p=0.7,pat=alt,seed=7"},
	}
}

// realworkContest is one stream per recorded-algorithm family, raced
// under matched ~1Kbit predictors and decomposed into the three Cs.
func realworkContest() []realworkStream {
	return []realworkStream{
		{"mp", "algo:mp,n=100000,seed=2"},
		{"kmp", "algo:kmp,n=100000,seed=2"},
		{"binsearch", "algo:binsearch,n=4096,q=20000,seed=2"},
		{"insertion", "algo:insertion,n=512,runs=4,sorted=0,seed=2"},
		{"quick", "algo:quick,n=4096,runs=4,sorted=0,seed=2"},
		{"heap", "algo:heap,n=4096,runs=4,sorted=0,seed=2"},
		{"scanmax", "algo:scanmax,n=65536,runs=4,seed=2"},
	}
}

// mapStreams is mapBenchmarks over an explicit stream list: each
// stream is one scheduler cell, results return in list order so
// rendered output is deterministic across -jobs.
func mapStreams[T any](ctx *Context, streams []realworkStream, fn func(s realworkStream, branches []trace.Branch) (T, error)) ([]T, error) {
	results := make([]T, len(streams))
	err := ctx.sched().Map(len(streams), func(i int) error {
		branches, err := ctx.Trace(streams[i].spec)
		if err != nil {
			return fmt.Errorf("%s: %w", streams[i].spec, err)
		}
		r, err := fn(streams[i], branches)
		if err != nil {
			return fmt.Errorf("%s: %w", streams[i].spec, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runExtRealwork validates the recorded MP/KMP streams against the
// analytic Markov-chain oracle, then runs the paper's comparison —
// matched small budgets, three-Cs decomposition — on real-program
// branches.
func runExtRealwork(ctx *Context) (Renderable, error) {
	// Table A: measured vs analytic under first-order per-site
	// counters. The measured side is a 16-entry bimodal table: the
	// matchers declare <= 5 consecutive site PCs inside a 256-aligned
	// region, so low-PC-bits indexing gives every site a private
	// counter — exactly the predictor the analytic chain models.
	valTable := report.NewTable(
		fmt.Sprintf("Measured vs analytic miss %% (per-site counters; tolerance %.1f pp)", realworkTolerancePP),
		"stream", "branches", "analytic c1", "measured c1", "|d1| pp", "analytic c2", "measured c2", "|d2| pp")
	type valRow struct {
		row  []any
		errs []error
	}
	valRows, err := mapStreams(ctx, realworkValidation(), func(s realworkStream, branches []trace.Branch) (valRow, error) {
		spec, err := algotrace.ParseSpec(s.spec)
		if err != nil {
			return valRow{}, err
		}
		// Context.SeedOffset shifts algo seeds like benchmark seeds
		// (see workload.MaterializeAny); shift the analyzed spec the
		// same way so oracle and stream describe the same instance.
		spec.Seed += ctx.SeedOffset
		results, err := ctx.RunMany("ext-realwork/val/"+s.label, branches, []predictor.Predictor{
			predictor.MustParseSpec("bimodal:n=4,ctr=1"),
			predictor.MustParseSpec("bimodal:n=4,ctr=2"),
		}, sim.Options{})
		if err != nil {
			return valRow{}, err
		}
		row := []any{s.label, results[0].Conditionals}
		var errs []error
		for bits, r := range results {
			an, err := algotrace.AnalyzeMatch(spec, uint(bits+1))
			if err != nil {
				return valRow{}, err
			}
			predicted := 100 * an.MissRate
			measured := r.MissPercent()
			diff := measured - predicted
			if diff < 0 {
				diff = -diff
			}
			row = append(row,
				fmt.Sprintf("%.3f", predicted),
				fmt.Sprintf("%.3f", measured),
				fmt.Sprintf("%.3f", diff))
			if diff > realworkTolerancePP {
				errs = append(errs, fmt.Errorf(
					"ext-realwork: %s ctr=%d: measured %.3f%% vs analytic %.3f%% exceeds %.1f pp tolerance",
					s.spec, bits+1, measured, predicted, realworkTolerancePP))
			}
		}
		return valRow{row: row, errs: errs}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, vr := range valRows {
		if len(vr.errs) > 0 {
			return nil, vr.errs[0]
		}
		valTable.AddRow(vr.row...)
	}

	// Table B: the contenders of the paper's storage story at matched
	// ~1Kbit budgets, now fed real branches. Real algorithm kernels
	// have tiny static footprints, so small tables isolate the
	// history/aliasing behaviour rather than sheer capacity.
	contenders := []struct{ label, spec string }{
		{"bimodal-512", "bimodal:n=9,ctr=2"},
		{"gshare-512", "gshare:n=9,k=8,ctr=2"},
		{"gskewed-3x128", "gskewed:n=7,k=8,banks=3,ctr=2,policy=partial"},
		{"tage-4x32", "tage:n=5,k=20,kmin=4,tables=4,tag=8,ctr=3"},
	}
	cols := []string{"stream", "branches"}
	for _, c := range contenders {
		bits := predictor.MustParseSpec(c.spec).StorageBits()
		cols = append(cols, fmt.Sprintf("%s (%db)", c.label, bits))
	}
	contest := report.NewTable("Miss % at matched small budgets on recorded real algorithms", cols...)
	contestRows, err := mapStreams(ctx, realworkContest(), func(s realworkStream, branches []trace.Branch) ([]any, error) {
		preds := make([]predictor.Predictor, len(contenders))
		for i, c := range contenders {
			preds[i] = predictor.MustParseSpec(c.spec)
		}
		results, err := ctx.RunMany("ext-realwork/contest/"+s.label, branches, preds, sim.Options{})
		if err != nil {
			return nil, err
		}
		row := []any{s.label, results[0].Conditionals}
		for _, r := range results {
			row = append(row, fmt.Sprintf("%.2f", r.MissPercent()))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range contestRows {
		contest.AddRow(row...)
	}

	// Table C: the paper's three-Cs decomposition on real streams,
	// over the 64-entry gshare index the small budgets share. With a
	// handful of static sites crossed with 8 bits of history, the
	// (address, history) working set overflows 64 entries and the
	// conflict/capacity split becomes visible on real code.
	threec := report.NewTable("Three-Cs decomposition, 64-entry gshare index (n=6, h=8)",
		"stream", "compulsory %", "capacity %", "conflict %", "total aliased %")
	crows, err := mapStreams(ctx, realworkContest(), func(s realworkStream, branches []trace.Branch) ([]any, error) {
		cl := alias.NewClassifier(indexfn.NewGShare(6, 8))
		ghr := history.NewGlobal(8)
		for _, b := range branches {
			if b.Kind == trace.Conditional {
				cl.Observe(b.PC, ghr.Bits())
			}
			ghr.Shift(b.Taken)
		}
		st := cl.Stats()
		return []any{s.label,
			fmt.Sprintf("%.3f", 100*st.CompulsoryRatio()),
			fmt.Sprintf("%.3f", 100*st.CapacityRatio()),
			fmt.Sprintf("%.3f", 100*st.ConflictRatio()),
			fmt.Sprintf("%.3f", 100*st.TotalRatio())}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range crows {
		threec.AddRow(row...)
	}

	return (&Bundle{Title: "Recorded real-algorithm workloads vs the analytic oracle"}).
		Add(valTable).Add(contest).Add(threec), nil
}
