package experiments

import (
	"fmt"

	"gskew/internal/alias"
	"gskew/internal/history"
	"gskew/internal/indexfn"
	"gskew/internal/model"
	"gskew/internal/predictor"
	"gskew/internal/report"
	"gskew/internal/sim"
	"gskew/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Analytical destructive-aliasing curves (full range)",
		Paper: "Figure 9: P_dm = p/2 vs P_sk = (3/4)p^2(1-p) + p^3/2 at b = 1/2 over p in [0,1]",
		Run:   func(*Context) (Renderable, error) { return modelCurves(0, 1, 21), nil },
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Analytical destructive-aliasing curves (small-p region)",
		Paper: "Figure 10: the magnified low-aliasing region where the polynomial beats the linear curve",
		Run:   func(*Context) (Renderable, error) { return modelCurves(0, 0.2, 21), nil },
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Extrapolated (analytical model) vs measured misprediction, 4-bit history",
		Paper: "Figure 11: the model tracks measured gskewed rates, slightly overestimating (constructive aliasing)",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Enhanced gskewed vs gskewed vs 32k gshare across history lengths",
		Paper: "Figure 12: e-gskew diverges from gskewed above ~8-10 history bits and matches a 2x-storage gshare",
		Run:   runFig12,
	})
}

func modelCurves(lo, hi float64, points int) Renderable {
	fig := report.NewFigure(
		fmt.Sprintf("Destructive aliasing probability, b = 0.5, p in [%g,%g]", lo, hi),
		"per-bank aliasing probability p", "P(deviation from unaliased)")
	var dm, sk []float64
	for i := 0; i < points; i++ {
		p := lo + (hi-lo)*float64(i)/float64(points-1)
		fig.Xs = append(fig.Xs, p)
		dm = append(dm, model.PDirectWorstCase(p))
		sk = append(sk, model.PSkewWorstCase(p))
	}
	fig.AddSeries("P_dm (1-bank)", dm)
	fig.AddSeries("P_sk (3-bank skewed)", sk)
	return fig
}

func runFig11(ctx *Context) (Renderable, error) {
	// Model assumptions: 1-bit automata, total update, 4-bit history.
	const histBits = 4
	const bankBits = 12 // 3x4k gskewed
	t := report.NewTable("Figure 11: extrapolated vs measured misprediction % (3x4k gskewed, 1-bit, total update, 4-bit history)",
		"benchmark", "unaliased %", "overhead (model) %", "extrapolated %", "measured %")
	rows, err := mapBenchmarks(ctx, func(name string, branches []trace.Branch) ([]any, error) {
		// Pass 1: per-substream direction tally for the bias b (the
		// density of static (address, history) pairs biased taken) and
		// the last-use distance stream feeding the model.
		type tally struct{ taken, total int }
		substreams := make(map[uint64]*tally)
		sd := alias.NewStackDist(len(branches))
		dists := make([]int, 0, len(branches)/2)
		ghr := history.NewGlobal(histBits)
		for _, b := range branches {
			if b.Kind == trace.Conditional {
				v := indexfn.Vector(b.PC, ghr.Bits(), histBits)
				s := substreams[v]
				if s == nil {
					s = &tally{}
					substreams[v] = s
				}
				s.total++
				if b.Taken {
					s.taken++
				}
				dists = append(dists, sd.Observe(v))
			}
			ghr.Shift(b.Taken)
		}
		biasedTaken := 0
		for _, s := range substreams {
			if 2*s.taken >= s.total {
				biasedTaken++
			}
		}
		b := float64(biasedTaken) / float64(len(substreams))

		// Unaliased 1-bit misprediction rate (Table 2 methodology).
		u := predictor.NewUnaliased(histBits, 1)
		resU, err := sim.RunBranches(branches, u, sim.Options{SkipFirstUse: true})
		if err != nil {
			return nil, err
		}

		// Model extrapolation over the measured distance stream.
		ex := model.NewExtrapolator(1<<bankBits, b)
		for _, d := range dists {
			ex.Observe(d)
		}
		extrapolated := 100 * ex.Extrapolate(resU.MissRate())

		// Measured: actual 3x4k gskewed, 1-bit counters, total update.
		gs := predictor.MustGSkewed(predictor.Config{
			BankBits:    bankBits,
			HistoryBits: histBits,
			CounterBits: 1,
			Policy:      predictor.TotalUpdate,
		})
		resM, err := sim.RunBranches(branches, gs, sim.Options{})
		if err != nil {
			return nil, err
		}

		return []any{name,
			fmt.Sprintf("%.2f", resU.MissPercent()),
			fmt.Sprintf("%.2f", 100*ex.MispredictOverhead()),
			fmt.Sprintf("%.2f", extrapolated),
			fmt.Sprintf("%.2f", resM.MissPercent())}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

func runFig12(ctx *Context) (Renderable, error) {
	return historySweep(ctx, "fig12",
		"Misprediction % of enhanced gskewed (3x4k) vs gskewed (3x4k) vs 32k gshare",
		[]uint{0, 2, 4, 6, 8, 10, 12, 14, 16},
		[]struct {
			name  string
			build func(k uint) predictor.Predictor
		}{
			{"32k-gshare", func(k uint) predictor.Predictor {
				return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 15, Hist: k})
			}},
			{"3x4k-gskewed", func(k uint) predictor.Predictor {
				return predictor.MustSpec(predictor.Spec{Family: "gskewed", N: 12, Hist: k})
			}},
			{"3x4k-egskew", func(k uint) predictor.Predictor {
				return predictor.MustSpec(predictor.Spec{Family: "egskew", N: 12, Hist: k})
			}},
		})
}
