package experiments

import (
	"fmt"

	"gskew/internal/alias"
	"gskew/internal/history"
	"gskew/internal/indexfn"
	"gskew/internal/model"
	"gskew/internal/predictor"
	"gskew/internal/report"
	"gskew/internal/sim"
	"gskew/internal/skewfn"
	"gskew/internal/trace"
	"gskew/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ext-interference",
		Title: "Destructive vs constructive vs harmless interference (Young et al. classification)",
		Paper: "Section 1 quotes [21]: 'constructive aliasing is much less likely than destructive aliasing'",
		Run:   runExtInterference,
	})
	register(Experiment{
		ID:    "ext-quantum",
		Title: "Context-switch quantum sensitivity",
		Paper: "Section 1's OS/multi-process motivation: finer multiprogramming raises aliasing pressure",
		Run:   runExtQuantum,
	})
}

func runExtInterference(ctx *Context) (Renderable, error) {
	const histBits = 8
	bundle := &Bundle{Title: "Interference classification of a single-bank gshare (8-bit history)"}
	for _, entriesBits := range []uint{10, 14} {
		t := report.NewTable(fmt.Sprintf("%d-entry gshare", 1<<entriesBits),
			"benchmark", "aliased %", "harmless %", "destructive %", "constructive %", "destr/constr")
		rows, err := mapBenchmarks(ctx, func(name string, branches []trace.Branch) ([]any, error) {
			n := alias.NewInterference(indexfn.NewGShare(entriesBits, histBits), 2)
			ghr := history.NewGlobal(histBits)
			for _, b := range branches {
				if b.Kind == trace.Conditional {
					n.Observe(b.PC, ghr.Bits(), b.Taken)
				}
				ghr.Shift(b.Taken)
			}
			st := n.Stats()
			refs := float64(st.References)
			dc := "inf"
			if st.Constructive > 0 {
				dc = fmt.Sprintf("%.1fx", float64(st.Destructive)/float64(st.Constructive))
			}
			return []any{name,
				fmt.Sprintf("%.2f", 100*float64(st.Aliased())/refs),
				fmt.Sprintf("%.2f", 100*float64(st.Harmless)/refs),
				fmt.Sprintf("%.2f", 100*st.DestructiveRatio()),
				fmt.Sprintf("%.2f", 100*st.ConstructiveRatio()),
				dc}, nil
		})
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			t.AddRow(row...)
		}
		bundle.Add(t)
	}
	return bundle, nil
}

// runExtQuantum regenerates one benchmark with a range of scheduler
// quanta and measures how multiprogramming granularity drives
// misprediction for a fixed 16k gshare (h=8) — finer interleaving
// means more cross-process conflicts, the OS effect motivating the
// paper's interest in large workloads. Each quantum is an independent
// scheduler cell (its trace is not the cached benchmark trace).
func runExtQuantum(ctx *Context) (Renderable, error) {
	const histBits = 8
	spec, err := workload.ByName("gs") // 3 processes: most interleaving
	if err != nil {
		return nil, err
	}
	fig := report.NewFigure("gs: misprediction vs scheduler quantum (16k gshare vs 3x4k egskew, h=8)",
		"quantum (branches)", "miss %")
	quanta := []int{100, 400, 1600, 6400, 25600}
	gsh := make([]float64, len(quanta))
	egs := make([]float64, len(quanta))
	err = ctx.sched().Map(len(quanta), func(i int) error {
		s := spec
		s.Quantum = quanta[i]
		g, err := workload.New(s, workload.Config{Scale: ctx.scale() / 2, SeedOffset: ctx.SeedOffset})
		if err != nil {
			return err
		}
		branches, err := trace.Collect(workload.NewTake(g, g.Length()))
		if err != nil {
			return err
		}
		results, err := ctx.RunMany(fmt.Sprintf("ext-quantum/q%d", quanta[i]), branches,
			[]predictor.Predictor{
				predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: histBits}),
				predictor.MustSpec(predictor.Spec{Family: "egskew", N: 12, Hist: histBits}),
			}, sim.Options{})
		if err != nil {
			return err
		}
		gsh[i] = results[0].MissPercent()
		egs[i] = results[1].MissPercent()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, q := range quanta {
		fig.Xs = append(fig.Xs, float64(q))
	}
	fig.AddSeries("16k-gshare", gsh)
	fig.AddSeries("3x4k-egskew", egs)
	return fig, nil
}

func init() {
	register(Experiment{
		ID:    "ext-flush",
		Title: "Predictor-state flush sensitivity (context-switch state loss)",
		Paper: "Related work [4] (Evers et al.): prediction accuracy in the presence of context switches",
		Run:   runExtFlush,
	})
	register(Experiment{
		ID:    "ext-model-m",
		Title: "M-bank analytical curves (formula 3 generalised)",
		Paper: "Section 7: 'in an M-bank skewed organisation, it increases as an M-th degree polynomial'",
		Run:   runExtModelM,
	})
}

func runExtFlush(ctx *Context) (Renderable, error) {
	const histBits = 8
	items, err := ctx.forEachBenchmark(func(name string, branches []trace.Branch) (Renderable, error) {
		fig := report.NewFigure(name, "flush interval (cond. branches)", "miss %")
		intervals := []int{2000, 8000, 32000, 128000, 0} // 0 = never
		var gsh, egs []float64
		for _, iv := range intervals {
			x := float64(iv)
			if iv == 0 {
				x = float64(len(branches)) // plot "never" at the right edge
			}
			fig.Xs = append(fig.Xs, x)
			// Both organisations share one trace pass per interval (the
			// flush schedule is part of Options, identical for both).
			results, err := ctx.RunMany(fmt.Sprintf("ext-flush-iv%d/%s", iv, name), branches,
				[]predictor.Predictor{
					predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: histBits}),
					predictor.MustSpec(predictor.Spec{Family: "egskew", N: 12, Hist: histBits}),
				}, sim.Options{FlushEvery: iv})
			if err != nil {
				return nil, err
			}
			gsh = append(gsh, results[0].MissPercent())
			egs = append(egs, results[1].MissPercent())
		}
		fig.AddSeries("16k-gshare", gsh)
		fig.AddSeries("3x4k-egskew", egs)
		return fig, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bundle{Title: "Misprediction vs predictor-flush interval (8-bit history; right edge = never flushed)", Items: items}, nil
}

func runExtModelM(*Context) (Renderable, error) {
	fig := report.NewFigure("Deviation probability vs per-bank aliasing p (b = 0.5), M banks",
		"p", "P(deviation)")
	const points = 21
	for i := 0; i < points; i++ {
		fig.Xs = append(fig.Xs, float64(i)/(points-1))
	}
	for _, m := range []int{1, 3, 5, 7} {
		ys := make([]float64, points)
		for i := range ys {
			ys[i] = model.PSkewM(float64(i)/(points-1), 0.5, m)
		}
		fig.AddSeries(fmt.Sprintf("M=%d", m), ys)
	}
	return fig, nil
}

func init() {
	register(Experiment{
		ID:    "ext-rivals",
		Title: "The anti-aliasing class of 1997: gskewed vs agree vs bi-mode",
		Paper: "Contemporaneous alternatives attacking the same conflict aliasing the paper names (Sprangle et al. ISCA'97, Lee et al. MICRO'97)",
		Run:   runExtRivals,
	})
}

func runExtRivals(ctx *Context) (Renderable, error) {
	const histBits = 8
	t := report.NewTable("1997 anti-aliasing proposals at ~24-34 Kbit (miss %, 8-bit history)",
		"benchmark", "gshare 16k (32Kb)", "agree 16k (34Kb)", "bimode 2x8k+4k (40Kb)", "gskewed 3x4k (24Kb)", "egskew 3x4k (24Kb)")
	rows, err := compareRows(ctx, "ext-rivals", func() []predictor.Predictor {
		return []predictor.Predictor{
			predictor.MustParseSpec("gshare:n=14,k=8,ctr=2"),
			predictor.MustParseSpec("agree:n=14,k=8,bias=10,ctr=2"),
			predictor.MustParseSpec("bimode:n=13,k=8,choice=11,ctr=2"),
			predictor.MustParseSpec("gskewed:n=12,k=8,banks=3,ctr=2,policy=partial"),
			predictor.MustParseSpec("egskew:n=12,k=8,ctr=2,policy=partial"),
		}
	}, sim.Options{})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

func init() {
	register(Experiment{
		ID:    "ext-ev8",
		Title: "2Bc-gskew: the Alpha EV8 descendant of this paper's predictor",
		Paper: "Where the design shipped: Seznec et al., ISCA 2002 — bimodal + skewed banks + meta chooser",
		Run:   runExtEV8,
	})
}

func runExtEV8(ctx *Context) (Renderable, error) {
	t := report.NewTable("2Bc-gskew (4x4k, h6/h14, 32 Kbit) vs its ancestors (miss %)",
		"benchmark", "16k-gshare h8 (32Kb)", "3x4k-egskew h8 (24Kb)", "4x4k-2bcgskew h6/h14 (32Kb)")
	rows, err := compareRows(ctx, "ext-ev8", func() []predictor.Predictor {
		return []predictor.Predictor{
			predictor.MustParseSpec("gshare:n=14,k=8,ctr=2"),
			predictor.MustParseSpec("egskew:n=12,k=8,ctr=2,policy=partial"),
			predictor.MustParseSpec("2bcgskew:n=12,ks=6,k=14"),
		}
	}, sim.Options{})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

func init() {
	register(Experiment{
		ID:    "ext-besthist",
		Title: "Best history length per organisation",
		Paper: "Section 6: '8 to 10 seems a reasonable history length for a 3x4K gskewed; for enhanced gskewed, 11 or 12'",
		Run:   runExtBestHist,
	})
}

// runExtBestHist sweeps history lengths and reports, per benchmark and
// organisation, the history that minimises misprediction — the
// quantity behind the paper's section-6 guidance. At reduced trace
// scale the optima sit a little lower than the paper's (aliasing
// pressure is relatively higher); the egskew optimum must nonetheless
// exceed the gskewed optimum. The full organisation x history cross
// product of a benchmark (27 predictors) runs in one RunMany pass.
func runExtBestHist(ctx *Context) (Renderable, error) {
	hists := []uint{0, 2, 4, 6, 8, 10, 12, 14, 16}
	type org struct {
		name  string
		build func(k uint) predictor.Predictor
	}
	orgs := []org{
		{"16k-gshare", func(k uint) predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: k})
		}},
		{"3x4k-gskewed", func(k uint) predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gskewed", N: 12, Hist: k})
		}},
		{"3x4k-egskew", func(k uint) predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "egskew", N: 12, Hist: k})
		}},
	}
	t := report.NewTable("Best history length (argmin misprediction over h = 0..16)",
		"benchmark", "gshare best h (miss %)", "gskewed best h (miss %)", "egskew best h (miss %)")
	rows, err := mapBenchmarks(ctx, func(name string, branches []trace.Branch) ([]any, error) {
		built := make([]predictor.Predictor, 0, len(orgs)*len(hists))
		for _, o := range orgs {
			for _, k := range hists {
				built = append(built, o.build(k))
			}
		}
		results, err := ctx.RunMany("ext-besthist/"+name, branches, built, sim.Options{})
		if err != nil {
			return nil, err
		}
		cells := []any{name}
		for oi := range orgs {
			bestH, bestRate := uint(0), 1e18
			for ki, k := range hists {
				if r := results[oi*len(hists)+ki].MissPercent(); r < bestRate {
					bestRate, bestH = r, k
				}
			}
			cells = append(cells, fmt.Sprintf("h=%d (%.2f)", bestH, bestRate))
		}
		return cells, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

func init() {
	register(Experiment{
		ID:    "ext-setassoc",
		Title: "Associativity vs skewing: tagged set-associative miss ratios",
		Paper: "Section 3.3: associativity removes conflicts but costs tags; skewing must clear the same bar tag-free",
		Run:   runExtSetAssoc,
	})
}

// runExtSetAssoc measures, at equal total capacity, how much aliasing
// each degree of tagged associativity removes — the bar the tag-free
// skewed organisation competes against. The skewed column reports the
// aliasing-equivalent quantity for a 3-bank skew: the fraction of
// references whose majority is aliased (>= 2 banks hold a different
// vector), measured with tagged banks.
func runExtSetAssoc(ctx *Context) (Renderable, error) {
	const histBits = 4
	const totalBits = 12 // 4096 entries total for every organisation
	items, err := ctx.forEachBenchmark(func(name string, branches []trace.Branch) (Renderable, error) {
		dm := alias.NewTaggedSA(indexfn.NewGShare(totalBits, histBits), 1)
		w2 := alias.NewTaggedSA(indexfn.NewGShare(totalBits-1, histBits), 2)
		w4 := alias.NewTaggedSA(indexfn.NewGShare(totalBits-2, histBits), 4)
		fa := alias.NewTaggedFA(1<<totalBits, histBits)

		// Skewed banks as tagged tables: 3 banks of a third... use
		// 3 x 2^(totalBits-2) tagged-DM banks indexed by f0/f1/f2 and
		// count references aliased in >= 2 banks (those are the ones a
		// majority vote cannot rescue).
		sk := skewfn.New(totalBits - 2)
		bankTags := make([][]uint64, 3)
		bankValid := make([][]bool, 3)
		for i := range bankTags {
			bankTags[i] = make([]uint64, 1<<(totalBits-2))
			bankValid[i] = make([]bool, 1<<(totalBits-2))
		}
		skewMajorityAliased, refs := 0, 0

		ghr := history.NewGlobal(histBits)
		for _, b := range branches {
			if b.Kind == trace.Conditional {
				dm.Observe(b.PC, ghr.Bits())
				w2.Observe(b.PC, ghr.Bits())
				w4.Observe(b.PC, ghr.Bits())
				fa.Observe(b.PC, ghr.Bits())
				v := indexfn.Vector(b.PC, ghr.Bits(), histBits)
				aliased := 0
				for k := 0; k < 3; k++ {
					idx := sk.Index(k, v)
					if !bankValid[k][idx] || bankTags[k][idx] != v {
						aliased++
					}
					bankValid[k][idx] = true
					bankTags[k][idx] = v
				}
				if aliased >= 2 {
					skewMajorityAliased++
				}
				refs++
			}
			ghr.Shift(b.Taken)
		}

		t := report.NewTable(name,
			"organisation (4k entries total)", "miss / majority-aliased %")
		t.AddRow("direct-mapped", fmt.Sprintf("%.3f", 100*dm.MissRatio()))
		t.AddRow("2-way LRU (tagged)", fmt.Sprintf("%.3f", 100*w2.MissRatio()))
		t.AddRow("4-way LRU (tagged)", fmt.Sprintf("%.3f", 100*w4.MissRatio()))
		t.AddRow("fully-assoc LRU (tagged)", fmt.Sprintf("%.3f", 100*fa.MissRatio()))
		t.AddRow("3-bank skew, majority aliased (tag-free)",
			fmt.Sprintf("%.3f", 100*float64(skewMajorityAliased)/float64(refs)))
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bundle{
		Title: "Aliasing removed by associativity vs skewing (4-bit history, equal capacity)",
		Items: items,
	}, nil
}
