package experiments

import (
	"fmt"

	"gskew/internal/alias"
	"gskew/internal/history"
	"gskew/internal/indexfn"
	"gskew/internal/report"
	"gskew/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Tagged-table miss ratios vs size, 4-bit history",
		Paper: "Figure 1: gshare-DM and gselect-DM vs fully-associative LRU; conflicts dominate beyond 4K entries",
		Run:   func(ctx *Context) (Renderable, error) { return runAliasFigure(ctx, 4, 6, 16) },
	})
	register(Experiment{
		ID:    "fig2",
		Title: "Tagged-table miss ratios vs size, 12-bit history",
		Paper: "Figure 2: as Figure 1 with 12 history bits; conflicts dominate beyond ~16K entries",
		Run:   func(ctx *Context) (Renderable, error) { return runAliasFigure(ctx, 12, 6, 18) },
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Conflicts depend on the mapping function (worked example)",
		Paper: "Figure 3: a pair that conflicts under gshare but not gselect, and vice versa, in a 16-entry table",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Skewed predictor structure (per-bank index dispersion demo)",
		Paper: "Figure 4: the 3-bank structure; conflicting vectors disperse across banks",
		Run:   runFig4,
	})
}

// runAliasFigure measures, per benchmark, tagged-table miss ratios for
// gshare-DM, gselect-DM (one table per size) and fully-associative LRU
// (all sizes at once from the stack-distance histogram), for table
// sizes 2^minBits..2^maxBits.
func runAliasFigure(ctx *Context, histBits, minBits, maxBits uint) (Renderable, error) {
	items, err := ctx.forEachBenchmark(func(name string, branches []trace.Branch) (Renderable, error) {
		type dmPair struct{ gshare, gselect *alias.TaggedDM }
		sizes := make([]uint, 0, maxBits-minBits+1)
		dms := make([]dmPair, 0, maxBits-minBits+1)
		for n := minBits; n <= maxBits; n += 2 {
			sizes = append(sizes, n)
			dms = append(dms, dmPair{
				gshare:  alias.NewTaggedDM(indexfn.NewGShare(n, histBits)),
				gselect: alias.NewTaggedDM(indexfn.NewGSelect(n, histBits)),
			})
		}
		sd := alias.NewStackDist(len(branches))
		ghr := history.NewGlobal(histBits)
		for _, b := range branches {
			if b.Kind == trace.Conditional {
				h := ghr.Bits()
				for _, dm := range dms {
					dm.gshare.Observe(b.PC, h)
					dm.gselect.Observe(b.PC, h)
				}
				sd.Observe(indexfn.Vector(b.PC, h, histBits))
			}
			ghr.Shift(b.Taken)
		}

		fig := report.NewFigure(fmt.Sprintf("%s (%d-bit history)", name, histBits),
			"entries", "miss %")
		var gsh, gsel, fa []float64
		for i, n := range sizes {
			fig.Xs = append(fig.Xs, float64(uint64(1)<<n))
			gsh = append(gsh, 100*dms[i].gshare.MissRatio())
			gsel = append(gsel, 100*dms[i].gselect.MissRatio())
			fa = append(fa, 100*sd.MissRatioAt(1<<n))
		}
		fig.AddSeries("gshare-dm", gsh)
		fig.AddSeries("gselect-dm", gsel)
		fig.AddSeries("fully-assoc-lru", fa)
		return fig, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bundle{
		Title: fmt.Sprintf("Tagged-table miss percentages (%d-bit history)", histBits),
		Items: items,
	}, nil
}

func runFig3(*Context) (Renderable, error) {
	// 16-entry table, 2 history bits — a concrete reconstruction of
	// the paper's example: the conflicting pairs differ between the
	// two mappings.
	gsh := indexfn.NewGShare(4, 2)
	gsel := indexfn.NewGSelect(4, 2)
	t := report.NewTable("Figure 3: conflicts depend on the mapping function",
		"pair", "addr", "hist", "gshare idx", "gselect idx", "conflict under")

	type ref struct{ addr, hist uint64 }
	pairs := [][2]ref{
		// Collides under gshare (a ^ h<<2 equal), separated by gselect.
		{{0b0000, 0b00}, {0b0100, 0b01}},
		// Collides under gselect (same low addr bits + hist),
		// separated by gshare.
		{{0b0110, 0b11}, {0b1010, 0b11}},
	}
	for i, pr := range pairs {
		i0g, i1g := gsh.Index(pr[0].addr, pr[0].hist), gsh.Index(pr[1].addr, pr[1].hist)
		i0s, i1s := gsel.Index(pr[0].addr, pr[0].hist), gsel.Index(pr[1].addr, pr[1].hist)
		verdict := "neither"
		switch {
		case i0g == i1g && i0s == i1s:
			verdict = "both"
		case i0g == i1g:
			verdict = "gshare only"
		case i0s == i1s:
			verdict = "gselect only"
		}
		for j, r := range pr {
			t.AddRow(fmt.Sprintf("P%d.%d", i+1, j+1),
				fmt.Sprintf("%04b", r.addr), fmt.Sprintf("%02b", r.hist),
				fmt.Sprintf("%d", gsh.Index(r.addr, r.hist)),
				fmt.Sprintf("%d", gsel.Index(r.addr, r.hist)),
				verdict)
		}
	}
	return t, nil
}

func runFig4(*Context) (Renderable, error) {
	// Show the defining behaviour of the structure in Figure 4: two
	// vectors that collide in one bank spread apart in the others.
	s := newDemoSkewer()
	t := report.NewTable("Figure 4: per-bank indices of conflicting vectors (16-entry banks)",
		"vector", "f0", "f1", "f2")
	v, w := findDemoCollision(s)
	for _, x := range []uint64{v, w} {
		t.AddRow(fmt.Sprintf("%#06x", x),
			fmt.Sprintf("%d", s.F0(x)), fmt.Sprintf("%d", s.F1(x)), fmt.Sprintf("%d", s.F2(x)))
	}
	return t, nil
}
