package experiments

// Shape tests: reduced-scale versions of the paper's experiments that
// assert the qualitative claims (orderings, crossovers, policy
// effects) rather than absolute numbers. EXPERIMENTS.md records the
// full-scale paper-vs-measured comparison; these tests keep the
// claims from silently regressing.

import (
	"strconv"
	"testing"

	"gskew/internal/alias"
	"gskew/internal/history"
	"gskew/internal/indexfn"
	"gskew/internal/predictor"
	"gskew/internal/report"
	"gskew/internal/sim"
	"gskew/internal/trace"
)

// shapeCtx caches one moderate-scale trace across all shape tests.
var shapeCtx = &Context{Scale: 0.05, Benchmarks: []string{"verilog"}}

func shapeTrace(t *testing.T) []trace.Branch {
	t.Helper()
	branches, err := shapeCtx.Trace("verilog")
	if err != nil {
		t.Fatal(err)
	}
	return branches
}

func missPct(t *testing.T, branches []trace.Branch, p predictor.Predictor) float64 {
	t.Helper()
	res, err := sim.RunBranches(branches, p, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.MissPercent()
}

// TestShapeGShareBeatsGSelect asserts the aliasing-level explanation
// of section 3.2: gselect has a higher aliasing (tagged-table miss)
// ratio than gshare at equal size, most pronounced with long history.
func TestShapeGShareBeatsGSelect(t *testing.T) {
	branches := shapeTrace(t)
	for _, histBits := range []uint{4, 12} {
		gsh := alias.NewTaggedDM(indexfn.NewGShare(12, histBits))
		gsel := alias.NewTaggedDM(indexfn.NewGSelect(12, histBits))
		ghr := history.NewGlobal(histBits)
		for _, b := range branches {
			if b.Kind == trace.Conditional {
				gsh.Observe(b.PC, ghr.Bits())
				gsel.Observe(b.PC, ghr.Bits())
			}
			ghr.Shift(b.Taken)
		}
		if gsel.MissRatio() < gsh.MissRatio() {
			t.Errorf("hist=%d: gselect aliasing (%.4f) below gshare (%.4f)",
				histBits, gsel.MissRatio(), gsh.MissRatio())
		}
	}
}

// TestShapeConflictDominatesWhenCapacityVanishes asserts the headline
// of section 3.2: once tables are large enough, capacity aliasing is
// gone and conflicts are what remains.
func TestShapeConflictDominatesWhenCapacityVanishes(t *testing.T) {
	branches := shapeTrace(t)
	const histBits = 4
	cl := alias.NewClassifier(indexfn.NewGShare(14, histBits)) // 16k entries
	ghr := history.NewGlobal(histBits)
	for _, b := range branches {
		if b.Kind == trace.Conditional {
			cl.Observe(b.PC, ghr.Bits())
		}
		ghr.Shift(b.Taken)
	}
	st := cl.Stats()
	if st.Capacity > st.Conflict {
		t.Errorf("at 16k entries capacity (%d) still exceeds conflict (%d)",
			st.Capacity, st.Conflict)
	}
	if st.Conflict <= 0 {
		t.Error("no conflict aliasing measured at all")
	}
}

// TestShapeMissRateFallsWithSize asserts the basic capacity behaviour
// of Figure 5: bigger gshare tables mispredict less (weakly).
func TestShapeMissRateFallsWithSize(t *testing.T) {
	branches := shapeTrace(t)
	prev := 1e9
	for _, n := range []uint{8, 10, 12, 14, 16} {
		rate := missPct(t, branches, predictor.MustSpec(predictor.Spec{Family: "gshare", N: n, Hist: 4, Ctr: 2}))
		if rate > prev*1.02 { // 2% tolerance for noise
			t.Errorf("gshare %d entries: %.3f%% worse than smaller table (%.3f%%)",
				1<<n, rate, prev)
		}
		prev = rate
	}
}

// TestShapePartialBeatsTotal asserts section 5.1's update-policy
// finding across history lengths.
func TestShapePartialBeatsTotal(t *testing.T) {
	branches := shapeTrace(t)
	for _, histBits := range []uint{4, 10} {
		partial := missPct(t, branches, predictor.MustGSkewed(predictor.Config{
			BankBits: 10, HistoryBits: histBits, Policy: predictor.PartialUpdate,
		}))
		total := missPct(t, branches, predictor.MustGSkewed(predictor.Config{
			BankBits: 10, HistoryBits: histBits, Policy: predictor.TotalUpdate,
		}))
		if partial > total*1.01 {
			t.Errorf("hist=%d: partial update (%.3f%%) worse than total (%.3f%%)",
				histBits, partial, total)
		}
	}
}

// TestShapeGSkewedTracksAssocLRU asserts Figure 8: a 3N-entry skewed
// predictor with partial update performs approximately like an N-entry
// fully-associative LRU table (within a modest relative band).
func TestShapeGSkewedTracksAssocLRU(t *testing.T) {
	branches := shapeTrace(t)
	const histBits = 4
	for _, n := range []uint{10, 12} {
		fa := missPct(t, branches, predictor.NewAssocLRU(1<<n, histBits, 2))
		sk := missPct(t, branches, predictor.MustGSkewed(predictor.Config{
			BankBits: n, HistoryBits: histBits, Policy: predictor.PartialUpdate,
		}))
		if sk > fa*1.15 {
			t.Errorf("N=%d: 3N-gskewed (%.3f%%) not within 15%% of N-entry FA-LRU (%.3f%%)",
				1<<n, sk, fa)
		}
	}
}

// TestShapeGSkewedCompetitiveWithGShare asserts the storage-efficiency
// claim in the conflict-dominated region: a 3x4k gskewed (24 Kbit) is
// within a few percent of a 16k gshare (32 Kbit) at short history.
func TestShapeGSkewedCompetitiveWithGShare(t *testing.T) {
	branches := shapeTrace(t)
	for _, histBits := range []uint{2, 4, 6} {
		gsh := missPct(t, branches, predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: histBits, Ctr: 2}))
		sk := missPct(t, branches, predictor.MustGSkewed(predictor.Config{
			BankBits: 12, HistoryBits: histBits, Policy: predictor.PartialUpdate,
		}))
		if sk > gsh*1.06 {
			t.Errorf("hist=%d: 3x4k-gskewed (%.3f%%) not within 6%% of 16k-gshare (%.3f%%) despite 25%% less storage",
				histBits, sk, gsh)
		}
	}
}

// TestShapeEnhancedRescuesLongHistories asserts Figure 12: e-gskew
// matches gskewed at short histories and clearly beats it at long
// ones, staying close to a 32k gshare.
func TestShapeEnhancedRescuesLongHistories(t *testing.T) {
	branches := shapeTrace(t)
	mk := func(histBits uint, enhanced bool) float64 {
		return missPct(t, branches, predictor.MustGSkewed(predictor.Config{
			BankBits: 12, HistoryBits: histBits,
			Policy: predictor.PartialUpdate, Enhanced: enhanced,
		}))
	}
	// Short history: near-identical.
	short := mk(2, false)
	shortE := mk(2, true)
	if diff := shortE - short; diff > 0.25 || diff < -0.25 {
		t.Errorf("hist=2: egskew (%.3f%%) and gskewed (%.3f%%) should be nearly identical", shortE, short)
	}
	// Long history: enhanced clearly better.
	long := mk(14, false)
	longE := mk(14, true)
	if longE >= long {
		t.Errorf("hist=14: egskew (%.3f%%) not better than gskewed (%.3f%%)", longE, long)
	}
	// And within a band of the 2x-storage gshare.
	gsh := missPct(t, shapeTrace(t), predictor.MustSpec(predictor.Spec{Family: "gshare", N: 15, Hist: 14, Ctr: 2}))
	if longE > gsh*1.10 {
		t.Errorf("hist=14: egskew (%.3f%%) not within 10%% of 32k-gshare (%.3f%%)", longE, gsh)
	}
}

// TestShapeFiveBanksAddLittle asserts section 5.1's bank-count
// finding: going from 3 to 5 banks buys far less than going from 1 to
// 3 (i.e. the majority of removable conflict is gone at 3 banks).
func TestShapeFiveBanksAddLittle(t *testing.T) {
	branches := shapeTrace(t)
	const histBits = 4
	one := missPct(t, branches, predictor.MustSpec(predictor.Spec{Family: "gshare", N: 10, Hist: histBits, Ctr: 2}))
	three := missPct(t, branches, predictor.MustGSkewed(predictor.Config{
		Banks: 3, BankBits: 10, HistoryBits: histBits,
	}))
	five := missPct(t, branches, predictor.MustGSkewed(predictor.Config{
		Banks: 5, BankBits: 10, HistoryBits: histBits,
	}))
	gain13 := one - three
	gain35 := three - five
	if gain35 > gain13 {
		t.Errorf("5 banks gained more (%.3f) than 3 banks did over 1 (%.3f); expected diminishing returns",
			gain35, gain13)
	}
}

// TestShapeModelOverestimatesSlightly asserts Figure 11's property:
// the analytical extrapolation tracks the measured rate from above
// (constructive aliasing and the 2-bit hysteresis are unmodelled) and
// stays within a few points of it.
func TestShapeModelOverestimatesSlightly(t *testing.T) {
	e, err := ByID("fig11")
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run(shapeCtx)
	if err != nil {
		t.Fatal(err)
	}
	table, ok := r.(*report.Table)
	if !ok {
		t.Fatalf("fig11 returned %T", r)
	}
	if len(table.Rows) == 0 {
		t.Fatal("fig11 produced no rows")
	}
	for _, row := range table.Rows {
		// Columns: benchmark, unaliased, overhead, extrapolated, measured.
		extrapolated, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad extrapolated cell %q", row[3])
		}
		measured, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad measured cell %q", row[4])
		}
		if extrapolated < measured*0.8 {
			t.Errorf("%s: model (%.2f%%) far below measured (%.2f%%)", row[0], extrapolated, measured)
		}
		if extrapolated > measured+6 {
			t.Errorf("%s: model (%.2f%%) implausibly above measured (%.2f%%)", row[0], extrapolated, measured)
		}
	}
}
