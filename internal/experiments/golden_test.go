package experiments

// Golden-output regression tests for the deterministic (trace-free)
// experiments. These outputs depend only on closed-form math and fixed
// constructions, so any change is either an intentional improvement
// (update the golden files with -update) or a regression.

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestShootoutGolden pins the storage-equalized shoot-out output at
// the unit-test scale. The workload generators are seeded and the
// result assembly is ordered, so the rendered bundle must be
// byte-identical run to run (and across -jobs / -segments; see
// TestShootoutDeterministicAcrossExecution).
func TestShootoutGolden(t *testing.T) {
	e, err := ByID("ext-shootout")
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "ext-shootout.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/experiments -run TestShootoutGolden -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestShootoutDeterministicAcrossExecution reruns the shoot-out with
// a serial scheduler and with segment-parallel cells: the rendered
// output must match the default-parallel run byte for byte —
// execution strategy is not allowed to leak into results.
func TestShootoutDeterministicAcrossExecution(t *testing.T) {
	render := func(ctx *Context) string {
		t.Helper()
		e, err := ByID("ext-shootout")
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	base := render(testCtx())
	serial := testCtx()
	serial.Sched = NewSched(1)
	if got := render(serial); got != base {
		t.Errorf("serial scheduler changed output:\n--- jobs=1 ---\n%s--- default ---\n%s", got, base)
	}
	seg := testCtx()
	seg.Segments = 5
	if got := render(seg); got != base {
		t.Errorf("segmented execution changed output:\n--- segments=5 ---\n%s--- serial ---\n%s", got, base)
	}
}

// TestRealworkGolden pins the real-algorithm validation experiment.
// The experiment itself hard-errors if any measured stream strays
// more than realworkTolerancePP from the analytic oracle, so this
// test is also the acceptance check for measured-vs-analytic
// agreement on the >= 1M-branch streams.
func TestRealworkGolden(t *testing.T) {
	e, err := ByID("ext-realwork")
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "ext-realwork.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/experiments -run TestRealworkGolden -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestRealworkDeterministicAcrossExecution reruns ext-realwork with a
// serial scheduler and with segment-parallel simulation; the rendered
// output must be byte-identical either way.
func TestRealworkDeterministicAcrossExecution(t *testing.T) {
	render := func(ctx *Context) string {
		t.Helper()
		e, err := ByID("ext-realwork")
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	base := render(testCtx())
	serial := testCtx()
	serial.Sched = NewSched(1)
	if got := render(serial); got != base {
		t.Errorf("serial scheduler changed output:\n--- jobs=1 ---\n%s--- default ---\n%s", got, base)
	}
	seg := testCtx()
	seg.Segments = 5
	if got := render(seg); got != base {
		t.Errorf("segmented execution changed output:\n--- segments=5 ---\n%s--- serial ---\n%s", got, base)
	}
}

func TestGoldenDeterministicExperiments(t *testing.T) {
	for _, id := range []string{"fig3", "fig4", "fig9", "fig10", "ext-model-m"} {
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			r, err := e.Run(&Context{})
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := r.WriteText(&sb); err != nil {
				t.Fatal(err)
			}
			got := sb.String()
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/experiments -run TestGolden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
