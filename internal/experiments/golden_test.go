package experiments

// Golden-output regression tests for the deterministic (trace-free)
// experiments. These outputs depend only on closed-form math and fixed
// constructions, so any change is either an intentional improvement
// (update the golden files with -update) or a regression.

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestGoldenDeterministicExperiments(t *testing.T) {
	for _, id := range []string{"fig3", "fig4", "fig9", "fig10", "ext-model-m"} {
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			r, err := e.Run(&Context{})
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := r.WriteText(&sb); err != nil {
				t.Fatal(err)
			}
			got := sb.String()
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/experiments -run TestGolden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
