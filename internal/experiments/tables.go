package experiments

import (
	"fmt"

	"gskew/internal/predictor"
	"gskew/internal/report"
	"gskew/internal/sim"
	"gskew/internal/trace"
	"gskew/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Conditional branch counts per benchmark",
		Paper: "Table 1: dynamic and static conditional branch counts of the six IBS benchmarks",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Unaliased (infinite-table) predictor characteristics",
		Paper: "Table 2: substream ratio, compulsory aliasing and 1-/2-bit misprediction, histories 4 and 12",
		Run:   runTable2,
	})
}

func runTable1(ctx *Context) (Renderable, error) {
	t := report.NewTable("Table 1: conditional branch counts",
		"benchmark", "dynamic", "static", "paper dynamic", "paper static", "scale")
	for _, name := range ctx.BenchmarkNames() {
		branches, err := ctx.Trace(name)
		if err != nil {
			return nil, err
		}
		st, err := trace.Measure(trace.NewSliceSource(branches))
		if err != nil {
			return nil, err
		}
		spec, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, st.Dynamic, st.Static,
			spec.DynamicBranches, spec.StaticBranches,
			fmt.Sprintf("%.2f", ctx.scale()))
	}
	return t, nil
}

func runTable2(ctx *Context) (Renderable, error) {
	bundle := &Bundle{Title: "Table 2: unaliased predictor"}
	for _, k := range []uint{4, 12} {
		t := report.NewTable(fmt.Sprintf("%d-bit history", k),
			"benchmark", "substream ratio", "compulsory aliasing", "mispredict 1-bit", "mispredict 2-bit")
		for _, name := range ctx.BenchmarkNames() {
			branches, err := ctx.Trace(name)
			if err != nil {
				return nil, err
			}
			var rates [2]float64
			var substreamRatio, compulsory float64
			for i, bits := range []uint{1, 2} {
				u := predictor.NewUnaliased(k, bits)
				res, err := sim.RunBranches(branches, u, sim.Options{SkipFirstUse: true})
				if err != nil {
					return nil, err
				}
				rates[i] = res.MissPercent()
				if bits == 2 {
					substreamRatio = u.SubstreamRatio()
					// Compulsory aliasing: distinct (address, history)
					// pairs per dynamic conditional branch (section 3.1).
					compulsory = 100 * float64(u.Substreams()) / float64(res.Conditionals)
				}
			}
			t.AddRow(name,
				fmt.Sprintf("%.2f", substreamRatio),
				fmt.Sprintf("%.2f %%", compulsory),
				fmt.Sprintf("%.2f %%", rates[0]),
				fmt.Sprintf("%.2f %%", rates[1]))
		}
		bundle.Add(t)
	}
	return bundle, nil
}
