package experiments

import (
	"fmt"

	"gskew/internal/predictor"
	"gskew/internal/report"
	"gskew/internal/sim"
	"gskew/internal/trace"
	"gskew/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Conditional branch counts per benchmark",
		Paper: "Table 1: dynamic and static conditional branch counts of the six IBS benchmarks",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Unaliased (infinite-table) predictor characteristics",
		Paper: "Table 2: substream ratio, compulsory aliasing and 1-/2-bit misprediction, histories 4 and 12",
		Run:   runTable2,
	})
}

func runTable1(ctx *Context) (Renderable, error) {
	t := report.NewTable("Table 1: conditional branch counts",
		"benchmark", "dynamic", "static", "paper dynamic", "paper static", "scale")
	rows, err := mapBenchmarks(ctx, func(name string, branches []trace.Branch) ([]any, error) {
		st, err := trace.Measure(trace.NewSliceSource(branches))
		if err != nil {
			return nil, err
		}
		spec, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		return []any{name, st.Dynamic, st.Static,
			spec.DynamicBranches, spec.StaticBranches,
			fmt.Sprintf("%.2f", ctx.scale())}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

// table2Cells holds one benchmark's Table 2 quantities for both
// history lengths, computed in a single scheduler cell.
type table2Cells struct {
	substream, compulsory [2]string
	rate1, rate2          [2]string
}

func runTable2(ctx *Context) (Renderable, error) {
	hists := []uint{4, 12}
	cells, err := mapBenchmarks(ctx, func(name string, branches []trace.Branch) (table2Cells, error) {
		var out table2Cells
		for i, k := range hists {
			// Both counter widths share one trace pass.
			u1 := predictor.MustSpec(predictor.Spec{Family: "unaliased", Hist: k, Ctr: 1}).(*predictor.Unaliased)
			u2 := predictor.MustSpec(predictor.Spec{Family: "unaliased", Hist: k, Ctr: 2}).(*predictor.Unaliased)
			results, err := ctx.RunMany(fmt.Sprintf("table2-h%d/%s", k, name), branches,
				[]predictor.Predictor{u1, u2}, sim.Options{SkipFirstUse: true})
			if err != nil {
				return table2Cells{}, err
			}
			out.rate1[i] = fmt.Sprintf("%.2f %%", results[0].MissPercent())
			out.rate2[i] = fmt.Sprintf("%.2f %%", results[1].MissPercent())
			out.substream[i] = fmt.Sprintf("%.2f", u2.SubstreamRatio())
			// Compulsory aliasing: distinct (address, history) pairs per
			// dynamic conditional branch (section 3.1).
			out.compulsory[i] = fmt.Sprintf("%.2f %%",
				100*float64(u2.Substreams())/float64(results[1].Conditionals))
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	bundle := &Bundle{Title: "Table 2: unaliased predictor"}
	for i, k := range hists {
		t := report.NewTable(fmt.Sprintf("%d-bit history", k),
			"benchmark", "substream ratio", "compulsory aliasing", "mispredict 1-bit", "mispredict 2-bit")
		for j, name := range ctx.BenchmarkNames() {
			c := cells[j]
			t.AddRow(name, c.substream[i], c.compulsory[i], c.rate1[i], c.rate2[i])
		}
		bundle.Add(t)
	}
	return bundle, nil
}
