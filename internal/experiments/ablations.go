package experiments

import (
	"fmt"

	"gskew/internal/predictor"
	"gskew/internal/report"
	"gskew/internal/sim"
	"gskew/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "ablation-banks",
		Title: "Bank-count ablation: 1, 3, 5 and 7 banks",
		Paper: "Section 5.1 ('varying number of predictor banks'): 5 banks add little over 3; bigger banks beat more banks",
		Run:   runAblationBanks,
	})
	register(Experiment{
		ID:    "ablation-policy",
		Title: "Update-policy ablation across history lengths",
		Paper: "Sections 4.1/5.1: partial update consistently beats total update",
		Run:   runAblationPolicy,
	})
	register(Experiment{
		ID:    "ablation-counters",
		Title: "Counter-width ablation: 1-bit vs 2-bit cells",
		Paper: "Table 2 and section 7 ('distributed predictor encodings'): 2-bit cells win at equal entry counts",
		Run:   runAblationCounters,
	})
	register(Experiment{
		ID:    "ablation-enhanced-bank0",
		Title: "Enhanced-gskew bank-0 indexing ablation",
		Paper: "Section 6: address-only bank 0 rescues long-history references; at short histories the variants tie",
		Run:   runAblationEnhanced,
	})
}

// runAblationBanks compares bank counts at a fixed per-bank size
// (4k entries, 8-bit history), reporting total storage alongside so
// the cost of each configuration is explicit. The five configurations
// of a benchmark share one RunMany trace pass.
func runAblationBanks(ctx *Context) (Renderable, error) {
	const histBits = 8
	const bankBits = 12
	t := report.NewTable("Bank-count ablation (4k-entry banks, 8-bit history, partial update)",
		"benchmark", "1 bank (gshare 4k)", "3 banks (12k)", "5 banks (20k)", "7 banks (28k)", "gshare 16k")
	rows, err := mapBenchmarks(ctx, func(name string, branches []trace.Branch) ([]float64, error) {
		preds := []predictor.Predictor{
			predictor.MustSpec(predictor.Spec{Family: "gshare", N: bankBits, Hist: histBits})}
		for _, banks := range []int{3, 5, 7} {
			preds = append(preds, predictor.MustSpec(predictor.Spec{
				Family: "gskewed", Banks: banks, N: bankBits, Hist: histBits}))
		}
		// Cost-equivalent alternative to 3 more banks: one bigger bank.
		preds = append(preds, predictor.MustSpec(predictor.Spec{
			Family: "gshare", N: bankBits + 2, Hist: histBits}))
		results, err := ctx.RunMany("ablation-banks/"+name, branches, preds, sim.Options{})
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(results))
		for i, res := range results {
			row[i] = res.MissPercent()
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	var cols [5][]float64
	for i, name := range ctx.BenchmarkNames() {
		row := rows[i]
		t.AddRow(name,
			fmt.Sprintf("%.2f", row[0]), fmt.Sprintf("%.2f", row[1]),
			fmt.Sprintf("%.2f", row[2]), fmt.Sprintf("%.2f", row[3]),
			fmt.Sprintf("%.2f", row[4]))
		for j, v := range row {
			cols[j] = append(cols[j], v)
		}
	}
	// Geometric-mean summary row.
	t.AddRow("geomean",
		fmt.Sprintf("%.2f", geomean(cols[0])), fmt.Sprintf("%.2f", geomean(cols[1])),
		fmt.Sprintf("%.2f", geomean(cols[2])), fmt.Sprintf("%.2f", geomean(cols[3])),
		fmt.Sprintf("%.2f", geomean(cols[4])))
	return t, nil
}

func runAblationPolicy(ctx *Context) (Renderable, error) {
	return historySweep(ctx, "ablation-policy",
		"Partial vs total update (3x4k gskewed)",
		[]uint{0, 4, 8, 12, 16},
		[]struct {
			name  string
			build func(k uint) predictor.Predictor
		}{
			{"partial", func(k uint) predictor.Predictor {
				return predictor.MustSpec(predictor.Spec{Family: "gskewed", N: 12, Hist: k})
			}},
			{"total", func(k uint) predictor.Predictor {
				return predictor.MustSpec(predictor.Spec{
					Family: "gskewed", N: 12, Hist: k, Policy: predictor.TotalUpdate})
			}},
		})
}

func runAblationCounters(ctx *Context) (Renderable, error) {
	const histBits = 8
	t := report.NewTable("Counter-width ablation (3x4k gskewed, 8-bit history, partial update)",
		"benchmark", "1-bit cells", "2-bit cells")
	rows, err := mapBenchmarks(ctx, func(name string, branches []trace.Branch) ([]string, error) {
		var preds []predictor.Predictor
		for _, bits := range []uint{1, 2} {
			preds = append(preds, predictor.MustSpec(predictor.Spec{
				Family: "gskewed", N: 12, Hist: histBits, Ctr: bits}))
		}
		results, err := ctx.RunMany("ablation-counters/"+name, branches, preds, sim.Options{})
		if err != nil {
			return nil, err
		}
		rates := make([]string, len(results))
		for i, res := range results {
			rates[i] = fmt.Sprintf("%.2f", res.MissPercent())
		}
		return rates, nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range ctx.BenchmarkNames() {
		t.AddRow(name, rows[i][0], rows[i][1])
	}
	return t, nil
}

// runAblationEnhanced isolates the e-gskew design choice: replace the
// address-only bank 0 with (a) the standard f0 (plain gskewed) and
// (b) a bimodal-style short-history index, at a long history length
// where the designs separate.
func runAblationEnhanced(ctx *Context) (Renderable, error) {
	return historySweep(ctx, "ablation-enhanced-bank0",
		"Enhanced bank-0 ablation (3x4k, partial update)",
		[]uint{8, 12, 16},
		[]struct {
			name  string
			build func(k uint) predictor.Predictor
		}{
			{"f0(V) bank0 (gskewed)", func(k uint) predictor.Predictor {
				return predictor.MustSpec(predictor.Spec{Family: "gskewed", N: 12, Hist: k})
			}},
			{"addr-only bank0 (egskew)", func(k uint) predictor.Predictor {
				return predictor.MustSpec(predictor.Spec{Family: "egskew", N: 12, Hist: k})
			}},
		})
}
