package experiments

import (
	"gskew/internal/rng"
	"gskew/internal/skewfn"
)

// newDemoSkewer returns the small skewer used by demonstration
// experiments (16-entry banks).
func newDemoSkewer() *skewfn.Skewer { return skewfn.New(4) }

// findDemoCollision finds a pair of vectors that collide in bank 0 but
// in neither other bank — the dispersion the skewed structure exploits.
func findDemoCollision(s *skewfn.Skewer) (v, w uint64) {
	r := rng.NewXoshiro256(4)
	for {
		a, b := r.Uint64n(1<<12), r.Uint64n(1<<12)
		if a == b {
			continue
		}
		if s.F0(a) == s.F0(b) && s.F1(a) != s.F1(b) && s.F2(a) != s.F2(b) {
			return a, b
		}
	}
}
