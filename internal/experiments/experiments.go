// Package experiments regenerates every table and figure of the
// paper's evaluation. Each experiment has a stable id (table1, table2,
// fig1 ... fig12, ablation-*), produces a Renderable result, and is
// indexed in DESIGN.md; EXPERIMENTS.md records the paper-vs-measured
// comparison for each.
//
// Experiments share a Context, which caches materialised workload
// traces so that a full `cmd/experiments -all` run generates each
// benchmark trace once.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"gskew/internal/report"
	"gskew/internal/trace"
	"gskew/internal/tracepool"
	"gskew/internal/workload"
)

// Renderable is anything an experiment can return; report.Table and
// report.Figure both satisfy it.
type Renderable interface {
	WriteText(io.Writer) error
	WriteCSV(io.Writer) error
}

// Bundle groups several Renderables (e.g. one figure per benchmark)
// under a common title.
type Bundle struct {
	Title string
	Items []Renderable
}

// Add appends an item and returns the bundle.
func (b *Bundle) Add(r Renderable) *Bundle {
	b.Items = append(b.Items, r)
	return b
}

// WriteText implements Renderable.
func (b *Bundle) WriteText(w io.Writer) error {
	if b.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n\n", b.Title); err != nil {
			return err
		}
	}
	for i, item := range b.Items {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := item.WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV implements Renderable by concatenating the items' CSV
// blocks separated by blank lines.
func (b *Bundle) WriteCSV(w io.Writer) error {
	for i, item := range b.Items {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := item.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// Context carries run-wide configuration, the materialised-trace cache
// and the scheduler that bounds concurrent simulation cells.
//
// A Context is safe for concurrent use: any number of goroutines may
// call Trace, BenchmarkNames and the experiment Run functions
// simultaneously. The trace cache guarantees each benchmark trace is
// generated exactly once per Context, even under contention (per-key
// sync.Once); concurrent callers for a benchmark being generated block
// until it is ready and then share the same immutable slice.
type Context struct {
	// Scale is the workload scale factor (see workload.Config). The
	// zero value selects DefaultScale, sized so a full -all run
	// completes in minutes.
	Scale float64
	// SeedOffset perturbs workload seeds for variance studies.
	SeedOffset uint64
	// Benchmarks restricts the suite (nil = all six).
	Benchmarks []string
	// Sched bounds the concurrent (experiment, benchmark) simulation
	// cells of this context. Nil selects a default GOMAXPROCS-wide
	// scheduler on first use; NewSched(1) forces fully serial runs.
	Sched *Sched
	// Segments is the default segment-parallel split for every
	// simulation cell driven through Context.RunMany (sim.Options.
	// Segments; results are bit-identical to serial at any value). It
	// applies only to cells that did not set their own split; 0 leaves
	// the simulator's own default in place.
	Segments int
	// Obs, when non-nil, collects run telemetry (interval curves,
	// manifest cells, progress lines) from every simulation cell driven
	// through Context.RunMany. Nil — the default — is zero-overhead.
	Obs *RunObs
	// Pool, when non-nil, backs Trace with the content-addressed trace
	// segment pool: a benchmark whose (name, scale, seed) identity is
	// already pooled is decoded from its columnar blob instead of
	// regenerated, and fresh materialisations are written through, so
	// repeated experiment runs sharing a -trace-pool directory (or a
	// pool shared with the HTTP service) skip workload generation.
	Pool *tracepool.Pool

	schedOnce    sync.Once
	defaultSched *Sched

	mu    sync.Mutex
	cache map[string]*traceEntry
}

// traceEntry is one per-benchmark cache slot. The once gates
// generation so the map lock is never held while materialising.
type traceEntry struct {
	once     sync.Once
	branches []trace.Branch
	err      error
}

// DefaultScale for experiment runs: 10% of the paper's dynamic lengths,
// i.e. 570k-2.1M conditional branches per benchmark — large enough to
// exercise every table size under study, small enough to sweep.
const DefaultScale = 0.1

// NewContext returns a Context with the given scale (0 = DefaultScale).
func NewContext(scale float64) *Context {
	return &Context{Scale: scale}
}

func (c *Context) scale() float64 {
	if c.Scale <= 0 {
		return DefaultScale
	}
	return c.Scale
}

// BenchmarkNames returns the benchmark suite this context runs.
func (c *Context) BenchmarkNames() []string {
	if len(c.Benchmarks) > 0 {
		return c.Benchmarks
	}
	return workload.Names()
}

// Trace returns the materialised trace for a workload — a benchmark
// name or a recorded-algorithm spec ("algo:...") — generating it on
// first use. It is safe for concurrent use: per-key sync.Once
// guarantees each benchmark trace is generated exactly once per
// Context even when many goroutines race for it, and the map lock is
// never held during generation, so distinct benchmarks materialise
// concurrently.
func (c *Context) Trace(name string) ([]trace.Branch, error) {
	c.mu.Lock()
	if c.cache == nil {
		c.cache = make(map[string]*traceEntry)
	}
	e := c.cache[name]
	if e == nil {
		e = &traceEntry{}
		c.cache[name] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		poolKey := fmt.Sprintf("%s|%g|%d", name, c.scale(), c.SeedOffset)
		if workload.IsAlgo(name) {
			// Scale does not apply to recorded algorithms; keeping the
			// pool identity scale-free lets CLI and service ingests of
			// the same spec share one entry.
			poolKey = fmt.Sprintf("%s|%d", name, c.SeedOffset)
		}
		if c.Pool != nil {
			if branches, _, ok := c.Pool.GetNamed(poolKey); ok {
				e.branches = branches
				return
			}
		}
		e.branches, e.err = workload.MaterializeAny(name,
			workload.Config{Scale: c.scale(), SeedOffset: c.SeedOffset})
		if e.err == nil && c.Pool != nil {
			// Write-through; a pool failure only costs re-materialisation
			// on the next run.
			c.Pool.PutNamed(poolKey, e.branches)
		}
	})
	return e.branches, e.err
}

// DropTrace evicts a cached trace (memory control for long sweeps).
// Callers must not hold references handed out before the eviction if
// they expect the memory to be reclaimed.
func (c *Context) DropTrace(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.cache, name)
}

// sched returns the context's scheduler, defaulting to a
// GOMAXPROCS-wide pool created on first use.
func (c *Context) sched() *Sched {
	if c.Sched != nil {
		return c.Sched
	}
	c.schedOnce.Do(func() { c.defaultSched = NewSched(0) })
	return c.defaultSched
}

// mapBenchmarks runs fn once per benchmark in the context's suite as
// independent scheduler cells and delivers the results in suite order
// regardless of completion order, so rendered output is deterministic.
// Each fn call works on its own predictors over the shared immutable
// trace.
func mapBenchmarks[T any](c *Context, fn func(name string, branches []trace.Branch) (T, error)) ([]T, error) {
	names := c.BenchmarkNames()
	results := make([]T, len(names))
	err := c.sched().Map(len(names), func(i int) error {
		branches, err := c.Trace(names[i])
		if err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
		r, err := fn(names[i], branches)
		if err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// forEachBenchmark is mapBenchmarks specialised to Renderable results,
// the common shape of per-benchmark figures and tables.
func (c *Context) forEachBenchmark(fn func(name string, branches []trace.Branch) (Renderable, error)) ([]Renderable, error) {
	return mapBenchmarks(c, fn)
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the stable identifier, e.g. "fig5".
	ID string
	// Title is a human-readable one-liner.
	Title string
	// Paper describes what the original paper shows in this artifact.
	Paper string
	// Run produces the result.
	Run func(*Context) (Renderable, error)
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every registered experiment, sorted by ID with tables
// first, then figures in numeric order, then ablations.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey makes table1 < table2 < fig1 < ... < fig12 < ablation-*.
func orderKey(id string) string {
	var group byte
	var num int
	switch {
	case len(id) > 5 && id[:5] == "table":
		group = 'a'
		fmt.Sscanf(id[5:], "%d", &num)
	case len(id) > 3 && id[:3] == "fig":
		group = 'b'
		fmt.Sscanf(id[3:], "%d", &num)
	default:
		group = 'c'
	}
	return fmt.Sprintf("%c%03d%s", group, num, id)
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(registry))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// WritePlot renders a result as ASCII charts where possible: figures
// are plotted, tables fall back to aligned text, bundles recurse.
func WritePlot(w io.Writer, r Renderable) error {
	switch v := r.(type) {
	case *report.Figure:
		return v.WritePlot(w, report.PlotOptions{})
	case *Bundle:
		if v.Title != "" {
			if _, err := fmt.Fprintf(w, "%s\n\n", v.Title); err != nil {
				return err
			}
		}
		for i, item := range v.Items {
			if i > 0 {
				if _, err := io.WriteString(w, "\n"); err != nil {
					return err
				}
			}
			if err := WritePlot(w, item); err != nil {
				return err
			}
		}
		return nil
	default:
		return r.WriteText(w)
	}
}
