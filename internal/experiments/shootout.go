package experiments

import (
	"fmt"

	"gskew/internal/alias"
	"gskew/internal/history"
	"gskew/internal/indexfn"
	"gskew/internal/predictor"
	"gskew/internal/report"
	"gskew/internal/sim"
	"gskew/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "ext-shootout",
		Title: "Storage-equalized shoot-out: skewed class vs TAGE vs hashed perceptron",
		Paper: "Section 7 asks what succeeds the skewed organisation; TAGE (Seznec/Michaud 2006) and the hashed perceptron (Tarjan/Skadron 2005) are the answers that won",
		Run:   runExtShootout,
	})
}

// shootoutEntry is one contender at the matched ~24-32 Kbit budget.
// Budgets cannot be made exactly equal across such different
// encodings (2-bit counters vs tagged 13-bit entries vs 8-bit
// weights); each column header carries the exact bit count so the
// comparison is honest.
type shootoutEntry struct {
	label string
	spec  string
}

func shootoutEntries() []shootoutEntry {
	return []shootoutEntry{
		{"3x4k-gskewed", "gskewed:n=12,k=8,banks=3,ctr=2,policy=partial"},
		{"3x4k-egskew", "egskew:n=12,k=8,ctr=2,policy=partial"},
		{"4x4k-2bcgskew", "2bcgskew:n=12,ks=6,k=14"},
		{"tage-4x512", "tage:n=9,k=20,kmin=4,tables=4,tag=8,ctr=3"},
		{"perceptron-8x512", "perceptron:n=9,k=16,tables=8,theta=44,ctr=8"},
	}
}

// runExtShootout races this paper's skewed organisations against the
// two modern families at matched storage, then decomposes the classic
// budget's aliasing into the three Cs — the conflict component is the
// headroom the tagged and neural organisations go after.
func runExtShootout(ctx *Context) (Renderable, error) {
	entries := shootoutEntries()
	cols := []string{"benchmark"}
	for _, e := range entries {
		bits := predictor.MustParseSpec(e.spec).StorageBits()
		cols = append(cols, fmt.Sprintf("%s (%.1fKb)", e.label, float64(bits)/1024))
	}
	miss := report.NewTable("Miss % at matched storage budgets", cols...)
	rows, err := compareRows(ctx, "ext-shootout", func() []predictor.Predictor {
		preds := make([]predictor.Predictor, len(entries))
		for i, e := range entries {
			preds[i] = predictor.MustParseSpec(e.spec)
		}
		return preds
	}, sim.Options{})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		miss.AddRow(row...)
	}

	// Three-Cs companion: where the classic budget's mispredictions come
	// from. The decomposition is measured on the shared 4k-entry gshare
	// index (n=12, h=8) the skewed contenders are built around; the
	// conflict column is what skewing dilutes, TAGE tags away and the
	// perceptron never pays (weights are summed, not overwritten).
	threec := report.NewTable("Three-Cs decomposition of the 4k-entry shared index (n=12, h=8)",
		"benchmark", "compulsory %", "capacity %", "conflict %", "total aliased %")
	crows, err := mapBenchmarks(ctx, func(name string, branches []trace.Branch) ([]any, error) {
		cl := alias.NewClassifier(indexfn.NewGShare(12, 8))
		ghr := history.NewGlobal(8)
		for _, b := range branches {
			if b.Kind == trace.Conditional {
				cl.Observe(b.PC, ghr.Bits())
			}
			ghr.Shift(b.Taken)
		}
		st := cl.Stats()
		return []any{name,
			fmt.Sprintf("%.3f", 100*st.CompulsoryRatio()),
			fmt.Sprintf("%.3f", 100*st.CapacityRatio()),
			fmt.Sprintf("%.3f", 100*st.ConflictRatio()),
			fmt.Sprintf("%.3f", 100*st.TotalRatio())}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range crows {
		threec.AddRow(row...)
	}

	return (&Bundle{Title: "Modern rivals at ~24-32 Kbit"}).Add(miss).Add(threec), nil
}
