package experiments

import (
	"fmt"
	"sync"
	"time"

	"gskew/internal/obs"
	"gskew/internal/predictor"
	"gskew/internal/sim"
	"gskew/internal/trace"
)

// RunObs collects run telemetry for an experiments invocation: interval
// misprediction curves for every simulation cell, per-cell manifest
// entries, and live progress lines. All of it is opt-in — a Context
// with a nil Obs (the default) runs every cell exactly as before, and
// stdout-rendered results are byte-identical either way.
//
// A RunObs is safe for concurrent use; cells running on different
// scheduler workers append under its lock.
type RunObs struct {
	// Intervals is the interval length, in counted conditionals, of the
	// per-cell misprediction curves. Zero disables curve capture.
	Intervals int
	// Progress, when non-nil, receives one completion line per
	// simulation cell.
	Progress *obs.Progress
	// Manifest, when non-nil, accumulates one Cell per simulation cell
	// with its predictors, conditional count and wall time.
	Manifest *obs.Manifest

	mu     sync.Mutex
	series []*obs.Series
}

// Series returns the interval curves captured so far, one per
// (cell, predictor) pair, in cell completion order.
func (o *RunObs) Series() []*obs.Series {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*obs.Series, len(o.series))
	copy(out, o.series)
	return out
}

func (o *RunObs) addSeries(s []*obs.Series) {
	o.mu.Lock()
	o.series = append(o.series, s...)
	o.mu.Unlock()
}

// specLabel names a predictor for telemetry: its canonical Spec string
// when it has one, its String form otherwise (hybrids, custom tables).
func specLabel(p predictor.Predictor) string {
	if sp, ok := p.(predictor.Speccer); ok {
		return sp.Spec().String()
	}
	return fmt.Sprintf("%v", p)
}

// RunMany is the observed version of sim.RunManyBranches: identical
// results, with the context's RunObs (when set) capturing the cell's
// interval curves, manifest entry and progress line. cell names the
// simulation cell, conventionally "<experiment>/<benchmark>".
func (c *Context) RunMany(cell string, branches []trace.Branch, preds []predictor.Predictor, opts sim.Options) ([]sim.Result, error) {
	if opts.Segments == 0 {
		// Cells that did not pick their own split inherit the
		// context-wide segment-parallel default (-segments).
		opts.Segments = c.Segments
	}
	o := c.Obs
	if o == nil {
		return sim.RunManyBranches(branches, preds, opts)
	}
	var rec *obs.Recorder
	if o.Intervals > 0 {
		labels := make([]string, len(preds))
		for i, p := range preds {
			labels[i] = cell + "/" + specLabel(p)
		}
		rec = obs.NewRecorder(o.Intervals, labels...)
		opts.Recorder = rec
	}
	start := time.Now()
	results, err := sim.RunManyBranches(branches, preds, opts)
	took := time.Since(start)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		o.addSeries(rec.Series())
	}
	if o.Manifest != nil {
		specs := make([]string, len(preds))
		for i, p := range preds {
			specs[i] = specLabel(p)
		}
		conds := 0
		if len(results) > 0 {
			conds = results[0].Conditionals
		}
		o.Manifest.AddCell(obs.Cell{
			ID:           cell,
			Predictors:   specs,
			Conditionals: conds,
			WallMS:       float64(took.Nanoseconds()) / float64(time.Millisecond),
			Result:       results,
		})
	}
	if o.Progress != nil {
		o.Progress.Done(cell, took)
	}
	return results, nil
}
