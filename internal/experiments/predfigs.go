package experiments

import (
	"fmt"
	"math"

	"gskew/internal/predictor"
	"gskew/internal/report"
	"gskew/internal/sim"
	"gskew/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "gshare vs gskewed across table sizes, 4-bit history",
		Paper: "Figure 5: gskewed (partial update) matches gshare of ~2x storage once capacity aliasing vanishes",
		Run:   func(ctx *Context) (Renderable, error) { return runSizeSweep(ctx, "fig5", 4, []uint{10, 12, 14, 16}) },
	})
	register(Experiment{
		ID:    "fig6",
		Title: "gshare vs gskewed across table sizes, 12-bit history",
		Paper: "Figure 6: as Figure 5 with 12 history bits; gskewed also removes pathological cases (nroff)",
		Run:   func(ctx *Context) (Renderable, error) { return runSizeSweep(ctx, "fig6", 12, []uint{12, 14, 16, 18}) },
	})
	register(Experiment{
		ID:    "fig7",
		Title: "3x4k gskewed vs 16k gshare across history lengths",
		Paper: "Figure 7: despite 25% less storage, gskewed outperforms gshare on all benchmarks except real_gcc",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "3N-entry gskewed (partial/total) vs N-entry fully-associative LRU, 4-bit history",
		Paper: "Figure 8: gskewed with partial update ~= N-entry FA-LRU; total update slightly worse",
		Run:   runFig8,
	})
}

// runSizeSweep produces, per benchmark, misprediction curves over
// gshare table sizes 2^n for n in sizes, with a 3x2^(n-2)-entry
// gskewed (75% of the gshare storage at the same x position) as the
// paper's skewed counterpart. All configurations of a benchmark run in
// one RunMany trace pass.
func runSizeSweep(ctx *Context, id string, histBits uint, sizes []uint) (Renderable, error) {
	items, err := ctx.forEachBenchmark(func(name string, branches []trace.Branch) (Renderable, error) {
		fig := report.NewFigure(fmt.Sprintf("%s (%d-bit history)", name, histBits),
			"gshare entries", "miss %")
		preds := make([]predictor.Predictor, 0, 2*len(sizes))
		for _, n := range sizes {
			fig.Xs = append(fig.Xs, float64(uint64(1)<<n))
			preds = append(preds,
				predictor.MustSpec(predictor.Spec{Family: "gshare", N: n, Hist: histBits}),
				predictor.MustSpec(predictor.Spec{Family: "gskewed", N: n - 2, Hist: histBits}))
		}
		results, err := ctx.RunMany(id+"/"+name, branches, preds, sim.Options{})
		if err != nil {
			return nil, err
		}
		var gsh, gsk []float64
		for i := range sizes {
			gsh = append(gsh, results[2*i].MissPercent())
			gsk = append(gsk, results[2*i+1].MissPercent())
		}
		fig.AddSeries("gshare", gsh)
		fig.AddSeries("gskewed-3x(N/4)", gsk)
		return fig, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bundle{
		Title: fmt.Sprintf("Misprediction %% vs size (%d-bit history)", histBits),
		Items: items,
	}, nil
}

// historySweep runs a set of predictor constructors across history
// lengths and returns a per-benchmark bundle. The full (predictor,
// history) cross product of a benchmark runs in one RunMany pass.
func historySweep(ctx *Context, id, title string, hists []uint,
	preds []struct {
		name  string
		build func(k uint) predictor.Predictor
	}) (Renderable, error) {
	items, err := ctx.forEachBenchmark(func(name string, branches []trace.Branch) (Renderable, error) {
		fig := report.NewFigure(name, "history bits", "miss %")
		for _, k := range hists {
			fig.Xs = append(fig.Xs, float64(k))
		}
		built := make([]predictor.Predictor, 0, len(preds)*len(hists))
		for _, pd := range preds {
			for _, k := range hists {
				built = append(built, pd.build(k))
			}
		}
		results, err := ctx.RunMany(id+"/"+name, branches, built, sim.Options{})
		if err != nil {
			return nil, err
		}
		for pi, pd := range preds {
			ys := make([]float64, len(hists))
			for ki := range hists {
				ys[ki] = results[pi*len(hists)+ki].MissPercent()
			}
			fig.AddSeries(pd.name, ys)
		}
		return fig, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bundle{Title: title, Items: items}, nil
}

func runFig7(ctx *Context) (Renderable, error) {
	return historySweep(ctx, "fig7",
		"Misprediction % of 3x4k-gskewed vs 16k-gshare across history lengths",
		[]uint{0, 2, 4, 6, 8, 10, 12, 14, 16},
		[]struct {
			name  string
			build func(k uint) predictor.Predictor
		}{
			{"16k-gshare", func(k uint) predictor.Predictor {
				return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: k})
			}},
			{"3x4k-gskewed", func(k uint) predictor.Predictor {
				return predictor.MustSpec(predictor.Spec{Family: "gskewed", N: 12, Hist: k})
			}},
		})
}

func runFig8(ctx *Context) (Renderable, error) {
	const histBits = 4
	sizes := []uint{8, 10, 12} // N = 256, 1k, 4k
	items, err := ctx.forEachBenchmark(func(name string, branches []trace.Branch) (Renderable, error) {
		fig := report.NewFigure(name, "N entries", "miss %")
		preds := make([]predictor.Predictor, 0, 3*len(sizes))
		for _, n := range sizes {
			fig.Xs = append(fig.Xs, float64(uint64(1)<<n))
			preds = append(preds, predictor.MustSpec(predictor.Spec{
				Family: "assoc-lru", Entries: 1 << n, Hist: histBits}))
			for _, pol := range []predictor.UpdatePolicy{predictor.PartialUpdate, predictor.TotalUpdate} {
				preds = append(preds, predictor.MustSpec(predictor.Spec{
					Family: "gskewed", N: n, Hist: histBits, Policy: pol}))
			}
		}
		results, err := ctx.RunMany("fig8/"+name, branches, preds, sim.Options{})
		if err != nil {
			return nil, err
		}
		var fa, partial, total []float64
		for i := range sizes {
			fa = append(fa, results[3*i].MissPercent())
			partial = append(partial, results[3*i+1].MissPercent())
			total = append(total, results[3*i+2].MissPercent())
		}
		fig.AddSeries("N-assoc-lru", fa)
		fig.AddSeries("3N-gskewed-partial", partial)
		fig.AddSeries("3N-gskewed-total", total)
		return fig, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bundle{
		Title: "3N-entry gskewed vs N-entry fully-associative LRU (4-bit history)",
		Items: items,
	}, nil
}

// geomean of a slice of positive rates; used by summary rows.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-9
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
