package experiments

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"gskew/internal/trace"
)

func TestMapRunsEveryIndexBounded(t *testing.T) {
	s := NewSched(2)
	var ran [16]int32
	var inFlight, peak int32
	err := s.Map(len(ran), func(i int) error {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		atomic.AddInt32(&ran[i], 1)
		atomic.AddInt32(&inFlight, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range ran {
		if n != 1 {
			t.Errorf("index %d ran %d times", i, n)
		}
	}
	if p := atomic.LoadInt32(&peak); p > 2 {
		t.Errorf("peak concurrency %d exceeds scheduler width 2", p)
	}
}

// TestMapCellsRunConcurrently proves at least 4 cells are genuinely
// in flight at once: every cell blocks on a barrier that only opens
// when all 4 have arrived, so a scheduler that serialised them would
// deadlock (caught by the test timeout).
func TestMapCellsRunConcurrently(t *testing.T) {
	s := NewSched(4)
	var barrier sync.WaitGroup
	barrier.Add(4)
	err := s.Map(4, func(i int) error {
		barrier.Done()
		barrier.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	s := NewSched(4)
	errLow, errHigh := errors.New("low"), errors.New("high")
	err := s.Map(8, func(i int) error {
		switch i {
		case 2:
			return errLow
		case 5:
			return errHigh
		default:
			return nil
		}
	})
	if !errors.Is(err, errLow) {
		t.Errorf("Map error = %v, want the lowest failing index's error %v", err, errLow)
	}
}

func TestMapSerialSchedulerPreservesOrder(t *testing.T) {
	s := NewSched(1)
	if s.Jobs() != 1 {
		t.Fatalf("Jobs() = %d", s.Jobs())
	}
	var order []int
	err := s.Map(5, func(i int) error {
		order = append(order, i) // no lock: width 1 means inline calls
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial execution order %v, want 0..4 in order", order)
		}
	}
}

func TestMapZeroCells(t *testing.T) {
	if err := NewSched(4).Map(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

// TestTraceConcurrentSameSlice checks the per-key sync.Once cache:
// racing goroutines must all observe the one generated trace (same
// backing array), never a duplicate generation.
func TestTraceConcurrentSameSlice(t *testing.T) {
	ctx := &Context{Scale: 0.002}
	const goroutines = 8
	ptrs := make([]*trace.Branch, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			branches, err := ctx.Trace("verilog")
			if err != nil {
				t.Error(err)
				return
			}
			if len(branches) == 0 {
				t.Error("empty trace")
				return
			}
			ptrs[g] = &branches[0]
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if ptrs[g] != ptrs[0] {
			t.Errorf("goroutine %d got a different trace slice (generated twice?)", g)
		}
	}
}

// TestRunAllDeterministicAcrossJobs renders a representative slice of
// the suite (simulation tables, per-benchmark bundles, figures) under
// a serial and a wide scheduler and requires byte-identical output —
// the contract `cmd/experiments` relies on for -jobs.
func TestRunAllDeterministicAcrossJobs(t *testing.T) {
	ids := []string{"table1", "fig3", "fig4", "fig9", "ablation-counters"}
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps[i] = e
	}
	render := func(jobs int) []byte {
		t.Helper()
		ctx := &Context{
			Scale:      0.005,
			Benchmarks: []string{"verilog", "nroff"},
			Sched:      NewSched(jobs),
		}
		results, err := RunAll(ctx, exps)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for i, r := range results {
			buf.WriteString("== " + exps[i].ID + " ==\n")
			if err := r.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	serial := render(1)
	wide := render(4)
	if !bytes.Equal(serial, wide) {
		t.Errorf("rendered output differs between -jobs 1 (%d bytes) and -jobs 4 (%d bytes)",
			len(serial), len(wide))
	}
}

// TestRunAllDeterministicAcrossSegments is the same contract for
// -segments: the segment-parallel engine is an execution strategy, so
// a representative suite slice rendered with Segments 1 and a forced
// multi-segment split must be byte-identical.
func TestRunAllDeterministicAcrossSegments(t *testing.T) {
	ids := []string{"table1", "fig3", "ext-flush", "ablation-counters"}
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps[i] = e
	}
	render := func(segments int) []byte {
		t.Helper()
		ctx := &Context{
			Scale:      0.005,
			Benchmarks: []string{"verilog", "nroff"},
			Sched:      NewSched(1),
			Segments:   segments,
		}
		results, err := RunAll(ctx, exps)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for i, r := range results {
			buf.WriteString("== " + exps[i].ID + " ==\n")
			if err := r.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	serial := render(1)
	segmented := render(5)
	if !bytes.Equal(serial, segmented) {
		t.Errorf("rendered output differs between -segments 1 (%d bytes) and -segments 5 (%d bytes)",
			len(serial), len(segmented))
	}
}
