package experiments

import (
	"fmt"

	"gskew/internal/alias"
	"gskew/internal/history"
	"gskew/internal/indexfn"
	"gskew/internal/pipeline"
	"gskew/internal/predictor"
	"gskew/internal/report"
	"gskew/internal/sim"
	"gskew/internal/trace"
)

// Extension experiments: the paper's section-7 future-work directions,
// realised. Ids are prefixed "ext-".

func init() {
	register(Experiment{
		ID:    "ext-pas",
		Title: "Skewing applied to per-address two-level schemes",
		Paper: "Section 7: 'the same technique could be applied to ... per-address history schemes'",
		Run:   runExtPAs,
	})
	register(Experiment{
		ID:    "ext-hybrid",
		Title: "Hybrid (McFarling chooser) with and without a skewed component",
		Paper: "Section 7: hybrid schemes as a skewing target; related work [8,2,1,4]",
		Run:   runExtHybrid,
	})
	register(Experiment{
		ID:    "ext-confidence",
		Title: "Vote margin as a confidence estimator",
		Paper: "Implicit in the majority-vote structure (used later by the Alpha EV8); unanimous votes should be far more accurate",
		Run:   runExtConfidence,
	})
	register(Experiment{
		ID:    "ext-encoding",
		Title: "Distributed encodings: shared-hysteresis banks",
		Paper: "Section 7: 'do there exist alternative distributed predictor encodings that are more space efficient?'",
		Run:   runExtEncoding,
	})
	register(Experiment{
		ID:    "ext-opt",
		Title: "Capacity aliasing under OPT (Belady) vs LRU replacement",
		Paper: "Section 3.2's caveat after Sugumar/Abraham: LRU is not an optimal replacement policy",
		Run:   runExtOpt,
	})
}

// compareRows runs one Compare (single-pass RunMany) per benchmark as
// scheduler cells and returns, in suite order, rows of the form
// [name, miss%...], the common shape of the extension tables. id names
// the experiment for run telemetry.
func compareRows(ctx *Context, id string, build func() []predictor.Predictor, opts sim.Options) ([][]any, error) {
	return mapBenchmarks(ctx, func(name string, branches []trace.Branch) ([]any, error) {
		results, err := ctx.RunMany(id+"/"+name, branches, build(), opts)
		if err != nil {
			return nil, err
		}
		row := []any{name}
		for _, r := range results {
			row = append(row, fmt.Sprintf("%.2f", r.MissPercent()))
		}
		return row, nil
	})
}

func runExtPAs(ctx *Context) (Renderable, error) {
	t := report.NewTable("Skewed per-address schemes (miss %, local history 8, 64-entry BHT x 1024)",
		"benchmark", "pas 4k", "skewed-pas 3x2k", "gshare 4k (global, h8)")
	rows, err := compareRows(ctx, "ext-pas", func() []predictor.Predictor {
		return []predictor.Predictor{
			predictor.MustParseSpec("pas:bht=10,local=8,n=12,ctr=2"),
			predictor.MustParseSpec("skewed-pas:bht=10,local=8,n=11,ctr=2,policy=partial"),
			predictor.MustParseSpec("gshare:n=12,k=8,ctr=2"),
		}
	}, sim.Options{})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

func runExtHybrid(ctx *Context) (Renderable, error) {
	t := report.NewTable("Hybrid predictors (miss %, 8-bit history)",
		"benchmark", "gshare 16k", "bimodal+gshare", "bimodal+gskewed", "egskew 3x4k")
	const k = 8
	rows, err := compareRows(ctx, "ext-hybrid", func() []predictor.Predictor {
		bimodal := func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 12})
		}
		return []predictor.Predictor{
			predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: k}),
			predictor.MustHybrid(bimodal(),
				predictor.MustSpec(predictor.Spec{Family: "gshare", N: 13, Hist: k}), 12),
			predictor.MustHybrid(bimodal(),
				predictor.MustSpec(predictor.Spec{Family: "gskewed", N: 11, Hist: k}), 12),
			predictor.MustSpec(predictor.Spec{Family: "egskew", N: 12, Hist: k}),
		}
	}, sim.Options{})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

func runExtConfidence(ctx *Context) (Renderable, error) {
	const histBits = 8
	t := report.NewTable("Vote-margin confidence (3x4k gskewed, 8-bit history, partial update)",
		"benchmark", "unanimous share", "miss | unanimous", "miss | split vote", "ratio")
	rows, err := mapBenchmarks(ctx, func(name string, branches []trace.Branch) ([]any, error) {
		g := predictor.MustGSkewed(predictor.Config{
			BankBits: 12, HistoryBits: histBits, Policy: predictor.PartialUpdate,
		})
		ghr := history.NewGlobal(histBits)
		var unanimousN, unanimousMiss, splitN, splitMiss int
		for _, b := range branches {
			if b.Kind == trace.Conditional {
				pred, unanimous := g.PredictConfident(b.PC, ghr.Bits())
				miss := pred != b.Taken
				if unanimous {
					unanimousN++
					if miss {
						unanimousMiss++
					}
				} else {
					splitN++
					if miss {
						splitMiss++
					}
				}
				g.Update(b.PC, ghr.Bits(), b.Taken)
			}
			ghr.Shift(b.Taken)
		}
		um := 100 * float64(unanimousMiss) / float64(max(unanimousN, 1))
		sm := 100 * float64(splitMiss) / float64(max(splitN, 1))
		ratio := sm / um
		return []any{name,
			fmt.Sprintf("%.1f %%", 100*float64(unanimousN)/float64(unanimousN+splitN)),
			fmt.Sprintf("%.2f %%", um),
			fmt.Sprintf("%.2f %%", sm),
			fmt.Sprintf("%.1fx", ratio)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

func runExtEncoding(ctx *Context) (Renderable, error) {
	const histBits = 8
	t := report.NewTable("Shared-hysteresis encoding (gskewed, 8-bit history, partial update)",
		"benchmark", "3x4k 2-bit (24 Kbit)", "3x4k shared/2 (15 Kbit)", "3x8k shared/4 (27 Kbit)")
	rows, err := compareRows(ctx, "ext-encoding", func() []predictor.Predictor {
		return []predictor.Predictor{
			predictor.MustSpec(predictor.Spec{Family: "gskewed", N: 12, Hist: histBits}),
			predictor.MustSpec(predictor.Spec{Family: "gskewed", N: 12, Hist: histBits, SharedHyst: 1}),
			predictor.MustSpec(predictor.Spec{Family: "gskewed", N: 13, Hist: histBits, SharedHyst: 2}),
		}
	}, sim.Options{})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

func runExtOpt(ctx *Context) (Renderable, error) {
	const histBits = 4
	items, err := ctx.forEachBenchmark(func(name string, branches []trace.Branch) (Renderable, error) {
		// Record the reference stream once.
		ghr := history.NewGlobal(histBits)
		refs := make([]uint64, 0, len(branches))
		for _, b := range branches {
			if b.Kind == trace.Conditional {
				refs = append(refs, indexfn.Vector(b.PC, ghr.Bits(), histBits))
			}
			ghr.Shift(b.Taken)
		}

		t := report.NewTable(name,
			"entries", "gshare-dm %", "lru %", "opt %", "conflict vs lru", "conflict vs opt")
		for _, n := range []uint{10, 12, 14} {
			dm := alias.NewTaggedDM(indexfn.NewGShare(n, histBits))
			ghr2 := history.NewGlobal(histBits)
			for _, b := range branches {
				if b.Kind == trace.Conditional {
					dm.Observe(b.PC, ghr2.Bits())
				}
				ghr2.Shift(b.Taken)
			}
			fa := alias.NewTaggedFA(1<<n, 0)
			for _, v := range refs {
				fa.Observe(v, 0)
			}
			opt := alias.OptMissRatio(refs, 1<<n)
			t.AddRow(fmt.Sprintf("%d", 1<<n),
				fmt.Sprintf("%.3f", 100*dm.MissRatio()),
				fmt.Sprintf("%.3f", 100*fa.MissRatio()),
				fmt.Sprintf("%.3f", 100*opt),
				fmt.Sprintf("%.3f", 100*(dm.MissRatio()-fa.MissRatio())),
				fmt.Sprintf("%.3f", 100*(dm.MissRatio()-opt)))
		}
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	return &Bundle{
		Title: "Conflict aliasing measured against LRU vs OPT capacity baselines (4-bit history)",
		Items: items,
	}, nil
}

func init() {
	register(Experiment{
		ID:    "ext-pipeline",
		Title: "Front-end impact: IPC and speedup vs pipeline depth",
		Paper: "Section 1's motivation quantified: mispredictions dominate deep, wide front ends",
		Run:   runExtPipeline,
	})
}

func runExtPipeline(ctx *Context) (Renderable, error) {
	const histBits = 8
	t := report.NewTable("Front-end model: 4-wide fetch, 5 instr/branch (miss % -> IPC at penalty 5/10/20)",
		"benchmark", "predictor", "miss %", "IPC@5", "IPC@10", "IPC@20", "speedup@20 vs gshare")
	rows, err := mapBenchmarks(ctx, func(name string, branches []trace.Branch) ([][]any, error) {
		preds := []predictor.Predictor{
			predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: histBits}),
			predictor.MustSpec(predictor.Spec{Family: "gskewed", N: 12, Hist: histBits}),
			predictor.MustSpec(predictor.Spec{Family: "egskew", N: 12, Hist: histBits}),
		}
		results, err := ctx.RunMany("ext-pipeline/"+name, branches, preds, sim.Options{})
		if err != nil {
			return nil, err
		}
		base := results[0]
		var rows [][]any
		for i, p := range preds {
			r := results[i]
			row := []any{name, fmt.Sprintf("%v", p), fmt.Sprintf("%.2f", r.MissPercent())}
			for _, penalty := range []int{5, 10, 20} {
				m := pipeline.Model{FetchWidth: 4, MispredictPenalty: penalty, InstrPerBranch: 5}
				c, err := m.Evaluate(r.Conditionals, r.Mispredicts)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.2f", c.IPC()))
			}
			m := pipeline.Model{FetchWidth: 4, MispredictPenalty: 20, InstrPerBranch: 5}
			sp, err := m.Speedup(base.Conditionals, base.Mispredicts, r.Mispredicts)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3fx", sp))
			rows = append(rows, row)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, benchRows := range rows {
		for _, row := range benchRows {
			t.AddRow(row...)
		}
	}
	return t, nil
}
