package experiments

import (
	"fmt"

	"gskew/internal/predictor"
	"gskew/internal/report"
	"gskew/internal/sim"
	"gskew/internal/stats"
	"gskew/internal/trace"
	"gskew/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ext-variance",
		Title: "Seed-replicate variance of the headline comparison",
		Paper: "Methodological robustness: do the conclusions survive workload-generation noise?",
		Run:   runExtVariance,
	})
}

// runExtVariance regenerates each benchmark with several seeds and
// summarises the gshare-vs-egskew comparison with confidence
// intervals: the claim "3x4k e-gskew matches a 16k gshare" should hold
// for the mean difference, not just one lucky trace.
func runExtVariance(ctx *Context) (Renderable, error) {
	const histBits = 8
	const replicates = 5
	t := report.NewTable(
		fmt.Sprintf("Seed variance over %d replicates (16k-gshare vs 3x4k-egskew, h=%d): miss %% mean ± CI95",
			replicates, histBits),
		"benchmark", "gshare", "egskew", "delta (gshare − egskew)", "significant?")
	// Each (benchmark, replicate) is an independent scheduler cell: the
	// replicate traces are seed-perturbed regenerations, not the cached
	// benchmark traces, so they bypass the Context cache on purpose.
	names := ctx.BenchmarkNames()
	gsh := make([][]float64, len(names))
	egs := make([][]float64, len(names))
	for i := range names {
		gsh[i] = make([]float64, replicates)
		egs[i] = make([]float64, replicates)
	}
	err := ctx.sched().Map(len(names)*replicates, func(cell int) error {
		bi, rep := cell/replicates, cell%replicates
		spec, err := workload.ByName(names[bi])
		if err != nil {
			return err
		}
		g, err := workload.New(spec, workload.Config{
			Scale:      ctx.scale() / 2, // replicates multiply the work
			SeedOffset: ctx.SeedOffset + uint64(rep)*0x9e3779b9,
		})
		if err != nil {
			return err
		}
		branches, err := trace.Collect(workload.NewTake(g, g.Length()))
		if err != nil {
			return err
		}
		results, err := ctx.RunMany(fmt.Sprintf("ext-variance/%s-r%d", names[bi], rep), branches,
			[]predictor.Predictor{
				predictor.MustSpec(predictor.Spec{Family: "gshare", N: 14, Hist: histBits}),
				predictor.MustSpec(predictor.Spec{Family: "egskew", N: 12, Hist: histBits}),
			}, sim.Options{})
		if err != nil {
			return err
		}
		gsh[bi][rep] = results[0].MissPercent()
		egs[bi][rep] = results[1].MissPercent()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		delta, err := stats.PairedDelta(gsh[i], egs[i])
		if err != nil {
			return nil, err
		}
		sig, err := stats.SignificantlyDifferent(gsh[i], egs[i])
		if err != nil {
			return nil, err
		}
		sGsh, sEgs := stats.Summarize(gsh[i]), stats.Summarize(egs[i])
		t.AddRow(name,
			fmt.Sprintf("%.2f ± %.2f", sGsh.Mean, sGsh.CI95()),
			fmt.Sprintf("%.2f ± %.2f", sEgs.Mean, sEgs.CI95()),
			fmt.Sprintf("%+.3f ± %.3f", delta.Mean, delta.CI95()),
			fmt.Sprintf("%v", sig))
	}
	return t, nil
}
