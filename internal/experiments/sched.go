package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gskew/internal/obs"
)

// Scheduler telemetry, registered in the default obs registry. The
// histogram buckets job wall times (milliseconds); both are only
// touched when metrics are enabled, so a default run never calls
// time.Now for them.
var (
	mJobs  = obs.NewCounter("sched.jobs")
	mJobMS = obs.NewHistogram("sched.job_ms",
		[]int64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000})
)

// timeJob wraps one scheduler cell with the telemetry counters.
func timeJob(i int, fn func(i int) error) error {
	if !obs.Enabled() {
		return fn(i)
	}
	start := time.Now()
	err := fn(i)
	mJobs.Inc()
	mJobMS.Observe(time.Since(start).Milliseconds())
	return err
}

// Sched is a bounded worker pool for (experiment, benchmark) cells.
// One Sched is shared by every experiment of a run, so the number of
// in-flight simulation cells never exceeds its width no matter how
// many experiments are being assembled concurrently.
//
// A Sched is safe for concurrent use. It holds no goroutines of its
// own: Map spawns workers per call and gates them on a shared
// semaphore, so an idle Sched costs nothing.
type Sched struct {
	jobs int
	sem  chan struct{}
}

// NewSched returns a scheduler running at most jobs cells at once.
// jobs <= 0 selects GOMAXPROCS. NewSched(1) yields a fully serial
// scheduler: Map runs its function inline in index order, with no
// goroutines, preserving the exact execution order of a serial sweep.
func NewSched(jobs int) *Sched {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Sched{jobs: jobs, sem: make(chan struct{}, jobs)}
}

// Jobs returns the scheduler width.
func (s *Sched) Jobs() int { return s.jobs }

// Acquire claims one scheduler slot, blocking until a slot frees or
// ctx is done (returning ctx.Err() in that case, with no slot held).
// It lets external drivers — the simulation server gates its
// per-request simulation work this way — share the same global
// concurrency bound as Map-driven experiment cells. Every successful
// Acquire must be paired with exactly one Release; like Map cells,
// holders must not nest acquisitions (a fully loaded scheduler would
// deadlock).
func (s *Sched) Acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot claimed by Acquire.
func (s *Sched) Release() { <-s.sem }

// Map runs fn(0..n-1) as cells bounded by the scheduler width and
// waits for all of them. If any calls fail it returns the error of the
// lowest failing index, so the reported error is deterministic under
// concurrency. Cells must not call Map themselves (cells are leaves;
// nesting could deadlock a fully loaded scheduler).
func (s *Sched) Map(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if s.jobs == 1 {
		for i := 0; i < n; i++ {
			if err := timeJob(i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			s.sem <- struct{}{}
			defer func() { <-s.sem }()
			errs[i] = timeJob(i, fn)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunAll executes the given experiments over ctx and returns their
// results in input order. Experiments run concurrently as lightweight
// orchestrators — the heavy per-benchmark simulation cells they spawn
// are bounded by the context's scheduler — and results are assembled
// in index order regardless of completion order, so rendering the
// returned slice is byte-identical to a serial run. With a width-1
// scheduler the experiments run strictly one after another, in order.
func RunAll(ctx *Context, exps []Experiment) ([]Renderable, error) {
	results := make([]Renderable, len(exps))
	if ctx.sched().Jobs() == 1 {
		for i, e := range exps {
			r, err := e.Run(ctx)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.ID, err)
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, len(exps))
	var wg sync.WaitGroup
	wg.Add(len(exps))
	for i, e := range exps {
		go func(i int, e Experiment) {
			defer wg.Done()
			r, err := e.Run(ctx)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", e.ID, err)
				return
			}
			results[i] = r
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
