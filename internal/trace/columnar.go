package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"slices"
)

// Block-columnar format
//
// The varint codec above pays a data-dependent decode per record, which
// at ~5 ns/record dominates cold sweeps now that the simulation kernels
// run at sub-nanosecond per branch. The columnar format trades a little
// writer effort for a straight-line block decoder: records are grouped
// into fixed-size blocks and each block stores its three fields as
// separate streams, each compressed by the structure branch traces
// actually have.
//
//	file:  header:  magic "GSKC" | version u8 | reserved [11]byte
//	       block*
//	block: header (16 bytes):
//	         count   u32 LE   records in the block (1..ColumnarBlockSize)
//	         length  u32 LE   payload bytes
//	         crc32c  u32 LE   CRC-32 (Castagnoli) of the payload
//	         mode    u8       0 = dictionary PC stream, 1 = raw varint
//	         zero    [3]byte  must be zero
//	       payload: PC stream | direction bitvector | kind stream
//
// PC stream, mode 0 (dictionary): the block's distinct PCs sorted
// ascending as a varint head plus varint deltas, then one width byte,
// then count bit-packed dictionary indices (width bits each, LSB
// first). Traces revisit a small static branch set, so a 4096-record
// block rarely holds more than a few hundred distinct PCs and indices
// pack into ~8-10 bits. Mode 1 (raw escape) stores the records'
// zig-zag PC deltas as plain varints, chained from zero at the block
// start. The writer costs both encodings but takes the raw escape only
// when it is at least a quarter smaller: the dictionary's unpack is a
// constant-width shift-and-mask per record while raw pays a
// data-dependent varint decode, so within that margin the dictionary
// wins on decode cost at near-equal density. Adversarial blocks (mostly
// distinct, closely spaced PCs, where the dictionary would nearly
// double the block) still degrade to roughly the varint codec's
// density, never worse.
//
// Direction bitvector: ceil(count/64) little-endian u64 words, bit
// (i mod 64) of word (i div 64) holding record i's Taken.
//
// Kind stream: one flag byte, then either alternating varint run
// lengths starting with a Conditional run (flag 0; possibly zero when
// the block opens unconditional), stopping once the runs cover the
// block, or a raw bitvector shaped like the direction bitvector
// (flag 1). Kinds are near-constant in real traces, so the runs are
// typically a handful of bytes; the bitvector is the escape for
// densely interleaved blocks, where per-run varints would cost more
// bytes than the bitvector and far more decode time.
//
// Every block is independently decodable: the dictionary is absolute,
// the mode-1 delta chain restarts at zero, and the count/length header
// lets a reader skip or parallelise blocks without decoding them.
// Corruption anywhere — truncation, a flipped payload byte, a forged
// header — surfaces as an error wrapping ErrCorrupt, never as a wrong
// trace.

// ColumnarBlockSize is the maximum records per block.
const ColumnarBlockSize = 4096

// columnarVersion is the columnar format version byte.
const columnarVersion = 1

// columnarBlockHeaderSize is the fixed per-block header width.
const columnarBlockHeaderSize = 16

// maxColumnarPayload bounds a block payload. The worst honest case
// (4096 ten-byte varint deltas plus packed indices, directions and
// kinds) stays under 56 KiB; anything larger is a forged header.
const maxColumnarPayload = 1 << 16

// Kind stream flags: the byte that opens the kind stream, selecting
// how the per-record kinds are encoded.
const (
	kindStreamRuns = 0 // alternating varint run-lengths, Conditional first
	kindStreamBits = 1 // raw bitvector, bit (i mod 64) of word (i div 64)
)

// magicColumnar identifies the columnar container.
var magicColumnar = [4]byte{'G', 'S', 'K', 'C'}

// ErrCorrupt marks undecodable columnar data: a truncated block, a
// checksum mismatch, a forged header or an inconsistent stream. Every
// decode failure past the file header wraps it, so callers can treat
// all corruption uniformly with errors.Is.
var ErrCorrupt = errors.New("trace: corrupt columnar data")

// castagnoli is the CRC-32C table shared by writer and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// uvarintLen returns the encoded width of v.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// ColumnarWriter encodes branches into the block-columnar format.
type ColumnarWriter struct {
	w   *bufio.Writer
	buf []Branch // pending records of the open block

	// Per-block scratch, reused across flushes.
	dict    []uint64
	payload []byte

	// tamperWidth plants the verify selftest's bitpack-width
	// off-by-one: dictionary indices are packed one bit narrower than
	// the stored dictionary needs, silently aliasing high entries onto
	// low ones. See TamperColumnarBitpackWidth.
	tamperWidth bool
}

// NewColumnarWriter returns a ColumnarWriter and emits the file header.
func NewColumnarWriter(w io.Writer) (*ColumnarWriter, error) {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	copy(hdr[:4], magicColumnar[:])
	hdr[4] = columnarVersion
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing columnar header: %w", err)
	}
	return &ColumnarWriter{
		w:    bw,
		buf:  make([]Branch, 0, ColumnarBlockSize),
		dict: make([]uint64, 0, ColumnarBlockSize),
	}, nil
}

// TamperColumnarBitpackWidth plants a bitpack-width off-by-one fault
// into the writer: dictionary indices are packed with one bit less
// than the dictionary requires, so high dictionary entries silently
// alias onto low ones while every block checksum stays valid. It
// exists solely for the verify selftest, which must prove the codec
// differential arm catches exactly this class of silent fault.
func TamperColumnarBitpackWidth(w *ColumnarWriter) { w.tamperWidth = true }

// Write buffers one record, flushing a block when full.
func (w *ColumnarWriter) Write(b Branch) error {
	if b.Kind > Unconditional {
		return fmt.Errorf("trace: invalid kind %d", b.Kind)
	}
	w.buf = append(w.buf, b)
	if len(w.buf) == ColumnarBlockSize {
		return w.flushBlock()
	}
	return nil
}

// Flush writes any partial final block and flushes the underlying
// writer. The writer remains usable; a later Write opens a new block.
func (w *ColumnarWriter) Flush() error {
	if len(w.buf) > 0 {
		if err := w.flushBlock(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// flushBlock encodes and emits the pending records as one block.
func (w *ColumnarWriter) flushBlock() error {
	recs := w.buf
	count := len(recs)

	// Dictionary: the block's distinct PCs, sorted.
	w.dict = w.dict[:0]
	for i := range recs {
		w.dict = append(w.dict, recs[i].PC)
	}
	slices.Sort(w.dict)
	w.dict = slices.Compact(w.dict)
	dictCount := len(w.dict)
	width := bits.Len(uint(dictCount - 1))

	// Cost both PC encodings. The raw escape must be at least a quarter
	// smaller to displace the dictionary's straight-line decode.
	dictCost := uvarintLen(uint64(dictCount)) + uvarintLen(w.dict[0])
	for i := 1; i < dictCount; i++ {
		dictCost += uvarintLen(w.dict[i] - w.dict[i-1])
	}
	dictCost += 1 + (count*width+7)/8
	rawCost := 0
	prev := uint64(0)
	for i := range recs {
		rawCost += uvarintLen(zigzag(int64(recs[i].PC) - int64(prev)))
		prev = recs[i].PC
	}

	w.payload = w.payload[:0]
	var vbuf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(vbuf[:], v)
		w.payload = append(w.payload, vbuf[:n]...)
	}

	mode := byte(0)
	if rawCost*4 < dictCost*3 {
		mode = 1
		prev = 0
		for i := range recs {
			putUvarint(zigzag(int64(recs[i].PC) - int64(prev)))
			prev = recs[i].PC
		}
	} else {
		putUvarint(uint64(dictCount))
		putUvarint(w.dict[0])
		for i := 1; i < dictCount; i++ {
			putUvarint(w.dict[i] - w.dict[i-1])
		}
		packWidth := width
		if w.tamperWidth && packWidth > 0 {
			packWidth--
		}
		w.payload = append(w.payload, byte(packWidth))
		mask := uint64(1)<<packWidth - 1
		var acc uint64
		accBits := 0
		for i := range recs {
			idx, _ := slices.BinarySearch(w.dict, recs[i].PC)
			acc |= (uint64(idx) & mask) << accBits
			accBits += packWidth
			for accBits >= 8 {
				w.payload = append(w.payload, byte(acc))
				acc >>= 8
				accBits -= 8
			}
		}
		if accBits > 0 {
			w.payload = append(w.payload, byte(acc))
		}
	}

	// Direction bitvector.
	var word uint64
	for i := range recs {
		if recs[i].Taken {
			word |= 1 << (i & 63)
		}
		if i&63 == 63 {
			w.payload = binary.LittleEndian.AppendUint64(w.payload, word)
			word = 0
		}
	}
	if count&63 != 0 {
		w.payload = binary.LittleEndian.AppendUint64(w.payload, word)
	}

	// Kind stream: run-lengths when kinds are near-constant, a raw
	// bitvector when the block interleaves kinds so densely that the
	// runs would cost more than the bitvector — the same decode-cost
	// escape hatch the PC stream has, since the bitvector decodes as a
	// straight word copy while dense runs pay a varint each.
	runCost := 0
	runKind := Conditional
	for i := 0; i < count; runKind ^= 1 {
		run := 0
		for i+run < count && recs[i+run].Kind == runKind {
			run++
		}
		runCost += uvarintLen(uint64(run))
		i += run
	}
	words := (count + 63) / 64
	if runCost <= words*8 {
		w.payload = append(w.payload, kindStreamRuns)
		runKind = Conditional
		for i := 0; i < count; runKind ^= 1 {
			run := 0
			for i+run < count && recs[i+run].Kind == runKind {
				run++
			}
			putUvarint(uint64(run))
			i += run
		}
	} else {
		w.payload = append(w.payload, kindStreamBits)
		word = 0
		for i := range recs {
			word |= uint64(recs[i].Kind) << (i & 63)
			if i&63 == 63 {
				w.payload = binary.LittleEndian.AppendUint64(w.payload, word)
				word = 0
			}
		}
		if count&63 != 0 {
			w.payload = binary.LittleEndian.AppendUint64(w.payload, word)
		}
	}

	var hdr [columnarBlockHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(count))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(w.payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(w.payload, castagnoli))
	hdr[12] = mode
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: writing block header: %w", err)
	}
	if _, err := w.w.Write(w.payload); err != nil {
		return fmt.Errorf("trace: writing block payload: %w", err)
	}
	w.buf = w.buf[:0]
	return nil
}

// columnarBlockHeader is one parsed block header.
type columnarBlockHeader struct {
	count int
	plen  int
	crc   uint32
	mode  byte
}

// parseColumnarBlockHeader validates a block header's invariants; the
// payload checksum is verified separately once the payload is read.
func parseColumnarBlockHeader(hdr []byte) (columnarBlockHeader, error) {
	h := columnarBlockHeader{
		count: int(binary.LittleEndian.Uint32(hdr[0:4])),
		plen:  int(binary.LittleEndian.Uint32(hdr[4:8])),
		crc:   binary.LittleEndian.Uint32(hdr[8:12]),
		mode:  hdr[12],
	}
	switch {
	case h.count < 1 || h.count > ColumnarBlockSize:
		return h, corruptf("block count %d out of range [1,%d]", h.count, ColumnarBlockSize)
	case h.plen < 1 || h.plen > maxColumnarPayload:
		return h, corruptf("block payload length %d out of range [1,%d]", h.plen, maxColumnarPayload)
	case h.mode > 1:
		return h, corruptf("unknown PC stream mode %d", h.mode)
	case hdr[13] != 0 || hdr[14] != 0 || hdr[15] != 0:
		return h, corruptf("nonzero reserved block header bytes")
	}
	return h, nil
}

// decodeColumnarBlock expands one verified payload into dst[:count].
// dict is caller scratch with length ColumnarBlockSize; kinds is
// caller scratch with length ColumnarBlockSize/64. The checksum must
// already have been verified; this validates everything the checksum
// cannot (stream lengths, index bounds, run totals).
//
// The dictionary mode decodes in a single fused pass: its PC stream
// width is known from the header fields alone, so the direction and
// kind stream offsets are computable up front and every record is
// assembled and stored once (one 64-bit load + shift/mask for the
// index, one bit test for the direction, one compare for the kind
// run). That straight-line loop is why the writer prefers this mode.
// The raw escape's varint chain hides the stream length, so it decodes
// in phases like the varint codec.
func decodeColumnarBlock(payload []byte, h columnarBlockHeader, dst []Branch, dict []uint64, kinds []uint64) error {
	count := h.count
	dst = dst[:count]
	pos := 0
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return 0, corruptf("varint overruns block payload")
		}
		pos += n
		return v, nil
	}

	if h.mode == 1 {
		// Raw escape: inlined uvarint loop (skipping the closure keeps
		// it at the varint codec's decode cost rather than above it),
		// then directions and kinds as separate passes.
		prev := uint64(0)
		for i := 0; i < count; i++ {
			if pos < len(payload) && payload[pos] < 0x80 {
				prev = uint64(int64(prev) + unzigzag(uint64(payload[pos])))
				pos++
				dst[i].PC = prev
				continue
			}
			d, n := binary.Uvarint(payload[pos:])
			if n <= 0 {
				return corruptf("varint overruns block payload")
			}
			pos += n
			prev = uint64(int64(prev) + unzigzag(d))
			dst[i].PC = prev
		}

		words := (count + 63) / 64
		if pos+words*8 > len(payload) {
			return corruptf("direction bitvector overruns block payload")
		}
		dirs := payload[pos:]
		for i := 0; i < count; i++ {
			dst[i].Taken = dirs[i>>3]>>(i&7)&1 != 0
		}
		pos += words * 8

		pos, err := decodeKinds(payload, pos, count, kinds)
		if err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			dst[i].Kind = Kind(kinds[i>>6] >> (i & 63) & 1)
		}
		if pos != len(payload) {
			return corruptf("%d trailing bytes after block streams", len(payload)-pos)
		}
		return nil
	}

	// Dictionary mode.
	dc, err := uvarint()
	if err != nil {
		return err
	}
	if dc < 1 || dc > uint64(count) {
		return corruptf("dictionary size %d out of range [1,%d]", dc, count)
	}
	dictCount := int(dc)
	dict = dict[:ColumnarBlockSize]
	prev := uint64(0)
	for i := 0; i < dictCount; i++ {
		// One-byte fast path: ascending dictionary deltas are usually
		// a handful of instruction words apart.
		var d uint64
		if pos < len(payload) && payload[pos] < 0x80 {
			d = uint64(payload[pos])
			pos++
		} else {
			var n int
			d, n = binary.Uvarint(payload[pos:])
			if n <= 0 {
				return corruptf("varint overruns block payload")
			}
			pos += n
		}
		prev += d
		dict[i] = prev
	}
	if pos >= len(payload) {
		return corruptf("missing index width byte")
	}
	width := int(payload[pos])
	pos++
	// dictCount <= ColumnarBlockSize bounds the index width at 12 bits,
	// which in turn lets the hot loop index the dictionary scratch as a
	// fixed-size array with a masked (always in-bounds) subscript.
	if width > 12 {
		return corruptf("index width %d out of range [0,12]", width)
	}

	// Fixed-width streams: packed indices, then the direction words,
	// then the kind runs filling the remainder.
	packedLen := (count*width + 7) / 8
	words := (count + 63) / 64
	if pos+packedLen+words*8 > len(payload) {
		return corruptf("packed indices overrun block payload")
	}
	// ext extends the packed-index window 8 bytes past its end — into
	// the direction bitvector, which is always >= 8 bytes — so the hot
	// loop's unaligned 64-bit load never needs a tail fallback: the last
	// index starts at byte packedLen-1 at the latest, and ext always has
	// 8 readable bytes from there.
	ext := payload[pos : pos+packedLen+8]
	dirs := payload[pos+packedLen : pos+packedLen+words*8]
	pos += packedLen + words*8

	// Expand the kind stream into the per-record bitvector so the
	// kernel reads kinds exactly like directions — one bit test — with
	// no varint decoding, and with it no function calls that would
	// force the register allocator to spill the loop state every
	// iteration.
	pos, err = decodeKinds(payload, pos, count, kinds)
	if err != nil {
		return err
	}
	if pos != len(payload) {
		return corruptf("%d trailing bytes after block streams", len(payload)-pos)
	}

	// Index validation is deferred: the kernel reports the largest index
	// it saw and that is range-checked once here (the caller discards
	// dst on error, so writing garbage PCs first is harmless), keeping
	// the hot loop free of data-dependent branches.
	maxIdx := unpackColumnarRecords(dst, ext, dirs, (*[ColumnarBlockSize]uint64)(dict), width, kinds)
	if int(maxIdx) >= dictCount {
		return corruptf("dictionary index %d out of range [0,%d)", maxIdx, dictCount)
	}
	return nil
}

// decodeKinds expands the kind stream starting at payload[pos] into the
// per-record bitvector kinds (bit i%64 of word i/64 is record i's kind)
// and returns the stream's end offset. The bitvector escape is a plain
// word copy; the run-length form is expanded word-parallel — each run
// boundary toggles one bit, and a prefix-XOR scan turns toggles into
// fills — so neither form costs varint decoding in the record loop.
func decodeKinds(payload []byte, pos, count int, kinds []uint64) (int, error) {
	if pos >= len(payload) {
		return 0, corruptf("missing kind stream flag byte")
	}
	flag := payload[pos]
	pos++
	words := (count + 63) / 64
	if flag == kindStreamBits {
		if pos+words*8 > len(payload) {
			return 0, corruptf("kind bitvector overruns block payload")
		}
		for w := 0; w < words; w++ {
			kinds[w] = binary.LittleEndian.Uint64(payload[pos+w*8:])
		}
		return pos + words*8, nil
	}
	if flag != kindStreamRuns {
		return 0, corruptf("kind stream flag %d out of range [0,1]", flag)
	}
	for w := 0; w < words; w++ {
		kinds[w] = 0
	}
	covered := 0
	first := true
	for covered < count {
		// One-byte fast path: interleaved-kind traces make runs short,
		// so most lengths are a single varint byte.
		var r uint64
		if pos < len(payload) && payload[pos] < 0x80 {
			r = uint64(payload[pos])
			pos++
		} else {
			var n int
			r, n = binary.Uvarint(payload[pos:])
			if n <= 0 {
				return 0, corruptf("varint overruns block payload")
			}
			pos += n
		}
		if r == 0 && !first {
			return 0, corruptf("zero-length interior kind run")
		}
		if r > uint64(count-covered) {
			return 0, corruptf("kind runs cover %d of %d records", covered+int(r), count)
		}
		covered += int(r)
		first = false
		if covered < count {
			// The kind flips at this boundary for all later records.
			kinds[covered>>6] ^= 1 << (covered & 63)
		}
	}
	// Prefix-XOR scan: bit j becomes the parity of toggles at or below
	// j, i.e. the record's kind. A leading zero-length run toggles bit
	// 0, which the scan propagates like any other.
	carry := uint64(0)
	for w := 0; w < words; w++ {
		x := kinds[w]
		x ^= x << 1
		x ^= x << 2
		x ^= x << 4
		x ^= x << 8
		x ^= x << 16
		x ^= x << 32
		x ^= carry
		kinds[w] = x
		carry = uint64(int64(x) >> 63)
	}
	return pos, nil
}

// ColumnarReader decodes a columnar stream from an io.Reader. It
// implements Source and BatchSource; after the constructor, a NextBatch
// whose dst holds a whole block decodes with no allocation.
type ColumnarReader struct {
	r                  *bufio.Reader
	payload            []byte
	dict               []uint64
	kinds              []uint64
	stage              []Branch // decoded block for Next and short NextBatch calls
	stagePos, stageLen int
}

// NewColumnarReader validates the file header and returns a reader.
func NewColumnarReader(r io.Reader) (*ColumnarReader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading columnar header: %w", err)
	}
	if [4]byte(hdr[:4]) != magicColumnar {
		return nil, fmt.Errorf("trace: bad columnar magic %q", hdr[:4])
	}
	if hdr[4] != columnarVersion {
		return nil, fmt.Errorf("trace: unsupported columnar version %d", hdr[4])
	}
	return &ColumnarReader{
		r:       br,
		payload: make([]byte, 0, maxColumnarPayload),
		dict:    make([]uint64, ColumnarBlockSize),
		kinds:   make([]uint64, ColumnarBlockSize/64),
	}, nil
}

// readBlock reads and verifies the next block, decoding it into dst
// (len(dst) >= the block's count). Returns the record count, io.EOF at
// a clean end of stream, or an error wrapping ErrCorrupt.
func (r *ColumnarReader) readBlock(dst []Branch) (int, error) {
	var hdr [columnarBlockHeaderSize]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, io.EOF
		}
		return 0, corruptf("truncated block header: %v", err)
	}
	h, err := parseColumnarBlockHeader(hdr[:])
	if err != nil {
		return 0, err
	}
	r.payload = r.payload[:h.plen]
	if _, err := io.ReadFull(r.r, r.payload); err != nil {
		return 0, corruptf("truncated block payload: %v", err)
	}
	if crc := crc32.Checksum(r.payload, castagnoli); crc != h.crc {
		return 0, corruptf("block checksum mismatch (stored %08x, computed %08x)", h.crc, crc)
	}
	if err := decodeColumnarBlock(r.payload, h, dst, r.dict, r.kinds); err != nil {
		return 0, err
	}
	return h.count, nil
}

// NextBatch implements BatchSource. Each call delivers at most one
// block; a dst of ColumnarBlockSize records always decodes directly
// into the caller's batch.
func (r *ColumnarReader) NextBatch(dst []Branch) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if r.stagePos < r.stageLen {
		n := copy(dst, r.stage[r.stagePos:r.stageLen])
		r.stagePos += n
		return n, nil
	}
	if len(dst) >= ColumnarBlockSize {
		return r.readBlock(dst)
	}
	if err := r.restage(); err != nil {
		return 0, err
	}
	n := copy(dst, r.stage[:r.stageLen])
	r.stagePos = n
	return n, nil
}

// restage decodes the next block into the staging buffer.
func (r *ColumnarReader) restage() error {
	if r.stage == nil {
		r.stage = make([]Branch, ColumnarBlockSize)
	}
	n, err := r.readBlock(r.stage)
	if err != nil {
		return err
	}
	r.stagePos, r.stageLen = 0, n
	return nil
}

// Next implements Source.
func (r *ColumnarReader) Next() (Branch, error) {
	if r.stagePos >= r.stageLen {
		if err := r.restage(); err != nil {
			return Branch{}, err
		}
	}
	b := r.stage[r.stagePos]
	r.stagePos++
	return b, nil
}

// EncodeColumnar renders branches as one in-memory columnar stream.
func EncodeColumnar(branches []Branch) ([]byte, error) {
	var buf bytes.Buffer
	w, err := NewColumnarWriter(&buf)
	if err != nil {
		return nil, err
	}
	for i := range branches {
		if err := w.Write(branches[i]); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
