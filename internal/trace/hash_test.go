package trace

import (
	"strings"
	"testing"
)

func hashFixture(n int) []Branch {
	out := make([]Branch, n)
	pc := uint64(0x4000)
	for i := range out {
		pc += uint64(i%7) * 4
		kind := Conditional
		taken := i%3 == 0
		if i%5 == 0 {
			kind = Unconditional
			taken = true
		}
		out[i] = Branch{PC: pc, Taken: taken, Kind: kind}
	}
	return out
}

func TestHashSourceMatchesHashBranches(t *testing.T) {
	branches := hashFixture(3 * hashChunk / 2) // straddles a chunk boundary
	want := HashBranches(branches)
	got, n, err := HashSource(NewSliceSource(branches))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(branches) {
		t.Errorf("HashSource count = %d, want %d", n, len(branches))
	}
	if got != want {
		t.Errorf("HashSource = %s, HashBranches = %s", got, want)
	}
	if len(got) != 64 || strings.ToLower(got) != got {
		t.Errorf("hash %q is not lowercase hex sha-256", got)
	}
}

func TestHashDistinguishesEveryField(t *testing.T) {
	base := []Branch{{PC: 0x10, Taken: true, Kind: Conditional}}
	seen := map[string][]Branch{HashBranches(base): base}
	for _, mutant := range [][]Branch{
		{{PC: 0x11, Taken: true, Kind: Conditional}},
		{{PC: 0x10, Taken: false, Kind: Conditional}},
		{{PC: 0x10, Taken: true, Kind: Unconditional}},
		{}, // empty trace
		{{PC: 0x10, Taken: true, Kind: Conditional}, {PC: 0x10, Taken: true, Kind: Conditional}},
	} {
		h := HashBranches(mutant)
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision between %v and %v", prev, mutant)
		}
		seen[h] = mutant
	}
}

func TestHashIsOrderSensitive(t *testing.T) {
	a := []Branch{{PC: 1, Taken: true, Kind: Conditional}, {PC: 2, Taken: false, Kind: Conditional}}
	b := []Branch{{PC: 2, Taken: false, Kind: Conditional}, {PC: 1, Taken: true, Kind: Conditional}}
	if HashBranches(a) == HashBranches(b) {
		t.Error("reordered traces hash identically")
	}
}

func TestHashStableAcrossRuns(t *testing.T) {
	// Pin the canonical encoding: a change here invalidates every
	// on-disk store entry, which must be deliberate (bump the store
	// schema version when it is).
	const want = "b280e8f0932917228730239c9c592bdb7df19038e3274d30878eb38d89839b89"
	got := HashBranches(hashFixture(100))
	if got != want {
		t.Errorf("canonical hash changed: got %s, want %s", got, want)
	}
}
