package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// genBranches builds a deterministic pseudo-random trace shaped like a
// real workload: a hot loop set of PCs, occasional far jumps, ~10%
// unconditional branches.
func genBranches(seed uint64, n int) []Branch {
	x := seed*0x9e3779b97f4a7c15 + 1
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	out := make([]Branch, n)
	base := next() % (1 << 30)
	for i := range out {
		r := next()
		pc := base + r%257
		if r%97 == 0 {
			// Far jump: a fresh wide PC. Capped at 61 bits so the
			// varint codec's flag-shifted delta (62-bit budget) stays
			// lossless; full-64-bit PCs are covered by the columnar
			// raw-escape test and the fuzz targets.
			pc = next() >> 3
		}
		b := Branch{PC: pc, Taken: r&8 != 0, Kind: Conditional}
		if r%10 == 0 {
			b.Kind = Unconditional
			b.Taken = true
		}
		out[i] = b
	}
	return out
}

// encodeColumnarT encodes via the block writer, failing the test on
// error.
func encodeColumnarT(t testing.TB, branches []Branch) []byte {
	t.Helper()
	enc, err := EncodeColumnar(branches)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// requireEqual asserts two traces are record-for-record identical and
// share a content hash.
func requireEqual(t *testing.T, got, want []Branch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("record count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if g, w := HashBranches(got), HashBranches(want); g != w {
		t.Fatalf("content hash %s, want %s", g, w)
	}
}

// decodeVia collects a trace through each decode path.
func decodeNext(t *testing.T, src Source) []Branch {
	t.Helper()
	out, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func decodeBatch(t *testing.T, src BatchSource, batch int) []Branch {
	t.Helper()
	var out []Branch
	buf := make([]Branch, batch)
	for {
		n, err := src.NextBatch(buf)
		out = append(out, buf[:n]...)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// writeTempTrace writes enc to a file and returns its path.
func writeTempTrace(t testing.TB, enc []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.ctrace")
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestColumnarRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 65, 100, ColumnarBlockSize - 1, ColumnarBlockSize, ColumnarBlockSize + 1, 3*ColumnarBlockSize + 7} {
		branches := genBranches(uint64(n)+1, n)
		enc := encodeColumnarT(t, branches)

		r, err := NewColumnarReader(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		requireEqual(t, decodeNext(t, r), branches)

		for _, batch := range []int{1, 7, ColumnarBlockSize, ColumnarBlockSize * 2} {
			r, err := NewColumnarReader(bytes.NewReader(enc))
			if err != nil {
				t.Fatal(err)
			}
			requireEqual(t, decodeBatch(t, r, batch), branches)
		}

		m, err := MapFile(writeTempTrace(t, enc))
		if err != nil {
			t.Fatal(err)
		}
		requireEqual(t, decodeBatch(t, m, ColumnarBlockSize), branches)
		m.Reset()
		requireEqual(t, decodeNext(t, m), branches)
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}

		got, err := DecodeBytes(enc)
		if err != nil {
			t.Fatal(err)
		}
		requireEqual(t, got, branches)
	}
}

// TestColumnarRawEscape forces the raw-varint PC stream: a straight
// sweep of distinct, closely spaced PCs, where the raw one-byte deltas
// are far smaller than a 4096-entry dictionary plus packed indices —
// the shape the quarter-smaller escape threshold exists for.
func TestColumnarRawEscape(t *testing.T) {
	branches := make([]Branch, 2*ColumnarBlockSize+11)
	x := uint64(0x243f6a8885a308d3)
	pc := uint64(0x400000)
	for i := range branches {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		pc += 4 + x%32*4 // distinct ascending, deltas of a byte or two
		branches[i] = Branch{PC: pc, Taken: x&1 != 0, Kind: Conditional}
	}
	enc := encodeColumnarT(t, branches)
	// At least one block must have taken the escape: mode byte 1
	// appears in some block header.
	sawRaw := false
	off := 16
	for off < len(enc) {
		h, err := parseColumnarBlockHeader(enc[off:])
		if err != nil {
			t.Fatal(err)
		}
		if h.mode == 1 {
			sawRaw = true
		}
		off += columnarBlockHeaderSize + h.plen
	}
	if !sawRaw {
		t.Fatal("no block took the raw-varint escape on an all-distinct trace")
	}
	got, err := DecodeBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, got, branches)
}

// TestMapFileVarint: MapFile reads the varint codec too, byte-identical
// to the bufio reader.
func TestMapFileVarint(t *testing.T) {
	branches := genBranches(77, 10000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range branches {
		if err := w.Write(branches[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(writeTempTrace(t, buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	requireEqual(t, decodeBatch(t, m, 4096), branches)
	m.Reset()
	requireEqual(t, decodeNext(t, m), branches)
}

// corrupting mutations, each of which must surface ErrCorrupt (never a
// silently different trace) from both the streaming and mapped readers.
func TestColumnarCorruption(t *testing.T) {
	branches := genBranches(3, ColumnarBlockSize+100)
	enc := encodeColumnarT(t, branches)
	const blockHdr = 16 // file header ends, first block header starts

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated-header", func(b []byte) []byte { return b[:blockHdr+7] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-5] }},
		{"bad-checksum", func(b []byte) []byte {
			b[blockHdr+columnarBlockHeaderSize+8] ^= 0x40 // flip a payload byte
			return b
		}},
		{"forged-count", func(b []byte) []byte {
			b[blockHdr]++ // count+1 with an unchanged payload
			return b
		}},
		{"forged-count-zero", func(b []byte) []byte {
			b[blockHdr], b[blockHdr+1] = 0, 0
			b[blockHdr+2], b[blockHdr+3] = 0, 0
			return b
		}},
		{"forged-length", func(b []byte) []byte {
			b[blockHdr+6] = 0xff // payload length beyond the cap
			return b
		}},
		{"forged-mode", func(b []byte) []byte {
			b[blockHdr+12] = 7
			return b
		}},
		{"forged-reserved", func(b []byte) []byte {
			b[blockHdr+14] = 1
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mutate(bytes.Clone(enc))

			r, err := NewColumnarReader(bytes.NewReader(mut))
			if err != nil {
				t.Fatalf("header rejected: %v", err)
			}
			_, err = drainAll(r)
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("streaming reader error = %v, want ErrCorrupt", err)
			}

			if _, err := DecodeBytes(mut); !errors.Is(err, ErrCorrupt) {
				t.Errorf("DecodeBytes error = %v, want ErrCorrupt", err)
			}

			m, err := MapFile(writeTempTrace(t, mut))
			if err != nil {
				t.Fatalf("MapFile rejected header: %v", err)
			}
			defer m.Close()
			if _, err := drainAll(m); !errors.Is(err, ErrCorrupt) {
				t.Errorf("mapped reader error = %v, want ErrCorrupt", err)
			}
		})
	}
}

// drainAll batches a source to exhaustion, returning the first
// non-EOF error.
func drainAll(src BatchSource) (int, error) {
	buf := make([]Branch, ColumnarBlockSize)
	total := 0
	for {
		n, err := src.NextBatch(buf)
		total += n
		if errors.Is(err, io.EOF) {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// TestColumnarTamperedWidth: the planted bitpack-width fault must
// produce a stream that decodes cleanly (checksums are computed over
// the tampered payload) yet yields different records — the silent
// corruption shape the verify codec arm exists to catch.
func TestColumnarTamperedWidth(t *testing.T) {
	branches := genBranches(11, 2000)
	var buf bytes.Buffer
	w, err := NewColumnarWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	TamperColumnarBitpackWidth(w)
	for i := range branches {
		if err := w.Write(branches[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("tampered stream must decode cleanly, got %v", err)
	}
	if HashBranches(got) == HashBranches(branches) {
		t.Fatal("tampered stream decoded to the original trace; the planted fault is unobservable")
	}
}

// TestMappedBatchZeroAlloc: the mmap batch decode path must be
// allocation-free once constructed, for both codecs.
func TestMappedBatchZeroAlloc(t *testing.T) {
	branches := genBranches(5, 3*ColumnarBlockSize)
	colPath := writeTempTrace(t, encodeColumnarT(t, branches))

	var vbuf bytes.Buffer
	w, err := NewWriter(&vbuf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range branches {
		if err := w.Write(branches[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	varPath := writeTempTrace(t, vbuf.Bytes())

	dst := make([]Branch, ColumnarBlockSize)
	for _, tc := range []struct {
		name, path string
	}{{"columnar", colPath}, {"varint", varPath}} {
		m, err := MapFile(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		drain := func() {
			m.Reset()
			for {
				_, err := m.NextBatch(dst)
				if errors.Is(err, io.EOF) {
					return
				}
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		drain() // warm
		if allocs := testing.AllocsPerRun(10, drain); allocs != 0 {
			t.Errorf("%s mmap NextBatch allocates %.1f objects per replay, want 0", tc.name, allocs)
		}
		m.Close()
	}
}

// TestColumnarEmptyAndHeader: degenerate containers.
func TestColumnarEmptyAndHeader(t *testing.T) {
	enc := encodeColumnarT(t, nil)
	if len(enc) != 16 {
		t.Fatalf("empty trace encodes to %d bytes, want 16", len(enc))
	}
	got, err := DecodeBytes(enc)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty decode = %d records, %v", len(got), err)
	}
	if _, err := NewColumnarReader(bytes.NewReader([]byte("GSKT\x01"))); err == nil {
		t.Fatal("columnar reader accepted a varint header")
	}
	if _, err := DecodeBytes([]byte("bogus")); err == nil {
		t.Fatal("DecodeBytes accepted garbage")
	}
	bad := bytes.Clone(enc)
	bad[4] = 9
	if _, err := DecodeBytes(bad); err == nil {
		t.Fatal("DecodeBytes accepted an unknown version")
	}
}
