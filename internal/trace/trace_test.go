package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"gskew/internal/rng"
)

func randomTrace(seed uint64, n int) []Branch {
	r := rng.NewXoshiro256(seed)
	out := make([]Branch, n)
	pc := uint64(0x1000)
	for i := range out {
		// Mix of local jitter and occasional far jumps, like real code.
		switch r.Intn(4) {
		case 0:
			pc += r.Uint64n(16)
		case 1:
			pc -= r.Uint64n(16)
		default:
			if r.Bool(0.05) {
				pc = r.Uint64n(1 << 30)
			} else {
				pc++
			}
		}
		kind := Conditional
		taken := r.Bool(0.6)
		if r.Bool(0.25) {
			kind = Unconditional
			taken = true
		}
		out[i] = Branch{PC: pc, Taken: taken, Kind: kind}
	}
	return out
}

func TestKindString(t *testing.T) {
	if Conditional.String() != "cond" || Unconditional.String() != "uncond" {
		t.Error("Kind.String misbehaves")
	}
	if got := Kind(9).String(); got != "kind(9)" {
		t.Errorf("Kind(9).String() = %q", got)
	}
}

func TestSliceSource(t *testing.T) {
	in := []Branch{{PC: 1, Taken: true}, {PC: 2, Taken: false}}
	s := NewSliceSource(in)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Fatalf("Collect = %v", got)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("exhausted source err = %v, want EOF", err)
	}
	s.Reset()
	if b, err := s.Next(); err != nil || b != in[0] {
		t.Fatal("Reset did not rewind")
	}
}

func TestSliceSourceDrain(t *testing.T) {
	in := []Branch{{PC: 1, Taken: true}, {PC: 2}, {PC: 3, Taken: true}}
	s := NewSliceSource(in)
	// Drain after a partial read returns exactly the remainder, backed
	// by the original array (no copy).
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	rest := s.Drain()
	if len(rest) != 2 || &rest[0] != &in[1] {
		t.Fatalf("Drain after one Next = %v (copied=%v)", rest, len(rest) > 0 && &rest[0] != &in[1])
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("source not exhausted after Drain: %v", err)
	}
	if got := s.Drain(); len(got) != 0 {
		t.Fatalf("second Drain = %v, want empty", got)
	}
	// Reset rewinds a drained source for replay.
	s.Reset()
	if full := s.Drain(); len(full) != 3 || &full[0] != &in[0] {
		t.Fatalf("Drain after Reset = %v", full)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	in := randomTrace(42, 5000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range in {
		if err := w.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], in[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		n := int(n16 % 512)
		in := randomTrace(seed, n)
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, b := range in {
			if err := w.Write(b); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := Collect(r)
		if err != nil || len(got) != len(in) {
			return false
		}
		for i := range in {
			if got[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinaryCompression(t *testing.T) {
	// Loop-like traces (small PC deltas) must encode compactly:
	// well under 3 bytes per record on average.
	in := make([]Branch, 10000)
	for i := range in {
		in[i] = Branch{PC: uint64(0x400 + i%8), Taken: i%3 != 0}
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, b := range in {
		if err := w.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if perRec := float64(buf.Len()) / float64(len(in)); perRec > 3 {
		t.Errorf("loop trace encodes at %.2f bytes/record, want < 3", perRec)
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	cases := map[string][]byte{
		"short":       {1, 2, 3},
		"bad magic":   append([]byte("XXXX"), make([]byte, 12)...),
		"bad version": append([]byte{'G', 'S', 'K', 'T', 99}, make([]byte, 11)...),
	}
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: NewReader accepted invalid header", name)
		}
	}
}

func TestWriterRejectsBadKind(t *testing.T) {
	w, _ := NewWriter(&bytes.Buffer{})
	if err := w.Write(Branch{Kind: Kind(7)}); err == nil {
		t.Error("Write accepted invalid kind")
	}
}

func TestZigzag(t *testing.T) {
	for _, d := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), 1<<62 - 1, -(1 << 62)} {
		if got := unzigzag(zigzag(d)); got != d {
			t.Errorf("unzigzag(zigzag(%d)) = %d", d, got)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	in := randomTrace(7, 500)
	var buf bytes.Buffer
	if err := WriteText(&buf, NewSliceSource(in)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], in[i])
		}
	}
}

func TestReadTextCommentsAndBlanks(t *testing.T) {
	src := "# a comment\n\n1a T c\n   \n2b N c\n# trailing\nff T u\n"
	got, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []Branch{
		{PC: 0x1a, Taken: true, Kind: Conditional},
		{PC: 0x2b, Taken: false, Kind: Conditional},
		{PC: 0xff, Taken: true, Kind: Unconditional},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"bad fields":       "1a T\n",
		"bad pc":           "zz T c\n",
		"bad direction":    "1a X c\n",
		"bad kind":         "1a T x\n",
		"not-taken uncond": "1a N u\n",
	}
	for name, src := range cases {
		if _, err := ReadText(strings.NewReader(src)); err == nil {
			t.Errorf("%s: ReadText accepted %q", name, src)
		}
	}
}

func TestStats(t *testing.T) {
	branches := []Branch{
		{PC: 1, Taken: true, Kind: Conditional},
		{PC: 1, Taken: false, Kind: Conditional},
		{PC: 2, Taken: true, Kind: Conditional},
		{PC: 9, Taken: true, Kind: Unconditional},
		{PC: 9, Taken: true, Kind: Unconditional},
	}
	st, err := Measure(NewSliceSource(branches))
	if err != nil {
		t.Fatal(err)
	}
	if st.Dynamic != 3 || st.Static != 2 {
		t.Errorf("cond: dyn=%d static=%d, want 3/2", st.Dynamic, st.Static)
	}
	if st.DynamicUncond != 2 || st.StaticUncond != 1 {
		t.Errorf("uncond: dyn=%d static=%d, want 2/1", st.DynamicUncond, st.StaticUncond)
	}
	if st.Total() != 5 {
		t.Errorf("Total = %d", st.Total())
	}
	if got := st.TakenRatio(); got < 0.66 || got > 0.67 {
		t.Errorf("TakenRatio = %f, want 2/3", got)
	}
}

func TestStatsEmpty(t *testing.T) {
	st := NewStats()
	if st.TakenRatio() != 0 {
		t.Error("empty TakenRatio != 0")
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	in := randomTrace(1, 1<<16)
	b.ResetTimer()
	w, _ := NewWriter(io.Discard)
	for i := 0; i < b.N; i++ {
		_ = w.Write(in[i&(1<<16-1)])
	}
	w.Flush()
}

func BenchmarkBinaryRead(b *testing.B) {
	in := randomTrace(1, 1<<16)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, br := range in {
		w.Write(br)
	}
	w.Flush()
	data := buf.Bytes()
	b.ResetTimer()
	b.SetBytes(int64(len(data)) / (1 << 16))
	var r *Reader
	for i := 0; i < b.N; i++ {
		if i&(1<<16-1) == 0 {
			r, _ = NewReader(bytes.NewReader(data))
		}
		if _, err := r.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
