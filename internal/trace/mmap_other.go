//go:build !unix

package trace

import (
	"io"
	"os"
)

// mapFile falls back to reading the whole file on platforms without a
// usable mmap: MapFile keeps its zero-copy decode against the returned
// buffer, just without the page-cache sharing.
func mapFile(f *os.File, size int64) ([]byte, func([]byte) error, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	_ = size
	return data, nil, nil
}
