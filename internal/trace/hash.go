package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// Content hashing
//
// A trace's content hash is the SHA-256 of a canonical fixed-width
// record encoding (not of any particular file serialisation), so the
// same branch sequence hashes identically whether it arrived as a
// binary file, a text file or a generated workload. The result store
// uses it as the trace component of its cache keys: two clients
// re-running overlapping (spec, trace) cells share cached results
// exactly when their traces are event-for-event identical.

// hashRecordSize is the canonical per-record encoding width: the
// word-aligned PC in little-endian order plus one flag byte holding
// the Kind in bit 0 and Taken in bit 1 (mirroring the binary codec's
// bit layout).
const hashRecordSize = 9

// hashChunk is how many records are staged per digest write.
const hashChunk = 512

// appendHashRecord encodes one branch in the canonical hash form.
func appendHashRecord(dst []byte, b *Branch) []byte {
	var rec [hashRecordSize]byte
	pc := b.PC
	for i := 0; i < 8; i++ {
		rec[i] = byte(pc >> (8 * i))
	}
	rec[8] = byte(b.Kind) & 1
	if b.Taken {
		rec[8] |= 2
	}
	return append(dst, rec[:]...)
}

// HashBranches returns the hex content hash of an in-memory trace.
func HashBranches(branches []Branch) string {
	h := sha256.New()
	buf := make([]byte, 0, hashChunk*hashRecordSize)
	for i := range branches {
		buf = appendHashRecord(buf, &branches[i])
		if len(buf) == cap(buf) {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	return hex.EncodeToString(h.Sum(nil))
}

// HashSource streams src to exhaustion and returns its hex content
// hash and record count. The source is consumed; callers that need the
// events afterwards should Collect first and use HashBranches.
func HashSource(src Source) (hash string, n int, err error) {
	h := sha256.New()
	buf := make([]Branch, hashChunk)
	enc := make([]byte, 0, hashChunk*hashRecordSize)
	for {
		k, err := ReadBatch(src, buf)
		enc = enc[:0]
		for i := 0; i < k; i++ {
			enc = appendHashRecord(enc, &buf[i])
		}
		h.Write(enc)
		n += k
		if errors.Is(err, io.EOF) {
			return hex.EncodeToString(h.Sum(nil)), n, nil
		}
		if err != nil {
			return "", n, fmt.Errorf("trace: hashing: %w", err)
		}
	}
}
