package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadText ensures the text parser never panics on arbitrary
// input, and that anything it accepts round-trips losslessly.
func FuzzReadText(f *testing.F) {
	f.Add([]byte("1a T c\n2b N c\nff T u\n"))
	f.Add([]byte("# comment\n\n0 N c\n"))
	f.Add([]byte("zz T c\n"))
	f.Add([]byte("1a T\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		branches, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip exactly.
		var out bytes.Buffer
		if err := WriteText(&out, NewSliceSource(branches)); err != nil {
			t.Fatalf("WriteText failed on accepted input: %v", err)
		}
		again, err := ReadText(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(branches) {
			t.Fatalf("round trip changed record count: %d vs %d", len(again), len(branches))
		}
		for i := range branches {
			if again[i] != branches[i] {
				t.Fatalf("record %d changed: %+v vs %+v", i, again[i], branches[i])
			}
		}
	})
}

// FuzzBinaryReader ensures the binary decoder never panics on
// arbitrary bytes: it must either produce records or return an error.
func FuzzBinaryReader(f *testing.F) {
	// A valid little trace as one seed.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Branch{PC: 0x100, Taken: true, Kind: Conditional})
	w.Write(Branch{PC: 0x104, Taken: true, Kind: Unconditional})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("GSKT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1<<16; i++ {
			b, err := r.Next()
			if err != nil {
				return // io.EOF or a decode error: both fine
			}
			if b.Kind > Unconditional {
				t.Fatalf("decoder produced invalid kind %d", b.Kind)
			}
		}
	})
}

// FuzzColumnarRoundTrip derives a branch slice from arbitrary bytes,
// encodes it with the block-columnar writer, and requires every decode
// path — streaming Next, streaming NextBatch, and the mmap reader over
// a temp file — to reproduce the exact records and the same canonical
// content hash. It doubles as a never-panics target for the columnar
// decoder via the raw-bytes arm.
func FuzzColumnarRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(3))
	f.Add([]byte("abcdefgh12345678"), uint8(255))
	f.Add(bytes.Repeat([]byte{0x41}, 64), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, mode uint8) {
		if mode&1 != 0 {
			// Raw-bytes arm: the decoder must never panic on
			// arbitrary input, only error or finish.
			m, err := newMapped(data, nil)
			if err != nil {
				return
			}
			buf := make([]Branch, 64)
			for i := 0; i < 1<<12; i++ {
				if _, err := m.NextBatch(buf); err != nil {
					break
				}
			}
			r, err := NewColumnarReader(bytes.NewReader(data))
			if err != nil {
				return
			}
			for i := 0; i < 1<<12; i++ {
				if _, err := r.Next(); err != nil {
					break
				}
			}
			return
		}
		// Round-trip arm: 9 fuzz bytes per record, PC spread chosen by
		// the mode byte so both the dictionary and raw-escape block
		// encodings get exercised.
		shift := uint(mode>>1) % 57
		var branches []Branch
		for len(data) >= 9 {
			pc := uint64(0)
			for i := 0; i < 8; i++ {
				pc = pc<<8 | uint64(data[i])
			}
			b := Branch{PC: pc >> shift, Taken: data[8]&2 != 0, Kind: Kind(data[8] & 1)}
			branches = append(branches, b)
			data = data[9:]
		}
		enc, err := EncodeColumnar(branches)
		if err != nil {
			t.Fatal(err)
		}
		want := HashBranches(branches)
		check := func(path string, got []Branch, err error) {
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			if len(got) != len(branches) {
				t.Fatalf("%s: %d records, want %d", path, len(got), len(branches))
			}
			for i := range branches {
				if got[i] != branches[i] {
					t.Fatalf("%s: record %d = %+v, want %+v", path, i, got[i], branches[i])
				}
			}
			if h := HashBranches(got); h != want {
				t.Fatalf("%s: content hash %s, want %s", path, h, want)
			}
		}

		r, err := NewColumnarReader(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(r)
		check("Next", got, err)

		r, err = NewColumnarReader(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		got = got[:0]
		buf := make([]Branch, 33)
		for {
			n, berr := r.NextBatch(buf)
			got = append(got, buf[:n]...)
			if berr == io.EOF {
				break
			}
			if berr != nil {
				t.Fatalf("NextBatch: %v", berr)
			}
		}
		check("NextBatch", got, nil)

		m, err := MapFile(writeTempTrace(t, enc))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		got, err = Collect(m)
		check("MapFile", got, err)
	})
}

// FuzzBinaryRoundTrip checks arbitrary records encode and decode
// losslessly.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(uint64(0x1234), true, false)
	f.Add(uint64(0), false, false)
	f.Add(^uint64(0), true, true)
	f.Fuzz(func(t *testing.T, pc uint64, taken, uncond bool) {
		in := Branch{PC: pc, Taken: taken, Kind: Conditional}
		if uncond {
			in.Kind = Unconditional
			in.Taken = true
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != in {
			t.Fatalf("round trip: got %+v, want %+v", got, in)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("trailing read error = %v, want EOF", err)
		}
	})
}
