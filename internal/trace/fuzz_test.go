package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadText ensures the text parser never panics on arbitrary
// input, and that anything it accepts round-trips losslessly.
func FuzzReadText(f *testing.F) {
	f.Add([]byte("1a T c\n2b N c\nff T u\n"))
	f.Add([]byte("# comment\n\n0 N c\n"))
	f.Add([]byte("zz T c\n"))
	f.Add([]byte("1a T\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		branches, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip exactly.
		var out bytes.Buffer
		if err := WriteText(&out, NewSliceSource(branches)); err != nil {
			t.Fatalf("WriteText failed on accepted input: %v", err)
		}
		again, err := ReadText(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(branches) {
			t.Fatalf("round trip changed record count: %d vs %d", len(again), len(branches))
		}
		for i := range branches {
			if again[i] != branches[i] {
				t.Fatalf("record %d changed: %+v vs %+v", i, again[i], branches[i])
			}
		}
	})
}

// FuzzBinaryReader ensures the binary decoder never panics on
// arbitrary bytes: it must either produce records or return an error.
func FuzzBinaryReader(f *testing.F) {
	// A valid little trace as one seed.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Branch{PC: 0x100, Taken: true, Kind: Conditional})
	w.Write(Branch{PC: 0x104, Taken: true, Kind: Unconditional})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("GSKT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1<<16; i++ {
			b, err := r.Next()
			if err != nil {
				return // io.EOF or a decode error: both fine
			}
			if b.Kind > Unconditional {
				t.Fatalf("decoder produced invalid kind %d", b.Kind)
			}
		}
	})
}

// FuzzBinaryRoundTrip checks arbitrary records encode and decode
// losslessly.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add(uint64(0x1234), true, false)
	f.Add(uint64(0), false, false)
	f.Add(^uint64(0), true, true)
	f.Fuzz(func(t *testing.T, pc uint64, taken, uncond bool) {
		in := Branch{PC: pc, Taken: taken, Kind: Conditional}
		if uncond {
			in.Kind = Unconditional
			in.Taken = true
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != in {
			t.Fatalf("round trip: got %+v, want %+v", got, in)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("trailing read error = %v, want EOF", err)
		}
	})
}
