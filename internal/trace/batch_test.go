package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// collectBatched drains src through NextBatch windows of the given
// size.
func collectBatched(t *testing.T, src Source, window int) []Branch {
	t.Helper()
	var out []Branch
	buf := make([]Branch, window)
	for {
		n, err := ReadBatch(src, buf)
		out = append(out, buf[:n]...)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSliceSourceNextBatch(t *testing.T) {
	in := randomTrace(21, 1000)
	for _, window := range []int{1, 3, 7, 256, 1000, 4096} {
		s := NewSliceSource(in)
		got := collectBatched(t, s, window)
		if len(got) != len(in) {
			t.Fatalf("window %d: got %d records, want %d", window, len(got), len(in))
		}
		for i := range in {
			if got[i] != in[i] {
				t.Fatalf("window %d: record %d = %+v, want %+v", window, i, got[i], in[i])
			}
		}
	}
}

// TestReaderNextBatchMatchesNext: the block decoder must yield exactly
// the record sequence of the byte-wise path, across window sizes that
// force varints to straddle the bufio boundary.
func TestReaderNextBatchMatchesNext(t *testing.T) {
	in := randomTrace(22, 20000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range in {
		if err := w.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	for _, window := range []int{1, 2, 63, 4096} {
		r, err := NewReader(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		got := collectBatched(t, r, window)
		if len(got) != len(in) {
			t.Fatalf("window %d: got %d records, want %d", window, len(got), len(in))
		}
		for i := range in {
			if got[i] != in[i] {
				t.Fatalf("window %d: record %d = %+v, want %+v", window, i, got[i], in[i])
			}
		}
	}
}

// TestReaderNextBatchInterleaved: mixing Next and NextBatch calls on
// one reader must keep the delta chain intact.
func TestReaderNextBatchInterleaved(t *testing.T) {
	in := randomTrace(23, 5000)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, b := range in {
		if err := w.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []Branch
	batch := make([]Branch, 37)
	for i := 0; ; i++ {
		if i%2 == 0 {
			b, err := r.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, b)
			continue
		}
		n, err := r.NextBatch(batch)
		got = append(got, batch[:n]...)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(in) {
		t.Fatalf("got %d records, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], in[i])
		}
	}
}

// TestReadBatchFallback: sources without a bulk path still work
// through ReadBatch.
type nextOnly struct{ s *SliceSource }

func (n nextOnly) Next() (Branch, error) { return n.s.Next() }

func TestReadBatchFallback(t *testing.T) {
	in := randomTrace(24, 100)
	src := nextOnly{NewSliceSource(in)}
	got := collectBatched(t, src, 33)
	if len(got) != len(in) {
		t.Fatalf("got %d records, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// TestNextBatchZeroAllocs: block decoding into a reused buffer must
// not allocate per call.
func TestNextBatchZeroAllocs(t *testing.T) {
	in := randomTrace(25, 300000)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, b := range in {
		if err := w.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	enc := buf.Bytes()

	r, err := NewReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Branch, 4096)
	allocs := testing.AllocsPerRun(40, func() {
		if _, err := r.NextBatch(dst); err != nil && !errors.Is(err, io.EOF) {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Reader.NextBatch allocates %.1f objects per call, want 0", allocs)
	}

	s := NewSliceSource(in)
	allocs = testing.AllocsPerRun(40, func() {
		if _, err := s.NextBatch(dst); err != nil && !errors.Is(err, io.EOF) {
			t.Fatal(err)
		}
		if s.pos >= len(in) {
			s.Reset()
		}
	})
	if allocs != 0 {
		t.Errorf("SliceSource.NextBatch allocates %.1f objects per call, want 0", allocs)
	}
}
