//go:build amd64 || arm64

package trace

import "unsafe"

// The kernel stores each record as two 64-bit words: the PC, then the
// Taken byte at offset 8 and the Kind byte at offset 9 with the
// trailing padding zeroed. That shape is asserted here so a Branch
// layout change fails the build instead of silently corrupting
// decodes.
var _ [16]byte = [unsafe.Sizeof(Branch{})]byte{}
var _ [8]byte = [unsafe.Offsetof(Branch{}.Taken)]byte{}
var _ [9]byte = [unsafe.Offsetof(Branch{}.Kind)]byte{}

// unpackColumnarRecords is the dictionary-mode hot kernel. Per group
// of four records it does one unaligned 64-bit load for the packed
// indices (a bit offset <= 7 plus four indices of width <= 12 spans at
// most 55 bits of the loaded word), one byte load each for the
// direction and kind bitvectors (i stays a multiple of 4, so a group's
// four bits never straddle a byte), and per record a shift/mask for
// the index, a masked — therefore provably in-bounds — array
// subscript for the dictionary lookup, and two 64-bit stores: the PC,
// then the Taken and Kind bytes extracted together by (mix>>k)&0x101.
// The function contains no calls by design: a call site inside the
// loop would make the register allocator spill the loop state on every
// iteration. width 0 needs no special case — the masked extraction
// yields index 0 every record. Returns the largest dictionary index
// seen, for the caller's deferred range check.
//
// This variant is for little-endian targets with cheap unaligned
// loads, and reads through raw pointers: the per-record bounds are
// established once by decodeColumnarBlock's stream-layout validation
// (ext carries 8 bytes of slack past the packed indices, dirs and
// kinds span ceil(len(dst)/64) words), which is exactly what the
// bounds checks the compiler cannot hoist would re-prove per record.
func unpackColumnarRecords(dst []Branch, ext, dirs []byte, dict *[ColumnarBlockSize]uint64, width int, kinds []uint64) uint64 {
	mask := uint64(1)<<width - 1
	pcs := unsafe.Pointer(unsafe.SliceData(ext))
	dbs := unsafe.Pointer(unsafe.SliceData(dirs))
	kbs := unsafe.Pointer(unsafe.SliceData(kinds))
	out := unsafe.Pointer(unsafe.SliceData(dst))
	var maxIdx uint64
	bit := 0
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		w := *(*uint64)(unsafe.Add(pcs, bit>>3)) >> (bit & 7)
		bit += 4 * width
		idx0 := w & mask
		w >>= width
		idx1 := w & mask
		w >>= width
		idx2 := w & mask
		w >>= width
		idx3 := w & mask
		if idx0 > maxIdx {
			maxIdx = idx0
		}
		if idx1 > maxIdx {
			maxIdx = idx1
		}
		if idx2 > maxIdx {
			maxIdx = idx2
		}
		if idx3 > maxIdx {
			maxIdx = idx3
		}
		// mix holds the group's direction bits at 0..3 and kind bits at
		// 8..11: (mix>>k)&0x101 is record k's Taken byte and Kind byte,
		// stored as one zero-padded 64-bit word.
		mix := (uint64(*(*byte)(unsafe.Add(dbs, i>>3))) |
			uint64(*(*byte)(unsafe.Add(kbs, i>>3)))<<8) >> (i & 7)
		p := unsafe.Add(out, i*16)
		*(*uint64)(p) = dict[idx0&(ColumnarBlockSize-1)]
		*(*uint64)(unsafe.Add(p, 8)) = mix & 0x101
		*(*uint64)(unsafe.Add(p, 16)) = dict[idx1&(ColumnarBlockSize-1)]
		*(*uint64)(unsafe.Add(p, 24)) = mix >> 1 & 0x101
		*(*uint64)(unsafe.Add(p, 32)) = dict[idx2&(ColumnarBlockSize-1)]
		*(*uint64)(unsafe.Add(p, 40)) = mix >> 2 & 0x101
		*(*uint64)(unsafe.Add(p, 48)) = dict[idx3&(ColumnarBlockSize-1)]
		*(*uint64)(unsafe.Add(p, 56)) = mix >> 3 & 0x101
	}
	for ; i < len(dst); i++ {
		idx := *(*uint64)(unsafe.Add(pcs, bit>>3)) >> (bit & 7) & mask
		if idx > maxIdx {
			maxIdx = idx
		}
		bit += width
		dst[i] = Branch{
			PC:    dict[idx&(ColumnarBlockSize-1)],
			Taken: *(*byte)(unsafe.Add(dbs, i>>3))>>(i&7)&1 != 0,
			Kind:  Kind(*(*byte)(unsafe.Add(kbs, i>>3)) >> (i & 7) & 1),
		}
	}
	return maxIdx
}
