// Package trace defines the branch-trace representation shared by the
// workload generators, the predictors and the experiment harness, plus
// binary and text codecs for storing traces on disk.
//
// A trace is a sequence of Branch records in program order. Matching
// the paper's methodology (section 3.1), records carry a Kind so that
// unconditional branches can participate in the global history while
// being excluded from prediction accounting, and a word-aligned PC
// (the paper's a_N..a_2 address bits).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Kind distinguishes branch classes in a trace.
type Kind uint8

const (
	// Conditional branches are predicted and counted.
	Conditional Kind = iota
	// Unconditional branches (jumps, calls, returns) only shift the
	// global history; they are always taken.
	Unconditional
)

// String returns "cond" or "uncond".
func (k Kind) String() string {
	switch k {
	case Conditional:
		return "cond"
	case Unconditional:
		return "uncond"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Branch is one dynamic branch event.
type Branch struct {
	// PC is the word address of the branch instruction (byte PC >> 2).
	PC uint64
	// Taken is the resolved direction. Unconditional branches are
	// always taken.
	Taken bool
	// Kind classifies the branch.
	Kind Kind
}

// Source yields a stream of branches. Next returns io.EOF when the
// stream is exhausted.
type Source interface {
	Next() (Branch, error)
}

// BatchSource is an optional extension of Source for bulk delivery.
// NextBatch fills dst with up to len(dst) records, returning the
// number filled. It follows io.Reader conventions: n may be short of
// len(dst) without the stream being done, n > 0 may accompany io.EOF,
// and an exhausted stream returns (0, io.EOF). The records delivered
// by a sequence of NextBatch calls are exactly those a sequence of
// Next calls would deliver, in the same order.
type BatchSource interface {
	Source
	NextBatch(dst []Branch) (n int, err error)
}

// ReadBatch fills dst from src, using the bulk path when src
// implements BatchSource and falling back to per-record Next calls
// otherwise. Like NextBatch, it may return n > 0 alongside io.EOF.
func ReadBatch(src Source, dst []Branch) (int, error) {
	if bs, ok := src.(BatchSource); ok {
		return bs.NextBatch(dst)
	}
	for i := range dst {
		b, err := src.Next()
		if err != nil {
			return i, err
		}
		dst[i] = b
	}
	return len(dst), nil
}

// SliceSource adapts a []Branch into a Source.
type SliceSource struct {
	branches []Branch
	pos      int
}

// NewSliceSource returns a Source reading from the given slice.
func NewSliceSource(b []Branch) *SliceSource { return &SliceSource{branches: b} }

// Next implements Source.
func (s *SliceSource) Next() (Branch, error) {
	if s.pos >= len(s.branches) {
		return Branch{}, io.EOF
	}
	b := s.branches[s.pos]
	s.pos++
	return b, nil
}

// NextBatch implements BatchSource by copying from the underlying
// slice.
func (s *SliceSource) NextBatch(dst []Branch) (int, error) {
	if s.pos >= len(s.branches) {
		return 0, io.EOF
	}
	n := copy(dst, s.branches[s.pos:])
	s.pos += n
	return n, nil
}

// Reset rewinds the source to the beginning without reallocating,
// so one SliceSource can replay the same materialised trace across
// many simulation runs.
func (s *SliceSource) Reset() { s.pos = 0 }

// Drain returns the unread tail of the underlying slice and marks the
// source exhausted (Next returns io.EOF until Reset). Batch consumers
// use it to iterate the materialised trace directly instead of paying
// an interface call per event.
func (s *SliceSource) Drain() []Branch {
	rest := s.branches[s.pos:]
	s.pos = len(s.branches)
	return rest
}

// Len returns the total number of branches in the underlying slice.
func (s *SliceSource) Len() int { return len(s.branches) }

// Collect drains a Source into a slice. It stops at io.EOF and returns
// any other error encountered.
func Collect(src Source) ([]Branch, error) {
	var out []Branch
	for {
		b, err := src.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, b)
	}
}

// Stats summarises a trace, reproducing the quantities of Table 1.
type Stats struct {
	Dynamic       int // dynamic conditional branches
	Static        int // distinct conditional branch PCs
	DynamicUncond int // dynamic unconditional branches
	StaticUncond  int // distinct unconditional branch PCs
	TakenCond     int // taken conditional branches
	total         int
	condPCs       map[uint64]struct{}
	uncondPCs     map[uint64]struct{}
}

// NewStats returns an empty accumulator.
func NewStats() *Stats {
	return &Stats{
		condPCs:   make(map[uint64]struct{}),
		uncondPCs: make(map[uint64]struct{}),
	}
}

// Observe accounts one branch.
func (s *Stats) Observe(b Branch) {
	s.total++
	switch b.Kind {
	case Conditional:
		s.Dynamic++
		if b.Taken {
			s.TakenCond++
		}
		if _, ok := s.condPCs[b.PC]; !ok {
			s.condPCs[b.PC] = struct{}{}
			s.Static = len(s.condPCs)
		}
	case Unconditional:
		s.DynamicUncond++
		if _, ok := s.uncondPCs[b.PC]; !ok {
			s.uncondPCs[b.PC] = struct{}{}
			s.StaticUncond = len(s.uncondPCs)
		}
	}
}

// Total returns the total number of branches observed (all kinds).
func (s *Stats) Total() int { return s.total }

// TakenRatio returns the fraction of conditional branches that were
// taken, or 0 for an empty trace.
func (s *Stats) TakenRatio() float64 {
	if s.Dynamic == 0 {
		return 0
	}
	return float64(s.TakenCond) / float64(s.Dynamic)
}

// Measure drains a Source and returns its statistics.
func Measure(src Source) (*Stats, error) {
	st := NewStats()
	for {
		b, err := src.Next()
		if errors.Is(err, io.EOF) {
			return st, nil
		}
		if err != nil {
			return st, err
		}
		st.Observe(b)
	}
}

// Binary format
//
// The on-disk binary format is a fixed 16-byte header followed by one
// varint-compressed record per branch:
//
//	header: magic "GSKT" | version u8 | reserved [11]byte
//	record: uvarint(pcDelta<<2 | taken<<1 | kind)
//
// pcDelta is the zig-zag encoded difference from the previous PC, which
// keeps records small for loop-heavy traces.

var magic = [4]byte{'G', 'S', 'K', 'T'}

const formatVersion = 1

// Writer encodes branches to an io.Writer in the binary trace format.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	wrote  bool
	buf    [binary.MaxVarintLen64]byte
}

// NewWriter returns a Writer and emits the format header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	copy(hdr[:4], magic[:])
	hdr[4] = formatVersion
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write encodes one branch record.
func (w *Writer) Write(b Branch) error {
	if b.Kind > Unconditional {
		return fmt.Errorf("trace: invalid kind %d", b.Kind)
	}
	delta := zigzag(int64(b.PC) - int64(w.lastPC))
	w.lastPC = b.PC
	w.wrote = true
	v := delta << 2
	if b.Taken {
		v |= 2
	}
	v |= uint64(b.Kind)
	n := binary.PutUvarint(w.buf[:], v)
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes branches from an io.Reader in the binary trace format.
// It implements Source.
type Reader struct {
	r      *bufio.Reader
	lastPC uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:4])
	}
	if hdr[4] != formatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	return &Reader{r: br}, nil
}

// Next implements Source.
func (r *Reader) Next() (Branch, error) {
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Branch{}, io.EOF
		}
		return Branch{}, fmt.Errorf("trace: reading record: %w", err)
	}
	return r.decode(v), nil
}

// decode expands one varint record into a Branch, advancing the PC
// delta chain.
func (r *Reader) decode(v uint64) Branch {
	kind := Kind(v & 1)
	taken := v&2 != 0
	pc := uint64(int64(r.lastPC) + unzigzag(v>>2))
	r.lastPC = pc
	return Branch{PC: pc, Taken: taken, Kind: kind}
}

// NextBatch implements BatchSource with block decoding: records whose
// varints are complete within the bufio window are decoded straight
// out of the buffer with no per-record function call, and only a
// record straddling the window boundary falls back to the byte-wise
// ReadUvarint path. A full dst never allocates.
func (r *Reader) NextBatch(dst []Branch) (int, error) {
	n := 0
	for n < len(dst) {
		// Expose the buffered window. Peek(1) fills the buffer if it
		// is empty without blocking for more than one byte.
		if _, err := r.r.Peek(1); err != nil {
			if errors.Is(err, io.EOF) {
				if n > 0 {
					return n, nil
				}
				return 0, io.EOF
			}
			return n, fmt.Errorf("trace: reading record: %w", err)
		}
		win, _ := r.r.Peek(r.r.Buffered())
		used := 0
		for n < len(dst) {
			v, sz := binary.Uvarint(win[used:])
			if sz <= 0 {
				break // varint straddles the window boundary (or is empty)
			}
			used += sz
			dst[n] = r.decode(v)
			n++
		}
		if _, err := r.r.Discard(used); err != nil {
			return n, fmt.Errorf("trace: reading record: %w", err)
		}
		if used == 0 {
			// The next record straddles the buffer boundary; decode it
			// byte-wise, which refills the buffer as a side effect.
			b, err := r.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					if n > 0 {
						return n, nil
					}
					return 0, io.EOF
				}
				return n, err
			}
			dst[n] = b
			n++
		}
	}
	return n, nil
}

// Text format
//
// One record per line: "<hex pc> <T|N> <c|u>", e.g. "1a2f T c".
// Comment lines start with '#'. The text format exists for debugging
// and for hand-written fixture traces in tests.

// WriteText writes branches from src to w in the text format.
func WriteText(w io.Writer, src Source) error {
	bw := bufio.NewWriter(w)
	for {
		b, err := src.Next()
		if errors.Is(err, io.EOF) {
			return bw.Flush()
		}
		if err != nil {
			return err
		}
		dir := byte('N')
		if b.Taken {
			dir = 'T'
		}
		kind := byte('c')
		if b.Kind == Unconditional {
			kind = 'u'
		}
		if _, err := fmt.Fprintf(bw, "%x %c %c\n", b.PC, dir, kind); err != nil {
			return fmt.Errorf("trace: writing text record: %w", err)
		}
	}
}

// ReadText parses a text-format trace.
func ReadText(r io.Reader) ([]Branch, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out []Branch
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		pc, err := strconv.ParseUint(fields[0], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad pc %q: %w", lineNo, fields[0], err)
		}
		var taken bool
		switch fields[1] {
		case "T":
			taken = true
		case "N":
			taken = false
		default:
			return nil, fmt.Errorf("trace: line %d: bad direction %q", lineNo, fields[1])
		}
		var kind Kind
		switch fields[2] {
		case "c":
			kind = Conditional
		case "u":
			kind = Unconditional
		default:
			return nil, fmt.Errorf("trace: line %d: bad kind %q", lineNo, fields[2])
		}
		if kind == Unconditional && !taken {
			return nil, fmt.Errorf("trace: line %d: unconditional branch marked not-taken", lineNo)
		}
		out = append(out, Branch{PC: pc, Taken: taken, Kind: kind})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scanning: %w", err)
	}
	return out, nil
}
