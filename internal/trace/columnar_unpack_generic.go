//go:build !amd64 && !arm64

package trace

import "encoding/binary"

// unpackColumnarRecords is the portable variant of the dictionary-mode
// hot kernel (see columnar_unpack_fast.go for the layout contract):
// identical semantics, but every load goes through bounds-checked
// indexing and binary.LittleEndian, so it is correct on big-endian
// targets and machines without cheap unaligned loads.
func unpackColumnarRecords(dst []Branch, ext, dirs []byte, dict *[ColumnarBlockSize]uint64, width int, kinds []uint64) uint64 {
	mask := uint64(1)<<width - 1
	var maxIdx uint64
	bit := 0
	for i := 0; i < len(dst); i++ {
		idx := binary.LittleEndian.Uint64(ext[bit>>3:]) >> (bit & 7) & mask
		if idx > maxIdx {
			maxIdx = idx
		}
		bit += width
		dst[i] = Branch{
			PC:    dict[idx&(ColumnarBlockSize-1)],
			Taken: dirs[i>>3]>>(i&7)&1 != 0,
			Kind:  Kind(kinds[i>>6] >> (i & 63) & 1),
		}
	}
	return maxIdx
}
