//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mapFile memory-maps size bytes of f read-only. A zero-length file
// maps to an empty slice without touching mmap (mapping zero bytes is
// an error on most kernels); header validation rejects it upstream.
func mapFile(f *os.File, size int64) ([]byte, func([]byte) error, error) {
	if size == 0 {
		return nil, nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, syscall.Munmap, nil
}
