package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Memory-mapped trace files
//
// MapFile maps a trace file (either codec, sniffed from the magic) and
// decodes records straight out of the mapped pages: no read syscalls
// past the initial stat/map, no buffer copies of block payloads, and —
// on the batch path — no allocations after the constructor. Branch
// values are copies, never aliases of the mapping, so decoded records
// outlive Close; the reader itself must not be used after Close.

// mappedKind names the codec a Mapped file carries.
type mappedKind uint8

const (
	mappedColumnar mappedKind = iota
	mappedVarint
)

// Mapped is a trace file decoded in place from a memory mapping (or,
// on platforms without mmap, from one whole-file read). It implements
// Source and BatchSource, supports Reset for replay, and must be
// Closed to release the mapping.
type Mapped struct {
	data  []byte
	unmap func([]byte) error
	kind  mappedKind

	off    int
	lastPC uint64 // varint delta chain

	dict               []uint64
	kinds              []uint64
	stage              []Branch // columnar staging for Next and short NextBatch calls
	stagePos, stageLen int
}

// MapFile opens and memory-maps a trace file in either the columnar or
// the varint binary format. The file descriptor is released before
// returning (the mapping survives it); Close unmaps.
func MapFile(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	data, unmap, err := mapFile(f, fi.Size())
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("trace: mapping %s: %w", path, err)
	}
	m, err := newMapped(data, unmap)
	if err != nil {
		if unmap != nil {
			unmap(data)
		}
		return nil, err
	}
	return m, nil
}

// DecodeBytes decodes a complete in-memory trace stream in either
// binary format, sniffed from the magic.
func DecodeBytes(data []byte) ([]Branch, error) {
	m, err := newMapped(data, nil)
	if err != nil {
		return nil, err
	}
	var out []Branch
	buf := make([]Branch, ColumnarBlockSize)
	for {
		n, err := m.NextBatch(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// newMapped validates the file header and builds the decoder state.
func newMapped(data []byte, unmap func([]byte) error) (*Mapped, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("trace: mapped file too short for a header (%d bytes)", len(data))
	}
	m := &Mapped{data: data, unmap: unmap, off: 16}
	switch [4]byte(data[:4]) {
	case magicColumnar:
		m.kind = mappedColumnar
		if data[4] != columnarVersion {
			return nil, fmt.Errorf("trace: unsupported columnar version %d", data[4])
		}
		m.dict = make([]uint64, ColumnarBlockSize)
		m.kinds = make([]uint64, ColumnarBlockSize/64)
	case magic:
		m.kind = mappedVarint
		if data[4] != formatVersion {
			return nil, fmt.Errorf("trace: unsupported version %d", data[4])
		}
	default:
		return nil, fmt.Errorf("trace: bad magic %q", data[:4])
	}
	return m, nil
}

// Reset rewinds to the first record without remapping.
func (m *Mapped) Reset() {
	m.off = 16
	m.lastPC = 0
	m.stagePos, m.stageLen = 0, 0
}

// Close releases the mapping. The Mapped must not be used afterwards;
// Branch values already decoded remain valid (they are copies).
func (m *Mapped) Close() error {
	data := m.data
	m.data = nil
	if m.unmap != nil && data != nil {
		return m.unmap(data)
	}
	return nil
}

// readBlock decodes the next columnar block into dst (len(dst) >= the
// block's count), verifying the header and checksum against the mapped
// bytes in place.
func (m *Mapped) readBlock(dst []Branch) (int, error) {
	if m.off == len(m.data) {
		return 0, io.EOF
	}
	if m.off+columnarBlockHeaderSize > len(m.data) {
		return 0, corruptf("truncated block header (%d bytes)", len(m.data)-m.off)
	}
	h, err := parseColumnarBlockHeader(m.data[m.off:])
	if err != nil {
		return 0, err
	}
	start := m.off + columnarBlockHeaderSize
	if start+h.plen > len(m.data) {
		return 0, corruptf("truncated block payload (%d of %d bytes)", len(m.data)-start, h.plen)
	}
	payload := m.data[start : start+h.plen]
	if crc := crc32.Checksum(payload, castagnoli); crc != h.crc {
		return 0, corruptf("block checksum mismatch (stored %08x, computed %08x)", h.crc, crc)
	}
	if err := decodeColumnarBlock(payload, h, dst, m.dict, m.kinds); err != nil {
		return 0, err
	}
	m.off = start + h.plen
	return h.count, nil
}

// NextBatch implements BatchSource, decoding straight from the mapped
// pages into dst. On the columnar path each call delivers at most one
// block and a dst of ColumnarBlockSize records never allocates.
func (m *Mapped) NextBatch(dst []Branch) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if m.kind == mappedVarint {
		n := 0
		for n < len(dst) {
			if m.off == len(m.data) {
				if n > 0 {
					return n, nil
				}
				return 0, io.EOF
			}
			v, sz := binary.Uvarint(m.data[m.off:])
			if sz <= 0 {
				return n, fmt.Errorf("trace: reading record: truncated varint")
			}
			m.off += sz
			pc := uint64(int64(m.lastPC) + unzigzag(v>>2))
			m.lastPC = pc
			dst[n] = Branch{PC: pc, Taken: v&2 != 0, Kind: Kind(v & 1)}
			n++
		}
		return n, nil
	}
	if m.stagePos < m.stageLen {
		n := copy(dst, m.stage[m.stagePos:m.stageLen])
		m.stagePos += n
		return n, nil
	}
	if len(dst) >= ColumnarBlockSize {
		return m.readBlock(dst)
	}
	if err := m.restage(); err != nil {
		return 0, err
	}
	n := copy(dst, m.stage[:m.stageLen])
	m.stagePos = n
	return n, nil
}

// restage decodes the next block into the staging buffer.
func (m *Mapped) restage() error {
	if m.stage == nil {
		m.stage = make([]Branch, ColumnarBlockSize)
	}
	n, err := m.readBlock(m.stage)
	if err != nil {
		return err
	}
	m.stagePos, m.stageLen = 0, n
	return nil
}

// Next implements Source.
func (m *Mapped) Next() (Branch, error) {
	if m.kind == mappedVarint {
		var one [1]Branch
		if _, err := m.NextBatch(one[:]); err != nil {
			return Branch{}, err
		}
		return one[0], nil
	}
	if m.stagePos >= m.stageLen {
		if err := m.restage(); err != nil {
			return Branch{}, err
		}
	}
	b := m.stage[m.stagePos]
	m.stagePos++
	return b, nil
}
