// Package skewfn implements the inter-bank dispersion ("skewing")
// functions used by the skewed branch predictor, exactly as defined in
// section 4.2 of the paper (and originally proposed for skewed
// associative caches by Seznec and Bodin).
//
// Given an information vector V — the concatenation of the branch
// address and the global history — decomposed into bit substrings
// (V3, V2, V1) where V1 and V2 are n-bit strings, the three bank index
// functions are
//
//	f0(V) = H(V1) ^ Hinv(V2) ^ V2
//	f1(V) = H(V1) ^ Hinv(V2) ^ V1
//	f2(V) = Hinv(V1) ^ H(V2) ^ V2
//
// where H is the bijection on n-bit strings
//
//	H(y_n, y_{n-1}, ..., y_1) = (y_n ^ y_1, y_n, y_{n-1}, ..., y_3, y_2)
//
// i.e. a one-bit right shift whose vacated most-significant bit is
// filled with the XOR of the old most- and least-significant bits, and
// Hinv is its inverse.
//
// The defining quality of this family is dispersion: vectors that
// collide under one function tend not to collide under the others, so
// a (address, history) pair aliased in one bank usually survives the
// majority vote. The package documents and tests the precise subfamily
// properties that hold (see the property tests): in particular, two
// vectors with equal V2 but different V1 never collide in any bank, and
// the maps y -> y^H(y) and y -> y^Hinv(y) are themselves bijections for
// the index widths used here, which bounds how correlated collisions
// across banks can be.
package skewfn

import "fmt"

// MinBits and MaxBits bound the supported bank-index width. Below 2
// bits the shift structure of H degenerates; above 30 bits the tables
// would be far beyond any practical predictor.
const (
	MinBits = 2
	MaxBits = 30
)

// Skewer computes the three bank-index functions for a fixed index
// width n. Construct with New.
type Skewer struct {
	n    uint
	mask uint64
}

// New returns a Skewer for banks of 2^n entries. It panics if n is
// outside [MinBits, MaxBits].
func New(n uint) *Skewer {
	if n < MinBits || n > MaxBits {
		panic(fmt.Sprintf("skewfn: index width %d out of range [%d,%d]", n, MinBits, MaxBits))
	}
	return &Skewer{n: n, mask: uint64(1)<<n - 1}
}

// Bits returns the index width n.
func (s *Skewer) Bits() uint { return s.n }

// Mask returns the n-bit mask 2^n - 1.
func (s *Skewer) Mask() uint64 { return s.mask }

// H applies the skewing bijection to the low n bits of y. The result
// is an n-bit value:
//
//	out = (y >> 1) with MSB set to (old MSB) ^ (old LSB)
func (s *Skewer) H(y uint64) uint64 {
	y &= s.mask
	msb := (y >> (s.n - 1)) & 1
	lsb := y & 1
	return (y >> 1) | ((msb ^ lsb) << (s.n - 1))
}

// Hinv applies the inverse of H to the low n bits of y.
func (s *Skewer) Hinv(y uint64) uint64 {
	y &= s.mask
	// Bits n-2..0 of y are the old bits n-1..1; the old MSB is bit n-2
	// of y (for n >= 2), and the old LSB is reconstructed from the new
	// MSB: newMSB = oldMSB ^ oldLSB.
	high := (y & (s.mask >> 1)) << 1
	oldMSB := (y >> (s.n - 2)) & 1
	newMSB := (y >> (s.n - 1)) & 1
	return high | (oldMSB ^ newMSB)
}

// Split decomposes an information vector into (V3, V2, V1) with V1 and
// V2 each n bits wide: V1 is the low n bits, V2 the next n bits, V3
// whatever remains above.
func (s *Skewer) Split(v uint64) (v3, v2, v1 uint64) {
	v1 = v & s.mask
	v2 = (v >> s.n) & s.mask
	v3 = v >> (2 * s.n)
	return
}

// F0 computes the bank-0 index: H(V1) ^ Hinv(V2) ^ V2.
func (s *Skewer) F0(v uint64) uint64 {
	_, v2, v1 := s.Split(v)
	return s.H(v1) ^ s.Hinv(v2) ^ v2
}

// F1 computes the bank-1 index: H(V1) ^ Hinv(V2) ^ V1.
func (s *Skewer) F1(v uint64) uint64 {
	_, v2, v1 := s.Split(v)
	return s.H(v1) ^ s.Hinv(v2) ^ v1
}

// F2 computes the bank-2 index: Hinv(V1) ^ H(V2) ^ V2.
func (s *Skewer) F2(v uint64) uint64 {
	_, v2, v1 := s.Split(v)
	return s.Hinv(v1) ^ s.H(v2) ^ v2
}

// Index computes the index for bank k. Banks beyond the canonical three
// (used by 5-bank and larger skewed configurations) are derived by
// iterating H on the f_{k mod 3} result with a bank-dependent rotation
// of the vector, preserving the full-period dispersion of the base
// family while keeping each function distinct.
func (s *Skewer) Index(k int, v uint64) uint64 {
	if k < 0 {
		panic("skewfn: negative bank")
	}
	switch k {
	case 0:
		return s.F0(v)
	case 1:
		return s.F1(v)
	case 2:
		return s.F2(v)
	}
	// Higher banks: re-skew the vector by mixing V3 in and iterating H.
	// Each extra bank applies one more round of H to a rotated split so
	// that no two banks share an index function.
	rot := uint(k-2) % s.n
	v3, v2, v1 := s.Split(v)
	rv1 := ((v1 << rot) | (v1 >> (s.n - rot))) & s.mask
	base := s.Index(k%3, (v3<<(2*s.n))|(v2<<s.n)|rv1)
	out := base
	for i := 0; i < (k-2+2)/3; i++ {
		out = s.H(out)
	}
	return out
}

// Indices fills dst with the bank indices for v across len(dst) banks.
func (s *Skewer) Indices(dst []uint64, v uint64) {
	if len(dst) == 3 {
		// The canonical three functions share subexpressions:
		// H(V1)^Hinv(V2) appears in both f0 and f1, so the whole
		// triple needs four H-applications and one split.
		_, v2, v1 := s.Split(v)
		a := s.H(v1) ^ s.Hinv(v2)
		dst[0] = a ^ v2
		dst[1] = a ^ v1
		dst[2] = s.Hinv(v1) ^ s.H(v2) ^ v2
		return
	}
	for k := range dst {
		dst[k] = s.Index(k, v)
	}
}
