package skewfn

import (
	"testing"
	"testing/quick"
)

// refH is a bit-level transliteration of the paper's definition of H,
// used as an oracle: H(y_n, ..., y_1) = (y_n^y_1, y_n, y_{n-1}, ..., y_2).
func refH(y uint64, n uint) uint64 {
	bit := func(i uint) uint64 { return (y >> (i - 1)) & 1 } // y_i, 1-indexed
	var out uint64
	// Output MSB (position n-1 in 0-indexed terms) is y_n ^ y_1.
	out |= (bit(n) ^ bit(1)) << (n - 1)
	// Remaining output bits, from position n-2 down to 0, are
	// y_n, y_{n-1}, ..., y_2.
	for i := uint(0); i < n-1; i++ {
		out |= bit(n-i) << (n - 2 - i)
	}
	return out
}

func TestHMatchesPaperDefinition(t *testing.T) {
	for _, n := range []uint{2, 3, 4, 5, 8, 10} {
		s := New(n)
		for y := uint64(0); y < 1<<n; y++ {
			if got, want := s.H(y), refH(y, n); got != want {
				t.Fatalf("n=%d: H(%0*b) = %0*b, want %0*b", n, n, y, n, got, n, want)
			}
		}
	}
}

func TestHBijectiveExhaustive(t *testing.T) {
	for _, n := range []uint{2, 3, 4, 6, 8, 12} {
		s := New(n)
		seen := make([]bool, 1<<n)
		for y := uint64(0); y < 1<<n; y++ {
			h := s.H(y)
			if h >= 1<<n {
				t.Fatalf("n=%d: H(%d) = %d out of range", n, y, h)
			}
			if seen[h] {
				t.Fatalf("n=%d: H not injective at %d", n, y)
			}
			seen[h] = true
		}
	}
}

func TestHinvInvertsH(t *testing.T) {
	s := New(20)
	f := func(y uint64) bool {
		y &= s.Mask()
		return s.Hinv(s.H(y)) == y && s.H(s.Hinv(y)) == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHinvInvertsHAllWidths(t *testing.T) {
	for n := uint(MinBits); n <= 16; n++ {
		s := New(n)
		for y := uint64(0); y < 1<<n; y++ {
			if s.Hinv(s.H(y)) != y {
				t.Fatalf("n=%d: Hinv(H(%d)) = %d", n, y, s.Hinv(s.H(y)))
			}
		}
	}
}

func TestNewPanicsOutOfRange(t *testing.T) {
	for _, n := range []uint{0, 1, 31, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestSplitRoundTrip(t *testing.T) {
	s := New(10)
	f := func(v uint64) bool {
		v3, v2, v1 := s.Split(v)
		return v == (v3<<20)|(v2<<10)|v1 && v1 < 1<<10 && v2 < 1<<10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndicesInRange(t *testing.T) {
	s := New(12)
	idx := make([]uint64, 7)
	f := func(v uint64) bool {
		s.Indices(idx, v)
		for _, i := range idx {
			if i > s.Mask() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexPanicsOnNegativeBank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Index(-1, v) did not panic")
		}
	}()
	New(8).Index(-1, 0)
}

// TestEqualV2NeverCollides verifies the strongest exact dispersion
// property of the family: two vectors with the same V2 but different V1
// never collide in bank 0 or bank 2, because those indices reduce to a
// bijection of V1 XORed with a V2-dependent constant.
func TestEqualV2NeverCollides(t *testing.T) {
	for _, n := range []uint{2, 3, 4, 5, 6} {
		s := New(n)
		for v2 := uint64(0); v2 < 1<<n; v2++ {
			seen0 := make(map[uint64]bool)
			seen2 := make(map[uint64]bool)
			for v1 := uint64(0); v1 < 1<<n; v1++ {
				v := (v2 << n) | v1
				if i0 := s.F0(v); seen0[i0] {
					t.Fatalf("n=%d v2=%d: F0 collision within equal-V2 family", n, v2)
				} else {
					seen0[i0] = true
				}
				if i2 := s.F2(v); seen2[i2] {
					t.Fatalf("n=%d v2=%d: F2 collision within equal-V2 family", n, v2)
				} else {
					seen2[i2] = true
				}
			}
		}
	}
}

// TestEqualV1NeverCollidesF1F2 is the symmetric property for vectors
// sharing V1: F1 reduces to Hinv(V2) ^ V2 ^ const and F2 to
// H(V2) ^ V2 ^ const, both of which are bijections of V2 whenever
// (I + H) is invertible over GF(2). The test first determines whether
// (I + H) is invertible for the width under test and only then asserts
// collision-freedom, so it documents exactly when the property holds.
func TestEqualV1NeverCollidesF1F2(t *testing.T) {
	for _, n := range []uint{2, 3, 4, 5, 6, 7, 8} {
		s := New(n)
		injectiveXorH := true
		seen := make(map[uint64]bool)
		for y := uint64(0); y < 1<<n; y++ {
			x := y ^ s.H(y)
			if seen[x] {
				injectiveXorH = false
				break
			}
			seen[x] = true
		}
		if !injectiveXorH {
			t.Logf("n=%d: y^H(y) not injective; skipping exactness assertion", n)
			continue
		}
		for v1 := uint64(0); v1 < 1<<n; v1++ {
			seen2 := make(map[uint64]bool)
			for v2 := uint64(0); v2 < 1<<n; v2++ {
				v := (v2 << n) | v1
				if i2 := s.F2(v); seen2[i2] {
					t.Fatalf("n=%d v1=%d: F2 collision within equal-V1 family", n, v1)
				} else {
					seen2[i2] = true
				}
			}
		}
	}
}

// TestDispersion quantifies the paper's core claim: pairs of vectors
// that conflict in one bank rarely conflict in another. For n=4 we
// enumerate all pairs of 8-bit (V2,V1) combinations and require that
// multi-bank collisions are at least 10x rarer than single-bank ones.
func TestDispersion(t *testing.T) {
	const n = 4
	s := New(n)
	total := uint64(1) << (2 * n)
	single, multi := 0, 0
	for v := uint64(0); v < total; v++ {
		for w := v + 1; w < total; w++ {
			c := 0
			if s.F0(v) == s.F0(w) {
				c++
			}
			if s.F1(v) == s.F1(w) {
				c++
			}
			if s.F2(v) == s.F2(w) {
				c++
			}
			if c >= 1 {
				single++
			}
			if c >= 2 {
				multi++
			}
		}
	}
	if single == 0 {
		t.Fatal("no collisions at all; test misconfigured")
	}
	if ratio := float64(multi) / float64(single); ratio > 0.1 {
		t.Errorf("multi-bank collision ratio = %.3f (multi=%d, single=%d); dispersion too weak",
			ratio, multi, single)
	}
}

// TestBanksAreDistinctFunctions checks that no two of the first seven
// bank index functions are identical, which would silently reduce the
// effective associativity of a multi-bank predictor.
func TestBanksAreDistinctFunctions(t *testing.T) {
	s := New(6)
	const banks = 7
	for a := 0; a < banks; a++ {
		for b := a + 1; b < banks; b++ {
			identical := true
			for v := uint64(0); v < 1<<12; v++ {
				if s.Index(a, v) != s.Index(b, v) {
					identical = false
					break
				}
			}
			if identical {
				t.Errorf("bank functions %d and %d are identical", a, b)
			}
		}
	}
}

// TestHigherBanksDisperse applies the same multi-bank collision bound
// to the extended 5-bank family.
func TestHigherBanksDisperse(t *testing.T) {
	const n = 4
	s := New(n)
	total := uint64(1) << (2 * n)
	idxV := make([]uint64, 5)
	idxW := make([]uint64, 5)
	single, multi := 0, 0
	for v := uint64(0); v < total; v++ {
		s.Indices(idxV, v)
		for w := v + 1; w < total; w++ {
			s.Indices(idxW, w)
			c := 0
			for k := 0; k < 5; k++ {
				if idxV[k] == idxW[k] {
					c++
				}
			}
			if c >= 1 {
				single++
			}
			if c >= 3 { // majority of 5
				multi++
			}
		}
	}
	if single == 0 {
		t.Fatal("no collisions at all; test misconfigured")
	}
	if ratio := float64(multi) / float64(single); ratio > 0.05 {
		t.Errorf("5-bank majority-collision ratio = %.3f; dispersion too weak", ratio)
	}
}

// TestUniformity checks that each index function spreads a linear ramp
// of vectors evenly across the bank (chi-squared on bucket counts).
func TestUniformity(t *testing.T) {
	const n = 8
	s := New(n)
	const samples = 1 << 16
	for k := 0; k < 3; k++ {
		counts := make([]int, 1<<n)
		for v := uint64(0); v < samples; v++ {
			counts[s.Index(k, v)]++
		}
		expected := float64(samples) / (1 << n)
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// 255 degrees of freedom; 99.99th percentile is ~ 350.
		if chi2 > 350 {
			t.Errorf("bank %d: chi2 = %.1f over linear ramp; distribution too uneven", k, chi2)
		}
	}
}

func BenchmarkF0(b *testing.B) {
	s := New(14)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.F0(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}

func BenchmarkIndices3(b *testing.B) {
	s := New(14)
	idx := make([]uint64, 3)
	for i := 0; i < b.N; i++ {
		s.Indices(idx, uint64(i)*0x9e3779b97f4a7c15)
	}
}
