package skewfn_test

import (
	"testing"

	"gskew/internal/refmodel"
	"gskew/internal/skewfn"
)

// FuzzSkewerAgainstSpec drives the optimized skewing functions with
// arbitrary (width, vector) pairs and checks the three invariants that
// must hold for every input: no panic, indices within the bank mask,
// and bit-for-bit agreement with the executable paper spec in
// internal/refmodel (which computes H and Hinv positionally over bit
// strings rather than with shifts and masks).
func FuzzSkewerAgainstSpec(f *testing.F) {
	f.Add(uint(2), uint64(0))
	f.Add(uint(8), uint64(0x1234))
	f.Add(uint(10), uint64(0xFFFFFFFF))
	f.Add(uint(13), uint64(0xDEADBEEFCAFE))
	f.Add(uint(30), uint64(1)<<62)
	f.Fuzz(func(t *testing.T, n uint, v uint64) {
		// Clamp the width into the supported range rather than skipping:
		// the interesting inputs are the vectors, and clamping keeps
		// every fuzz execution productive.
		n = skewfn.MinBits + n%(skewfn.MaxBits-skewfn.MinBits+1)
		s := skewfn.New(n)

		h := s.H(v)
		if h != refmodel.H(v&s.Mask(), n) {
			t.Fatalf("n=%d v=%#x: H=%#x, spec %#x", n, v, h, refmodel.H(v&s.Mask(), n))
		}
		if h&^s.Mask() != 0 {
			t.Fatalf("n=%d v=%#x: H=%#x escapes the mask", n, v, h)
		}
		hinv := s.Hinv(v)
		if hinv != refmodel.Hinv(v&s.Mask(), n) {
			t.Fatalf("n=%d v=%#x: Hinv=%#x, spec %#x", n, v, hinv, refmodel.Hinv(v&s.Mask(), n))
		}
		if s.Hinv(h) != v&s.Mask() || s.H(hinv) != v&s.Mask() {
			t.Fatalf("n=%d v=%#x: H/Hinv do not invert each other", n, v)
		}

		want := []uint64{refmodel.F0(v, n), refmodel.F1(v, n), refmodel.F2(v, n)}
		got := make([]uint64, 3)
		s.Indices(got, v)
		for k := 0; k < 3; k++ {
			if got[k] != want[k] {
				t.Fatalf("n=%d v=%#x bank %d: index %#x, spec %#x", n, v, k, got[k], want[k])
			}
			if got[k] != s.Index(k, v) {
				t.Fatalf("n=%d v=%#x bank %d: Indices and Index disagree", n, v, k)
			}
		}

		// Higher banks have no paper spec, but must still stay in range
		// and never panic.
		wide := make([]uint64, 7)
		s.Indices(wide, v)
		for k, idx := range wide {
			if idx&^s.Mask() != 0 {
				t.Fatalf("n=%d v=%#x bank %d: index %#x escapes the mask", n, v, k, idx)
			}
		}
	})
}
