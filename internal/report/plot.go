package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// PlotOptions controls ASCII rendering of a Figure.
type PlotOptions struct {
	// Width is the plot-area width in columns (default 60).
	Width int
	// Height is the plot-area height in rows (default 16).
	Height int
}

var seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// WritePlot renders the figure as an ASCII chart: x positions spread
// uniformly across the width (the paper's figures use logarithmic size
// axes, which uniform category spacing matches), y scaled to the data
// range, one mark per series with a legend underneath.
func (f *Figure) WritePlot(w io.Writer, opts PlotOptions) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if opts.Width <= 0 {
		opts.Width = 60
	}
	if opts.Height <= 0 {
		opts.Height = 16
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, y := range s.Ys {
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("report: figure %q has no data", f.Title)
	}
	if hi == lo {
		hi = lo + 1 // flat data: give the axis some room
	}
	// Pad the range slightly so extremes don't sit on the frame.
	pad := (hi - lo) * 0.05
	lo -= pad
	hi += pad

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	n := f.xCount()
	xcol := func(i int) int {
		if n == 1 {
			return opts.Width / 2
		}
		return i * (opts.Width - 1) / (n - 1)
	}
	yrow := func(y float64) int {
		frac := (y - lo) / (hi - lo)
		r := int(math.Round(float64(opts.Height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= opts.Height {
			r = opts.Height - 1
		}
		return r
	}
	for si, s := range f.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i, y := range s.Ys {
			grid[yrow(y)][xcol(i)] = mark
		}
	}

	var sb strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&sb, "%s\n", f.Title)
	}
	yLabelW := 8
	for r, row := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&sb, "%*.2f |%s\n", yLabelW, hi, string(row))
		case opts.Height - 1:
			fmt.Fprintf(&sb, "%*.2f |%s\n", yLabelW, lo, string(row))
		default:
			fmt.Fprintf(&sb, "%*s |%s\n", yLabelW, "", string(row))
		}
	}
	sb.WriteString(strings.Repeat(" ", yLabelW+1))
	sb.WriteByte('+')
	sb.WriteString(strings.Repeat("-", opts.Width))
	sb.WriteByte('\n')

	// X-axis endpoint labels.
	left, right := f.xName(0), f.xName(n-1)
	gap := opts.Width - len(left) - len(right)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&sb, "%*s %s%s%s  (%s)\n", yLabelW+1, "", left, strings.Repeat(" ", gap), right, f.XLabel)

	// Legend.
	for si, s := range f.Series {
		fmt.Fprintf(&sb, "%*s %c %s\n", yLabelW+1, "", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// xName returns the label of the i-th x position.
func (f *Figure) xName(i int) string {
	if len(f.XNames) > 0 {
		return f.XNames[i]
	}
	return formatX(f.Xs[i])
}
