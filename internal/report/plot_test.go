package report

import (
	"strings"
	"testing"
)

func plotFigure() *Figure {
	f := NewFigure("Miss rates", "entries", "miss%")
	f.Xs = []float64{1024, 4096, 16384}
	f.AddSeries("gshare", []float64{8, 6, 5})
	f.AddSeries("gskewed", []float64{7.5, 5.5, 4.9})
	return f
}

func TestWritePlotBasics(t *testing.T) {
	var sb strings.Builder
	if err := plotFigure().WritePlot(&sb, PlotOptions{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Miss rates", "gshare", "gskewed", "1k", "16k", "entries", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Default height: 16 plot rows + frame + labels + legend.
	if lines := strings.Count(out, "\n"); lines < 19 {
		t.Errorf("plot has %d lines, expected >= 19:\n%s", lines, out)
	}
}

func TestWritePlotMarkPositions(t *testing.T) {
	// Monotone-decreasing data: the first series' mark in the first
	// column must be higher (smaller row index) than in the last.
	f := NewFigure("t", "x", "y")
	f.Xs = []float64{0, 1}
	f.AddSeries("s", []float64{10, 0})
	var sb strings.Builder
	if err := f.WritePlot(&sb, PlotOptions{Width: 21, Height: 5}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	firstRow, lastRow := -1, -1
	for i, line := range lines {
		if idx := strings.IndexByte(line, '*'); idx >= 0 {
			if firstRow == -1 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow == -1 || firstRow >= lastRow {
		t.Errorf("marks not positioned by value: first=%d last=%d\n%s", firstRow, lastRow, sb.String())
	}
}

func TestWritePlotFlatSeries(t *testing.T) {
	f := NewFigure("flat", "x", "y")
	f.Xs = []float64{1, 2, 3}
	f.AddSeries("c", []float64{5, 5, 5})
	var sb strings.Builder
	if err := f.WritePlot(&sb, PlotOptions{Width: 30, Height: 8}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("flat series not plotted")
	}
}

func TestWritePlotSinglePoint(t *testing.T) {
	f := NewFigure("one", "x", "y")
	f.Xs = []float64{42}
	f.AddSeries("s", []float64{1})
	var sb strings.Builder
	if err := f.WritePlot(&sb, PlotOptions{Width: 20, Height: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestWritePlotInvalidFigure(t *testing.T) {
	f := NewFigure("bad", "x", "y")
	var sb strings.Builder
	if err := f.WritePlot(&sb, PlotOptions{}); err == nil {
		t.Error("invalid figure plotted")
	}
}

func TestWritePlotCategoricalAxis(t *testing.T) {
	f := NewFigure("cat", "benchmark", "miss%")
	f.XNames = []string{"groff", "verilog"}
	f.AddSeries("s", []float64{3, 4})
	var sb strings.Builder
	if err := f.WritePlot(&sb, PlotOptions{Width: 30, Height: 6}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "groff") || !strings.Contains(sb.String(), "verilog") {
		t.Errorf("categorical labels missing:\n%s", sb.String())
	}
}

func TestWritePlotManySeries(t *testing.T) {
	// More series than distinct marks: must cycle without panicking.
	f := NewFigure("many", "x", "y")
	f.Xs = []float64{1, 2}
	for i := 0; i < 10; i++ {
		f.AddSeries(strings.Repeat("s", i+1), []float64{float64(i), float64(i + 1)})
	}
	var sb strings.Builder
	if err := f.WritePlot(&sb, PlotOptions{Width: 20, Height: 10}); err != nil {
		t.Fatal(err)
	}
}
