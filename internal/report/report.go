// Package report renders experiment results as aligned text tables,
// CSV and Markdown, and represents the x/y series behind the paper's
// figures. Experiments produce report values; the cmd tools choose a
// renderer.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple rectangular result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns an empty table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Cells are formatted with %v; float64 values
// are rendered with 2 decimal places and float64 percentages should be
// pre-formatted by the caller if other precision is needed.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = strconv.FormatFloat(v, 'f', 2, 64)
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteText renders an aligned plain-text table.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders the table as CSV (RFC-4180 quoting for cells that
// need it).
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteMarkdown renders the table as a GitHub-flavoured Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "### %s\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Series is one named line of a figure: y values sampled at shared x
// positions (managed by Figure).
type Series struct {
	Name string
	Ys   []float64
}

// Figure is a set of series over a common x axis — the shape behind
// each of the paper's plots.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	XNames []string // optional: categorical x labels (e.g. benchmark names)
	Series []Series
}

// NewFigure returns an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends a named series; its length must match Xs/XNames.
func (f *Figure) AddSeries(name string, ys []float64) *Figure {
	f.Series = append(f.Series, Series{Name: name, Ys: ys})
	return f
}

// xCount returns the number of x positions.
func (f *Figure) xCount() int {
	if len(f.XNames) > 0 {
		return len(f.XNames)
	}
	return len(f.Xs)
}

// Validate checks that all series lengths match the x axis.
func (f *Figure) Validate() error {
	n := f.xCount()
	if n == 0 {
		return fmt.Errorf("report: figure %q has no x axis", f.Title)
	}
	for _, s := range f.Series {
		if len(s.Ys) != n {
			return fmt.Errorf("report: figure %q: series %q has %d points, x axis has %d",
				f.Title, s.Name, len(s.Ys), n)
		}
	}
	return nil
}

// Table converts the figure to a Table: one row per x position, one
// column per series.
func (f *Figure) Table() *Table {
	cols := append([]string{f.XLabel}, make([]string, 0, len(f.Series))...)
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	t := NewTable(f.Title, cols...)
	for i := 0; i < f.xCount(); i++ {
		row := make([]any, 0, len(f.Series)+1)
		if len(f.XNames) > 0 {
			row = append(row, f.XNames[i])
		} else {
			row = append(row, formatX(f.Xs[i]))
		}
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%.3f", s.Ys[i]))
		}
		t.AddRow(row...)
	}
	return t
}

// formatX renders an x value: integers without decimals, powers of two
// >= 1024 in "4k" style.
func formatX(x float64) string {
	if x == float64(int64(x)) {
		n := int64(x)
		if n >= 1024 && n%1024 == 0 {
			return fmt.Sprintf("%dk", n/1024)
		}
		return strconv.FormatInt(n, 10)
	}
	return strconv.FormatFloat(x, 'g', 4, 64)
}

// WriteText renders the figure as an aligned table.
func (f *Figure) WriteText(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	return f.Table().WriteText(w)
}

// WriteCSV renders the figure's data as CSV.
func (f *Figure) WriteCSV(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	return f.Table().WriteCSV(w)
}
