package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tab := NewTable("Results", "name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("b", 42)
	var sb strings.Builder
	if err := tab.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Results", "name", "value", "alpha", "1.50", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Columns align: "alpha" and "b" rows start at column 0; the value
	// column starts at the same offset in both rows.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last2 := lines[len(lines)-2:]
	if strings.Index(last2[0], "1.50") != strings.Index(last2[1], "42") {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("plain", `quo"te`)
	tab.AddRow("with,comma", "x")
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,b\nplain,\"quo\"\"te\"\n\"with,comma\",x\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := NewTable("T", "x", "y")
	tab.AddRow(1, 2)
	var sb strings.Builder
	if err := tab.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### T", "| x | y |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableStringerCells(t *testing.T) {
	tab := NewTable("", "v")
	tab.AddRow(stringer{})
	if tab.Rows[0][0] != "custom" {
		t.Errorf("Stringer cell = %q", tab.Rows[0][0])
	}
}

type stringer struct{}

func (stringer) String() string { return "custom" }

func TestFigureValidate(t *testing.T) {
	f := NewFigure("fig", "x", "y")
	if err := f.Validate(); err == nil {
		t.Error("empty figure validated")
	}
	f.Xs = []float64{1, 2, 3}
	f.AddSeries("s1", []float64{1, 2, 3})
	if err := f.Validate(); err != nil {
		t.Errorf("valid figure rejected: %v", err)
	}
	f.AddSeries("bad", []float64{1})
	if err := f.Validate(); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestFigureTable(t *testing.T) {
	f := NewFigure("Miss rates", "entries", "miss%")
	f.Xs = []float64{1024, 4096}
	f.AddSeries("gshare", []float64{5.5, 4.25})
	f.AddSeries("gskewed", []float64{4.75, 3.5})
	tab := f.Table()
	if len(tab.Rows) != 2 || len(tab.Columns) != 3 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	if tab.Rows[0][0] != "1k" || tab.Rows[1][0] != "4k" {
		t.Errorf("x formatting: %v", tab.Rows)
	}
	if tab.Rows[0][1] != "5.500" {
		t.Errorf("y formatting: %v", tab.Rows[0])
	}
}

func TestFigureCategoricalX(t *testing.T) {
	f := NewFigure("per-benchmark", "benchmark", "miss%")
	f.XNames = []string{"groff", "gs"}
	f.AddSeries("gshare", []float64{3.1, 4.2})
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	tab := f.Table()
	if tab.Rows[0][0] != "groff" {
		t.Errorf("categorical x lost: %v", tab.Rows)
	}
	var sb strings.Builder
	if err := f.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "groff") {
		t.Error("WriteText lost categorical x")
	}
}

func TestFigureWriteCSV(t *testing.T) {
	f := NewFigure("fig", "x", "y")
	f.Xs = []float64{0.5}
	f.AddSeries("s", []float64{1})
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.5") {
		t.Errorf("CSV = %q", sb.String())
	}
	bad := NewFigure("fig", "x", "y")
	if err := bad.WriteCSV(&sb); err == nil {
		t.Error("invalid figure written")
	}
	if err := bad.WriteText(&sb); err == nil {
		t.Error("invalid figure written as text")
	}
}

func TestFormatX(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		12:     "12",
		1024:   "1k",
		4096:   "4k",
		1536:   "1536",
		262144: "256k",
		0.25:   "0.25",
	}
	for in, want := range cases {
		if got := formatX(in); got != want {
			t.Errorf("formatX(%v) = %q, want %q", in, got, want)
		}
	}
}
