package pipeline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	bad := []Model{
		{FetchWidth: 0, MispredictPenalty: 10, InstrPerBranch: 5},
		{FetchWidth: 4, MispredictPenalty: -1, InstrPerBranch: 5},
		{FetchWidth: 4, MispredictPenalty: 10, InstrPerBranch: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d accepted: %+v", i, m)
		}
	}
	good := Model{FetchWidth: 4, MispredictPenalty: 10, InstrPerBranch: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestEvaluateArithmetic(t *testing.T) {
	m := Model{FetchWidth: 4, MispredictPenalty: 10, InstrPerBranch: 5}
	c, err := m.Evaluate(1000, 50)
	if err != nil {
		t.Fatal(err)
	}
	// 5000 instructions at width 4 = 1250 cycles, plus 50 x 10 stalls.
	if c.Instructions != 5000 {
		t.Errorf("Instructions = %v", c.Instructions)
	}
	if c.Cycles != 1250+500 {
		t.Errorf("Cycles = %v", c.Cycles)
	}
	if c.StallCycles != 500 {
		t.Errorf("StallCycles = %v", c.StallCycles)
	}
	if c.WastedSlots != 2000 {
		t.Errorf("WastedSlots = %v", c.WastedSlots)
	}
	if got := c.IPC(); math.Abs(got-5000.0/1750) > 1e-12 {
		t.Errorf("IPC = %v", got)
	}
	if got := c.StallFraction(); math.Abs(got-500.0/1750) > 1e-12 {
		t.Errorf("StallFraction = %v", got)
	}
}

func TestPerfectPredictionIsIdeal(t *testing.T) {
	m := Model{FetchWidth: 8, MispredictPenalty: 20, InstrPerBranch: 4}
	c, err := m.Evaluate(10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.IPC() != 8 {
		t.Errorf("zero-misprediction IPC = %v, want fetch width", c.IPC())
	}
	if c.StallFraction() != 0 {
		t.Error("stall fraction should be 0")
	}
}

func TestEvaluateRejectsImpossibleCounts(t *testing.T) {
	m := Model{FetchWidth: 4, MispredictPenalty: 10, InstrPerBranch: 5}
	if _, err := m.Evaluate(10, 11); err == nil {
		t.Error("mispredicts > branches accepted")
	}
}

func TestIPCMonotoneInMisses(t *testing.T) {
	// Property: more mispredictions never increase IPC.
	m := Model{FetchWidth: 4, MispredictPenalty: 15, InstrPerBranch: 5}
	f := func(n16 uint16, m16 uint16) bool {
		n := int(n16) + 1
		miss := int(m16) % (n + 1)
		if miss >= n {
			miss = n - 1
		}
		a, err := m.Evaluate(n, miss)
		if err != nil {
			return false
		}
		b, err := m.Evaluate(n, miss/2)
		if err != nil {
			return false
		}
		return b.IPC() >= a.IPC()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	m := Model{FetchWidth: 4, MispredictPenalty: 10, InstrPerBranch: 5}
	// Equal miss counts: no speedup.
	s, err := m.Speedup(1000, 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Errorf("equal-miss speedup = %v", s)
	}
	// Fewer misses: speedup > 1 and equals the cycle ratio.
	s, err = m.Speedup(1000, 50, 25)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1750.0 / 1500.0; math.Abs(s-want) > 1e-12 {
		t.Errorf("speedup = %v, want %v", s, want)
	}
	// More misses: slowdown.
	s, err = m.Speedup(1000, 25, 50)
	if err != nil {
		t.Fatal(err)
	}
	if s >= 1 {
		t.Errorf("worse predictor should slow down: %v", s)
	}
}

func TestDeeperPipelinesAmplify(t *testing.T) {
	// The paper's motivation: the same accuracy gap matters more as
	// the penalty (pipeline depth) grows.
	shallow := Model{FetchWidth: 4, MispredictPenalty: 5, InstrPerBranch: 5}
	deep := Model{FetchWidth: 4, MispredictPenalty: 20, InstrPerBranch: 5}
	s1, err := shallow.Speedup(100000, 6000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := deep.Speedup(100000, 6000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if s2 <= s1 {
		t.Errorf("deep-pipeline speedup %v not larger than shallow %v", s2, s1)
	}
}

func TestEvaluateRejectsInvalidModel(t *testing.T) {
	m := Model{}
	if _, err := m.Evaluate(10, 1); err == nil {
		t.Error("invalid model evaluated")
	}
	if _, err := m.Speedup(10, 2, 1); err == nil {
		t.Error("invalid model speedup computed")
	}
}
