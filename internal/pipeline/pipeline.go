// Package pipeline converts misprediction rates into front-end
// performance, quantifying the paper's motivation: "in processors that
// speculatively fetch and issue multiple instructions per cycle to
// deep pipelines, ... a mispredicted branch can result in substantial
// amounts of wasted work and become a bottleneck to exploiting
// instruction-level parallelism" (section 1).
//
// The model is deliberately simple — an ideal wide front end whose
// only stall source is branch mispredictions — because that isolates
// the quantity the paper studies. It still captures the two effects
// that matter: the misprediction *penalty* scales with pipeline depth,
// and the *wasted fetch work* scales with both depth and width.
package pipeline

import "fmt"

// Model parameterises an idealised speculative front end.
type Model struct {
	// FetchWidth is instructions fetched per cycle (> 0).
	FetchWidth int
	// MispredictPenalty is the pipeline-refill cost of one
	// misprediction, in cycles (>= 0). Deeper pipelines = larger.
	MispredictPenalty int
	// InstrPerBranch is the mean number of instructions per
	// conditional branch in the workload (> 0); integer code is
	// typically 4-6.
	InstrPerBranch float64
}

// Validate reports a configuration error, or nil.
func (m Model) Validate() error {
	if m.FetchWidth <= 0 {
		return fmt.Errorf("pipeline: fetch width %d must be positive", m.FetchWidth)
	}
	if m.MispredictPenalty < 0 {
		return fmt.Errorf("pipeline: penalty %d must be non-negative", m.MispredictPenalty)
	}
	if m.InstrPerBranch <= 0 {
		return fmt.Errorf("pipeline: instructions/branch %g must be positive", m.InstrPerBranch)
	}
	return nil
}

// Cost is the modelled outcome of running a branch stream.
type Cost struct {
	// Instructions is the useful-instruction estimate.
	Instructions float64
	// Cycles is total front-end cycles including misprediction stalls.
	Cycles float64
	// StallCycles is the misprediction-induced share of Cycles.
	StallCycles float64
	// WastedSlots is fetch slots discarded on wrong paths.
	WastedSlots float64
}

// IPC returns useful instructions per cycle.
func (c Cost) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return c.Instructions / c.Cycles
}

// StallFraction returns the share of cycles lost to mispredictions.
func (c Cost) StallFraction() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return c.StallCycles / c.Cycles
}

// Evaluate models a run with the given conditional-branch count and
// misprediction count.
func (m Model) Evaluate(conditionals, mispredicts int) (Cost, error) {
	if err := m.Validate(); err != nil {
		return Cost{}, err
	}
	if mispredicts > conditionals {
		return Cost{}, fmt.Errorf("pipeline: %d mispredicts exceed %d branches", mispredicts, conditionals)
	}
	instr := float64(conditionals) * m.InstrPerBranch
	baseCycles := instr / float64(m.FetchWidth)
	stall := float64(mispredicts) * float64(m.MispredictPenalty)
	return Cost{
		Instructions: instr,
		Cycles:       baseCycles + stall,
		StallCycles:  stall,
		WastedSlots:  stall * float64(m.FetchWidth),
	}, nil
}

// Speedup returns how much faster a run with the improved predictor is
// than with the baseline, for the same instruction stream:
// cycles(baseline) / cycles(improved).
func (m Model) Speedup(conditionals, baselineMisses, improvedMisses int) (float64, error) {
	base, err := m.Evaluate(conditionals, baselineMisses)
	if err != nil {
		return 0, err
	}
	impr, err := m.Evaluate(conditionals, improvedMisses)
	if err != nil {
		return 0, err
	}
	if impr.Cycles == 0 {
		return 0, fmt.Errorf("pipeline: degenerate zero-cycle run")
	}
	return base.Cycles / impr.Cycles, nil
}
