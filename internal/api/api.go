// Package api is the typed wire contract of the prediction service:
// the single source of truth for every request body, response body and
// error shape that travels between predserved nodes, the typed Go
// client (internal/client), the load generator (cmd/predload), the
// smoke scripts and the tests. The server encodes these types, the
// client decodes them, and nothing else hand-writes /v1 JSON.
//
// # Endpoints
//
// Public surface (stable, versioned under /v1):
//
//	POST   /v1/simulate             SimulateRequest  -> SimulateResponse
//	POST   /v1/predict              PredictRequest   -> PredictResponse
//	DELETE /v1/predict/{session}    -> SessionEndResponse
//	POST   /v1/traces               raw trace bytes  -> TraceIngestResponse
//	GET    /v1/traces/{hash}        -> canonical columnar trace bytes
//	GET    /v1/specs                -> SpecsResponse
//	GET    /v1/health               -> Health
//	GET    /healthz                 alias of /v1/health (legacy probes)
//
// Cluster-internal surface (node-to-node; same error envelope):
//
//	GET    /internal/v1/cells/{key}   -> Cell (a stored simulation cell)
//	PUT    /internal/v1/cells/{key}   Cell -> CellOfferResponse
//	GET    /internal/v1/traces/{hash} -> canonical columnar trace bytes
//	GET    /internal/v1/ring          -> RingInfo
//	POST   /internal/v1/topology      TopologyUpdate -> RingInfo
//
// # Error envelope
//
// Every non-2xx response from every endpoint above carries one JSON
// shape:
//
//	{"error": {"code": "bad_spec", "message": "spec 0: ..."}}
//
// Code is a stable machine-readable identifier (the Code* constants);
// Message is human-oriented and free to change. Clients dispatch on
// Code, never on Message or on HTTP status alone. The typed client
// surfaces the envelope as *api.Error.
package api

import (
	"errors"
	"fmt"

	"gskew/internal/sim"
	"gskew/internal/store"
)

// Stable machine-readable error codes. These are wire contract: a code,
// once shipped, keeps its meaning. New failure modes get new codes.
const (
	// CodeBadRequest: the request body is malformed (not JSON, unknown
	// fields, structurally invalid) or violates a request-level limit.
	CodeBadRequest = "bad_request"
	// CodeBadSpec: a predictor spec string does not parse or does not
	// construct (bad family, key, or parameter range).
	CodeBadSpec = "bad_spec"
	// CodeBadWorkload: the workload selection is invalid (unknown
	// benchmark, scale out of range, conflicting or missing workload
	// fields).
	CodeBadWorkload = "bad_workload"
	// CodeBadTrace: an uploaded trace body does not decode in any
	// supported serialisation.
	CodeBadTrace = "bad_trace"
	// CodeNoSuchTrace: the referenced trace_sha256 is not pooled on
	// this node (nor fetchable from its cluster owner).
	CodeNoSuchTrace = "no_such_trace"
	// CodeNoSuchSession: the predict session id does not exist and no
	// spec was sent to create it.
	CodeNoSuchSession = "no_such_session"
	// CodeSessionConflict: the session exists but is pinned to a
	// different predictor spec.
	CodeSessionConflict = "session_conflict"
	// CodeQueueFull: the simulation scheduler stayed saturated past the
	// request's queue timeout. Retryable.
	CodeQueueFull = "queue_full"
	// CodeBodyTooLarge: the request body exceeds the server's limit.
	CodeBodyTooLarge = "body_too_large"
	// CodeNoSuchCell: (cluster-internal) the requested cell key is not
	// in the owner's store; the asker should simulate locally.
	CodeNoSuchCell = "no_such_cell"
	// CodeWrongOwner: (cluster-internal) the receiving node does not
	// own the key/hash under its current ring — the sender's topology
	// is stale. The asker should fall back to local work.
	CodeWrongOwner = "wrong_owner"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
	// CodeUnknown is used by clients for a non-2xx response whose body
	// does not carry a decodable envelope. Never sent by the server.
	CodeUnknown = "unknown"
)

// Error is the typed form of the wire error envelope, carried across
// the stack: handlers construct it (the server renders it as the
// envelope plus its Status), and the client decodes every non-2xx
// response back into it.
type Error struct {
	// Status is the HTTP status the error travels with. It is
	// transport framing, not identity: dispatch on Code.
	Status int `json:"-"`
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the human-oriented description.
	Message string `json:"message"`
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("%s (http %d): %s", e.Code, e.Status, e.Message)
}

// Errorf builds a typed Error.
func Errorf(status int, code, format string, args ...any) *Error {
	return &Error{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// ErrCode extracts the stable code from any error chain containing an
// *Error; "" when there is none.
func ErrCode(err error) string {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return ""
}

// IsCode reports whether err carries the given stable code.
func IsCode(err error, code string) bool { return ErrCode(err) == code }

// ErrorEnvelope is the JSON body of every non-2xx response.
type ErrorEnvelope struct {
	Error Error `json:"error"`
}

// Options is the result-relevant simulation option subset; it is both
// a request field and a cache-key component (store.Options verbatim —
// one normalization, one wire form).
type Options = store.Options

// Result is one simulation outcome (sim.Result verbatim; round-trips
// through JSON bit-identically).
type Result = sim.Result

// SimulateRequest is the wire form of POST /v1/simulate. The workload
// is exactly one of: a named benchmark (Bench, with optional Scale and
// Seed), an inlined trace in any supported binary serialisation
// (TraceB64), or a pooled trace addressed by content hash
// (TraceSHA256).
type SimulateRequest struct {
	// Specs are predictor spec strings ("family:key=value,..."); the
	// sweep runs all of them in one single-pass simulation over the
	// shared trace decoding. They are canonicalised server-side, so
	// equivalent spellings share result-cache cells.
	Specs []string `json:"specs"`

	Bench string  `json:"bench,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	Seed  uint64  `json:"seed,omitempty"`

	TraceB64 string `json:"trace_b64,omitempty"`

	// TraceSHA256 addresses a trace already in the segment pool. The
	// response is byte-identical to inlining the same trace.
	TraceSHA256 string `json:"trace_sha256,omitempty"`

	Options Options `json:"options,omitempty"`
}

// SimulateCell is one per-spec result row of a sweep.
type SimulateCell struct {
	Spec        string `json:"spec"`
	Key         string `json:"key"`
	StorageBits int    `json:"storage_bits"`
	Result      Result `json:"result"`
}

// SimulateResponse is the wire form of a completed sweep. It carries
// no cold/cached/peer-filled distinction — that lives in the X-Cache
// header — so repeated and cross-node requests are byte-identical.
type SimulateResponse struct {
	Workload WorkloadInfo   `json:"workload"`
	Options  Options        `json:"options"`
	Results  []SimulateCell `json:"results"`
}

// WorkloadInfo names the trace a sweep ran over.
type WorkloadInfo struct {
	Bench       string  `json:"bench,omitempty"`
	Scale       float64 `json:"scale,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	TraceSHA256 string  `json:"trace_sha256"`
	Branches    int     `json:"branches"`
}

// Branch is one branch event of a predict stream. Unconditional
// branches shift the session's global history without being predicted.
type Branch struct {
	PC     uint64 `json:"pc"`
	Taken  bool   `json:"taken"`
	Uncond bool   `json:"uncond,omitempty"`
}

// PredictRequest is the wire form of POST /v1/predict: a batch of
// branch events appended to a session-pinned predictor instance. The
// first request of a session must carry the spec; later requests may
// omit it (and are rejected with CodeSessionConflict if they name a
// different one — a session is one predictor).
type PredictRequest struct {
	Session  string   `json:"session"`
	Spec     string   `json:"spec,omitempty"`
	Branches []Branch `json:"branches"`
	// ReturnPredictions asks for the per-branch predicted directions.
	// It forces the generic per-branch path for this batch, so leave
	// it off for throughput.
	ReturnPredictions bool `json:"return_predictions,omitempty"`
}

// PredictResponse reports the batch and cumulative session accounting.
type PredictResponse struct {
	Session           string `json:"session"`
	Spec              string `json:"spec"`
	Conditionals      int    `json:"conditionals"`
	Mispredicts       int    `json:"mispredicts"`
	TotalConditionals int    `json:"total_conditionals"`
	TotalMispredicts  int    `json:"total_mispredicts"`
	Predictions       []bool `json:"predictions,omitempty"`
}

// SessionEndResponse is the wire form of DELETE /v1/predict/{session}.
type SessionEndResponse struct {
	Session string `json:"session"`
	Status  string `json:"status"`
}

// TraceIngestResponse is the wire form of a completed POST /v1/traces.
// There is deliberately no created/timestamp field: responses must not
// depend on whether this request or an earlier one pooled the segment.
type TraceIngestResponse struct {
	TraceSHA256 string `json:"trace_sha256"`
	Branches    int    `json:"branches"`
}

// SpecFamily is one row of the /v1/specs grammar listing.
type SpecFamily struct {
	Family  string   `json:"family"`
	Keys    []string `json:"keys"`
	Example string   `json:"example"`
}

// SpecsResponse is the wire form of GET /v1/specs: everything a client
// needs to construct requests.
type SpecsResponse struct {
	Families      []SpecFamily `json:"families"`
	Benchmarks    []string     `json:"benchmarks"`
	Options       []string     `json:"options"`
	SchemaVersion int          `json:"schema_version"`
}

// Health is the wire form of GET /v1/health (and its /healthz alias):
// liveness plus per-subsystem readiness detail.
type Health struct {
	Status   string       `json:"status"`
	UptimeMS int64        `json:"uptime_ms"`
	Store    StoreHealth  `json:"store"`
	Sched    SchedHealth  `json:"scheduler"`
	Sessions int          `json:"sessions"`
	Pool     PoolHealth   `json:"trace_pool"`
	Cluster  *ClusterInfo `json:"cluster,omitempty"`
}

// StoreHealth describes the result store tiers.
type StoreHealth struct {
	MemEntries int  `json:"mem_entries"`
	Disk       bool `json:"disk"`
}

// SchedHealth describes the simulation scheduler.
type SchedHealth struct {
	QueueDepth int64 `json:"queue_depth"`
}

// PoolHealth describes the trace segment pool tiers.
type PoolHealth struct {
	MemSegments int  `json:"mem_segments"`
	Disk        bool `json:"disk"`
}

// ClusterInfo describes this node's view of the cluster: membership
// and the ring generation its ownership decisions are made under. It
// is the same shape as RingInfo (health embeds what the ring endpoint
// serves).
type ClusterInfo = RingInfo

// Cell is one stored simulation cell as it travels node-to-node on the
// peer-fill path (store.Entry verbatim: the recorded inputs re-derive
// the key, so a receiver can validate before trusting it).
type Cell = store.Entry

// CellOfferResponse acknowledges a PUT /internal/v1/cells/{key}.
type CellOfferResponse struct {
	Key    string `json:"key"`
	Stored bool   `json:"stored"`
}

// RingInfo is the wire form of GET /internal/v1/ring and the response
// to a topology update.
type RingInfo struct {
	Self     string   `json:"self"`
	Gen      uint64   `json:"gen"`
	Replicas int      `json:"replicas"`
	Nodes    []string `json:"nodes"`
}

// TopologyUpdate is the wire form of POST /internal/v1/topology: the
// complete replacement node set (base URLs, which double as node
// identities) and replication factor. Applying it bumps the receiving
// node's ring generation; the sender is responsible for delivering the
// same update to every node (static-topology discipline).
type TopologyUpdate struct {
	Nodes    []string `json:"nodes"`
	Replicas int      `json:"replicas"`
}
