package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"gskew/internal/obs"
	"gskew/internal/predictor"
	"gskew/internal/trace"
)

// TestRecorderTotalsMatchResult is the satellite invariant: the
// interval series captured during a run must sum exactly to the scalar
// Result counts, on both the compiled-kernel and generic paths, with
// and without mid-run flushes.
func TestRecorderTotalsMatchResult(t *testing.T) {
	branches := manyTestTrace(30000)
	preds := func() []predictor.Predictor {
		return []predictor.Predictor{
			predictor.MustParseSpec("gshare:n=8,k=6,ctr=2"),
			predictor.MustParseSpec("gskewed:n=6,k=5,banks=3,ctr=2,policy=partial"),
			predictor.MustParseSpec("2bcgskew:n=7,ks=3,k=9"),
		}
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"kernel", Options{}},
		{"generic", Options{NoKernel: true}},
		{"kernel-flush", Options{FlushEvery: 3000}},
		{"generic-flush", Options{NoKernel: true, FlushEvery: 3000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ps := preds()
			rec := obs.NewRecorder(5000, "gshare", "gskewed", "2bcgskew")
			opts := tc.opts
			opts.Recorder = rec
			results, err := RunManyBranches(branches, ps, opts)
			if err != nil {
				t.Fatal(err)
			}
			series := rec.Series()
			if len(series) != len(ps) {
				t.Fatalf("got %d series, want %d", len(series), len(ps))
			}
			for i, s := range series {
				conds, mis := s.Totals()
				if conds != results[i].Conditionals {
					t.Errorf("%s: interval conds sum %d != Result.Conditionals %d",
						s.Label, conds, results[i].Conditionals)
				}
				if mis != results[i].Mispredicts {
					t.Errorf("%s: interval mispredict sum %d != Result.Mispredicts %d",
						s.Label, mis, results[i].Mispredicts)
				}
				if len(s.Points) < 2 {
					t.Errorf("%s: want multiple intervals over %d conds, got %d",
						s.Label, conds, len(s.Points))
				}
			}
		})
	}
}

// TestRecorderCurveShowsWarmup sanity-checks the purpose of the curve
// on a trace with a trivial steady state: periodic loop branches that
// a bimodal table predicts near-perfectly once warm. The first interval
// must carry the cold-start mispredictions and later intervals must
// settle below it.
func TestRecorderCurveShowsWarmup(t *testing.T) {
	tr := make([]trace.Branch, 0, 20000)
	for i := 0; i < 20000; i++ {
		pc := 0x400000 + uint64(i%64)*4
		tr = append(tr, trace.Branch{PC: pc, Taken: i%97 != 0, Kind: trace.Conditional})
	}
	rec := obs.NewRecorder(2000, "bimodal")
	_, err := RunManyBranches(tr, []predictor.Predictor{
		predictor.MustParseSpec("bimodal:n=10,ctr=2"),
	}, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	pts := rec.Series()[0].Points
	if len(pts) < 3 {
		t.Fatalf("want >= 3 intervals, got %d", len(pts))
	}
	first, steady := pts[0], pts[len(pts)-1]
	if first.MissPct <= steady.MissPct {
		t.Errorf("no warmup visible: first interval %.3f%%, steady %.3f%%",
			first.MissPct, steady.MissPct)
	}
}

// TestResultJSONRoundTrip checks MarshalJSON emits the stable wire
// form and UnmarshalJSON inverts it.
func TestResultJSONRoundTrip(t *testing.T) {
	r := Result{Conditionals: 1000, Mispredicts: 125, FirstUses: 7,
		Unconditionals: 300, Flushes: 2}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"conditionals":1000`, `"mispredicts":125`,
		`"first_uses":7`, `"unconditionals":300`, `"flushes":2`, `"miss_pct":12.5`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("marshalled result %s missing %s", data, key)
		}
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("round trip: got %+v, want %+v", back, r)
	}
	// Zero-valued optional fields stay off the wire.
	data, err = json.Marshal(Result{Conditionals: 10, Mispredicts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "first_uses") || strings.Contains(string(data), "flushes") {
		t.Errorf("zero optional fields serialized: %s", data)
	}
}

// TestObsCountersTrackRun checks the package counters advance by the
// run's totals when metrics are enabled, and stay frozen when not.
func TestObsCountersTrackRun(t *testing.T) {
	branches := manyTestTrace(8000)
	p := func() []predictor.Predictor {
		return []predictor.Predictor{predictor.MustParseSpec("gshare:n=8,k=6,ctr=2")}
	}

	base := mSteps.Value()
	if _, err := RunManyBranches(branches, p(), Options{}); err != nil {
		t.Fatal(err)
	}
	if got := mSteps.Value(); got != base {
		t.Errorf("sim.steps advanced while metrics disabled: %d -> %d", base, got)
	}

	obs.Enable()
	defer obs.Disable()
	baseSteps, baseMis := mSteps.Value(), mMispredicts.Value()
	res, err := RunManyBranches(branches, p(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mSteps.Value()-baseSteps, int64(res[0].Conditionals); got != want {
		t.Errorf("sim.steps advanced by %d, want %d", got, want)
	}
	if got, want := mMispredicts.Value()-baseMis, int64(res[0].Mispredicts); got != want {
		t.Errorf("sim.mispredicts advanced by %d, want %d", got, want)
	}
}
