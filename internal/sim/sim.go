// Package sim drives predictors over branch traces and aggregates
// misprediction statistics, implementing the paper's measurement
// methodology: the global-history register includes unconditional
// branches; only conditional branches are predicted and counted; and
// (optionally, for ideal-table experiments) first uses of a substream
// are excluded from the misprediction count.
package sim

import (
	"errors"
	"fmt"
	"io"

	"gskew/internal/history"
	"gskew/internal/predictor"
	"gskew/internal/trace"
)

// Result aggregates one simulation run.
type Result struct {
	// Conditionals is the number of conditional branches predicted.
	Conditionals int
	// Mispredicts is the number of counted mispredictions.
	Mispredicts int
	// FirstUses is the number of conditional references excluded from
	// counting because the predictor had never seen the substream
	// (only nonzero when SkipFirstUse is set and the predictor tracks
	// first uses).
	FirstUses int
	// Unconditionals is the number of history-only events processed.
	Unconditionals int
	// Flushes is how many times the predictor state was flushed
	// (see Options.FlushEvery).
	Flushes int
}

// MissRate returns mispredictions per counted conditional branch.
// Following the paper's Table 2 accounting, excluded first uses stay
// in the denominator (they are dynamic conditional branches that were
// not counted as mispredictions).
func (r Result) MissRate() float64 {
	if r.Conditionals == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Conditionals)
}

// MissPercent returns MissRate x 100, as the paper's figures plot.
func (r Result) MissPercent() float64 { return 100 * r.MissRate() }

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("cond=%d mispred=%d (%.2f%%)", r.Conditionals, r.Mispredicts, r.MissPercent())
}

// Options adjusts a run.
type Options struct {
	// SkipFirstUse excludes first-time (address, history) references
	// from the misprediction count, if the predictor implements
	// predictor.FirstUseTracker. Used for unaliased-table experiments
	// (Table 2) per the paper's methodology.
	SkipFirstUse bool
	// HistoryBits overrides the history register length. Zero means
	// use the predictor's own HistoryBits.
	HistoryBits uint
	// FlushEvery, when positive, resets the predictor (and the history
	// register) every FlushEvery conditional branches — modelling the
	// total predictor-state loss of a context switch in a processor
	// that does not preserve predictor state across processes (the
	// regime studied by Evers et al., the paper's reference [4]).
	FlushEvery int
}

// Run streams src through p and returns the aggregate result. The
// history register is owned by the runner so that every predictor
// organisation observes the identical stream.
func Run(src trace.Source, p predictor.Predictor, opts Options) (Result, error) {
	k := opts.HistoryBits
	if k == 0 {
		k = p.HistoryBits()
	}
	ghr := history.NewGlobal(k)
	tracker, trackFirst := p.(predictor.FirstUseTracker)
	trackFirst = trackFirst && opts.SkipFirstUse
	stepper, _ := p.(predictor.Stepper)

	var res Result
	for {
		b, err := src.Next()
		if errors.Is(err, io.EOF) {
			return res, nil
		}
		if err != nil {
			return res, fmt.Errorf("sim: reading trace: %w", err)
		}
		switch b.Kind {
		case trace.Conditional:
			if opts.FlushEvery > 0 && res.Conditionals > 0 && res.Conditionals%opts.FlushEvery == 0 {
				p.Reset()
				ghr.Reset()
				res.Flushes++
			}
			res.Conditionals++
			hist := ghr.Bits()
			counted := true
			if trackFirst && !tracker.Seen(b.PC, hist) {
				res.FirstUses++
				counted = false
			}
			if stepper != nil {
				// Fused fast path; Predict is state-free, so always
				// stepping is equivalent to predict-when-counted.
				if stepper.Step(b.PC, hist, b.Taken) != b.Taken && counted {
					res.Mispredicts++
				}
			} else {
				if counted && p.Predict(b.PC, hist) != b.Taken {
					res.Mispredicts++
				}
				p.Update(b.PC, hist, b.Taken)
			}
			ghr.Shift(b.Taken)
		case trace.Unconditional:
			res.Unconditionals++
			ghr.Shift(true)
		default:
			return res, fmt.Errorf("sim: unknown branch kind %d", b.Kind)
		}
	}
}

// RunBranches is Run over an in-memory trace.
func RunBranches(branches []trace.Branch, p predictor.Predictor, opts Options) (Result, error) {
	return Run(trace.NewSliceSource(branches), p, opts)
}

// manyCell is the per-predictor state of a RunMany pass. Only the
// counts that differ between predictors live here; the event counts
// (conditionals, unconditionals, flushes) are identical across cells
// by construction and are tracked once in the runner.
type manyCell struct {
	p          predictor.Predictor
	stepper    predictor.Stepper // non-nil when p has the fused fast path
	tracker    predictor.FirstUseTracker
	mask       uint64
	mispredict int
	firstUse   int
}

// manyRunner drives several predictors over one decoding of a trace.
// It owns a single history register of the longest length any predictor
// consumes; each predictor sees that register masked to its own length,
// which is exactly the value a dedicated register of that length would
// hold, so per-predictor results are bit-identical to sequential Run.
type manyRunner struct {
	cells   []manyCell
	ghr     *history.Global
	cond    int // shared conditional count (identical across predictors)
	uncond  int
	flushes int
	flush   int
	track   bool // at least one cell tracks first uses
}

func newManyRunner(preds []predictor.Predictor, opts Options) *manyRunner {
	r := &manyRunner{cells: make([]manyCell, len(preds)), flush: opts.FlushEvery}
	var maxK uint
	for i, p := range preds {
		k := opts.HistoryBits
		if k == 0 {
			k = p.HistoryBits()
		}
		if k > maxK {
			maxK = k
		}
		c := &r.cells[i]
		c.p = p
		c.stepper, _ = p.(predictor.Stepper)
		c.mask = uint64(1)<<k - 1
		if t, ok := p.(predictor.FirstUseTracker); ok && opts.SkipFirstUse {
			c.tracker = t
			r.track = true
		}
	}
	r.ghr = history.NewGlobal(maxK)
	return r
}

func (r *manyRunner) step(b trace.Branch) error {
	switch b.Kind {
	case trace.Conditional:
		if r.flush > 0 && r.cond > 0 && r.cond%r.flush == 0 {
			for i := range r.cells {
				r.cells[i].p.Reset()
			}
			r.flushes++
			r.ghr.Reset()
		}
		r.cond++
		hist := r.ghr.Bits()
		for i := range r.cells {
			c := &r.cells[i]
			h := hist & c.mask
			counted := true
			if c.tracker != nil && !c.tracker.Seen(b.PC, h) {
				c.firstUse++
				counted = false
			}
			if c.stepper != nil {
				if c.stepper.Step(b.PC, h, b.Taken) != b.Taken && counted {
					c.mispredict++
				}
			} else {
				if counted && c.p.Predict(b.PC, h) != b.Taken {
					c.mispredict++
				}
				c.p.Update(b.PC, h, b.Taken)
			}
		}
		r.ghr.Shift(b.Taken)
	case trace.Unconditional:
		r.uncond++
		r.ghr.Shift(true)
	default:
		return fmt.Errorf("sim: unknown branch kind %d", b.Kind)
	}
	return nil
}

func (r *manyRunner) results() []Result {
	out := make([]Result, len(r.cells))
	for i := range r.cells {
		out[i] = Result{
			Conditionals:   r.cond,
			Mispredicts:    r.cells[i].mispredict,
			FirstUses:      r.cells[i].firstUse,
			Unconditionals: r.uncond,
			Flushes:        r.flushes,
		}
	}
	return out
}

// RunMany streams src once and drives every predictor per event,
// returning per-predictor results bit-identical to len(preds)
// sequential Run calls over the same trace. The trace is decoded once
// and a single history register (of the longest history any predictor
// consumes) is shared, so the cost of a sweep is one trace iteration
// plus the predictors' own work — O(events + predictors x events_cond)
// instead of O(predictors x events).
func RunMany(src trace.Source, preds []predictor.Predictor, opts Options) ([]Result, error) {
	if len(preds) == 0 {
		return nil, nil
	}
	r := newManyRunner(preds, opts)
	if ss, ok := src.(*trace.SliceSource); ok {
		// Fast path: iterate the materialised slice directly, skipping
		// the per-event interface call and io.EOF check.
		branches := ss.Drain()
		for i := range branches {
			if err := r.step(branches[i]); err != nil {
				return nil, err
			}
		}
		return r.results(), nil
	}
	for {
		b, err := src.Next()
		if errors.Is(err, io.EOF) {
			return r.results(), nil
		}
		if err != nil {
			return nil, fmt.Errorf("sim: reading trace: %w", err)
		}
		if err := r.step(b); err != nil {
			return nil, err
		}
	}
}

// RunManyBranches is RunMany over an in-memory trace.
func RunManyBranches(branches []trace.Branch, preds []predictor.Predictor, opts Options) ([]Result, error) {
	return RunMany(trace.NewSliceSource(branches), preds, opts)
}

// Compare runs the same in-memory trace through several predictors and
// returns per-predictor results in order. It is a single RunMany pass:
// the trace is decoded once and every predictor observes the identical
// history stream, with results bit-identical to per-predictor
// sequential runs.
func Compare(branches []trace.Branch, preds []predictor.Predictor, opts Options) ([]Result, error) {
	results, err := RunManyBranches(branches, preds, opts)
	if err != nil {
		return nil, fmt.Errorf("sim: comparing %d predictors: %w", len(preds), err)
	}
	return results, nil
}
