// Package sim drives predictors over branch traces and aggregates
// misprediction statistics, implementing the paper's measurement
// methodology: the global-history register includes unconditional
// branches; only conditional branches are predicted and counted; and
// (optionally, for ideal-table experiments) first uses of a substream
// are excluded from the misprediction count.
//
// The runner is batched: trace events are pulled in blocks (via
// trace.BatchSource when the source supports it), conditional branches
// are staged into a buffer of (PC, history, outcome) steps, and each
// predictor consumes whole blocks at a time. Predictors whose
// organisation internal/kernel recognizes are driven through a
// compiled kernel — one interface call per block instead of two per
// branch — and everything else falls back to the generic
// Predict/Update (or fused Step) path. Both paths are bit-identical by
// construction: kernels share the predictor's own counter storage and
// are checked against the executable paper specification by cmd/verify.
package sim

import (
	"errors"
	"fmt"
	"io"

	"gskew/internal/kernel"
	"gskew/internal/obs"
	"gskew/internal/predictor"
	"gskew/internal/trace"
)

// Package-level run telemetry, registered in the default obs registry.
// The counters are only mutated at block granularity (every batchSize
// conditionals), so the hot step loops stay untouched; when metrics
// are disabled (the default) each Add is a single atomic load.
var (
	mBlocks      = obs.NewCounter("sim.blocks")
	mSteps       = obs.NewCounter("sim.steps")
	mMispredicts = obs.NewCounter("sim.mispredicts")
)

// Result aggregates one simulation run.
type Result struct {
	// Conditionals is the number of conditional branches predicted.
	Conditionals int
	// Mispredicts is the number of counted mispredictions.
	Mispredicts int
	// FirstUses is the number of conditional references excluded from
	// counting because the predictor had never seen the substream
	// (only nonzero when SkipFirstUse is set and the predictor tracks
	// first uses).
	FirstUses int
	// Unconditionals is the number of history-only events processed.
	Unconditionals int
	// Flushes is how many times the predictor state was flushed
	// (see Options.FlushEvery).
	Flushes int
}

// MissRate returns mispredictions per counted conditional branch.
// Following the paper's Table 2 accounting, excluded first uses stay
// in the denominator (they are dynamic conditional branches that were
// not counted as mispredictions).
func (r Result) MissRate() float64 {
	if r.Conditionals == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Conditionals)
}

// MissPercent returns MissRate x 100, as the paper's figures plot.
func (r Result) MissPercent() float64 { return 100 * r.MissRate() }

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("cond=%d mispred=%d (%.2f%%)", r.Conditionals, r.Mispredicts, r.MissPercent())
}

// Options adjusts a run.
type Options struct {
	// SkipFirstUse excludes first-time (address, history) references
	// from the misprediction count, if the predictor implements
	// predictor.FirstUseTracker. Used for unaliased-table experiments
	// (Table 2) per the paper's methodology.
	SkipFirstUse bool
	// HistoryBits overrides the history register length. Zero means
	// use the predictor's own HistoryBits.
	HistoryBits uint
	// FlushEvery, when positive, resets the predictor (and the history
	// register) every FlushEvery conditional branches — modelling the
	// total predictor-state loss of a context switch in a processor
	// that does not preserve predictor state across processes (the
	// regime studied by Evers et al., the paper's reference [4]).
	FlushEvery int
	// NoKernel disables the compiled-kernel fast path, forcing every
	// predictor through its generic interface methods. Results are
	// identical either way; the flag exists for benchmarking the two
	// paths against each other and for differential tests.
	NoKernel bool
	// Segments controls segment-parallel simulation of one trace (see
	// segment.go). 0 is automatic: a materialised trace long enough to
	// amortise staging, on a multi-core host, splits into GOMAXPROCS
	// segments. 1 (or negative) forces the serial path. Values >= 2
	// force that many segments (capped at 64 and at the branch count).
	// Results are bit-identical to serial in every case; ineligible
	// predictors degrade to the serial path.
	Segments int
	// WarmBranches is the speculative warm-up window of the segmented
	// path: each segment replica pre-runs this many branches of the
	// preceding segment before its boundary convergence check. Zero
	// means the 4096-branch default.
	WarmBranches int
	// NoBitslice disables the 64-lane bitsliced group path that RunMany
	// otherwise uses when at least 8 same-shape 2-bit cells share the
	// trace. Results are identical either way; the flag exists for
	// benchmarking the group path against per-cell kernels.
	NoBitslice bool
	// Recorder, when non-nil, receives per-predictor (conditionals,
	// mispredictions) deltas at block granularity, building the
	// warmup/steady-state interval curves of the run. Cell i of the
	// recorder corresponds to preds[i]. Recording happens outside the
	// per-branch loops (once per predictor per drained block), so it
	// does not perturb the compiled-kernel fast path.
	Recorder *obs.Recorder
}

// batchSize is the number of trace events pulled per source read and
// the capacity of the staged conditional-step buffer. 4096 steps keep
// the buffer (100KB) comfortably cache-resident while amortising the
// per-block bookkeeping to nothing.
const batchSize = 4096

// Run streams src through p and returns the aggregate result. The
// history register is owned by the runner so that every predictor
// organisation observes the identical stream.
func Run(src trace.Source, p predictor.Predictor, opts Options) (Result, error) {
	results, err := RunMany(src, []predictor.Predictor{p}, opts)
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// RunBranches is Run over an in-memory trace.
func RunBranches(branches []trace.Branch, p predictor.Predictor, opts Options) (Result, error) {
	return Run(trace.NewSliceSource(branches), p, opts)
}

// manyCell is the per-predictor state of a RunMany pass. Only the
// counts that differ between predictors live here; the event counts
// (conditionals, unconditionals, flushes) are identical across cells
// by construction and are tracked once in the runner.
type manyCell struct {
	p          predictor.Predictor
	kern       kernel.Kernel     // non-nil when p compiled to a kernel
	stepper    predictor.Stepper // non-nil when p has the fused fast path
	tracker    predictor.FirstUseTracker
	group      *cellGroup // non-nil when p is a lane of a bitsliced group
	lane       int        // p's lane within group
	mask       uint64
	mispredict int
	firstUse   int
}

// cellGroup is a 64-lane bitsliced kernel shared by up to 64 cells of
// the same shape; mis is its per-lane scratch, reset each drain.
type cellGroup struct {
	g   *kernel.Group64
	mis []int
}

// Bitsliced-group telemetry: groups formed per run and lanes they
// absorbed from the per-cell path.
var (
	mGroups     = obs.NewCounter("sim.bitslice.groups")
	mGroupLanes = obs.NewCounter("sim.bitslice.lanes")
)

// minGroupLanes is the grouping threshold: below 8 lanes the transpose
// overhead of the bitsliced path is not worth it over per-cell kernels.
const minGroupLanes = 8

// groupCells forms bitsliced groups over kernel-compiled cells of the
// same shape. Grouped cells keep their scalar kernels (Invalidate and
// fallback still work); drain simply prefers the group's lane count.
func groupCells(r *manyRunner, preds []predictor.Predictor, hists []uint) {
	byKind := map[int][]int{}
	for i := range r.cells {
		c := &r.cells[i]
		if c.kern == nil || c.tracker != nil {
			continue
		}
		if kind, ok := kernel.GroupKind64(c.p); ok {
			byKind[kind] = append(byKind[kind], i)
		}
	}
	for _, idx := range byKind {
		for len(idx) >= minGroupLanes {
			n := len(idx)
			if n > kernel.MaxLanes {
				n = kernel.MaxLanes
			}
			lanePreds := make([]predictor.Predictor, n)
			laneHists := make([]uint, n)
			for j, ci := range idx[:n] {
				lanePreds[j] = preds[ci]
				laneHists[j] = hists[ci]
			}
			g, ok := kernel.CompileGroup64(lanePreds, laneHists)
			if !ok {
				break
			}
			cg := &cellGroup{g: g, mis: make([]int, n)}
			r.groups = append(r.groups, cg)
			for j, ci := range idx[:n] {
				r.cells[ci].group = cg
				r.cells[ci].lane = j
			}
			mGroups.Inc()
			mGroupLanes.Add(int64(n))
			idx = idx[n:]
		}
	}
}

// manyRunner drives several predictors over one decoding of a trace.
// It owns a single history register of the longest length any predictor
// consumes; each predictor sees that register masked to its own length,
// which is exactly the value a dedicated register of that length would
// hold, so per-predictor results are bit-identical to sequential Run.
//
// Events are staged: conditional branches accumulate into steps (with
// the raw shared-register history value at each branch) and are
// drained to every cell a block at a time. Because cells never
// interact, per-cell block processing preserves each cell's exact
// per-branch order.
type manyRunner struct {
	cells   []manyCell
	groups  []*cellGroup
	ghr     uint64
	ghrMask uint64
	steps   []kernel.Step
	cond    int // shared conditional count (identical across predictors)
	uncond  int
	flushes int
	flush   int
	rec     *obs.Recorder
}

func newManyRunner(preds []predictor.Predictor, opts Options) *manyRunner {
	r := &manyRunner{
		cells: make([]manyCell, len(preds)),
		flush: opts.FlushEvery,
		steps: make([]kernel.Step, 0, batchSize),
		rec:   opts.Recorder,
	}
	var maxK uint
	hists := make([]uint, len(preds))
	for i, p := range preds {
		k := opts.HistoryBits
		if k == 0 {
			k = p.HistoryBits()
		}
		if k > maxK {
			maxK = k
		}
		hists[i] = k
		c := &r.cells[i]
		c.p = p
		c.stepper, _ = p.(predictor.Stepper)
		c.mask = uint64(1)<<k - 1
		if t, ok := p.(predictor.FirstUseTracker); ok && opts.SkipFirstUse {
			c.tracker = t
		}
		if !opts.NoKernel && c.tracker == nil {
			// The kernel was compiled against this cell's register
			// length, so it masks the shared raw history itself.
			c.kern, _ = kernel.Compile(p, k)
		}
	}
	if !opts.NoKernel && !opts.NoBitslice {
		groupCells(r, preds, hists)
	}
	r.ghrMask = uint64(1)<<maxK - 1
	return r
}

// process stages a block of trace events, draining the step buffer
// whenever it fills or a flush boundary is reached.
func (r *manyRunner) process(branches []trace.Branch) error {
	for i := range branches {
		b := &branches[i]
		switch b.Kind {
		case trace.Conditional:
			if r.flush > 0 && r.cond > 0 && r.cond%r.flush == 0 {
				// Train every cell up to the boundary before wiping
				// predictor state, exactly as the per-event path would.
				r.drain()
				for j := range r.cells {
					r.cells[j].p.Reset()
				}
				for _, g := range r.groups {
					// Uniform bitsliced groups own their counter planes;
					// re-transpose the freshly reset lane tables into them.
					g.g.Reload()
				}
				r.flushes++
				r.ghr = 0
			}
			r.cond++
			r.steps = append(r.steps, kernel.Step{PC: b.PC, Hist: r.ghr, Taken: b.Taken})
			if b.Taken {
				r.ghr = (r.ghr<<1 | 1) & r.ghrMask
			} else {
				r.ghr = r.ghr << 1 & r.ghrMask
			}
			if len(r.steps) == cap(r.steps) {
				r.drain()
			}
		case trace.Unconditional:
			r.uncond++
			r.ghr = (r.ghr<<1 | 1) & r.ghrMask
		default:
			return fmt.Errorf("sim: unknown branch kind %d", b.Kind)
		}
	}
	return nil
}

// drain runs the staged steps through every cell and empties the
// buffer.
func (r *manyRunner) drain() {
	if len(r.steps) == 0 {
		return
	}
	mBlocks.Inc()
	mSteps.Add(int64(len(r.steps)))
	for _, g := range r.groups {
		// Bitsliced groups step all their lanes through the block in
		// one pass; the per-cell loop below just collects lane counts.
		for j := range g.mis {
			g.mis[j] = 0
		}
		g.g.StepBatch64(r.steps, g.mis)
	}
	for i := range r.cells {
		c := &r.cells[i]
		before := c.mispredict
		switch {
		case c.group != nil:
			c.mispredict += c.group.mis[c.lane]
		case c.kern != nil:
			// Compiled fast path: one call for the whole block.
			c.mispredict += c.kern.StepBatch(r.steps)
		case c.stepper != nil && c.tracker == nil:
			for j := range r.steps {
				s := &r.steps[j]
				if c.stepper.Step(s.PC, s.Hist&c.mask, s.Taken) != s.Taken {
					c.mispredict++
				}
			}
		default:
			for j := range r.steps {
				s := &r.steps[j]
				h := s.Hist & c.mask
				counted := true
				if c.tracker != nil && !c.tracker.Seen(s.PC, h) {
					c.firstUse++
					counted = false
				}
				if c.stepper != nil {
					// Fused fast path; Predict is state-free, so always
					// stepping is equivalent to predict-when-counted.
					if c.stepper.Step(s.PC, h, s.Taken) != s.Taken && counted {
						c.mispredict++
					}
				} else {
					if counted && c.p.Predict(s.PC, h) != s.Taken {
						c.mispredict++
					}
					c.p.Update(s.PC, h, s.Taken)
				}
			}
		}
		mMispredicts.Add(int64(c.mispredict - before))
		if r.rec != nil {
			r.rec.Add(i, len(r.steps), c.mispredict-before)
		}
	}
	r.steps = r.steps[:0]
}

// finish drains the tail block and invalidates any predictor read
// state the kernels bypassed, so the predictors serve interface calls
// correctly after the run.
func (r *manyRunner) finish() {
	r.drain()
	for _, g := range r.groups {
		// Publish uniform groups' owned planes back into the lane
		// predictors before anyone reads them through the interface.
		g.g.Writeback()
	}
	for i := range r.cells {
		if r.cells[i].kern != nil {
			kernel.Invalidate(r.cells[i].p)
		}
	}
}

func (r *manyRunner) results() []Result {
	out := make([]Result, len(r.cells))
	for i := range r.cells {
		out[i] = Result{
			Conditionals:   r.cond,
			Mispredicts:    r.cells[i].mispredict,
			FirstUses:      r.cells[i].firstUse,
			Unconditionals: r.uncond,
			Flushes:        r.flushes,
		}
	}
	return out
}

// RunMany streams src once and drives every predictor per block,
// returning per-predictor results bit-identical to len(preds)
// sequential Run calls over the same trace. The trace is decoded once
// and a single history register (of the longest history any predictor
// consumes) is shared, so the cost of a sweep is one trace iteration
// plus the predictors' own work — O(events + predictors x events_cond)
// instead of O(predictors x events).
func RunMany(src trace.Source, preds []predictor.Predictor, opts Options) ([]Result, error) {
	if len(preds) == 0 {
		return nil, nil
	}
	if k, hists, orig, ok := segPlan(src, preds, opts); ok {
		// Segment-parallel path: stage the trace once, run contiguous
		// segments concurrently, reconcile at the boundaries. Results
		// are bit-identical to the serial path below (see segment.go).
		st, err := stageTrace(src, opts, maskFromHists(hists))
		if err != nil {
			return nil, err
		}
		res := runSegmentedMany(st, preds, hists, orig, opts, k, true)
		st.release()
		return res, nil
	}
	r := newManyRunner(preds, opts)
	if ss, ok := src.(*trace.SliceSource); ok {
		// Fast path: iterate the materialised slice directly, with no
		// copying into a read buffer.
		if err := r.process(ss.Drain()); err != nil {
			return nil, err
		}
		r.finish()
		return r.results(), nil
	}
	buf := make([]trace.Branch, batchSize)
	for {
		n, err := trace.ReadBatch(src, buf)
		if perr := r.process(buf[:n]); perr != nil {
			return nil, perr
		}
		if errors.Is(err, io.EOF) {
			r.finish()
			return r.results(), nil
		}
		if err != nil {
			return nil, fmt.Errorf("sim: reading trace: %w", err)
		}
	}
}

// RunManyBranches is RunMany over an in-memory trace.
func RunManyBranches(branches []trace.Branch, preds []predictor.Predictor, opts Options) ([]Result, error) {
	return RunMany(trace.NewSliceSource(branches), preds, opts)
}

// Compare runs the same in-memory trace through several predictors and
// returns per-predictor results in order. It is a single RunMany pass:
// the trace is decoded once and every predictor observes the identical
// history stream, with results bit-identical to per-predictor
// sequential runs.
func Compare(branches []trace.Branch, preds []predictor.Predictor, opts Options) ([]Result, error) {
	results, err := RunManyBranches(branches, preds, opts)
	if err != nil {
		return nil, fmt.Errorf("sim: comparing %d predictors: %w", len(preds), err)
	}
	return results, nil
}
