// Package sim drives predictors over branch traces and aggregates
// misprediction statistics, implementing the paper's measurement
// methodology: the global-history register includes unconditional
// branches; only conditional branches are predicted and counted; and
// (optionally, for ideal-table experiments) first uses of a substream
// are excluded from the misprediction count.
package sim

import (
	"errors"
	"fmt"
	"io"

	"gskew/internal/history"
	"gskew/internal/predictor"
	"gskew/internal/trace"
)

// Result aggregates one simulation run.
type Result struct {
	// Conditionals is the number of conditional branches predicted.
	Conditionals int
	// Mispredicts is the number of counted mispredictions.
	Mispredicts int
	// FirstUses is the number of conditional references excluded from
	// counting because the predictor had never seen the substream
	// (only nonzero when SkipFirstUse is set and the predictor tracks
	// first uses).
	FirstUses int
	// Unconditionals is the number of history-only events processed.
	Unconditionals int
	// Flushes is how many times the predictor state was flushed
	// (see Options.FlushEvery).
	Flushes int
}

// MissRate returns mispredictions per counted conditional branch.
// Following the paper's Table 2 accounting, excluded first uses stay
// in the denominator (they are dynamic conditional branches that were
// not counted as mispredictions).
func (r Result) MissRate() float64 {
	if r.Conditionals == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Conditionals)
}

// MissPercent returns MissRate x 100, as the paper's figures plot.
func (r Result) MissPercent() float64 { return 100 * r.MissRate() }

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("cond=%d mispred=%d (%.2f%%)", r.Conditionals, r.Mispredicts, r.MissPercent())
}

// Options adjusts a run.
type Options struct {
	// SkipFirstUse excludes first-time (address, history) references
	// from the misprediction count, if the predictor implements
	// predictor.FirstUseTracker. Used for unaliased-table experiments
	// (Table 2) per the paper's methodology.
	SkipFirstUse bool
	// HistoryBits overrides the history register length. Zero means
	// use the predictor's own HistoryBits.
	HistoryBits uint
	// FlushEvery, when positive, resets the predictor (and the history
	// register) every FlushEvery conditional branches — modelling the
	// total predictor-state loss of a context switch in a processor
	// that does not preserve predictor state across processes (the
	// regime studied by Evers et al., the paper's reference [4]).
	FlushEvery int
}

// Run streams src through p and returns the aggregate result. The
// history register is owned by the runner so that every predictor
// organisation observes the identical stream.
func Run(src trace.Source, p predictor.Predictor, opts Options) (Result, error) {
	k := opts.HistoryBits
	if k == 0 {
		k = p.HistoryBits()
	}
	ghr := history.NewGlobal(k)
	tracker, trackFirst := p.(predictor.FirstUseTracker)
	trackFirst = trackFirst && opts.SkipFirstUse

	var res Result
	for {
		b, err := src.Next()
		if errors.Is(err, io.EOF) {
			return res, nil
		}
		if err != nil {
			return res, fmt.Errorf("sim: reading trace: %w", err)
		}
		switch b.Kind {
		case trace.Conditional:
			if opts.FlushEvery > 0 && res.Conditionals > 0 && res.Conditionals%opts.FlushEvery == 0 {
				p.Reset()
				ghr.Reset()
				res.Flushes++
			}
			res.Conditionals++
			hist := ghr.Bits()
			counted := true
			if trackFirst && !tracker.Seen(b.PC, hist) {
				res.FirstUses++
				counted = false
			}
			if counted && p.Predict(b.PC, hist) != b.Taken {
				res.Mispredicts++
			}
			p.Update(b.PC, hist, b.Taken)
			ghr.Shift(b.Taken)
		case trace.Unconditional:
			res.Unconditionals++
			ghr.Shift(true)
		default:
			return res, fmt.Errorf("sim: unknown branch kind %d", b.Kind)
		}
	}
}

// RunBranches is Run over an in-memory trace.
func RunBranches(branches []trace.Branch, p predictor.Predictor, opts Options) (Result, error) {
	return Run(trace.NewSliceSource(branches), p, opts)
}

// Compare runs the same in-memory trace through several predictors and
// returns per-predictor results in order. Each predictor gets a fresh
// pass over the trace with its own history register length.
func Compare(branches []trace.Branch, preds []predictor.Predictor, opts Options) ([]Result, error) {
	results := make([]Result, len(preds))
	for i, p := range preds {
		r, err := RunBranches(branches, p, opts)
		if err != nil {
			return nil, fmt.Errorf("sim: predictor %s: %w", p.Name(), err)
		}
		results[i] = r
	}
	return results, nil
}
