package sim

import (
	"io"
	"testing"

	"gskew/internal/predictor"
	"gskew/internal/trace"
)

// manyTestTrace builds a deterministic synthetic trace with correlated
// conditionals, noise conditionals and interspersed unconditional
// branches, long enough to exercise aliasing, first uses and flushes.
func manyTestTrace(n int) []trace.Branch {
	branches := make([]trace.Branch, 0, n)
	state := uint64(0x2545f4914f6cdd1d)
	for len(branches) < n {
		// xorshift64* — deterministic, no seeding concerns.
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		r := state * 0x2545f4914f6cdd1d
		pc := 0x400000 + (r>>8)%257*4
		switch r % 7 {
		case 0:
			branches = append(branches, trace.Branch{PC: pc, Taken: true, Kind: trace.Unconditional})
		case 1, 2:
			// Loop-like branch: taken except every 5th visit.
			branches = append(branches, trace.Branch{PC: 0x400010, Taken: len(branches)%5 != 0, Kind: trace.Conditional})
		case 3:
			// History-correlated: outcome equals a bit of recent control flow.
			branches = append(branches, trace.Branch{PC: 0x400020, Taken: (r>>16)&1 == 0, Kind: trace.Conditional})
		default:
			// Cold/noisy branches across many PCs (first uses, conflicts).
			branches = append(branches, trace.Branch{PC: pc, Taken: r&3 != 0, Kind: trace.Conditional})
		}
	}
	return branches
}

// families returns one fresh instance of every predictor organisation
// in the repo. Fresh instances per call so the sequential and RunMany
// arms never share trained state.
func families() map[string]func() predictor.Predictor {
	return map[string]func() predictor.Predictor{
		"bimodal": func() predictor.Predictor { return predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 8, Ctr: 2}) },
		"gshare": func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 8, Hist: 6, Ctr: 2})
		},
		"gselect": func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gselect", N: 8, Hist: 4, Ctr: 2})
		},
		"gskewed-partial": func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{BankBits: 6, HistoryBits: 5})
		},
		"gskewed-total": func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{
				BankBits: 6, HistoryBits: 5, Policy: predictor.TotalUpdate,
			})
		},
		"egskew": func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{
				BankBits: 6, HistoryBits: 8, Enhanced: true,
			})
		},
		"ev8": func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "2bcgskew", N: 7, HistShort: 3, Hist: 9})
		},
		"hybrid": func() predictor.Predictor {
			return predictor.MustHybrid(
				predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 7, Ctr: 2}), predictor.MustSpec(predictor.Spec{Family: "gshare", N: 7, Hist: 6, Ctr: 2}), 7)
		},
		"unaliased": func() predictor.Predictor { return predictor.NewUnaliased(6, 2) },
		"assoc-lru": func() predictor.Predictor { return predictor.NewAssocLRU(64, 5, 2) },
		"agree": func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "agree", N: 7, Hist: 5, Bias: 2, Ctr: 2})
		},
		"bimode": func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "bimode", N: 7, Hist: 5, Choice: 2, Ctr: 2})
		},
		"pas": func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "pas", BHT: 6, Local: 4, N: 7, Ctr: 2})
		},
		"tage": func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "tage", N: 6, Hist: 12, HistMin: 2, Tables: 4, Tag: 6, Ctr: 3})
		},
		"perceptron": func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "perceptron", N: 6, Hist: 10, Tables: 4, Theta: 0, Ctr: 8})
		},
	}
}

// TestRunManyMatchesSequential is the bit-identity contract: one
// RunMany pass must return, for every predictor family and every
// Options combination, the exact Result a dedicated sequential Run
// would produce.
func TestRunManyMatchesSequential(t *testing.T) {
	branches := manyTestTrace(6000)
	optsCases := map[string]Options{
		"default":        {},
		"skip-first-use": {SkipFirstUse: true},
		"flush":          {FlushEvery: 97},
		"flush+skip":     {SkipFirstUse: true, FlushEvery: 53},
		"hist-override":  {HistoryBits: 6},
	}
	fams := families()
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}

	for optName, opts := range optsCases {
		t.Run(optName, func(t *testing.T) {
			// Sequential baseline: one fresh predictor per family.
			want := make([]Result, len(names))
			for i, name := range names {
				res, err := RunBranches(branches, fams[name](), opts)
				if err != nil {
					t.Fatalf("%s: sequential: %v", name, err)
				}
				want[i] = res
			}
			// Single pass over fresh instances of the whole set.
			preds := make([]predictor.Predictor, len(names))
			for i, name := range names {
				preds[i] = fams[name]()
			}
			got, err := RunManyBranches(branches, preds, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i, name := range names {
				if got[i] != want[i] {
					t.Errorf("%s: RunMany = %+v, sequential Run = %+v", name, got[i], want[i])
				}
			}
		})
	}
}

// TestStepperMatchesPredictUpdate pins the Stepper contract directly:
// for every family implementing it, Step on one instance must return
// the same predictions — and leave the same trained state — as separate
// Predict and Update calls on a twin instance fed the identical stream.
func TestStepperMatchesPredictUpdate(t *testing.T) {
	branches := manyTestTrace(6000)
	for name, build := range families() {
		t.Run(name, func(t *testing.T) {
			fused := build()
			stepper, ok := fused.(predictor.Stepper)
			if !ok {
				t.Skipf("%s does not implement Stepper", name)
			}
			split := build()
			ghr := uint64(0)
			mask := uint64(1)<<fused.HistoryBits() - 1
			for i, b := range branches {
				if b.Kind != trace.Conditional {
					ghr = (ghr<<1 | 1) & mask
					continue
				}
				want := split.Predict(b.PC, ghr)
				split.Update(b.PC, ghr, b.Taken)
				got := stepper.Step(b.PC, ghr, b.Taken)
				if got != want {
					t.Fatalf("branch %d: Step = %v, Predict = %v", i, got, want)
				}
				bit := uint64(0)
				if b.Taken {
					bit = 1
				}
				ghr = (ghr<<1 | bit) & mask
			}
		})
	}
}

func TestRunManyEmpty(t *testing.T) {
	res, err := RunManyBranches(manyTestTrace(100), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Errorf("RunMany(no predictors) = %v, want nil", res)
	}
}

// TestRunManyGenericSource checks the non-SliceSource path (no Drain
// fast path) produces the same results.
func TestRunManyGenericSource(t *testing.T) {
	branches := manyTestTrace(2000)
	build := func() []predictor.Predictor {
		return []predictor.Predictor{
			predictor.MustSpec(predictor.Spec{Family: "gshare", N: 8, Hist: 6, Ctr: 2}),
			predictor.MustGSkewed(predictor.Config{BankBits: 6, HistoryBits: 5}),
		}
	}
	fast, err := RunManyBranches(branches, build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunMany(&chanSource{branches: branches}, build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Errorf("predictor %d: slice path %+v != generic path %+v", i, fast[i], slow[i])
		}
	}
}

// chanSource is a minimal non-slice trace.Source.
type chanSource struct {
	branches []trace.Branch
	pos      int
}

func (s *chanSource) Next() (trace.Branch, error) {
	if s.pos >= len(s.branches) {
		return trace.Branch{}, io.EOF
	}
	b := s.branches[s.pos]
	s.pos++
	return b, nil
}

// TestKernelPathMatchesGeneric is the sim-level contract for the
// compiled fast path: with and without kernels, every family and
// Options combination must produce the identical Result. SkipFirstUse
// is included even though it forces trackers onto the generic path —
// the flag must not perturb the others.
func TestKernelPathMatchesGeneric(t *testing.T) {
	branches := manyTestTrace(8000)
	optsCases := map[string]Options{
		"default":       {},
		"flush":         {FlushEvery: 211},
		"hist-override": {HistoryBits: 7},
		"skip":          {SkipFirstUse: true},
	}
	fams := families()
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	for optName, opts := range optsCases {
		t.Run(optName, func(t *testing.T) {
			mk := func() []predictor.Predictor {
				preds := make([]predictor.Predictor, len(names))
				for i, name := range names {
					preds[i] = fams[name]()
				}
				return preds
			}
			generic := opts
			generic.NoKernel = true
			want, err := RunManyBranches(branches, mk(), generic)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunManyBranches(branches, mk(), opts)
			if err != nil {
				t.Fatal(err)
			}
			for i, name := range names {
				if got[i] != want[i] {
					t.Errorf("%s: kernel path %+v, generic path %+v", name, got[i], want[i])
				}
			}
		})
	}
}

// TestKernelRunLeavesPredictorConsistent: after a kernel-driven run
// the predictor must serve interface calls from the trained state (the
// runner invalidates any memoised reads the kernel bypassed).
func TestKernelRunLeavesPredictorConsistent(t *testing.T) {
	branches := manyTestTrace(4000)
	viaKernel := predictor.MustGSkewed(predictor.Config{BankBits: 6, HistoryBits: 5})
	viaIface := predictor.MustGSkewed(predictor.Config{BankBits: 6, HistoryBits: 5})
	if _, err := RunBranches(branches, viaKernel, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunBranches(branches, viaIface, Options{NoKernel: true}); err != nil {
		t.Fatal(err)
	}
	for pc := uint64(0x400000); pc < 0x400100; pc += 4 {
		for h := uint64(0); h < 32; h++ {
			if viaKernel.Predict(pc, h) != viaIface.Predict(pc, h) {
				t.Fatalf("trained state differs at pc=%#x hist=%#x", pc, h)
			}
		}
	}
}
