package sim

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"gskew/internal/kernel"
	"gskew/internal/obs"
	"gskew/internal/predictor"
	"gskew/internal/trace"
)

// Segment-parallel simulation of one long trace.
//
// A branch trace is inherently sequential — every prediction depends
// on all prior counter updates — but two properties of the paper's
// predictors make a segmented run reconcilable with the serial one:
// the global history register is a pure function of the trace (staged
// per step, so segments know their exact history), and saturating
// counters forget: a counter's value depends only on a bounded suffix
// of the accesses that reached it, so a speculative warm-up over the
// last W branches before a segment almost always reproduces the exact
// counter values the segment will read.
//
// The engine never trusts that decay argument. The trace is staged
// once (steps with exact history, flush boundaries, event counts) and
// split into K contiguous segments. Segment 0 runs on the caller's
// own predictors — exact by definition. Each later segment runs on a
// fresh replica built from the predictor's Spec, warmed over the W
// steps preceding the segment, and records which counter cells the
// segment touches (kernel.StateKernel.TouchBatch — indices are pure
// in (PC, history), so the touched set is the same for the replica
// and the exact execution). Reconciliation then walks segments left
// to right: a segment is accepted only if its replica's warm state
// agreed with the exact boundary state on every touched cell — in
// which case the segment's execution was bit-identical to serial and
// its end state is patched into the originals — and is otherwise
// replayed serially on the originals. Results are therefore
// bit-identical to the serial path by construction, not by hope.
//
// Two warm-ups are exact rather than speculative and skip the check:
// a warm-up clipped at a FlushEvery boundary (the exact execution
// reset every counter there, and a fresh replica starts in exactly
// the reset state), and segment 0.

// Segment-engine telemetry. sim.seg.replayed_steps counts branches
// re-run serially because a boundary failed the convergence check;
// sim.seg.fallbacks counts whole runs that wanted the segmented path
// but fell back to serial (ineligible predictor or options).
var (
	mSegRuns      = obs.NewCounter("sim.seg.runs")
	mSegSegments  = obs.NewCounter("sim.seg.segments")
	mSegConverged = obs.NewCounter("sim.seg.converged")
	mSegReplayed  = obs.NewCounter("sim.seg.replayed_steps")
	mSegFallbacks = obs.NewCounter("sim.seg.fallbacks")
	gSegWorkers   = obs.NewGauge("sim.seg.workers")
)

const (
	// maxSegments caps K: each segment beyond the first carries replica
	// tables plus touched-cell marks and a warm snapshot, so memory is
	// O(K x predictor storage) and adversarial K must not blow up.
	maxSegments = 64
	// defaultWarm is the speculative warm-up window. 4096 branches is
	// far past the point where 2-bit saturating counters and <=30-bit
	// histories have forgotten the pre-window past on real traces.
	defaultWarm = 4096
	// autoMinBranches gates the automatic path: below this the staging
	// plus reconcile overhead is not worth parallelising.
	autoMinBranches = 1 << 16
)

// stagedTrace is one full decoding of a trace: every conditional with
// the exact shared-register history it observes, the flush boundaries,
// and the event counts. It is read-only during the parallel phase.
type stagedTrace struct {
	steps   []kernel.Step
	flushAt []int // ascending step indices; predictors reset before step f
	uncond  int
	flushes int
	ghr     uint64
	ghrMask uint64
	flush   int
	pooled  bool // steps came from stepPool; release() returns it
}

// stepPool recycles staged step buffers across segmented runs. Staging
// is the only per-branch allocation on the segmented path (kernel.Step
// is 24 bytes, so a fresh buffer per run used to cost 24 B per branch,
// the constant BENCH_sim.json reported for SimSegmented); reusing the
// buffer makes the steady-state segmented run allocation-free in the
// trace length. Only stageTrace-built buffers enter the pool —
// SegmentSteps wraps caller-owned steps and never releases them.
var stepPool = sync.Pool{
	New: func() any { s := make([]kernel.Step, 0, autoMinBranches); return &s },
}

// release returns a pooled steps buffer. Safe only after every worker
// has joined (runSegmentedMany returns post-Wait) and the results have
// been extracted; st must not be used afterwards.
func (st *stagedTrace) release() {
	if !st.pooled {
		return
	}
	buf := st.steps[:0]
	st.steps = nil
	st.pooled = false
	stepPool.Put(&buf)
}

func (st *stagedTrace) stage(branches []trace.Branch) error {
	for i := range branches {
		b := &branches[i]
		switch b.Kind {
		case trace.Conditional:
			if st.flush > 0 && len(st.steps) > 0 && len(st.steps)%st.flush == 0 {
				st.flushAt = append(st.flushAt, len(st.steps))
				st.flushes++
				st.ghr = 0
			}
			st.steps = append(st.steps, kernel.Step{PC: b.PC, Hist: st.ghr, Taken: b.Taken})
			if b.Taken {
				st.ghr = (st.ghr<<1 | 1) & st.ghrMask
			} else {
				st.ghr = st.ghr << 1 & st.ghrMask
			}
		case trace.Unconditional:
			st.uncond++
			st.ghr = (st.ghr<<1 | 1) & st.ghrMask
		default:
			return fmt.Errorf("sim: unknown branch kind %d", b.Kind)
		}
	}
	return nil
}

// stageTrace materialises src. The decode is identical to the serial
// runner's process loop; the staged history values are the ones every
// predictor observes, masked to its own length by its kernel.
func stageTrace(src trace.Source, opts Options, ghrMask uint64) (*stagedTrace, error) {
	st := &stagedTrace{ghrMask: ghrMask, flush: opts.FlushEvery, pooled: true}
	st.steps = (*stepPool.Get().(*[]kernel.Step))[:0]
	if ss, ok := src.(*trace.SliceSource); ok {
		branches := ss.Drain()
		if cap(st.steps) < len(branches) {
			st.steps = make([]kernel.Step, 0, len(branches))
		}
		return st, st.stage(branches)
	}
	buf := make([]trace.Branch, batchSize)
	for {
		n, err := trace.ReadBatch(src, buf)
		if serr := st.stage(buf[:n]); serr != nil {
			return nil, serr
		}
		if errors.Is(err, io.EOF) {
			return st, nil
		}
		if err != nil {
			return nil, fmt.Errorf("sim: reading trace: %w", err)
		}
	}
}

// runRange drives k over steps[lo:hi), resetting p at every staged
// flush boundary in [lo, hi), and returns the mispredict count. A
// boundary exactly at lo is processed before the first step, so
// adjacent ranges compose to the serial run.
func (st *stagedTrace) runRange(p predictor.Predictor, k kernel.Kernel, lo, hi int) int {
	mis := 0
	fi := sort.SearchInts(st.flushAt, lo)
	for lo < hi {
		if fi < len(st.flushAt) && st.flushAt[fi] == lo {
			p.Reset()
			fi++
			continue
		}
		next := hi
		if fi < len(st.flushAt) && st.flushAt[fi] < hi {
			next = st.flushAt[fi]
		}
		mis += k.StepBatch(st.steps[lo:next])
		lo = next
	}
	return mis
}

// lastFlushIn returns the largest flush boundary f with lo <= f <= hi.
func (st *stagedTrace) lastFlushIn(lo, hi int) (int, bool) {
	// First boundary > hi, then step back one.
	i := sort.SearchInts(st.flushAt, hi+1) - 1
	if i >= 0 && st.flushAt[i] >= lo {
		return st.flushAt[i], true
	}
	return 0, false
}

// hasFlushInside reports whether any boundary f satisfies lo < f < hi.
func (st *stagedTrace) hasFlushInside(lo, hi int) bool {
	i := sort.SearchInts(st.flushAt, lo+1)
	return i < len(st.flushAt) && st.flushAt[i] < hi
}

// segPlan decides whether this run takes the segmented path and, if
// so, compiles the original predictors' kernels. ok is false when the
// options ask for serial, the auto gate does not fire, or any
// predictor is ineligible (no Spec, no compiled kernel, first-use
// tracking, a Recorder, or NoKernel) — the caller then runs serially,
// so a segment request degrades rather than fails.
func segPlan(src trace.Source, preds []predictor.Predictor, opts Options) (k int, hists []uint, orig []kernel.StateKernel, ok bool) {
	requested := true
	switch {
	case opts.Segments >= 2:
		k = opts.Segments
	case opts.Segments != 0:
		return 0, nil, nil, false // 1 or negative: serial, not a fallback
	default:
		// Auto: only a materialised trace long enough to amortise
		// staging, and only when there is real parallel hardware.
		ss, isSlice := src.(*trace.SliceSource)
		if !isSlice || ss.Len() < autoMinBranches || runtime.GOMAXPROCS(0) < 2 {
			return 0, nil, nil, false
		}
		k = runtime.GOMAXPROCS(0)
		requested = false
	}
	fallback := func() (int, []uint, []kernel.StateKernel, bool) {
		if requested {
			mSegFallbacks.Inc()
		}
		return 0, nil, nil, false
	}
	if opts.NoKernel || opts.Recorder != nil {
		return fallback()
	}
	hists = make([]uint, len(preds))
	orig = make([]kernel.StateKernel, len(preds))
	for i, p := range preds {
		h := opts.HistoryBits
		if h == 0 {
			h = p.HistoryBits()
		}
		hists[i] = h
		if _, isSpec := p.(predictor.Speccer); !isSpec {
			return fallback()
		}
		if opts.SkipFirstUse {
			if _, tracks := p.(predictor.FirstUseTracker); tracks {
				return fallback()
			}
		}
		kk, compiled := kernel.Compile(p, h)
		if !compiled {
			return fallback()
		}
		sk, hasState := kk.(kernel.StateKernel)
		if !hasState {
			return fallback()
		}
		orig[i] = sk
	}
	return k, hists, orig, true
}

// segCell is one (segment, predictor) replica.
type segCell struct {
	rep       predictor.Predictor
	k         kernel.StateKernel
	warmExact bool      // warm-up clipped at a flush: state at lo is exact
	marks     [][]uint8 // touched cells of the segment (nil when warmExact)
	warm      [][]uint8 // replica bank snapshot at segment start
	mis       int
}

// runSegmentedMany executes the staged trace over K segments and
// returns per-predictor results bit-identical to the serial path.
// reconcile=false disables the boundary convergence check (accepting
// every speculative segment blindly); it exists only so the verify
// selftest can prove the check catches real divergence.
func runSegmentedMany(st *stagedTrace, preds []predictor.Predictor, hists []uint,
	orig []kernel.StateKernel, opts Options, k int, reconcile bool) []Result {
	n := len(st.steps)
	if k > n {
		k = n
	}
	if k > maxSegments {
		k = maxSegments
	}
	warm := opts.WarmBranches
	if warm <= 0 {
		warm = defaultWarm
	}
	mis := make([]int, len(preds))
	serialStaged := func() {
		for ci := range preds {
			mis[ci] = st.runRange(preds[ci], orig[ci], 0, n)
		}
	}
	if k <= 1 {
		serialStaged()
		return segResults(st, preds, mis)
	}

	bounds := make([]int, k+1)
	for s := 0; s <= k; s++ {
		bounds[s] = n * s / k
	}
	// Build every replica up front; any failure (it would take a spec
	// that cannot rebuild itself) degrades to a serial staged run.
	segs := make([][]segCell, k)
	for s := 1; s < k; s++ {
		segs[s] = make([]segCell, len(preds))
		for ci, p := range preds {
			rep, err := p.(predictor.Speccer).Spec().New()
			if err != nil {
				mSegFallbacks.Inc()
				serialStaged()
				return segResults(st, preds, mis)
			}
			rk, ok := kernel.Compile(rep, hists[ci])
			sk, isState := rk.(kernel.StateKernel)
			if !ok || !isState {
				mSegFallbacks.Inc()
				serialStaged()
				return segResults(st, preds, mis)
			}
			segs[s][ci] = segCell{rep: rep, k: sk}
		}
	}

	mSegRuns.Inc()
	mSegSegments.Add(int64(k))
	gSegWorkers.Set(int64(k))

	var wg sync.WaitGroup
	wg.Add(k)
	go func() {
		// Worker 0 advances the caller's own predictors over the first
		// segment: exact, whatever state they arrived in.
		defer wg.Done()
		for ci := range preds {
			mis[ci] = st.runRange(preds[ci], orig[ci], 0, bounds[1])
		}
	}()
	for s := 1; s < k; s++ {
		go func(s int) {
			defer wg.Done()
			lo, hi := bounds[s], bounds[s+1]
			for ci := range segs[s] {
				sc := &segs[s][ci]
				warmStart := lo - warm
				if warmStart < 0 {
					warmStart = 0
				}
				if f, ok := st.lastFlushIn(warmStart, lo); ok {
					// The exact execution reset every counter at f, and a
					// fresh replica starts in the reset state, so running
					// from f is exact — no convergence check needed.
					warmStart = f
					sc.warmExact = true
				}
				st.runRange(sc.rep, sc.k, warmStart, lo) // warm-up; counts discarded
				if !sc.warmExact {
					banks := sc.k.Banks()
					sc.marks = make([][]uint8, len(banks))
					sc.warm = make([][]uint8, len(banks))
					for b, cells := range banks {
						sc.marks[b] = make([]uint8, len(cells))
						sc.warm[b] = append([]uint8(nil), cells...)
					}
					sc.k.TouchBatch(st.steps[lo:hi], sc.marks)
				}
				sc.mis = st.runRange(sc.rep, sc.k, lo, hi)
			}
		}(s)
	}
	wg.Wait()

	// Serial left-to-right reconcile: after segment s-1 is settled the
	// originals hold the exact state at bounds[s], which is what each
	// replica's warm snapshot is checked against.
	converged, replayed := 0, 0
	for s := 1; s < k; s++ {
		lo, hi := bounds[s], bounds[s+1]
		flushInside := st.hasFlushInside(lo, hi)
		for ci := range preds {
			sc := &segs[s][ci]
			ob := orig[ci].Banks()
			rb := sc.k.Banks()
			accept := sc.warmExact || !reconcile
			if !accept {
				accept = markedCellsEqual(ob, sc.warm, sc.marks)
			}
			if !accept {
				mis[ci] += st.runRange(preds[ci], orig[ci], lo, hi)
				replayed += hi - lo
				continue
			}
			converged++
			mis[ci] += sc.mis
			if sc.warmExact {
				// Replica state is exact on every cell (it started from
				// the flush-reset state); adopt it wholesale.
				for b := range ob {
					copy(ob[b], rb[b])
				}
				continue
			}
			// The exact segment execution and the replica's agree on the
			// touched set; untouched originals either keep their value or
			// — when a flush fired inside the segment — were reset.
			if flushInside {
				preds[ci].Reset()
			}
			for b := range ob {
				mb, rbb, obb := sc.marks[b], rb[b], ob[b]
				for i, m := range mb {
					if m != 0 {
						obb[i] = rbb[i]
					}
				}
			}
		}
	}
	mSegConverged.Add(int64(converged))
	mSegReplayed.Add(int64(replayed))
	return segResults(st, preds, mis)
}

// markedCellsEqual reports whether a and b agree on every marked cell.
func markedCellsEqual(a, b, marks [][]uint8) bool {
	for bank := range marks {
		ab, bb := a[bank], b[bank]
		for i, m := range marks[bank] {
			if m != 0 && ab[i] != bb[i] {
				return false
			}
		}
	}
	return true
}

func segResults(st *stagedTrace, preds []predictor.Predictor, mis []int) []Result {
	total := 0
	out := make([]Result, len(preds))
	for i := range preds {
		kernel.Invalidate(preds[i])
		total += mis[i]
		out[i] = Result{
			Conditionals:   len(st.steps),
			Mispredicts:    mis[i],
			Unconditionals: st.uncond,
			Flushes:        st.flushes,
		}
	}
	mSteps.Add(int64(len(st.steps)))
	mMispredicts.Add(int64(total))
	return out
}

func maskFromHists(hists []uint) uint64 {
	var maxK uint
	for _, h := range hists {
		if h > maxK {
			maxK = h
		}
	}
	return uint64(1)<<maxK - 1
}

// RunSegmented is RunMany with the segmented path forced on:
// opts.Segments of 0 resolves to GOMAXPROCS (at least 2) instead of
// the auto gate. Ineligible predictors still degrade to the serial
// path, so results are always correct.
func RunSegmented(src trace.Source, preds []predictor.Predictor, opts Options) ([]Result, error) {
	if opts.Segments < 2 {
		opts.Segments = runtime.GOMAXPROCS(0)
		if opts.Segments < 2 {
			opts.Segments = 2
		}
	}
	return RunMany(src, preds, opts)
}

// RunSegmentedNoReconcile runs the segmented engine with the boundary
// convergence check disabled, blindly accepting every speculatively
// warmed segment. It exists solely as a planted fault for the verify
// selftest — the differential harness must catch the divergence this
// produces — and errors out rather than silently running serially if
// the predictors cannot take the segmented path.
func RunSegmentedNoReconcile(src trace.Source, preds []predictor.Predictor, opts Options) ([]Result, error) {
	if opts.Segments < 2 {
		opts.Segments = runtime.GOMAXPROCS(0)
		if opts.Segments < 2 {
			opts.Segments = 2
		}
	}
	k, hists, orig, ok := segPlan(src, preds, opts)
	if !ok {
		return nil, errors.New("sim: predictors not eligible for the segmented path")
	}
	st, err := stageTrace(src, opts, maskFromHists(hists))
	if err != nil {
		return nil, err
	}
	res := runSegmentedMany(st, preds, hists, orig, opts, k, false)
	st.release()
	return res, nil
}

// SegmentSteps runs an already-staged step block through the segmented
// engine: the steps' Hist values must be the exact per-step history
// (as staged by the sim runner or the predict-session code) and no
// flushes are modelled. Returns ok=false when p cannot take the
// segmented path; the caller then uses its serial kernel. The caller
// remains responsible for kernel.Invalidate after its batch, as with
// StepBatch.
func SegmentSteps(p predictor.Predictor, histBits uint, steps []kernel.Step, segments, warmBranches int) (int, bool) {
	if segments < 2 || len(steps) == 0 {
		return 0, false
	}
	if _, isSpec := p.(predictor.Speccer); !isSpec {
		return 0, false
	}
	kk, ok := kernel.Compile(p, histBits)
	if !ok {
		return 0, false
	}
	sk, ok := kk.(kernel.StateKernel)
	if !ok {
		return 0, false
	}
	st := &stagedTrace{steps: steps}
	res := runSegmentedMany(st, []predictor.Predictor{p}, []uint{histBits},
		[]kernel.StateKernel{sk}, Options{WarmBranches: warmBranches}, segments, true)
	return res[0].Mispredicts, true
}
