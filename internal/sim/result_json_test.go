package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestResultJSONRemarshalByteIdentical checks the wire form is a fixed
// point: unmarshal then marshal reproduces the original bytes. The
// result store (internal/store) and the server's byte-identity
// contract for cached responses both lean on this.
func TestResultJSONRemarshalByteIdentical(t *testing.T) {
	for _, r := range []Result{
		{Conditionals: 65536, Mispredicts: 4211, FirstUses: 130, Unconditionals: 9000, Flushes: 3},
		{Conditionals: 3, Mispredicts: 3},
		{},
	} {
		first, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var back Result
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatal(err)
		}
		second, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("re-marshal drifted:\n first: %s\nsecond: %s", first, second)
		}
	}
}

// TestResultJSONMissPctIgnoredOnInput checks the derived miss_pct is
// recomputed from the counts, never trusted from the wire: a tampered
// or stale percentage cannot survive a round trip.
func TestResultJSONMissPctIgnoredOnInput(t *testing.T) {
	var r Result
	if err := json.Unmarshal([]byte(`{"conditionals":200,"mispredicts":50,"miss_pct":99.9}`), &r); err != nil {
		t.Fatal(err)
	}
	if r.Conditionals != 200 || r.Mispredicts != 50 {
		t.Fatalf("counts lost: %+v", r)
	}
	if got := r.MissPercent(); got != 25 {
		t.Errorf("miss percent %g, want 25 (recomputed, not the wire's 99.9)", got)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"miss_pct":25`)) {
		t.Errorf("marshalled form kept the forged percentage: %s", data)
	}
}
