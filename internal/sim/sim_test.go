package sim

import (
	"strings"
	"testing"

	"gskew/internal/predictor"
	"gskew/internal/trace"
)

func condBr(pc uint64, taken bool) trace.Branch {
	return trace.Branch{PC: pc, Taken: taken, Kind: trace.Conditional}
}

func uncondBr(pc uint64) trace.Branch {
	return trace.Branch{PC: pc, Taken: true, Kind: trace.Unconditional}
}

func TestRunCountsOnlyConditionals(t *testing.T) {
	branches := []trace.Branch{
		condBr(1, true),
		uncondBr(2),
		condBr(1, true),
		uncondBr(3),
		uncondBr(4),
	}
	p := predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 4, Ctr: 2})
	res, err := RunBranches(branches, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Conditionals != 2 || res.Unconditionals != 3 {
		t.Errorf("cond=%d uncond=%d", res.Conditionals, res.Unconditionals)
	}
	// Bimodal starts weakly-taken; both taken branches predicted right.
	if res.Mispredicts != 0 {
		t.Errorf("Mispredicts = %d", res.Mispredicts)
	}
}

func TestRunTrainsPredictor(t *testing.T) {
	// A single always-not-taken branch: the weakly-taken 2-bit counter
	// mispredicts the first two times, then locks on.
	var branches []trace.Branch
	for i := 0; i < 10; i++ {
		branches = append(branches, condBr(0x40, false))
	}
	p := predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 4, Ctr: 2})
	res, err := RunBranches(branches, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mispredicts != 1 {
		t.Errorf("Mispredicts = %d, want 1 (weak-taken start: one miss)", res.Mispredicts)
	}
	if res.MissRate() != 0.1 {
		t.Errorf("MissRate = %v", res.MissRate())
	}
	if res.MissPercent() != 10 {
		t.Errorf("MissPercent = %v", res.MissPercent())
	}
}

func TestUnconditionalsEnterHistory(t *testing.T) {
	// A conditional branch whose outcome equals "was the previous
	// event an unconditional branch". With history the pattern is
	// learnable; a pattern of alternating uncond presence makes
	// gshare-with-history beat bimodal.
	var branches []trace.Branch
	for i := 0; i < 3000; i++ {
		if i%2 == 0 {
			branches = append(branches, uncondBr(0x999))
			branches = append(branches, condBr(0x40, true))
		} else {
			branches = append(branches, condBr(0x50, false)) // noise bit in history
			branches = append(branches, condBr(0x40, false))
		}
	}
	withHist := predictor.MustSpec(predictor.Spec{Family: "gshare", N: 10, Hist: 4, Ctr: 2})
	resH, err := RunBranches(branches, withHist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	noHist := predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 10, Ctr: 2})
	resB, err := RunBranches(branches, noHist, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resH.Mispredicts >= resB.Mispredicts {
		t.Errorf("history-aware predictor (%d) should beat bimodal (%d) on history-determined outcomes",
			resH.Mispredicts, resB.Mispredicts)
	}
	// And the history must contain the unconditional event: with k=1
	// (only the immediately preceding event), outcome of 0x40 equals
	// that bit exactly.
	tiny := predictor.MustSpec(predictor.Spec{Family: "gshare", N: 6, Hist: 1, Ctr: 2})
	resT, err := RunBranches(branches, tiny, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rate := resT.MissRate(); rate > 0.02 {
		t.Errorf("1-bit-history gshare rate = %.3f; unconditionals apparently not in history", rate)
	}
}

func TestSkipFirstUse(t *testing.T) {
	branches := []trace.Branch{
		condBr(1, false), // first use: excluded
		condBr(1, false), // counted, predicted correctly (trained NT)
		condBr(2, true),  // first use: excluded
		condBr(1, false),
	}
	// History length 0 keys substreams by address alone, so the
	// expected first-use count is exactly one per distinct PC.
	u := predictor.NewUnaliased(0, 2)
	res, err := RunBranches(branches, u, Options{SkipFirstUse: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstUses != 2 {
		t.Errorf("FirstUses = %d, want 2", res.FirstUses)
	}
	if res.Mispredicts != 0 {
		t.Errorf("Mispredicts = %d, want 0", res.Mispredicts)
	}
	if res.Conditionals != 4 {
		t.Errorf("Conditionals = %d (first uses stay in the denominator)", res.Conditionals)
	}
}

func TestSkipFirstUseNoTracker(t *testing.T) {
	// Predictors without first-use tracking are counted normally.
	branches := []trace.Branch{condBr(1, false), condBr(1, false)}
	p := predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 4, Ctr: 2})
	res, err := RunBranches(branches, p, Options{SkipFirstUse: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstUses != 0 {
		t.Errorf("FirstUses = %d for a non-tracking predictor", res.FirstUses)
	}
	if res.Mispredicts != 1 {
		t.Errorf("Mispredicts = %d", res.Mispredicts)
	}
}

func TestHistoryBitsOverride(t *testing.T) {
	// The override shortens the runner's history register; a predictor
	// configured for a longer history then sees fewer distinct history
	// values, collapsing substreams.
	var branches []trace.Branch
	for i := 0; i < 60; i++ {
		branches = append(branches, condBr(7, (i*i+i/3)%3 == 0))
	}
	u := predictor.NewUnaliased(8, 2)
	if _, err := RunBranches(branches, u, Options{}); err != nil {
		t.Fatal(err)
	}
	u2 := predictor.NewUnaliased(8, 2)
	if _, err := RunBranches(branches, u2, Options{HistoryBits: 2}); err != nil {
		t.Fatal(err)
	}
	if u2.Substreams() > 4 {
		t.Errorf("2-bit override should allow at most 4 substreams, got %d", u2.Substreams())
	}
	if u2.Substreams() >= u.Substreams() {
		t.Errorf("override did not shorten history: %d vs %d substreams",
			u2.Substreams(), u.Substreams())
	}
}

func TestResultString(t *testing.T) {
	r := Result{Conditionals: 200, Mispredicts: 10}
	if !strings.Contains(r.String(), "5.00%") {
		t.Errorf("String() = %q", r.String())
	}
	var zero Result
	if zero.MissRate() != 0 {
		t.Error("zero result MissRate")
	}
}

func TestCompare(t *testing.T) {
	var branches []trace.Branch
	for i := 0; i < 100; i++ {
		branches = append(branches, condBr(uint64(i%7), i%3 == 0))
	}
	preds := []predictor.Predictor{
		predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 6, Ctr: 2}),
		predictor.MustSpec(predictor.Spec{Family: "gshare", N: 6, Hist: 4, Ctr: 2}),
	}
	results, err := Compare(branches, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Conditionals != 100 {
			t.Errorf("predictor %d saw %d conditionals", i, r.Conditionals)
		}
	}
}

func TestRunRejectsBadKind(t *testing.T) {
	branches := []trace.Branch{{PC: 1, Kind: trace.Kind(9)}}
	if _, err := RunBranches(branches, predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 4, Ctr: 2}), Options{}); err == nil {
		t.Error("Run accepted invalid branch kind")
	}
}

func TestFlushEvery(t *testing.T) {
	// A stable not-taken branch: without flushes the 2-bit counter
	// locks on after two outcomes; flushing every 4 conditionals
	// re-incurs the two warm-up misses each window.
	var branches []trace.Branch
	for i := 0; i < 40; i++ {
		branches = append(branches, condBr(0x10, false))
	}
	noFlush, err := RunBranches(branches, predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 4, Ctr: 2}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	flushed, err := RunBranches(branches, predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 4, Ctr: 2}), Options{FlushEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if noFlush.Flushes != 0 {
		t.Errorf("Flushes = %d without FlushEvery", noFlush.Flushes)
	}
	if flushed.Flushes != 9 {
		t.Errorf("Flushes = %d, want 9 (every 4 of 40, not before the first)", flushed.Flushes)
	}
	// 1 warm-up miss initially (weak-taken start: misses once), then
	// 1 per flushed window.
	if flushed.Mispredicts != noFlush.Mispredicts+9 {
		t.Errorf("flushed mispredicts = %d, want %d", flushed.Mispredicts, noFlush.Mispredicts+9)
	}
}
