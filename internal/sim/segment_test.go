package sim

import (
	"runtime"
	"runtime/debug"
	"testing"

	"gskew/internal/kernel"
	"gskew/internal/obs"
	"gskew/internal/predictor"
	"gskew/internal/trace"
)

// segOptsCases are the adversarial segmentation shapes: forced serial,
// small K, K with a warm-up window smaller than typical correlation,
// K far beyond the branch count (exercises the clamp), and a warm-up
// window longer than a whole segment.
func segOptsCases() map[string]Options {
	return map[string]Options{
		"k2":        {Segments: 2},
		"k5-w64":    {Segments: 5, WarmBranches: 64},
		"k-huge":    {Segments: 1 << 20},
		"w-huge":    {Segments: 3, WarmBranches: 1 << 20},
		"k64-small": {Segments: 64, WarmBranches: 8},
	}
}

// TestRunSegmentedMatchesSerial is the bit-identity contract of the
// segmented engine: for every predictor family (including those that
// cannot take the path and must degrade), with and without periodic
// flushes, every segmentation shape must reproduce the serial Result
// exactly AND leave the predictor in the serially-trained state.
func TestRunSegmentedMatchesSerial(t *testing.T) {
	branches := manyTestTrace(6000)
	for _, flush := range []int{0, 97, 1000} {
		for segName, segOpts := range segOptsCases() {
			for name, build := range families() {
				opts := segOpts
				opts.FlushEvery = flush
				t.Run(name+"/"+segName+"/flush="+itoa(flush), func(t *testing.T) {
					serialP := build()
					want, err := RunBranches(branches, serialP, Options{Segments: 1, FlushEvery: flush})
					if err != nil {
						t.Fatal(err)
					}
					segP := build()
					got, err := Run(trace.NewSliceSource(branches), segP, opts)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("segmented %+v, serial %+v", got, want)
					}
					// The originals must hold the serially-trained state,
					// not just the right counts.
					probePredictors(t, serialP, segP)
				})
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// probePredictors asserts two predictors give identical predictions
// over a grid of (pc, history) probes.
func probePredictors(t *testing.T, want, got predictor.Predictor) {
	t.Helper()
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 2000; i++ {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		r := state * 0x2545f4914f6cdd1d
		pc := 0x400000 + (r>>8)%257*4
		h := r & 0x3fff
		if want.Predict(pc, h) != got.Predict(pc, h) {
			t.Fatalf("post-run state differs at probe %d (pc=%#x hist=%#x)", i, pc, h)
		}
	}
}

// TestRunSegmentedManyMatchesSerial runs a mixed multi-cell sweep —
// eligible and ineligible families together — through the forced
// segmented path and checks every cell against its sequential run.
func TestRunSegmentedManyMatchesSerial(t *testing.T) {
	branches := manyTestTrace(8000)
	fams := families()
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	for _, opts := range []Options{
		{Segments: 4, FlushEvery: 513},
		{Segments: 7, WarmBranches: 128},
	} {
		want := make([]Result, len(names))
		for i, name := range names {
			res, err := RunBranches(branches, fams[name](), Options{Segments: 1, FlushEvery: opts.FlushEvery})
			if err != nil {
				t.Fatal(err)
			}
			want[i] = res
		}
		preds := make([]predictor.Predictor, len(names))
		for i, name := range names {
			preds[i] = fams[name]()
		}
		got, err := RunSegmented(trace.NewSliceSource(branches), preds, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, name := range names {
			if got[i] != want[i] {
				t.Errorf("%s: segmented = %+v, serial = %+v", name, got[i], want[i])
			}
		}
	}
}

// TestRunSegmentedPretrained: segment replicas start cold, so a
// pre-trained original exercises the convergence check (and, when the
// warm-up cannot reproduce the trained state, the serial replay).
func TestRunSegmentedPretrained(t *testing.T) {
	warmup := manyTestTrace(3000)
	branches := manyTestTrace(6000)
	for name, build := range families() {
		t.Run(name, func(t *testing.T) {
			serialP, segP := build(), build()
			for _, p := range []predictor.Predictor{serialP, segP} {
				if _, err := RunBranches(warmup, p, Options{Segments: 1}); err != nil {
					t.Fatal(err)
				}
			}
			want, err := RunBranches(branches, serialP, Options{Segments: 1})
			if err != nil {
				t.Fatal(err)
			}
			// Tiny warm-up window: segment 1's replica cannot see the
			// pre-training, forcing the check to do its job.
			got, err := Run(trace.NewSliceSource(branches), segP, Options{Segments: 3, WarmBranches: 16})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("segmented %+v, serial %+v", got, want)
			}
			probePredictors(t, serialP, segP)
		})
	}
}

// TestRunSegmentedAuto: with multiple procs and a long materialised
// trace, Segments=0 takes the segmented path automatically, still
// bit-identically.
func TestRunSegmentedAuto(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	obs.Enable()
	defer obs.Disable()
	branches := manyTestTrace(autoMinBranches + 5000)
	want, err := RunBranches(branches, predictor.MustSpec(predictor.Spec{Family: "gshare", N: 10, Hist: 8, Ctr: 2}), Options{Segments: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := mSegRuns.Value()
	got, err := RunBranches(branches, predictor.MustSpec(predictor.Spec{Family: "gshare", N: 10, Hist: 8, Ctr: 2}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("auto-segmented %+v, serial %+v", got, want)
	}
	if mSegRuns.Value() == before {
		t.Error("auto gate did not take the segmented path")
	}
}

// TestRunSegmentedGenericSource: a non-slice source is staged through
// the batch reader; explicit Segments must still match serial.
func TestRunSegmentedGenericSource(t *testing.T) {
	branches := manyTestTrace(5000)
	want, err := RunBranches(branches, predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 8, Ctr: 2}), Options{Segments: 1, FlushEvery: 777})
	if err != nil {
		t.Fatal(err)
	}
	src := &chanSource{branches: branches}
	got, err := Run(src, predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 8, Ctr: 2}), Options{Segments: 6, FlushEvery: 777})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("segmented over generic source %+v, serial %+v", got, want)
	}
}

// TestRunSegmentedNoReconcileDiverges proves the convergence check is
// load-bearing: a trace built so a cold warm-up CANNOT reproduce the
// exact counter state at a segment boundary must yield a wrong count
// when reconciliation is skipped — and the right one when it runs.
func TestRunSegmentedNoReconcileDiverges(t *testing.T) {
	branches := segKillerTrace()
	mk := func() predictor.Predictor { return predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 4, Ctr: 2}) }
	want, err := RunBranches(branches, mk(), Options{Segments: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Segments: 4, WarmBranches: 16}
	honest, err := RunSegmented(trace.NewSliceSource(branches), []predictor.Predictor{mk()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if honest[0] != want {
		t.Fatalf("honest segmented %+v, serial %+v", honest[0], want)
	}
	faulty, err := RunSegmentedNoReconcile(trace.NewSliceSource(branches), []predictor.Predictor{mk()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if faulty[0].Mispredicts == want.Mispredicts {
		t.Fatalf("skipping reconciliation did not diverge (mis=%d); the planted fault is toothless",
			want.Mispredicts)
	}
}

// segKillerTrace defeats speculative warm-up by construction: a long
// saturating prefix (counters pinned at 3) followed by a strict
// alternation starting not-taken. The exact counter oscillates 3<->2
// through the alternation (mispredicting only the not-taken steps);
// a cold replica warmed only inside the alternation oscillates 2<->1
// (mispredicting every step), and no bounded warm-up that starts at
// the weakly-taken reset state can recover the saturated hysteresis.
func segKillerTrace() []trace.Branch {
	const pc = 5
	branches := make([]trace.Branch, 0, 1041)
	for i := 0; i < 640; i++ {
		branches = append(branches, trace.Branch{PC: pc, Taken: true, Kind: trace.Conditional})
	}
	for i := 0; i < 401; i++ {
		branches = append(branches, trace.Branch{PC: pc, Taken: i%2 == 1, Kind: trace.Conditional})
	}
	return branches
}

// TestSegmentSteps: the steps-level entry point used by predict
// sessions must match the serial kernel over the same staged block.
func TestSegmentSteps(t *testing.T) {
	branches := manyTestTrace(20000)
	const hist = 8
	steps := make([]kernel.Step, 0, len(branches))
	ghr := uint64(0)
	for i := range branches {
		b := &branches[i]
		if b.Kind == trace.Conditional {
			steps = append(steps, kernel.Step{PC: b.PC, Hist: ghr, Taken: b.Taken})
		}
		if b.Taken {
			ghr = (ghr<<1 | 1) & (1<<hist - 1)
		} else {
			ghr = ghr << 1 & (1<<hist - 1)
		}
	}
	serialP := predictor.MustSpec(predictor.Spec{Family: "gshare", N: 10, Hist: hist, Ctr: 2})
	serialK, ok := kernel.Compile(serialP, hist)
	if !ok {
		t.Fatal("gshare did not compile")
	}
	want := serialK.StepBatch(steps)
	kernel.Invalidate(serialP)

	segP := predictor.MustSpec(predictor.Spec{Family: "gshare", N: 10, Hist: hist, Ctr: 2})
	got, ok := SegmentSteps(segP, hist, steps, 5, 256)
	if !ok {
		t.Fatal("SegmentSteps refused an eligible predictor")
	}
	kernel.Invalidate(segP)
	if got != want {
		t.Fatalf("SegmentSteps counted %d mispredicts, serial kernel %d", got, want)
	}
	probePredictors(t, serialP, segP)

	if _, ok := SegmentSteps(predictor.NewUnaliased(6, 2), 6, steps, 4, 256); ok {
		t.Error("SegmentSteps accepted a predictor without a compiled kernel")
	}
}

// TestRunManyBitsliced: a sweep wide enough to form bitsliced groups
// must match the same sweep with grouping disabled, cell for cell,
// including under flushes (lanes alias predictor storage, so Reset
// must be visible to the group).
func TestRunManyBitsliced(t *testing.T) {
	branches := manyTestTrace(9000)
	mkPreds := func() []predictor.Predictor {
		var preds []predictor.Predictor
		for n := uint(6); n < 12; n++ {
			preds = append(preds, predictor.MustSpec(predictor.Spec{Family: "gshare", N: n, Hist: 6, Ctr: 2}))
			preds = append(preds, predictor.MustSpec(predictor.Spec{Family: "bimodal", N: n, Ctr: 2}))
		}
		for bb := uint(5); bb < 9; bb++ {
			preds = append(preds, predictor.MustGSkewed(predictor.Config{BankBits: bb, HistoryBits: 6}))
			preds = append(preds, predictor.MustGSkewed(predictor.Config{
				BankBits: bb, HistoryBits: 6, Enhanced: true,
			}))
		}
		// Oddballs that must stay scalar inside the same sweep.
		preds = append(preds, predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 8, Ctr: 1}))
		preds = append(preds, predictor.MustSpec(predictor.Spec{Family: "2bcgskew", N: 7, HistShort: 3, Hist: 9}))
		return preds
	}
	obs.Enable()
	defer obs.Disable()
	for _, flush := range []int{0, 301} {
		before := mGroups.Value()
		got, err := RunManyBranches(branches, mkPreds(), Options{FlushEvery: flush, Segments: 1})
		if err != nil {
			t.Fatal(err)
		}
		if mGroups.Value() == before {
			t.Fatal("no bitsliced group formed for a 20-lane same-shape sweep")
		}
		want, err := RunManyBranches(branches, mkPreds(), Options{FlushEvery: flush, Segments: 1, NoBitslice: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("flush=%d cell %d: bitsliced %+v, scalar %+v", flush, i, got[i], want[i])
			}
		}
	}
}

// TestSegmentedSteadyStateAllocs pins the steps-buffer pool: a warm
// segmented run must not allocate per staged branch (the buffer used
// to be freshly made each run — kernel.Step is 24 bytes, the constant
// per-branch cost BENCH_sim.json once reported for SimSegmented). The
// test gates both the allocation count (a constant per run: replicas,
// marks, snapshots, results) and the allocated bytes per branch. GC is
// disabled during measurement so sync.Pool cannot be drained under us.
func TestSegmentedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is inflated under the race detector")
	}
	branches := manyTestTrace(1 << 17)
	preds := []predictor.Predictor{predictor.MustSpec(predictor.Spec{Family: "gshare", N: 8, Hist: 6, Ctr: 2})}
	src := trace.NewSliceSource(branches)
	opts := Options{Segments: 4}
	run := func() {
		src.Reset()
		if _, err := RunMany(src, preds, opts); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm: seeds the step pool and compiled-kernel caches
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()

	const rounds = 5
	allocs := testing.AllocsPerRun(rounds, run)
	if allocs > 256 {
		t.Errorf("segmented steady state: %.0f allocations per run, want a small constant (<= 256)", allocs)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	perBranch := float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds*len(branches))
	if perBranch > 2 {
		t.Errorf("segmented steady state allocates %.2f B per branch, want < 2 (steps buffer not pooled?)", perBranch)
	}
}
