package sim

import "encoding/json"

// resultJSON is the wire form of Result: stable snake_case keys plus
// the derived miss percentage, so consumers (plots, dashboards) need
// not recompute it.
type resultJSON struct {
	Conditionals   int     `json:"conditionals"`
	Mispredicts    int     `json:"mispredicts"`
	FirstUses      int     `json:"first_uses,omitempty"`
	Unconditionals int     `json:"unconditionals,omitempty"`
	Flushes        int     `json:"flushes,omitempty"`
	MissPct        float64 `json:"miss_pct"`
}

// MarshalJSON implements json.Marshaler with the stable wire form
// shared by cmd/report, cmd/predsim and run manifests.
func (r Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(resultJSON{
		Conditionals:   r.Conditionals,
		Mispredicts:    r.Mispredicts,
		FirstUses:      r.FirstUses,
		Unconditionals: r.Unconditionals,
		Flushes:        r.Flushes,
		MissPct:        r.MissPercent(),
	})
}

// UnmarshalJSON implements json.Unmarshaler, the inverse of
// MarshalJSON. The derived miss_pct field is ignored; it is
// recomputable from the counts.
func (r *Result) UnmarshalJSON(data []byte) error {
	var w resultJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Result{
		Conditionals:   w.Conditionals,
		Mispredicts:    w.Mispredicts,
		FirstUses:      w.FirstUses,
		Unconditionals: w.Unconditionals,
		Flushes:        w.Flushes,
	}
	return nil
}
