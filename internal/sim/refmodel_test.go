package sim_test

import (
	"testing"

	"gskew/internal/predictor"
	"gskew/internal/refmodel"
	"gskew/internal/sim"
	"gskew/internal/trace"
	"gskew/internal/workload"
)

// specReplay re-implements the runner's measurement methodology on top
// of the executable paper spec: unconditional branches shift the
// history as taken, only conditionals are predicted and counted. It is
// an independent transcription, sharing no code with package sim.
func specReplay(branches []trace.Branch, spec refmodel.Spec) sim.Result {
	h := refmodel.NewSpecHistory(spec.HistoryBits())
	var res sim.Result
	for _, b := range branches {
		switch b.Kind {
		case trace.Conditional:
			res.Conditionals++
			if spec.Predict(b.PC, h.Value()) != b.Taken {
				res.Mispredicts++
			}
			spec.Update(b.PC, h.Value(), b.Taken)
			h.Shift(b.Taken)
		case trace.Unconditional:
			res.Unconditionals++
			h.Shift(true)
		}
	}
	return res
}

// TestRunMatchesSpecReplay: the optimized runner (Run, including its
// fused Stepper fast path) produces the same counts as replaying the
// trace against the paper spec with a spec-level history register.
func TestRunMatchesSpecReplay(t *testing.T) {
	spec, err := workload.ByName("verilog")
	if err != nil {
		t.Fatal(err)
	}
	branches, err := workload.Materialize(spec, workload.Config{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		impl predictor.Predictor
		ref  refmodel.Spec
	}{
		{"bimodal", predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 7, Ctr: 2}), refmodel.NewSpecSingle("bimodal", 7, 0, 2)},
		{"gshare", predictor.MustSpec(predictor.Spec{Family: "gshare", N: 8, Hist: 6, Ctr: 2}), refmodel.NewSpecSingle("gshare", 8, 6, 2)},
		{"gselect", predictor.MustSpec(predictor.Spec{Family: "gselect", N: 8, Hist: 5, Ctr: 2}), refmodel.NewSpecSingle("gselect", 8, 5, 2)},
	}
	skew, err := predictor.NewGSkewed(predictor.Config{
		Banks: 3, BankBits: 6, HistoryBits: 8, CounterBits: 2,
		Policy: predictor.PartialUpdate, Enhanced: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		name string
		impl predictor.Predictor
		ref  refmodel.Spec
	}{"egskew", skew, refmodel.NewSpecGSkewed(6, 8, 2, true, true)})

	var preds []predictor.Predictor
	var want []sim.Result
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got, err := sim.RunBranches(branches, c.impl, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ref := specReplay(branches, c.ref)
			if got.Conditionals != ref.Conditionals || got.Unconditionals != ref.Unconditionals {
				t.Fatalf("event counts: runner %+v, spec %+v", got, ref)
			}
			if got.Mispredicts != ref.Mispredicts {
				t.Errorf("mispredicts: runner %d, spec %d", got.Mispredicts, ref.Mispredicts)
			}
			c.impl.Reset()
			preds = append(preds, c.impl)
			want = append(want, ref)
		})
	}

	// The single-pass multi-predictor runner must agree with the same
	// spec replays, predictor by predictor.
	results, err := sim.RunManyBranches(branches, preds, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Mispredicts != want[i].Mispredicts || r.Conditionals != want[i].Conditionals {
			t.Errorf("RunMany predictor %d: %+v, spec %+v", i, r, want[i])
		}
	}
}
