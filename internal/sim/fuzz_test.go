package sim_test

import (
	"testing"

	"gskew/internal/predictor"
	"gskew/internal/sim"
	"gskew/internal/trace"
)

// FuzzRunSegmented drives the segment-parallel runner against the
// serial path over arbitrary traces and arbitrary segmentation shapes
// (segment count, warm-up window, flush period, predictor family) and
// requires bit-identical results. The trace is the fuzz input's bytes:
// two bits per branch (taken, unconditional), PC drawn from a small
// window of each byte so aliasing is heavy.
func FuzzRunSegmented(f *testing.F) {
	f.Add([]byte{}, uint(2), uint(0), uint(0), uint(0))
	f.Add([]byte{0xFF, 0x00, 0xAA}, uint(3), uint(4), uint(7), uint(1))
	f.Add([]byte{0x12, 0x34, 0x56, 0x78, 0x9A}, uint(100000), uint(1), uint(13), uint(2))
	f.Add([]byte{0xC3, 0xC3, 0xC3, 0xC3}, uint(2), uint(100000), uint(0), uint(3))
	f.Fuzz(func(t *testing.T, data []byte, segments, warmup, flush, fam uint) {
		branches := make([]trace.Branch, 0, 4*len(data))
		for _, b := range data {
			for j := 0; j < 4; j++ {
				bits := b >> (2 * j)
				kind := trace.Conditional
				if bits&2 != 0 && j == 3 {
					kind = trace.Unconditional
				}
				branches = append(branches, trace.Branch{
					PC:    uint64(0x40 + (b>>2)%29),
					Taken: bits&1 != 0,
					Kind:  kind,
				})
			}
		}
		mk := func() predictor.Predictor {
			switch fam % 4 {
			case 0:
				return predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 4, Ctr: 2})
			case 1:
				return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 5, Hist: 4, Ctr: 2})
			case 2:
				return predictor.MustGSkewed(predictor.Config{BankBits: 4, HistoryBits: 4})
			default:
				return predictor.MustSpec(predictor.Spec{Family: "2bcgskew", N: 4, HistShort: 2, Hist: 5})
			}
		}
		opts := fuzzOpts(segments, warmup, flush)
		want, err := sim.RunBranches(branches, mk(), sim.Options{
			Segments: 1, FlushEvery: opts.FlushEvery,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.RunSegmented(trace.NewSliceSource(branches), []predictor.Predictor{mk()}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want {
			t.Fatalf("segments=%d warm=%d flush=%d fam=%d: segmented %+v, serial %+v",
				opts.Segments, opts.WarmBranches, opts.FlushEvery, fam%4, got[0], want)
		}
	})
}

// fuzzOpts folds the fuzzed shape parameters into bounded sim.Options.
func fuzzOpts(segments, warmup, flush uint) sim.Options {
	return sim.Options{
		Segments:     2 + int(segments%200),
		WarmBranches: int(warmup % 5000),
		FlushEvery:   int(flush % 97),
	}
}
