//go:build race

package sim

// raceEnabled reports the race detector is instrumenting this build;
// allocation-accounting gates are meaningless under it.
const raceEnabled = true
