package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the canonical C implementation seeded with 0.
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("SplitMix64(0) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64MatchesSplitMixStep(t *testing.T) {
	// Mix64(x) must equal the first output of a SplitMix64 seeded with x.
	f := func(x uint64) bool {
		return Mix64(x) == NewSplitMix64(x).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a := NewXoshiro256(42)
	b := NewXoshiro256(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed generators diverged at step %d: %#x vs %#x", i, av, bv)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a := NewXoshiro256(1)
	b := NewXoshiro256(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("generators with different seeds produced %d/100 equal outputs", same)
	}
}

func TestUint64nRange(t *testing.T) {
	x := NewXoshiro256(7)
	for _, n := range []uint64{1, 2, 3, 7, 16, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := x.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	NewXoshiro256(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			NewXoshiro256(1).Intn(n)
		}()
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared check over 10 buckets; threshold is the 99.9th
	// percentile of chi2 with 9 degrees of freedom (27.88).
	x := NewXoshiro256(99)
	const buckets = 10
	const samples = 100000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[x.Uint64n(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Errorf("Uint64n distribution too skewed: chi2 = %.2f, counts = %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := x.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %.4f, want ~0.5", mean)
	}
}

func TestBoolEdgeCases(t *testing.T) {
	x := NewXoshiro256(5)
	for i := 0; i < 100; i++ {
		if x.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !x.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if x.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !x.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	x := NewXoshiro256(11)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if x.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %.4f", p)
	}
}

func TestGeometricMean(t *testing.T) {
	x := NewXoshiro256(13)
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += x.Geometric(0.25)
	}
	mean := float64(sum) / n
	if math.Abs(mean-4.0) > 0.15 {
		t.Errorf("Geometric(0.25) mean = %.3f, want ~4", mean)
	}
}

func TestGeometricMinimumIsOne(t *testing.T) {
	x := NewXoshiro256(17)
	for i := 0; i < 10000; i++ {
		if v := x.Geometric(0.9); v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
	}
}

func TestGeometricPanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, -1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			NewXoshiro256(1).Geometric(p)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := NewXoshiro256(23)
	f := func(sz uint8) bool {
		n := int(sz%64) + 1
		dst := make([]int, n)
		x.Perm(dst)
		seen := make([]bool, n)
		for _, v := range dst {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMix64Dispersion(t *testing.T) {
	// Nearby inputs must produce outputs differing in roughly half of
	// the 64 bits on average (avalanche property).
	totalBits := 0
	const n = 1000
	for i := uint64(0); i < n; i++ {
		d := Mix64(i) ^ Mix64(i+1)
		for d != 0 {
			totalBits++
			d &= d - 1
		}
	}
	avg := float64(totalBits) / n
	if avg < 28 || avg > 36 {
		t.Errorf("Mix64 avalanche = %.2f bits, want ~32", avg)
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64()
	}
	_ = sink
}

func BenchmarkMix64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Mix64(uint64(i))
	}
	_ = sink
}
