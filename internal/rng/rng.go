// Package rng provides small, fast, deterministic pseudo-random number
// generators used to synthesise branch traces.
//
// The generators here are seeded explicitly and never draw entropy from
// the environment, so every workload built on top of them is
// bit-reproducible across runs and platforms. The package implements
// splitmix64 (for seeding and cheap one-shot mixing) and xoshiro256**
// (for bulk stream generation), both public-domain algorithms by
// Blackman and Vigna.
package rng

// SplitMix64 is a tiny 64-bit generator with a single word of state.
// It is primarily used to expand one user-provided seed into the larger
// state required by Xoshiro256, and as a cheap stateless mixer.
//
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x. It is a high-quality
// stateless mixing function: distinct inputs produce well-dispersed
// outputs. Mix64(0) != 0.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 implements the xoshiro256** 1.0 generator. It has 256 bits
// of state, passes stringent statistical test batteries, and is fast
// enough to sit inside trace-generation inner loops.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is derived from seed via
// splitmix64, as recommended by the algorithm's authors. Any seed,
// including zero, yields a valid (non-degenerate) state.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	return &x
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}

// Uint64 returns the next value in the sequence.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// The implementation uses Lemire's multiply-shift reduction with a
// rejection step, so the result is exactly uniform.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return x.Uint64() & (n - 1)
	}
	// Rejection sampling on the top range to remove modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := x.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p. Values of p <= 0 always return
// false; values >= 1 always return true.
func (x *Xoshiro256) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return x.Float64() < p
}

// Geometric returns a sample from the geometric distribution with
// success probability p (support {1, 2, 3, ...}, mean 1/p). It panics
// unless 0 < p <= 1. The sample is capped at 1<<20 to bound pathological
// tails when p is tiny.
func (x *Xoshiro256) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	const cap = 1 << 20
	n := 1
	for !x.Bool(p) {
		n++
		if n >= cap {
			break
		}
	}
	return n
}

// Perm fills dst with a uniform random permutation of 0..len(dst)-1
// using the Fisher-Yates shuffle.
func (x *Xoshiro256) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}
