package server

import (
	"context"
	"encoding/base64"
	"fmt"
	"net/http"
	"sync"

	"gskew/internal/api"
	"gskew/internal/predictor"
	"gskew/internal/sim"
	"gskew/internal/store"
	"gskew/internal/trace"
	"gskew/internal/tracepool"
	"gskew/internal/workload"
)

// maxSweepSpecs bounds one request's sweep width; wider sweeps should
// be split across requests (each still shares the store).
const maxSweepSpecs = 256

// handleSimulate runs a spec sweep over one workload, serving every
// cell it can from the store — or, in cluster mode, from the cell's
// owner node — and simulating the rest in a single RunMany pass gated
// by the shared scheduler. Where a cell came from never shows in the
// body (only in X-Cache and the metrics), which is what keeps
// responses byte-identical across cold, cached and cluster serving.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) error {
	mSimRequests.Inc()
	var req api.SimulateRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	if len(req.Specs) == 0 {
		return apiErrorf(http.StatusBadRequest, api.CodeBadRequest, "no specs given")
	}
	if len(req.Specs) > maxSweepSpecs {
		return apiErrorf(http.StatusBadRequest, api.CodeBadRequest,
			"%d specs exceeds the per-request limit of %d", len(req.Specs), maxSweepSpecs)
	}

	// Canonicalise every spec up front: the canonical string is the
	// store key component, so misspellings fail fast and equivalent
	// spellings share cache cells.
	specs := make([]predictor.Spec, len(req.Specs))
	canon := make([]string, len(req.Specs))
	for i, text := range req.Specs {
		sp, err := predictor.ParseSpec(text)
		if err != nil {
			return apiErrorf(http.StatusBadRequest, api.CodeBadSpec, "spec %d: %v", i, err)
		}
		specs[i] = sp
		canon[i] = sp.String()
	}

	branches, traceHash, info, err := s.resolveWorkload(r.Context(), &req)
	if err != nil {
		return err
	}

	opts := req.Options // already the normalized subset
	mSimCells.Add(int64(len(specs)))

	// First pass: collect what the store already has; for store misses
	// on keys another node owns, ask that owner before simulating (peer
	// fill). A filled cell is stored locally too, so the next request
	// here is a plain store hit.
	keys := make([]store.Key, len(specs))
	entries := make([]store.Entry, len(specs))
	var missing []int
	localHits := 0
	for i := range specs {
		keys[i] = store.KeyFor(canon[i], traceHash, opts)
		if e, ok := s.store.Get(keys[i]); ok {
			entries[i] = e
			localHits++
			continue
		}
		if s.cluster != nil && !s.cluster.OwnsSelf(keys[i].String()) {
			if e, ok := s.cluster.FillCell(r.Context(), keys[i]); ok {
				entries[i] = e
				s.store.Put(keys[i], e)
				continue
			}
		}
		missing = append(missing, i)
	}
	mCacheHits.Add(int64(localHits))
	mCacheMisses.Add(int64(len(specs) - localHits))

	// Second pass: one single-pass multi-predictor simulation for every
	// cell neither the store nor a peer had, bounded by the shared
	// scheduler. Fresh cells are then offered to their replica set so
	// the cluster converges on R copies of hot cells.
	if len(missing) > 0 {
		preds := make([]predictor.Predictor, len(missing))
		for j, i := range missing {
			p, err := specs[i].New()
			if err != nil {
				return apiErrorf(http.StatusBadRequest, api.CodeBadSpec, "spec %d (%s): %v", i, canon[i], err)
			}
			preds[j] = p
		}
		results, err := s.runGated(r.Context(), branches, preds, opts.Sim())
		if err != nil {
			return err
		}
		for j, i := range missing {
			entries[i] = store.Entry{
				Schema:      store.SchemaVersion,
				Spec:        canon[i],
				TraceHash:   traceHash,
				Opts:        opts,
				StorageBits: preds[j].StorageBits(),
				Result:      results[j],
			}
			if err := s.store.Put(keys[i], entries[i]); err != nil {
				return fmt.Errorf("storing cell %s: %w", keys[i], err)
			}
			if s.cluster != nil {
				s.cluster.OfferCell(r.Context(), keys[i], entries[i])
			}
		}
	}

	resp := api.SimulateResponse{Workload: info, Options: opts, Results: make([]api.SimulateCell, len(specs))}
	for i := range specs {
		resp.Results[i] = api.SimulateCell{
			Spec:        canon[i],
			Key:         keys[i].String(),
			StorageBits: entries[i].StorageBits,
			Result:      entries[i].Result,
		}
	}
	w.Header().Set("X-Cache", fmt.Sprintf("hits=%d misses=%d", len(specs)-len(missing), len(missing)))
	return writeJSON(w, resp)
}

// runGated claims a scheduler slot (or gives up when the request
// context — which carries the configured SimTimeout — ends first) and
// runs one RunMany pass. The queue-depth gauge counts requests between
// arrival at the gate and completion of their pass.
func (s *Server) runGated(ctx context.Context, branches []trace.Branch, preds []predictor.Predictor, opts sim.Options) ([]sim.Result, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.SimTimeout)
	defer cancel()
	mQueueDepth.Add(1)
	defer mQueueDepth.Add(-1)
	if err := s.sched.Acquire(ctx); err != nil {
		return nil, apiErrorf(http.StatusServiceUnavailable, api.CodeQueueFull, "simulation queue full: %v", err)
	}
	defer s.sched.Release()
	if opts.Segments == 0 {
		// Server-wide segment-parallel default; never in the cache key
		// because results are bit-identical at any split.
		opts.Segments = s.cfg.Segments
	}
	results, err := sim.RunMany(trace.NewSliceSource(branches), preds, opts)
	if err != nil {
		return nil, fmt.Errorf("simulating: %w", err)
	}
	return results, nil
}

// resolveWorkload materialises the request's trace: a cached named
// benchmark, an uploaded binary trace, or a pool segment by hash (with
// an owner-forwarded cluster lookup behind a local pool miss).
func (s *Server) resolveWorkload(ctx context.Context, req *api.SimulateRequest) ([]trace.Branch, string, api.WorkloadInfo, error) {
	given := 0
	for _, set := range []bool{req.Bench != "", req.TraceB64 != "", req.TraceSHA256 != ""} {
		if set {
			given++
		}
	}
	switch {
	case given > 1:
		return nil, "", api.WorkloadInfo{}, apiErrorf(http.StatusBadRequest, api.CodeBadWorkload,
			"give exactly one of bench, trace_b64 or trace_sha256")
	case req.Bench != "":
		if req.Scale < 0 || req.Scale > 1 {
			return nil, "", api.WorkloadInfo{}, apiErrorf(http.StatusBadRequest, api.CodeBadWorkload,
				"scale %g out of range [0,1] (0 = default)", req.Scale)
		}
		mt, err := s.traces.get(req.Bench, req.Scale, req.Seed)
		if err != nil {
			return nil, "", api.WorkloadInfo{}, apiErrorf(http.StatusBadRequest, api.CodeBadWorkload, "workload: %v", err)
		}
		info := api.WorkloadInfo{
			Bench: req.Bench, Scale: req.Scale, Seed: req.Seed,
			TraceSHA256: mt.hash, Branches: len(mt.branches),
		}
		return mt.branches, mt.hash, info, nil
	case req.TraceB64 != "":
		raw, err := base64.StdEncoding.DecodeString(req.TraceB64)
		if err != nil {
			return nil, "", api.WorkloadInfo{}, apiErrorf(http.StatusBadRequest, api.CodeBadTrace, "trace_b64: %v", err)
		}
		branches, err := trace.DecodeBytes(raw)
		if err != nil {
			return nil, "", api.WorkloadInfo{}, apiErrorf(http.StatusBadRequest, api.CodeBadTrace, "trace_b64: %v", err)
		}
		// Put-through: an inlined trace becomes poolable by hash, so a
		// client can upload once and sweep by trace_sha256 thereafter.
		hash, _, err := s.pool.Put(branches)
		if err != nil {
			return nil, "", api.WorkloadInfo{}, fmt.Errorf("pooling trace: %w", err)
		}
		return branches, hash, api.WorkloadInfo{TraceSHA256: hash, Branches: len(branches)}, nil
	case req.TraceSHA256 != "":
		branches, ok := s.pool.Get(req.TraceSHA256)
		if !ok && s.cluster != nil && !s.cluster.OwnsSelf(req.TraceSHA256) {
			// Owner-forwarded lookup: the segment may have been ingested
			// on (or forwarded to) the hash's owner. Pool it locally on
			// success so this node serves it directly next time.
			if fetched, hit := s.cluster.FetchTrace(ctx, req.TraceSHA256); hit {
				branches, ok = fetched, true
				s.pool.Put(branches)
			}
		}
		if !ok {
			return nil, "", api.WorkloadInfo{}, apiErrorf(http.StatusNotFound, api.CodeNoSuchTrace,
				"no pooled trace %s", req.TraceSHA256)
		}
		return branches, req.TraceSHA256, api.WorkloadInfo{TraceSHA256: req.TraceSHA256, Branches: len(branches)}, nil
	default:
		return nil, "", api.WorkloadInfo{}, apiErrorf(http.StatusBadRequest, api.CodeBadWorkload,
			"no workload: give bench, trace_b64 or trace_sha256")
	}
}

// materialisedTrace is one resident benchmark realisation.
type materialisedTrace struct {
	once     sync.Once
	branches []trace.Branch
	hash     string
	err      error
}

// traceCache shares materialised benchmark traces across requests,
// keyed by (bench, scale, seed). Generation happens outside the map
// lock behind a per-key once (the experiments.Context idiom), so
// concurrent first requests for the same workload materialise it
// exactly once. Capacity is bounded: inserting beyond it drops an
// arbitrary other completed entry — dropped slices stay valid for
// in-flight requests (they are immutable) and simply re-materialise on
// next use. The cache writes through to the trace segment pool under
// the same (bench, scale, seed) name: a pooled segment survives
// eviction (and, with a disk-backed pool, process restarts), so a
// re-requested workload is decoded from the pool instead of
// regenerated, and every benchmark materialisation is automatically
// addressable by trace_sha256.
type traceCache struct {
	mu   sync.Mutex
	max  int
	pool *tracepool.Pool
	m    map[string]*materialisedTrace
}

func newTraceCache(max int, pool *tracepool.Pool) *traceCache {
	return &traceCache{max: max, pool: pool, m: make(map[string]*materialisedTrace)}
}

func (c *traceCache) get(bench string, scale float64, seed uint64) (*materialisedTrace, error) {
	key := fmt.Sprintf("%s|%g|%d", bench, scale, seed)
	if workload.IsAlgo(bench) {
		// Scale does not apply to recorded algorithms; a scale-free key
		// shares the pooled segment with CLI and experiments runs.
		key = fmt.Sprintf("%s|%d", bench, seed)
	}
	c.mu.Lock()
	mt := c.m[key]
	if mt == nil {
		if len(c.m) >= c.max {
			for k := range c.m {
				if k != key {
					delete(c.m, k)
					break
				}
			}
		}
		mt = &materialisedTrace{}
		c.m[key] = mt
	}
	c.mu.Unlock()
	mt.once.Do(func() {
		if branches, hash, ok := c.pool.GetNamed(key); ok {
			mt.branches, mt.hash = branches, hash
			return
		}
		mt.branches, mt.err = workload.MaterializeAny(bench, workload.Config{Scale: scale, SeedOffset: seed})
		if mt.err == nil {
			mt.hash = trace.HashBranches(mt.branches)
			// Write-through; a pool failure only costs re-materialisation.
			c.pool.PutNamed(key, mt.branches)
		}
	})
	if mt.err != nil {
		// Do not cache failures.
		c.mu.Lock()
		if c.m[key] == mt {
			delete(c.m, key)
		}
		c.mu.Unlock()
		return nil, mt.err
	}
	return mt, nil
}

// specExamples gives one valid canonical example per family.
var specExamples = map[string]string{
	"bimodal":    "bimodal:n=14,ctr=2",
	"gshare":     "gshare:n=14,k=12,ctr=2",
	"gselect":    "gselect:n=14,k=6,ctr=2",
	"gskewed":    "gskewed:n=12,k=8,banks=3,ctr=2,policy=partial",
	"egskew":     "egskew:n=12,k=12,ctr=2,policy=partial",
	"2bcgskew":   "2bcgskew:n=12,ks=7,k=14",
	"agree":      "agree:n=12,k=10,bias=12,ctr=2",
	"bimode":     "bimode:n=12,k=10,choice=12,ctr=2",
	"pas":        "pas:bht=10,local=8,n=12,ctr=2",
	"skewed-pas": "skewed-pas:bht=10,local=8,n=12,ctr=2,policy=partial",
	"unaliased":  "unaliased:k=12,ctr=2",
	"assoc-lru":  "assoc-lru:entries=1024,k=4,ctr=2",
	"tage":       "tage:n=9,k=20,kmin=4,tables=4,tag=8,ctr=3",
	"perceptron": "perceptron:n=9,k=16,tables=8,theta=44,ctr=8",
}

// handleSpecs serves grammar discovery: every predictor family with
// its accepted keys and a worked example, the benchmark suite, and the
// option and schema vocabulary a client needs to construct requests.
func (s *Server) handleSpecs(w http.ResponseWriter, _ *http.Request) error {
	fams := predictor.Families()
	docs := make([]api.SpecFamily, len(fams))
	for i, f := range fams {
		docs[i] = api.SpecFamily{Family: f, Keys: predictor.AllowedKeys(f), Example: specExamples[f]}
	}
	return writeJSON(w, api.SpecsResponse{
		Families:      docs,
		Benchmarks:    workload.Names(),
		Options:       []string{"skip_first_use", "history_bits", "flush_every"},
		SchemaVersion: store.SchemaVersion,
	})
}
