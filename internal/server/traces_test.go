package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gskew/internal/api"
	"gskew/internal/trace"
	"gskew/internal/tracepool"
	"gskew/internal/workload"
)

// testTrace builds a small deterministic branch sequence.
func testTrace(n int) []trace.Branch {
	branches := make([]trace.Branch, 0, 2*n)
	for i := 0; i < n; i++ {
		branches = append(branches,
			trace.Branch{PC: 0x400 + uint64(i%13)*4, Taken: i%3 != 0, Kind: trace.Conditional},
			trace.Branch{PC: 0x900, Taken: true, Kind: trace.Unconditional})
	}
	return branches
}

// encodeVarintTest serialises branches through the varint writer.
func encodeVarintTest(t *testing.T, branches []trace.Branch) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range branches {
		if err := w.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postRaw uploads arbitrary bytes through the typed client's raw
// escape hatch.
func postRaw(t *testing.T, rawURL string, body []byte) (int, string) {
	t.Helper()
	c, path := testClient(t, rawURL)
	status, data, _, err := c.Do(context.Background(), http.MethodPost, path, "application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	return status, string(data)
}

// getRaw fetches a path's raw bytes and headers through the typed
// client's escape hatch.
func getRaw(t *testing.T, rawURL string) (int, []byte, http.Header) {
	t.Helper()
	c, path := testClient(t, rawURL)
	status, data, hdr, err := c.Do(context.Background(), http.MethodGet, path, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	return status, data, hdr
}

func TestTraceIngestAndGet(t *testing.T) {
	ts := newTestServer(t, Config{})
	branches := testTrace(400)
	wantHash := trace.HashBranches(branches)

	// Ingest the varint serialisation.
	status, body1 := postRaw(t, ts.URL+"/v1/traces", encodeVarintTest(t, branches))
	if status != http.StatusOK {
		t.Fatalf("ingest status %d: %s", status, body1)
	}
	var resp api.TraceIngestResponse
	if err := json.Unmarshal([]byte(body1), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceSHA256 != wantHash {
		t.Errorf("ingest hash %s, want %s", resp.TraceSHA256, wantHash)
	}
	if resp.Branches != len(branches) {
		t.Errorf("ingest branches %d, want %d", resp.Branches, len(branches))
	}

	// Re-ingesting the same content in the columnar serialisation must
	// return a byte-identical response: the pool is content-addressed,
	// so the serialisation that delivered the bytes is irrelevant.
	columnar, err := trace.EncodeColumnar(branches)
	if err != nil {
		t.Fatal(err)
	}
	status, body2 := postRaw(t, ts.URL+"/v1/traces", columnar)
	if status != http.StatusOK {
		t.Fatalf("re-ingest status %d: %s", status, body2)
	}
	if body1 != body2 {
		t.Errorf("repeat ingest responses differ:\n%s\n%s", body1, body2)
	}

	// GET serves the canonical columnar bytes back.
	gstatus, served, hdr := getRaw(t, ts.URL+"/v1/traces/"+wantHash)
	if gstatus != http.StatusOK {
		t.Fatalf("get status %d: %s", gstatus, served)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content type %q", ct)
	}
	if !bytes.Equal(served, columnar) {
		t.Error("served trace bytes are not the canonical columnar encoding")
	}
	got, err := trace.DecodeBytes(served)
	if err != nil {
		t.Fatal(err)
	}
	if trace.HashBranches(got) != wantHash {
		t.Error("served trace decodes to different content")
	}
}

func TestTraceIngestRejectsGarbage(t *testing.T) {
	ts := newTestServer(t, Config{})
	for name, body := range map[string][]byte{
		"empty":      nil,
		"not magic":  []byte("hello, world"),
		"truncated":  encodeVarintTest(t, testTrace(300))[:7],
		"bad crc":    flipLastByte(t, testTrace(300)),
		"text trace": []byte("C 0x400 T\n"),
	} {
		status, out := postRaw(t, ts.URL+"/v1/traces", body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, status, out)
		}
		wantCode(t, name, out, api.CodeBadTrace)
	}
}

// flipLastByte corrupts a columnar encoding's final payload byte, which
// the block CRC must reject.
func flipLastByte(t *testing.T, branches []trace.Branch) []byte {
	t.Helper()
	enc, err := trace.EncodeColumnar(branches)
	if err != nil {
		t.Fatal(err)
	}
	enc[len(enc)-1] ^= 0xff
	return enc
}

func TestTraceGetMisses(t *testing.T) {
	ts := newTestServer(t, Config{})
	for name, hash := range map[string]string{
		"unknown":   strings.Repeat("ab", 32),
		"malformed": "not-a-hash",
		"uppercase": strings.Repeat("AB", 32),
	} {
		status, out, _ := getRaw(t, ts.URL+"/v1/traces/"+hash)
		if status != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", name, status)
		}
		wantCode(t, name, string(out), api.CodeNoSuchTrace)
	}
}

// TestSimulateByHashMatchesInline is the ingest-then-sweep contract:
// simulating by trace_sha256 must return a byte-identical body to
// inlining the same trace as trace_b64.
func TestSimulateByHashMatchesInline(t *testing.T) {
	ts := newTestServer(t, Config{})
	branches := testTrace(500)
	enc := encodeVarintTest(t, branches)

	inlineBody := fmt.Sprintf(`{"specs":["gshare:n=7,k=5"],"trace_b64":%q}`, base64.StdEncoding.EncodeToString(enc))
	status, inline, _ := postJSON(t, ts.URL+"/v1/simulate", inlineBody)
	if status != http.StatusOK {
		t.Fatalf("inline status %d: %s", status, inline)
	}

	// The inline request put the trace through to the pool, so the hash
	// in its response is immediately addressable.
	hash := trace.HashBranches(branches)
	hashBody := fmt.Sprintf(`{"specs":["gshare:n=7,k=5"],"trace_sha256":%q}`, hash)
	status, byHash, _ := postJSON(t, ts.URL+"/v1/simulate", hashBody)
	if status != http.StatusOK {
		t.Fatalf("by-hash status %d: %s", status, byHash)
	}
	if inline != byHash {
		t.Errorf("inline and by-hash responses differ:\n--- inline ---\n%s--- by-hash ---\n%s", inline, byHash)
	}

	// Ingest-first is equivalent too.
	status, _ = postRaw(t, ts.URL+"/v1/traces", enc)
	if status != http.StatusOK {
		t.Fatalf("ingest status %d", status)
	}
	status, again, _ := postJSON(t, ts.URL+"/v1/simulate", hashBody)
	if status != http.StatusOK || again != inline {
		t.Errorf("post-ingest by-hash response diverged (status %d)", status)
	}
}

func TestSimulateByHashRejections(t *testing.T) {
	ts := newTestServer(t, Config{})
	for name, tc := range map[string]struct {
		body string
		want int
		code string
	}{
		"unpooled hash":  {fmt.Sprintf(`{"specs":["bimodal:n=8"],"trace_sha256":%q}`, strings.Repeat("cd", 32)), http.StatusNotFound, api.CodeNoSuchTrace},
		"malformed hash": {`{"specs":["bimodal:n=8"],"trace_sha256":"../../etc/passwd"}`, http.StatusNotFound, api.CodeNoSuchTrace},
		"hash and bench": {fmt.Sprintf(`{"specs":["bimodal:n=8"],"bench":"verilog","trace_sha256":%q}`, strings.Repeat("cd", 32)), http.StatusBadRequest, api.CodeBadWorkload},
		"all three":      {fmt.Sprintf(`{"specs":["bimodal:n=8"],"bench":"verilog","trace_b64":"aGk=","trace_sha256":%q}`, strings.Repeat("cd", 32)), http.StatusBadRequest, api.CodeBadWorkload},
	} {
		status, out, _ := postJSON(t, ts.URL+"/v1/simulate", tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", name, status, tc.want, out)
		}
		wantCode(t, name, out, tc.code)
	}
}

// TestAlgoTraceRoundTripAndSweep: a recorded-algorithm trace behaves
// like any other content: ingest returns its content hash, GET serves
// byte-identical canonical columnar bytes, and sweep-by-hash responses
// are byte-identical cold vs cached. The server also materialises
// algo:... workloads directly through the bench parameter.
func TestAlgoTraceRoundTripAndSweep(t *testing.T) {
	ts := newTestServer(t, Config{})
	const spec = "algo:kmp,n=4000,m=6,sigma=2,pat=rand,seed=11"
	branches, err := workload.MaterializeAny(spec, workload.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantHash := trace.HashBranches(branches)
	columnar, err := trace.EncodeColumnar(branches)
	if err != nil {
		t.Fatal(err)
	}

	status, body := postRaw(t, ts.URL+"/v1/traces", columnar)
	if status != http.StatusOK {
		t.Fatalf("ingest status %d: %s", status, body)
	}
	var resp api.TraceIngestResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceSHA256 != wantHash {
		t.Errorf("ingest hash %s, want %s", resp.TraceSHA256, wantHash)
	}

	gstatus, served, _ := getRaw(t, ts.URL+"/v1/traces/"+wantHash)
	if gstatus != http.StatusOK {
		t.Fatalf("get status %d", gstatus)
	}
	if !bytes.Equal(served, columnar) {
		t.Error("served algo trace is not byte-identical to the canonical columnar encoding")
	}

	sweep := fmt.Sprintf(`{"specs":["bimodal:n=4,ctr=2","gshare:n=7,k=5"],"trace_sha256":%q}`, wantHash)
	status, cold, _ := postJSON(t, ts.URL+"/v1/simulate", sweep)
	if status != http.StatusOK {
		t.Fatalf("cold sweep status %d: %s", status, cold)
	}
	status, cached, _ := postJSON(t, ts.URL+"/v1/simulate", sweep)
	if status != http.StatusOK {
		t.Fatalf("cached sweep status %d: %s", status, cached)
	}
	if cold != cached {
		t.Errorf("sweep-by-hash responses differ cold vs cached:\n--- cold ---\n%s--- cached ---\n%s", cold, cached)
	}

	// bench="algo:..." materialises on the server and must agree with
	// the ingested stream: same content hash in the workload info.
	status, byBench, _ := postJSON(t, ts.URL+"/v1/simulate",
		fmt.Sprintf(`{"specs":["bimodal:n=4,ctr=2","gshare:n=7,k=5"],"bench":%q}`, spec))
	if status != http.StatusOK {
		t.Fatalf("bench sweep status %d: %s", status, byBench)
	}
	var benchResp struct {
		Workload struct {
			TraceSHA256 string `json:"trace_sha256"`
		} `json:"workload"`
	}
	if err := json.Unmarshal([]byte(byBench), &benchResp); err != nil {
		t.Fatal(err)
	}
	if benchResp.Workload.TraceSHA256 != wantHash {
		t.Errorf("bench materialisation hash %s, want %s — server-side recording diverged",
			benchResp.Workload.TraceSHA256, wantHash)
	}

	// Unknown algorithm name is a workload error, not a 500.
	status, bad, _ := postJSON(t, ts.URL+"/v1/simulate", `{"specs":["bimodal:n=8"],"bench":"algo:bogosort"}`)
	if status != http.StatusBadRequest {
		t.Errorf("bogus algo spec: status %d (%s), want 400", status, bad)
	}
	wantCode(t, "bogus algo", bad, api.CodeBadWorkload)
}

// TestTracePoolDiskSharing: a disk-backed pool dedups across server
// instances — a second server over the same directory serves a segment
// it never saw ingested, and repeated ingests leave exactly one blob.
func TestTracePoolDiskSharing(t *testing.T) {
	dir := t.TempDir()
	pool1, err := tracepool.Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newTestServer(t, Config{Pool: pool1})
	branches := testTrace(350)
	hash := trace.HashBranches(branches)

	for i := 0; i < 3; i++ {
		if status, out := postRaw(t, ts1.URL+"/v1/traces", encodeVarintTest(t, branches)); status != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, status, out)
		}
	}
	blobs, err := filepath.Glob(filepath.Join(dir, "*.ctrace"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 1 {
		t.Fatalf("%d blobs after 3 ingests of one trace, want 1", len(blobs))
	}
	if got := filepath.Base(blobs[0]); got != hash+".ctrace" {
		t.Errorf("blob named %s, want %s.ctrace", got, hash)
	}

	pool2, err := tracepool.Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newTestServer(t, Config{Pool: pool2})
	gstatus, served, _ := getRaw(t, ts2.URL+"/v1/traces/"+hash)
	if gstatus != http.StatusOK {
		t.Fatalf("second server over shared dir: status %d", gstatus)
	}
	got, err := trace.DecodeBytes(served)
	if err != nil {
		t.Fatal(err)
	}
	if trace.HashBranches(got) != hash {
		t.Error("shared pool served different content")
	}

	// A corrupted blob degrades to a miss on a fresh pool, never to a
	// wrong trace.
	if err := os.WriteFile(blobs[0], []byte("GSKC garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	pool3, err := tracepool.Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts3 := newTestServer(t, Config{Pool: pool3})
	cstatus, _, _ := getRaw(t, ts3.URL+"/v1/traces/"+hash)
	if cstatus != http.StatusNotFound {
		t.Errorf("corrupted blob: status %d, want 404", cstatus)
	}
}

// TestBenchWorkloadsArePooled: materialising a benchmark through
// /v1/simulate write-throughs to the pool, so the workload's hash is
// addressable and a pool-sharing restart skips regeneration.
func TestBenchWorkloadsArePooled(t *testing.T) {
	dir := t.TempDir()
	pool, err := tracepool.Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Pool: pool})
	status, body, _ := postJSON(t, ts.URL+"/v1/simulate", `{"specs":["bimodal:n=8"],"bench":"verilog","scale":0.002}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp struct {
		Workload struct {
			TraceSHA256 string `json:"trace_sha256"`
		} `json:"workload"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if !pool.Contains(resp.Workload.TraceSHA256) {
		t.Error("benchmark materialisation not pooled")
	}
	// And it is now hash-addressable for simulation.
	status, byHash, _ := postJSON(t, ts.URL+"/v1/simulate",
		fmt.Sprintf(`{"specs":["bimodal:n=8"],"trace_sha256":%q}`, resp.Workload.TraceSHA256))
	if status != http.StatusOK {
		t.Errorf("by-hash simulate of pooled benchmark: status %d: %s", status, byHash)
	}
}
