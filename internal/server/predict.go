package server

import (
	"net/http"
	"runtime"
	"sync"
	"time"

	"gskew/internal/api"
	"gskew/internal/kernel"
	"gskew/internal/predictor"
	"gskew/internal/sim"
)

// The wire shapes of /v1/predict (api.PredictRequest, api.Branch,
// api.PredictResponse) live in internal/api with the rest of the
// contract; this file is their serving side.

// session is one pinned predictor instance: the tenant-isolated state
// of a /v1/predict stream. Each session owns its predictor, its
// compiled kernel and its global-history register; nothing is shared
// between sessions, so one client's stream can never train another's
// predictor (the isolation property motivating per-tenant predictor
// state).
type session struct {
	mu       sync.Mutex
	spec     string
	p        predictor.Predictor
	kern     kernel.Kernel     // non-nil when the organisation compiles
	stepper  predictor.Stepper // non-nil fused fast path
	hist     uint              // runner history bits the kernel compiled against
	mask     uint64
	ghr      uint64
	steps    []kernel.Step // reused staging buffer for the kernel path
	conds    int
	mispred  int
	lastUsed time.Time
}

// sessionTable is the bounded session registry. Inserting beyond
// capacity evicts the least recently used session (its predictor state
// is gone; a client returning to an evicted id transparently starts a
// fresh session by re-sending the spec).
type sessionTable struct {
	mu  sync.Mutex
	max int
	m   map[string]*session
}

func newSessionTable(max int) *sessionTable {
	return &sessionTable{max: max, m: make(map[string]*session)}
}

func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// acquire returns the named session, creating it (with spec) when
// absent. The returned session is NOT locked; callers lock it for the
// duration of their batch.
func (t *sessionTable) acquire(id, spec string) (*session, error) {
	if id == "" {
		return nil, apiErrorf(http.StatusBadRequest, api.CodeBadRequest, "no session id")
	}
	// Canonicalise before any comparison so re-sending the session's
	// spec in a different spelling stays idempotent.
	var (
		sp    predictor.Spec
		canon string
	)
	if spec != "" {
		var err error
		sp, err = predictor.ParseSpec(spec)
		if err != nil {
			return nil, apiErrorf(http.StatusBadRequest, api.CodeBadSpec, "spec: %v", err)
		}
		canon = sp.String()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.m[id]; ok {
		s.mu.Lock()
		s.lastUsed = time.Now()
		if canon != "" && canon != s.spec {
			cur := s.spec
			s.mu.Unlock()
			return nil, apiErrorf(http.StatusConflict, api.CodeSessionConflict,
				"session %q is pinned to %s (got %s); use a new session id", id, cur, canon)
		}
		s.mu.Unlock()
		return s, nil
	}
	if spec == "" {
		return nil, apiErrorf(http.StatusNotFound, api.CodeNoSuchSession,
			"session %q does not exist; create it by sending a spec", id)
	}
	p, err := sp.New()
	if err != nil {
		return nil, apiErrorf(http.StatusBadRequest, api.CodeBadSpec, "spec: %v", err)
	}
	if len(t.m) >= t.max {
		t.evictLRU()
	}
	k := p.HistoryBits()
	s := &session{
		spec:     canon,
		p:        p,
		hist:     k,
		mask:     uint64(1)<<k - 1,
		lastUsed: time.Now(),
	}
	s.kern, _ = kernel.Compile(p, k)
	s.stepper, _ = p.(predictor.Stepper)
	t.m[id] = s
	mSessions.Set(int64(len(t.m)))
	return s, nil
}

// evictLRU drops the least recently used session. Caller holds t.mu.
func (t *sessionTable) evictLRU() {
	var oldestID string
	var oldest time.Time
	for id, s := range t.m {
		s.mu.Lock()
		when := s.lastUsed
		s.mu.Unlock()
		if oldestID == "" || when.Before(oldest) {
			oldestID, oldest = id, when
		}
	}
	delete(t.m, oldestID)
}

// remove deletes a session, reporting whether it existed.
func (t *sessionTable) remove(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.m[id]
	delete(t.m, id)
	mSessions.Set(int64(len(t.m)))
	return ok
}

// segmentPredictMin is the staged-batch size below which
// segment-parallel execution is not worth its warm-up and reconcile
// overhead.
const segmentPredictMin = 1 << 15

// segmentSteps routes a large staged batch through the
// segment-parallel engine (bit-identical to the serial StepBatch; the
// caller still invalidates). ok is false when the batch is small, the
// host is single-core, or the organisation is ineligible — callers
// then take the serial kernel path.
func (s *Server) segmentSteps(sess *session) (int, bool) {
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 || len(sess.steps) < segmentPredictMin {
		return 0, false
	}
	return sim.SegmentSteps(sess.p, sess.hist, sess.steps, procs, 0)
}

// handlePredict appends one batch of branches to a session. The
// default path stages conditionals and drives the compiled kernel one
// StepBatch call per batch — segment-parallel across cores when the
// batch is large enough (segmentSteps); when the client wants
// per-branch predictions (or the organisation has no kernel) the
// batch runs through the generic fused-step path instead. All paths
// are bit-identical, mirroring the sim runner's contract.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) error {
	mPredReqs.Inc()
	var req api.PredictRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	sess, err := s.sessions.acquire(req.Session, req.Spec)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	mPredSteps.Add(int64(len(req.Branches)))

	resp := api.PredictResponse{Session: req.Session, Spec: sess.spec}
	if req.ReturnPredictions {
		resp.Predictions = make([]bool, 0, len(req.Branches))
	}

	useKernel := sess.kern != nil && !req.ReturnPredictions
	if useKernel {
		sess.steps = sess.steps[:0]
		for i := range req.Branches {
			b := &req.Branches[i]
			if b.Uncond {
				sess.ghr = sess.ghr<<1 | 1
				continue
			}
			sess.steps = append(sess.steps, kernel.Step{PC: b.PC, Hist: sess.ghr, Taken: b.Taken})
			resp.Conditionals++
			if b.Taken {
				sess.ghr = sess.ghr<<1 | 1
			} else {
				sess.ghr = sess.ghr << 1
			}
		}
		if n, ok := s.segmentSteps(sess); ok {
			resp.Mispredicts = n
		} else {
			resp.Mispredicts = sess.kern.StepBatch(sess.steps)
		}
		// The kernel trains the predictor's tables directly; invalidate
		// any memoised read state so a later generic batch (or a spec
		// inspection) observes the trained tables.
		kernel.Invalidate(sess.p)
	} else {
		for i := range req.Branches {
			b := &req.Branches[i]
			if b.Uncond {
				sess.ghr = sess.ghr<<1 | 1
				continue
			}
			h := sess.ghr & sess.mask
			var pred bool
			if sess.stepper != nil {
				pred = sess.stepper.Step(b.PC, h, b.Taken)
			} else {
				pred = sess.p.Predict(b.PC, h)
				sess.p.Update(b.PC, h, b.Taken)
			}
			resp.Conditionals++
			if pred != b.Taken {
				resp.Mispredicts++
			}
			if resp.Predictions != nil {
				resp.Predictions = append(resp.Predictions, pred)
			}
			if b.Taken {
				sess.ghr = sess.ghr<<1 | 1
			} else {
				sess.ghr = sess.ghr << 1
			}
		}
	}
	sess.conds += resp.Conditionals
	sess.mispred += resp.Mispredicts
	resp.TotalConditionals = sess.conds
	resp.TotalMispredicts = sess.mispred
	return writeJSON(w, resp)
}

// handleEndSession releases a session's predictor state.
func (s *Server) handleEndSession(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("session")
	if !s.sessions.remove(id) {
		return apiErrorf(http.StatusNotFound, api.CodeNoSuchSession, "session %q does not exist", id)
	}
	return writeJSON(w, api.SessionEndResponse{Session: id, Status: "ended"})
}
