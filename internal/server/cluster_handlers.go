package server

import (
	"encoding/hex"
	"net/http"
	"strconv"

	"gskew/internal/api"
	"gskew/internal/store"
	"gskew/internal/trace"
	"gskew/internal/tracepool"
)

// The cluster-internal surface (/internal/v1/*) is the node-to-node
// half of the peer-fill protocol. It is only registered when the node
// runs with a cluster view, and it shares the public surface's error
// envelope. Every handler applies the wrong_owner guard: a request for
// a key/hash this node does not own under its current ring means the
// sender's topology is stale, and answering would let two topology
// generations disagree about where cells live. 421 tells the sender to
// fall back to local work (which is always correct — ownership is
// routing, not correctness).

// parseCellKey decodes the hex path element of /internal/v1/cells/{key}.
func parseCellKey(ks string) (store.Key, error) {
	var k store.Key
	raw, err := hex.DecodeString(ks)
	if err != nil || len(raw) != len(k) {
		return k, apiErrorf(http.StatusBadRequest, api.CodeBadRequest, "malformed cell key %q", ks)
	}
	copy(k[:], raw)
	return k, nil
}

// guardOwnership rejects requests for keys outside this node's replica
// set with 421/wrong_owner.
func (s *Server) guardOwnership(what, key string) error {
	if s.cluster.OwnsSelf(key) {
		return nil
	}
	s.cluster.MarkWrongOwner()
	return apiErrorf(http.StatusMisdirectedRequest, api.CodeWrongOwner,
		"%s %s is not owned by %s under ring gen %d", what, key, s.cluster.Self(), s.cluster.Info().Gen)
}

// handleCellGet serves a stored cell to a peer (the read half of peer
// fill). A miss is 404/no_such_cell: the asker simulates locally.
func (s *Server) handleCellGet(w http.ResponseWriter, r *http.Request) error {
	ks := r.PathValue("key")
	k, err := parseCellKey(ks)
	if err != nil {
		return err
	}
	if err := s.guardOwnership("cell", ks); err != nil {
		return err
	}
	e, ok := s.store.Get(k)
	if !ok {
		return apiErrorf(http.StatusNotFound, api.CodeNoSuchCell, "cell %s not stored here", ks)
	}
	return writeJSON(w, e)
}

// handleCellPut accepts a replicated cell from a peer (the write half
// of peer fill). The entry must re-derive the key it is offered under —
// a peer cannot plant a result under someone else's address.
func (s *Server) handleCellPut(w http.ResponseWriter, r *http.Request) error {
	ks := r.PathValue("key")
	k, err := parseCellKey(ks)
	if err != nil {
		return err
	}
	if err := s.guardOwnership("cell", ks); err != nil {
		return err
	}
	var e store.Entry
	if err := decodeJSON(r, &e); err != nil {
		return err
	}
	if e.Schema == 0 {
		e.Schema = store.SchemaVersion
	}
	if e.Key() != k {
		return apiErrorf(http.StatusBadRequest, api.CodeBadRequest,
			"offered cell re-derives %s, not %s", e.Key(), ks)
	}
	if err := s.store.Put(k, e); err != nil {
		return err
	}
	return writeJSON(w, api.CellOfferResponse{Key: ks, Stored: true})
}

// handleInternalTraceGet serves a pooled segment to a peer (the
// owner-forwarded trace lookup). Same canonical columnar bytes as the
// public GET /v1/traces/{hash}, plus the ownership guard.
func (s *Server) handleInternalTraceGet(w http.ResponseWriter, r *http.Request) error {
	hash := r.PathValue("hash")
	if !tracepool.ValidHash(hash) {
		return apiErrorf(http.StatusBadRequest, api.CodeBadRequest, "malformed trace hash %q", hash)
	}
	if err := s.guardOwnership("trace", hash); err != nil {
		return err
	}
	branches, ok := s.pool.Get(hash)
	if !ok {
		return apiErrorf(http.StatusNotFound, api.CodeNoSuchTrace, "trace %s not pooled here", hash)
	}
	return writeTraceBytes(w, branches)
}

// handleRing reports this node's current membership view.
func (s *Server) handleRing(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, s.cluster.Info())
}

// handleTopology applies a resharding event: a complete replacement
// member set and replication factor. The response is the new ring view
// (generation bumped), so a topology push doubles as an ack.
func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) error {
	var upd api.TopologyUpdate
	if err := decodeJSON(r, &upd); err != nil {
		return err
	}
	info, err := s.cluster.SetTopology(upd)
	if err != nil {
		return apiErrorf(http.StatusBadRequest, api.CodeBadRequest, "topology rejected: %v", err)
	}
	return writeJSON(w, info)
}

// writeTraceBytes renders a segment in the canonical columnar encoding
// (shared by the public and internal trace GET paths).
func writeTraceBytes(w http.ResponseWriter, branches []trace.Branch) error {
	data, err := trace.EncodeColumnar(branches)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, err = w.Write(data)
	return err
}
