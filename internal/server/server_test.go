package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"gskew/internal/api"
	"gskew/internal/client"
	"gskew/internal/experiments"
	"gskew/internal/kernel"
	"gskew/internal/predictor"
	"gskew/internal/sim"
	"gskew/internal/store"
	"gskew/internal/trace"
	"gskew/internal/workload"
)

// newTestServer returns a service over a fresh memory-only store.
func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.Open(128, "")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// testClient builds a typed client for a URL's base. All HTTP in these
// tests flows through internal/client — the same path real callers use.
func testClient(t *testing.T, rawURL string) (*client.Client, string) {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	return client.New(u.Scheme + "://" + u.Host), u.Path
}

// postJSON posts an arbitrary (possibly malformed) JSON body through
// the typed client's raw escape hatch and returns the raw response.
func postJSON(t *testing.T, rawURL, body string) (int, string, http.Header) {
	t.Helper()
	c, path := testClient(t, rawURL)
	status, data, hdr, err := c.Do(context.Background(), http.MethodPost, path, "application/json", []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	return status, string(data), hdr
}

func getJSON(t *testing.T, rawURL string) (int, string) {
	t.Helper()
	c, path := testClient(t, rawURL)
	status, data, _, err := c.Do(context.Background(), http.MethodGet, path, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	return status, string(data)
}

// wantCode asserts an error body is the structured envelope carrying
// the expected stable code.
func wantCode(t *testing.T, name, body, code string) {
	t.Helper()
	var env api.ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error.Code == "" {
		t.Errorf("%s: body is not an error envelope: %s", name, body)
		return
	}
	if env.Error.Code != code {
		t.Errorf("%s: error code %q, want %q (message: %s)", name, env.Error.Code, code, env.Error.Message)
	}
	if env.Error.Message == "" {
		t.Errorf("%s: envelope has no message: %s", name, body)
	}
}

const sweepBody = `{"specs":["bimodal:n=8","gshare:n=8,k=6","gskewed:n=7,k=5"],"bench":"verilog","scale":0.002}`

func TestSimulateMatchesDirectRun(t *testing.T) {
	ts := newTestServer(t, Config{})
	status, body, _ := postJSON(t, ts.URL+"/v1/simulate", sweepBody)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp struct {
		Workload struct {
			TraceSHA256 string `json:"trace_sha256"`
			Branches    int    `json:"branches"`
		} `json:"workload"`
		Results []struct {
			Spec        string     `json:"spec"`
			Key         string     `json:"key"`
			StorageBits int        `json:"storage_bits"`
			Result      sim.Result `json:"result"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("decoding: %v\n%s", err, body)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}

	// Reproduce the cells directly through the library and compare.
	spec, err := workload.ByName("verilog")
	if err != nil {
		t.Fatal(err)
	}
	branches, err := workload.Materialize(spec, workload.Config{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	if got := trace.HashBranches(branches); got != resp.Workload.TraceSHA256 {
		t.Errorf("trace hash %s, want %s", resp.Workload.TraceSHA256, got)
	}
	if resp.Workload.Branches != len(branches) {
		t.Errorf("branches %d, want %d", resp.Workload.Branches, len(branches))
	}
	for i, specText := range []string{"bimodal:n=8,ctr=2", "gshare:n=8,k=6,ctr=2", "gskewed:n=7,k=5,banks=3,ctr=2,policy=partial"} {
		if resp.Results[i].Spec != specText {
			t.Errorf("result %d spec %q, want canonical %q", i, resp.Results[i].Spec, specText)
		}
		p := predictor.MustParseSpec(specText)
		want, err := sim.RunBranches(branches, p, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Results[i].Result != want {
			t.Errorf("result %d = %+v, want %+v (direct run)", i, resp.Results[i].Result, want)
		}
		if resp.Results[i].StorageBits != p.StorageBits() {
			t.Errorf("result %d storage bits %d, want %d", i, resp.Results[i].StorageBits, p.StorageBits())
		}
	}
}

func TestSimulateCachesByteIdentical(t *testing.T) {
	ts := newTestServer(t, Config{})
	_, cold, h1 := postJSON(t, ts.URL+"/v1/simulate", sweepBody)
	_, warm, h2 := postJSON(t, ts.URL+"/v1/simulate", sweepBody)
	if cold != warm {
		t.Errorf("cold and cached bodies differ:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	if got := h1.Get("X-Cache"); got != "hits=0 misses=3" {
		t.Errorf("cold X-Cache = %q", got)
	}
	if got := h2.Get("X-Cache"); got != "hits=3 misses=0" {
		t.Errorf("warm X-Cache = %q", got)
	}
}

func TestSimulateCacheKeyedOnCanonicalSpec(t *testing.T) {
	ts := newTestServer(t, Config{})
	// Prime with a default-implicit spelling, then re-request with the
	// explicit canonical spelling: must be all hits.
	postJSON(t, ts.URL+"/v1/simulate", `{"specs":["gshare:n=8,k=6"],"bench":"verilog","scale":0.002}`)
	_, _, h := postJSON(t, ts.URL+"/v1/simulate", `{"specs":["gshare:n=8,k=6,ctr=2"],"bench":"verilog","scale":0.002}`)
	if got := h.Get("X-Cache"); got != "hits=1 misses=0" {
		t.Errorf("canonicalised respelling missed the cache: X-Cache = %q", got)
	}
}

func TestSimulateOptionsParticipateInKeys(t *testing.T) {
	ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/simulate", sweepBody)
	_, body, h := postJSON(t, ts.URL+"/v1/simulate",
		`{"specs":["bimodal:n=8","gshare:n=8,k=6","gskewed:n=7,k=5"],"bench":"verilog","scale":0.002,"options":{"flush_every":5000}}`)
	if got := h.Get("X-Cache"); got != "hits=0 misses=3" {
		t.Errorf("different options hit the cache: X-Cache = %q\n%s", got, body)
	}
	var resp struct {
		Results []struct {
			Result sim.Result `json:"result"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Result.Flushes == 0 {
		t.Error("flush_every option ignored by simulation")
	}
}

func TestSimulateUploadedTrace(t *testing.T) {
	ts := newTestServer(t, Config{})
	// Encode a small trace in the binary format.
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	branches := make([]trace.Branch, 0, 600)
	for i := 0; i < 300; i++ {
		branches = append(branches,
			trace.Branch{PC: 0x100 + uint64(i%7)*4, Taken: i%3 != 0, Kind: trace.Conditional},
			trace.Branch{PC: 0x500, Taken: true, Kind: trace.Unconditional})
	}
	for _, b := range branches {
		if err := w.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"specs":["gshare:n=6,k=4"],"trace_b64":%q}`, base64.StdEncoding.EncodeToString(buf.Bytes()))
	status, out, _ := postJSON(t, ts.URL+"/v1/simulate", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, out)
	}
	var resp struct {
		Workload struct {
			TraceSHA256 string `json:"trace_sha256"`
			Branches    int    `json:"branches"`
		} `json:"workload"`
		Results []struct {
			Result sim.Result `json:"result"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Workload.Branches != len(branches) {
		t.Errorf("branches %d, want %d", resp.Workload.Branches, len(branches))
	}
	if resp.Workload.TraceSHA256 != trace.HashBranches(branches) {
		t.Error("uploaded trace hash mismatch")
	}
	want, err := sim.RunBranches(branches, predictor.MustParseSpec("gshare:n=6,k=4"), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Result != want {
		t.Errorf("uploaded-trace result %+v, want %+v", resp.Results[0].Result, want)
	}
}

func TestSimulateRejectsBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{})
	for name, tc := range map[string]struct {
		body string
		want int
		code string
	}{
		"empty specs":     {`{"specs":[],"bench":"verilog"}`, http.StatusBadRequest, api.CodeBadRequest},
		"bad spec":        {`{"specs":["oracle:n=8"],"bench":"verilog"}`, http.StatusBadRequest, api.CodeBadSpec},
		"bad spec params": {`{"specs":["gshare:n=99"],"bench":"verilog","scale":0.002}`, http.StatusBadRequest, api.CodeBadSpec},
		"no workload":     {`{"specs":["bimodal:n=8"]}`, http.StatusBadRequest, api.CodeBadWorkload},
		"both workloads":  {`{"specs":["bimodal:n=8"],"bench":"verilog","trace_b64":"aGk="}`, http.StatusBadRequest, api.CodeBadWorkload},
		"unknown bench":   {`{"specs":["bimodal:n=8"],"bench":"quake3"}`, http.StatusBadRequest, api.CodeBadWorkload},
		"bad scale":       {`{"specs":["bimodal:n=8"],"bench":"verilog","scale":7}`, http.StatusBadRequest, api.CodeBadWorkload},
		"bad base64":      {`{"specs":["bimodal:n=8"],"trace_b64":"!!!"}`, http.StatusBadRequest, api.CodeBadTrace},
		"not json":        {`{nope`, http.StatusBadRequest, api.CodeBadRequest},
		"unknown field":   {`{"specs":["bimodal:n=8"],"bench":"verilog","turbo":true}`, http.StatusBadRequest, api.CodeBadRequest},
		"missing trace":   {`{"specs":["bimodal:n=8"],"trace_sha256":"` + strings.Repeat("0", 64) + `"}`, http.StatusNotFound, api.CodeNoSuchTrace},
	} {
		status, body, _ := postJSON(t, ts.URL+"/v1/simulate", tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", name, status, tc.want, body)
		}
		wantCode(t, name, body, tc.code)
	}
}

func TestRequestBodyLimit(t *testing.T) {
	ts := newTestServer(t, Config{MaxBodyBytes: 1024})
	big := fmt.Sprintf(`{"specs":["bimodal:n=8"],"bench":"verilog","trace_b64":%q}`,
		strings.Repeat("A", 4096))
	status, body, _ := postJSON(t, ts.URL+"/v1/simulate", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", status)
	}
	wantCode(t, "oversized body", body, api.CodeBodyTooLarge)
}

// TestPredictSegmentedBatch: a staged batch crossing segmentPredictMin
// must route through the segment-parallel engine on a multi-core host
// and report exactly the serial kernel's count, leaving the session
// predictor in the serially-trained state.
func TestPredictSegmentedBatch(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	s := New(Config{})
	const spec = "gshare:n=9,k=7"
	sess, err := s.sessions.acquire("seg", spec)
	if err != nil {
		t.Fatal(err)
	}
	twin, ok := kernel.Compile(predictor.MustParseSpec(spec), 7)
	if !ok {
		t.Fatal("twin did not compile")
	}
	ghr := uint64(0)
	for i := 0; i < segmentPredictMin+5000; i++ {
		taken := (i*i+i/3)%3 != 0
		sess.steps = append(sess.steps, kernel.Step{PC: 0x40 + uint64(i%113)*4, Hist: ghr, Taken: taken})
		ghr <<= 1
		if taken {
			ghr |= 1
		}
	}
	want := twin.StepBatch(sess.steps)
	got, ok := s.segmentSteps(sess)
	if !ok {
		t.Fatal("large batch did not take the segmented route")
	}
	kernel.Invalidate(sess.p)
	if got != want {
		t.Errorf("segmented batch counted %d mispredicts, serial kernel %d", got, want)
	}
	// The trained state must match too: a serial continuation over the
	// same tail block has to agree with the twin's.
	if g, w := sess.kern.StepBatch(sess.steps[:4096]), twin.StepBatch(sess.steps[:4096]); g != w {
		t.Errorf("post-segmented continuation counted %d, twin %d", g, w)
	}
	// Below the threshold the serial path is kept.
	sess.steps = sess.steps[:100]
	if _, ok := s.segmentSteps(sess); ok {
		t.Error("small batch took the segmented route")
	}
}

func TestPredictSessionLifecycle(t *testing.T) {
	ts := newTestServer(t, Config{})
	// Build a short stream and its expected accounting via the library.
	branches := []trace.Branch{}
	for i := 0; i < 200; i++ {
		branches = append(branches, trace.Branch{PC: 0x40 + uint64(i%5)*4, Taken: i%2 == 0, Kind: trace.Conditional})
		if i%10 == 0 {
			branches = append(branches, trace.Branch{PC: 0x99, Taken: true, Kind: trace.Unconditional})
		}
	}
	want, err := sim.RunBranches(branches, predictor.MustParseSpec("gshare:n=7,k=5"), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	wire := func(bs []trace.Branch) string {
		rows := make([]string, len(bs))
		for i, b := range bs {
			rows[i] = fmt.Sprintf(`{"pc":%d,"taken":%t,"uncond":%t}`, b.PC, b.Taken, b.Kind == trace.Unconditional)
		}
		return "[" + strings.Join(rows, ",") + "]"
	}

	// Stream in two batches against one session (kernel path).
	half := len(branches) / 2
	body1 := fmt.Sprintf(`{"session":"s1","spec":"gshare:n=7,k=5","branches":%s}`, wire(branches[:half]))
	status, out, _ := postJSON(t, ts.URL+"/v1/predict", body1)
	if status != http.StatusOK {
		t.Fatalf("batch 1 status %d: %s", status, out)
	}
	body2 := fmt.Sprintf(`{"session":"s1","branches":%s}`, wire(branches[half:]))
	status, out, _ = postJSON(t, ts.URL+"/v1/predict", body2)
	if status != http.StatusOK {
		t.Fatalf("batch 2 status %d: %s", status, out)
	}
	var resp api.PredictResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TotalConditionals != want.Conditionals || resp.TotalMispredicts != want.Mispredicts {
		t.Errorf("session totals cond=%d mispred=%d, want cond=%d mispred=%d (library run)",
			resp.TotalConditionals, resp.TotalMispredicts, want.Conditionals, want.Mispredicts)
	}
	if resp.Spec != "gshare:n=7,k=5,ctr=2" {
		t.Errorf("session spec %q not canonical", resp.Spec)
	}

	// A parallel session with the generic path and per-branch
	// predictions must agree exactly (kernel vs generic bit-identity).
	body3 := fmt.Sprintf(`{"session":"s2","spec":"gshare:n=7,k=5","branches":%s,"return_predictions":true}`, wire(branches))
	status, out, _ = postJSON(t, ts.URL+"/v1/predict", body3)
	if status != http.StatusOK {
		t.Fatalf("generic path status %d: %s", status, out)
	}
	var resp2 api.PredictResponse
	if err := json.Unmarshal([]byte(out), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.TotalMispredicts != want.Mispredicts {
		t.Errorf("generic path mispredicts %d, want %d", resp2.TotalMispredicts, want.Mispredicts)
	}
	if len(resp2.Predictions) != want.Conditionals {
		t.Errorf("predictions length %d, want %d", len(resp2.Predictions), want.Conditionals)
	}

	// Spec conflict on a live session.
	status, body, _ := postJSON(t, ts.URL+"/v1/predict", `{"session":"s1","spec":"bimodal:n=8","branches":[]}`)
	if status != http.StatusConflict {
		t.Errorf("re-pinning a session: status %d, want 409", status)
	}
	wantCode(t, "session conflict", body, api.CodeSessionConflict)
	// Unknown session without a spec.
	status, body, _ = postJSON(t, ts.URL+"/v1/predict", `{"session":"ghost","branches":[]}`)
	if status != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", status)
	}
	wantCode(t, "unknown session", body, api.CodeNoSuchSession)

	// End a session through the typed client; a second delete surfaces
	// the stable code as a typed error.
	c, _ := testClient(t, ts.URL)
	ended, err := c.EndSession(context.Background(), "s1")
	if err != nil {
		t.Fatalf("end session: %v", err)
	}
	if ended.Session != "s1" || ended.Status != "ended" {
		t.Errorf("end session response %+v", ended)
	}
	if _, err := c.EndSession(context.Background(), "s1"); !api.IsCode(err, api.CodeNoSuchSession) {
		t.Errorf("double delete error %v, want code %s", err, api.CodeNoSuchSession)
	}
}

func TestSessionEvictionBeyondCapacity(t *testing.T) {
	ts := newTestServer(t, Config{MaxSessions: 2})
	mk := func(id string) {
		t.Helper()
		status, out, _ := postJSON(t, ts.URL+"/v1/predict",
			fmt.Sprintf(`{"session":%q,"spec":"bimodal:n=6","branches":[{"pc":64,"taken":true}]}`, id))
		if status != http.StatusOK {
			t.Fatalf("session %s: status %d: %s", id, status, out)
		}
	}
	mk("a")
	time.Sleep(2 * time.Millisecond) // order lastUsed distinctly
	mk("b")
	time.Sleep(2 * time.Millisecond)
	mk("c") // evicts a
	status, _, _ := postJSON(t, ts.URL+"/v1/predict", `{"session":"a","branches":[]}`)
	if status != http.StatusNotFound {
		t.Errorf("evicted session still live: status %d, want 404", status)
	}
	status, _, _ = postJSON(t, ts.URL+"/v1/predict", `{"session":"b","branches":[]}`)
	if status != http.StatusOK {
		t.Errorf("recently used session evicted: status %d", status)
	}
}

func TestSpecsEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	status, body := getJSON(t, ts.URL+"/v1/specs")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var resp struct {
		Families []struct {
			Family  string   `json:"family"`
			Keys    []string `json:"keys"`
			Example string   `json:"example"`
		} `json:"families"`
		Benchmarks    []string `json:"benchmarks"`
		SchemaVersion int      `json:"schema_version"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Families) != len(predictor.Families()) {
		t.Errorf("families %d, want %d", len(resp.Families), len(predictor.Families()))
	}
	for _, f := range resp.Families {
		if f.Example == "" || len(f.Keys) == 0 {
			t.Errorf("family %s underdocumented: %+v", f.Family, f)
			continue
		}
		// Every example must parse and round-trip canonically.
		sp, err := predictor.ParseSpec(f.Example)
		if err != nil {
			t.Errorf("family %s example %q does not parse: %v", f.Family, f.Example, err)
			continue
		}
		if sp.String() != f.Example {
			t.Errorf("family %s example %q not canonical (canonical: %s)", f.Family, f.Example, sp)
		}
		if _, err := sp.New(); err != nil {
			t.Errorf("family %s example %q does not build: %v", f.Family, f.Example, err)
		}
	}
	if len(resp.Benchmarks) != len(workload.Names()) {
		t.Errorf("benchmarks %v", resp.Benchmarks)
	}
	if resp.SchemaVersion != store.SchemaVersion {
		t.Errorf("schema_version %d, want %d", resp.SchemaVersion, store.SchemaVersion)
	}
}

// TestSpecsEndpointListsModernFamilies pins the tagged and neural
// families into the discovery document: both must be listed with
// their full key grammar and a canonical example.
func TestSpecsEndpointListsModernFamilies(t *testing.T) {
	ts := newTestServer(t, Config{})
	_, body := getJSON(t, ts.URL+"/v1/specs")
	var resp struct {
		Families []struct {
			Family  string   `json:"family"`
			Keys    []string `json:"keys"`
			Example string   `json:"example"`
		} `json:"families"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	wantKeys := map[string][]string{
		"tage":       {"ctr", "k", "kmin", "n", "tables", "tag"},
		"perceptron": {"ctr", "k", "n", "tables", "theta"},
	}
	found := map[string]bool{}
	for _, f := range resp.Families {
		want, ok := wantKeys[f.Family]
		if !ok {
			continue
		}
		found[f.Family] = true
		keys := append([]string(nil), f.Keys...)
		sort.Strings(keys)
		if fmt.Sprint(keys) != fmt.Sprint(want) {
			t.Errorf("family %s keys %v, want %v", f.Family, keys, want)
		}
		if !strings.HasPrefix(f.Example, f.Family+":") {
			t.Errorf("family %s example %q", f.Family, f.Example)
		}
	}
	for fam := range wantKeys {
		if !found[fam] {
			t.Errorf("/v1/specs does not list family %q", fam)
		}
	}
}

// TestSimulateModernFamiliesCached sweeps a mixed grid of classic and
// modern families: the cold and cached responses must be
// byte-identical and the second pass must be all hits.
func TestSimulateModernFamiliesCached(t *testing.T) {
	ts := newTestServer(t, Config{})
	const mixed = `{"specs":["gskewed:n=7,k=5","tage:n=7,k=16,kmin=2,tables=4,tag=7","perceptron:n=7,k=12,tables=4"],"bench":"verilog","scale":0.002}`
	status, cold, h1 := postJSON(t, ts.URL+"/v1/simulate", mixed)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, cold)
	}
	_, warm, h2 := postJSON(t, ts.URL+"/v1/simulate", mixed)
	if cold != warm {
		t.Errorf("cold and cached bodies differ:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	if got := h1.Get("X-Cache"); got != "hits=0 misses=3" {
		t.Errorf("cold X-Cache = %q", got)
	}
	if got := h2.Get("X-Cache"); got != "hits=3 misses=0" {
		t.Errorf("warm X-Cache = %q", got)
	}
	// The results must match direct library runs of the same cells.
	var resp struct {
		Results []struct {
			Spec   string     `json:"spec"`
			Result sim.Result `json:"result"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(cold), &resp); err != nil {
		t.Fatal(err)
	}
	spec, err := workload.ByName("verilog")
	if err != nil {
		t.Fatal(err)
	}
	branches, err := workload.Materialize(spec, workload.Config{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		want, err := sim.RunBranches(branches, predictor.MustParseSpec(r.Spec), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Result != want {
			t.Errorf("result %d (%s) = %+v, want %+v (direct run)", i, r.Spec, r.Result, want)
		}
	}
}

// TestSimulateRejectsMalformedModernSpecs: malformed tage/perceptron
// specs must fail with 400 and an error that names the problem, not a
// bare status.
func TestSimulateRejectsMalformedModernSpecs(t *testing.T) {
	ts := newTestServer(t, Config{})
	for name, tc := range map[string]struct {
		spec string
		want string // substring the error must contain
	}{
		"unknown key":      {"tage:banks=3", `"banks"`},
		"bad value":        {"tage:n=9,k=twenty", "k"},
		"out of range":     {"tage:n=99", "n="},
		"perceptron key":   {"perceptron:kmin=2", `"kmin"`},
		"perceptron range": {"perceptron:n=9,tables=1", "tables"},
	} {
		body := fmt.Sprintf(`{"specs":[%q],"bench":"verilog","scale":0.002}`, tc.spec)
		status, out, _ := postJSON(t, ts.URL+"/v1/simulate", body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, status, out)
			continue
		}
		var env api.ErrorEnvelope
		if err := json.Unmarshal([]byte(out), &env); err != nil || env.Error.Code != api.CodeBadSpec {
			t.Errorf("%s: error body not a bad_spec envelope: %s", name, out)
			continue
		}
		if !strings.Contains(env.Error.Message, tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, env.Error.Message, tc.want)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	ts := newTestServer(t, Config{})
	status, body := getJSON(t, ts.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("healthz %d: %s", status, body)
	}
	// /v1/health is the primary path; /healthz must be a byte-identical
	// alias of it.
	status, vbody := getJSON(t, ts.URL+"/v1/health")
	if status != http.StatusOK {
		t.Fatalf("/v1/health status %d", status)
	}
	var h api.Health
	if err := json.Unmarshal([]byte(vbody), &h); err != nil {
		t.Fatalf("/v1/health not decodable: %v\n%s", err, vbody)
	}
	if h.Status != "ok" || h.Pool.MemSegments < 0 || h.Cluster != nil {
		t.Errorf("standalone health detail: %+v", h)
	}
	status, body = getJSON(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	for _, key := range []string{"server.requests", "server.simulate.cache_hits", "store.mem_hits", "sim.steps"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
}

func TestSchedTimeoutReturns503(t *testing.T) {
	// Width-1 scheduler whose only slot is held by the test: every
	// simulate request must time out waiting and fail with 503.
	sched := experiments.NewSched(1)
	if err := sched.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sched.Release()
	ts := newTestServer(t, Config{Sched: sched, SimTimeout: 50 * time.Millisecond})
	status, body, _ := postJSON(t, ts.URL+"/v1/simulate", sweepBody)
	if status != http.StatusServiceUnavailable {
		t.Errorf("saturated scheduler: status %d, want 503 (%s)", status, body)
	}
	wantCode(t, "queue full", body, api.CodeQueueFull)
}
