package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gskew/internal/api"
	"gskew/internal/client"
	"gskew/internal/cluster"
	"gskew/internal/store"
	"gskew/internal/tracepool"
)

// swapHandler lets a listener exist before the handler it serves:
// cluster nodes need their peers' URLs (assigned at listen time) to
// build their ring, and the ring to build their Server.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// newClusterNodes boots n in-process predserved nodes that know each
// other, each with its own fresh store and pool, and returns one typed
// client per node.
func newClusterNodes(t *testing.T, n, replicas int) ([]*client.Client, []string) {
	t.Helper()
	holders := make([]*swapHandler, n)
	urls := make([]string, n)
	for i := range holders {
		holders[i] = &swapHandler{}
		ts := httptest.NewServer(holders[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	clients := make([]*client.Client, n)
	for i := range holders {
		cl, err := cluster.New(cluster.Config{Self: urls[i], Nodes: urls, Replicas: replicas})
		if err != nil {
			t.Fatal(err)
		}
		st, err := store.Open(256, "")
		if err != nil {
			t.Fatal(err)
		}
		pool, err := tracepool.Open(8, "")
		if err != nil {
			t.Fatal(err)
		}
		holders[i].set(New(Config{Store: st, Pool: pool, Cluster: cl}).Handler())
		clients[i] = client.New(urls[i])
	}
	return clients, urls
}

// clusterSweep is a 9-cell sweep used across the cluster tests.
var clusterSweep = &api.SimulateRequest{
	Specs: []string{
		"bimodal:n=8", "bimodal:n=9", "bimodal:n=10",
		"gshare:n=8,k=6", "gshare:n=9,k=7", "gshare:n=10,k=8",
		"gskewed:n=7,k=5", "gselect:n=8,k=4", "2bcgskew:n=8,ks=5,k=9",
	},
	Bench: "verilog",
	Scale: 0.002,
}

// TestClusterByteIdentity is the tentpole invariant: the same sweep
// must return byte-identical bodies from a standalone server and from
// every node of a 3-node cluster, cold or warm.
func TestClusterByteIdentity(t *testing.T) {
	ctx := context.Background()
	solo := newTestServer(t, Config{})
	soloC, _ := testClient(t, solo.URL)
	want, _, err := soloC.SimulateRaw(ctx, clusterSweep)
	if err != nil {
		t.Fatal(err)
	}

	clients, _ := newClusterNodes(t, 3, 2)
	for round := 0; round < 2; round++ {
		for i, c := range clients {
			got, _, err := c.SimulateRaw(ctx, clusterSweep)
			if err != nil {
				t.Fatalf("round %d node %d: %v", round, i, err)
			}
			if string(got) != string(want) {
				t.Fatalf("round %d node %d body differs from standalone:\n--- cluster ---\n%s--- solo ---\n%s",
					round, i, got, want)
			}
		}
	}
}

// TestClusterPeerFill: after one node simulates a sweep (storing cells
// locally and offering them to their owners), a second node serving
// the same sweep must not simulate anything — every cell is either a
// local store hit (the offer landed here) or a peer fill from its
// owner.
func TestClusterPeerFill(t *testing.T) {
	ctx := context.Background()
	clients, _ := newClusterNodes(t, 3, 1)

	_, cold, err := clients[0].SimulateRaw(ctx, clusterSweep)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Misses != len(clusterSweep.Specs) {
		t.Fatalf("cold pass on node 0: %+v, want all misses", cold)
	}

	fillsBefore, err := clients[1].Metric(ctx, "cluster.peer_fill_hits")
	if err != nil {
		t.Fatal(err)
	}
	_, warm, err := clients[1].SimulateRaw(ctx, clusterSweep)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Misses != 0 {
		t.Fatalf("node 1 recomputed %d cells the cluster already had (X-Cache %+v)", warm.Misses, warm)
	}
	fillsAfter, err := clients[1].Metric(ctx, "cluster.peer_fill_hits")
	if err != nil {
		t.Fatal(err)
	}
	// With R=1 every key has exactly one owner; cells node 1 does not
	// own must have come over the wire.
	if fillsAfter <= fillsBefore {
		t.Errorf("peer_fill_hits did not move (%d -> %d)", fillsBefore, fillsAfter)
	}
}

// TestClusterTraceForwarding: a trace ingested on one node is
// addressable by hash from every node (ingest forwards the segment to
// the hash's owner; simulate fetches from the owner on a pool miss).
func TestClusterTraceForwarding(t *testing.T) {
	ctx := context.Background()
	clients, _ := newClusterNodes(t, 3, 1)

	branches := testTrace(400)
	raw := encodeVarintTest(t, branches)
	ing, err := clients[0].IngestTrace(ctx, raw)
	if err != nil {
		t.Fatal(err)
	}

	req := &api.SimulateRequest{Specs: []string{"gshare:n=7,k=5"}, TraceSHA256: ing.TraceSHA256}
	bodies := make([]string, len(clients))
	for i, c := range clients {
		got, _, err := c.SimulateRaw(ctx, req)
		if err != nil {
			t.Fatalf("node %d by-hash simulate: %v", i, err)
		}
		bodies[i] = string(got)
	}
	for i := 1; i < len(bodies); i++ {
		if bodies[i] != bodies[0] {
			t.Errorf("node %d by-hash body differs from node 0", i)
		}
	}
}

// TestClusterResharding: pushing a new topology (here a replication
// bump) resharding the ring must not change any response byte; at
// worst hits become recomputations.
func TestClusterResharding(t *testing.T) {
	ctx := context.Background()
	clients, urls := newClusterNodes(t, 3, 1)

	before, _, err := clients[0].SimulateRaw(ctx, clusterSweep)
	if err != nil {
		t.Fatal(err)
	}

	for i, c := range clients {
		info, err := c.SetTopology(ctx, &api.TopologyUpdate{Nodes: urls, Replicas: 3})
		if err != nil {
			t.Fatalf("node %d topology push: %v", i, err)
		}
		if info.Gen != 2 || info.Replicas != 3 {
			t.Fatalf("node %d ring after reshard: %+v", i, info)
		}
	}

	for i, c := range clients {
		after, _, err := c.SimulateRaw(ctx, clusterSweep)
		if err != nil {
			t.Fatalf("node %d post-reshard: %v", i, err)
		}
		if string(after) != string(before) {
			t.Errorf("node %d post-reshard body differs", i)
		}
		ring, err := c.Ring(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Gen != 2 || len(ring.Nodes) != 3 {
			t.Errorf("node %d ring endpoint: %+v", i, ring)
		}
	}

	// A topology that drops the receiving node is refused.
	if _, err := clients[2].SetTopology(ctx, &api.TopologyUpdate{Nodes: urls[:2], Replicas: 1}); err == nil {
		t.Error("node 2 accepted a topology dropping itself")
	}
}

// TestClusterWrongOwnerGuard: asking a node for a cell it does not own
// under the current ring returns 421/wrong_owner, and the health body
// carries the cluster view.
func TestClusterWrongOwnerGuard(t *testing.T) {
	ctx := context.Background()
	clients, urls := newClusterNodes(t, 3, 1)

	h, err := clients[0].Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cluster == nil || len(h.Cluster.Nodes) != 3 || h.Cluster.Self != urls[0] {
		t.Fatalf("health cluster view: %+v", h.Cluster)
	}

	// Probe synthetic keys until one is NOT owned by node 0, then ask
	// node 0 for it.
	ring, err := clients[0].Ring(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		key := store.KeyFor(fmt.Sprintf("probe:n=%d", i), strings.Repeat("ab", 32), store.Options{})
		r, err := cluster.NewRing(ring.Nodes, ring.Replicas)
		if err != nil {
			t.Fatal(err)
		}
		if r.Owns(urls[0], key.String()) {
			continue
		}
		_, err = clients[0].CellGet(ctx, key.String())
		if !api.IsCode(err, api.CodeWrongOwner) {
			t.Errorf("non-owned cell get: %v, want code %s", err, api.CodeWrongOwner)
		}
		break
	}
}
