package server

import (
	"fmt"
	"io"
	"net/http"

	"gskew/internal/trace"
)

// Trace ingest and retrieval: the HTTP face of the content-addressed
// trace segment pool. POST /v1/traces accepts a raw binary trace body
// (either the varint or the block-columnar codec, sniffed from the
// magic) and pools it under its canonical content hash; the response
// carries only the hash and record count, so re-ingesting the same
// trace — in either serialisation — returns a byte-identical response
// and stores nothing new. GET /v1/traces/{hash} serves the pooled
// segment back, always re-encoded in the columnar format (canonical
// bytes for a given branch sequence, so repeated GETs are
// byte-identical too). A pooled hash can then address simulations
// directly via the trace_sha256 field of POST /v1/simulate.

// traceIngestResponse is the wire form of a completed ingest. There is
// deliberately no created/timestamp field: responses must not depend
// on whether this request or an earlier one pooled the segment.
type traceIngestResponse struct {
	TraceSHA256 string `json:"trace_sha256"`
	Branches    int    `json:"branches"`
}

// handleTraceIngest decodes the uploaded trace and pools it.
func (s *Server) handleTraceIngest(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return err // MaxBytesReader errors map to 413 in instrument
	}
	branches, err := trace.DecodeBytes(body)
	if err != nil {
		return httpErrorf(http.StatusBadRequest, "decoding trace: %v", err)
	}
	hash, _, err := s.pool.Put(branches)
	if err != nil {
		return fmt.Errorf("pooling trace: %w", err)
	}
	return writeJSON(w, traceIngestResponse{TraceSHA256: hash, Branches: len(branches)})
}

// handleTraceGet serves one pooled segment in the columnar format.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) error {
	hash := r.PathValue("hash")
	branches, ok := s.pool.Get(hash)
	if !ok {
		return httpErrorf(http.StatusNotFound, "no pooled trace %s", hash)
	}
	enc, err := trace.EncodeColumnar(branches)
	if err != nil {
		return fmt.Errorf("encoding trace %s: %w", hash, err)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(enc)))
	_, err = w.Write(enc)
	return err
}
