package server

import (
	"fmt"
	"io"
	"net/http"

	"gskew/internal/api"
	"gskew/internal/trace"
)

// Trace ingest and retrieval: the HTTP face of the content-addressed
// trace segment pool. POST /v1/traces accepts a raw binary trace body
// (either the varint or the block-columnar codec, sniffed from the
// magic) and pools it under its canonical content hash; the response
// carries only the hash and record count, so re-ingesting the same
// trace — in either serialisation — returns a byte-identical response
// and stores nothing new. GET /v1/traces/{hash} serves the pooled
// segment back, always re-encoded in the columnar format (canonical
// bytes for a given branch sequence, so repeated GETs are
// byte-identical too). A pooled hash can then address simulations
// directly via the trace_sha256 field of POST /v1/simulate.
//
// In cluster mode an ingested segment is also forwarded to the hash's
// replica set, so a later trace_sha256 simulation landing on any node
// can fetch it from an owner instead of failing with no_such_trace.

// handleTraceIngest decodes the uploaded trace and pools it.
func (s *Server) handleTraceIngest(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return err // MaxBytesReader errors map to 413 in instrument
	}
	branches, err := trace.DecodeBytes(body)
	if err != nil {
		return apiErrorf(http.StatusBadRequest, api.CodeBadTrace, "decoding trace: %v", err)
	}
	hash, created, err := s.pool.Put(branches)
	if err != nil {
		return fmt.Errorf("pooling trace: %w", err)
	}
	if created && s.cluster != nil && !s.cluster.OwnsSelf(hash) {
		s.cluster.OfferTrace(r.Context(), hash, body)
	}
	return writeJSON(w, api.TraceIngestResponse{TraceSHA256: hash, Branches: len(branches)})
}

// handleTraceGet serves one pooled segment in the columnar format.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) error {
	hash := r.PathValue("hash")
	branches, ok := s.pool.Get(hash)
	if !ok {
		return apiErrorf(http.StatusNotFound, api.CodeNoSuchTrace, "no pooled trace %s", hash)
	}
	return writeTraceBytes(w, branches)
}
