package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"gskew/internal/api"
	"gskew/internal/store"
)

// TestConcurrentMixedLoad hammers one server with many goroutines
// issuing a mix of cache hits, cold misses and session-pinned predict
// batches. It is the subsystem's race detector workout (run under
// `make check`) and asserts three invariants:
//
//  1. every cached response is byte-identical to the cold one,
//  2. the simulation queue gauge returns to zero after the drain,
//  3. a final sweep over the whole hot set is served entirely
//     from the store (no recomputation).
func TestConcurrentMixedLoad(t *testing.T) {
	st, err := store.Open(256, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{Store: st}).Handler())
	defer ts.Close()

	// The hot set: distinct sweeps a client population keeps re-asking
	// for. Cold bodies recorded up front are the byte-identity oracle.
	hot := []string{
		`{"specs":["bimodal:n=8","gshare:n=8,k=6"],"bench":"verilog","scale":0.002}`,
		`{"specs":["gskewed:n=7,k=5","gselect:n=8,k=4"],"bench":"verilog","scale":0.002}`,
		`{"specs":["gshare:n=9,k=7"],"bench":"verilog","scale":0.002,"options":{"skip_first_use":true}}`,
		`{"specs":["bimodal:n=9"],"bench":"verilog","scale":0.002,"options":{"flush_every":4000}}`,
	}
	hotSpecs := 0
	cold := make([]string, len(hot))
	for i, body := range hot {
		status, resp, _ := postJSON(t, ts.URL+"/v1/simulate", body)
		if status != http.StatusOK {
			t.Fatalf("priming request %d: status %d: %s", i, status, resp)
		}
		cold[i] = resp
	}
	hotSpecs = 2 + 2 + 1 + 1

	const (
		workers = 8
		iters   = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			session := fmt.Sprintf("load-%d", g)
			for r := 0; r < iters; r++ {
				switch r % 4 {
				case 0, 1: // cache hit: must be byte-identical to cold
					i := (g + r) % len(hot)
					status, resp, h := postJSON(t, ts.URL+"/v1/simulate", hot[i])
					if status != http.StatusOK {
						errs <- fmt.Errorf("worker %d hit: status %d: %s", g, status, resp)
						continue
					}
					if resp != cold[i] {
						errs <- fmt.Errorf("worker %d: cached response %d differs from cold", g, i)
					}
					if h.Get("X-Cache") != "hits=2 misses=0" && h.Get("X-Cache") != "hits=1 misses=0" {
						errs <- fmt.Errorf("worker %d: hot request recomputed: X-Cache=%q", g, h.Get("X-Cache"))
					}
				case 2: // guaranteed cold miss: per-(worker, iter) unique key
					body := fmt.Sprintf(
						`{"specs":["gshare:n=6,k=4"],"bench":"verilog","scale":0.002,"options":{"flush_every":%d}}`,
						10000+g*100+r)
					status, resp, h := postJSON(t, ts.URL+"/v1/simulate", body)
					if status != http.StatusOK {
						errs <- fmt.Errorf("worker %d miss: status %d: %s", g, status, resp)
						continue
					}
					if h.Get("X-Cache") != "hits=0 misses=1" {
						errs <- fmt.Errorf("worker %d: fresh cell served stale: X-Cache=%q", g, h.Get("X-Cache"))
					}
				case 3: // session traffic: private predictor per worker
					status, resp, _ := postJSON(t, ts.URL+"/v1/predict", fmt.Sprintf(
						`{"session":%q,"spec":"gshare:n=7,k=5","branches":[{"pc":64,"taken":true},{"pc":68,"taken":false},{"pc":96,"taken":true,"uncond":true}]}`,
						session))
					if status != http.StatusOK {
						errs <- fmt.Errorf("worker %d predict: status %d: %s", g, status, resp)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Invariant 2: no leaked queue slots once the load drains.
	if depth := mQueueDepth.Value(); depth != 0 {
		t.Errorf("queue depth %d after drain, want 0", depth)
	}

	// Invariant 3: the whole hot set replays from the store.
	hitsBefore, missesBefore := mCacheHits.Value(), mCacheMisses.Value()
	for i, body := range hot {
		status, resp, h := postJSON(t, ts.URL+"/v1/simulate", body)
		if status != http.StatusOK {
			t.Fatalf("replay %d: status %d", i, status)
		}
		if resp != cold[i] {
			t.Errorf("replay %d differs from cold response", i)
		}
		if got := h.Get("X-Cache"); got != fmt.Sprintf("hits=%d misses=0", countSpecs(hot[i])) {
			t.Errorf("replay %d not fully cached: X-Cache=%q", i, got)
		}
	}
	if d := mCacheHits.Value() - hitsBefore; d != int64(hotSpecs) {
		t.Errorf("replay hit delta %d, want %d", d, hotSpecs)
	}
	if d := mCacheMisses.Value() - missesBefore; d != 0 {
		t.Errorf("replay miss delta %d, want 0", d)
	}

	// Session accounting survived the stampede: every worker streamed
	// iters/4 batches of 2 conditionals into its own session.
	perWorker := iters / 4 * 2
	for g := 0; g < workers; g++ {
		status, resp, _ := postJSON(t, ts.URL+"/v1/predict",
			fmt.Sprintf(`{"session":"load-%d","branches":[]}`, g))
		if status != http.StatusOK {
			t.Fatalf("worker %d session probe: status %d", g, status)
		}
		var pr api.PredictResponse
		if err := json.Unmarshal([]byte(resp), &pr); err != nil {
			t.Fatal(err)
		}
		if pr.TotalConditionals != perWorker {
			t.Errorf("worker %d session counted %d conditionals, want %d", g, pr.TotalConditionals, perWorker)
		}
	}
}

// countSpecs counts the spec strings in a raw sweep request body.
func countSpecs(body string) int {
	var req struct {
		Specs []string `json:"specs"`
	}
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		return -1
	}
	return len(req.Specs)
}
