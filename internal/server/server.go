// Package server exposes the simulator as a long-running HTTP service:
// simulation-as-a-service over the repository's whole stack. Requests
// arrive as JSON in the typed wire contract of internal/api, predictors
// are described by canonical spec strings (predictor.ParseSpec),
// workloads are either the named synthetic benchmarks or uploaded
// traces, sweeps run single-pass through sim.RunMany on the
// compiled-kernel fast path, and every finished cell lands in a
// content-addressed result store so overlapping (spec, trace, options)
// cells across clients are simulated once.
//
// The endpoint and error-envelope reference lives in internal/api's
// package documentation; this package is the serving half of that
// contract. Every failure renders the structured envelope
// {"error":{"code":...,"message":...}} with a stable machine-readable
// code.
//
// When Config.Cluster is set, the node participates in a static-
// topology cluster (internal/cluster): store keys and trace hashes are
// sharded by consistent hashing, a local store miss on a key another
// node owns is first offered to that owner over the cluster-internal
// surface (peer fill), freshly simulated cells are replicated to the
// key's replica set, and trace_sha256 pool misses are forwarded to the
// hash's owner. None of this changes any response body: simulation is
// deterministic and cells are content-addressed, so responses stay
// byte-identical across 1-node, N-node and resharded topologies.
//
// Simulation work is gated through a shared experiments.Sched, so the
// number of in-flight simulation passes never exceeds the configured
// width no matter how many requests are being served; waiters observe
// the request context and give up with 503/queue_full when it expires.
// Responses for identical requests are byte-identical whether served
// cold, from the store, or from a peer — the store round-trips
// sim.Result bit-exactly and cache status travels in the X-Cache
// header, never in the body.
package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"gskew/internal/api"
	"gskew/internal/cluster"
	"gskew/internal/experiments"
	"gskew/internal/obs"
	"gskew/internal/store"
	"gskew/internal/tracepool"
)

// Server telemetry, registered in the default obs registry.
var (
	mRequests    = obs.NewCounter("server.requests")
	mErrors      = obs.NewCounter("server.errors")
	mLatencyMS   = obs.NewHistogram("server.latency_ms", []int64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000})
	mSimRequests = obs.NewCounter("server.simulate.requests")
	mSimCells    = obs.NewCounter("server.simulate.cells")
	mCacheHits   = obs.NewCounter("server.simulate.cache_hits")
	mCacheMisses = obs.NewCounter("server.simulate.cache_misses")
	mQueueDepth  = obs.NewGauge("server.queue_depth")
	mPredReqs    = obs.NewCounter("server.predict.requests")
	mPredSteps   = obs.NewCounter("server.predict.branches")
	mSessions    = obs.NewGauge("server.sessions")
)

// Config adjusts a Server. The zero value of every field selects a
// sensible default.
type Config struct {
	// Store is the result cache. Nil selects a fresh memory-only store
	// with DefaultMemEntries cells.
	Store *store.Store
	// Sched bounds concurrent simulation passes (shared with any other
	// driver using the same scheduler). Nil selects GOMAXPROCS width.
	Sched *experiments.Sched
	// MaxBodyBytes caps request bodies (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// SimTimeout bounds how long a simulate request may wait for a
	// scheduler slot before giving up with 503 (default
	// DefaultSimTimeout). The wait also ends when the client goes away.
	SimTimeout time.Duration
	// MaxSessions caps live /v1/predict sessions; the least recently
	// used session is evicted beyond it (default DefaultMaxSessions).
	MaxSessions int
	// MaxTraces caps distinct materialised benchmark workloads held in
	// memory (default DefaultMaxTraces).
	MaxTraces int
	// Pool is the content-addressed trace segment pool behind
	// POST /v1/traces, GET /v1/traces/{hash} and the trace_sha256
	// workload form of /v1/simulate; benchmark materialisations are
	// also pooled through it. Nil selects a fresh memory-only pool of
	// DefaultPoolEntries segments.
	Pool *tracepool.Pool
	// Segments is the segment-parallel split applied to simulate
	// passes (sim.Options.Segments). Results are bit-identical at any
	// value, so it is a server tuning knob rather than part of the
	// request or the result-cache key. 0 keeps the simulator's own
	// auto default; 1 forces serial.
	Segments int
	// Cluster is this node's view of a static-topology cluster. Nil
	// (the default) runs standalone: no internal endpoints, no peer
	// fill. Responses are byte-identical either way.
	Cluster *cluster.Cluster
}

// Defaults for Config fields.
const (
	DefaultMemEntries   = 4096
	DefaultMaxBodyBytes = 8 << 20
	DefaultSimTimeout   = 60 * time.Second
	DefaultMaxSessions  = 256
	DefaultMaxTraces    = 12
	DefaultPoolEntries  = 12
)

// Server is the HTTP simulation service. Create with New; serve its
// Handler. A Server owns no goroutines — lifecycle (listening,
// draining) belongs to the caller, so cmd/predserved can drain on
// SIGTERM by simply shutting down its http.Server.
type Server struct {
	cfg      Config
	store    *store.Store
	sched    *experiments.Sched
	pool     *tracepool.Pool
	cluster  *cluster.Cluster
	traces   *traceCache
	sessions *sessionTable
	start    time.Time
	mux      *http.ServeMux
}

// New builds a Server from cfg, applying defaults. Metric collection
// is enabled (the server exists to be observed; its /metrics endpoint
// is the contract the serve-smoke CI tier asserts cache hits through).
func New(cfg Config) *Server {
	obs.Enable()
	if cfg.Store == nil {
		cfg.Store, _ = store.Open(DefaultMemEntries, "")
	}
	if cfg.Sched == nil {
		cfg.Sched = experiments.NewSched(0)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.SimTimeout <= 0 {
		cfg.SimTimeout = DefaultSimTimeout
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = DefaultMaxTraces
	}
	if cfg.Pool == nil {
		cfg.Pool, _ = tracepool.Open(DefaultPoolEntries, "")
	}
	s := &Server{
		cfg:      cfg,
		store:    cfg.Store,
		sched:    cfg.Sched,
		pool:     cfg.Pool,
		cluster:  cfg.Cluster,
		traces:   newTraceCache(cfg.MaxTraces, cfg.Pool),
		sessions: newSessionTable(cfg.MaxSessions),
		start:    time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.instrument(s.handleSimulate))
	mux.HandleFunc("POST /v1/traces", s.instrument(s.handleTraceIngest))
	mux.HandleFunc("GET /v1/traces/{hash}", s.instrument(s.handleTraceGet))
	mux.HandleFunc("POST /v1/predict", s.instrument(s.handlePredict))
	mux.HandleFunc("DELETE /v1/predict/{session}", s.instrument(s.handleEndSession))
	mux.HandleFunc("GET /v1/specs", s.instrument(s.handleSpecs))
	mux.HandleFunc("GET /v1/health", s.instrument(s.handleHealth))
	// Legacy liveness path: thin alias of /v1/health for probes that
	// predate the versioned surface.
	mux.HandleFunc("GET /healthz", s.instrument(s.handleHealth))
	if s.cluster != nil {
		mux.HandleFunc("GET /internal/v1/cells/{key}", s.instrument(s.handleCellGet))
		mux.HandleFunc("PUT /internal/v1/cells/{key}", s.instrument(s.handleCellPut))
		mux.HandleFunc("GET /internal/v1/traces/{hash}", s.instrument(s.handleInternalTraceGet))
		mux.HandleFunc("GET /internal/v1/ring", s.instrument(s.handleRing))
		mux.HandleFunc("POST /internal/v1/topology", s.instrument(s.handleTopology))
	}
	debug := obs.DebugMux()
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/", debug)
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store returns the result store the server is fronting.
func (s *Server) Store() *store.Store { return s.store }

// apiErrorf builds the typed error handlers return: an HTTP status for
// transport, a stable api.Code* for clients to dispatch on, and a
// human-oriented message. instrument renders it as the wire envelope.
func apiErrorf(status int, code, format string, args ...any) error {
	return api.Errorf(status, code, format, args...)
}

// instrument wraps a handler with the request counters, the latency
// histogram and uniform error-envelope rendering.
func (s *Server) instrument(fn func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mRequests.Inc()
		var start time.Time
		if obs.Enabled() {
			start = time.Now()
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		err := fn(w, r)
		if !start.IsZero() {
			mLatencyMS.Observe(time.Since(start).Milliseconds())
		}
		if err == nil {
			return
		}
		mErrors.Inc()
		var ae *api.Error
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &ae):
			// Keep ae: already the wire form.
		case errors.As(err, &tooBig):
			ae = api.Errorf(http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
		default:
			ae = api.Errorf(http.StatusInternalServerError, api.CodeInternal, "%v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(ae.Status)
		json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: *ae})
	}
}

// writeJSON renders a success body. Encoding is deterministic (fixed
// struct field order), which is what makes cold and cached responses
// to the same request byte-identical.
func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// decodeJSON parses a request body, mapping malformed input to
// 400/bad_request and an oversized body to 413/body_too_large.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return err
		}
		return apiErrorf(http.StatusBadRequest, api.CodeBadRequest, "decoding request: %v", err)
	}
	return nil
}

// handleHealth serves GET /v1/health (and its /healthz alias):
// liveness plus per-subsystem readiness detail.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) error {
	h := api.Health{
		Status:   "ok",
		UptimeMS: time.Since(s.start).Milliseconds(),
		Store: api.StoreHealth{
			MemEntries: s.store.Len(),
			Disk:       s.store.Dir() != "",
		},
		Sched:    api.SchedHealth{QueueDepth: mQueueDepth.Value()},
		Sessions: s.sessions.len(),
		Pool: api.PoolHealth{
			MemSegments: s.pool.Len(),
			Disk:        s.pool.Dir() != "",
		},
	}
	if s.cluster != nil {
		info := s.cluster.Info()
		h.Cluster = &info
	}
	return writeJSON(w, h)
}
