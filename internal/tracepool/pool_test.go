package tracepool

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gskew/internal/obs"
	"gskew/internal/trace"
)

// genTrace builds a small deterministic branch slice.
func genTrace(seed uint64, n int) []trace.Branch {
	x := seed*0x9e3779b97f4a7c15 + 1
	out := make([]trace.Branch, n)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = trace.Branch{PC: 0x4000 + x%512, Taken: x&4 != 0, Kind: trace.Conditional}
	}
	return out
}

func TestPoolPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	branches := genTrace(1, 5000)
	hash, created, err := p.Put(branches)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first Put reported created=false")
	}
	if hash != trace.HashBranches(branches) {
		t.Fatalf("Put hash %s, want content hash", hash)
	}
	if !ValidHash(hash) {
		t.Fatalf("Put returned malformed hash %q", hash)
	}

	got, ok := p.Get(hash)
	if !ok {
		t.Fatal("Get missed a just-pooled segment")
	}
	if trace.HashBranches(got) != hash {
		t.Fatal("Get returned a different trace")
	}

	// A fresh pool over the same directory must serve from disk and
	// re-validate successfully.
	p2, err := Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = p2.Get(hash)
	if !ok {
		t.Fatal("fresh pool missed the on-disk segment")
	}
	if trace.HashBranches(got) != hash {
		t.Fatal("fresh pool returned a different trace")
	}
}

func TestPoolDedup(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	branches := genTrace(2, 3000)
	obs.Enable()
	defer obs.Disable()
	before := DedupHits()
	h1, created1, err := p.Put(branches)
	if err != nil {
		t.Fatal(err)
	}
	h2, created2, err := p.Put(branches)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hashes differ: %s vs %s", h1, h2)
	}
	if !created1 || created2 {
		t.Fatalf("created flags = %t, %t; want true, false", created1, created2)
	}
	if got := DedupHits() - before; got != 1 {
		t.Fatalf("dedup counter moved by %d, want 1", got)
	}
	blobs, err := filepath.Glob(filepath.Join(dir, "*.ctrace"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 1 {
		t.Fatalf("%d blobs on disk after duplicate Put, want 1", len(blobs))
	}

	// A second process (fresh pool, empty memory tier) must also dedup
	// against the existing disk blob.
	p2, err := Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, created, err := p2.Put(branches); err != nil || created {
		t.Fatalf("cross-process Put: created=%t err=%v, want false nil", created, err)
	}
}

// TestPoolStaleBlob: a blob whose content no longer matches its
// address must degrade to a miss, never serve the wrong trace.
func TestPoolStaleBlob(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	branches := genTrace(3, 2000)
	hash, _, err := p.Put(branches)
	if err != nil {
		t.Fatal(err)
	}

	// Overwrite the blob with a validly-encoded but different trace,
	// then read through a fresh pool (no memory-tier copy).
	other, err := trace.EncodeColumnar(genTrace(99, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, hash+".ctrace"), other, 0o644); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p2.Get(hash); ok {
		t.Fatal("Get served a blob whose content does not hash to its address")
	}

	// Truncated blob: also a miss.
	if err := os.WriteFile(filepath.Join(dir, hash+".ctrace"), other[:len(other)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	p3, err := Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p3.Get(hash); ok {
		t.Fatal("Get served a truncated blob")
	}
}

func TestPoolNamedIndex(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	branches := genTrace(4, 1000)
	const name = "gcc|0.1|42"
	hash, err := p.PutNamed(name, branches)
	if err != nil {
		t.Fatal(err)
	}
	got, gotHash, ok := p.GetNamed(name)
	if !ok || gotHash != hash {
		t.Fatalf("GetNamed = ok=%t hash=%s, want true %s", ok, gotHash, hash)
	}
	if trace.HashBranches(got) != hash {
		t.Fatal("GetNamed returned a different trace")
	}

	// Cross-process: resolve the name from disk.
	p2, err := Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, gotHash, ok := p2.GetNamed(name); !ok || gotHash != hash {
		t.Fatalf("fresh pool GetNamed = ok=%t hash=%s, want true %s", ok, gotHash, hash)
	}
	if _, _, ok := p2.GetNamed("no|such|workload"); ok {
		t.Fatal("GetNamed hit an unbound name")
	}

	// An index record answering the wrong name is a miss (the filename
	// collided or the file was moved): rewrite one under another name's
	// path.
	data, err := os.ReadFile(p.namePath(name))
	if err != nil {
		t.Fatal(err)
	}
	const stolen = "verilog|0.1|7"
	if err := os.WriteFile(p.namePath(stolen), data, 0o644); err != nil {
		t.Fatal(err)
	}
	p3, err := Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := p3.GetNamed(stolen); ok {
		t.Fatal("GetNamed trusted an index record recorded for a different name")
	}
}

func TestPoolMemoryOnly(t *testing.T) {
	p, err := Open(2, "")
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := genTrace(10, 100), genTrace(11, 100), genTrace(12, 100)
	ha, _, _ := p.Put(a)
	if _, ok := p.Get(ha); !ok {
		t.Fatal("memory-only Get missed")
	}
	if _, err := p.PutNamed("w", a); err != nil {
		t.Fatal(err)
	}
	if _, hash, ok := p.GetNamed("w"); !ok || hash != ha {
		t.Fatal("memory-only GetNamed missed")
	}
	// Capacity 2: pooling two more evicts the first, and with no disk
	// tier that segment is gone.
	p.Put(b)
	p.Put(c)
	if _, ok := p.Get(ha); ok {
		t.Fatal("memory-only pool served an evicted segment")
	}
}

func TestPoolRejectsBadHash(t *testing.T) {
	p, err := Open(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{
		"", "abc",
		strings.Repeat("g", 64),       // not hex
		strings.Repeat("A", 64),       // uppercase
		"../../etc/passwd",            // traversal shape
		strings.Repeat("0", 63) + "/", // slash
	} {
		if _, ok := p.Get(h); ok {
			t.Errorf("Get(%q) hit", h)
		}
		if p.Contains(h) {
			t.Errorf("Contains(%q) true", h)
		}
	}
}
