// Package tracepool is the content-addressed trace segment pool shared
// by the result store's clients: the HTTP service (trace ingest and
// hash-addressed simulation), the experiments scheduler's trace cache,
// and any command that wants to reuse a materialised workload across
// processes.
//
// Segments are keyed by the canonical trace content hash
// (trace.HashBranches), which is serialisation-independent: the same
// branch sequence pools identically whether it arrived as a varint
// file, a columnar file, or a generated workload. On disk each segment
// is one block-columnar blob written atomically (temp file + rename).
// Following the result store's discipline, reads re-validate content
// against the address: a blob that fails to decode, or decodes to a
// sequence whose hash is not its filename, is dropped and counted —
// a stale or corrupted segment degrades to a miss, never to a wrong
// trace.
//
// A small name index (one JSON blob per name, same atomic write and
// re-validate-on-read rules) maps workload identities such as
// "gcc|0.1|42" to content hashes, so schedulers can find a pooled
// segment without re-materialising the workload just to hash it.
package tracepool

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"gskew/internal/lru"
	"gskew/internal/obs"
	"gskew/internal/trace"
)

// Pool telemetry, registered in the default obs registry.
var (
	mMemHits   = obs.NewCounter("tracepool.mem_hits")
	mDiskHits  = obs.NewCounter("tracepool.disk_hits")
	mMisses    = obs.NewCounter("tracepool.misses")
	mPuts      = obs.NewCounter("tracepool.puts")
	mDedupHits = obs.NewCounter("tracepool.dedup_hits") // Put of an already-pooled segment
	mDrops     = obs.NewCounter("tracepool.drops")      // undecodable or hash-mismatched blobs
	mEvictions = obs.NewCounter("tracepool.evictions")
)

// DedupHits exposes the running count of Puts that found their segment
// already pooled (smoke tests assert on it).
func DedupHits() int64 { return mDedupHits.Value() }

// ValidHash reports whether s has the shape of a trace content hash
// (64 lowercase hex characters). Callers routing untrusted hashes into
// Get should check this first; Get itself also rejects malformed
// hashes, so they can never select a path outside the pool directory.
func ValidHash(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// prefix returns the truncated hash form used as the in-memory recency
// key. hash must be valid hex (callers check first).
func prefix(hash string) uint64 {
	var b [8]byte
	hex.Decode(b[:], []byte(hash[:16]))
	return binary.LittleEndian.Uint64(b[:])
}

// memSlot is one resident segment. The full hash is kept so a
// truncated-prefix collision is detected and treated as a miss.
type memSlot struct {
	hash     string
	branches []trace.Branch
}

// nameEntry is the on-disk form of one name-index record. The name is
// recorded so a read can re-validate that the blob answers the name it
// was asked for.
type nameEntry struct {
	Name      string `json:"name"`
	TraceHash string `json:"trace_sha256"`
}

// Pool is the two-tiered segment pool. It is safe for concurrent use;
// the memory tier is guarded by one mutex and disk I/O happens outside
// it.
type Pool struct {
	mu    sync.Mutex
	rec   *lru.Set           // recency over hash prefixes
	mem   map[uint64]memSlot // prefix -> resident segment
	names map[string]string  // name -> hash (authoritative when memory-only)
	dir   string             // "" = memory-only
}

// Open returns a pool whose memory tier holds up to memEntries decoded
// segments (must be positive — segments are whole traces, so keep this
// small) over the disk tier rooted at dir; dir == "" selects a
// memory-only pool. The directory is created if missing.
func Open(memEntries int, dir string) (*Pool, error) {
	if memEntries <= 0 {
		return nil, fmt.Errorf("tracepool: memory tier capacity %d must be positive", memEntries)
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("tracepool: creating %s: %w", dir, err)
		}
	}
	return &Pool{
		rec:   lru.NewSet(memEntries),
		mem:   make(map[uint64]memSlot, memEntries),
		names: make(map[string]string),
		dir:   dir,
	}, nil
}

// Dir returns the disk-tier root ("" for a memory-only pool).
func (p *Pool) Dir() string { return p.dir }

// Len returns the number of segments resident in the memory tier.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rec.Len()
}

// Put pools a segment, returning its content hash. created reports
// whether this call added the segment; a Put whose content is already
// pooled (memory or disk) only refreshes recency and counts a dedup
// hit. The branch slice is retained by the memory tier, so callers
// must not mutate it afterwards.
func (p *Pool) Put(branches []trace.Branch) (hash string, created bool, err error) {
	hash = trace.HashBranches(branches)
	if p.resident(hash) || p.onDisk(hash) {
		p.insertMem(hash, branches)
		mDedupHits.Inc()
		return hash, false, nil
	}
	if p.dir != "" {
		enc, err := trace.EncodeColumnar(branches)
		if err != nil {
			return "", false, fmt.Errorf("tracepool: encoding %s: %w", hash, err)
		}
		if err := p.writeBlob(p.blobPath(hash), enc); err != nil {
			return "", false, err
		}
	}
	p.insertMem(hash, branches)
	mPuts.Inc()
	return hash, true, nil
}

// Get returns the pooled segment addressed by hash. A memory-tier miss
// falls through to the disk tier; a disk hit is decoded, re-validated
// against its address and promoted. Malformed hashes and untrustworthy
// blobs are misses.
func (p *Pool) Get(hash string) ([]trace.Branch, bool) {
	if !ValidHash(hash) {
		mMisses.Inc()
		return nil, false
	}
	p.mu.Lock()
	if slot, ok := p.mem[prefix(hash)]; ok && slot.hash == hash {
		p.rec.Touch(prefix(hash))
		p.mu.Unlock()
		mMemHits.Inc()
		return slot.branches, true
	}
	p.mu.Unlock()
	if p.dir == "" {
		mMisses.Inc()
		return nil, false
	}
	branches, ok := p.readBlob(hash)
	if !ok {
		mMisses.Inc()
		return nil, false
	}
	mDiskHits.Inc()
	p.insertMem(hash, branches)
	return branches, true
}

// Contains reports whether hash addresses a pooled segment (memory or
// disk) without decoding or promoting it. A disk blob is trusted here
// on existence alone; Get still re-validates before serving it.
func (p *Pool) Contains(hash string) bool {
	return ValidHash(hash) && (p.resident(hash) || p.onDisk(hash))
}

// PutNamed pools a segment and binds name to its content hash in the
// name index.
func (p *Pool) PutNamed(name string, branches []trace.Branch) (string, error) {
	hash, _, err := p.Put(branches)
	if err != nil {
		return "", err
	}
	if p.dir != "" {
		data, err := json.Marshal(nameEntry{Name: name, TraceHash: hash})
		if err != nil {
			return "", fmt.Errorf("tracepool: encoding name %q: %w", name, err)
		}
		if err := os.MkdirAll(filepath.Join(p.dir, "names"), 0o755); err != nil {
			return "", fmt.Errorf("tracepool: creating name index: %w", err)
		}
		if err := p.writeBlob(p.namePath(name), append(data, '\n')); err != nil {
			return "", err
		}
	}
	p.mu.Lock()
	p.names[name] = hash
	p.mu.Unlock()
	return hash, nil
}

// GetNamed resolves name through the index and returns the pooled
// segment plus its content hash. An index record whose recorded name
// does not match, or whose hash no longer addresses a valid segment,
// is a miss.
func (p *Pool) GetNamed(name string) ([]trace.Branch, string, bool) {
	p.mu.Lock()
	hash, ok := p.names[name]
	p.mu.Unlock()
	if !ok {
		if p.dir == "" {
			return nil, "", false
		}
		data, err := os.ReadFile(p.namePath(name))
		if err != nil {
			return nil, "", false
		}
		var e nameEntry
		if err := json.Unmarshal(data, &e); err != nil || e.Name != name || !ValidHash(e.TraceHash) {
			mDrops.Inc()
			return nil, "", false
		}
		hash = e.TraceHash
	}
	branches, ok := p.Get(hash)
	if !ok {
		return nil, "", false
	}
	p.mu.Lock()
	p.names[name] = hash
	p.mu.Unlock()
	return branches, hash, true
}

// resident reports a memory-tier hit without promoting.
func (p *Pool) resident(hash string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	slot, ok := p.mem[prefix(hash)]
	return ok && slot.hash == hash
}

// onDisk reports whether the blob file exists.
func (p *Pool) onDisk(hash string) bool {
	if p.dir == "" {
		return false
	}
	_, err := os.Stat(p.blobPath(hash))
	return err == nil
}

// insertMem makes a segment resident, evicting the LRU one when full.
func (p *Pool) insertMem(hash string, branches []trace.Branch) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pre := prefix(hash)
	if slot, ok := p.mem[pre]; ok && slot.hash != hash {
		mEvictions.Inc()
	}
	_, evicted, didEvict := p.rec.Touch(pre)
	if didEvict {
		delete(p.mem, evicted)
		mEvictions.Inc()
	}
	p.mem[pre] = memSlot{hash: hash, branches: branches}
}

// blobPath returns the segment file for a hash.
func (p *Pool) blobPath(hash string) string {
	return filepath.Join(p.dir, hash+".ctrace")
}

// namePath returns the index file for a name. Names are arbitrary
// strings, so the filename is the hex SHA-256 of the name (the record
// inside carries the name for re-validation).
func (p *Pool) namePath(name string) string {
	sum := sha256.Sum256([]byte(name))
	return filepath.Join(p.dir, "names", hex.EncodeToString(sum[:])+".json")
}

// readBlob loads, decodes and re-validates one segment. ok is false
// for any blob that cannot be trusted: unreadable, undecodable, or
// whose decoded content does not hash back to its address.
func (p *Pool) readBlob(hash string) ([]trace.Branch, bool) {
	data, err := os.ReadFile(p.blobPath(hash))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			mDrops.Inc()
		}
		return nil, false
	}
	branches, err := trace.DecodeBytes(data)
	if err != nil {
		mDrops.Inc()
		return nil, false
	}
	if trace.HashBranches(branches) != hash {
		mDrops.Inc()
		return nil, false
	}
	return branches, true
}

// writeBlob persists bytes atomically: a unique temp file in the pool
// directory renamed over the final path, so a concurrent reader sees
// either nothing or a complete blob.
func (p *Pool) writeBlob(path string, data []byte) error {
	tmp, err := os.CreateTemp(p.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("tracepool: staging %s: %w", filepath.Base(path), err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tracepool: staging %s: %w", filepath.Base(path), werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("tracepool: committing %s: %w", filepath.Base(path), err)
	}
	return nil
}
