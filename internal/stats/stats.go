// Package stats provides the small set of summary statistics the
// experiment harness needs: means, standard deviations, confidence
// intervals over seed replicates, and paired comparisons. It exists so
// variance studies (does a conclusion survive workload-seed noise?)
// are first-class rather than eyeballed.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of replicate measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
}

// Summarize computes a Summary. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// tCritical95 holds two-sided 95% Student-t critical values by degrees
// of freedom (1-30); beyond 30 the normal approximation 1.96 is used.
var tCritical95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean (Student-t). Zero for samples of size 1.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	df := s.N - 1
	t := 1.96
	if df <= len(tCritical95) {
		t = tCritical95[df-1]
	}
	return t * s.StdDev / math.Sqrt(float64(s.N))
}

// String renders "mean ± ci95 [min, max] (n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f [%.3f, %.3f] (n=%d)", s.Mean, s.CI95(), s.Min, s.Max, s.N)
}

// Median returns the sample median.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// PairedDelta summarises the per-replicate differences a[i] - b[i] of
// two paired samples (same seeds, two predictors). Returned Summary
// describes the deltas; a CI95 excluding zero means the difference is
// significant at the 5% level.
func PairedDelta(a, b []float64) (Summary, error) {
	if len(a) != len(b) {
		return Summary{}, fmt.Errorf("stats: paired samples differ in length: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return Summary{}, fmt.Errorf("stats: empty paired samples")
	}
	deltas := make([]float64, len(a))
	for i := range a {
		deltas[i] = a[i] - b[i]
	}
	return Summarize(deltas), nil
}

// SignificantlyDifferent reports whether the paired difference between
// a and b is significant at the 5% level (its 95% CI excludes zero).
func SignificantlyDifferent(a, b []float64) (bool, error) {
	d, err := PairedDelta(a, b)
	if err != nil {
		return false, err
	}
	ci := d.CI95()
	return d.Mean-ci > 0 || d.Mean+ci < 0, nil
}
