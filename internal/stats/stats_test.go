package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"gskew/internal/rng"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("N=%d Mean=%v", s.N, s.Mean)
	}
	// Sample stddev of this classic sample is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7); !almostEqual(s.StdDev, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Mean != 3.5 || s.StdDev != 0 || s.CI95() != 0 {
		t.Errorf("single-sample summary: %+v ci=%v", s, s.CI95())
	}
}

func TestSummarizePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Summarize(nil) did not panic")
		}
	}()
	Summarize(nil)
}

func TestCI95KnownValue(t *testing.T) {
	// n=5, stddev=1: ci = 2.776 / sqrt(5).
	s := Summary{N: 5, StdDev: 1}
	if want := 2.776 / math.Sqrt(5); !almostEqual(s.CI95(), want, 1e-9) {
		t.Errorf("CI95 = %v, want %v", s.CI95(), want)
	}
	// Large n approaches the normal value.
	s = Summary{N: 400, StdDev: 1}
	if want := 1.96 / 20; !almostEqual(s.CI95(), want, 1e-9) {
		t.Errorf("large-n CI95 = %v, want %v", s.CI95(), want)
	}
}

func TestCI95Coverage(t *testing.T) {
	// Empirical coverage check: the 95% CI of the mean of n=10 normal
	// samples should contain the true mean ~95% of the time.
	r := rng.NewXoshiro256(42)
	gauss := func() float64 {
		// Box-Muller from two uniforms.
		u1, u2 := r.Float64(), r.Float64()
		if u1 < 1e-12 {
			u1 = 1e-12
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
	const trials = 4000
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 10)
		for j := range xs {
			xs[j] = 5 + 2*gauss()
		}
		s := Summarize(xs)
		ci := s.CI95()
		if s.Mean-ci <= 5 && 5 <= s.Mean+ci {
			covered++
		}
	}
	cov := float64(covered) / trials
	if cov < 0.93 || cov > 0.97 {
		t.Errorf("CI95 empirical coverage = %.3f, want ~0.95", cov)
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Error("even median")
	}
	// Median must not mutate its input.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated input")
	}
	defer func() {
		if recover() == nil {
			t.Error("Median(nil) did not panic")
		}
	}()
	Median(nil)
}

func TestPairedDelta(t *testing.T) {
	a := []float64{5, 6, 7}
	b := []float64{4, 5, 6}
	d, err := PairedDelta(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean != 1 || d.StdDev != 0 {
		t.Errorf("delta = %+v", d)
	}
	if _, err := PairedDelta(a, b[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PairedDelta(nil, nil); err == nil {
		t.Error("empty samples accepted")
	}
}

func TestSignificantlyDifferent(t *testing.T) {
	// Constant positive difference: trivially significant.
	a := []float64{5, 6, 7, 8}
	b := []float64{4, 5, 6, 7}
	sig, err := SignificantlyDifferent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !sig {
		t.Error("constant difference not significant")
	}
	// Symmetric noise: not significant.
	c := []float64{1, -1, 1, -1, 1, -1}
	zero := []float64{0, 0, 0, 0, 0, 0}
	sig, err = SignificantlyDifferent(c, zero)
	if err != nil {
		t.Fatal(err)
	}
	if sig {
		t.Error("zero-mean noise reported significant")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if out := s.String(); !strings.Contains(out, "n=3") || !strings.Contains(out, "2.000") {
		t.Errorf("String() = %q", out)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
