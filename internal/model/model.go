// Package model implements the paper's analytical model of skewed
// branch prediction (section 5.2): the per-bank aliasing probability
// as a function of last-use distance and table size (formulas 1-2),
// the probability that a one-bank or skewed organisation deviates from
// the unaliased prediction (formulas 3-4), and the trace-driven
// extrapolation that combines measured last-use distances with the
// model to estimate misprediction rates (Figure 11).
//
// The model assumes 1-bit automata and the total-update policy; the
// paper (and our tests) show it slightly overestimates measured rates
// because constructive aliasing is ignored.
package model

import (
	"fmt"
	"math"
)

// AliasProb returns the aliasing probability for a dynamic reference
// with last-use distance d in an n-entry table under a well-dispersing
// hash function — formula (1): p = 1 - (1 - 1/N)^D.
//
// A negative d denotes a first use (cold reference), for which the
// paper prescribes p = 1.
func AliasProb(d int, n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("model: table size %d must be positive", n))
	}
	if d < 0 {
		return 1
	}
	if d == 0 {
		return 0
	}
	return 1 - math.Pow(1-1.0/float64(n), float64(d))
}

// AliasProbApprox is the large-N approximation of formula (2):
// p = 1 - exp(-D/N).
func AliasProbApprox(d int, n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("model: table size %d must be positive", n))
	}
	if d < 0 {
		return 1
	}
	return 1 - math.Exp(-float64(d)/float64(n))
}

// PDirect returns the probability that a direct-mapped one-bank
// predictor's prediction differs from the unaliased prediction, given
// per-entry aliasing probability p and bias b — formula (4):
// P_dm = 2 b (1-b) p.
func PDirect(p, b float64) float64 {
	checkProb("p", p)
	checkProb("b", b)
	return 2 * b * (1 - b) * p
}

// PSkew returns the probability that a 3-bank skewed predictor's
// majority vote differs from the unaliased prediction, given per-bank
// aliasing probability p and bias b — formula (3):
//
//	P_sk = 3 p^2 (1-p) b(1-b)
//	     + p^3 b [3 b (1-b)^2 + (1-b)^3]
//	     + p^3 (1-b) [3 (1-b) b^2 + b^3]
func PSkew(p, b float64) float64 {
	checkProb("p", p)
	checkProb("b", b)
	q := 1 - p
	c := 1 - b
	return 3*p*p*q*b*c +
		p*p*p*b*(3*b*c*c+c*c*c) +
		p*p*p*c*(3*c*b*b+b*b*b)
}

// PSkewWorstCase is P_sk at b = 1/2: (3/4) p^2 (1-p) + (1/2) p^3.
func PSkewWorstCase(p float64) float64 { return PSkew(p, 0.5) }

// PDirectWorstCase is P_dm at b = 1/2: p/2.
func PDirectWorstCase(p float64) float64 { return PDirect(p, 0.5) }

func checkProb(name string, v float64) {
	if v < 0 || v > 1 || math.IsNaN(v) {
		panic(fmt.Sprintf("model: %s = %v is not a probability", name, v))
	}
}

// CrossoverDistance locates the last-use distance D at which a
// 3x(N/3)-bank skewed organisation stops beating an N-entry one-bank
// table (at bias b), by scanning formula (1) into both P functions.
// The paper reports D ~= N/10 for b = 1/2. Returns 0 if the skewed
// organisation never wins.
func CrossoverDistance(n int, b float64) int {
	if n < 3 {
		panic("model: table size must be at least 3")
	}
	bank := n / 3
	winning := false
	for d := 1; d <= 4*n; d++ {
		ps := PSkew(AliasProb(d, bank), b)
		pd := PDirect(AliasProb(d, n), b)
		if ps < pd {
			winning = true
		} else if winning {
			return d
		}
	}
	if !winning {
		return 0
	}
	return 4 * n // no crossover within scan range
}

// Curve samples a function over [0,1] with the given number of points
// (inclusive endpoints), returning x and y slices. Used to regenerate
// Figures 9 and 10.
func Curve(f func(p float64) float64, points int) (xs, ys []float64) {
	if points < 2 {
		points = 2
	}
	xs = make([]float64, points)
	ys = make([]float64, points)
	for i := 0; i < points; i++ {
		x := float64(i) / float64(points-1)
		xs[i] = x
		ys[i] = f(x)
	}
	return xs, ys
}

// Extrapolator accumulates the model-based misprediction estimate for
// a 3-bank skewed predictor over a reference stream, as in Figure 11:
// each dynamic reference contributes P_sk computed from its measured
// last-use distance (p = 1 for first uses), and the unaliased
// misprediction rate of the trace is added at the end.
type Extrapolator struct {
	bankEntries int
	bias        float64
	sum         float64
	refs        int
}

// NewExtrapolator returns an extrapolator for banks of the given entry
// count and a trace-wide bias b (the density of static (address,
// history) pairs biased taken, measured on the same trace).
func NewExtrapolator(bankEntries int, bias float64) *Extrapolator {
	if bankEntries <= 0 {
		panic("model: bank entries must be positive")
	}
	checkProb("bias", bias)
	return &Extrapolator{bankEntries: bankEntries, bias: bias}
}

// Observe adds one dynamic reference with measured last-use distance d
// (negative = first use).
func (e *Extrapolator) Observe(d int) {
	e.sum += PSkew(AliasProb(d, e.bankEntries), e.bias)
	e.refs++
}

// MispredictOverhead returns the mean model-predicted probability that
// the skewed prediction deviates from the unaliased prediction.
func (e *Extrapolator) MispredictOverhead() float64 {
	if e.refs == 0 {
		return 0
	}
	return e.sum / float64(e.refs)
}

// Extrapolate returns the full estimated misprediction rate given the
// trace's unaliased misprediction rate.
func (e *Extrapolator) Extrapolate(unaliasedRate float64) float64 {
	return unaliasedRate + e.MispredictOverhead()
}

// Refs returns the number of references observed.
func (e *Extrapolator) Refs() int { return e.refs }
