package model

import (
	"math"
	"testing"
	"testing/quick"

	"gskew/internal/rng"
)

func TestPSkewMReducesToPDirectAtOneBank(t *testing.T) {
	f := func(praw, braw uint16) bool {
		p := float64(praw) / 65535
		b := float64(braw) / 65535
		return almostEqual(PSkewM(p, b, 1), PDirect(p, b), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPSkewMReducesToFormula3AtThreeBanks(t *testing.T) {
	f := func(praw, braw uint16) bool {
		p := float64(praw) / 65535
		b := float64(braw) / 65535
		return almostEqual(PSkewM(p, b, 3), PSkew(p, b), 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPSkewMPanicsOnEvenBanks(t *testing.T) {
	for _, m := range []int{0, 2, 4, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PSkewM with M=%d did not panic", m)
				}
			}()
			PSkewM(0.5, 0.5, m)
		}()
	}
}

func TestPSkewMMoreBanksFlatterAtSmallP(t *testing.T) {
	// The paper's point: an M-th degree polynomial. At small p, more
	// banks mean a smaller deviation probability; at p=1 all converge
	// to the same fully-aliased limit.
	for _, p := range []float64{0.02, 0.05, 0.1} {
		prev := math.Inf(1)
		for _, m := range []int{1, 3, 5, 7} {
			v := PSkewM(p, 0.5, m)
			if v >= prev {
				t.Errorf("p=%v: PSkewM(M=%d) = %v not below M-2's %v", p, m, v, prev)
			}
			prev = v
		}
	}
	limit := PSkewM(1, 0.5, 1)
	for _, m := range []int{3, 5, 7} {
		if got := PSkewM(1, 0.5, m); !almostEqual(got, limit, 1e-9) {
			t.Errorf("fully-aliased limit differs at M=%d: %v vs %v", m, got, limit)
		}
	}
}

func TestPSkewMPolynomialOrder(t *testing.T) {
	// Near p -> 0, PSkewM should scale like p^ceil(M/2+... the leading
	// term of the 3-bank formula is (3/4)p^2; for M banks the vote
	// needs ceil(M/2) aliased-and-disagreeing banks, so the leading
	// order is p^((M+1)/2). Check the scaling exponent numerically.
	for _, m := range []int{1, 3, 5, 7} {
		p1, p2 := 1e-4, 2e-4
		v1, v2 := PSkewM(p1, 0.5, m), PSkewM(p2, 0.5, m)
		gotOrder := math.Log(v2/v1) / math.Log(2)
		wantOrder := float64(m+1) / 2
		if math.Abs(gotOrder-wantOrder) > 0.05 {
			t.Errorf("M=%d: leading order %.3f, want %.1f", m, gotOrder, wantOrder)
		}
	}
}

func TestPSkewMAgainstMonteCarlo(t *testing.T) {
	r := rng.NewXoshiro256(7)
	const trials = 300000
	for _, m := range []int{5, 7} {
		for _, p := range []float64{0.2, 0.5} {
			b := 0.6
			deviations := 0
			for i := 0; i < trials; i++ {
				truth := r.Bool(b)
				votes := 0
				for bank := 0; bank < m; bank++ {
					pred := truth
					if r.Bool(p) {
						pred = r.Bool(b)
					}
					if pred {
						votes++
					}
				}
				if (votes*2 > m) != truth {
					deviations++
				}
			}
			got := float64(deviations) / trials
			want := PSkewM(p, b, m)
			if math.Abs(got-want) > 0.004 {
				t.Errorf("M=%d p=%v: Monte-Carlo %v vs formula %v", m, p, got, want)
			}
		}
	}
}

func TestChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {7, 3, 35}, {3, 4, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := choose(c.n, c.k); got != c.want {
			t.Errorf("choose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestCrossoverDistanceMMatchesThreeBank(t *testing.T) {
	n := 3 * 4096
	if got, want := CrossoverDistanceM(n, 0.5, 3), CrossoverDistance(n, 0.5); got != want {
		t.Errorf("CrossoverDistanceM(3) = %d, CrossoverDistance = %d", got, want)
	}
}

func TestCrossoverDistanceMMoreBanksCrossEarlier(t *testing.T) {
	// More banks = smaller banks = higher per-bank aliasing: the
	// skewed organisation loses its edge at a shorter distance.
	n := 105 * 1024 // divisible by 3, 5, 7
	d3 := CrossoverDistanceM(n, 0.5, 3)
	d5 := CrossoverDistanceM(n, 0.5, 5)
	d7 := CrossoverDistanceM(n, 0.5, 7)
	if !(d7 <= d5 && d5 <= d3) {
		t.Errorf("crossovers not ordered: d3=%d d5=%d d7=%d", d3, d5, d7)
	}
	if d3 == 0 || d5 == 0 || d7 == 0 {
		t.Errorf("some organisation never wins: d3=%d d5=%d d7=%d", d3, d5, d7)
	}
}

func TestCrossoverDistanceMPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { CrossoverDistanceM(1024, 0.5, 2) },
		func() { CrossoverDistanceM(2, 0.5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid CrossoverDistanceM accepted")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkPSkewM7(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += PSkewM(float64(i%1000)/1000, 0.5, 7)
	}
	_ = sink
}
