package model

import (
	"math"
	"testing"
	"testing/quick"

	"gskew/internal/rng"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestAliasProbBoundaries(t *testing.T) {
	if AliasProb(0, 100) != 0 {
		t.Error("D=0 must give p=0")
	}
	if AliasProb(-1, 100) != 1 {
		t.Error("first use must give p=1")
	}
	if got := AliasProb(1, 1); got != 1 {
		t.Errorf("N=1, D=1: p = %v, want 1", got)
	}
}

func TestAliasProbFormula(t *testing.T) {
	// p = 1 - (1 - 1/N)^D checked directly.
	cases := []struct {
		d, n int
		want float64
	}{
		{1, 2, 0.5},
		{2, 2, 0.75},
		{1, 4, 0.25},
		{10, 1000, 1 - math.Pow(0.999, 10)},
	}
	for _, c := range cases {
		if got := AliasProb(c.d, c.n); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("AliasProb(%d,%d) = %v, want %v", c.d, c.n, got, c.want)
		}
	}
}

func TestAliasProbMonotone(t *testing.T) {
	// Property: p increases with D, decreases with N, stays in [0,1].
	f := func(d16 uint16, n16 uint16) bool {
		d := int(d16%5000) + 1
		n := int(n16%5000) + 2
		p := AliasProb(d, n)
		if p < 0 || p > 1 {
			return false
		}
		return AliasProb(d+1, n) >= p && AliasProb(d, n+1) <= p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAliasProbApproxConvergence(t *testing.T) {
	// The exponential approximation must be close for large N.
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		for _, d := range []int{1, 10, n / 10, n, 3 * n} {
			exact := AliasProb(d, n)
			approx := AliasProbApprox(d, n)
			if !almostEqual(exact, approx, 1e-3) {
				t.Errorf("N=%d D=%d: exact %v vs approx %v", n, d, exact, approx)
			}
		}
	}
	if AliasProbApprox(-1, 10) != 1 {
		t.Error("approx first use must give 1")
	}
}

func TestAliasProbPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { AliasProb(1, 0) },
		func() { AliasProbApprox(1, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for non-positive table size")
				}
			}()
			fn()
		}()
	}
}

func TestPDirectFormula(t *testing.T) {
	// P_dm = 2 b (1-b) p.
	if got := PDirect(1, 0.5); got != 0.5 {
		t.Errorf("PDirect(1, .5) = %v, want .5", got)
	}
	if got := PDirect(0.4, 0.5); !almostEqual(got, 0.2, 1e-12) {
		t.Errorf("PDirect(.4,.5) = %v", got)
	}
	if PDirect(0.7, 0) != 0 || PDirect(0.7, 1) != 0 {
		t.Error("fully biased streams suffer no destructive aliasing under the 1-bit model")
	}
}

func TestPSkewWorstCaseClosedForm(t *testing.T) {
	// At b=1/2: P_sk = (3/4) p^2 (1-p) + (1/2) p^3.
	f := func(praw uint16) bool {
		p := float64(praw) / 65535
		want := 0.75*p*p*(1-p) + 0.5*p*p*p
		return almostEqual(PSkewWorstCase(p), want, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPSkewBoundaries(t *testing.T) {
	if PSkew(0, 0.5) != 0 {
		t.Error("no aliasing -> no deviation")
	}
	// p=1, b=1/2: P_sk = 1/2 — fully aliased banks give a coin flip.
	if got := PSkew(1, 0.5); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("PSkew(1,.5) = %v, want .5", got)
	}
	if PSkew(0.8, 0) != 0 || PSkew(0.8, 1) != 0 {
		t.Error("fully biased streams: aliased predictions agree anyway")
	}
}

func TestPSkewBelowPDirectAtSmallP(t *testing.T) {
	// The paper's core point: at the same per-structure aliasing
	// probability, the skewed organisation's deviation probability is
	// polynomially small while the one-bank one is linear.
	for _, p := range []float64{0.01, 0.05, 0.1, 0.2} {
		for _, b := range []float64{0.3, 0.5, 0.7} {
			if PSkew(p, b) >= PDirect(p, b) {
				t.Errorf("PSkew(%v,%v) >= PDirect: %v vs %v",
					p, b, PSkew(p, b), PDirect(p, b))
			}
		}
	}
}

func TestPSkewSymmetricInBias(t *testing.T) {
	f := func(praw, braw uint16) bool {
		p := float64(praw) / 65535
		b := float64(braw) / 65535
		return almostEqual(PSkew(p, b), PSkew(p, 1-b), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbabilityValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { PSkew(-0.1, 0.5) },
		func() { PSkew(1.1, 0.5) },
		func() { PSkew(0.5, 2) },
		func() { PDirect(math.NaN(), 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid probability accepted")
				}
			}()
			fn()
		}()
	}
}

func TestCrossoverDistanceNearN10(t *testing.T) {
	// Paper: for b = 1/2, a 3x(N/3) skewed table beats an N-entry
	// one-bank table up to D ~= N/10.
	for _, n := range []int{3 * 1024, 3 * 4096, 3 * 16384} {
		d := CrossoverDistance(n, 0.5)
		lo, hi := n/20, n/5
		if d < lo || d > hi {
			t.Errorf("N=%d: crossover at D=%d, want within [%d,%d] (~N/10)", n, d, lo, hi)
		}
	}
}

func TestCrossoverPanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CrossoverDistance(2, .5) did not panic")
		}
	}()
	CrossoverDistance(2, 0.5)
}

func TestCurve(t *testing.T) {
	xs, ys := Curve(PDirectWorstCase, 11)
	if len(xs) != 11 || len(ys) != 11 {
		t.Fatalf("Curve lengths %d/%d", len(xs), len(ys))
	}
	if xs[0] != 0 || xs[10] != 1 {
		t.Error("Curve endpoints wrong")
	}
	if ys[10] != 0.5 {
		t.Errorf("PDirectWorstCase(1) = %v", ys[10])
	}
	// Degenerate point count clamps to 2.
	xs, _ = Curve(PDirectWorstCase, 1)
	if len(xs) != 2 {
		t.Error("Curve did not clamp point count")
	}
}

func TestExtrapolator(t *testing.T) {
	e := NewExtrapolator(1024, 0.5)
	// All references with D=0: no aliasing, overhead 0.
	for i := 0; i < 10; i++ {
		e.Observe(0)
	}
	if e.MispredictOverhead() != 0 {
		t.Errorf("overhead = %v, want 0", e.MispredictOverhead())
	}
	if e.Refs() != 10 {
		t.Errorf("Refs = %d", e.Refs())
	}
	if got := e.Extrapolate(0.03); !almostEqual(got, 0.03, 1e-12) {
		t.Errorf("Extrapolate = %v", got)
	}
	// First uses contribute PSkew(1, b).
	e2 := NewExtrapolator(1024, 0.5)
	e2.Observe(-1)
	if got := e2.MispredictOverhead(); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("first-use overhead = %v, want PSkew(1,.5) = .5", got)
	}
	// Mixed distances average.
	e3 := NewExtrapolator(100, 0.5)
	e3.Observe(50)
	e3.Observe(200)
	want := (PSkewWorstCase(AliasProb(50, 100)) + PSkewWorstCase(AliasProb(200, 100))) / 2
	if got := e3.MispredictOverhead(); !almostEqual(got, want, 1e-12) {
		t.Errorf("mixed overhead = %v, want %v", got, want)
	}
}

func TestExtrapolatorEmpty(t *testing.T) {
	e := NewExtrapolator(64, 0.4)
	if e.MispredictOverhead() != 0 {
		t.Error("empty overhead must be 0")
	}
}

func TestExtrapolatorValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewExtrapolator(0, 0.5) },
		func() { NewExtrapolator(64, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid extrapolator config accepted")
				}
			}()
			fn()
		}()
	}
}

// TestModelAgainstMonteCarlo validates formula (3) against a direct
// Monte-Carlo simulation of the abstracted process: three banks, each
// independently aliased with probability p; an aliased bank predicts
// the aliasing substream's direction (taken with probability b)
// instead of the true direction (taken with probability b).
func TestModelAgainstMonteCarlo(t *testing.T) {
	r := rng.NewXoshiro256(42)
	const trials = 400000
	for _, p := range []float64{0.1, 0.3, 0.6} {
		for _, b := range []float64{0.5, 0.7} {
			deviations := 0
			for i := 0; i < trials; i++ {
				// Unaliased prediction for this reference.
				truth := r.Bool(b)
				votes := 0
				for bank := 0; bank < 3; bank++ {
					pred := truth
					if r.Bool(p) {
						// Entry overwritten by an unrelated substream.
						pred = r.Bool(b)
					}
					if pred {
						votes++
					}
				}
				overall := votes >= 2
				if overall != truth {
					deviations++
				}
			}
			got := float64(deviations) / trials
			want := PSkew(p, b)
			if !almostEqual(got, want, 0.004) {
				t.Errorf("p=%v b=%v: Monte-Carlo %v vs formula %v", p, b, got, want)
			}
		}
	}
}

func BenchmarkPSkew(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += PSkew(float64(i%1000)/1000, 0.5)
	}
	_ = sink
}

func BenchmarkExtrapolatorObserve(b *testing.B) {
	e := NewExtrapolator(4096, 0.5)
	for i := 0; i < b.N; i++ {
		e.Observe(i % 20000)
	}
}
