package model

import (
	"fmt"
	"math"
)

// This file generalises formula (3) to an arbitrary odd number of
// banks M, making the paper's closing observation — "in an M-bank
// skewed organisation, [the mispredict overhead] increases as an M-th
// degree polynomial" — computable and testable.
//
// Derivation (same abstraction as section 5.2, 1-bit automata, total
// update): a reference is aliased independently in each bank with
// probability p. An aliased bank predicts the direction of an
// unrelated substream — taken with probability b — while an unaliased
// bank reproduces the unaliased prediction. The unaliased banks all
// vote the unaliased direction, so the majority flips only when at
// least (M+1)/2 aliased banks simultaneously disagree with it.
// Conditioning on the unaliased direction (taken with probability b)
// and summing the binomial terms gives the exact deviation
// probability; PSkewM(p, b, 3) equals formula (3) and PSkewM(p, b, 1)
// equals formula (4).

// PSkewM returns the probability that an M-bank skewed predictor's
// majority vote differs from the unaliased prediction, for per-bank
// aliasing probability p and bias b. M must be odd and >= 1.
// M = 1 reduces to the direct-mapped formula (4).
func PSkewM(p, b float64, m int) float64 {
	checkProb("p", p)
	checkProb("b", b)
	if m < 1 || m%2 == 0 {
		panic(fmt.Sprintf("model: bank count %d must be odd and >= 1", m))
	}
	need := m/2 + 1 // votes needed for a majority

	// q(d): probability an aliased bank's prediction disagrees with
	// the unaliased prediction, given the unaliased direction d.
	// If unaliased = taken (prob b): disagree prob 1-b; else b.
	total := 0.0
	for _, dir := range []struct{ prob, disagree float64 }{
		{b, 1 - b}, // unaliased prediction is taken
		{1 - b, b}, // unaliased prediction is not taken
	} {
		// j banks aliased (binomial in p). The m-j unaliased banks
		// all vote the unaliased direction, so the vote flips only if
		// the aliased banks supply a full opposite majority: at least
		// need = (m+1)/2 of them must disagree.
		for j := need; j <= m; j++ {
			pj := binomPMFRange(j, need, dir.disagree)
			total += dir.prob * binomPMF(m, j, p) * pj
		}
	}
	return total
}

// binomPMF returns C(n, k) p^k (1-p)^(n-k).
func binomPMF(n, k int, p float64) float64 {
	return choose(n, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
}

// binomPMFRange returns P(X >= kmin) for X ~ Binomial(n, p).
func binomPMFRange(n, kmin int, p float64) float64 {
	s := 0.0
	for k := kmin; k <= n; k++ {
		s += binomPMF(n, k, p)
	}
	return s
}

// choose returns the binomial coefficient C(n, k) as a float64.
func choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// CrossoverDistanceM generalises CrossoverDistance to M banks: the
// last-use distance at which an Mx(N/M)-bank skewed organisation stops
// beating an N-entry one-bank table at bias b.
func CrossoverDistanceM(n int, b float64, m int) int {
	if m < 1 || m%2 == 0 {
		panic(fmt.Sprintf("model: bank count %d must be odd", m))
	}
	if n < m {
		panic("model: table size must be at least the bank count")
	}
	bank := n / m
	winning := false
	for d := 1; d <= 4*n; d++ {
		ps := PSkewM(AliasProb(d, bank), b, m)
		pd := PDirect(AliasProb(d, n), b)
		if ps < pd {
			winning = true
		} else if winning {
			return d
		}
	}
	if !winning {
		return 0
	}
	return 4 * n
}
