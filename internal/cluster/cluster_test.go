package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"gskew/internal/api"
	"gskew/internal/sim"
	"gskew/internal/store"
	"gskew/internal/trace"
)

func testEntry() store.Entry {
	return store.Entry{
		Schema:      store.SchemaVersion,
		Spec:        "gshare:n=10,k=8",
		TraceHash:   "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",
		Opts:        store.Options{},
		StorageBits: 2048,
		Result:      sim.Result{Conditionals: 100, Mispredicts: 7},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty self accepted")
	}
	if _, err := New(Config{Self: "http://a", Nodes: []string{"http://b"}}); err == nil {
		t.Fatal("self outside node set accepted")
	}
	c, err := New(Config{Self: "http://a"})
	if err != nil {
		t.Fatal(err)
	}
	info := c.Info()
	if info.Gen != 1 || len(info.Nodes) != 1 || info.Nodes[0] != "http://a" || info.Replicas != 1 {
		t.Fatalf("default topology: %+v", info)
	}
}

func TestSetTopologyBumpsGeneration(t *testing.T) {
	c, err := New(Config{Self: "http://a"})
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.SetTopology(api.TopologyUpdate{Nodes: []string{"http://a", "http://b", "http://c"}, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 2 || len(info.Nodes) != 3 || info.Replicas != 2 {
		t.Fatalf("after reshard: %+v", info)
	}
	if _, err := c.SetTopology(api.TopologyUpdate{Nodes: []string{"http://b"}}); err == nil {
		t.Fatal("topology dropping self accepted")
	}
	if got := c.Info().Gen; got != 2 {
		t.Fatalf("rejected update changed generation: %d", got)
	}
}

// peerStub serves just enough of the internal surface to exercise the
// peer-fill paths.
type peerStub struct {
	cells  map[string]store.Entry
	traces map[string][]byte
	gets   int
	puts   int
}

func (p *peerStub) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /internal/v1/cells/{key}", func(w http.ResponseWriter, r *http.Request) {
		p.gets++
		e, ok := p.cells[r.PathValue("key")]
		if !ok {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: api.Error{Code: api.CodeNoSuchCell, Message: "not here"}})
			return
		}
		json.NewEncoder(w).Encode(e)
	})
	mux.HandleFunc("PUT /internal/v1/cells/{key}", func(w http.ResponseWriter, r *http.Request) {
		p.puts++
		var e store.Entry
		if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		p.cells[r.PathValue("key")] = e
		json.NewEncoder(w).Encode(api.CellOfferResponse{Key: r.PathValue("key"), Stored: true})
	})
	mux.HandleFunc("GET /internal/v1/traces/{hash}", func(w http.ResponseWriter, r *http.Request) {
		raw, ok := p.traces[r.PathValue("hash")]
		if !ok {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: api.Error{Code: api.CodeNoSuchTrace, Message: "not here"}})
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(raw)
	})
	return mux
}

// twoNodeCluster builds a cluster whose only peer is the stub, with
// replicas=2 so the stub owns every key alongside self.
func twoNodeCluster(t *testing.T, stub *peerStub) *Cluster {
	t.Helper()
	srv := httptest.NewServer(stub.handler())
	t.Cleanup(srv.Close)
	c, err := New(Config{Self: "http://self.invalid", Nodes: []string{"http://self.invalid", srv.URL}, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFillCellRoundTrip(t *testing.T) {
	stub := &peerStub{cells: map[string]store.Entry{}, traces: map[string][]byte{}}
	c := twoNodeCluster(t, stub)
	e := testEntry()
	key := e.Key()

	if _, ok := c.FillCell(context.Background(), key); ok {
		t.Fatal("fill hit on empty peer")
	}
	stub.cells[key.String()] = e
	got, ok := c.FillCell(context.Background(), key)
	if !ok {
		t.Fatal("fill missed a cell the peer holds")
	}
	if got.Key() != key || got.Result != e.Result {
		t.Fatalf("filled cell mismatch: %+v", got)
	}
}

func TestFillCellRejectsForgedEntry(t *testing.T) {
	stub := &peerStub{cells: map[string]store.Entry{}, traces: map[string][]byte{}}
	c := twoNodeCluster(t, stub)
	e := testEntry()
	key := e.Key()
	forged := e
	forged.Spec = "bimodal:n=10" // no longer re-derives key
	stub.cells[key.String()] = forged

	if _, ok := c.FillCell(context.Background(), key); ok {
		t.Fatal("accepted an entry that does not re-derive the asked key")
	}
}

func TestOfferCellReplicates(t *testing.T) {
	stub := &peerStub{cells: map[string]store.Entry{}, traces: map[string][]byte{}}
	c := twoNodeCluster(t, stub)
	e := testEntry()
	key := e.Key()

	c.OfferCell(context.Background(), key, e)
	if stub.puts != 1 {
		t.Fatalf("peer saw %d offers, want 1", stub.puts)
	}
	if got, ok := stub.cells[key.String()]; !ok || got.Key() != key {
		t.Fatalf("offered cell not stored on peer: %+v", got)
	}
	// And the round trip closes: the peer can now fill us.
	if _, ok := c.FillCell(context.Background(), key); !ok {
		t.Fatal("fill missed after offer")
	}
}

func TestFetchTraceValidatesHash(t *testing.T) {
	stub := &peerStub{cells: map[string]store.Entry{}, traces: map[string][]byte{}}
	c := twoNodeCluster(t, stub)

	branches := []trace.Branch{
		{PC: 0x1000, Taken: true, Kind: trace.Conditional},
		{PC: 0x1002, Taken: false, Kind: trace.Conditional},
		{PC: 0x1004, Taken: true, Kind: trace.Unconditional},
	}
	raw, err := trace.EncodeColumnar(branches)
	if err != nil {
		t.Fatal(err)
	}
	hash := trace.HashBranches(branches)

	if _, ok := c.FetchTrace(context.Background(), hash); ok {
		t.Fatal("trace fetch hit on empty peer")
	}
	stub.traces[hash] = raw
	got, ok := c.FetchTrace(context.Background(), hash)
	if !ok || len(got) != len(branches) {
		t.Fatalf("trace fetch: ok=%v len=%d", ok, len(got))
	}
	// A peer serving bytes whose content hash differs is rejected.
	stub.traces["deadbeef"] = raw
	if _, ok := c.FetchTrace(context.Background(), "deadbeef"); ok {
		t.Fatal("accepted trace bytes that do not hash to the asked hash")
	}
}

func TestPeerFailureIsAMiss(t *testing.T) {
	// Both members unreachable: every fill degrades to a miss, no error.
	c, err := New(Config{
		Self:     "http://self.invalid",
		Nodes:    []string{"http://self.invalid", "http://127.0.0.1:1"},
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.FillCell(context.Background(), testEntry().Key()); ok {
		t.Fatal("fill hit against unreachable peer")
	}
	if _, ok := c.FetchTrace(context.Background(), "00"); ok {
		t.Fatal("trace fetch hit against unreachable peer")
	}
}

func TestOwnersSkewAcrossKeys(t *testing.T) {
	c, err := New(Config{
		Self:     "http://n0",
		Nodes:    []string{"http://n0", "http://n1", "http://n2"},
		Replicas: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	owned := 0
	var buf bytes.Buffer
	for i := 0; i < 300; i++ {
		buf.Reset()
		buf.WriteString("cell-")
		buf.WriteByte(byte('a' + i%26))
		buf.WriteByte(byte('a' + i/26))
		if c.OwnsSelf(buf.String()) {
			owned++
		}
	}
	if owned == 0 || owned == 300 {
		t.Fatalf("self owns %d of 300 keys — sharding not spreading", owned)
	}
}
