// Package cluster shards the prediction service's content-addressed
// keys — result-store cell keys and trace segment hashes — across a
// static-topology set of predserved nodes.
//
// The layer is deliberately coordinator-free: every node holds the
// same topology (delivered by flag, config file, or a topology push to
// each node) and derives ownership independently from a consistent-
// hash ring. Because every cacheable artifact is content-addressed and
// every simulation is deterministic, ownership is a performance
// routing decision, never a correctness one: any node can compute any
// cell locally and the bytes are identical. That is the cluster's
// correctness invariant — responses are byte-identical across 1-node,
// N-node and resharded topologies — and it is what makes resharding
// graceful: a topology change at worst turns hits into recomputations.
//
// Ownership of a key is the first R distinct nodes clockwise of the
// key's point on the ring (R = replication factor, so hot cells live
// on R nodes). Each node projects VirtualNodes points per member onto
// the ring, which keeps the key space near-uniformly balanced and
// makes a membership change move only ~1/N of the keys.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// VirtualNodes is the number of ring points each member projects.
type ringPoint struct {
	hash uint64
	node int // index into Ring.nodes
}

// VirtualNodes per member: enough for <10% imbalance at small N
// without making ring construction or lookup measurable.
const VirtualNodes = 64

// Ring is an immutable consistent-hash ring over a node set. Build
// with NewRing; a topology change builds a new Ring (Cluster swaps the
// pointer under its lock and bumps the generation).
type Ring struct {
	nodes    []string // base URLs, which double as node identities
	points   []ringPoint
	replicas int
}

// hash64 maps a string onto the ring's key space.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.LittleEndian.Uint64(sum[:8])
}

// NewRing builds a ring over nodes with the given replication factor.
// Nodes must be non-empty and distinct; replicas is clamped to
// [1, len(nodes)].
func NewRing(nodes []string, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty node set")
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(nodes) {
		replicas = len(nodes)
	}
	r := &Ring{
		nodes:    append([]string(nil), nodes...),
		points:   make([]ringPoint, 0, len(nodes)*VirtualNodes),
		replicas: replicas,
	}
	for i, n := range r.nodes {
		for v := 0; v < VirtualNodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Nodes returns the member set (do not mutate).
func (r *Ring) Nodes() []string { return r.nodes }

// Replicas returns the effective replication factor.
func (r *Ring) Replicas() int { return r.replicas }

// Owners returns the replica set of a key: the first Replicas distinct
// nodes clockwise of the key's ring point, primary first.
func (r *Ring) Owners(key string) []string {
	owners := make([]string, 0, r.replicas)
	if len(r.nodes) == 1 {
		return append(owners, r.nodes[0])
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	taken := make(map[int]bool, r.replicas)
	for i := 0; len(owners) < r.replicas && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.node] {
			continue
		}
		taken[p.node] = true
		owners = append(owners, r.nodes[p.node])
	}
	return owners
}

// Owns reports whether node is in the replica set of key.
func (r *Ring) Owns(node, key string) bool {
	for _, o := range r.Owners(key) {
		if o == node {
			return true
		}
	}
	return false
}
