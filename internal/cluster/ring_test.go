package cluster

import (
	"fmt"
	"testing"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 1); err == nil {
		t.Fatal("empty node set accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 1); err == nil {
		t.Fatal("empty node name accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 1); err == nil {
		t.Fatal("duplicate node accepted")
	}
	r, err := NewRing([]string{"a", "b"}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if r.Replicas() != 2 {
		t.Fatalf("replicas not clamped to node count: %d", r.Replicas())
	}
	r, err = NewRing([]string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Replicas() != 1 {
		t.Fatalf("replicas not clamped up to 1: %d", r.Replicas())
	}
}

func TestOwnersDistinctAndStable(t *testing.T) {
	nodes := []string{"http://n0", "http://n1", "http://n2", "http://n3", "http://n4"}
	r, err := NewRing(nodes, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key)
		if len(owners) != 3 {
			t.Fatalf("key %q: %d owners, want 3", key, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner %q", key, o)
			}
			seen[o] = true
		}
		// Deterministic: same ring, same key, same replica set.
		again := r.Owners(key)
		for j := range owners {
			if owners[j] != again[j] {
				t.Fatalf("key %q: owners not stable: %v vs %v", key, owners, again)
			}
		}
		if !r.Owns(owners[0], key) || r.Owns("http://nx", key) {
			t.Fatalf("key %q: Owns disagrees with Owners", key)
		}
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"http://n0", "http://n1", "http://n2", "http://n3"}
	r, err := NewRing(nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("cell-%d", i))[0]]++
	}
	want := keys / len(nodes)
	for _, n := range nodes {
		got := counts[n]
		// VirtualNodes=64 keeps primaries within a loose 2x band; the
		// bound is generous so the test pins balance, not the hash.
		if got < want/2 || got > want*2 {
			t.Fatalf("node %s owns %d of %d keys (want near %d): %v", n, got, keys, want, counts)
		}
	}
}

func TestReshardMovesMinority(t *testing.T) {
	nodes := []string{"http://n0", "http://n1", "http://n2", "http://n3"}
	before, err := NewRing(nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(append(nodes, "http://n4"), 1)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 4000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("cell-%d", i)
		if before.Owners(key)[0] != after.Owners(key)[0] {
			moved++
		}
	}
	// Consistent hashing: adding 1 of 5 nodes should move ~1/5 of the
	// keys, not ~4/5 as naive modulo sharding would.
	if moved > keys/2 {
		t.Fatalf("reshard moved %d of %d keys — not consistent hashing", moved, keys)
	}
	if moved == 0 {
		t.Fatal("reshard moved no keys — new node owns nothing")
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"http://solo"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		owners := r.Owners(key)
		if len(owners) != 1 || owners[0] != "http://solo" {
			t.Fatalf("key %q: owners %v", key, owners)
		}
	}
}
