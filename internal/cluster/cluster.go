package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gskew/internal/api"
	"gskew/internal/client"
	"gskew/internal/obs"
	"gskew/internal/store"
	"gskew/internal/trace"
)

// Cluster telemetry, registered in the default obs registry. The
// cluster-smoke CI tier asserts peer-fill movement through these.
var (
	mFillHits    = obs.NewCounter("cluster.peer_fill_hits")   // cells served by their owner
	mFillMisses  = obs.NewCounter("cluster.peer_fill_misses") // owner asked, had nothing usable
	mFillErrors  = obs.NewCounter("cluster.peer_fill_errors") // owner unreachable / wrong_owner
	mOffers      = obs.NewCounter("cluster.cell_offers")      // cells replicated to owners
	mOfferErrors = obs.NewCounter("cluster.cell_offer_errors")
	mTraceFills  = obs.NewCounter("cluster.trace_fills") // segments fetched from their owner
	mReshards    = obs.NewCounter("cluster.reshards")    // topology changes applied
	mWrongOwner  = obs.NewCounter("cluster.wrong_owner") // stale-topology requests received
)

// DefaultPeerTimeout bounds each peer round trip. Peer fill is an
// optimisation: it must fail fast into local simulation, never stall
// a request for the full simulation timeout.
const DefaultPeerTimeout = 5 * time.Second

// Config adjusts a Cluster.
type Config struct {
	// Self is this node's base URL as it appears in the topology.
	Self string
	// Nodes is the initial member set (must contain Self). Empty
	// selects the single-member topology {Self}.
	Nodes []string
	// Replicas is the replication factor R (clamped to [1, len(Nodes)];
	// 0 selects 1).
	Replicas int
	// PeerTimeout bounds each peer round trip (default
	// DefaultPeerTimeout).
	PeerTimeout time.Duration
	// NewPeer builds the client for a peer base URL. Nil selects
	// client.New with two attempts (peer fill prefers failing into
	// local simulation over long retry loops).
	NewPeer func(base string) *client.Client
}

// Cluster is one node's view of the sharded service: the current ring
// plus clients to every peer. It is safe for concurrent use. All
// methods degrade gracefully — a peer failure is a routing miss, not
// an error the request path has to surface.
type Cluster struct {
	self    string
	timeout time.Duration
	newPeer func(base string) *client.Client

	mu    sync.RWMutex
	ring  *Ring
	gen   uint64
	peers map[string]*client.Client
}

// New builds a node's cluster view. The initial topology is generation
// 1; every SetTopology bumps it.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: no self node")
	}
	nodes := cfg.Nodes
	if len(nodes) == 0 {
		nodes = []string{cfg.Self}
	}
	found := false
	for _, n := range nodes {
		if n == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q not in node set %v", cfg.Self, nodes)
	}
	ring, err := NewRing(nodes, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		self:    cfg.Self,
		timeout: cfg.PeerTimeout,
		newPeer: cfg.NewPeer,
		ring:    ring,
		gen:     1,
		peers:   make(map[string]*client.Client),
	}
	if c.timeout <= 0 {
		c.timeout = DefaultPeerTimeout
	}
	if c.newPeer == nil {
		c.newPeer = func(base string) *client.Client {
			return client.New(base, client.WithRetries(2))
		}
	}
	return c, nil
}

// Self returns this node's identity.
func (c *Cluster) Self() string { return c.self }

// Info returns the current membership view for health and ring
// endpoints.
func (c *Cluster) Info() api.RingInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return api.RingInfo{
		Self:     c.self,
		Gen:      c.gen,
		Replicas: c.ring.Replicas(),
		Nodes:    append([]string(nil), c.ring.Nodes()...),
	}
}

// SetTopology replaces the member set and replication factor — a
// resharding event. The new ring takes effect atomically for all
// subsequent ownership decisions; in-flight requests finish under the
// ring they started with (stale routing is caught by the receiving
// node's wrong_owner guard and degrades to local work). Self must
// remain a member.
func (c *Cluster) SetTopology(upd api.TopologyUpdate) (api.RingInfo, error) {
	found := false
	for _, n := range upd.Nodes {
		if n == c.self {
			found = true
			break
		}
	}
	if !found {
		return api.RingInfo{}, fmt.Errorf("cluster: topology update drops self %q (nodes %v)", c.self, upd.Nodes)
	}
	ring, err := NewRing(upd.Nodes, upd.Replicas)
	if err != nil {
		return api.RingInfo{}, err
	}
	c.mu.Lock()
	c.ring = ring
	c.gen++
	c.mu.Unlock()
	mReshards.Inc()
	return c.Info(), nil
}

// currentRing snapshots the ring pointer.
func (c *Cluster) currentRing() *Ring {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring
}

// Owners returns the replica set of a key under the current ring.
func (c *Cluster) Owners(key string) []string { return c.currentRing().Owners(key) }

// OwnsSelf reports whether this node is in the replica set of key.
func (c *Cluster) OwnsSelf(key string) bool { return c.currentRing().Owns(c.self, key) }

// peer returns (building if needed) the client for a node.
func (c *Cluster) peer(node string) *client.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.peers[node]
	if !ok {
		p = c.newPeer(node)
		c.peers[node] = p
	}
	return p
}

// peerCtx bounds a peer round trip.
func (c *Cluster) peerCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, c.timeout)
}

// FillCell implements the peer-fill read: a store miss on a key this
// node does not own asks the key's replica set — owner first — for the
// stored cell before simulating locally. The returned entry has been
// validated against the key (store.Entry.Key re-derivation), so a
// confused or stale owner can at worst cause a miss. ok is false when
// no owner has the cell (the caller simulates locally).
func (c *Cluster) FillCell(ctx context.Context, key store.Key) (store.Entry, bool) {
	ks := key.String()
	for _, owner := range c.Owners(ks) {
		if owner == c.self {
			continue
		}
		pctx, cancel := c.peerCtx(ctx)
		cell, err := c.peer(owner).CellGet(pctx, ks)
		cancel()
		switch {
		case err == nil:
			if cell.Key() != key {
				// An owner returning a cell that does not re-derive the
				// asked key is a protocol violation; treat as a miss.
				mFillErrors.Inc()
				continue
			}
			mFillHits.Inc()
			return *cell, true
		case api.IsCode(err, api.CodeNoSuchCell):
			mFillMisses.Inc()
		default:
			mFillErrors.Inc()
		}
	}
	return store.Entry{}, false
}

// OfferCell replicates a freshly simulated cell to every replica-set
// member except this node — the write half of the peer-fill protocol,
// and what gives hot cells R live copies. Best-effort: a failed offer
// costs the cluster a future recomputation, nothing else.
func (c *Cluster) OfferCell(ctx context.Context, key store.Key, e store.Entry) {
	ks := key.String()
	for _, owner := range c.Owners(ks) {
		if owner == c.self {
			continue
		}
		pctx, cancel := c.peerCtx(ctx)
		_, err := c.peer(owner).CellPut(pctx, ks, &e)
		cancel()
		if err != nil {
			mOfferErrors.Inc()
			continue
		}
		mOffers.Inc()
	}
}

// FetchTrace implements the owner-forwarded trace-pool lookup: a pool
// miss on a hash this node does not own asks the hash's replica set
// for the segment. The decoded branches are re-validated against the
// hash before use. ok is false when no owner has it.
func (c *Cluster) FetchTrace(ctx context.Context, hash string) ([]trace.Branch, bool) {
	for _, owner := range c.Owners(hash) {
		if owner == c.self {
			continue
		}
		pctx, cancel := c.peerCtx(ctx)
		raw, err := c.peer(owner).InternalTraceGet(pctx, hash)
		cancel()
		if err != nil {
			continue
		}
		branches, err := trace.DecodeBytes(raw)
		if err != nil || trace.HashBranches(branches) != hash {
			mFillErrors.Inc()
			continue
		}
		mTraceFills.Inc()
		return branches, true
	}
	return nil, false
}

// OfferTrace replicates an ingested segment to the hash's replica set
// (owner-forwarded ingest), so later owner-forwarded lookups from any
// node succeed. Best-effort; ingest deduplicates, so repeats are free.
func (c *Cluster) OfferTrace(ctx context.Context, hash string, raw []byte) {
	for _, owner := range c.Owners(hash) {
		if owner == c.self {
			continue
		}
		pctx, cancel := c.peerCtx(ctx)
		_, err := c.peer(owner).IngestTrace(pctx, raw)
		cancel()
		if err != nil {
			mOfferErrors.Inc()
		}
	}
}

// MarkWrongOwner counts a stale-topology request received by this
// node (the server's wrong_owner guard).
func (c *Cluster) MarkWrongOwner() { mWrongOwner.Inc() }
