package workload

// Calibration regression tests: the workload generator was tuned so
// that the suite's key statistics land in the paper's reported bands
// (see DESIGN.md §5 and EXPERIMENTS.md). These tests pin that
// calibration so innocent-looking generator changes cannot silently
// destroy the reproduction. They run at a reduced scale, with bands
// widened accordingly.

import (
	"testing"

	"gskew/internal/predictor"
	"gskew/internal/sim"
)

// calibrationBand holds the acceptable range for one benchmark metric
// at scale 0.05.
type calibrationBand struct{ lo, hi float64 }

func TestCalibrationUnaliasedMisprediction(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	// Paper Table 2, 2-bit counters: h4 in 3.72-7.24 %, h12 in
	// 2.20-4.52 %. Our measured-at-0.05-scale bands, with margin.
	bands := map[uint]calibrationBand{
		4:  {2.5, 12.5},
		12: {1.8, 8.5},
	}
	for _, name := range []string{"verilog", "nroff", "real_gcc"} {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		branches, err := Materialize(spec, Config{Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		for k, band := range bands {
			u := predictor.NewUnaliased(k, 2)
			res, err := sim.RunBranches(branches, u, sim.Options{SkipFirstUse: true})
			if err != nil {
				t.Fatal(err)
			}
			if pct := res.MissPercent(); pct < band.lo || pct > band.hi {
				t.Errorf("%s h=%d: unaliased misprediction %.2f%% outside calibration band [%.1f, %.1f]",
					name, k, pct, band.lo, band.hi)
			}
			// Substream ratio bands (paper: 1.79-2.36 at h4,
			// 5.71-12.90 at h12; ours run slightly high at h4).
			ratio := u.SubstreamRatio()
			switch k {
			case 4:
				if ratio < 1.5 || ratio > 4.0 {
					t.Errorf("%s h=4: substream ratio %.2f outside [1.5, 4.0]", name, ratio)
				}
			case 12:
				if ratio < 5.0 || ratio > 16.0 {
					t.Errorf("%s h=12: substream ratio %.2f outside [5.0, 16.0]", name, ratio)
				}
			}
		}
	}
}

func TestCalibrationOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	// Cross-benchmark orderings the paper reports and EXPERIMENTS.md
	// leans on: nroff is the most predictable benchmark, real_gcc and
	// mpeg_play the least.
	rates := make(map[string]float64)
	for _, name := range Names() {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		branches, err := Materialize(spec, Config{Scale: 0.03})
		if err != nil {
			t.Fatal(err)
		}
		u := predictor.NewUnaliased(12, 2)
		res, err := sim.RunBranches(branches, u, sim.Options{SkipFirstUse: true})
		if err != nil {
			t.Fatal(err)
		}
		rates[name] = res.MissPercent()
	}
	if rates["nroff"] >= rates["real_gcc"] {
		t.Errorf("nroff (%.2f%%) should be more predictable than real_gcc (%.2f%%)",
			rates["nroff"], rates["real_gcc"])
	}
	if rates["nroff"] >= rates["mpeg_play"] {
		t.Errorf("nroff (%.2f%%) should be more predictable than mpeg_play (%.2f%%)",
			rates["nroff"], rates["mpeg_play"])
	}
}

func TestCalibrationHistoryPayoff(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	// Longer histories must keep paying off for the ideal predictor
	// (the workload carries genuine correlation): h12 beats h4 beats
	// h0 on every benchmark.
	for _, name := range []string{"verilog", "groff"} {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		branches, err := Materialize(spec, Config{Scale: 0.03})
		if err != nil {
			t.Fatal(err)
		}
		prev := 1e9
		for _, k := range []uint{0, 4, 12} {
			u := predictor.NewUnaliased(k, 2)
			res, err := sim.RunBranches(branches, u, sim.Options{SkipFirstUse: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.MissPercent() >= prev {
				t.Errorf("%s: h=%d unaliased %.2f%% not below shorter history's %.2f%%",
					name, k, res.MissPercent(), prev)
			}
			prev = res.MissPercent()
		}
	}
}
