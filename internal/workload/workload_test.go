package workload

import (
	"io"
	"testing"

	"gskew/internal/trace"
)

func TestBenchmarksMatchTable1Statics(t *testing.T) {
	// The suite must carry the paper's Table 1 numbers verbatim.
	want := map[string][2]int{ // name -> {static, dynamic}
		"groff":     {5634, 11568181},
		"gs":        {10935, 14288742},
		"mpeg_play": {4752, 8109029},
		"nroff":     {4480, 21368201},
		"real_gcc":  {16716, 13940672},
		"verilog":   {3918, 5692823},
	}
	specs := Benchmarks()
	if len(specs) != len(want) {
		t.Fatalf("suite has %d benchmarks, want %d", len(specs), len(want))
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected benchmark %q", s.Name)
			continue
		}
		if s.StaticBranches != w[0] || s.DynamicBranches != w[1] {
			t.Errorf("%s: static/dynamic = %d/%d, want %d/%d",
				s.Name, s.StaticBranches, s.DynamicBranches, w[0], w[1])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("nroff")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "nroff" {
		t.Errorf("ByName returned %q", s.Name)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
}

func TestNamesStable(t *testing.T) {
	n := Names()
	if len(n) != 6 || n[0] != "groff" || n[5] != "verilog" {
		t.Errorf("Names() = %v", n)
	}
	sn := SortedNames()
	for i := 1; i < len(sn); i++ {
		if sn[i-1] >= sn[i] {
			t.Errorf("SortedNames not sorted: %v", sn)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	spec, _ := ByName("verilog")
	c := Config{Scale: 0.002}
	a, err := Materialize(spec, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Materialize(spec, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at event %d", i)
		}
	}
}

func TestSeedOffsetChangesTrace(t *testing.T) {
	spec, _ := ByName("verilog")
	a, err := Materialize(spec, Config{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Materialize(spec, Config{Scale: 0.002, SeedOffset: 1})
	if err != nil {
		t.Fatal(err)
	}
	limit := len(a)
	if len(b) < limit {
		limit = len(b)
	}
	same := 0
	for i := 0; i < limit; i++ {
		if a[i] == b[i] {
			same++
		}
	}
	if same == limit {
		t.Error("SeedOffset had no effect")
	}
}

func TestTakeBoundsConditionals(t *testing.T) {
	spec, _ := ByName("groff")
	g, err := New(spec, Config{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	tk := NewTake(g, n)
	cond := 0
	for {
		b, err := tk.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Kind == trace.Conditional {
			cond++
		}
	}
	if cond != n {
		t.Fatalf("Take yielded %d conditionals, want %d", cond, n)
	}
}

func TestWorkloadStatistics(t *testing.T) {
	// The realised traces must resemble the paper's populations:
	//  - static count close to the Table 1 target (most sites execute),
	//  - taken ratio in a plausible 50-75% band,
	//  - a visible unconditional-branch population,
	//  - kernel activity present (PCs above kernelBase).
	for _, name := range []string{"verilog", "mpeg_play"} {
		spec, _ := ByName(name)
		branches, err := Materialize(spec, Config{Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		st, err := trace.Measure(trace.NewSliceSource(branches))
		if err != nil {
			t.Fatal(err)
		}
		if st.Dynamic < spec.DynamicBranches/100 {
			t.Errorf("%s: dynamic count %d too small", name, st.Dynamic)
		}
		if lo, hi := spec.StaticBranches*5/10, spec.StaticBranches+1; st.Static < lo || st.Static > hi {
			t.Errorf("%s: static count %d outside [%d,%d]", name, st.Static, lo, hi)
		}
		if r := st.TakenRatio(); r < 0.45 || r > 0.85 {
			t.Errorf("%s: taken ratio %.3f implausible", name, r)
		}
		if st.DynamicUncond == 0 {
			t.Errorf("%s: no unconditional branches", name)
		}
		kernel := 0
		for _, b := range branches {
			if b.PC >= kernelBase {
				kernel++
			}
		}
		if frac := float64(kernel) / float64(len(branches)); frac < 0.02 || frac > 0.5 {
			t.Errorf("%s: kernel activity fraction %.3f outside [0.02,0.5]", name, frac)
		}
	}
}

func TestProcessAddressSpacesDisjoint(t *testing.T) {
	spec, _ := ByName("gs") // 3 processes
	branches, err := Materialize(spec, Config{Scale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	spaces := make(map[uint64]bool)
	for _, b := range branches {
		if b.PC < kernelBase {
			spaces[b.PC/processStride] = true
		}
	}
	if len(spaces) < 2 {
		t.Errorf("expected >=2 user address spaces, saw %d", len(spaces))
	}
}

func TestLengthScaling(t *testing.T) {
	spec, _ := ByName("nroff")
	g1, err := New(spec, Config{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(spec, Config{Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Length() != 2*g1.Length() {
		t.Errorf("Length: %d vs %d, want 2x", g1.Length(), g2.Length())
	}
	if g1.Length() != int(float64(spec.DynamicBranches)*0.01) {
		t.Errorf("Length = %d", g1.Length())
	}
	if g1.Spec().Name != "nroff" {
		t.Errorf("Spec() = %q", g1.Spec().Name)
	}
}

func TestDefaultScaleApplied(t *testing.T) {
	spec, _ := ByName("verilog")
	g, err := New(spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Length() != int(float64(spec.DynamicBranches)*DefaultScale) {
		t.Errorf("default Length = %d", g.Length())
	}
}

func TestAllBenchmarksGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("suite sweep is slow")
	}
	for _, spec := range Benchmarks() {
		g, err := New(spec, Config{Scale: 0.001})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		tk := NewTake(g, 10000)
		for {
			if _, err := tk.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	spec, _ := ByName("groff")
	g, err := New(spec, Config{Scale: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
