// Package workload assembles synthetic multi-process workloads that
// stand in for the IBS-Ultrix benchmark traces used in the paper.
//
// A workload is a set of user processes (each an independent cfg
// program in its own address range) plus a shared kernel program,
// interleaved by a quantum-based scheduler with occasional kernel
// entries (syscalls, interrupts). This reproduces the property that
// makes IBS interesting for aliasing studies: a large combined working
// set of branch substreams from multiple address spaces plus OS code,
// far bigger than any single user program's.
//
// Six named benchmarks mirror the paper's Table 1 suite — groff, gs,
// mpeg_play, nroff, real_gcc and verilog — with static conditional
// branch counts matching the paper exactly and per-benchmark behaviour
// mixes chosen so the unaliased misprediction rates land in the
// paper's reported ranges (Table 2). Dynamic lengths are scaled down
// by default for runtime; use Config.Scale to restore full length.
package workload

import (
	"fmt"
	"io"
	"sort"

	"gskew/internal/cfg"
	"gskew/internal/rng"
	"gskew/internal/trace"
)

// Spec describes one named benchmark workload.
type Spec struct {
	// Name is the benchmark identifier (e.g. "groff").
	Name string
	// StaticBranches is the target static conditional site count,
	// matching the paper's Table 1.
	StaticBranches int
	// DynamicBranches is the paper's full dynamic conditional count.
	DynamicBranches int
	// Processes is the number of user processes.
	Processes int
	// KernelFraction is the share of dynamic activity in kernel code.
	KernelFraction float64
	// Quantum is the mean number of branches between context switches.
	Quantum int
	// Mix weights branch behaviours in user code.
	Mix cfg.BehaviorMix
	// MeanTrips is the mean loop trip count.
	MeanTrips float64
	// Seed makes the benchmark reproducible.
	Seed uint64
}

// Benchmarks returns the six-benchmark suite in the paper's order.
// Static branch counts match Table 1. Behaviour mixes are tuned per
// benchmark: nroff/groff (text formatters) are loopy and predictable,
// real_gcc has a huge static population with more irregular branches,
// mpeg_play is compute-heavy with hard data-dependent branches,
// verilog and gs sit in between.
func Benchmarks() []Spec {
	return []Spec{
		{
			Name: "groff", StaticBranches: 5634, DynamicBranches: 11568181,
			Processes: 2, KernelFraction: 0.12, Quantum: 1600,
			Mix:       cfg.BehaviorMix{StronglyBiased: 0.630, WeaklyBiased: 0.08, Correlated: 0.270, Random: 0.01, Alternating: 0.01},
			MeanTrips: 45, Seed: 0x67726f66, // "grof"
		},
		{
			Name: "gs", StaticBranches: 10935, DynamicBranches: 14288742,
			Processes: 3, KernelFraction: 0.15, Quantum: 1200,
			Mix:       cfg.BehaviorMix{StronglyBiased: 0.565, WeaklyBiased: 0.11, Correlated: 0.290, Random: 0.02, Alternating: 0.015},
			MeanTrips: 36, Seed: 0x6773,
		},
		{
			Name: "mpeg_play", StaticBranches: 4752, DynamicBranches: 8109029,
			Processes: 2, KernelFraction: 0.18, Quantum: 1000,
			Mix:       cfg.BehaviorMix{StronglyBiased: 0.495, WeaklyBiased: 0.15, Correlated: 0.290, Random: 0.04, Alternating: 0.025},
			MeanTrips: 26, Seed: 0x6d706567,
		},
		{
			Name: "nroff", StaticBranches: 4480, DynamicBranches: 21368201,
			Processes: 2, KernelFraction: 0.10, Quantum: 2000,
			Mix:       cfg.BehaviorMix{StronglyBiased: 0.655, WeaklyBiased: 0.07, Correlated: 0.260, Random: 0.005, Alternating: 0.01},
			MeanTrips: 65, Seed: 0x6e726f66,
		},
		{
			Name: "real_gcc", StaticBranches: 16716, DynamicBranches: 13940672,
			Processes: 3, KernelFraction: 0.14, Quantum: 900,
			Mix:       cfg.BehaviorMix{StronglyBiased: 0.475, WeaklyBiased: 0.18, Correlated: 0.280, Random: 0.04, Alternating: 0.025},
			MeanTrips: 20, Seed: 0x676363,
		},
		{
			Name: "verilog", StaticBranches: 3918, DynamicBranches: 5692823,
			Processes: 2, KernelFraction: 0.13, Quantum: 1200,
			Mix:       cfg.BehaviorMix{StronglyBiased: 0.580, WeaklyBiased: 0.11, Correlated: 0.280, Random: 0.015, Alternating: 0.015},
			MeanTrips: 36, Seed: 0x766c6f67,
		},
	}
}

// ByName returns the Spec for a benchmark name.
func ByName(name string) (Spec, error) {
	for _, s := range Benchmarks() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
}

// Names lists the benchmark names in suite order.
func Names() []string {
	specs := Benchmarks()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Config adjusts workload realisation.
type Config struct {
	// Scale multiplies the dynamic length: 1.0 reproduces the paper's
	// dynamic conditional counts; the default 0 means DefaultScale.
	Scale float64
	// SeedOffset perturbs the benchmark seed (for variance studies).
	SeedOffset uint64
}

// DefaultScale keeps default runs fast (~2M conditionals for the
// largest benchmark) while remaining far larger than every predictor
// working set under study.
const DefaultScale = 0.1

// kernelSpace is the address-space stride separating processes, and
// the base of kernel text (mirroring a high-half kernel).
const (
	processStride = 1 << 24 // 16M words per process image
	kernelBase    = 1 << 31
)

// Generator realises a workload as a branch-event stream. It
// implements trace.Source and never returns io.EOF on its own; use
// Length to know the intended dynamic conditional count, or wrap with
// Take.
type Generator struct {
	spec      Spec
	processes []*cfg.Walker
	kernel    *cfg.Walker
	sched     *rng.Xoshiro256

	current   int // index into processes, or -1 for kernel
	remaining int // branches left in the current quantum
	inKernel  bool
	length    int // intended dynamic conditional count
}

// New builds the generator for spec with config c.
func New(spec Spec, c Config) (*Generator, error) {
	scale := c.Scale
	if scale <= 0 {
		scale = DefaultScale
	}
	procs := spec.Processes
	if procs < 1 {
		procs = 1
	}

	g := &Generator{
		spec:   spec,
		sched:  rng.NewXoshiro256(rng.Mix64(spec.Seed + c.SeedOffset + 0xABCD)),
		length: int(float64(spec.DynamicBranches) * scale),
	}

	// User processes split the static budget: the first process gets
	// the lion's share (the benchmark program itself); the rest model
	// daemons/shells with small footprints, matching how IBS traces
	// contain one dominant application.
	mainShare := spec.StaticBranches * 7 / 10
	rest := spec.StaticBranches - mainShare
	perOther := 0
	if procs > 1 {
		perOther = rest * 7 / 10 / (procs - 1)
	}
	kernelSites := rest - perOther*(procs-1)
	if kernelSites < 64 {
		kernelSites = 64
	}

	for i := 0; i < procs; i++ {
		sites := mainShare
		if i > 0 {
			sites = perOther
			if sites < 16 {
				sites = 16
			}
		}
		prog, err := cfg.Generate(cfg.GenConfig{
			Procs:          4 + sites/64,
			StaticBranches: sites,
			Mix:            spec.Mix,
			MeanTrips:      spec.MeanTrips,
			Base:           uint64(1+i) * processStride,
		}, rng.Mix64(spec.Seed+c.SeedOffset+uint64(i)))
		if err != nil {
			return nil, fmt.Errorf("workload %s: process %d: %w", spec.Name, i, err)
		}
		g.processes = append(g.processes, cfg.NewWalker(prog, rng.Mix64(spec.Seed^uint64(i)+c.SeedOffset)))
	}

	// Kernel program: biased toward error-check-style branches (mostly
	// strongly biased) but with a large loop population (buffer scans).
	kprog, err := cfg.Generate(cfg.GenConfig{
		Procs:          4 + kernelSites/64,
		StaticBranches: kernelSites,
		Mix: cfg.BehaviorMix{
			StronglyBiased: 0.62, WeaklyBiased: 0.13,
			Correlated: 0.15, Random: 0.06, Alternating: 0.04,
		},
		MeanTrips: spec.MeanTrips,
		Base:      kernelBase,
	}, rng.Mix64(spec.Seed+c.SeedOffset+0x99))
	if err != nil {
		return nil, fmt.Errorf("workload %s: kernel: %w", spec.Name, err)
	}
	g.kernel = cfg.NewWalker(kprog, rng.Mix64(spec.Seed+c.SeedOffset+0x9999))

	g.scheduleNext()
	return g, nil
}

// Length returns the intended dynamic conditional branch count.
func (g *Generator) Length() int { return g.length }

// Spec returns the workload specification.
func (g *Generator) Spec() Spec { return g.spec }

// kernelBurstRatio is how much shorter a kernel burst (syscall or
// interrupt service) is than a user quantum.
const kernelBurstRatio = 4

func (g *Generator) scheduleNext() {
	// Kernel bursts are kernelBurstRatio times shorter than user
	// quanta, so to make the kernel's *dynamic share* equal
	// KernelFraction the per-schedule entry probability must be
	// derated: p = r*f / ((r-1)*f + 1).
	f := g.spec.KernelFraction
	p := kernelBurstRatio * f / ((kernelBurstRatio-1)*f + 1)
	if g.sched.Bool(p) {
		g.inKernel = true
		g.remaining = 1 + g.sched.Geometric(1.0/float64(g.spec.Quantum/kernelBurstRatio+1))
		return
	}
	g.inKernel = false
	g.current = g.sched.Intn(len(g.processes))
	g.remaining = 1 + g.sched.Geometric(1.0/float64(g.spec.Quantum+1))
}

// Next implements trace.Source.
func (g *Generator) Next() (trace.Branch, error) {
	if g.remaining <= 0 {
		g.scheduleNext()
	}
	g.remaining--
	if g.inKernel {
		return g.kernel.Next()
	}
	return g.processes[g.current].Next()
}

// NextBatch implements trace.BatchSource. The generator is endless,
// so every call fills dst completely; the quantum scheduler fires at
// exactly the same event positions as the per-event path.
func (g *Generator) NextBatch(dst []trace.Branch) (int, error) {
	for i := range dst {
		if g.remaining <= 0 {
			g.scheduleNext()
		}
		g.remaining--
		var err error
		if g.inKernel {
			dst[i], err = g.kernel.Next()
		} else {
			dst[i], err = g.processes[g.current].Next()
		}
		if err != nil {
			return i, err
		}
	}
	return len(dst), nil
}

// Take bounds a source to n conditional branches (events of other
// kinds pass through uncounted). After the bound it returns io.EOF.
type Take struct {
	src       trace.Source
	remaining int
}

// NewTake wraps src, stopping after n conditional branches.
func NewTake(src trace.Source, n int) *Take { return &Take{src: src, remaining: n} }

// Next implements trace.Source.
func (t *Take) Next() (trace.Branch, error) {
	if t.remaining <= 0 {
		return trace.Branch{}, io.EOF
	}
	b, err := t.src.Next()
	if err != nil {
		return b, err
	}
	if b.Kind == trace.Conditional {
		t.remaining--
	}
	return b, nil
}

// NextBatch implements trace.BatchSource. It requests at most
// `remaining` records per call, which makes the batched stream
// identical to the per-event one: with a window w <= remaining, the
// window can only contain remaining conditionals if ALL w records are
// conditional (w <= remaining forces c == w), in which case the final
// record delivered is exactly the last conditional — the same stop
// point Next enforces. No record beyond the bound is ever pulled from
// the source.
func (t *Take) NextBatch(dst []trace.Branch) (int, error) {
	if t.remaining <= 0 {
		return 0, io.EOF
	}
	w := len(dst)
	if w > t.remaining {
		w = t.remaining
	}
	n, err := trace.ReadBatch(t.src, dst[:w])
	for _, b := range dst[:n] {
		if b.Kind == trace.Conditional {
			t.remaining--
		}
	}
	return n, err
}

// Materialize generates the full bounded trace for spec into memory.
func Materialize(spec Spec, c Config) ([]trace.Branch, error) {
	g, err := New(spec, c)
	if err != nil {
		return nil, err
	}
	t := NewTake(g, g.Length())
	branches := make([]trace.Branch, 0, g.Length()*5/4)
	for {
		b, err := t.Next()
		if err != nil {
			return branches, nil
		}
		branches = append(branches, b)
	}
}

// SortedNames returns benchmark names sorted alphabetically; used by
// CLIs for stable flag documentation.
func SortedNames() []string {
	n := Names()
	sort.Strings(n)
	return n
}
