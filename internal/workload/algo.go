package workload

import (
	"fmt"

	"gskew/internal/algotrace"
	"gskew/internal/trace"
)

// This file bridges the recorded-algorithm workloads
// (internal/algotrace) into the entry points the synthetic benchmarks
// already use, so every consumer — tracegen, predsim, the experiments
// scheduler, the trace pool, the server — accepts a workload *name*
// that is either a Table-1 benchmark ("groff") or an algo spec
// ("algo:kmp,n=300000,...") without caring which.

// IsAlgo reports whether name selects a recorded-algorithm workload.
func IsAlgo(name string) bool { return algotrace.IsSpec(name) }

// MaterializeAny materializes the full bounded trace for a workload
// name of either kind. For algo specs Config.Scale does not apply
// (the spec's own n/q/runs parameters set the dynamic length) and
// Config.SeedOffset is added to the spec's seed, mirroring its role
// for the synthetic benchmarks.
func MaterializeAny(name string, c Config) ([]trace.Branch, error) {
	if algotrace.IsSpec(name) {
		spec, err := algotrace.ParseSpec(name)
		if err != nil {
			return nil, err
		}
		spec.Seed += c.SeedOffset
		return algotrace.Record(spec)
	}
	spec, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return Materialize(spec, c)
}

// OpenAny returns a bounded trace.Source for a workload name of
// either kind. Synthetic benchmarks stream lazily; algo workloads are
// recorded up front (running the real algorithm is the generator) and
// served from memory.
func OpenAny(name string, c Config) (trace.Source, error) {
	if algotrace.IsSpec(name) {
		branches, err := MaterializeAny(name, c)
		if err != nil {
			return nil, err
		}
		return trace.NewSliceSource(branches), nil
	}
	spec, err := ByName(name)
	if err != nil {
		return nil, err
	}
	g, err := New(spec, c)
	if err != nil {
		return nil, err
	}
	return NewTake(g, g.Length()), nil
}

// ValidateName checks that name resolves to a workload of either
// kind, without materializing anything.
func ValidateName(name string) error {
	if algotrace.IsSpec(name) {
		_, err := algotrace.ParseSpec(name)
		return err
	}
	_, err := ByName(name)
	return err
}

// Family is one row of the workload-family listing exposed by
// `tracegen -list`.
type Family struct {
	// Name is the workload name or spec-grammar prefix to pass as
	// -bench.
	Name string
	// Keys documents the accepted parameters.
	Keys string
	// Doc is a one-line description.
	Doc string
}

// AllFamilies lists every registered workload family: the six
// synthetic Table-1 benchmarks, then the recorded-algorithm families.
func AllFamilies() []Family {
	var out []Family
	for _, s := range Benchmarks() {
		out = append(out, Family{
			Name: s.Name,
			Keys: "scale,seed",
			Doc: fmt.Sprintf("synthetic IBS-style workload, %d static / %d dynamic conditionals at scale 1",
				s.StaticBranches, s.DynamicBranches),
		})
	}
	for _, f := range algotrace.Families() {
		out = append(out, Family{Name: f.Name, Keys: f.Keys, Doc: "recorded real algorithm: " + f.Doc})
	}
	return out
}
