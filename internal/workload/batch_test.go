package workload

import (
	"errors"
	"io"
	"testing"

	"gskew/internal/trace"
)

// TestGeneratorNextBatchMatchesNext: batched generation must produce
// the identical event stream — same walker advances, same scheduler
// decisions — as per-event generation.
func TestGeneratorNextBatchMatchesNext(t *testing.T) {
	spec, err := ByName("verilog")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scale: 0.002}
	one, err := New(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := New(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const total = 50000
	want := make([]trace.Branch, total)
	for i := range want {
		if want[i], err = one.Next(); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]trace.Branch, 0, total)
	buf := make([]trace.Branch, 777) // deliberately not a divisor of total
	for len(got) < total {
		w := buf
		if rem := total - len(got); rem < len(w) {
			w = w[:rem]
		}
		n, err := bat.NextBatch(w)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, w[:n]...)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: batched %+v, per-event %+v", i, got[i], want[i])
		}
	}
}

// TestTakeNextBatchMatchesNext: the bounded batched stream must equal
// the bounded per-event stream record for record, including the stop
// point after the n-th conditional.
func TestTakeNextBatchMatchesNext(t *testing.T) {
	spec, err := ByName("groff")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scale: 0.002}
	const bound = 20000
	mk := func() *Take {
		g, err := New(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return NewTake(g, bound)
	}

	var want []trace.Branch
	one := mk()
	for {
		b, err := one.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, b)
	}

	for _, window := range []int{1, 97, 4096} {
		bat := mk()
		var got []trace.Branch
		buf := make([]trace.Branch, window)
		for {
			n, err := bat.NextBatch(buf)
			got = append(got, buf[:n]...)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("window %d: %d records batched, %d per-event", window, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("window %d: record %d: batched %+v, per-event %+v", window, i, got[i], want[i])
			}
		}
		conds := 0
		for _, b := range got {
			if b.Kind == trace.Conditional {
				conds++
			}
		}
		if conds != bound {
			t.Fatalf("window %d: %d conditionals delivered, want %d", window, conds, bound)
		}
		if got[len(got)-1].Kind != trace.Conditional {
			t.Errorf("window %d: stream does not end on the bounding conditional", window)
		}
	}
}
