package refmodel_test

// Unit-level agreement between the executable specification and the
// optimized implementation, component by component. The end-to-end
// differential check over full traces lives in refmodel/diff; these
// tests localise a disagreement to the exact function that diverged.

import (
	"testing"

	"gskew/internal/counter"
	"gskew/internal/history"
	"gskew/internal/indexfn"
	"gskew/internal/predictor"
	"gskew/internal/refmodel"
	"gskew/internal/rng"
	"gskew/internal/skewfn"
)

// TestSpecCounterMatchesImpl: the spec automaton and counter.Counter
// agree state-for-state on random outcome sequences at every width.
func TestSpecCounterMatchesImpl(t *testing.T) {
	r := rng.NewXoshiro256(10)
	for bits := uint(1); bits <= 8; bits++ {
		spec := refmodel.NewSpecCounter(bits)
		impl := counter.WeaklyTaken(bits)
		for i := 0; i < 4096; i++ {
			if spec.Predict() != impl.Predict() {
				t.Fatalf("bits=%d step %d: spec predicts %v (state %d), impl %v (state %d)",
					bits, i, spec.Predict(), spec.State, impl.Predict(), impl.Value())
			}
			if spec.State != int(impl.Value()) {
				t.Fatalf("bits=%d step %d: spec state %d, impl state %d",
					bits, i, spec.State, impl.Value())
			}
			taken := r.Uint64()&3 != 0 // biased, to exercise saturation
			spec = spec.Update(taken)
			impl = impl.Update(taken)
		}
	}
}

// TestSpecIndexMatchesImpl: bimodal/gshare/gselect spec index
// functions equal the optimized indexfn implementations across the
// (n, k) grid, including k < n, k == n and the k > n folding regime.
func TestSpecIndexMatchesImpl(t *testing.T) {
	r := rng.NewXoshiro256(11)
	for _, nk := range [][2]uint{{4, 0}, {8, 3}, {8, 8}, {10, 6}, {6, 14}, {12, 12}, {12, 20}, {16, 30}} {
		n, k := nk[0], nk[1]
		gshare := indexfn.NewGShare(n, k)
		gselect := indexfn.NewGSelect(n, k)
		bimodal := indexfn.NewBimodal(n)
		for i := 0; i < 5000; i++ {
			addr, hist := r.Uint64(), r.Uint64()
			if got, want := refmodel.GShareIndex(addr, hist, n, k), gshare.Index(addr, hist); got != want {
				t.Fatalf("gshare n=%d k=%d addr=%#x hist=%#x: spec %#x impl %#x", n, k, addr, hist, got, want)
			}
			if got, want := refmodel.GSelectIndex(addr, hist, n, k), gselect.Index(addr, hist); got != want {
				t.Fatalf("gselect n=%d k=%d addr=%#x hist=%#x: spec %#x impl %#x", n, k, addr, hist, got, want)
			}
			if got, want := refmodel.BimodalIndex(addr, n), bimodal.Index(addr, hist); got != want {
				t.Fatalf("bimodal n=%d addr=%#x: spec %#x impl %#x", n, addr, got, want)
			}
		}
	}
}

// TestSpecSkewMatchesImpl: H, Hinv and the three bank functions agree
// with the optimized skewfn implementation at every supported width.
func TestSpecSkewMatchesImpl(t *testing.T) {
	r := rng.NewXoshiro256(12)
	for n := uint(skewfn.MinBits); n <= skewfn.MaxBits; n++ {
		s := skewfn.New(n)
		for i := 0; i < 2000; i++ {
			y := r.Uint64()
			if got, want := refmodel.H(y, n), s.H(y); got != want {
				t.Fatalf("H n=%d y=%#x: spec %#x impl %#x", n, y, got, want)
			}
			if got, want := refmodel.Hinv(y, n), s.Hinv(y); got != want {
				t.Fatalf("Hinv n=%d y=%#x: spec %#x impl %#x", n, y, got, want)
			}
			v := r.Uint64()
			if got, want := refmodel.F0(v, n), s.F0(v); got != want {
				t.Fatalf("F0 n=%d v=%#x: spec %#x impl %#x", n, v, got, want)
			}
			if got, want := refmodel.F1(v, n), s.F1(v); got != want {
				t.Fatalf("F1 n=%d v=%#x: spec %#x impl %#x", n, v, got, want)
			}
			if got, want := refmodel.F2(v, n), s.F2(v); got != want {
				t.Fatalf("F2 n=%d v=%#x: spec %#x impl %#x", n, v, got, want)
			}
			// The shared-subexpression Indices fast path must match too.
			var idx [3]uint64
			s.Indices(idx[:], v)
			if idx[0] != refmodel.F0(v, n) || idx[1] != refmodel.F1(v, n) || idx[2] != refmodel.F2(v, n) {
				t.Fatalf("Indices n=%d v=%#x: impl %v, spec [%#x %#x %#x]",
					n, v, idx, refmodel.F0(v, n), refmodel.F1(v, n), refmodel.F2(v, n))
			}
		}
	}
}

// TestSpecHistoryMatchesImpl: the outcome-list history equals the
// shift-register implementation over random outcome streams.
func TestSpecHistoryMatchesImpl(t *testing.T) {
	r := rng.NewXoshiro256(13)
	for _, k := range []uint{0, 1, 4, 12, 30, 63} {
		spec := refmodel.NewSpecHistory(k)
		impl := history.NewGlobal(k)
		for i := 0; i < 500; i++ {
			if spec.Value() != impl.Bits() {
				t.Fatalf("k=%d step %d: spec %#x impl %#x", k, i, spec.Value(), impl.Bits())
			}
			taken := r.Uint64()&1 == 0
			spec.Shift(taken)
			impl.Shift(taken)
		}
	}
}

// randomRefs yields a stream of (addr, hist, taken) triples with a
// small, colliding address population, so table-sharing behaviour is
// exercised quickly.
func randomRefs(seed uint64, n int, f func(addr, hist uint64, taken bool)) {
	r := rng.NewXoshiro256(seed)
	hist := refmodel.NewSpecHistory(20)
	for i := 0; i < n; i++ {
		addr := r.Uint64() & 0x3FF
		taken := r.Uint64()&3 != 0
		f(addr, hist.Value(), taken)
		hist.Shift(taken)
	}
}

// TestSpecSingleMatchesImpl: full predictor agreement for the
// single-table organisations on random reference streams, checking
// both the Predict/Update pair and the fused Step path.
func TestSpecSingleMatchesImpl(t *testing.T) {
	cases := []struct {
		kind    string
		n, k, c uint
		impl    func() predictor.Predictor
	}{
		{"bimodal", 6, 0, 2, func() predictor.Predictor { return predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 6, Ctr: 2}) }},
		{"gshare", 8, 6, 2, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 8, Hist: 6, Ctr: 2})
		}},
		{"gshare", 6, 12, 1, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 6, Hist: 12, Ctr: 1})
		}},
		{"gselect", 8, 4, 2, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gselect", N: 8, Hist: 4, Ctr: 2})
		}},
		{"gselect", 6, 10, 2, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gselect", N: 6, Hist: 10, Ctr: 2})
		}},
	}
	for _, tc := range cases {
		for _, useStep := range []bool{false, true} {
			spec := refmodel.NewSpecSingle(tc.kind, tc.n, tc.k, tc.c)
			impl := tc.impl()
			step := 0
			randomRefs(100+uint64(tc.n)*7+uint64(tc.k), 20000, func(addr, hist uint64, taken bool) {
				specPred := spec.Predict(addr, hist)
				var implPred bool
				if useStep {
					implPred = impl.(predictor.Stepper).Step(addr, hist, taken)
				} else {
					implPred = impl.Predict(addr, hist)
					impl.Update(addr, hist, taken)
				}
				if specPred != implPred {
					t.Fatalf("%s(n=%d,k=%d,step=%v) diverged at ref %d: spec %v impl %v",
						tc.kind, tc.n, tc.k, useStep, step, specPred, implPred)
				}
				spec.Update(addr, hist, taken)
				step++
			})
		}
	}
}

// TestSpecGSkewedMatchesImpl: full predictor agreement for the skewed
// family across {plain, enhanced} x {partial, total} x counter widths.
func TestSpecGSkewedMatchesImpl(t *testing.T) {
	for _, enhanced := range []bool{false, true} {
		for _, partial := range []bool{true, false} {
			for _, ctr := range []uint{1, 2} {
				for _, useStep := range []bool{false, true} {
					pol := predictor.TotalUpdate
					if partial {
						pol = predictor.PartialUpdate
					}
					impl := predictor.MustGSkewed(predictor.Config{
						Banks: 3, BankBits: 7, HistoryBits: 9,
						CounterBits: ctr, Policy: pol, Enhanced: enhanced,
					})
					spec := refmodel.NewSpecGSkewed(7, 9, ctr, partial, enhanced)
					step := 0
					randomRefs(200+uint64(ctr), 20000, func(addr, hist uint64, taken bool) {
						specPred := spec.Predict(addr, hist)
						var implPred bool
						if useStep {
							implPred = impl.Step(addr, hist, taken)
						} else {
							implPred = impl.Predict(addr, hist)
							impl.Update(addr, hist, taken)
						}
						if specPred != implPred {
							t.Fatalf("gskewed(enh=%v,partial=%v,ctr=%d,step=%v) diverged at ref %d: spec %v impl %v",
								enhanced, partial, ctr, useStep, step, specPred, implPred)
						}
						spec.Update(addr, hist, taken)
						step++
					})
				}
			}
		}
	}
}
