package diff

import (
	"io"
	"testing"
)

// TestVerifyCodecs runs the codec arm over a small cell subset: every
// decode path must reproduce the generated trace and its simulation
// result exactly.
func TestVerifyCodecs(t *testing.T) {
	cells := []Cell{
		{Family: "bimodal", N: 8, Ctr: 2},
		{Family: "gshare", N: 8, Hist: 6, Ctr: 2},
		{Family: "gskewed", N: 6, Hist: 6, Ctr: 2, Partial: true},
	}
	records, err := VerifyCodecs(cells, 8000, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Three decode paths per cell; the IBS-like generator can overshoot
	// the requested conditional count, so lower-bound only.
	if records < 3*len(cells)*8000 {
		t.Fatalf("codec arm checked %d records, want at least %d", records, 3*len(cells)*8000)
	}
}

// TestCodecSelfTest: the planted bitpack-width fault must be caught on
// every generator mode (the three seeds cover all TraceFor modes).
func TestCodecSelfTest(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		if err := CodecSelfTest(8000, seed, io.Discard); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
