// Package diff is the differential verification runner: it drives the
// optimized predictors of internal/predictor and the executable paper
// specification of internal/refmodel step-by-step over the same branch
// trace and hunts for any observable divergence.
//
// The unit of work is a Cell — one (predictor family, update policy,
// configuration) point. For each cell the runner checks every
// implementation path the simulator uses (the Predict/Update pair, the
// fused Stepper, and the compiled kernel of internal/kernel), over
// randomized traces drawn from three generators (the IBS-like workload
// suite, a raw cfg program walk, and a uniform-random adversarial
// stream). On divergence it ddmin-shrinks the trace to a minimal
// counterexample and reports the replayable seed and configuration.
package diff

import (
	"fmt"
	"io"

	"gskew/internal/cfg"
	"gskew/internal/history"
	"gskew/internal/kernel"
	"gskew/internal/predictor"
	"gskew/internal/refmodel"
	"gskew/internal/rng"
	"gskew/internal/trace"
	"gskew/internal/workload"
)

// Path identifies which of the simulator's implementation paths a
// check drives against the specification.
type Path int

const (
	// PathPair is the generic two-call path: Predict then Update.
	PathPair Path = iota
	// PathStep is the fused Stepper fast path.
	PathStep
	// PathKernel is the compiled kernel of internal/kernel.
	PathKernel
	// PathSegmented is the segment-parallel whole-trace runner of
	// internal/sim (an aggregate check: total counts plus final state).
	PathSegmented
	// PathBatch64 is the 64-lane bitsliced group kernel, checked with
	// 8 independent lanes per step (2-bit cells only).
	PathBatch64
)

// Paths lists every implementation path, in check order.
func Paths() []Path {
	return []Path{PathPair, PathStep, PathKernel, PathSegmented, PathBatch64}
}

// String names the path the way counterexample headers spell it.
func (p Path) String() string {
	switch p {
	case PathPair:
		return "predict/update"
	case PathStep:
		return "step"
	case PathKernel:
		return "kernel"
	case PathSegmented:
		return "segmented"
	case PathBatch64:
		return "bitsliced"
	default:
		return fmt.Sprintf("path(%d)", int(p))
	}
}

// Cell identifies one configuration point of the sweep.
type Cell struct {
	// Family is "bimodal", "gshare", "gselect", "gskewed", "egskew",
	// "tage" or "perceptron".
	Family string
	// N is the index width: 2^N entries (per bank/table/component for
	// the multi-table families).
	N uint
	// Hist is the global-history length.
	Hist uint
	// Ctr is the counter width in bits (the signed weight width for
	// perceptron cells).
	Ctr uint
	// Partial selects the partial update policy (skewed family only).
	Partial bool
	// Tables is the tagged-component count (tage) or weight-table
	// count (perceptron).
	Tables int
	// Tag is the tage partial-tag width.
	Tag uint
}

// cellTageKMin is the shortest tagged history length every tage cell
// uses — the predictor.Spec default, repeated here so Cell stays a
// small coordinate.
const cellTageKMin = 4

// String names the cell unambiguously, e.g. "gskewed/n8/h10/c2/partial".
func (c Cell) String() string {
	s := fmt.Sprintf("%s/n%d/h%d/c%d", c.Family, c.N, c.Hist, c.Ctr)
	switch c.Family {
	case "gskewed", "egskew":
		if c.Partial {
			s += "/partial"
		} else {
			s += "/total"
		}
	case "tage":
		s += fmt.Sprintf("/t%d/tag%d", c.Tables, c.Tag)
	case "perceptron":
		s += fmt.Sprintf("/t%d", c.Tables)
	}
	return s
}

// Spec builds the cell's executable specification.
func (c Cell) Spec() (refmodel.Spec, error) {
	switch c.Family {
	case "bimodal", "gshare", "gselect":
		return refmodel.NewSpecSingle(c.Family, c.N, c.Hist, c.Ctr), nil
	case "gskewed":
		return refmodel.NewSpecGSkewed(c.N, c.Hist, c.Ctr, c.Partial, false), nil
	case "egskew":
		return refmodel.NewSpecGSkewed(c.N, c.Hist, c.Ctr, c.Partial, true), nil
	case "tage":
		return refmodel.NewSpecTAGE(c.N, c.Hist, cellTageKMin, uint(c.Tables), c.Tag, c.Ctr), nil
	case "perceptron":
		// The cell leaves theta at the family default; the refmodel
		// constructor takes it explicitly (a config value, not shared
		// behavior), so read it off the normalized spec.
		theta := predictor.Spec{Family: "perceptron", Hist: c.Hist}.Normalize().Theta
		return refmodel.NewSpecPerceptron(c.N, c.Hist, uint(c.Tables), c.Ctr, theta), nil
	default:
		return nil, fmt.Errorf("diff: unknown family %q", c.Family)
	}
}

// Impl builds the cell's optimized implementation through the unified
// predictor.Spec surface, so the sweep exercises the same construction
// path every tool and experiment uses.
func (c Cell) Impl() (predictor.Predictor, error) {
	switch c.Family {
	case "bimodal", "gshare", "gselect", "gskewed", "egskew", "tage", "perceptron":
	default:
		return nil, fmt.Errorf("diff: unknown family %q", c.Family)
	}
	s := predictor.Spec{Family: c.Family, N: c.N, Hist: c.Hist, Ctr: c.Ctr}
	switch c.Family {
	case "gskewed", "egskew":
		s.Policy = predictor.TotalUpdate
		if c.Partial {
			s.Policy = predictor.PartialUpdate
		}
	case "tage":
		s.Tables = c.Tables
		s.Tag = c.Tag
		s.HistMin = cellTageKMin
	case "perceptron":
		s.Tables = c.Tables
	}
	return s.New()
}

// DefaultSweep returns the standard verification matrix: every
// predictor family, each update policy where the family has one, and
// at least three configurations per (family, policy) pair spanning
// history lengths (shorter, equal and longer than the index), bank
// widths and both counter widths.
func DefaultSweep() []Cell {
	var cells []Cell
	// Single-table baselines: 3 configs each. gshare configs cover the
	// footnote-1 short-history alignment (k < n), k == n, and the
	// folding regime (k > n); gselect covers k < n and the degenerate
	// k >= n regime.
	for _, c := range []Cell{
		{Family: "bimodal", N: 8, Ctr: 2},
		{Family: "bimodal", N: 10, Ctr: 1},
		{Family: "bimodal", N: 12, Ctr: 2},
		{Family: "gshare", N: 10, Hist: 6, Ctr: 2},
		{Family: "gshare", N: 10, Hist: 10, Ctr: 2},
		{Family: "gshare", N: 8, Hist: 14, Ctr: 1},
		{Family: "gselect", N: 10, Hist: 4, Ctr: 2},
		{Family: "gselect", N: 10, Hist: 10, Ctr: 2},
		{Family: "gselect", N: 8, Hist: 12, Ctr: 1},
	} {
		cells = append(cells, c)
	}
	// Skewed family: both policies x 3 configs, plain and enhanced.
	for _, fam := range []string{"gskewed", "egskew"} {
		for _, partial := range []bool{true, false} {
			for _, cfg := range []struct{ n, h, ctr uint }{
				{6, 6, 2},
				{8, 10, 2},
				{10, 14, 1},
			} {
				cells = append(cells, Cell{
					Family: fam, N: cfg.n, Hist: cfg.h, Ctr: cfg.ctr, Partial: partial,
				})
			}
		}
	}
	// Modern rivals: 3 configs each, spanning short chains where every
	// component length fits the index, the folding regime (lengths well
	// past index and tag widths) and both counter/weight widths.
	for _, c := range []Cell{
		{Family: "tage", N: 6, Hist: 12, Ctr: 2, Tables: 3, Tag: 5},
		{Family: "tage", N: 7, Hist: 20, Ctr: 3, Tables: 4, Tag: 7},
		{Family: "tage", N: 8, Hist: 28, Ctr: 3, Tables: 5, Tag: 9},
		{Family: "perceptron", N: 6, Hist: 10, Ctr: 6, Tables: 3},
		{Family: "perceptron", N: 7, Hist: 16, Ctr: 8, Tables: 4},
		{Family: "perceptron", N: 8, Hist: 24, Ctr: 8, Tables: 6},
	} {
		cells = append(cells, c)
	}
	return cells
}

// CellByName finds a cell in the default sweep by its String name.
func CellByName(name string) (Cell, error) {
	for _, c := range DefaultSweep() {
		if c.String() == name {
			return c, nil
		}
	}
	return Cell{}, fmt.Errorf("diff: unknown cell %q (see -list)", name)
}

// PathApplies reports whether the cell's family has an implementation
// on the path. The tagged/neural families (tage, perceptron) are not
// linear counter automata over hashed indices, so they have no
// compiled kernel and no bitsliced group form; the bitsliced automaton
// additionally exists only at 2-bit counter width. (The segmented path
// applies everywhere: sim.RunSegmented degrades to the exact serial
// runner for families without a state kernel, and the aggregate check
// still pins that path against the spec.)
func (c Cell) PathApplies(p Path) bool {
	tagged := c.Family == "tage" || c.Family == "perceptron"
	switch p {
	case PathKernel:
		return !tagged
	case PathBatch64:
		return !tagged && c.Ctr == 2
	}
	return true
}

// Divergence describes the first observable disagreement between the
// specification and the implementation on a trace.
type Divergence struct {
	// Step is the 0-based index of the diverging record in the trace
	// (counting all records, not just conditionals).
	Step int
	// Record is the trace record at the divergence.
	Record trace.Branch
	// Hist is the history register value at the divergence.
	Hist uint64
	// SpecPred and ImplPred are the two predictions.
	SpecPred, ImplPred bool
	// HistMismatch is set when the naive and optimized history
	// registers disagreed (a runner-level bug rather than a predictor
	// one); the predictions then refer to each side's own history.
	HistMismatch bool
	// Aggregate marks a whole-trace divergence (the segmented arm):
	// either the total mispredict counts disagreed (SpecCount vs
	// ImplCount) or — when the counts match — a final-state probe at
	// (Record.PC, Hist) predicted differently. Step is the last record
	// index, so shrinking never truncates an aggregate witness.
	Aggregate bool
	// SpecCount and ImplCount are the whole-trace mispredict totals of
	// an aggregate check.
	SpecCount, ImplCount int
}

func (d *Divergence) String() string {
	if d.HistMismatch {
		return fmt.Sprintf("step %d pc=%#x: history registers diverged", d.Step, d.Record.PC)
	}
	if d.Aggregate {
		if d.SpecCount != d.ImplCount {
			return fmt.Sprintf("aggregate over %d records: spec counted %d mispredicts, impl %d",
				d.Step+1, d.SpecCount, d.ImplCount)
		}
		return fmt.Sprintf("final state at pc=%#x hist=%#x: spec predicts %v, impl predicts %v",
			d.Record.PC, d.Hist, d.SpecPred, d.ImplPred)
	}
	return fmt.Sprintf("step %d pc=%#x hist=%#x taken=%v: spec predicts %v, impl predicts %v",
		d.Step, d.Record.PC, d.Hist, d.Record.Taken, d.SpecPred, d.ImplPred)
}

// ImplBuilder constructs a fresh implementation for a cell. The
// default is Cell.Impl; the self-test harness substitutes builders
// with deliberately injected faults.
type ImplBuilder func(c Cell) (predictor.Predictor, error)

// KernelFault locates one split-LUT entry of a compiled skewed kernel
// to XOR a delta into, for fault-injection self-tests (see
// kernel.TamperLUT).
type KernelFault struct {
	Bank, Half int
	Entry      uint64
	Delta      uint32
}

// Check replays tr through a fresh spec and a fresh impl of the cell,
// comparing the prediction of every conditional branch on the selected
// implementation path. It returns the first divergence, or nil if the
// models agree on the whole trace.
func Check(tr []trace.Branch, c Cell, path Path) (*Divergence, error) {
	return CheckBuilt(tr, c, Cell.Impl, path)
}

// CheckBuilt is Check with the implementation supplied by build.
func CheckBuilt(tr []trace.Branch, c Cell, build ImplBuilder, path Path) (*Divergence, error) {
	return check(tr, c, build, path, nil)
}

// CheckKernelTampered compiles the cell's kernel, plants the fault,
// and replays tr against the specification. It exists for the
// fault-injection self-test of the kernel arm.
func CheckKernelTampered(tr []trace.Branch, c Cell, fault KernelFault) (*Divergence, error) {
	return check(tr, c, Cell.Impl, PathKernel, &fault)
}

func check(tr []trace.Branch, c Cell, build ImplBuilder, path Path, fault *KernelFault) (*Divergence, error) {
	switch path {
	case PathSegmented:
		return checkSegmented(tr, c, build, segArmSegments, segArmWarm, true)
	case PathBatch64:
		return checkBatch64(tr, c, build)
	}
	spec, err := c.Spec()
	if err != nil {
		return nil, err
	}
	impl, err := build(c)
	if err != nil {
		return nil, err
	}
	k := c.Hist
	if c.Family == "bimodal" {
		k = 0
	}
	specGHR := refmodel.NewSpecHistory(k)
	implGHR := history.NewGlobal(k)
	stepper, _ := impl.(predictor.Stepper)
	if path == PathStep && stepper == nil {
		return nil, fmt.Errorf("diff: %s implementation has no Stepper", c)
	}
	var kern kernel.Kernel
	if path == PathKernel {
		var ok bool
		kern, ok = kernel.Compile(impl, k)
		if !ok {
			return nil, fmt.Errorf("diff: %s implementation does not compile to a kernel", c)
		}
		if fault != nil {
			if err := kernel.TamperLUT(kern, fault.Bank, fault.Half, fault.Entry, fault.Delta); err != nil {
				return nil, fmt.Errorf("diff: planting kernel fault in %s: %w", c, err)
			}
		}
	}

	for i, b := range tr {
		switch b.Kind {
		case trace.Conditional:
			sh, ih := specGHR.Value(), implGHR.Bits()
			if sh != ih {
				return &Divergence{Step: i, Record: b, HistMismatch: true}, nil
			}
			specPred := spec.Predict(b.PC, sh)
			var implPred bool
			switch path {
			case PathKernel:
				implPred = kern.Step(b.PC, ih, b.Taken)
			case PathStep:
				implPred = stepper.Step(b.PC, ih, b.Taken)
			default:
				implPred = impl.Predict(b.PC, ih)
				impl.Update(b.PC, ih, b.Taken)
			}
			if specPred != implPred {
				return &Divergence{
					Step: i, Record: b, Hist: sh,
					SpecPred: specPred, ImplPred: implPred,
				}, nil
			}
			spec.Update(b.PC, sh, b.Taken)
			specGHR.Shift(b.Taken)
			implGHR.Shift(b.Taken)
		case trace.Unconditional:
			specGHR.Shift(true)
			implGHR.Shift(true)
		default:
			return nil, fmt.Errorf("diff: unknown branch kind %d at record %d", b.Kind, i)
		}
	}
	return nil, nil
}

// TraceFor materialises a randomized trace of about n conditional
// branches for the given seed. Three generator modes rotate with the
// seed so the sweep exercises structurally different streams:
//
//	seed %% 3 == 0: an IBS-like multi-process workload benchmark,
//	seed %% 3 == 1: a raw cfg program walk (single address space),
//	seed %% 3 == 2: uniform-random addresses and outcomes over a
//	                small PC set — maximal aliasing pressure.
func TraceFor(seed uint64, n int) ([]trace.Branch, error) {
	switch seed % 3 {
	case 0:
		specs := workload.Benchmarks()
		spec := specs[int(seed/3)%len(specs)]
		g, err := workload.New(spec, workload.Config{Scale: 1, SeedOffset: seed})
		if err != nil {
			return nil, err
		}
		return trace.Collect(workload.NewTake(g, n))
	case 1:
		r := rng.NewXoshiro256(rng.Mix64(seed))
		prog, err := cfg.Generate(cfg.GenConfig{
			Procs:          4 + r.Intn(8),
			StaticBranches: 200 + r.Intn(2000),
			MeanTrips:      4 + float64(r.Intn(40)),
		}, rng.Mix64(seed+1))
		if err != nil {
			return nil, err
		}
		w := cfg.NewWalker(prog, rng.Mix64(seed+2))
		return trace.Collect(workload.NewTake(w, n))
	default:
		r := rng.NewXoshiro256(rng.Mix64(seed))
		pcBits := uint(6 + r.Intn(8))
		out := make([]trace.Branch, 0, n)
		for len(out) < n {
			b := trace.Branch{
				PC:    r.Uint64() & (uint64(1)<<pcBits - 1),
				Taken: r.Uint64()&1 == 0,
			}
			if r.Uint64()&7 == 0 {
				b.Kind = trace.Unconditional
				b.Taken = true
			}
			out = append(out, b)
		}
		return out, nil
	}
}

// CellResult is the outcome of verifying one cell.
type CellResult struct {
	Cell Cell
	// Seed is the trace seed the cell ran (and diverged, if it did) on.
	Seed uint64
	// Branches is the requested trace length, needed to replay Seed.
	Branches int
	// Steps is the total number of trace records checked, summed over
	// every implementation path.
	Steps int
	// Path records which implementation path diverged.
	Path Path
	// Div is the first divergence, nil when the cell verified clean.
	Div *Divergence
	// Shrunk is the minimal counterexample trace (only on divergence).
	Shrunk []trace.Branch
}

// Options configures a sweep.
type Options struct {
	// Branches is the trace length per cell (conditionals; default 60000).
	Branches int
	// Seed is the base trace seed; cell i runs on Seed+i.
	Seed uint64
	// Log, when non-nil, receives one progress line per cell.
	Log io.Writer
}

func (o *Options) branches() int {
	if o.Branches <= 0 {
		return 60000
	}
	return o.Branches
}

// VerifyCell checks one cell over its trace on every implementation
// path, shrinking the trace on divergence.
func VerifyCell(c Cell, seed uint64, branches int) (CellResult, error) {
	res := CellResult{Cell: c, Seed: seed, Branches: branches}
	tr, err := TraceFor(seed, branches)
	if err != nil {
		return res, fmt.Errorf("diff: generating trace for %s (seed %d): %w", c, seed, err)
	}
	for _, path := range Paths() {
		if !c.PathApplies(path) {
			continue
		}
		div, err := Check(tr, c, path)
		if err != nil {
			return res, err
		}
		res.Steps += len(tr)
		if div != nil {
			res.Div = div
			res.Path = path
			res.Shrunk = Shrink(tr, c, path)
			return res, nil
		}
	}
	return res, nil
}

// Sweep verifies every cell, returning per-cell results. It does not
// stop at the first divergence: a full sweep report is more useful
// when a change breaks several families at once.
func Sweep(cells []Cell, opts Options) ([]CellResult, error) {
	results := make([]CellResult, 0, len(cells))
	for i, c := range cells {
		res, err := VerifyCell(c, opts.Seed+uint64(i), opts.branches())
		if err != nil {
			return results, err
		}
		if opts.Log != nil {
			status := "ok"
			if res.Div != nil {
				status = fmt.Sprintf("DIVERGED (%v; shrunk to %d records)", res.Div, len(res.Shrunk))
			}
			fmt.Fprintf(opts.Log, "%-28s seed=%-6d steps=%-8d %s\n", c, res.Seed, res.Steps, status)
		}
		results = append(results, res)
	}
	return results, nil
}
