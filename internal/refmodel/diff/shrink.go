package diff

import "gskew/internal/trace"

// Shrink reduces a diverging trace to a small counterexample for the
// given cell and implementation path. The procedure is the standard
// delta-debugging loop:
//
//  1. truncate the trace just past its first divergence (nothing after
//     the first disagreement can be needed to reproduce it), then
//  2. repeatedly try deleting chunks, halving the chunk size from half
//     the trace down to single records, keeping any deletion that
//     still diverges, until a pass at granularity 1 removes nothing.
//
// The result is 1-minimal: deleting any single remaining record makes
// the divergence disappear. Shrink returns nil if tr does not actually
// diverge (or the cell is unbuildable), so callers can treat a non-nil
// result as a verified counterexample.
func Shrink(tr []trace.Branch, c Cell, path Path) []trace.Branch {
	return ShrinkBuilt(tr, c, Cell.Impl, path)
}

// ShrinkBuilt is Shrink with the implementation supplied by build
// (each candidate replay constructs a fresh instance).
func ShrinkBuilt(tr []trace.Branch, c Cell, build ImplBuilder, path Path) []trace.Branch {
	return shrinkWith(tr, func(cand []trace.Branch) (*Divergence, error) {
		return CheckBuilt(cand, c, build, path)
	})
}

// ShrinkKernelTampered is Shrink for a kernel with a planted LUT
// fault: each candidate replay compiles a fresh kernel and re-plants
// the fault before checking.
func ShrinkKernelTampered(tr []trace.Branch, c Cell, fault KernelFault) []trace.Branch {
	return shrinkWith(tr, func(cand []trace.Branch) (*Divergence, error) {
		return CheckKernelTampered(cand, c, fault)
	})
}

// shrinkWith is the delta-debugging core, parameterised over the
// divergence check a candidate trace must still fail.
func shrinkWith(tr []trace.Branch, check func([]trace.Branch) (*Divergence, error)) []trace.Branch {
	reproduces := func(cand []trace.Branch) bool {
		div, err := check(cand)
		return err == nil && div != nil
	}
	div, err := check(tr)
	if err != nil || div == nil {
		return nil
	}
	cur := append([]trace.Branch(nil), tr[:div.Step+1]...)

	for chunk := len(cur) / 2; chunk >= 1; {
		removedAny := false
		for start := 0; start < len(cur); {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]trace.Branch, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) > 0 && reproduces(cand) {
				cur = cand
				removedAny = true
				// Do not advance: the next chunk now starts at the
				// same offset.
			} else {
				start = end
			}
		}
		if chunk > 1 {
			chunk /= 2
		} else if !removedAny {
			break
		}
	}
	return cur
}
