package diff

import (
	"fmt"
	"io"

	"gskew/internal/algotrace"
	"gskew/internal/trace"
)

// The recorder arm of the fault-injection selftest. The algotrace
// recorder assigns every instrumented branch site a stable synthetic
// PC; if two sites ever collapse onto one PC, their substreams merge
// and every per-site predictor result quietly changes while the stream
// itself stays perfectly well-formed — it decodes, simulates and
// summarises plausibly. That is exactly the fault class content
// addressing exists for, so the selftest plants it
// (algotrace.TamperRecorderSiteCollision drops the low PC bit, merging
// adjacent site pairs) and requires the canonical content hash to
// diverge from the clean recording.

// RecorderSelfTest records one MP matching workload twice — once
// clean, once with the planted site-ID collision — and requires the
// tampered stream to (a) stay silent (same event count, identical
// taken/kind sequence, clean codec round trip) and (b) be caught by
// content-hash divergence, corroborated by the static-site count
// collapsing. An error means the fault escaped — recorded real-program
// traces could alias sites without the pipeline noticing.
func RecorderSelfTest(seed uint64, log io.Writer) error {
	spec, err := algotrace.ParseSpec(fmt.Sprintf("algo:mp,n=20000,m=6,seed=%d", seed+1))
	if err != nil {
		return err
	}
	clean := algotrace.NewRecorder()
	if err := algotrace.RecordInto(spec, clean); err != nil {
		return err
	}
	tampered := algotrace.NewRecorder()
	algotrace.TamperRecorderSiteCollision(tampered)
	if err := algotrace.RecordInto(spec, tampered); err != nil {
		return fmt.Errorf("diff: recorder selftest: tampered recording failed (%w); the planted fault must be silent", err)
	}

	cb, tb := clean.Branches(), tampered.Branches()
	if len(cb) != len(tb) {
		return fmt.Errorf("diff: recorder selftest: tampered run recorded %d events vs %d clean; the fault must only alias PCs", len(tb), len(cb))
	}
	cleanStats, tamperedStats := trace.NewStats(), trace.NewStats()
	for i := range cb {
		if cb[i].Taken != tb[i].Taken || cb[i].Kind != tb[i].Kind {
			return fmt.Errorf("diff: recorder selftest: event %d direction/kind changed under tamper; the fault must only alias PCs", i)
		}
		cleanStats.Observe(cb[i])
		tamperedStats.Observe(tb[i])
	}
	// The tampered stream must survive the codec like any real trace:
	// the fault is upstream of serialisation and must not be caught by
	// accident there.
	enc, err := trace.EncodeColumnar(tb)
	if err != nil {
		return fmt.Errorf("diff: recorder selftest: tampered stream failed to encode (%w); the planted fault must be silent", err)
	}
	dec, err := trace.DecodeBytes(enc)
	if err != nil {
		return fmt.Errorf("diff: recorder selftest: tampered stream failed to decode (%w); the planted fault must be silent", err)
	}
	if trace.HashBranches(dec) != trace.HashBranches(tb) {
		return fmt.Errorf("diff: recorder selftest: tampered stream did not round-trip the codec")
	}

	caught := trace.HashBranches(tb) != trace.HashBranches(cb)
	collapsed := tamperedStats.Static < cleanStats.Static
	if log != nil {
		status := "ESCAPED"
		if caught {
			status = fmt.Sprintf("caught (decode clean, %d records, content hash diverged, static sites %d -> %d)",
				len(tb), cleanStats.Static, tamperedStats.Static)
		}
		fmt.Fprintf(log, "%-28s %-22s %s\n", "recorder/"+spec.Name, "recorder-site-collision", status)
	}
	if !caught {
		return fmt.Errorf("diff: recorder selftest: recorder-site-collision escaped (tampered recording hashed identically to the clean one)")
	}
	if !collapsed {
		return fmt.Errorf("diff: recorder selftest: tamper did not collapse the static site count (%d clean vs %d tampered) — the plant is not merging sites",
			cleanStats.Static, tamperedStats.Static)
	}
	return nil
}
