package diff

import (
	"fmt"
	"io"

	"gskew/internal/predictor"
	"gskew/internal/trace"
)

// This file injects deliberate faults into otherwise-correct
// implementations and checks the differential harness catches and
// shrinks them. It is the harness's own regression test: a verifier
// that cannot find a planted off-by-one cannot be trusted to find a
// real one.

// faultWrap wraps a correct implementation with a fault applied to the
// (addr, hist) pair of one of the two calls. It deliberately does NOT
// implement Stepper: the faults model a divergence between the read
// and write paths, which only exists when the two are separate calls.
type faultWrap struct {
	predictor.Predictor
	kind string
}

// Update applies the fault on the training path.
func (m *faultWrap) Update(addr, hist uint64, taken bool) {
	switch m.kind {
	case "addr-off-by-one":
		// The classic index off-by-one: the trained entry is the
		// neighbour of the predicted one.
		m.Predictor.Update(addr+1, hist, taken)
	case "hist-off-by-one":
		// History register skewed by one outcome on the write path.
		m.Predictor.Update(addr, hist>>1, taken)
	default:
		m.Predictor.Update(addr, hist, taken)
	}
}

// Mutant names a fault that can be injected into a cell's
// implementation.
type Mutant struct {
	// Name identifies the fault, e.g. "addr-off-by-one".
	Name string
	// Build constructs the faulty implementation for a cell.
	Build ImplBuilder
}

// Mutants returns the standard injected-fault set. A Build returns
// errMutantInapplicable for cells whose index function is insensitive
// to the perturbed input (e.g. the address for a gselect table fully
// indexed by history), where the fault would be unobservable by
// construction.
func Mutants() []Mutant {
	wrap := func(kind string) ImplBuilder {
		return func(c Cell) (predictor.Predictor, error) {
			switch kind {
			case "addr-off-by-one":
				if c.Family == "gselect" && c.Hist >= c.N {
					return nil, errMutantInapplicable
				}
			case "hist-off-by-one":
				if c.Family == "bimodal" || c.Hist == 0 {
					return nil, errMutantInapplicable
				}
			}
			p, err := c.Impl()
			if err != nil {
				return nil, err
			}
			return &faultWrap{Predictor: p, kind: kind}, nil
		}
	}
	tamper := func(name string, family string, plant func(predictor.Predictor) bool) Mutant {
		// Faults planted inside a real implementation (as opposed to
		// wrapped around it): the predictor's own tamper hook flips one
		// internal detail, and both its read and write paths see the
		// flip — exactly the shape of an implementation bug, which only
		// the independent specification can expose.
		return Mutant{Name: name, Build: func(c Cell) (predictor.Predictor, error) {
			if c.Family != family {
				return nil, errMutantInapplicable
			}
			p, err := c.Impl()
			if err != nil {
				return nil, err
			}
			if !plant(p) {
				return nil, errMutantInapplicable
			}
			return p, nil
		}}
	}
	return []Mutant{
		{Name: "addr-off-by-one", Build: wrap("addr-off-by-one")},
		{Name: "hist-off-by-one", Build: wrap("hist-off-by-one")},
		tamper("tage-fold-off-by-one", "tage", predictor.TamperTAGEFold),
		tamper("perceptron-theta-sign-flip", "perceptron", predictor.TamperPerceptronTraining),
		{Name: "policy-flip", Build: func(c Cell) (predictor.Predictor, error) {
			// The implementation silently uses the other update policy
			// (or, for single-table cells, one less history bit).
			mutated := c
			switch c.Family {
			case "gskewed", "egskew":
				mutated.Partial = !c.Partial
			default:
				if c.Hist == 0 {
					return nil, errMutantInapplicable
				}
				mutated.Hist = c.Hist - 1
			}
			return mutated.Impl()
		}},
	}
}

// errMutantInapplicable marks a (cell, mutant) pair with no meaningful
// fault to inject (e.g. shortening a zero-bit history).
var errMutantInapplicable = fmt.Errorf("diff: mutant inapplicable to cell")

// SelfTestResult records one (cell, mutant) injection outcome.
type SelfTestResult struct {
	Cell   Cell
	Mutant string
	// Caught reports whether the harness observed a divergence.
	Caught bool
	// ShrunkLen is the length of the minimised counterexample.
	ShrunkLen int
}

// kernelLUTFault is the fault planted into the compiled-kernel path:
// an off-by-one (low-bit flip) in entry 0 of bank 1's V1 half-table.
// Bank 1 is LUT-indexed in every compiled skewed organisation (bank 0
// is address-truncated in the enhanced form), and entry 0 is exercised
// whenever the low index bits of the information vector are zero — a
// state every biased workload reaches.
var kernelLUTFault = KernelFault{Bank: 1, Half: 0, Entry: 0, Delta: 1}

// kernelFaultApplies reports whether the kernel LUT fault can be
// planted into the cell's compiled form (only the skewed families
// carry split LUTs).
func kernelFaultApplies(c Cell) bool {
	return c.Family == "gskewed" || c.Family == "egskew"
}

// segFaultSegments/segFaultWarm shape the skipped-reconcile fault: 4
// segments put boundaries inside the trace's alternating suffix, and
// a tiny warm-up window guarantees a boundary replica cannot see back
// to the saturated prefix.
const (
	segFaultSegments = 4
	segFaultWarm     = 8
)

// segFaultApplies restricts the skipped-reconcile fault to cells
// where SegmentFaultTrace provably defeats speculative warm-up:
// bimodal 2-bit counters, whose single counter per PC carries the
// non-recoverable saturated hysteresis. History-indexed families
// spread the alternating suffix across counters that a short warm-up
// happens to train identically, so the blind acceptance is
// (legitimately) count-preserving there and no divergence exists to
// catch.
func segFaultApplies(c Cell) bool {
	return c.Family == "bimodal" && c.Ctr == 2
}

// SegmentFaultTrace defeats speculative warm-up by construction: a
// long saturating prefix pins the counter at 3, then a strict
// alternation starting not-taken makes the exact counter oscillate
// 3<->2 (mispredicting only the not-taken steps) while a replica
// warmed only inside the alternation oscillates 2<->1 and mispredicts
// every step. No bounded warm-up starting from the weakly-taken reset
// state recovers the saturated hysteresis, so accepting the
// speculative segments without the convergence check must change the
// total count.
func SegmentFaultTrace() []trace.Branch {
	const pc = 5
	out := make([]trace.Branch, 0, 1041)
	for i := 0; i < 640; i++ {
		out = append(out, trace.Branch{PC: pc, Taken: true, Kind: trace.Conditional})
	}
	for i := 0; i < 401; i++ {
		out = append(out, trace.Branch{PC: pc, Taken: i%2 == 1, Kind: trace.Conditional})
	}
	return out
}

// CheckSegmentedSkippedReconcile replays tr with the segmented
// runner's boundary convergence check disabled — the planted fault of
// the segmented arm. A sound harness must report a divergence on
// SegmentFaultTrace for every cell segFaultApplies admits.
func CheckSegmentedSkippedReconcile(tr []trace.Branch, c Cell) (*Divergence, error) {
	return checkSegmented(tr, c, Cell.Impl, segFaultSegments, segFaultWarm, false)
}

// ShrinkSegmentedSkippedReconcile is Shrink for the skipped-reconcile
// fault; each candidate re-runs the no-reconcile engine (segment
// boundaries move as the trace shrinks, so every candidate is a full
// re-check).
func ShrinkSegmentedSkippedReconcile(tr []trace.Branch, c Cell) []trace.Branch {
	return shrinkWith(tr, func(cand []trace.Branch) (*Divergence, error) {
		return CheckSegmentedSkippedReconcile(cand, c)
	})
}

// SelfTest injects every applicable mutant into a representative cell
// subset and verifies the harness both catches the fault and shrinks
// the witness trace to at most maxShrunk records. Interface-level
// mutants (wrapped Update faults) run on the predict/update path;
// skewed cells additionally get a LUT off-by-one planted into their
// compiled kernel, checked on the kernel path. It returns an error
// listing every escape (a mutant the harness failed to catch) or any
// counterexample that failed to shrink below the bound.
func SelfTest(cells []Cell, branches int, seed uint64, maxShrunk int, log io.Writer) ([]SelfTestResult, error) {
	var results []SelfTestResult
	var failures []string
	record := func(c Cell, name string, res SelfTestResult) {
		results = append(results, res)
		switch {
		case !res.Caught:
			failures = append(failures, fmt.Sprintf("%s/%s escaped", c, name))
		case res.ShrunkLen > maxShrunk:
			failures = append(failures, fmt.Sprintf("%s/%s shrunk to %d records (bound %d)",
				c, name, res.ShrunkLen, maxShrunk))
		}
		if log != nil {
			status := "ESCAPED"
			if res.Caught {
				status = fmt.Sprintf("caught, shrunk to %d records", res.ShrunkLen)
			}
			fmt.Fprintf(log, "%-28s %-22s %s\n", c, name, status)
		}
	}
	for i, c := range cells {
		tr, err := TraceFor(seed+uint64(i), branches)
		if err != nil {
			return results, err
		}
		for _, m := range Mutants() {
			if _, err := m.Build(c); err == errMutantInapplicable {
				continue
			}
			div, err := CheckBuilt(tr, c, m.Build, PathPair)
			if err != nil {
				return results, fmt.Errorf("diff: selftest %s/%s: %w", c, m.Name, err)
			}
			res := SelfTestResult{Cell: c, Mutant: m.Name, Caught: div != nil}
			if div != nil {
				res.ShrunkLen = len(ShrinkBuilt(tr, c, m.Build, PathPair))
			}
			record(c, m.Name, res)
		}
		if kernelFaultApplies(c) {
			div, err := CheckKernelTampered(tr, c, kernelLUTFault)
			if err != nil {
				return results, fmt.Errorf("diff: selftest %s/kernel-lut-off-by-one: %w", c, err)
			}
			res := SelfTestResult{Cell: c, Mutant: "kernel-lut-off-by-one", Caught: div != nil}
			if div != nil {
				res.ShrunkLen = len(ShrinkKernelTampered(tr, c, kernelLUTFault))
			}
			record(c, "kernel-lut-off-by-one", res)
		}
		if segFaultApplies(c) {
			// The segmented-arm fault runs on its purpose-built trace,
			// not the random one: the random streams rarely leave
			// non-recoverable state at a segment boundary, which is
			// exactly why the convergence check exists.
			ktr := SegmentFaultTrace()
			div, err := CheckSegmentedSkippedReconcile(ktr, c)
			if err != nil {
				return results, fmt.Errorf("diff: selftest %s/segment-skipped-reconcile: %w", c, err)
			}
			res := SelfTestResult{Cell: c, Mutant: "segment-skipped-reconcile", Caught: div != nil}
			if div != nil {
				res.ShrunkLen = len(ShrinkSegmentedSkippedReconcile(ktr, c))
			}
			record(c, "segment-skipped-reconcile", res)
		}
	}
	if len(failures) > 0 {
		return results, fmt.Errorf("diff: selftest failed: %v", failures)
	}
	return results, nil
}

// WriteCounterexample renders a shrunk counterexample in the text
// trace format, preceded by a replay comment naming the cell, path and
// seed; `verify -cell <name> -seed <seed>` replays the full trace it
// was shrunk from.
func WriteCounterexample(w io.Writer, c Cell, seed uint64, path Path, tr []trace.Branch) error {
	if _, err := fmt.Fprintf(w, "# cell %s path %s seed %d (%d records)\n", c, path, seed, len(tr)); err != nil {
		return err
	}
	return trace.WriteText(w, trace.NewSliceSource(tr))
}
