package diff_test

import (
	"testing"

	"gskew/internal/predictor"
	"gskew/internal/refmodel"
	"gskew/internal/refmodel/diff"
	"gskew/internal/trace"
)

// FuzzTAGEFoldedHistory checks the optimized folded-history hash
// (chunked XOR on machine words) against the refmodel transcription
// (bit-by-bit on bit strings) over arbitrary histories and fold
// shapes. The fold feeds every TAGE index and tag, so this is the
// arithmetic heart of the family.
func FuzzTAGEFoldedHistory(f *testing.F) {
	f.Add(uint64(0), uint(0), uint(1))
	f.Add(uint64(0xDEADBEEF), uint(20), uint(7))
	f.Add(^uint64(0), uint(64), uint(11))
	f.Add(uint64(0x123456789ABCDEF0), uint(63), uint(1))
	f.Fuzz(func(t *testing.T, hist uint64, length, width uint) {
		length %= 65         // [0, 64]
		width = 1 + width%63 // [1, 63]
		got := predictor.FoldHistory(hist, length, width)
		want := refmodel.FoldedHistory(hist, length, width)
		if got != want {
			t.Fatalf("FoldHistory(%#x, %d, %d) = %#x, spec %#x",
				hist, length, width, got, want)
		}
	})
}

// FuzzPerceptronStep replays arbitrary branch streams through the
// optimized hashed perceptron and its refmodel spec over fuzzed
// configurations, on both the Predict/Update and the fused Step
// paths, requiring agreement at every conditional. The trace is the
// fuzz input's bytes, two bits per branch, PCs drawn from a small
// window so weight aliasing is heavy.
func FuzzPerceptronStep(f *testing.F) {
	f.Add([]byte{}, uint(6), uint(10), uint(3), uint(6))
	f.Add([]byte{0xFF, 0x00, 0xAA, 0x55}, uint(4), uint(12), uint(2), uint(8))
	f.Add([]byte{0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC}, uint(7), uint(3), uint(6), uint(1))
	f.Fuzz(func(t *testing.T, data []byte, n, k, tables, wBits uint) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		cell := diff.Cell{
			Family: "perceptron",
			N:      1 + n%8,
			Hist:   k % 20,
			Ctr:    1 + wBits%8,
			Tables: 2 + int(tables%5),
		}
		branches := make([]trace.Branch, 0, 4*len(data))
		for _, b := range data {
			for j := 0; j < 4; j++ {
				bits := b >> (2 * j)
				kind := trace.Conditional
				if bits&2 != 0 && j == 3 {
					kind = trace.Unconditional
				}
				branches = append(branches, trace.Branch{
					PC:    uint64(0x40 + (b>>2)%29),
					Taken: bits&1 != 0,
					Kind:  kind,
				})
			}
		}
		for _, path := range []diff.Path{diff.PathPair, diff.PathStep} {
			div, err := diff.Check(branches, cell, path)
			if err != nil {
				t.Fatal(err)
			}
			if div != nil {
				t.Fatalf("%s diverged on %s: %v", cell, path, div)
			}
		}
	})
}
