package diff

import (
	"bytes"
	"strings"
	"testing"

	"gskew/internal/trace"
)

// TestDefaultSweepShape: the sweep covers every family, both update
// policies for the skewed families, and at least three configurations
// per (family, policy) pair.
func TestDefaultSweepShape(t *testing.T) {
	counts := make(map[string]int)
	for _, c := range DefaultSweep() {
		key := c.Family
		switch c.Family {
		case "gskewed", "egskew":
			key += "/" + map[bool]string{true: "partial", false: "total"}[c.Partial]
		}
		counts[key]++
	}
	for _, key := range []string{
		"bimodal", "gshare", "gselect",
		"gskewed/partial", "gskewed/total", "egskew/partial", "egskew/total",
	} {
		if counts[key] < 3 {
			t.Errorf("sweep has %d cells for %s, want >= 3", counts[key], key)
		}
	}
}

// TestSweepClean: every cell of the default sweep verifies with zero
// divergences on both implementation paths. This is the in-tree
// (shortened) version of `verify -sweep`.
func TestSweepClean(t *testing.T) {
	branches := 4000
	if testing.Short() {
		branches = 800
	}
	var log bytes.Buffer
	results, err := Sweep(DefaultSweep(), Options{Branches: branches, Seed: 1, Log: &log})
	if err != nil {
		t.Fatalf("sweep error: %v\n%s", err, log.String())
	}
	for _, r := range results {
		if r.Div != nil {
			t.Errorf("cell %s diverged: %v (seed %d, shrunk to %d records)",
				r.Cell, r.Div, r.Seed, len(r.Shrunk))
		}
		if r.Steps == 0 {
			t.Errorf("cell %s checked zero steps", r.Cell)
		}
	}
}

// TestCellRoundTrip: every sweep cell is findable by its name, and
// both its spec and impl are constructible.
func TestCellRoundTrip(t *testing.T) {
	for _, c := range DefaultSweep() {
		got, err := CellByName(c.String())
		if err != nil {
			t.Fatalf("CellByName(%q): %v", c, err)
		}
		if got != c {
			t.Fatalf("CellByName(%q) = %+v, want %+v", c, got, c)
		}
		if _, err := c.Spec(); err != nil {
			t.Errorf("cell %s: spec: %v", c, err)
		}
		if _, err := c.Impl(); err != nil {
			t.Errorf("cell %s: impl: %v", c, err)
		}
	}
	if _, err := CellByName("oracle/n64"); err == nil {
		t.Error("CellByName accepted an unknown cell")
	}
}

// TestTraceForDeterministic: the same seed reproduces the identical
// trace — the property the printed replay seed relies on.
func TestTraceForDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		a, err := TraceFor(seed, 2000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := TraceFor(seed, 2000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("seed %d: lengths %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: record %d differs: %+v vs %+v", seed, i, a[i], b[i])
			}
		}
	}
}

// TestSelfTestCatchesInjectedFaults is the acceptance check for the
// harness: a deliberately injected off-by-one (and friends) must be
// caught and shrunk to a counterexample of at most 50 trace records.
func TestSelfTestCatchesInjectedFaults(t *testing.T) {
	cells := []Cell{
		{Family: "gshare", N: 8, Hist: 6, Ctr: 2},
		{Family: "gselect", N: 8, Hist: 4, Ctr: 2},
		{Family: "gskewed", N: 6, Hist: 6, Ctr: 2, Partial: true},
		{Family: "egskew", N: 6, Hist: 8, Ctr: 2, Partial: false},
		{Family: "bimodal", N: 8, Ctr: 2},
	}
	var log bytes.Buffer
	results, err := SelfTest(cells, 4000, 2, 50, &log)
	if err != nil {
		t.Fatalf("selftest: %v\n%s", err, log.String())
	}
	if len(results) == 0 {
		t.Fatal("selftest ran zero injections")
	}
	for _, r := range results {
		if !r.Caught {
			t.Errorf("%s/%s escaped the harness", r.Cell, r.Mutant)
		} else if r.ShrunkLen == 0 || r.ShrunkLen > 50 {
			t.Errorf("%s/%s shrunk to %d records, want 1..50", r.Cell, r.Mutant, r.ShrunkLen)
		}
	}
}

// TestShrinkIsOneMinimal: the shrunk counterexample still reproduces
// the divergence, and deleting any single record makes it vanish.
func TestShrinkIsOneMinimal(t *testing.T) {
	c := Cell{Family: "gshare", N: 6, Hist: 4, Ctr: 2}
	build := Mutants()[0].Build  // addr-off-by-one
	tr, err := TraceFor(2, 4000) // uniform-random mode
	if err != nil {
		t.Fatal(err)
	}
	shrunk := ShrinkBuilt(tr, c, build, PathPair)
	if len(shrunk) == 0 {
		t.Fatal("mutant not caught, nothing to shrink")
	}
	if div, err := CheckBuilt(shrunk, c, build, PathPair); err != nil || div == nil {
		t.Fatalf("shrunk trace does not reproduce: div=%v err=%v", div, err)
	}
	for i := range shrunk {
		cand := append(append([]trace.Branch(nil), shrunk[:i]...), shrunk[i+1:]...)
		if len(cand) == 0 {
			continue
		}
		if div, _ := CheckBuilt(cand, c, build, PathPair); div != nil {
			t.Fatalf("not 1-minimal: still diverges without record %d of %d", i, len(shrunk))
		}
	}
}

// TestShrinkOnCleanTraceReturnsNil: Shrink refuses to "shrink" a trace
// that does not diverge.
func TestShrinkOnCleanTraceReturnsNil(t *testing.T) {
	c := Cell{Family: "gshare", N: 8, Hist: 6, Ctr: 2}
	tr, err := TraceFor(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := Shrink(tr, c, PathPair); got != nil {
		t.Fatalf("Shrink on a clean trace returned %d records, want nil", len(got))
	}
}

// TestWriteCounterexampleRoundTrips: the rendered counterexample is a
// valid text trace with a replay header.
func TestWriteCounterexampleRoundTrips(t *testing.T) {
	c := Cell{Family: "gskewed", N: 6, Hist: 6, Ctr: 2, Partial: true}
	tr := []trace.Branch{
		{PC: 0x10, Taken: true, Kind: trace.Conditional},
		{PC: 0x11, Taken: true, Kind: trace.Unconditional},
		{PC: 0x12, Taken: false, Kind: trace.Conditional},
	}
	var buf bytes.Buffer
	if err := WriteCounterexample(&buf, c, 42, PathStep, tr); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, c.String()) || !strings.Contains(text, "seed 42") {
		t.Errorf("header missing cell or seed:\n%s", text)
	}
	got, err := trace.ReadText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("counterexample does not re-parse: %v", err)
	}
	if len(got) != len(tr) {
		t.Fatalf("round trip: %d records, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], tr[i])
		}
	}
}

// TestVerifyCellCoversAllPaths: a clean cell is checked on the pair,
// step and kernel paths (three full trace replays).
func TestVerifyCellCoversAllPaths(t *testing.T) {
	c := Cell{Family: "gskewed", N: 6, Hist: 6, Ctr: 2, Partial: true}
	res, err := VerifyCell(c, 2, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Div != nil {
		t.Fatalf("cell diverged: %v", res.Div)
	}
	tr, err := TraceFor(2, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(tr) * len(Paths()); res.Steps != want {
		t.Errorf("Steps = %d, want %d (%d paths x %d records)", res.Steps, want, len(Paths()), len(tr))
	}
}

// TestKernelFaultCaughtAndShrunk pins the kernel arm's fault-injection
// contract directly: a LUT off-by-one planted into a compiled skewed
// kernel must diverge from the specification, and the witness must
// shrink to a small 1-minimal counterexample that still reproduces.
func TestKernelFaultCaughtAndShrunk(t *testing.T) {
	fault := KernelFault{Bank: 1, Half: 0, Entry: 0, Delta: 1}
	for _, c := range []Cell{
		{Family: "gskewed", N: 6, Hist: 6, Ctr: 2, Partial: true},
		{Family: "egskew", N: 6, Hist: 8, Ctr: 2},
	} {
		tr, err := TraceFor(2, 4000)
		if err != nil {
			t.Fatal(err)
		}
		div, err := CheckKernelTampered(tr, c, fault)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if div == nil {
			t.Fatalf("%s: planted LUT fault escaped the kernel arm", c)
		}
		shrunk := ShrinkKernelTampered(tr, c, fault)
		if len(shrunk) == 0 || len(shrunk) > 50 {
			t.Fatalf("%s: shrunk to %d records, want 1..50", c, len(shrunk))
		}
		if div, err := CheckKernelTampered(shrunk, c, fault); err != nil || div == nil {
			t.Fatalf("%s: shrunk trace does not reproduce: div=%v err=%v", c, div, err)
		}
		// The untampered kernel must be clean on the same trace (the
		// divergence is the fault, not the kernel).
		if div, err := Check(tr, c, PathKernel); err != nil || div != nil {
			t.Fatalf("%s: honest kernel diverged on the same trace: div=%v err=%v", c, div, err)
		}
	}
}
