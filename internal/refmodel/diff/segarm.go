package diff

import (
	"fmt"

	"gskew/internal/history"
	"gskew/internal/kernel"
	"gskew/internal/predictor"
	"gskew/internal/refmodel"
	"gskew/internal/sim"
	"gskew/internal/trace"
)

// The segmented arm of the sweep. Unlike the per-step arms, the
// segment-parallel runner is a whole-trace execution strategy: it has
// no per-branch call to compare, so the check is aggregate — replay
// the trace through the specification serially, run the
// implementation through sim with segmentation forced on, and require
// (a) identical total mispredict counts and (b) identical final
// predictor state, probed over the (pc, history) pairs the trace
// actually visited. Any warm-up bug, botched boundary patch or missed
// replay shows up in one of the two.

// segArmSegments / segArmWarm force an adversarial shape: enough
// segments that boundaries land mid-stream even on short shrunk
// traces, and a warm-up window small enough that convergence is not a
// foregone conclusion.
const (
	segArmSegments = 7
	segArmWarm     = 256
)

// maxSegProbes bounds the final-state probe set per check.
const maxSegProbes = 2048

// checkSegmented is the aggregate differential check behind
// PathSegmented. reconcile=false routes the implementation through
// sim.RunSegmentedNoReconcile — the planted fault of the selftest.
func checkSegmented(tr []trace.Branch, c Cell, build ImplBuilder, segments, warm int, reconcile bool) (*Divergence, error) {
	if len(tr) == 0 {
		return nil, nil
	}
	spec, err := c.Spec()
	if err != nil {
		return nil, err
	}
	impl, err := build(c)
	if err != nil {
		return nil, err
	}
	k := c.Hist
	if c.Family == "bimodal" {
		k = 0
	}

	// Serial replay of the specification, collecting the mispredict
	// total and a probe set of visited (pc, history) pairs.
	specGHR := refmodel.NewSpecHistory(k)
	specMis := 0
	type probe struct {
		pc, hist uint64
	}
	var probes []probe
	for i, b := range tr {
		switch b.Kind {
		case trace.Conditional:
			sh := specGHR.Value()
			if spec.Predict(b.PC, sh) != b.Taken {
				specMis++
			}
			if len(probes) < maxSegProbes {
				probes = append(probes, probe{b.PC, sh})
			}
			spec.Update(b.PC, sh, b.Taken)
			specGHR.Shift(b.Taken)
		case trace.Unconditional:
			specGHR.Shift(true)
		default:
			return nil, fmt.Errorf("diff: unknown branch kind %d at record %d", b.Kind, i)
		}
	}

	// The implementation runs through the simulator's segmented path.
	// HistoryBits pins the runner's register to the cell's k (the
	// runner owns the register; bimodal would otherwise be identical
	// anyway, since its kernel ignores history).
	opts := sim.Options{Segments: segments, WarmBranches: warm, HistoryBits: k}
	if c.Family == "bimodal" {
		opts.HistoryBits = 0
	}
	src := trace.NewSliceSource(tr)
	var res sim.Result
	if reconcile {
		results, rerr := sim.RunSegmented(src, []predictor.Predictor{impl}, opts)
		if rerr != nil {
			return nil, rerr
		}
		res = results[0]
	} else {
		results, rerr := sim.RunSegmentedNoReconcile(src, []predictor.Predictor{impl}, opts)
		if rerr != nil {
			return nil, rerr
		}
		res = results[0]
	}

	last := len(tr) - 1
	if res.Mispredicts != specMis {
		return &Divergence{
			Step: last, Record: tr[last], Aggregate: true,
			SpecCount: specMis, ImplCount: res.Mispredicts,
		}, nil
	}
	// Counts agree; the final state must too.
	for _, pr := range probes {
		sp, ip := spec.Predict(pr.pc, pr.hist), impl.Predict(pr.pc, pr.hist)
		if sp != ip {
			return &Divergence{
				Step: last, Record: trace.Branch{PC: pr.pc, Kind: trace.Conditional},
				Hist: pr.hist, SpecPred: sp, ImplPred: ip, Aggregate: true,
				SpecCount: specMis, ImplCount: res.Mispredicts,
			}, nil
		}
	}
	return nil, nil
}

// checkBatch64 is the bitsliced arm: every conditional steps an
// 8-lane group of fresh, identical implementations one step at a
// time, and every lane must agree with the specification. Lanes are
// independent instances, so any cross-lane smearing in the bitplane
// arithmetic (a carry into the wrong lane, a mask off by one bit)
// diverges some lane even when lane 0 happens to be right.
const batch64Lanes = 8

func checkBatch64(tr []trace.Branch, c Cell, build ImplBuilder) (*Divergence, error) {
	spec, err := c.Spec()
	if err != nil {
		return nil, err
	}
	k := c.Hist
	if c.Family == "bimodal" {
		k = 0
	}
	lanes := make([]predictor.Predictor, batch64Lanes)
	hists := make([]uint, batch64Lanes)
	for i := range lanes {
		if lanes[i], err = build(c); err != nil {
			return nil, err
		}
		hists[i] = k
	}
	g, ok := kernel.CompileGroup64(lanes, hists)
	if !ok {
		return nil, fmt.Errorf("diff: %s implementation does not compile to a bitsliced group", c)
	}

	specGHR := refmodel.NewSpecHistory(k)
	implGHR := history.NewGlobal(k)
	step := make([]kernel.Step, 1)
	mis := make([]int, batch64Lanes)
	for i, b := range tr {
		switch b.Kind {
		case trace.Conditional:
			sh, ih := specGHR.Value(), implGHR.Bits()
			if sh != ih {
				return &Divergence{Step: i, Record: b, HistMismatch: true}, nil
			}
			specPred := spec.Predict(b.PC, sh)
			step[0] = kernel.Step{PC: b.PC, Hist: ih, Taken: b.Taken}
			for j := range mis {
				mis[j] = 0
			}
			g.StepBatch64(step, mis)
			for j := range mis {
				implPred := b.Taken != (mis[j] == 1)
				if implPred != specPred {
					return &Divergence{
						Step: i, Record: b, Hist: sh,
						SpecPred: specPred, ImplPred: implPred,
					}, nil
				}
			}
			spec.Update(b.PC, sh, b.Taken)
			specGHR.Shift(b.Taken)
			implGHR.Shift(b.Taken)
		case trace.Unconditional:
			specGHR.Shift(true)
			implGHR.Shift(true)
		default:
			return nil, fmt.Errorf("diff: unknown branch kind %d at record %d", b.Kind, i)
		}
	}
	return nil, nil
}
