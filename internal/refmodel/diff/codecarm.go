package diff

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gskew/internal/sim"
	"gskew/internal/trace"
)

// The codec arm of the sweep. The trace codecs sit upstream of every
// simulation, so a silent decode fault (a bitpack width off by one, a
// delta chain broken across blocks) corrupts every result while each
// individual run still looks plausible. The check is differential in
// the same spirit as the predictor arms: for every sweep cell, the
// cell's generated trace is serialised through the varint codec, the
// block-columnar codec, and a columnar file replayed through the mmap
// reader, and each decode must reproduce the generator's records
// exactly (and the same canonical content hash) AND drive the cell's
// implementation to a bit-identical simulation Result.

// codecDecode names one decode path of the codec arm.
type codecDecode struct {
	name   string
	decode func(dir string, varint, columnar []byte) ([]trace.Branch, error)
}

func codecDecodes() []codecDecode {
	return []codecDecode{
		{"varint", func(_ string, varint, _ []byte) ([]trace.Branch, error) {
			r, err := trace.NewReader(bytes.NewReader(varint))
			if err != nil {
				return nil, err
			}
			return trace.Collect(r)
		}},
		{"columnar", func(_ string, _, columnar []byte) ([]trace.Branch, error) {
			r, err := trace.NewColumnarReader(bytes.NewReader(columnar))
			if err != nil {
				return nil, err
			}
			return trace.Collect(r)
		}},
		{"mmap", func(dir string, _, columnar []byte) ([]trace.Branch, error) {
			path := filepath.Join(dir, "codec-arm.ctrace")
			if err := os.WriteFile(path, columnar, 0o644); err != nil {
				return nil, err
			}
			m, err := trace.MapFile(path)
			if err != nil {
				return nil, err
			}
			defer m.Close()
			return trace.Collect(m)
		}},
	}
}

// encodeVarint serialises a trace through the varint writer.
func encodeVarint(branches []trace.Branch) ([]byte, error) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		return nil, err
	}
	for i := range branches {
		if err := w.Write(branches[i]); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// VerifyCodecs runs the codec arm over every cell: each cell's trace
// is decoded through all three paths and each decode must match the
// generated records, their content hash, and the simulation Result the
// original trace produces on the cell's implementation. Returns the
// total record count checked (summed over decode paths); any mismatch
// is an error naming the cell and path.
func VerifyCodecs(cells []Cell, branches int, seed uint64, log io.Writer) (int, error) {
	dir, err := os.MkdirTemp("", "gskew-codec-arm-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)

	records := 0
	for i, c := range cells {
		cellSeed := seed + uint64(i)
		tr, err := TraceFor(cellSeed, branches)
		if err != nil {
			return records, fmt.Errorf("diff: generating trace for %s (seed %d): %w", c, cellSeed, err)
		}
		wantHash := trace.HashBranches(tr)
		varint, err := encodeVarint(tr)
		if err != nil {
			return records, fmt.Errorf("diff: codec arm %s: varint encode: %w", c, err)
		}
		columnar, err := trace.EncodeColumnar(tr)
		if err != nil {
			return records, fmt.Errorf("diff: codec arm %s: columnar encode: %w", c, err)
		}
		impl, err := c.Impl()
		if err != nil {
			return records, err
		}
		want, err := sim.RunBranches(tr, impl, sim.Options{})
		if err != nil {
			return records, fmt.Errorf("diff: codec arm %s: reference run: %w", c, err)
		}
		for _, d := range codecDecodes() {
			got, err := d.decode(dir, varint, columnar)
			if err != nil {
				return records, fmt.Errorf("diff: codec arm %s/%s: decode: %w", c, d.name, err)
			}
			if len(got) != len(tr) {
				return records, fmt.Errorf("diff: codec arm %s/%s: %d records decoded, want %d",
					c, d.name, len(got), len(tr))
			}
			for j := range tr {
				if got[j] != tr[j] {
					return records, fmt.Errorf("diff: codec arm %s/%s: record %d decoded as %+v, want %+v",
						c, d.name, j, got[j], tr[j])
				}
			}
			if h := trace.HashBranches(got); h != wantHash {
				return records, fmt.Errorf("diff: codec arm %s/%s: content hash %s, want %s",
					c, d.name, h, wantHash)
			}
			replayImpl, err := c.Impl()
			if err != nil {
				return records, err
			}
			res, err := sim.RunBranches(got, replayImpl, sim.Options{})
			if err != nil {
				return records, fmt.Errorf("diff: codec arm %s/%s: replay run: %w", c, d.name, err)
			}
			if res != want {
				return records, fmt.Errorf("diff: codec arm %s/%s: replayed Result %+v, want %+v",
					c, d.name, res, want)
			}
			records += len(got)
		}
		if log != nil {
			fmt.Fprintf(log, "%-28s seed=%-6d records=%-8d ok (varint, columnar, mmap)\n",
				c, cellSeed, len(tr))
		}
	}
	return records, nil
}

// CodecSelfTest plants the columnar bitpack-width fault
// (trace.TamperColumnarBitpackWidth: dictionary indices packed one bit
// narrower than the header claims, a structurally valid stream that
// silently aliases PCs) and requires the differential comparison to
// catch it: the tampered stream must decode cleanly yet fail the
// record/hash comparison against the original trace. An error means
// the fault escaped — the codec arm could not be trusted to catch the
// real thing.
func CodecSelfTest(branches int, seed uint64, log io.Writer) error {
	// The fault only exists in dictionary-mode blocks (a raw-escape
	// block carries no packed indices to narrow), so probe consecutive
	// seeds — the three TraceFor generator modes — until one yields a
	// stream the tamper actually touches. Inapplicability is detected
	// structurally: a tampered encoding byte-identical to the clean one
	// planted nothing.
	var tr []trace.Branch
	var tampered []byte
	for s := seed; s < seed+3; s++ {
		cand, err := TraceFor(s, branches)
		if err != nil {
			return err
		}
		clean, err := trace.EncodeColumnar(cand)
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		w, err := trace.NewColumnarWriter(&buf)
		if err != nil {
			return err
		}
		trace.TamperColumnarBitpackWidth(w)
		for i := range cand {
			if err := w.Write(cand[i]); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if !bytes.Equal(clean, buf.Bytes()) {
			tr, tampered = cand, buf.Bytes()
			break
		}
	}
	if tampered == nil {
		return fmt.Errorf("diff: codec selftest: no generator mode near seed %d produced a dictionary-packed block to tamper", seed)
	}
	got, err := trace.DecodeBytes(tampered)
	if err != nil {
		// The fault must be silent: checksums are computed over the
		// tampered payload, so a decode error means the plant itself is
		// broken, not that the harness caught it.
		return fmt.Errorf("diff: codec selftest: tampered stream failed to decode (%w); the planted fault must be silent", err)
	}
	caught := trace.HashBranches(got) != trace.HashBranches(tr)
	if log != nil {
		status := "ESCAPED"
		if caught {
			status = fmt.Sprintf("caught (decode clean, %d records, content hash diverged)", len(got))
		}
		fmt.Fprintf(log, "%-28s %-22s %s\n", "codec/columnar", "columnar-width-off-by-one", status)
	}
	if !caught {
		return fmt.Errorf("diff: codec selftest: columnar-width-off-by-one escaped (tampered stream decoded to the original records)")
	}
	return nil
}
