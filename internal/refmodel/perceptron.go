package refmodel

import "fmt"

// This file transcribes the hashed perceptron predictor (Jiménez &
// Lin's perceptron in the table-hashed form of Tarjan & Skadron) as
// an executable specification: weight tables as Go maps of plain
// ints, indices computed bit by bit, no code shared with
// internal/predictor.

// SpecPerceptron is the specification of the hashed perceptron: T
// maps of signed integer weights, table i indexed by the address
// hashed with a folded slice of the most recent L_i history bits, a
// summed-weight sign prediction and threshold training.
type SpecPerceptron struct {
	n, k    uint
	wBits   uint
	theta   int
	lens    []uint
	weights []map[uint64]int
}

// NewSpecPerceptron returns the spec of a hashed perceptron with
// tables 2^n-entry weight maps of wBits-bit weights over k history
// bits, trained at threshold theta. Table 0 is the bias table (no
// history); table i sees ceil(k*i/(tables-1)) history bits.
func NewSpecPerceptron(n, k, tables, wBits uint, theta int) *SpecPerceptron {
	if tables < 2 {
		panic("refmodel: perceptron needs at least two tables")
	}
	if wBits < 1 || wBits > 8 {
		panic(fmt.Sprintf("refmodel: perceptron weight width %d out of range [1,8]", wBits))
	}
	p := &SpecPerceptron{n: n, k: k, wBits: wBits, theta: theta}
	for i := uint(0); i < tables; i++ {
		// ceil(k*i/(tables-1)) in integer arithmetic.
		l := (k*i + tables - 2) / (tables - 1)
		p.lens = append(p.lens, l)
		p.weights = append(p.weights, make(map[uint64]int))
	}
	return p
}

// wMin and wMax are the two's-complement saturation bounds of a
// wBits-bit weight.
func (p *SpecPerceptron) wMin() int {
	m := 1
	for i := uint(1); i < p.wBits; i++ {
		m *= 2
	}
	return -m
}

func (p *SpecPerceptron) wMax() int { return -p.wMin() - 1 }

// index is table i's weight index: the address (spread per table)
// XORed with the folded history slice.
func (p *SpecPerceptron) index(addr, hist uint64, i int) uint64 {
	a := FromBits(ToBits(addr, p.n))
	spread := FromBits(ToBits(addr>>uint(i+1), p.n))
	f := FoldedHistory(hist, p.lens[i], p.n)
	return xorN(xorN(a, spread, p.n), f, p.n)
}

// sum is the perceptron output: the sum of the selected weights
// (absent map entries weigh zero).
func (p *SpecPerceptron) sum(addr, hist uint64) int {
	s := 0
	for i := range p.weights {
		s += p.weights[i][p.index(addr, hist, i)]
	}
	return s
}

// Predict implements Spec: taken when the output is non-negative.
func (p *SpecPerceptron) Predict(addr, hist uint64) bool {
	return p.sum(addr, hist) >= 0
}

// Update implements Spec: when the prediction was wrong, or the
// output's magnitude is within the training threshold, every selected
// weight moves one step toward the outcome, saturating at the
// two's-complement bounds.
func (p *SpecPerceptron) Update(addr, hist uint64, taken bool) {
	s := p.sum(addr, hist)
	pred := s >= 0
	mag := s
	if mag < 0 {
		mag = -mag
	}
	if pred != taken || mag <= p.theta {
		for i := range p.weights {
			idx := p.index(addr, hist, i)
			w := p.weights[i][idx]
			if taken {
				if w < p.wMax() {
					p.weights[i][idx] = w + 1
				}
			} else if w > p.wMin() {
				p.weights[i][idx] = w - 1
			}
		}
	}
}

// Name implements Spec.
func (p *SpecPerceptron) Name() string { return "spec-perceptron" }

// HistoryBits implements Spec.
func (p *SpecPerceptron) HistoryBits() uint { return p.k }
