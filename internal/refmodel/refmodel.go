// Package refmodel is an independent executable specification of the
// predictor structures studied by the paper, transcribed directly from
// the definitions in Michaud, Seznec and Uhlig (ISCA 1997):
//
//   - the n-bit up/down saturating counter automaton (section 2),
//   - the bimodal, gshare and gselect index functions (section 3,
//     including the footnote-1 high-order alignment of short
//     histories in gshare),
//   - the skewing bijection H, its inverse H^-1, and the inter-bank
//     dispersion family f0, f1, f2 (section 4.2),
//   - the skewed predictor and its enhanced variant, under both the
//     total and the partial update policy (sections 4.3-4.5 and 6).
//
// Everything here is written for obviousness, not speed: indices are
// computed bit by bit on []bool bit strings, predictor state lives in
// Go maps keyed by the index, and no code is shared with
// internal/predictor, internal/skewfn, internal/indexfn or
// internal/counter. The package exists to be the second, independent
// opinion that the differential runner (refmodel/diff, cmd/verify)
// checks the optimized implementation against, so any "optimisation"
// here would defeat its purpose. Keep it naive.
package refmodel

import "fmt"

// --- bit strings ---------------------------------------------------
//
// The paper writes an n-bit string as (y_n, y_{n-1}, ..., y_1) with
// y_1 the least significant bit. We represent it as a []bool b with
// b[i] = y_{i+1}, i.e. index 0 holds the LSB. Conversion to and from
// uint64 happens only at the package boundary.

// ToBits expands the low n bits of v into a bit string, LSB first.
func ToBits(v uint64, n uint) []bool {
	b := make([]bool, n)
	for i := uint(0); i < n; i++ {
		b[i] = v&1 == 1
		v >>= 1
	}
	return b
}

// FromBits packs a bit string (LSB first) back into a uint64.
func FromBits(b []bool) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v <<= 1
		if b[i] {
			v |= 1
		}
	}
	return v
}

// --- the counter automaton (section 2) -----------------------------

// SpecCounter is the n-bit saturating up/down counter automaton: a
// state in [0, 2^n-1] that increments on a taken outcome, decrements
// on a not-taken outcome, saturates at both ends, and predicts taken
// in the upper half of its state range. SpecCounter is a value type.
type SpecCounter struct {
	// State is the automaton state, in [0, Max].
	State int
	// Max is the saturation point, 2^bits - 1.
	Max int
}

// NewSpecCounter returns the automaton for the given width in its
// conventional initial state, weakly taken: the lowest state that
// still predicts taken.
func NewSpecCounter(bits uint) SpecCounter {
	if bits < 1 || bits > 8 {
		panic(fmt.Sprintf("refmodel: counter width %d out of range [1,8]", bits))
	}
	max := 1
	for i := uint(1); i < bits; i++ {
		max = max*2 + 1
	}
	c := SpecCounter{Max: max}
	c.State = c.threshold()
	return c
}

// threshold is the lowest state that predicts taken: the upper half
// of the range [0, Max] starts at (Max+1)/2.
func (c SpecCounter) threshold() int { return (c.Max + 1) / 2 }

// Predict reports the automaton's current direction.
func (c SpecCounter) Predict() bool { return c.State >= c.threshold() }

// Update returns the automaton state after observing an outcome.
func (c SpecCounter) Update(taken bool) SpecCounter {
	if taken {
		if c.State < c.Max {
			c.State++
		}
	} else {
		if c.State > 0 {
			c.State--
		}
	}
	return c
}

// InBounds reports whether the state is inside the legal range; every
// reachable state must satisfy it (the saturation-bounds property).
func (c SpecCounter) InBounds() bool { return c.State >= 0 && c.State <= c.Max }

// --- single-table index functions (section 3) ----------------------

// BimodalIndex is plain address truncation: the low n bits of the
// word-aligned branch address.
func BimodalIndex(addr uint64, n uint) uint64 {
	return FromBits(ToBits(addr, n))
}

// GShareIndex XORs k history bits into the n low address bits. Per
// footnote 1 (after McFarling), a history shorter than the index is
// aligned with the HIGH-order end of the index; a history longer than
// the index is folded down by XOR in n-bit groups so that every
// history bit still participates.
func GShareIndex(addr, hist uint64, n, k uint) uint64 {
	a := ToBits(addr, n)
	h := ToBits(hist, k)
	placed := make([]bool, n)
	if k <= n {
		// h_j lands at index bit (n-k)+j: high-order alignment.
		for j := uint(0); j < k; j++ {
			placed[(n-k)+j] = h[j]
		}
	} else {
		// Fold: global history bit j lands at index bit j mod n.
		for j := uint(0); j < k; j++ {
			if h[j] {
				placed[j%n] = !placed[j%n]
			}
		}
	}
	out := make([]bool, n)
	for i := uint(0); i < n; i++ {
		out[i] = a[i] != placed[i]
	}
	return FromBits(out)
}

// GSelectIndex concatenates k history bits (high part) with n-k
// address bits (low part). When k >= n the index is just the low n
// history bits.
func GSelectIndex(addr, hist uint64, n, k uint) uint64 {
	if k >= n {
		return FromBits(ToBits(hist, n))
	}
	a := ToBits(addr, n-k)
	h := ToBits(hist, k)
	out := make([]bool, n)
	copy(out, a)
	copy(out[n-k:], h)
	return FromBits(out)
}

// --- the skewing family (section 4.2) ------------------------------

// H applies the paper's bijection on n-bit strings:
//
//	H(y_n, y_{n-1}, ..., y_1) = (y_n XOR y_1, y_n, y_{n-1}, ..., y_2)
//
// transcribed positionally: output bit n is y_n XOR y_1, and output
// bit i is y_{i+1} for i in [1, n-1].
func H(y uint64, n uint) uint64 {
	checkWidth(n)
	in := ToBits(y, n)
	out := make([]bool, n)
	out[n-1] = in[n-1] != in[0] // y_n XOR y_1
	for i := uint(0); i+1 < n; i++ {
		out[i] = in[i+1]
	}
	return FromBits(out)
}

// Hinv applies the inverse of H, derived by solving the definition:
// if z = H(y) then y_i = z_{i-1} for i in [2, n], and
// y_1 = z_n XOR y_n = z_n XOR z_{n-1}.
func Hinv(z uint64, n uint) uint64 {
	checkWidth(n)
	in := ToBits(z, n)
	out := make([]bool, n)
	for i := uint(1); i < n; i++ {
		out[i] = in[i-1]
	}
	out[0] = in[n-1] != in[n-2]
	return FromBits(out)
}

// checkWidth bounds the skew index width: below 2 bits the shift
// structure of H degenerates (y_n and y_1 coincide).
func checkWidth(n uint) {
	if n < 2 || n > 30 {
		panic(fmt.Sprintf("refmodel: skew index width %d out of range [2,30]", n))
	}
}

// SplitV decomposes the information vector V into (V3, V2, V1) with V1
// the low n bits and V2 the next n bits, as in section 4.2.
func SplitV(v uint64, n uint) (v3, v2, v1 uint64) {
	v1 = FromBits(ToBits(v, n))
	v2 = FromBits(ToBits(v>>n, n))
	v3 = v >> (2 * n)
	return
}

// xorN XORs two n-bit values bitwise (spelled out on bit strings to
// stay in the naive idiom).
func xorN(a, b uint64, n uint) uint64 {
	x, y := ToBits(a, n), ToBits(b, n)
	out := make([]bool, n)
	for i := uint(0); i < n; i++ {
		out[i] = x[i] != y[i]
	}
	return FromBits(out)
}

// F0 is the bank-0 skewing function f0(V) = H(V1) XOR Hinv(V2) XOR V2.
func F0(v uint64, n uint) uint64 {
	_, v2, v1 := SplitV(v, n)
	return xorN(xorN(H(v1, n), Hinv(v2, n), n), v2, n)
}

// F1 is the bank-1 skewing function f1(V) = H(V1) XOR Hinv(V2) XOR V1.
func F1(v uint64, n uint) uint64 {
	_, v2, v1 := SplitV(v, n)
	return xorN(xorN(H(v1, n), Hinv(v2, n), n), v1, n)
}

// F2 is the bank-2 skewing function f2(V) = Hinv(V1) XOR H(V2) XOR V2.
func F2(v uint64, n uint) uint64 {
	_, v2, v1 := SplitV(v, n)
	return xorN(xorN(Hinv(v1, n), H(v2, n), n), v2, n)
}

// Vector builds the information vector V = (a_N ... a_2, h_k ... h_1):
// the word-aligned address above k bits of global history.
func Vector(addr, hist uint64, k uint) uint64 {
	h := FromBits(ToBits(hist, k))
	return (addr << k) | h
}

// --- history register ----------------------------------------------

// SpecHistory is the global history as the paper describes it: the
// record of the last k branch outcomes, newest first. It is kept as
// an explicit outcome list rather than a shift register.
type SpecHistory struct {
	k        uint
	outcomes []bool // outcomes[0] is the newest (h_1)
}

// NewSpecHistory returns an empty k-outcome history.
func NewSpecHistory(k uint) *SpecHistory {
	return &SpecHistory{k: k}
}

// Shift records an outcome as the newest history bit.
func (h *SpecHistory) Shift(taken bool) {
	h.outcomes = append([]bool{taken}, h.outcomes...)
	if uint(len(h.outcomes)) > h.k {
		h.outcomes = h.outcomes[:h.k]
	}
}

// Value returns the history register value: outcome j (0-based,
// newest first) contributes bit j. Outcomes not yet observed read as
// not-taken, matching an initially zero register.
func (h *SpecHistory) Value() uint64 {
	b := make([]bool, h.k)
	copy(b, h.outcomes)
	return FromBits(b)
}

// Reset clears the history.
func (h *SpecHistory) Reset() { h.outcomes = nil }
