package refmodel

import "fmt"

// This file transcribes the TAGE predictor (Seznec & Michaud, JILP
// 2006) as an executable specification, in the same naive style as
// the rest of the package: indices and tags computed bit by bit on
// []bool strings, per-component state in Go maps, no code shared with
// internal/predictor. It is the independent second opinion the
// differential runner checks the optimized TAGE against.

// specTAGEAgePeriod is the usefulness-ageing period: every
// specTAGEAgePeriod Update calls, every stored usefulness counter is
// halved. The optimized implementation specifies the same number
// independently.
const specTAGEAgePeriod = 8192

// FoldedHistory is the folded-history hash of the TAGE index and tag
// functions, written naively: history bit j (0-based, newest first)
// of the most recent length outcomes flips bit j mod width of the
// result.
func FoldedHistory(hist uint64, length, width uint) uint64 {
	if width < 1 {
		panic("refmodel: fold width must be >= 1")
	}
	h := ToBits(hist, length)
	out := make([]bool, width)
	for j := uint(0); j < length; j++ {
		if h[j] {
			out[j%width] = !out[j%width]
		}
	}
	return FromBits(out)
}

// specTAGEEntry is one tagged-component entry: a partial tag, a
// direction counter and a usefulness counter in [0, 3]. Entries
// absent from a component map hold tag 0, the initial (weakly-taken)
// counter and usefulness 0 — exactly the state of a zero-initialised
// array entry.
type specTAGEEntry struct {
	Tag uint64
	Ctr SpecCounter
	U   int
}

// SpecTAGE is the specification of the TAGE predictor: a base bimodal
// map of 2-bit counters plus tagged component maps over geometric
// history lengths.
type SpecTAGE struct {
	n, k, kmin uint
	tag        uint
	ctrBits    uint
	lens       []uint // lens[i] is component i+1's history length
	base       map[uint64]SpecCounter
	comps      []map[uint64]specTAGEEntry
	updates    int
}

// NewSpecTAGE returns the spec of a TAGE predictor with 2^n-entry
// tables, tables tagged components over history lengths
// min(k, kmin*2^i), tag-bit partial tags and ctrBits-bit direction
// counters.
func NewSpecTAGE(n, k, kmin, tables, tag, ctrBits uint) *SpecTAGE {
	if tables < 1 {
		panic("refmodel: tage needs at least one tagged component")
	}
	if tag < 2 {
		panic(fmt.Sprintf("refmodel: tage tag width %d out of range (>= 2)", tag))
	}
	t := &SpecTAGE{
		n: n, k: k, kmin: kmin, tag: tag, ctrBits: ctrBits,
		base: make(map[uint64]SpecCounter),
	}
	for i := uint(0); i < tables; i++ {
		l := kmin
		for j := uint(0); j < i; j++ {
			l *= 2 // ratio-2 geometric series
		}
		if l > k {
			l = k // capped at the longest history
		}
		t.lens = append(t.lens, l)
		t.comps = append(t.comps, make(map[uint64]specTAGEEntry))
	}
	return t
}

// index is component comp's table index: the address XORed with an
// address spread per component and the folded history.
func (t *SpecTAGE) index(addr, hist uint64, comp int) uint64 {
	a := FromBits(ToBits(addr, t.n))
	spread := FromBits(ToBits(addr>>uint(comp+1), t.n))
	f := FoldedHistory(hist, t.lens[comp], t.n)
	return xorN(xorN(a, spread, t.n), f, t.n)
}

// tagOf is component comp's partial tag: the address XORed with a
// tag-wide fold and a (tag-1)-wide fold shifted up one bit.
func (t *SpecTAGE) tagOf(addr, hist uint64, comp int) uint64 {
	a := FromBits(ToBits(addr, t.tag))
	f1 := FoldedHistory(hist, t.lens[comp], t.tag)
	f2 := FoldedHistory(hist, t.lens[comp], t.tag-1)
	shifted := FromBits(append([]bool{false}, ToBits(f2, t.tag-1)...))
	return xorN(xorN(a, f1, t.tag), shifted, t.tag)
}

// entry reads component comp at index i, defaulting to the
// initial-state entry.
func (t *SpecTAGE) entry(comp int, i uint64) specTAGEEntry {
	if e, ok := t.comps[comp][i]; ok {
		return e
	}
	return specTAGEEntry{Ctr: NewSpecCounter(t.ctrBits)}
}

// baseCell reads the base bimodal counter for an address.
func (t *SpecTAGE) baseCell(addr uint64) SpecCounter {
	if c, ok := t.base[BimodalIndex(addr, t.n)]; ok {
		return c
	}
	return NewSpecCounter(2)
}

// resolve walks the components from the longest history down and
// reports the provider and alternate components (-1 = base), their
// predictions and the overall prediction.
func (t *SpecTAGE) resolve(addr, hist uint64) (provider, alt int, providerPred, altPred, final bool) {
	provider, alt = -1, -1
	for i := len(t.comps) - 1; i >= 0; i-- {
		if t.entry(i, t.index(addr, hist, i)).Tag == t.tagOf(addr, hist, i) {
			if provider < 0 {
				provider = i
			} else {
				alt = i
				break
			}
		}
	}
	basePred := t.baseCell(addr).Predict()
	altPred = basePred
	if alt >= 0 {
		altPred = t.entry(alt, t.index(addr, hist, alt)).Ctr.Predict()
	}
	final = basePred
	if provider >= 0 {
		providerPred = t.entry(provider, t.index(addr, hist, provider)).Ctr.Predict()
		final = providerPred
	}
	return
}

// Predict implements Spec: the longest matching tagged component
// wins; the base bimodal table is the fallback.
func (t *SpecTAGE) Predict(addr, hist uint64) bool {
	_, _, _, _, final := t.resolve(addr, hist)
	return final
}

// Update implements Spec: the provider trains (or the base, when no
// component matched); the provider's usefulness counts whether it
// beat the alternate prediction; a mispredict allocates one entry in
// a longer component whose usefulness is zero, or decays them all;
// and every usefulness counter is halved each specTAGEAgePeriod
// updates.
func (t *SpecTAGE) Update(addr, hist uint64, taken bool) {
	provider, _, providerPred, altPred, final := t.resolve(addr, hist)
	if provider >= 0 {
		i := t.index(addr, hist, provider)
		e := t.entry(provider, i)
		if providerPred != altPred {
			if providerPred == taken {
				if e.U < 3 {
					e.U++
				}
			} else if e.U > 0 {
				e.U--
			}
		}
		e.Ctr = e.Ctr.Update(taken)
		t.comps[provider][i] = e
	} else {
		i := BimodalIndex(addr, t.n)
		t.base[i] = t.baseCell(addr).Update(taken)
	}
	if final != taken && provider < len(t.comps)-1 {
		allocated := false
		for j := provider + 1; j < len(t.comps); j++ {
			i := t.index(addr, hist, j)
			e := t.entry(j, i)
			if e.U == 0 {
				fresh := specTAGEEntry{Tag: t.tagOf(addr, hist, j)}
				fresh.Ctr = NewSpecCounter(t.ctrBits)
				if !taken {
					// Weakly not-taken: one below the taken threshold.
					fresh.Ctr.State = fresh.Ctr.threshold() - 1
				}
				t.comps[j][i] = fresh
				allocated = true
				break
			}
		}
		if !allocated {
			for j := provider + 1; j < len(t.comps); j++ {
				i := t.index(addr, hist, j)
				e := t.entry(j, i)
				if e.U > 0 {
					e.U--
					t.comps[j][i] = e
				}
			}
		}
	}
	t.updates++
	if t.updates == specTAGEAgePeriod {
		t.updates = 0
		for _, comp := range t.comps {
			for i, e := range comp {
				e.U /= 2
				comp[i] = e
			}
		}
	}
}

// Name implements Spec.
func (t *SpecTAGE) Name() string { return "spec-tage" }

// HistoryBits implements Spec.
func (t *SpecTAGE) HistoryBits() uint { return t.k }
