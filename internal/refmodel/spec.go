package refmodel

import "fmt"

// Spec is an executable specification of a predictor organisation:
// the same observable contract as predictor.Predictor, minus the
// performance-oriented extensions. Predict must not change state.
type Spec interface {
	Predict(addr, hist uint64) bool
	Update(addr, hist uint64, taken bool)
	Name() string
	HistoryBits() uint
}

// SpecSingle is the specification of a one-bank tag-less predictor
// table: a map from table index to counter automaton, with the index
// function chosen by kind. Entries absent from the map are in the
// initial (weakly-taken) state, which is exactly how an array table
// initialised to weakly-taken behaves.
type SpecSingle struct {
	kind    string // "bimodal", "gshare" or "gselect"
	n, k    uint
	ctrBits uint
	cells   map[uint64]SpecCounter
}

// NewSpecSingle returns the spec of a 2^n-entry single-table
// predictor of the given kind with k history bits.
func NewSpecSingle(kind string, n, k, ctrBits uint) *SpecSingle {
	switch kind {
	case "bimodal", "gshare", "gselect":
	default:
		panic(fmt.Sprintf("refmodel: unknown single-table kind %q", kind))
	}
	if kind == "bimodal" {
		k = 0
	}
	return &SpecSingle{
		kind: kind, n: n, k: k, ctrBits: ctrBits,
		cells: make(map[uint64]SpecCounter),
	}
}

func (s *SpecSingle) index(addr, hist uint64) uint64 {
	switch s.kind {
	case "bimodal":
		return BimodalIndex(addr, s.n)
	case "gshare":
		return GShareIndex(addr, hist, s.n, s.k)
	default:
		return GSelectIndex(addr, hist, s.n, s.k)
	}
}

func (s *SpecSingle) cell(i uint64) SpecCounter {
	if c, ok := s.cells[i]; ok {
		return c
	}
	return NewSpecCounter(s.ctrBits)
}

// Predict implements Spec.
func (s *SpecSingle) Predict(addr, hist uint64) bool {
	return s.cell(s.index(addr, hist)).Predict()
}

// Update implements Spec.
func (s *SpecSingle) Update(addr, hist uint64, taken bool) {
	i := s.index(addr, hist)
	s.cells[i] = s.cell(i).Update(taken)
}

// Name implements Spec.
func (s *SpecSingle) Name() string { return "spec-" + s.kind }

// HistoryBits implements Spec.
func (s *SpecSingle) HistoryBits() uint { return s.k }

// SpecGSkewed is the specification of the three-bank skewed predictor
// (sections 4.3-4.5) and of its enhanced variant (section 6): three
// maps of counter automata indexed by f0/f1/f2 of the information
// vector (the enhanced variant indexes bank 0 by address truncation
// instead), a majority vote across banks, and either the total or the
// partial update rule.
type SpecGSkewed struct {
	n, k     uint
	ctrBits  uint
	partial  bool
	enhanced bool
	banks    [3]map[uint64]SpecCounter
}

// NewSpecGSkewed returns the spec of a 3x2^n-entry skewed predictor
// with k history bits. partial selects the partial update rule;
// enhanced selects the section-6 variant.
func NewSpecGSkewed(n, k, ctrBits uint, partial, enhanced bool) *SpecGSkewed {
	checkWidth(n)
	g := &SpecGSkewed{n: n, k: k, ctrBits: ctrBits, partial: partial, enhanced: enhanced}
	for b := range g.banks {
		g.banks[b] = make(map[uint64]SpecCounter)
	}
	return g
}

// indices returns the three bank indices for a reference.
func (g *SpecGSkewed) indices(addr, hist uint64) [3]uint64 {
	v := Vector(addr, hist, g.k)
	if g.enhanced {
		// Section 6: bank 0 sees the branch address alone, so its
		// entries are shared by all histories of the same branch.
		return [3]uint64{BimodalIndex(addr, g.n), F1(v, g.n), F2(v, g.n)}
	}
	return [3]uint64{F0(v, g.n), F1(v, g.n), F2(v, g.n)}
}

func (g *SpecGSkewed) cell(bank int, i uint64) SpecCounter {
	if c, ok := g.banks[bank][i]; ok {
		return c
	}
	return NewSpecCounter(g.ctrBits)
}

// votes returns the per-bank predictions and the majority direction.
func (g *SpecGSkewed) votes(idx [3]uint64) (per [3]bool, overall bool) {
	ayes := 0
	for b := range idx {
		per[b] = g.cell(b, idx[b]).Predict()
		if per[b] {
			ayes++
		}
	}
	return per, ayes >= 2
}

// Predict implements Spec: the majority vote of the three banks.
func (g *SpecGSkewed) Predict(addr, hist uint64) bool {
	_, overall := g.votes(g.indices(addr, hist))
	return overall
}

// Update implements Spec. Under total update every bank trains on
// every outcome. Under partial update (section 4.4): when the overall
// prediction was correct, only the banks that agreed with it are
// strengthened — a dissenting bank is presumed to hold the state of a
// different substream and is left alone; when the overall prediction
// was wrong, all banks train.
func (g *SpecGSkewed) Update(addr, hist uint64, taken bool) {
	idx := g.indices(addr, hist)
	per, overall := g.votes(idx)
	for b := range idx {
		if g.partial && overall == taken && per[b] != taken {
			continue
		}
		g.banks[b][idx[b]] = g.cell(b, idx[b]).Update(taken)
	}
}

// Name implements Spec.
func (g *SpecGSkewed) Name() string {
	if g.enhanced {
		return "spec-egskew"
	}
	return "spec-gskewed"
}

// HistoryBits implements Spec.
func (g *SpecGSkewed) HistoryBits() uint { return g.k }

// Policy returns "partial" or "total".
func (g *SpecGSkewed) Policy() string {
	if g.partial {
		return "partial"
	}
	return "total"
}
