package refmodel

import (
	"testing"

	"gskew/internal/rng"
)

// TestBitsRoundTrip: ToBits/FromBits are inverse on the masked value.
func TestBitsRoundTrip(t *testing.T) {
	r := rng.NewXoshiro256(1)
	for i := 0; i < 1000; i++ {
		v := r.Uint64()
		for _, n := range []uint{0, 1, 3, 8, 16, 30, 63} {
			want := v
			if n < 64 {
				want = v & (uint64(1)<<n - 1)
			}
			if got := FromBits(ToBits(v, n)); got != want {
				t.Fatalf("round trip n=%d v=%#x: got %#x want %#x", n, v, got, want)
			}
		}
	}
}

// TestHinvInvertsH: H∘Hinv = Hinv∘H = id, exhaustively for every
// supported small width and every value.
func TestHinvInvertsH(t *testing.T) {
	for n := uint(2); n <= 14; n++ {
		for y := uint64(0); y < 1<<n; y++ {
			if got := Hinv(H(y, n), n); got != y {
				t.Fatalf("n=%d: Hinv(H(%#x)) = %#x", n, y, got)
			}
			if got := H(Hinv(y, n), n); got != y {
				t.Fatalf("n=%d: H(Hinv(%#x)) = %#x", n, y, got)
			}
		}
	}
	// Large widths, sampled.
	r := rng.NewXoshiro256(2)
	for n := uint(15); n <= 30; n++ {
		for i := 0; i < 2000; i++ {
			y := r.Uint64() & (uint64(1)<<n - 1)
			if got := Hinv(H(y, n), n); got != y {
				t.Fatalf("n=%d: Hinv(H(%#x)) = %#x", n, y, got)
			}
		}
	}
}

// TestHBijective: H is a bijection (it has an inverse, so injectivity
// over the full domain is the check), exhaustively for small widths.
func TestHBijective(t *testing.T) {
	for n := uint(2); n <= 14; n++ {
		seen := make(map[uint64]bool, 1<<n)
		for y := uint64(0); y < 1<<n; y++ {
			h := H(y, n)
			if h >= 1<<n {
				t.Fatalf("n=%d: H(%#x) = %#x out of range", n, y, h)
			}
			if seen[h] {
				t.Fatalf("n=%d: H not injective at %#x", n, y)
			}
			seen[h] = true
		}
	}
}

// TestXorHBijective: the maps y -> y XOR H(y) and y -> y XOR Hinv(y)
// are bijections. This is the paper's key subfamily property: it makes
// the differences of any two of f0, f1, f2 bijective in V1 (and V2),
// which is what bounds cross-bank collision correlation. Exhaustive
// for small widths, collision-sampled for large ones.
func TestXorHBijective(t *testing.T) {
	for n := uint(2); n <= 14; n++ {
		seenH := make(map[uint64]bool, 1<<n)
		seenI := make(map[uint64]bool, 1<<n)
		for y := uint64(0); y < 1<<n; y++ {
			a := y ^ H(y, n)
			b := y ^ Hinv(y, n)
			if seenH[a] {
				t.Fatalf("n=%d: y^H(y) collides at %#x", n, y)
			}
			if seenI[b] {
				t.Fatalf("n=%d: y^Hinv(y) collides at %#x", n, y)
			}
			seenH[a], seenI[b] = true, true
		}
	}
	r := rng.NewXoshiro256(3)
	for _, n := range []uint{20, 24, 30} {
		seen := make(map[uint64]uint64, 1<<16)
		for i := 0; i < 1<<16; i++ {
			y := r.Uint64() & (uint64(1)<<n - 1)
			a := y ^ H(y, n)
			if prev, ok := seen[a]; ok && prev != y {
				t.Fatalf("n=%d: y^H(y) collides: %#x and %#x", n, prev, y)
			}
			seen[a] = y
		}
	}
}

// TestEqualV2NoCollision: two information vectors with the same V2 but
// different V1 never collide in any bank — the dispersion property of
// section 4.2. Exhaustive over all V1 pairs for small widths.
func TestEqualV2NoCollision(t *testing.T) {
	fns := []struct {
		name string
		f    func(uint64, uint) uint64
	}{{"f0", F0}, {"f1", F1}, {"f2", F2}}
	for n := uint(2); n <= 8; n++ {
		for _, v2 := range []uint64{0, 1, (uint64(1) << n) - 1, 0x5A & ((uint64(1) << n) - 1)} {
			for a := uint64(0); a < 1<<n; a++ {
				for b := a + 1; b < 1<<n; b++ {
					va := (v2 << n) | a
					vb := (v2 << n) | b
					for _, fn := range fns {
						if fn.f(va, n) == fn.f(vb, n) {
							t.Fatalf("n=%d %s: equal-V2 vectors %#x and %#x collide",
								n, fn.name, va, vb)
						}
					}
				}
			}
		}
	}
}

// TestSpecCounterBounds: from any reachable state, arbitrary outcome
// sequences keep the automaton inside [0, 2^bits-1], and prediction
// flips exactly at the range midpoint.
func TestSpecCounterBounds(t *testing.T) {
	r := rng.NewXoshiro256(4)
	for bits := uint(1); bits <= 8; bits++ {
		c := NewSpecCounter(bits)
		if !c.Predict() {
			t.Fatalf("bits=%d: initial state %d must predict taken (weakly taken)", bits, c.State)
		}
		if c.Update(false).Predict() {
			t.Fatalf("bits=%d: one not-taken from weakly-taken must flip the prediction", bits)
		}
		for i := 0; i < 4096; i++ {
			c = c.Update(r.Uint64()&1 == 0)
			if !c.InBounds() {
				t.Fatalf("bits=%d: state %d escaped [0,%d]", bits, c.State, c.Max)
			}
			if got, want := c.Predict(), c.State >= (c.Max+1)/2; got != want {
				t.Fatalf("bits=%d state=%d: Predict()=%v want %v", bits, c.State, got, want)
			}
		}
		// Saturation: Max consecutive identical outcomes pin the state.
		for i := 0; i <= c.Max; i++ {
			c = c.Update(true)
		}
		if c.State != c.Max {
			t.Fatalf("bits=%d: %d taken outcomes left state %d, want %d", bits, c.Max+1, c.State, c.Max)
		}
		if c.Update(true).State != c.Max {
			t.Fatalf("bits=%d: counter escaped saturation upward", bits)
		}
	}
}

// TestSpecHistoryValue: the outcome-list history matches the explicit
// shift-register semantics (newest outcome in bit 0, older above).
func TestSpecHistoryValue(t *testing.T) {
	h := NewSpecHistory(4)
	if h.Value() != 0 {
		t.Fatalf("empty history reads %#x, want 0", h.Value())
	}
	// Outcomes T, N, T, T, N (oldest to newest) with k=4 keep the last
	// four: N T T N newest-first = bits 0b0110... newest N -> bit0=0,
	// then T,T -> bits 1,2, then N -> bit 3.
	for _, taken := range []bool{true, false, true, true, false} {
		h.Shift(taken)
	}
	if got := h.Value(); got != 0b0110 {
		t.Fatalf("history value = %#b, want 0b0110", got)
	}
	h.Reset()
	if h.Value() != 0 {
		t.Fatalf("reset history reads %#x", h.Value())
	}
}

// TestGSelectDegeneratesToHistory: with k >= n the gselect index is
// the low n history bits — the regime where the paper observes
// gselect degrading (few or no address bits reach the table).
func TestGSelectDegeneratesToHistory(t *testing.T) {
	r := rng.NewXoshiro256(5)
	for i := 0; i < 1000; i++ {
		addr, hist := r.Uint64(), r.Uint64()
		if got, want := GSelectIndex(addr, hist, 8, 12), hist&0xFF; got != want {
			t.Fatalf("gselect k>n: got %#x want %#x", got, want)
		}
	}
}

// TestGShareShortHistoryAlignment: footnote 1 — a k-bit history with
// k < n lands in the HIGH k bits of the index, not the low ones.
func TestGShareShortHistoryAlignment(t *testing.T) {
	// n=8, k=3, addr=0: index must be hist << 5.
	for hist := uint64(0); hist < 8; hist++ {
		if got, want := GShareIndex(0, hist, 8, 3), hist<<5; got != want {
			t.Fatalf("gshare alignment: hist=%#x got %#x want %#x", hist, got, want)
		}
	}
	// k > n folds every history bit in: changing any single history
	// bit must change the index.
	base := GShareIndex(0, 0, 6, 14)
	for j := uint(0); j < 14; j++ {
		if GShareIndex(0, uint64(1)<<j, 6, 14) == base {
			t.Fatalf("gshare fold: history bit %d does not reach the index", j)
		}
	}
}
