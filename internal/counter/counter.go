// Package counter implements the saturating-counter automata that form
// the individual cells of every predictor table in this repository.
//
// The paper evaluates 1-bit and 2-bit predictors (Table 2 and all
// figures). Both are special cases of the n-bit up/down saturating
// counter provided here: the counter counts up on a taken branch and
// down on a not-taken branch, saturating at its extremes, and predicts
// taken whenever it is in the upper half of its range.
package counter

import "fmt"

// Counter is an n-bit up/down saturating counter. The zero value is a
// 0-valued counter of width 0 and is not usable; construct counters
// with New or use the Table type which sizes its cells once.
//
// Counter is a value type: copying it copies the automaton state.
type Counter struct {
	value uint8 // current state, in [0, max]
	max   uint8 // saturation point: 2^bits - 1
}

// New returns a Counter with the given width in bits, initialised to
// state init. Width must be between 1 and 8; init must be within range.
func New(bits uint, init uint8) Counter {
	if bits < 1 || bits > 8 {
		panic(fmt.Sprintf("counter: width %d bits out of range [1,8]", bits))
	}
	max := uint8(1)<<bits - 1
	if init > max {
		panic(fmt.Sprintf("counter: init %d exceeds max %d", init, max))
	}
	return Counter{value: init, max: max}
}

// WeaklyTaken returns the canonical initial state for a counter of the
// given width: the lowest state that still predicts taken (e.g. 10 for
// a 2-bit counter, 1 for a 1-bit counter).
func WeaklyTaken(bits uint) Counter {
	c := New(bits, 0)
	c.value = c.max/2 + 1
	return c
}

// WeaklyNotTaken returns the highest state that predicts not taken
// (e.g. 01 for a 2-bit counter, 0 for a 1-bit counter).
func WeaklyNotTaken(bits uint) Counter {
	c := New(bits, 0)
	c.value = c.max / 2
	return c
}

// Predict reports the direction this counter currently predicts:
// true (taken) when the counter is in the upper half of its range.
func (c Counter) Predict() bool {
	return c.value > c.max/2
}

// Update returns the counter state after observing a branch outcome:
// incremented (saturating) if taken, decremented (saturating) if not.
func (c Counter) Update(taken bool) Counter {
	if taken {
		if c.value < c.max {
			c.value++
		}
	} else {
		if c.value > 0 {
			c.value--
		}
	}
	return c
}

// Value returns the raw automaton state, in [0, Max()].
func (c Counter) Value() uint8 { return c.value }

// Max returns the saturation point (2^bits - 1).
func (c Counter) Max() uint8 { return c.max }

// Bits returns the counter width in bits. A zero-value Counter reports 0.
func (c Counter) Bits() uint {
	b := uint(0)
	for m := c.max; m != 0; m >>= 1 {
		b++
	}
	return b
}

// Strong reports whether the counter is saturated in its current
// direction (i.e. another agreeing outcome would not change the state).
func (c Counter) Strong() bool {
	return c.value == 0 || c.value == c.max
}

// String returns a compact human-readable state such as "2/3(T)".
func (c Counter) String() string {
	dir := "N"
	if c.Predict() {
		dir = "T"
	}
	return fmt.Sprintf("%d/%d(%s)", c.value, c.max, dir)
}

// Table is a flat array of identically-sized saturating counters. It is
// the storage substrate shared by the bimodal, gshare, gselect and
// per-bank gskewed predictor tables.
type Table struct {
	cells []uint8
	max   uint8
	mid   uint8 // predict taken when value > mid
}

// NewTable returns a table of n counters, each bits wide, all
// initialised to the weakly-taken state. The paper's simulations start
// from empty tables; weakly-taken is the conventional neutral start and
// matches the "always taken" static fallback used in Figure 8.
func NewTable(n int, bits uint) *Table {
	if n <= 0 {
		panic("counter: table size must be positive")
	}
	proto := WeaklyTaken(bits)
	cells := make([]uint8, n)
	for i := range cells {
		cells[i] = proto.Value()
	}
	return &Table{cells: cells, max: proto.Max(), mid: proto.Max() / 2}
}

// Len returns the number of counters in the table.
func (t *Table) Len() int { return len(t.cells) }

// Bits returns the width of each counter.
func (t *Table) Bits() uint {
	b := uint(0)
	for m := t.max; m != 0; m >>= 1 {
		b++
	}
	return b
}

// Predict reports the direction predicted by counter i.
func (t *Table) Predict(i uint64) bool {
	return t.cells[i] > t.mid
}

// Update trains counter i with the branch outcome.
func (t *Table) Update(i uint64, taken bool) {
	v := t.cells[i]
	if taken {
		if v < t.max {
			t.cells[i] = v + 1
		}
	} else {
		if v > 0 {
			t.cells[i] = v - 1
		}
	}
}

// Value returns the raw state of counter i.
func (t *Table) Value(i uint64) uint8 { return t.cells[i] }

// Cells exposes the table's backing state array. The compiled kernel
// layer (internal/kernel) reads and writes predictor state through it
// directly, so a kernel-driven run and an interface-driven run leave
// the table bit-identical. Mutations must keep every cell within the
// counter range.
func (t *Table) Cells() []uint8 { return t.cells }

// Set overwrites the raw state of counter i. It panics if v exceeds the
// counter range. Set exists for tests and for warm-start experiments.
func (t *Table) Set(i uint64, v uint8) {
	if v > t.max {
		panic(fmt.Sprintf("counter: value %d exceeds max %d", v, t.max))
	}
	t.cells[i] = v
}

// Reset returns every counter to the weakly-taken state.
func (t *Table) Reset() {
	for i := range t.cells {
		t.cells[i] = t.mid + 1
	}
}

// StorageBits returns the total number of predictor storage bits held
// by the table (cells x width). This is the cost metric the paper uses
// when comparing organisations ("half the storage requirements").
func (t *Table) StorageBits() int {
	return t.Len() * int(t.Bits())
}
