package counter

import (
	"testing"
	"testing/quick"

	"gskew/internal/rng"
)

func TestSplitTableEquivalentToTwoBitWhenPrivate(t *testing.T) {
	// With groupShift 0 (private hysteresis), SplitTable must be
	// bit-for-bit equivalent to a 2-bit Table under any update stream.
	f := func(seed uint64, n16 uint16) bool {
		r := rng.NewXoshiro256(seed)
		steps := int(n16%2000) + 1
		full := NewTable(16, 2)
		split := NewSplitTable(16, 0)
		for s := 0; s < steps; s++ {
			i := r.Uint64n(16)
			if full.Predict(i) != split.Predict(i) {
				return false
			}
			if full.Value(i) != split.Value(i) {
				return false
			}
			taken := r.Bool(0.5)
			full.Update(i, taken)
			split.Update(i, taken)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSplitTableTransitions(t *testing.T) {
	// Walk the 2-bit state machine through the split encoding.
	st := NewSplitTable(4, 0)
	if st.Value(0) != 2 {
		t.Fatalf("initial state = %d, want 2 (weakly taken)", st.Value(0))
	}
	st.Update(0, true)
	if st.Value(0) != 3 {
		t.Fatalf("after taken: %d, want 3", st.Value(0))
	}
	st.Update(0, false)
	if st.Value(0) != 2 {
		t.Fatalf("after not-taken from strong: %d, want 2", st.Value(0))
	}
	st.Update(0, false)
	if st.Value(0) != 1 {
		t.Fatalf("flip to weak not-taken: %d, want 1", st.Value(0))
	}
	st.Update(0, false)
	if st.Value(0) != 0 {
		t.Fatalf("strengthen not-taken: %d, want 0", st.Value(0))
	}
}

func TestSplitTableSharingInterference(t *testing.T) {
	// Entries 0 and 1 share a hysteresis bit with groupShift 1:
	// strengthening entry 0 also strengthens entry 1's state.
	st := NewSplitTable(4, 1)
	st.Update(0, true) // sets the shared hysteresis bit
	if st.Value(1) != 3 {
		t.Errorf("neighbour state = %d, want 3 (shared hysteresis set)", st.Value(1))
	}
	// Entries 2 and 3 are a different group: unaffected.
	if st.Value(2) != 2 {
		t.Errorf("other group state = %d, want 2", st.Value(2))
	}
	// Prediction bits remain private.
	st.Update(0, false) // weakens shared hysteresis
	st.Update(0, false) // flips entry 0's prediction
	if st.Predict(0) {
		t.Error("entry 0 prediction should have flipped")
	}
	if !st.Predict(1) {
		t.Error("entry 1 prediction must remain private (taken)")
	}
}

func TestSplitTableStorage(t *testing.T) {
	cases := []struct {
		n     int
		shift uint
		want  int
	}{
		{1024, 0, 2048}, // private: 2 bits/entry
		{1024, 1, 1536}, // 1.5 bits/entry
		{1024, 2, 1280}, // 1.25 bits/entry
		{1000, 3, 1125}, // non-power-of-two entries round groups up
	}
	for _, c := range cases {
		st := NewSplitTable(c.n, c.shift)
		if got := st.StorageBits(); got != c.want {
			t.Errorf("StorageBits(n=%d, shift=%d) = %d, want %d", c.n, c.shift, got, c.want)
		}
		if st.GroupSize() != 1<<c.shift {
			t.Errorf("GroupSize = %d", st.GroupSize())
		}
	}
}

func TestSplitTableReset(t *testing.T) {
	st := NewSplitTable(8, 1)
	st.Update(3, false)
	st.Update(3, false)
	st.Reset()
	for i := uint64(0); i < 8; i++ {
		if st.Value(i) != 2 {
			t.Fatalf("entry %d state %d after Reset, want 2", i, st.Value(i))
		}
	}
}

func TestSplitTablePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSplitTable(0, 0) },
		func() { NewSplitTable(8, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad SplitTable config accepted")
				}
			}()
			fn()
		}()
	}
}

func TestSplitTableLen(t *testing.T) {
	if NewSplitTable(128, 2).Len() != 128 {
		t.Error("Len wrong")
	}
}

func BenchmarkSplitTableUpdate(b *testing.B) {
	st := NewSplitTable(1<<14, 2)
	for i := 0; i < b.N; i++ {
		st.Update(uint64(i)&(1<<14-1), i&3 != 0)
	}
}
