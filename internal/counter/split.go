package counter

import "fmt"

// Bank is the storage interface predictor banks are built on. Table
// (full n-bit counters) and SplitTable (shared-hysteresis encoding)
// both implement it.
type Bank interface {
	// Predict reports the direction stored at entry i.
	Predict(i uint64) bool
	// Update trains entry i with a branch outcome.
	Update(i uint64, taken bool)
	// Len returns the number of entries.
	Len() int
	// StorageBits returns the total storage cost in bits.
	StorageBits() int
	// Reset restores the initial state.
	Reset()
}

var (
	_ Bank = (*Table)(nil)
	_ Bank = (*SplitTable)(nil)
)

// SplitTable answers the paper's "distributed predictor encodings"
// future-work question with the encoding later adopted by the Alpha
// EV8 predictor: each entry has a private prediction bit, while the
// hysteresis bit is SHARED by a group of 2^groupShift neighbouring
// entries. A 2-bit automaton therefore costs 1 + 1/2^groupShift bits
// per entry instead of 2.
//
// Decomposing the classic 2-bit counter into (prediction p, hysteresis
// h) with the encoding 0=(NT,strong) 1=(NT,weak) 2=(T,weak)
// 3=(T,strong), the transition function is
//
//	outcome == p : h = strong
//	outcome != p : if h == strong { h = weak } else { p = outcome }
//
// With groupShift == 0 (private hysteresis) SplitTable is exactly
// equivalent to a 2-bit Table; sharing introduces mild hysteresis
// interference in exchange for the storage saving.
type SplitTable struct {
	pred       []bool
	hyst       []bool
	groupShift uint
}

// NewSplitTable returns a table of n entries whose hysteresis bits are
// shared by groups of 2^groupShift entries. All entries start
// weakly-taken (prediction taken, hysteresis weak), matching
// NewTable's initial state.
func NewSplitTable(n int, groupShift uint) *SplitTable {
	if n <= 0 {
		panic("counter: table size must be positive")
	}
	if groupShift > 8 {
		panic(fmt.Sprintf("counter: hysteresis group shift %d out of range [0,8]", groupShift))
	}
	groups := (n + (1 << groupShift) - 1) >> groupShift
	t := &SplitTable{
		pred:       make([]bool, n),
		hyst:       make([]bool, groups),
		groupShift: groupShift,
	}
	t.Reset()
	return t
}

// Len implements Bank.
func (t *SplitTable) Len() int { return len(t.pred) }

// GroupSize returns how many entries share one hysteresis bit.
func (t *SplitTable) GroupSize() int { return 1 << t.groupShift }

// Predict implements Bank.
func (t *SplitTable) Predict(i uint64) bool { return t.pred[i] }

// Update implements Bank.
func (t *SplitTable) Update(i uint64, taken bool) {
	g := i >> t.groupShift
	if t.pred[i] == taken {
		t.hyst[g] = true
		return
	}
	if t.hyst[g] {
		t.hyst[g] = false
		return
	}
	t.pred[i] = taken
}

// Value returns the equivalent 2-bit counter state of entry i
// (0..3), for diagnostics and equivalence tests.
func (t *SplitTable) Value(i uint64) uint8 {
	g := i >> t.groupShift
	switch {
	case t.pred[i] && t.hyst[g]:
		return 3
	case t.pred[i]:
		return 2
	case t.hyst[g]:
		return 0
	default:
		return 1
	}
}

// StorageBits implements Bank: one prediction bit per entry plus one
// hysteresis bit per group.
func (t *SplitTable) StorageBits() int { return len(t.pred) + len(t.hyst) }

// Reset implements Bank: every entry returns to weakly-taken.
func (t *SplitTable) Reset() {
	for i := range t.pred {
		t.pred[i] = true
	}
	for i := range t.hyst {
		t.hyst[i] = false
	}
}
