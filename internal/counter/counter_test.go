package counter

import (
	"testing"
	"testing/quick"
)

func TestNewPanics(t *testing.T) {
	cases := []struct {
		name string
		bits uint
		init uint8
	}{
		{"zero bits", 0, 0},
		{"nine bits", 9, 0},
		{"init too large 1bit", 1, 2},
		{"init too large 2bit", 2, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", tc.bits, tc.init)
				}
			}()
			New(tc.bits, tc.init)
		})
	}
}

func TestOneBitAutomaton(t *testing.T) {
	// A 1-bit predictor simply remembers the last outcome.
	c := New(1, 0)
	if c.Predict() {
		t.Error("state 0 should predict not-taken")
	}
	c = c.Update(true)
	if !c.Predict() {
		t.Error("after taken, should predict taken")
	}
	c = c.Update(true)
	if !c.Predict() || c.Value() != 1 {
		t.Error("1-bit counter must saturate at 1")
	}
	c = c.Update(false)
	if c.Predict() || c.Value() != 0 {
		t.Error("after not-taken, should predict not-taken")
	}
	c = c.Update(false)
	if c.Value() != 0 {
		t.Error("1-bit counter must saturate at 0")
	}
}

func TestTwoBitStateMachine(t *testing.T) {
	// Exhaustive transition table for the classic 2-bit counter:
	// states 0 (strong NT), 1 (weak NT), 2 (weak T), 3 (strong T).
	type tr struct {
		from  uint8
		taken bool
		to    uint8
	}
	trs := []tr{
		{0, false, 0}, {0, true, 1},
		{1, false, 0}, {1, true, 2},
		{2, false, 1}, {2, true, 3},
		{3, false, 2}, {3, true, 3},
	}
	for _, x := range trs {
		c := New(2, x.from)
		if got := c.Update(x.taken).Value(); got != x.to {
			t.Errorf("2-bit: %d --taken=%v--> %d, want %d", x.from, x.taken, got, x.to)
		}
	}
	for s := uint8(0); s < 4; s++ {
		want := s >= 2
		if got := New(2, s).Predict(); got != want {
			t.Errorf("2-bit state %d predicts %v, want %v", s, got, want)
		}
	}
}

func TestTwoBitHysteresis(t *testing.T) {
	// The defining property vs a 1-bit counter: a single anomalous
	// outcome does not flip a strongly-trained prediction. This is the
	// loop-branch behaviour the paper credits for 2-bit superiority.
	c := WeaklyTaken(2)
	for i := 0; i < 10; i++ {
		c = c.Update(true)
	}
	c = c.Update(false) // loop exit
	if !c.Predict() {
		t.Error("2-bit counter flipped after one not-taken; hysteresis broken")
	}
	c = c.Update(false)
	if c.Predict() {
		t.Error("two consecutive not-taken should flip the prediction")
	}
}

func TestWeakInitialStates(t *testing.T) {
	for bits := uint(1); bits <= 8; bits++ {
		wt := WeaklyTaken(bits)
		if !wt.Predict() {
			t.Errorf("WeaklyTaken(%d) predicts not-taken", bits)
		}
		if wt.Value() > 0 && New(bits, wt.Value()-1).Predict() {
			t.Errorf("WeaklyTaken(%d) is not the lowest taken state", bits)
		}
		wn := WeaklyNotTaken(bits)
		if wn.Predict() {
			t.Errorf("WeaklyNotTaken(%d) predicts taken", bits)
		}
		if wn.Value() < wn.Max() && !New(bits, wn.Value()+1).Predict() {
			t.Errorf("WeaklyNotTaken(%d) is not the highest not-taken state", bits)
		}
	}
}

func TestSaturationInvariant(t *testing.T) {
	// Property: the state always stays within [0, max] regardless of
	// the update sequence.
	f := func(bits8 uint8, seq []bool) bool {
		bits := uint(bits8%8) + 1
		c := WeaklyTaken(bits)
		for _, taken := range seq {
			c = c.Update(taken)
			if c.Value() > c.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMonotonicTraining(t *testing.T) {
	// Property: after max consecutive agreeing outcomes, the counter is
	// saturated and predicts that direction.
	for bits := uint(1); bits <= 8; bits++ {
		c := WeaklyNotTaken(bits)
		for i := 0; i <= int(c.Max()); i++ {
			c = c.Update(true)
		}
		if !c.Predict() || !c.Strong() || c.Value() != c.Max() {
			t.Errorf("bits=%d: not saturated taken after %d taken outcomes: %v", bits, int(c.Max())+1, c)
		}
		for i := 0; i <= int(c.Max()); i++ {
			c = c.Update(false)
		}
		if c.Predict() || !c.Strong() || c.Value() != 0 {
			t.Errorf("bits=%d: not saturated not-taken: %v", bits, c)
		}
	}
}

func TestBits(t *testing.T) {
	for bits := uint(1); bits <= 8; bits++ {
		if got := New(bits, 0).Bits(); got != bits {
			t.Errorf("New(%d).Bits() = %d", bits, got)
		}
	}
	var zero Counter
	if zero.Bits() != 0 {
		t.Errorf("zero Counter Bits() = %d, want 0", zero.Bits())
	}
}

func TestString(t *testing.T) {
	if got := New(2, 3).String(); got != "3/3(T)" {
		t.Errorf("String() = %q", got)
	}
	if got := New(2, 1).String(); got != "1/3(N)" {
		t.Errorf("String() = %q", got)
	}
}

func TestTableBasics(t *testing.T) {
	tab := NewTable(16, 2)
	if tab.Len() != 16 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.Bits() != 2 {
		t.Fatalf("Bits = %d", tab.Bits())
	}
	if tab.StorageBits() != 32 {
		t.Fatalf("StorageBits = %d", tab.StorageBits())
	}
	// All cells start weakly taken.
	for i := uint64(0); i < 16; i++ {
		if !tab.Predict(i) {
			t.Fatalf("cell %d does not start weakly-taken", i)
		}
		if tab.Value(i) != 2 {
			t.Fatalf("cell %d starts at %d, want 2", i, tab.Value(i))
		}
	}
}

func TestTableUpdateIsolation(t *testing.T) {
	tab := NewTable(8, 2)
	tab.Update(3, false)
	tab.Update(3, false)
	tab.Update(3, false)
	if tab.Predict(3) {
		t.Error("cell 3 should have been trained not-taken")
	}
	for i := uint64(0); i < 8; i++ {
		if i != 3 && !tab.Predict(i) {
			t.Errorf("cell %d was perturbed by updates to cell 3", i)
		}
	}
}

func TestTableMatchesScalarCounter(t *testing.T) {
	// Property: Table cell behaviour is identical to the scalar Counter.
	f := func(seq []bool, bits8 uint8) bool {
		bits := uint(bits8%8) + 1
		tab := NewTable(4, bits)
		c := WeaklyTaken(bits)
		for _, taken := range seq {
			if tab.Predict(1) != c.Predict() {
				return false
			}
			tab.Update(1, taken)
			c = c.Update(taken)
		}
		return tab.Value(1) == c.Value()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableSetAndReset(t *testing.T) {
	tab := NewTable(4, 2)
	tab.Set(0, 0)
	if tab.Predict(0) {
		t.Error("Set(0,0) should force not-taken")
	}
	defer func() {
		if recover() == nil {
			t.Error("Set with out-of-range value did not panic")
		}
	}()
	tab.Reset()
	if !tab.Predict(0) || tab.Value(0) != 2 {
		t.Error("Reset did not restore weakly-taken")
	}
	tab.Set(0, 4) // panics
}

func TestNewTablePanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTable(%d, 2) did not panic", n)
				}
			}()
			NewTable(n, 2)
		}()
	}
}

func BenchmarkTableUpdate(b *testing.B) {
	tab := NewTable(1<<14, 2)
	for i := 0; i < b.N; i++ {
		idx := uint64(i) & (1<<14 - 1)
		tab.Update(idx, i&3 != 0)
	}
}

func BenchmarkTablePredict(b *testing.B) {
	tab := NewTable(1<<14, 2)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = tab.Predict(uint64(i) & (1<<14 - 1))
	}
	_ = sink
}
