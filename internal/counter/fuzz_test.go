package counter_test

import (
	"testing"

	"gskew/internal/counter"
	"gskew/internal/refmodel"
)

// FuzzCounterAgainstSpec runs an arbitrary outcome sequence through the
// optimized Counter and the paper's spec automaton side by side. The
// outcome sequence is the fuzz input's bytes, one branch per bit.
func FuzzCounterAgainstSpec(f *testing.F) {
	f.Add(uint(2), []byte{})
	f.Add(uint(1), []byte{0xFF, 0x00})
	f.Add(uint(3), []byte{0xAA, 0x55, 0xF0})
	f.Add(uint(8), []byte{0x01, 0x80, 0xFF, 0xFF, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, bits uint, outcomes []byte) {
		bits = 1 + bits%8
		c := counter.WeaklyTaken(bits)
		spec := refmodel.NewSpecCounter(bits)
		if int(c.Value()) != spec.State || int(c.Max()) != spec.Max {
			t.Fatalf("bits=%d: initial state %d/%d, spec %d/%d",
				bits, c.Value(), c.Max(), spec.State, spec.Max)
		}
		for i, b := range outcomes {
			for j := 0; j < 8; j++ {
				taken := b&(1<<j) != 0
				if c.Predict() != spec.Predict() {
					t.Fatalf("bits=%d step %d.%d: predict %v, spec %v (state %d vs %d)",
						bits, i, j, c.Predict(), spec.Predict(), c.Value(), spec.State)
				}
				c = c.Update(taken)
				spec = spec.Update(taken)
				if !spec.InBounds() {
					t.Fatalf("bits=%d: spec escaped bounds: %d", bits, spec.State)
				}
				if c.Value() > c.Max() {
					t.Fatalf("bits=%d: counter escaped [0,%d]: %d", bits, c.Max(), c.Value())
				}
				if int(c.Value()) != spec.State {
					t.Fatalf("bits=%d step %d.%d taken=%v: state %d, spec %d",
						bits, i, j, taken, c.Value(), spec.State)
				}
			}
		}
	})
}

// FuzzTableAgainstCounter checks that a Table cell behaves exactly like
// a standalone Counter under an arbitrary interleaving of updates to
// two cells (catching cross-cell state leaks).
func FuzzTableAgainstCounter(f *testing.F) {
	f.Add(uint(2), uint64(0), uint64(1), []byte{0xC3})
	f.Add(uint(4), uint64(7), uint64(7), []byte{0x00, 0xFF})
	f.Fuzz(func(t *testing.T, bits uint, i, j uint64, outcomes []byte) {
		bits = 1 + bits%8
		const size = 16
		i, j = i%size, j%size
		tab := counter.NewTable(size, bits)
		ci := counter.WeaklyTaken(bits)
		cj := counter.WeaklyTaken(bits)
		for step, b := range outcomes {
			taken := b&1 != 0
			if b&2 != 0 {
				tab.Update(i, taken)
				ci = ci.Update(taken)
				if i == j {
					cj = ci
				}
			} else {
				tab.Update(j, taken)
				cj = cj.Update(taken)
				if i == j {
					ci = cj
				}
			}
			if tab.Value(i) != ci.Value() || tab.Predict(i) != ci.Predict() {
				t.Fatalf("bits=%d step %d: cell %d state %d, counter %d", bits, step, i, tab.Value(i), ci.Value())
			}
			if tab.Value(j) != cj.Value() || tab.Predict(j) != cj.Predict() {
				t.Fatalf("bits=%d step %d: cell %d state %d, counter %d", bits, step, j, tab.Value(j), cj.Value())
			}
		}
	})
}
