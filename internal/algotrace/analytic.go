package algotrace

import (
	"fmt"
	"math"

	"gskew/internal/rng"
)

// Analytic side model for the MP/KMP workloads, after the
// branch-prediction analysis of Morris-Pratt and Knuth-Morris-Pratt by
// Nicaud, Pivoteau and Vialette (arXiv 2503.13694). Their central
// construction: when the text is drawn iid, the matcher's automaton
// state j together with the per-site predictor states forms a finite
// Markov chain, so the expected steady-state misprediction rate of a
// first-order (per-site saturating counter) predictor has a closed
// form — the stationary expectation of misses per character over the
// product chain. This file re-derives that construction independently:
// it shares no code with the instrumented matcher (failure tables are
// recomputed by brute force) or with internal/predictor (the counter
// automaton is re-transcribed from its definition). Simulating a
// recorded stream under private per-site counters must land on the
// rate computed here — an external oracle for the whole
// record→encode→decode→simulate pipeline.
//
// The chain. At the top of the matcher's outer loop the automaton
// state is j in [0, m-1]. Consuming one text character c executes a
// deterministic word of branch events at the guard/cmp/match sites
// (the outer site fires exactly once per character and is always
// taken in steady state, so it adds one branch and no misses). The
// composite chain state is (j, guard counter, cmp counter, match
// counter); each character moves the chain one step and yields a
// known number of conditional branches and — given the counter states
// — mispredictions. The stationary distribution is computed by power
// iteration on the lazy chain P' = (I+P)/2, which preserves the
// stationary distribution while guaranteeing aperiodicity; iteration
// starts from the matcher's true initial state (j=0, counters weakly
// taken), so reducible corner cases converge to the behaviour a real
// run exhibits. By renewal-reward, the expected miss rate per
// conditional branch is E[misses per char] / E[branches per char].

// Analytic is the side model's output for one MP/KMP spec.
type Analytic struct {
	// MissRate is the expected steady-state mispredictions per
	// conditional branch under per-site saturating counters.
	MissRate float64
	// BranchesPerChar is the expected conditional branches executed
	// per text character (including the outer-loop branch).
	BranchesPerChar float64
	// MissesPerChar is the expected mispredictions per text character.
	MissesPerChar float64
	// States is the size of the product chain.
	States int
	// Iterations is how many lazy power-iteration steps convergence
	// took.
	Iterations int
}

// naiveWeakFail computes the MP failure table by brute force: wf[j]
// is the largest k < j with pat[:k] == pat[j-k:j] (so wf[0] = -1).
func naiveWeakFail(pat []byte) []int {
	m := len(pat)
	wf := make([]int, m+1)
	wf[0] = -1
	for j := 1; j <= m; j++ {
		wf[j] = 0
		for k := j - 1; k >= 1; k-- {
			if isBorder(pat, j, k) {
				wf[j] = k
				break
			}
		}
	}
	return wf
}

// naiveStrongFail computes the KMP failure table by brute force:
// kf[j] is the largest border k of pat[:j] with pat[k] != pat[j]
// (walking the full border chain, j itself included conceptually via
// k < j), or -1 when no such border exists.
func naiveStrongFail(pat []byte) []int {
	m := len(pat)
	kf := make([]int, m)
	for j := 0; j < m; j++ {
		kf[j] = -1
		for k := j - 1; k >= 0; k-- {
			if isBorder(pat, j, k) && pat[k] != pat[j] {
				kf[j] = k
				break
			}
		}
	}
	return kf
}

// isBorder reports whether pat[:k] is a border of pat[:j] (k < j):
// pat[:k] == pat[j-k:j].
func isBorder(pat []byte, j, k int) bool {
	for i := 0; i < k; i++ {
		if pat[i] != pat[j-k+i] {
			return false
		}
	}
	return true
}

// The sites the chain models (the outer site is handled in closed
// form).
const (
	siteGuard = iota
	siteCmp
	siteMatch
	numModelSites
)

type modelEvent struct {
	site  int
	taken bool
}

// matchWord replays the matcher's inner loop for one character from
// automaton state j, returning the branch events executed and the
// next state. This mirrors recordMatch's control flow but is written
// against the brute-force failure tables.
func matchWord(j int, c byte, pat []byte, loopFail []int, restart int) ([]modelEvent, int) {
	m := len(pat)
	var events []modelEvent
	jj := j
	for {
		guardTaken := jj >= 0
		events = append(events, modelEvent{siteGuard, guardTaken})
		if !guardTaken {
			break
		}
		cmpTaken := pat[jj] != c
		events = append(events, modelEvent{siteCmp, cmpTaken})
		if !cmpTaken {
			break
		}
		jj = loopFail[jj]
	}
	jj++
	matchTaken := jj == m
	events = append(events, modelEvent{siteMatch, matchTaken})
	if matchTaken {
		jj = restart
	}
	return events, jj
}

// ctrModel is the re-transcribed saturating-counter automaton: k-bit
// up/down counter predicting taken in the upper half of its range.
type ctrModel struct {
	max, mid, init int
}

func newCtrModel(bits uint) ctrModel {
	max := 1<<bits - 1
	return ctrModel{max: max, mid: max / 2, init: max/2 + 1}
}

func (c ctrModel) predict(v int) bool { return v > c.mid }

func (c ctrModel) update(v int, taken bool) int {
	if taken {
		if v < c.max {
			v++
		}
	} else if v > 0 {
		v--
	}
	return v
}

// AnalyzeMatch computes the expected steady-state misprediction rate
// of spec's matcher (mp or kmp only) under private per-site
// saturating counters of the given width. The pattern is regenerated
// from the spec's seed with the recorder's exact draw order, so the
// model analyzes the same program instance the recorder runs.
func AnalyzeMatch(spec Spec, ctrBits uint) (Analytic, error) {
	t := spec.Normalize()
	if err := t.Validate(); err != nil {
		return Analytic{}, err
	}
	if t.Name != "mp" && t.Name != "kmp" {
		return Analytic{}, fmt.Errorf("algotrace: analytic model covers mp and kmp, not %q", t.Name)
	}
	if ctrBits < 1 || ctrBits > 4 {
		return Analytic{}, fmt.Errorf("algotrace: analytic counter width %d out of range [1,4]", ctrBits)
	}

	// The recorder draws the pattern first; only the text (whose
	// distribution we model instead of sampling) follows.
	pat := genPattern(rng.NewXoshiro256(t.Seed), t.M, t.Sigma, t.Pat)
	m := len(pat)
	wf := naiveWeakFail(pat)
	loopFail := wf[:m]
	if t.Name == "kmp" {
		loopFail = naiveStrongFail(pat)
	}
	restart := wf[m]

	// Character distribution.
	probs := make([]float64, t.Sigma)
	if t.Dist == "bern" {
		probs[0] = t.P
		probs[1] = 1 - t.P
	} else {
		for c := range probs {
			probs[c] = 1.0 / float64(t.Sigma)
		}
	}

	// Precompute the deterministic branch word per (state, char).
	words := make([][]modelEvent, m*t.Sigma)
	nexts := make([]int, m*t.Sigma)
	for j := 0; j < m; j++ {
		for c := 0; c < t.Sigma; c++ {
			w, nj := matchWord(j, byte(c), pat, loopFail, restart)
			words[j*t.Sigma+c] = w
			nexts[j*t.Sigma+c] = nj
		}
	}

	// Product chain over (j, guard, cmp, match) counter states.
	ctr := newCtrModel(ctrBits)
	S := ctr.max + 1
	nStates := m * S * S * S
	pack := func(j, g, cm, mt int) int { return ((j*S+g)*S+cm)*S + mt }

	type edge struct {
		next            int
		prob            float64
		misses, branches float64
	}
	edges := make([][]edge, nStates)
	for j := 0; j < m; j++ {
		for g := 0; g < S; g++ {
			for cm := 0; cm < S; cm++ {
				for mt := 0; mt < S; mt++ {
					from := pack(j, g, cm, mt)
					es := make([]edge, 0, t.Sigma)
					for c := 0; c < t.Sigma; c++ {
						if probs[c] == 0 {
							continue
						}
						ctrs := [numModelSites]int{g, cm, mt}
						misses := 0
						w := words[j*t.Sigma+c]
						for _, ev := range w {
							if ctr.predict(ctrs[ev.site]) != ev.taken {
								misses++
							}
							ctrs[ev.site] = ctr.update(ctrs[ev.site], ev.taken)
						}
						es = append(es, edge{
							next:    pack(nexts[j*t.Sigma+c], ctrs[siteGuard], ctrs[siteCmp], ctrs[siteMatch]),
							prob:    probs[c],
							misses:  float64(misses),
							branches: float64(len(w)) + 1, // + the outer-loop branch
						})
					}
					edges[from] = es
				}
			}
		}
	}

	// Stationary distribution by lazy power iteration from the true
	// initial state.
	pi := make([]float64, nStates)
	pi[pack(0, ctr.init, ctr.init, ctr.init)] = 1
	next := make([]float64, nStates)
	const (
		tol      = 1e-13
		maxIters = 200000
	)
	iters := 0
	for ; iters < maxIters; iters++ {
		for i := range next {
			next[i] = 0.5 * pi[i]
		}
		for from, es := range edges {
			if pi[from] == 0 {
				continue
			}
			w := 0.5 * pi[from]
			for _, e := range es {
				next[e.next] += w * e.prob
			}
		}
		delta := 0.0
		for i := range next {
			delta += math.Abs(next[i] - pi[i])
		}
		pi, next = next, pi
		if delta < tol {
			break
		}
	}

	var missesPerChar, branchesPerChar float64
	for from, es := range edges {
		if pi[from] == 0 {
			continue
		}
		for _, e := range es {
			missesPerChar += pi[from] * e.prob * e.misses
			branchesPerChar += pi[from] * e.prob * e.branches
		}
	}
	return Analytic{
		MissRate:        missesPerChar / branchesPerChar,
		BranchesPerChar: branchesPerChar,
		MissesPerChar:   missesPerChar,
		States:          nStates,
		Iterations:      iters,
	}, nil
}

// ClosedFormIIDMissRate is the classical closed form for a k-bit
// saturating counter fed an iid Bernoulli(p) taken stream: the
// counter is a birth-death chain with stationary weights (p/q)^s, and
// the miss rate is the stationary probability of disagreeing with the
// outcome. For 1 bit this reduces to 2pq/(p+q) = 2pq; the product
// chain must reproduce it whenever a site's outcomes are iid (e.g.
// the cmp site of an m=1 pattern), which the tests cross-check.
func ClosedFormIIDMissRate(bits uint, p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	q := 1 - p
	max := 1<<bits - 1
	mid := max / 2
	ratio := p / q
	weight := 1.0
	total := 0.0
	miss := 0.0
	for s := 0; s <= max; s++ {
		total += weight
		if s <= mid {
			miss += weight * p // predicts not taken, outcome taken
		} else {
			miss += weight * q // predicts taken, outcome not taken
		}
		weight *= ratio
	}
	return miss / total
}
