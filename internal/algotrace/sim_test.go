package algotrace_test

// Integration properties of recorded real-algorithm streams against
// the simulation engine: segment-parallel simulation must be
// bit-identical to the serial run on recorded streams, for every
// predictor family the realwork experiment races. This lives in an
// external test package so algotrace itself keeps its tiny dependency
// surface (rng + trace only).

import (
	"testing"

	"gskew/internal/algotrace"
	"gskew/internal/predictor"
	"gskew/internal/sim"
	"gskew/internal/trace"
)

func TestRunSegmentedMatchesSerialOnRecordedStreams(t *testing.T) {
	streams := []string{
		"algo:mp,n=20000,m=6,seed=3",
		"algo:kmp,n=20000,m=6,pat=uni,seed=3",
		"algo:binsearch,n=1024,q=5000,seed=3",
		"algo:quick,n=2048,runs=2,seed=3",
		"algo:heap,n=2048,runs=2,seed=3",
	}
	preds := []string{
		"bimodal:n=4,ctr=2",
		"gshare:n=9,k=8,ctr=2",
		"gskewed:n=7,k=8,banks=3,ctr=2,policy=partial",
		"tage:n=5,k=20,kmin=4,tables=4,tag=8,ctr=3",
	}
	for _, s := range streams {
		spec, err := algotrace.ParseSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		branches, err := algotrace.Record(spec)
		if err != nil {
			t.Fatal(err)
		}
		ps := make([]predictor.Predictor, len(preds))
		for i, p := range preds {
			ps[i] = predictor.MustParseSpec(p)
		}
		serial := make([]sim.Result, len(ps))
		for i, p := range ps {
			r, err := sim.RunBranches(branches, p, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			serial[i] = r
		}
		for _, segments := range []int{2, 7} {
			ps := make([]predictor.Predictor, len(preds))
			for i, p := range preds {
				ps[i] = predictor.MustParseSpec(p)
			}
			got, err := sim.RunSegmented(trace.NewSliceSource(branches), ps, sim.Options{Segments: segments})
			if err != nil {
				t.Fatalf("%s segments=%d: %v", s, segments, err)
			}
			for i := range ps {
				if got[i] != serial[i] {
					t.Errorf("%s pred=%s segments=%d: %+v != serial %+v",
						s, preds[i], segments, got[i], serial[i])
				}
			}
		}
	}
}
