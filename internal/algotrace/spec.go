package algotrace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec describes one recorded-algorithm workload in full: which
// algorithm runs, on how much input, and from which input
// distribution. The canonical string form mirrors predictor.Spec —
//
//	algo:<name>,key=value,...
//	algo:kmp,n=300000,m=8,sigma=2,dist=uniform,pat=rand,seed=1
//	algo:quick,n=4096,runs=16,sorted=0,seed=1
//
// with the name's keys in a fixed order, defaults explicit, and an
// exact parse/print round-trip: ParseSpec(s.String()) == s.Normalize().
// Because the inputs are drawn from the seeded internal/rng generators
// and the algorithms are deterministic, a Spec fully determines its
// recorded branch stream byte for byte.
type Spec struct {
	// Name is the algorithm: mp, kmp, binsearch, insertion, quick,
	// heap or scanmax.
	Name string
	// N is the main input size: text length in characters (mp/kmp),
	// array length (binsearch and the sorts), elements scanned per run
	// (scanmax). Key "n".
	N int
	// M is the pattern length (mp/kmp). Key "m".
	M int
	// Sigma is the alphabet size (mp/kmp). Key "sigma".
	Sigma int
	// Dist selects the mp/kmp text model: "uniform" (iid uniform over
	// the alphabet) or "bern" (iid binary with P(letter 0) = P; forces
	// sigma 2). Key "dist".
	Dist string
	// P is the Bernoulli parameter of dist=bern. Key "p".
	P float64
	// Pat selects the mp/kmp pattern shape: "rand" (drawn uniformly
	// from the alphabet), "uni" (aa...a, maximally periodic) or "alt"
	// (abab..., period two). Key "pat".
	Pat string
	// Queries is the binsearch probe count. Key "q".
	Queries int
	// Runs is how many independent input instances the sorts and
	// scanmax record back to back. Key "runs".
	Runs int
	// Sorted is the sortedness of the sorts' input arrays in [0,1]:
	// 1 leaves the ramp fully sorted, 0 applies n random swaps. Key
	// "sorted".
	Sorted float64
	// Seed drives every input generator. Key "seed" (0 normalizes to
	// the default 1 so the zero Spec is runnable).
	Seed uint64
}

// Prefix is the spec-grammar family prefix shared by every recorded
// algorithm workload.
const Prefix = "algo:"

// IsSpec reports whether a workload name is an algo spec (by prefix
// only; the spec may still fail to parse).
func IsSpec(name string) bool { return strings.HasPrefix(name, Prefix) }

// Names lists the algorithms the grammar accepts, in documentation
// order.
func Names() []string {
	return []string{"mp", "kmp", "binsearch", "insertion", "quick", "heap", "scanmax"}
}

// specKeys maps each algorithm to the parameter keys its grammar
// accepts, in canonical render order.
var specKeys = map[string][]string{
	"mp":        {"n", "m", "sigma", "dist", "p", "pat", "seed"},
	"kmp":       {"n", "m", "sigma", "dist", "p", "pat", "seed"},
	"binsearch": {"n", "q", "seed"},
	"insertion": {"n", "runs", "sorted", "seed"},
	"quick":     {"n", "runs", "sorted", "seed"},
	"heap":      {"n", "runs", "sorted", "seed"},
	"scanmax":   {"n", "runs", "seed"},
}

// AllowedKeys returns the parameter keys an algorithm's grammar
// accepts, sorted (empty for unknown names). Mirrors
// predictor.AllowedKeys for grammar-discovery surfaces.
func AllowedKeys(name string) []string {
	keys := append([]string(nil), specKeys[name]...)
	sort.Strings(keys)
	return keys
}

// Normalize returns the spec with per-algorithm defaults made
// explicit and irrelevant fields zeroed — the form String renders.
// Unknown names normalize to themselves. Normalize is idempotent.
func (s Spec) Normalize() Spec {
	t := s
	if t.Seed == 0 {
		t.Seed = 1
	}
	switch t.Name {
	case "mp", "kmp":
		if t.N == 0 {
			t.N = 300000
		}
		if t.M == 0 {
			t.M = 8
		}
		if t.Dist == "" {
			t.Dist = "uniform"
		}
		if t.Dist == "bern" {
			t.Sigma = 2
			if t.P == 0 {
				t.P = 0.5
			}
		} else {
			// P only parameterizes the Bernoulli model.
			t.P = 0
		}
		if t.Sigma == 0 {
			t.Sigma = 2
		}
		if t.Pat == "" {
			t.Pat = "rand"
		}
		t = Spec{Name: t.Name, N: t.N, M: t.M, Sigma: t.Sigma,
			Dist: t.Dist, P: t.P, Pat: t.Pat, Seed: t.Seed}
	case "binsearch":
		if t.N == 0 {
			t.N = 4096
		}
		if t.Queries == 0 {
			t.Queries = 30000
		}
		t = Spec{Name: t.Name, N: t.N, Queries: t.Queries, Seed: t.Seed}
	case "insertion", "quick", "heap":
		if t.N == 0 {
			if t.Name == "insertion" {
				t.N = 512 // quadratic: keep a run comparable to the others
			} else {
				t.N = 4096
			}
		}
		if t.Runs == 0 {
			t.Runs = 8
		}
		t = Spec{Name: t.Name, N: t.N, Runs: t.Runs, Sorted: t.Sorted, Seed: t.Seed}
	case "scanmax":
		if t.N == 0 {
			t.N = 65536
		}
		if t.Runs == 0 {
			t.Runs = 8
		}
		t = Spec{Name: t.Name, N: t.N, Runs: t.Runs, Seed: t.Seed}
	}
	return t
}

// Validate checks the numeric ranges the generators require. It is
// called by Record; ParseSpec stays syntactic (like predictor.Spec,
// where range errors surface at construction).
func (s Spec) Validate() error {
	t := s.Normalize()
	known := false
	for _, n := range Names() {
		if t.Name == n {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("algotrace: unknown algorithm %q (have %s)", t.Name, strings.Join(Names(), ", "))
	}
	if t.N < 1 || t.N > 1<<28 {
		return fmt.Errorf("algotrace: n=%d out of range [1, 2^28]", t.N)
	}
	switch t.Name {
	case "mp", "kmp":
		if t.M < 1 || t.M > 64 {
			return fmt.Errorf("algotrace: pattern length m=%d out of range [1,64]", t.M)
		}
		if t.M > t.N {
			return fmt.Errorf("algotrace: pattern length m=%d exceeds text length n=%d", t.M, t.N)
		}
		if t.Sigma < 2 || t.Sigma > 64 {
			return fmt.Errorf("algotrace: alphabet size sigma=%d out of range [2,64]", t.Sigma)
		}
		if t.Dist == "bern" && (t.P <= 0 || t.P >= 1) {
			return fmt.Errorf("algotrace: bernoulli p=%v out of range (0,1)", t.P)
		}
	case "binsearch":
		if t.Queries < 1 {
			return fmt.Errorf("algotrace: q=%d out of range [1,∞)", t.Queries)
		}
	case "insertion", "quick", "heap":
		if t.Runs < 1 {
			return fmt.Errorf("algotrace: runs=%d out of range [1,∞)", t.Runs)
		}
		if t.Sorted < 0 || t.Sorted > 1 {
			return fmt.Errorf("algotrace: sorted=%v out of range [0,1]", t.Sorted)
		}
	case "scanmax":
		if t.Runs < 1 {
			return fmt.Errorf("algotrace: runs=%d out of range [1,∞)", t.Runs)
		}
	}
	return nil
}

// formatFloat renders a float in the canonical (shortest) form, so
// parse -> print is a fixed point.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String renders the canonical form `algo:name,key=value,...` with
// the name's keys in fixed order and defaults explicit, so that
// ParseSpec(s.String()) reproduces s.Normalize() exactly.
func (s Spec) String() string {
	t := s.Normalize()
	var kv []string
	add := func(k, v string) { kv = append(kv, k+"="+v) }
	switch t.Name {
	case "mp", "kmp":
		add("n", strconv.Itoa(t.N))
		add("m", strconv.Itoa(t.M))
		add("sigma", strconv.Itoa(t.Sigma))
		add("dist", t.Dist)
		if t.Dist == "bern" {
			add("p", formatFloat(t.P))
		}
		add("pat", t.Pat)
	case "binsearch":
		add("n", strconv.Itoa(t.N))
		add("q", strconv.Itoa(t.Queries))
	case "insertion", "quick", "heap":
		add("n", strconv.Itoa(t.N))
		add("runs", strconv.Itoa(t.Runs))
		add("sorted", formatFloat(t.Sorted))
	case "scanmax":
		add("n", strconv.Itoa(t.N))
		add("runs", strconv.Itoa(t.Runs))
	default:
		return Prefix + t.Name
	}
	add("seed", strconv.FormatUint(t.Seed, 10))
	return Prefix + t.Name + "," + strings.Join(kv, ",")
}

// ParseSpec parses the canonical string form back into a normalized
// Spec. Keys irrelevant to the algorithm are rejected, as are
// duplicate keys and unknown enum values; numeric ranges are checked
// by Validate at recording time. ParseSpec is the exact inverse of
// Spec.String: ParseSpec(s.String()) == s.Normalize().
func ParseSpec(text string) (Spec, error) {
	trimmed := strings.TrimSpace(text)
	if !strings.HasPrefix(trimmed, Prefix) {
		return Spec{}, fmt.Errorf("algotrace: spec %q does not start with %q", text, Prefix)
	}
	name, rest, hasParams := strings.Cut(trimmed[len(Prefix):], ",")
	name = strings.TrimSpace(name)
	if _, known := specKeys[name]; !known {
		return Spec{}, fmt.Errorf("algotrace: unknown algorithm %q in spec %q (have %s)",
			name, text, strings.Join(Names(), ", "))
	}
	s := Spec{Name: name}
	if !hasParams || strings.TrimSpace(rest) == "" {
		return s.Normalize(), nil
	}
	seen := make(map[string]bool)
	for _, pair := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return Spec{}, fmt.Errorf("algotrace: malformed parameter %q in spec %q (want key=value)", pair, text)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("algotrace: duplicate parameter %q in spec %q", key, text)
		}
		seen[key] = true
		if !keyAllowed(name, key) {
			return Spec{}, fmt.Errorf("algotrace: parameter %q does not apply to %q (allowed: %s)",
				key, name, strings.Join(AllowedKeys(name), ", "))
		}
		switch key {
		case "dist":
			if val != "uniform" && val != "bern" {
				return Spec{}, fmt.Errorf("algotrace: unknown dist %q in spec %q (want uniform or bern)", val, text)
			}
			s.Dist = val
			continue
		case "pat":
			if val != "rand" && val != "uni" && val != "alt" {
				return Spec{}, fmt.Errorf("algotrace: unknown pat %q in spec %q (want rand, uni or alt)", val, text)
			}
			s.Pat = val
			continue
		case "p", "sorted":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return Spec{}, fmt.Errorf("algotrace: parameter %s=%q in spec %q is not a number in [0,1]", key, val, text)
			}
			if key == "p" {
				s.P = f
			} else {
				s.Sorted = f
			}
			continue
		case "seed":
			u, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("algotrace: parameter seed=%q in spec %q is not a number", val, text)
			}
			s.Seed = u
			continue
		}
		u, err := strconv.ParseUint(val, 10, 31)
		if err != nil {
			return Spec{}, fmt.Errorf("algotrace: parameter %s=%q in spec %q is not a number", key, val, text)
		}
		switch key {
		case "n":
			s.N = int(u)
		case "m":
			s.M = int(u)
		case "sigma":
			s.Sigma = int(u)
		case "q":
			s.Queries = int(u)
		case "runs":
			s.Runs = int(u)
		}
	}
	return s.Normalize(), nil
}

// MustParseSpec is ParseSpec panicking on error, for static tables.
func MustParseSpec(text string) Spec {
	s, err := ParseSpec(text)
	if err != nil {
		panic(err)
	}
	return s
}

func keyAllowed(name, key string) bool {
	for _, k := range specKeys[name] {
		if k == key {
			return true
		}
	}
	return false
}

// Family documents one algorithm for workload-listing surfaces.
type Family struct {
	// Name is the algorithm name as the grammar accepts it.
	Name string
	// Keys is the comma-joined key grammar in canonical order.
	Keys string
	// Doc is a one-line description.
	Doc string
}

// Families describes every algorithm family for listing surfaces
// such as `tracegen -list`.
func Families() []Family {
	docs := map[string]string{
		"mp":        "Morris-Pratt string matching (weak failure function) over random text",
		"kmp":       "Knuth-Morris-Pratt string matching (strong failure function) over random text",
		"binsearch": "binary search probes over a sorted array",
		"insertion": "insertion sort of partially-sorted arrays",
		"quick":     "quicksort (middle-pivot Lomuto) of partially-sorted arrays",
		"heap":      "heapsort (sift-down) of partially-sorted arrays",
		"scanmax":   "linear scan tracking the running maximum",
	}
	out := make([]Family, 0, len(specKeys))
	for _, n := range Names() {
		out = append(out, Family{
			Name: Prefix + n,
			Keys: strings.Join(specKeys[n], ","),
			Doc:  docs[n],
		})
	}
	return out
}
