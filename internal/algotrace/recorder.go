// Package algotrace records the branch behaviour of real, executing Go
// algorithms into genuine trace.Branch streams.
//
// Every workload elsewhere in the repository is synthetic: the
// internal/workload generators draw branch outcomes from tuned random
// processes. This package closes the gap to real programs the way the
// Nicaud/Pivoteau/Vialette analysis of Morris-Pratt and
// Knuth-Morris-Pratt does (arXiv 2503.13694): instrumented
// implementations of classic algorithms — MP/KMP string matching,
// binary search, insertion/quick/heap sort, linear max-scanning — run
// on parameterized random inputs, and every conditional branch they
// execute is recorded through an explicit Recorder. The recorded
// streams are ordinary traces: they flow through the codecs, the trace
// pool, the HTTP service and every simulation path unchanged.
//
// Crucially, the MP/KMP streams come with an external analytic oracle:
// analytic.go re-derives the paper's Markov-chain analysis of expected
// misprediction rates under first-order (per-site saturating-counter)
// predictors, sharing no code with either the instrumented algorithms
// or internal/predictor. Simulating a recorded stream must reproduce
// the analytic rate — a validation axis entirely independent of
// internal/refmodel.
package algotrace

import (
	"fmt"

	"gskew/internal/rng"
	"gskew/internal/trace"
)

// SiteID is the stable synthetic PC of one branch site in an
// instrumented algorithm. It is assigned by Program.Site and used
// directly as the word address of every Branch the site records, so a
// site's dynamic outcomes form one substream per PC exactly as a real
// program's compiled branch instruction would.
type SiteID uint64

// PC returns the site's word address.
func (s SiteID) PC() uint64 { return uint64(s) }

// programRegion computes the base word address of a program's site
// block. Each instrumented program owns a 256-word region inside a
// dedicated "algorithm text segment" placed above the synthetic user
// images (which start at 1<<24) and below kernel text (1<<31): the
// region index is a splitmix64 hash of the program name, so bases are
// stable across runs, processes and platforms — the property that
// makes recorded streams content-addressable.
func programRegion(name string) uint64 {
	const (
		segmentBase = uint64(1) << 28
		regionWords = 256
		regionMask  = (uint64(1) << 20) - 1 // 1M regions
	)
	h := rng.Mix64(uint64(len(name)))
	for _, b := range []byte(name) {
		h = rng.Mix64(h ^ uint64(b))
	}
	return segmentBase + (h&regionMask)*regionWords
}

// Program is a registry of branch sites for one instrumented
// algorithm. Sites are assigned consecutive word addresses in the
// program's region in declaration order, so the assignment is
// deterministic, injective and stable: the same program declares the
// same PCs in every run.
type Program struct {
	name  string
	base  uint64
	count int
	names map[string]SiteID
}

// NewProgram starts a site registry for the named algorithm.
func NewProgram(name string) *Program {
	return &Program{name: name, base: programRegion(name), names: make(map[string]SiteID)}
}

// Name returns the program name.
func (p *Program) Name() string { return p.name }

// Site registers a branch site and returns its stable PC. Registering
// the same label twice panics: a label collision would silently merge
// two sites' substreams, which is exactly the fault class the
// recorder-site-collision selftest arm exists to catch.
func (p *Program) Site(label string) SiteID {
	if _, dup := p.names[label]; dup {
		panic(fmt.Sprintf("algotrace: program %q declares site %q twice", p.name, label))
	}
	if p.count >= 256 {
		panic(fmt.Sprintf("algotrace: program %q exceeds its 256-site region", p.name))
	}
	id := SiteID(p.base + uint64(p.count))
	p.count++
	p.names[label] = id
	return id
}

// Recorder accumulates the dynamic branch stream of an instrumented
// run. The zero value is ready to use.
type Recorder struct {
	branches []trace.Branch

	// collideSites is the planted selftest fault: when set, every
	// site's low PC bit is dropped, mapping adjacent site pairs onto
	// one PC. The recorded directions are untouched, so the tampered
	// stream still decodes, simulates and summarises plausibly — it is
	// caught only by its content hash diverging from the clean
	// recording (and by the static-site count collapsing).
	collideSites bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Grow pre-allocates capacity for n further branch records.
func (r *Recorder) Grow(n int) {
	if cap(r.branches)-len(r.branches) < n {
		grown := make([]trace.Branch, len(r.branches), len(r.branches)+n)
		copy(grown, r.branches)
		r.branches = grown
	}
}

// pc maps a site to the PC recorded for it, applying the planted
// collision fault when armed.
func (r *Recorder) pc(s SiteID) uint64 {
	pc := uint64(s)
	if r.collideSites {
		pc &^= 1
	}
	return pc
}

// Branch records one conditional branch outcome at a site and returns
// taken, so instrumented code wraps its real conditions in place:
//
//	for rec.Branch(outer, i < n) { ... }
//	if rec.Branch(cmp, a[mid] < q) { ... }
//
// The branch recorded IS the branch decided on; the stream cannot
// drift from the control flow that produced it. Taken means the
// condition held (the convention the analytic side model shares).
func (r *Recorder) Branch(s SiteID, taken bool) bool {
	r.branches = append(r.branches, trace.Branch{PC: r.pc(s), Taken: taken, Kind: trace.Conditional})
	return taken
}

// Jump records one unconditional control transfer (a call, return or
// goto) at a site. Unconditional events are always taken; they shift
// global history in the simulator but are excluded from prediction
// accounting, mirroring how the synthetic workloads use them.
func (r *Recorder) Jump(s SiteID) {
	r.branches = append(r.branches, trace.Branch{PC: r.pc(s), Taken: true, Kind: trace.Unconditional})
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.branches) }

// Branches returns the recorded stream. The slice is owned by the
// recorder; callers that keep recording afterwards should copy it.
func (r *Recorder) Branches() []trace.Branch { return r.branches }

// TamperRecorderSiteCollision arms the planted site-ID-collision fault
// on r: every subsequent Branch/Jump drops the low PC bit, mapping
// adjacent site pairs onto a single PC. Exported for the verification
// harness's fault-injection selftest only (cmd/verify -selftest),
// which requires the fault to be caught as a content-hash divergence
// against the clean recording.
func TamperRecorderSiteCollision(r *Recorder) { r.collideSites = true }
