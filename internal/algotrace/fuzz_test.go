package algotrace

import (
	"testing"

	"gskew/internal/trace"
)

// FuzzAlgoSpec checks the algo: grammar's core contract on arbitrary
// input: ParseSpec never panics, and anything it accepts canonicalises
// to a fixed point — ParseSpec(s.String()) == s == s.Normalize(). The
// experiments layer, the trace pool, and the server all key caches on
// canonical spec strings, so a spelling that parsed but drifted under
// re-canonicalisation would silently split or corrupt cache cells.
func FuzzAlgoSpec(f *testing.F) {
	for _, seed := range []string{
		"algo:mp",
		"algo:kmp,n=2000,m=4,sigma=2,dist=uniform,pat=rand,seed=7",
		"algo:mp,n=300000,m=6,dist=bern,p=0.7,pat=alt,seed=7",
		"algo:binsearch,n=256,q=500,seed=7",
		"algo:insertion,n=128,runs=2,sorted=0.5,seed=7",
		"algo:quick,n=256,runs=2,sorted=0,seed=7",
		"algo:heap,n=256,runs=2,sorted=1,seed=7",
		"algo:scanmax,n=1024,runs=2,seed=7",
		"algo: kmp , n = 10 ",
		"algo:kmp,n=10,n=11",
		"algo:mp,q=5",
		"algo:bogosort",
		"algo:mp,dist=zipf",
		"algo:mp,p=1.5",
		"algo:",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			return // rejected input only has to not panic
		}
		if norm := s.Normalize(); s != norm {
			t.Fatalf("ParseSpec(%q) = %+v is not normalized (want %+v)", text, s, norm)
		}
		canon := s.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not re-parse: %v", canon, text, err)
		}
		if again != s {
			t.Fatalf("canonical round trip drifted: %q parsed as %+v, its String %q re-parsed as %+v",
				text, s, canon, again)
		}
		if again.String() != canon {
			t.Fatalf("String not a fixed point: %q then %q", canon, again.String())
		}
		// Parsing is syntactic; range errors are legal and surface at
		// Validate/Record (like predictor.Spec geometry errors at New).
		if err := s.Validate(); err != nil {
			return
		}
		// Anything parseable AND valid must actually record — cap the
		// problem size first so the fuzzer doesn't explore
		// quadratic-sort or megabyte-text instances.
		capped := s
		if capped.N > 512 {
			capped.N = 512
		}
		if capped.M > capped.N {
			capped.M = capped.N
		}
		if capped.Queries > 256 {
			capped.Queries = 256
		}
		if capped.Runs > 2 {
			capped.Runs = 2
		}
		branches, err := Record(capped)
		if err != nil {
			t.Fatalf("accepted spec %q (capped %+v) failed to record: %v", canon, capped, err)
		}
		if len(branches) == 0 {
			t.Fatalf("accepted spec %q recorded an empty stream", canon)
		}
	})
}

// FuzzRecorder feeds arbitrary (site, taken) event sequences through a
// Recorder and requires the recorded stream to (a) reproduce the
// events exactly, with stable distinct PCs per site, and (b) survive
// the block-columnar codec byte-for-byte under the canonical content
// hash. This is the contract the whole workload subsystem leans on:
// recorded streams are ordinary trace.Branch data.
func FuzzRecorder(f *testing.F) {
	f.Add([]byte{}, uint8(4))
	f.Add([]byte{0x00, 0x81, 0x02, 0xff}, uint8(7))
	f.Add([]byte{0x10, 0x90, 0x10, 0x90, 0x10}, uint8(1))
	f.Fuzz(func(t *testing.T, events []byte, nsites uint8) {
		n := int(nsites)%16 + 1
		p := NewProgram("fuzz")
		sites := make([]SiteID, n)
		for i := range sites {
			sites[i] = p.Site(string(rune('a' + i)))
		}
		rec := NewRecorder()
		// Each event byte picks a site (low bits) and a direction (top
		// bit); replay the same sequence twice through two recorders.
		rec2 := NewRecorder()
		for _, e := range events {
			s := sites[int(e&0x7f)%n]
			taken := e&0x80 != 0
			if got := rec.Branch(s, taken); got != taken {
				t.Fatalf("Branch returned %v for taken=%v", got, taken)
			}
			rec2.Branch(s, taken)
		}
		branches := rec.Branches()
		if len(branches) != len(events) {
			t.Fatalf("recorded %d branches for %d events", len(branches), len(events))
		}
		for i, e := range events {
			b := branches[i]
			if b.Kind != trace.Conditional {
				t.Fatalf("event %d recorded as %v, want Conditional", i, b.Kind)
			}
			if b.Taken != (e&0x80 != 0) {
				t.Fatalf("event %d direction flipped", i)
			}
			want := sites[int(e&0x7f)%n]
			if b.PC != want.PC() {
				t.Fatalf("event %d PC %#x does not match site %#x", i, b.PC, uint64(want))
			}
		}
		// Same events, same program → byte-identical stream and hash.
		h := trace.HashBranches(branches)
		if h2 := trace.HashBranches(rec2.Branches()); h2 != h {
			t.Fatalf("replay hash diverged: %s vs %s", h, h2)
		}
		// Codec round trip preserves records and content hash.
		enc, err := trace.EncodeColumnar(branches)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := trace.DecodeBytes(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(branches) {
			t.Fatalf("codec changed record count: %d vs %d", len(dec), len(branches))
		}
		for i := range branches {
			if dec[i] != branches[i] {
				t.Fatalf("codec changed record %d: %+v vs %+v", i, dec[i], branches[i])
			}
		}
		if hd := trace.HashBranches(dec); hd != h {
			t.Fatalf("codec changed content hash: %s vs %s", hd, h)
		}
	})
}
