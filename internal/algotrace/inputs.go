package algotrace

import "gskew/internal/rng"

// Input generation. Everything here is driven by a seeded
// rng.Xoshiro256 with a fixed draw order, so a Spec determines its
// inputs — and therefore its recorded branch stream — exactly.

// genText draws an n-character text over the alphabet {0..sigma-1}.
// dist "uniform" is iid uniform; "bern" is iid binary with
// P(letter 0) = p (sigma is 2 by normalization).
func genText(r *rng.Xoshiro256, n, sigma int, dist string, p float64) []byte {
	text := make([]byte, n)
	if dist == "bern" {
		for i := range text {
			if !r.Bool(p) {
				text[i] = 1
			}
		}
		return text
	}
	for i := range text {
		text[i] = byte(r.Intn(sigma))
	}
	return text
}

// genPattern draws an m-character pattern: "rand" uniform over the
// alphabet, "uni" the maximally periodic aa...a, "alt" the
// period-two abab... (letter 1 exists because sigma >= 2).
func genPattern(r *rng.Xoshiro256, m, sigma int, pat string) []byte {
	p := make([]byte, m)
	switch pat {
	case "uni":
		// all zero
	case "alt":
		for i := range p {
			p[i] = byte(i & 1)
		}
	default: // rand
		for i := range p {
			p[i] = byte(r.Intn(sigma))
		}
	}
	return p
}

// genArray builds one sort input of length n: an ascending ramp with
// round((1-sorted)*n) random transpositions applied, so sorted=1 is
// fully ordered and sorted=0 is near-random. Values are distinct, so
// comparison outcomes are never degenerate ties.
func genArray(r *rng.Xoshiro256, n int, sorted float64) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	swaps := int((1-sorted)*float64(n) + 0.5)
	for k := 0; k < swaps; k++ {
		i, j := r.Intn(n), r.Intn(n)
		a[i], a[j] = a[j], a[i]
	}
	return a
}

// genSortedValues builds the binsearch haystack: n strictly
// increasing values spaced 2 apart (even numbers), so random probes
// hit present and absent keys in equal proportion.
func genSortedValues(n int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = 2 * i
	}
	return a
}
