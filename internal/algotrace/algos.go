package algotrace

import (
	"gskew/internal/rng"
	"gskew/internal/trace"
)

// The instrumented algorithms. Each is an ordinary Go implementation
// whose conditional expressions are wrapped in rec.Branch in place, so
// the recorded stream is exactly the control flow executed — there is
// no separate "trace model" that could drift from the code. Every
// program declares its sites once at package init in source order;
// the resulting PCs are consecutive words in the program's region.
//
// Failure functions for MP/KMP are computed by the standard efficient
// recurrences here; the analytic side model (analytic.go) recomputes
// them by brute force, so the two agree only if both are right.

// ---------------------------------------------------------------- mp/kmp

type matchSites struct {
	call, outer, guard, cmp, match SiteID
}

func newMatchSites(name string) matchSites {
	p := NewProgram(name)
	return matchSites{
		call:  p.Site("call"),
		outer: p.Site("outer"),
		guard: p.Site("guard"),
		cmp:   p.Site("cmp"),
		match: p.Site("match"),
	}
}

var (
	mpSites  = newMatchSites("mp")
	kmpSites = newMatchSites("kmp")
)

// weakFail computes the Morris-Pratt failure table: fail[j] is the
// length of the longest proper border of pat[:j] for j >= 1, with the
// fail[0] = -1 sentinel that makes the matcher consume a character.
func weakFail(pat []byte) []int {
	m := len(pat)
	fail := make([]int, m+1)
	fail[0] = -1
	k := -1
	for j := 0; j < m; j++ {
		for k >= 0 && pat[k] != pat[j] {
			k = fail[k]
		}
		k++
		fail[j+1] = k
	}
	return fail
}

// strongFail computes the Knuth-Morris-Pratt ("strong") failure table
// over states 0..m-1: the longest border k of pat[:j] with
// pat[k] != pat[j], or the next such border transitively, or -1.
func strongFail(pat []byte) []int {
	m := len(pat)
	wf := weakFail(pat)
	kf := make([]int, m)
	kf[0] = -1
	for j := 1; j < m; j++ {
		if b := wf[j]; pat[b] != pat[j] {
			kf[j] = b
		} else {
			kf[j] = kf[wf[j]]
		}
	}
	return kf
}

// recordMatch runs the MP/KMP matcher over text, recording every
// conditional. loopFail is the table consulted on mismatch (weak for
// MP, strong for KMP); restart is the weak border of the whole
// pattern, used after a full match in both variants.
func recordMatch(rec *Recorder, s matchSites, text, pat []byte, loopFail []int, restart int) int {
	rec.Jump(s.call)
	n, m := len(text), len(pat)
	matches := 0
	j := 0
	for i := 0; rec.Branch(s.outer, i < n); i++ {
		c := text[i]
		for rec.Branch(s.guard, j >= 0) && rec.Branch(s.cmp, pat[j] != c) {
			j = loopFail[j]
		}
		j++
		if rec.Branch(s.match, j == m) {
			matches++
			j = restart
		}
	}
	return matches
}

func recordStringMatch(rec *Recorder, t Spec) {
	r := rng.NewXoshiro256(t.Seed)
	pat := genPattern(r, t.M, t.Sigma, t.Pat)
	text := genText(r, t.N, t.Sigma, t.Dist, t.P)
	wf := weakFail(pat)
	rec.Grow(5*t.N + 8)
	if t.Name == "kmp" {
		recordMatch(rec, kmpSites, text, pat, strongFail(pat), wf[t.M])
	} else {
		recordMatch(rec, mpSites, text, pat, wf, wf[t.M])
	}
}

// ---------------------------------------------------------------- binsearch

type binsearchSites struct {
	call, loop, less, inb, eq SiteID
}

var bsSites = func() binsearchSites {
	p := NewProgram("binsearch")
	return binsearchSites{
		call: p.Site("call"),
		loop: p.Site("loop"),
		less: p.Site("less"),
		inb:  p.Site("inbounds"),
		eq:   p.Site("equal"),
	}
}()

func recordBinsearch(rec *Recorder, t Spec) {
	r := rng.NewXoshiro256(t.Seed)
	a := genSortedValues(t.N)
	s := bsSites
	rec.Grow(t.Queries * 24)
	found := 0
	for q := 0; q < t.Queries; q++ {
		// Probes land uniformly in [0, 2n): half present, half absent.
		target := r.Intn(2 * t.N)
		rec.Jump(s.call)
		lo, hi := 0, len(a)
		for rec.Branch(s.loop, lo < hi) {
			mid := int(uint(lo+hi) >> 1)
			if rec.Branch(s.less, a[mid] < target) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if rec.Branch(s.inb, lo < len(a)) && rec.Branch(s.eq, a[lo] == target) {
			found++
		}
	}
	_ = found
}

// ---------------------------------------------------------------- sorts

type insertionSites struct {
	call, outer, guard, cmp SiteID
}

var insSites = func() insertionSites {
	p := NewProgram("insertion")
	return insertionSites{
		call:  p.Site("call"),
		outer: p.Site("outer"),
		guard: p.Site("guard"),
		cmp:   p.Site("cmp"),
	}
}()

func recordInsertion(rec *Recorder, t Spec) {
	r := rng.NewXoshiro256(t.Seed)
	s := insSites
	for run := 0; run < t.Runs; run++ {
		a := genArray(r, t.N, t.Sorted)
		rec.Jump(s.call)
		for i := 1; rec.Branch(s.outer, i < len(a)); i++ {
			v := a[i]
			j := i - 1
			for rec.Branch(s.guard, j >= 0) && rec.Branch(s.cmp, a[j] > v) {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = v
		}
	}
}

type quickSites struct {
	call, work, span, part, cmp SiteID
}

var qsSites = func() quickSites {
	p := NewProgram("quick")
	return quickSites{
		call: p.Site("call"),
		work: p.Site("work"),
		span: p.Site("span"),
		part: p.Site("partition"),
		cmp:  p.Site("cmp"),
	}
}()

func recordQuick(rec *Recorder, t Spec) {
	r := rng.NewXoshiro256(t.Seed)
	s := qsSites
	type span struct{ lo, hi int }
	for run := 0; run < t.Runs; run++ {
		a := genArray(r, t.N, t.Sorted)
		rec.Jump(s.call)
		stack := []span{{0, len(a) - 1}}
		for rec.Branch(s.work, len(stack) > 0) {
			sp := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			lo, hi := sp.lo, sp.hi
			if !rec.Branch(s.span, lo < hi) {
				continue
			}
			// Middle-element pivot swapped to hi: Lomuto partition
			// without the quadratic blowup on (nearly) sorted inputs.
			mid := lo + (hi-lo)/2
			a[mid], a[hi] = a[hi], a[mid]
			pivot := a[hi]
			i := lo
			for j := lo; rec.Branch(s.part, j < hi); j++ {
				if rec.Branch(s.cmp, a[j] < pivot) {
					a[i], a[j] = a[j], a[i]
					i++
				}
			}
			a[i], a[hi] = a[hi], a[i]
			stack = append(stack, span{lo, i - 1}, span{i + 1, hi})
		}
	}
}

type heapSites struct {
	call, build, sortl, child, hasright, right, swap SiteID
}

var hsSites = func() heapSites {
	p := NewProgram("heap")
	return heapSites{
		call:     p.Site("call"),
		build:    p.Site("build"),
		sortl:    p.Site("sortloop"),
		child:    p.Site("haschild"),
		hasright: p.Site("hasright"),
		right:    p.Site("rightlarger"),
		swap:     p.Site("siftswap"),
	}
}()

func recordHeap(rec *Recorder, t Spec) {
	r := rng.NewXoshiro256(t.Seed)
	s := hsSites
	for run := 0; run < t.Runs; run++ {
		a := genArray(r, t.N, t.Sorted)
		siftDown := func(root, end int) {
			for rec.Branch(s.child, 2*root+1 < end) {
				child := 2*root + 1
				if rec.Branch(s.hasright, child+1 < end) && rec.Branch(s.right, a[child+1] > a[child]) {
					child++
				}
				if rec.Branch(s.swap, a[child] > a[root]) {
					a[root], a[child] = a[child], a[root]
					root = child
				} else {
					return
				}
			}
		}
		rec.Jump(s.call)
		for i := len(a)/2 - 1; rec.Branch(s.build, i >= 0); i-- {
			siftDown(i, len(a))
		}
		for end := len(a) - 1; rec.Branch(s.sortl, end > 0); end-- {
			a[0], a[end] = a[end], a[0]
			siftDown(0, end)
		}
	}
}

// ---------------------------------------------------------------- scanmax

type scanSites struct {
	call, loop, newmax SiteID
}

var smSites = func() scanSites {
	p := NewProgram("scanmax")
	return scanSites{
		call:   p.Site("call"),
		loop:   p.Site("loop"),
		newmax: p.Site("newmax"),
	}
}()

func recordScanMax(rec *Recorder, t Spec) {
	r := rng.NewXoshiro256(t.Seed)
	s := smSites
	a := make([]int, t.N)
	for run := 0; run < t.Runs; run++ {
		// A uniform permutation: the running max advances ~H_n times.
		r.Perm(a)
		rec.Jump(s.call)
		best := a[0]
		for i := 1; rec.Branch(s.loop, i < len(a)); i++ {
			if rec.Branch(s.newmax, a[i] > best) {
				best = a[i]
			}
		}
	}
}

// ---------------------------------------------------------------- dispatch

func recordInto(t Spec, rec *Recorder) {
	switch t.Name {
	case "mp", "kmp":
		recordStringMatch(rec, t)
	case "binsearch":
		recordBinsearch(rec, t)
	case "insertion":
		recordInsertion(rec, t)
	case "quick":
		recordQuick(rec, t)
	case "heap":
		recordHeap(rec, t)
	case "scanmax":
		recordScanMax(rec, t)
	}
}

// Record executes the spec's algorithm on its seeded inputs and
// returns the recorded branch stream. The stream depends only on the
// normalized spec.
func Record(spec Spec) ([]trace.Branch, error) {
	rec := NewRecorder()
	if err := RecordInto(spec, rec); err != nil {
		return nil, err
	}
	return rec.Branches(), nil
}

// RecordInto is Record against a caller-supplied recorder. It exists
// for the verification harness, which records the same spec into a
// clean and a tampered recorder and requires their content hashes to
// diverge.
func RecordInto(spec Spec, rec *Recorder) error {
	t := spec.Normalize()
	if err := t.Validate(); err != nil {
		return err
	}
	recordInto(t, rec)
	return nil
}
