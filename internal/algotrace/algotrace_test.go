package algotrace

import (
	"math"
	"strings"
	"testing"

	"gskew/internal/trace"
)

func TestSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"algo:mp", "algo:mp,n=300000,m=8,sigma=2,dist=uniform,pat=rand,seed=1"},
		{"algo:kmp,seed=9", "algo:kmp,n=300000,m=8,sigma=2,dist=uniform,pat=rand,seed=9"},
		{"algo:mp,dist=bern", "algo:mp,n=300000,m=8,sigma=2,dist=bern,p=0.5,pat=rand,seed=1"},
		{"algo:mp,dist=bern,p=0.7,sigma=8", "algo:mp,n=300000,m=8,sigma=2,dist=bern,p=0.7,pat=rand,seed=1"},
		{"algo:kmp,m=3,pat=uni,sigma=16", "algo:kmp,n=300000,m=3,sigma=16,dist=uniform,pat=uni,seed=1"},
		{"algo:binsearch", "algo:binsearch,n=4096,q=30000,seed=1"},
		{"algo:binsearch,q=7,n=8,seed=3", "algo:binsearch,n=8,q=7,seed=3"},
		{"algo:insertion", "algo:insertion,n=512,runs=8,sorted=0,seed=1"},
		{"algo:insertion,sorted=0.25", "algo:insertion,n=512,runs=8,sorted=0.25,seed=1"},
		{"algo:quick", "algo:quick,n=4096,runs=8,sorted=0,seed=1"},
		{"algo:heap,runs=2,sorted=1", "algo:heap,n=4096,runs=2,sorted=1,seed=1"},
		{"algo:scanmax", "algo:scanmax,n=65536,runs=8,seed=1"},
		{" algo:scanmax , n=16 ", "algo:scanmax,n=16,runs=8,seed=1"},
	}
	for _, c := range cases {
		s, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got := s.String(); got != c.want {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Exact round trip: parse of the canonical form is a fixed point.
		again, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s.String(), err)
		}
		if again != s {
			t.Errorf("round trip of %q: %+v != %+v", c.in, again, s)
		}
		if s.Normalize() != s {
			t.Errorf("ParseSpec(%q) not normalized: %+v", c.in, s)
		}
		if s.Normalize().Normalize() != s.Normalize() {
			t.Errorf("Normalize not idempotent for %q", c.in)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"mp,n=10",                  // missing prefix
		"algo:unknownalgo",         // unknown name
		"algo:mp,n=10,n=20",        // duplicate key
		"algo:mp,q=5",              // key from another family
		"algo:binsearch,sigma=4",   // likewise
		"algo:mp,n=",               // malformed pair
		"algo:mp,dist=zipf",        // unknown enum
		"algo:mp,pat=palindrome",   // unknown enum
		"algo:mp,p=1.5,dist=bern",  // out of [0,1]
		"algo:insertion,sorted=-1", // out of [0,1]
		"algo:mp,n=abc",            // not a number
		"algo:mp,seed=-1",          // not a uint
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) unexpectedly succeeded", in)
		}
	}
}

func TestValidateRanges(t *testing.T) {
	bad := []Spec{
		{Name: "mp", M: 100},             // m > 64
		{Name: "mp", N: 4, M: 8},         // m > n
		{Name: "nosuch"},                 // unknown
		{Name: "mp", Sigma: 1},           // sigma < 2
		{Name: "mp", Dist: "bern", P: 1}, // p out of (0,1) — normalized sigma=2
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) unexpectedly succeeded", s)
		}
	}
	for _, name := range Names() {
		if err := (Spec{Name: name}).Validate(); err != nil {
			t.Errorf("default %s spec invalid: %v", name, err)
		}
	}
}

func TestFamiliesListing(t *testing.T) {
	fams := Families()
	if len(fams) != len(Names()) {
		t.Fatalf("Families() has %d entries, want %d", len(fams), len(Names()))
	}
	for _, f := range fams {
		if !strings.HasPrefix(f.Name, Prefix) {
			t.Errorf("family %q missing %q prefix", f.Name, Prefix)
		}
		if f.Keys == "" || f.Doc == "" {
			t.Errorf("family %q lacks keys or doc", f.Name)
		}
		if !IsSpec(f.Name) {
			t.Errorf("IsSpec(%q) = false", f.Name)
		}
	}
}

// TestSitePCsDistinct guards the property the whole subsystem rests
// on: every declared site across every program has a unique, stable
// PC in the algorithm text segment.
func TestSitePCsDistinct(t *testing.T) {
	all := []SiteID{
		mpSites.call, mpSites.outer, mpSites.guard, mpSites.cmp, mpSites.match,
		kmpSites.call, kmpSites.outer, kmpSites.guard, kmpSites.cmp, kmpSites.match,
		bsSites.call, bsSites.loop, bsSites.less, bsSites.inb, bsSites.eq,
		insSites.call, insSites.outer, insSites.guard, insSites.cmp,
		qsSites.call, qsSites.work, qsSites.span, qsSites.part, qsSites.cmp,
		hsSites.call, hsSites.build, hsSites.sortl, hsSites.child, hsSites.hasright, hsSites.right, hsSites.swap,
		smSites.call, smSites.loop, smSites.newmax,
	}
	seen := make(map[uint64]bool)
	for _, s := range all {
		pc := s.PC()
		if seen[pc] {
			t.Fatalf("site PC %#x assigned twice", pc)
		}
		seen[pc] = true
		if pc < 1<<28 || pc >= 1<<28+(1<<20)*256 {
			t.Errorf("site PC %#x outside the algorithm text segment", pc)
		}
	}
	// Region bases must be 256-aligned so a program's sites share a
	// region and never spill into a neighbour's.
	if mpSites.call.PC()%256 != 0 {
		t.Errorf("mp region base %#x not 256-aligned", mpSites.call.PC())
	}
	if kmpSites.call.PC() == mpSites.call.PC() {
		t.Errorf("mp and kmp share a region")
	}
}

func TestRecorderBasics(t *testing.T) {
	p := NewProgram("recorder-basics-test")
	a, b := p.Site("a"), p.Site("b")
	rec := NewRecorder()
	if !rec.Branch(a, true) || rec.Branch(a, false) {
		t.Fatalf("Branch does not return its condition")
	}
	rec.Jump(b)
	got := rec.Branches()
	if len(got) != 3 || rec.Len() != 3 {
		t.Fatalf("recorded %d events, want 3", len(got))
	}
	want := []trace.Branch{
		{PC: a.PC(), Taken: true, Kind: trace.Conditional},
		{PC: a.PC(), Taken: false, Kind: trace.Conditional},
		{PC: b.PC(), Taken: true, Kind: trace.Unconditional},
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, got[i], w)
		}
	}
}

func TestTamperSiteCollision(t *testing.T) {
	spec := MustParseSpec("algo:binsearch,n=64,q=200,seed=5")
	clean, err := Record(spec)
	if err != nil {
		t.Fatal(err)
	}
	dirty := NewRecorder()
	TamperRecorderSiteCollision(dirty)
	if err := RecordInto(spec, dirty); err != nil {
		t.Fatal(err)
	}
	if len(clean) != dirty.Len() {
		t.Fatalf("tamper changed event count: %d vs %d", len(clean), dirty.Len())
	}
	if trace.HashBranches(clean) == trace.HashBranches(dirty.Branches()) {
		t.Fatalf("site collision not visible in content hash")
	}
	cs, ds := trace.NewStats(), trace.NewStats()
	for _, b := range clean {
		cs.Observe(b)
	}
	for _, b := range dirty.Branches() {
		ds.Observe(b)
	}
	if ds.Static >= cs.Static {
		t.Fatalf("collision did not collapse static sites: %d vs %d", ds.Static, cs.Static)
	}
	if ds.Dynamic != cs.Dynamic {
		t.Fatalf("collision changed dynamic count: %d vs %d", ds.Dynamic, cs.Dynamic)
	}
}

// Pinned golden content hashes, one small instance per family.
const (
	goldenMP        = "3036a4f07941c185dd960ccfd61a6504cd38605e05dc59bd1cbbfd389a07c6ef"
	goldenKMP       = "fa754f7a693ee0aa870f970693ef062966da34c65e9b684c2f7bf4ec956a33e7"
	goldenBinsearch = "2f2ec1885f89cb27ba11aa9c5c9fbaff6d47c57434079df57841785668ff0eb0"
	goldenInsertion = "85e4033bf3b9f1a6b2c394d9097f9996564fd96a70ec5e05d9d16a76c6434468"
	goldenQuick     = "3e9f1431ebfa09124e725eec8089b5293d0ff94027168d920ef670207ac67236"
	goldenHeap      = "4b1ba4bed0593c739ee7cf7ea09f07e2afb3cb4a1d3f65702fb7eeb142b28541"
	goldenScanmax   = "356560a5c3e720fb5882361b84b0a1ea5fa939075a26e05ae50f6e7132504474"
)

// smallSpecs is one small instance per family; the golden hashes pin
// the exact recorded streams so any drift in input generation, site
// assignment or algorithm control flow is caught.
var smallSpecs = []struct {
	spec string
	hash string
}{
	{"algo:mp,n=2000,m=4,sigma=2,dist=uniform,pat=rand,seed=7", goldenMP},
	{"algo:kmp,n=2000,m=4,sigma=4,dist=uniform,pat=alt,seed=7", goldenKMP},
	{"algo:binsearch,n=256,q=500,seed=7", goldenBinsearch},
	{"algo:insertion,n=128,runs=2,sorted=0.5,seed=7", goldenInsertion},
	{"algo:quick,n=256,runs=2,sorted=0,seed=7", goldenQuick},
	{"algo:heap,n=256,runs=2,sorted=1,seed=7", goldenHeap},
	{"algo:scanmax,n=1024,runs=2,seed=7", goldenScanmax},
}

func TestRecordDeterministicAndPinned(t *testing.T) {
	for _, c := range smallSpecs {
		spec := MustParseSpec(c.spec)
		first, err := Record(spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		second, err := Record(spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		h1, h2 := trace.HashBranches(first), trace.HashBranches(second)
		if h1 != h2 {
			t.Errorf("%s: repeated recordings differ: %s vs %s", c.spec, h1, h2)
		}
		if h1 != c.hash {
			t.Errorf("%s: content hash %s, want pinned %s", c.spec, h1, c.hash)
		}
		if len(first) == 0 {
			t.Errorf("%s: empty recording", c.spec)
		}
	}
}

// TestRecordedStreamsSurviveColumnarCodec round-trips each family's
// recording through the block-columnar codec.
func TestRecordedStreamsSurviveColumnarCodec(t *testing.T) {
	for _, c := range smallSpecs {
		branches, err := Record(MustParseSpec(c.spec))
		if err != nil {
			t.Fatal(err)
		}
		blob, err := trace.EncodeColumnar(branches)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.spec, err)
		}
		back, err := trace.DecodeBytes(blob)
		if err != nil {
			t.Fatalf("%s: decode: %v", c.spec, err)
		}
		if trace.HashBranches(back) != trace.HashBranches(branches) {
			t.Errorf("%s: columnar round trip changed content", c.spec)
		}
	}
}

func TestClosedFormIID(t *testing.T) {
	for _, p := range []float64{0.1, 0.3, 0.5, 0.8, 0.95} {
		q := 1 - p
		if got, want := ClosedFormIIDMissRate(1, p), 2*p*q; math.Abs(got-want) > 1e-12 {
			t.Errorf("1-bit closed form at p=%v: %v, want %v", p, got, want)
		}
		// Direction symmetry: relabeling taken<->not-taken preserves
		// the rate.
		if a, b := ClosedFormIIDMissRate(2, p), ClosedFormIIDMissRate(2, q); math.Abs(a-b) > 1e-12 {
			t.Errorf("2-bit closed form asymmetric: miss(%v)=%v, miss(%v)=%v", p, a, q, b)
		}
	}
	if got := ClosedFormIIDMissRate(2, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("2-bit closed form at p=0.5: %v, want 0.5", got)
	}
	if ClosedFormIIDMissRate(2, 0.05) >= ClosedFormIIDMissRate(2, 0.3) {
		t.Errorf("2-bit closed form not monotone on [0,0.5]")
	}
}

// TestAnalyticM1HandFormula cross-checks the product chain against an
// independently hand-derived closed form for the m=1 matcher under
// 1-bit counters. With a single-letter pattern the cmp site is iid
// Bernoulli(pm) (pm = mismatch probability) and the match site its
// complement, each missing 2·pm·(1-pm); the guard site under a 1-bit
// counter misses 2·pm per character; branches per char are 4+pm.
func TestAnalyticM1HandFormula(t *testing.T) {
	for _, tc := range []struct {
		spec string
		pm   float64
	}{
		{"algo:mp,m=1,sigma=2,pat=uni,n=1000", 0.5},
		{"algo:mp,m=1,sigma=4,pat=uni,n=1000", 0.75},
		{"algo:mp,m=1,dist=bern,p=0.7,pat=uni,n=1000", 0.3},
		{"algo:kmp,m=1,sigma=2,pat=uni,n=1000", 0.5},
	} {
		got, err := AnalyzeMatch(MustParseSpec(tc.spec), 1)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		pm := tc.pm
		wantMisses := 4*pm*(1-pm) + 2*pm
		wantBranches := 4 + pm
		if math.Abs(got.MissesPerChar-wantMisses) > 1e-9 {
			t.Errorf("%s: misses/char %v, want %v", tc.spec, got.MissesPerChar, wantMisses)
		}
		if math.Abs(got.BranchesPerChar-wantBranches) > 1e-9 {
			t.Errorf("%s: branches/char %v, want %v", tc.spec, got.BranchesPerChar, wantBranches)
		}
		if math.Abs(got.MissRate-wantMisses/wantBranches) > 1e-9 {
			t.Errorf("%s: rate %v, want %v", tc.spec, got.MissRate, wantMisses/wantBranches)
		}
	}
}

// simulatePerSiteCounters is an in-test first-order predictor: one
// k-bit saturating counter per PC, initialised weakly taken,
// predicting the upper half of its range. Written from the definition
// — independent of internal/predictor — so the comparison below
// chains recorder → this simulator → analytic model with no shared
// code.
func simulatePerSiteCounters(branches []trace.Branch, bits uint) float64 {
	max := uint8(1<<bits - 1)
	mid := max / 2
	ctrs := make(map[uint64]uint8)
	misses, total := 0, 0
	for _, b := range branches {
		if b.Kind != trace.Conditional {
			continue
		}
		v, ok := ctrs[b.PC]
		if !ok {
			v = mid + 1
		}
		if (v > mid) != b.Taken {
			misses++
		}
		if b.Taken {
			if v < max {
				v++
			}
		} else if v > 0 {
			v--
		}
		ctrs[b.PC] = v
		total++
	}
	return float64(misses) / float64(total)
}

// TestAnalyticMatchesRecordedStreams is the package-level
// measured-vs-predicted check: the analytic chain's steady-state rate
// must match a direct per-site counter simulation of the recorded
// stream. (The ext-realwork experiment repeats this end to end
// through the production simulator at ≥1M branches.)
func TestAnalyticMatchesRecordedStreams(t *testing.T) {
	specs := []string{
		"algo:mp,n=150000,m=4,sigma=2,seed=3",
		"algo:mp,n=150000,m=8,sigma=4,pat=rand,seed=11",
		"algo:mp,n=150000,m=6,dist=bern,p=0.7,pat=alt,seed=2",
		"algo:kmp,n=150000,m=4,sigma=2,seed=3",
		"algo:kmp,n=150000,m=8,pat=uni,seed=5",
	}
	for _, raw := range specs {
		spec := MustParseSpec(raw)
		branches, err := Record(spec)
		if err != nil {
			t.Fatalf("%s: %v", raw, err)
		}
		for _, bits := range []uint{1, 2} {
			want, err := AnalyzeMatch(spec, bits)
			if err != nil {
				t.Fatalf("%s: %v", raw, err)
			}
			got := simulatePerSiteCounters(branches, bits)
			if diff := math.Abs(got - want.MissRate); diff > 0.01 {
				t.Errorf("%s ctr=%d: measured %.5f vs analytic %.5f (|diff| %.5f > 0.01)",
					raw, bits, got, want.MissRate, diff)
			}
		}
	}
}

// TestKMPBeatsMPOnPeriodicPattern: on the all-a pattern over a small
// alphabet the strong failure function skips the redundant compares
// MP repeats, which shows up as a different (lower) analytic cmp-site
// pressure. Guards the wiring that actually distinguishes the two.
func TestKMPBeatsMPOnPeriodicPattern(t *testing.T) {
	mp := MustParseSpec("algo:mp,m=8,pat=uni,sigma=2,n=1000")
	kmp := MustParseSpec("algo:kmp,m=8,pat=uni,sigma=2,n=1000")
	am, err := AnalyzeMatch(mp, 2)
	if err != nil {
		t.Fatal(err)
	}
	ak, err := AnalyzeMatch(kmp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ak.BranchesPerChar >= am.BranchesPerChar {
		t.Errorf("KMP executes %v branches/char, MP %v — strong failure should skip work",
			ak.BranchesPerChar, am.BranchesPerChar)
	}
	bm, err := Record(Spec{Name: "mp", N: 1000, M: 8, Pat: "uni"})
	if err != nil {
		t.Fatal(err)
	}
	bk, err := Record(Spec{Name: "kmp", N: 1000, M: 8, Pat: "uni"})
	if err != nil {
		t.Fatal(err)
	}
	if trace.HashBranches(bm) == trace.HashBranches(bk) {
		t.Errorf("mp and kmp recorded identical streams on a periodic pattern")
	}
}
