package alias

import (
	"fmt"

	"gskew/internal/indexfn"
	"gskew/internal/predictor"
)

// This file implements the interference classification of Young, Gloy
// and Smith (the paper's reference [21], quoted in section 1):
// aliasing occurrences are destructive (cause a misprediction that the
// unaliased predictor avoids), constructive (accidentally fix a
// prediction the unaliased predictor gets wrong) or harmless (no
// change). The paper relies on [21]'s finding that "constructive
// aliasing is much less likely than destructive aliasing", and its
// analytical model overestimates misprediction precisely because it
// ignores the constructive term — this classifier measures both.

// InterferenceKind classifies one conditional-branch reference.
type InterferenceKind int

// Classification outcomes.
const (
	// Unaliased: the table entry held this reference's own substream.
	Unaliased InterferenceKind = iota
	// Harmless: the entry was aliased, but the prediction equals what
	// the unaliased predictor would have said.
	Harmless
	// Destructive: aliasing changed a correct prediction into a wrong
	// one.
	Destructive
	// Constructive: aliasing changed a wrong prediction into a
	// correct one.
	Constructive
	// ColdOracle: the unaliased oracle had not yet seen the substream,
	// so the reference cannot be classified against it.
	ColdOracle
)

// String names the kind.
func (k InterferenceKind) String() string {
	switch k {
	case Unaliased:
		return "unaliased"
	case Harmless:
		return "harmless"
	case Destructive:
		return "destructive"
	case Constructive:
		return "constructive"
	case ColdOracle:
		return "cold-oracle"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// InterferenceStats aggregates a classification run.
type InterferenceStats struct {
	References   int
	Unaliased    int
	Harmless     int
	Destructive  int
	Constructive int
	ColdOracle   int
}

// Aliased returns all references whose entry was aliased.
func (s InterferenceStats) Aliased() int {
	return s.Harmless + s.Destructive + s.Constructive
}

// DestructiveRatio returns destructive occurrences per reference.
func (s InterferenceStats) DestructiveRatio() float64 { return ratio(s.Destructive, s.References) }

// ConstructiveRatio returns constructive occurrences per reference.
func (s InterferenceStats) ConstructiveRatio() float64 { return ratio(s.Constructive, s.References) }

// Interference classifies the aliasing of a direct-mapped single-bank
// predictor by running, in lockstep on the same stream:
//
//   - the finite predictor under study (index function + counters),
//   - a tagged table detecting whether each access was aliased,
//   - an unaliased oracle giving the aliasing-free prediction.
type Interference struct {
	finite *predictor.Single
	tags   *TaggedDM
	oracle *predictor.Unaliased
	stats  InterferenceStats
}

// NewInterference builds a classifier for a single-bank predictor over
// fn with counterBits-wide cells.
func NewInterference(fn indexfn.Func, counterBits uint) *Interference {
	return &Interference{
		finite: predictor.NewSingle(fn, counterBits),
		tags:   NewTaggedDM(fn),
		oracle: predictor.NewUnaliased(fn.HistoryBits(), counterBits),
	}
}

// Observe classifies one conditional reference and trains all three
// structures with the outcome.
func (n *Interference) Observe(addr, hist uint64, taken bool) InterferenceKind {
	n.stats.References++

	finitePred := n.finite.Predict(addr, hist)
	oracleSeen := n.oracle.Seen(addr, hist)
	oraclePred := n.oracle.Predict(addr, hist)
	aliased := n.tags.Observe(addr, hist) // also refreshes the tag

	n.finite.Update(addr, hist, taken)
	n.oracle.Update(addr, hist, taken)

	kind := Unaliased
	switch {
	case !oracleSeen:
		kind = ColdOracle
	case !aliased:
		kind = Unaliased
	case finitePred == oraclePred:
		kind = Harmless
	case oraclePred == taken:
		kind = Destructive
	default:
		kind = Constructive
	}
	switch kind {
	case Unaliased:
		n.stats.Unaliased++
	case Harmless:
		n.stats.Harmless++
	case Destructive:
		n.stats.Destructive++
	case Constructive:
		n.stats.Constructive++
	case ColdOracle:
		n.stats.ColdOracle++
	}
	return kind
}

// Stats returns the aggregate counts so far.
func (n *Interference) Stats() InterferenceStats { return n.stats }
