package alias

import (
	"container/heap"
	"fmt"
)

// This file implements Belady's OPT (furthest-next-use) replacement
// for tagged tables. The paper notes (after Sugumar and Abraham) that
// LRU is not an optimal replacement policy, so the capacity-aliasing
// estimate obtained from an LRU table is an upper bound; OPT gives the
// true minimum achievable by any replacement policy, and the gap
// between the direct-mapped table and OPT bounds the conflict
// component from above. OPT needs future knowledge, so it runs offline
// over a recorded reference stream.

// OptMissRatio simulates an n-entry fully-associative table with OPT
// replacement over refs and returns its miss ratio. It runs in
// O(len(refs) log n) time.
func OptMissRatio(refs []uint64, n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("alias: capacity %d must be positive", n))
	}
	if len(refs) == 0 {
		return 0
	}
	misses := OptMisses(refs, n)
	return float64(misses) / float64(len(refs))
}

// OptMisses returns the miss count of an n-entry OPT table over refs.
func OptMisses(refs []uint64, n int) int {
	// Precompute next-use indices: nextUse[i] is the position of the
	// next reference to refs[i] after i, or infinity.
	const inf = int(^uint(0) >> 1)
	nextUse := make([]int, len(refs))
	last := make(map[uint64]int, 1024)
	for i := len(refs) - 1; i >= 0; i-- {
		if j, ok := last[refs[i]]; ok {
			nextUse[i] = j
		} else {
			nextUse[i] = inf
		}
		last[refs[i]] = i
	}

	// Resident set: vector -> its current next-use. Eviction picks the
	// resident vector with the furthest next use, via a lazy max-heap
	// of (nextUse, vector) entries: stale heap entries (whose recorded
	// next use no longer matches the resident table) are discarded on
	// pop.
	resident := make(map[uint64]int, n)
	h := &optHeap{}
	misses := 0
	for i, v := range refs {
		if _, ok := resident[v]; ok {
			resident[v] = nextUse[i]
			heap.Push(h, optEntry{next: nextUse[i], vec: v})
		} else {
			misses++
			if len(resident) >= n {
				for {
					top := heap.Pop(h).(optEntry)
					if cur, ok := resident[top.vec]; ok && cur == top.next {
						delete(resident, top.vec)
						break
					}
				}
			}
			resident[v] = nextUse[i]
			heap.Push(h, optEntry{next: nextUse[i], vec: v})
		}
	}
	return misses
}

type optEntry struct {
	next int
	vec  uint64
}

// optHeap is a max-heap on next-use distance.
type optHeap []optEntry

func (h optHeap) Len() int           { return len(h) }
func (h optHeap) Less(i, j int) bool { return h[i].next > h[j].next }
func (h optHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *optHeap) Push(x any)        { *h = append(*h, x.(optEntry)) }
func (h *optHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
