// Package alias implements the paper's aliasing measurement apparatus:
// tagged tables that detect when distinct (address, history) pairs
// share a predictor entry, a fully-associative LRU reference table,
// the three-Cs classification (compulsory / capacity / conflict) built
// from them, and an exact LRU stack-distance (last-use distance)
// profiler used by the analytical model.
//
// The measurement follows section 2: simulate a structure with the
// same entry count and index function as the predictor under study,
// but store the identity of the last (address, history) pair in each
// entry instead of a counter. An access whose stored identity differs
// is an aliasing occurrence — the analogue of a cache miss with a
// one-datum line.
package alias

import (
	"fmt"

	"gskew/internal/indexfn"
	"gskew/internal/lru"
)

// TaggedDM is a direct-mapped tagged table: entry i remembers the last
// information vector that mapped to i under the given index function.
type TaggedDM struct {
	fn       indexfn.Func
	tags     []uint64
	valid    []bool
	accesses int
	misses   int
}

// NewTaggedDM returns a tagged direct-mapped table mirroring a
// predictor table that uses fn.
func NewTaggedDM(fn indexfn.Func) *TaggedDM {
	n := 1 << fn.Bits()
	return &TaggedDM{fn: fn, tags: make([]uint64, n), valid: make([]bool, n)}
}

// Observe records a reference and reports whether it aliased (the
// entry held a different vector, or was empty — i.e. a "miss").
func (t *TaggedDM) Observe(addr, hist uint64) bool {
	v := indexfn.Vector(addr, hist, t.fn.HistoryBits())
	i := t.fn.Index(addr, hist)
	t.accesses++
	if t.valid[i] && t.tags[i] == v {
		return false
	}
	t.valid[i] = true
	t.tags[i] = v
	t.misses++
	return true
}

// Accesses returns the number of references observed.
func (t *TaggedDM) Accesses() int { return t.accesses }

// Misses returns the number of aliasing occurrences.
func (t *TaggedDM) Misses() int { return t.misses }

// MissRatio returns misses/accesses — the paper's aliasing ratio.
func (t *TaggedDM) MissRatio() float64 {
	if t.accesses == 0 {
		return 0
	}
	return float64(t.misses) / float64(t.accesses)
}

// Entries returns the table size.
func (t *TaggedDM) Entries() int { return len(t.tags) }

// Name describes the table, e.g. "gshare-dm".
func (t *TaggedDM) Name() string { return t.fn.Name() + "-dm" }

// TaggedFA is a fully-associative tagged table with LRU replacement.
// Its miss ratio is compulsory + capacity aliasing; the difference
// between a TaggedDM and a TaggedFA of equal size is conflict aliasing.
type TaggedFA struct {
	set      *lru.Set
	histBits uint
	accesses int
	misses   int
}

// NewTaggedFA returns an n-entry fully-associative LRU tagged table
// keyed by (address, k-bit history).
func NewTaggedFA(entries int, histBits uint) *TaggedFA {
	return &TaggedFA{set: lru.NewSet(entries), histBits: histBits}
}

// Observe records a reference and reports whether it missed.
func (t *TaggedFA) Observe(addr, hist uint64) bool {
	v := indexfn.Vector(addr, hist, t.histBits)
	t.accesses++
	hit, _, _ := t.set.Touch(v)
	if !hit {
		t.misses++
	}
	return !hit
}

// Accesses returns the number of references observed.
func (t *TaggedFA) Accesses() int { return t.accesses }

// Misses returns the number of misses.
func (t *TaggedFA) Misses() int { return t.misses }

// MissRatio returns misses/accesses.
func (t *TaggedFA) MissRatio() float64 {
	if t.accesses == 0 {
		return 0
	}
	return float64(t.misses) / float64(t.accesses)
}

// Entries returns the table capacity.
func (t *TaggedFA) Entries() int { return t.set.Capacity() }

// Classifier decomposes the aliasing of a direct-mapped organisation
// into the three Cs by running, side by side on the same reference
// stream:
//
//   - an infinite tagged table (first-use detector) -> compulsory,
//   - a fully-associative LRU table of equal size  -> + capacity,
//   - the direct-mapped tagged table under study   -> + conflict.
//
// Per reference: compulsory if never seen before; else capacity if the
// FA table missed; else conflict if the DM table missed.
type Classifier struct {
	dm   *TaggedDM
	fa   *TaggedFA
	seen map[uint64]struct{}
	cold int
}

// ThreeC holds a three-Cs decomposition, in reference counts.
type ThreeC struct {
	Accesses   int
	Compulsory int
	Capacity   int
	Conflict   int
}

// Total returns all aliasing occurrences (the DM miss count).
func (c ThreeC) Total() int { return c.Compulsory + c.Capacity + c.Conflict }

// Ratio returns a component divided by accesses.
func ratio(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// CompulsoryRatio returns compulsory aliasing per access.
func (c ThreeC) CompulsoryRatio() float64 { return ratio(c.Compulsory, c.Accesses) }

// CapacityRatio returns capacity aliasing per access.
func (c ThreeC) CapacityRatio() float64 { return ratio(c.Capacity, c.Accesses) }

// ConflictRatio returns conflict aliasing per access.
func (c ThreeC) ConflictRatio() float64 { return ratio(c.Conflict, c.Accesses) }

// TotalRatio returns total aliasing per access.
func (c ThreeC) TotalRatio() float64 { return ratio(c.Total(), c.Accesses) }

// String renders the decomposition compactly.
func (c ThreeC) String() string {
	return fmt.Sprintf("3C{n=%d compulsory=%.3f%% capacity=%.3f%% conflict=%.3f%%}",
		c.Accesses, 100*c.CompulsoryRatio(), 100*c.CapacityRatio(), 100*c.ConflictRatio())
}

// NewClassifier builds a classifier for the direct-mapped organisation
// using fn. The FA reference table has the same entry count.
func NewClassifier(fn indexfn.Func) *Classifier {
	return &Classifier{
		dm:   NewTaggedDM(fn),
		fa:   NewTaggedFA(1<<fn.Bits(), fn.HistoryBits()),
		seen: make(map[uint64]struct{}),
	}
}

// RefClass is the per-reference classification returned by Observe.
type RefClass int

// Per-reference classes, in priority order.
const (
	NoAlias RefClass = iota
	Compulsory
	Capacity
	Conflict
)

// Observe classifies one reference against the DM table under study,
// using the priority rule compulsory > capacity > conflict.
func (c *Classifier) Observe(addr, hist uint64) RefClass {
	v := indexfn.Vector(addr, hist, c.dm.fn.HistoryBits())
	dmMiss := c.dm.Observe(addr, hist)
	faMiss := c.fa.Observe(addr, hist)
	_, everSeen := c.seen[v]
	if !everSeen {
		c.seen[v] = struct{}{}
		c.cold++
	}
	switch {
	case !everSeen:
		return Compulsory
	case faMiss:
		return Capacity
	case dmMiss:
		return Conflict
	default:
		return NoAlias
	}
}

// Stats returns the aggregate decomposition, using the standard
// three-Cs identities so that the components sum to the DM table's
// miss count: compulsory = first uses, capacity = FA misses −
// compulsory, conflict = DM misses − FA misses. Conflict can in
// principle be negative over a window (an LRU pathology where the
// direct-mapped table out-performs fully-associative LRU); it is
// reported as measured.
func (c *Classifier) Stats() ThreeC {
	return ThreeC{
		Accesses:   c.dm.Accesses(),
		Compulsory: c.cold,
		Capacity:   c.fa.Misses() - c.cold,
		Conflict:   c.dm.Misses() - c.fa.Misses(),
	}
}

// DM exposes the underlying direct-mapped tagged table.
func (c *Classifier) DM() *TaggedDM { return c.dm }

// FA exposes the underlying fully-associative reference table.
func (c *Classifier) FA() *TaggedFA { return c.fa }
