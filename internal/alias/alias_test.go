package alias

import (
	"testing"
	"testing/quick"

	"gskew/internal/indexfn"
	"gskew/internal/rng"
)

func TestTaggedDMDetectsSharing(t *testing.T) {
	// 16-entry bimodal table: addresses congruent mod 16 share entries.
	dm := NewTaggedDM(indexfn.NewBimodal(4))
	if !dm.Observe(0x0, 0) {
		t.Error("first access must miss (cold)")
	}
	if dm.Observe(0x0, 0) {
		t.Error("repeat access must hit")
	}
	if !dm.Observe(0x10, 0) {
		t.Error("conflicting address must miss")
	}
	if !dm.Observe(0x0, 0) {
		t.Error("evicted vector must miss again")
	}
	if dm.Accesses() != 4 || dm.Misses() != 3 {
		t.Errorf("accesses=%d misses=%d", dm.Accesses(), dm.Misses())
	}
	if got := dm.MissRatio(); got != 0.75 {
		t.Errorf("MissRatio = %v", got)
	}
	if dm.Entries() != 16 || dm.Name() != "bimodal-dm" {
		t.Error("metadata wrong")
	}
}

func TestTaggedDMDistinguishesHistories(t *testing.T) {
	// With gshare indexing, the same address under two histories is
	// two distinct vectors; they alias only if they index the same
	// entry.
	fn := indexfn.NewGShare(4, 4)
	dm := NewTaggedDM(fn)
	dm.Observe(0, 0b0001)
	if !dm.Observe(0, 0b0010) {
		t.Error("different history = different vector; must miss")
	}
}

func TestTaggedFALRUOrder(t *testing.T) {
	fa := NewTaggedFA(2, 0)
	fa.Observe(1, 0) // miss
	fa.Observe(2, 0) // miss
	fa.Observe(1, 0) // hit, refreshes 1
	if !fa.Observe(3, 0) {
		t.Error("must miss on 3")
	}
	// 2 was LRU and evicted.
	if !fa.Observe(2, 0) {
		t.Error("2 should have been evicted")
	}
	if fa.Observe(3, 0) {
		t.Error("3 should still be resident")
	}
	if fa.Entries() != 2 {
		t.Error("Entries wrong")
	}
	if fa.Misses() != 4 || fa.Accesses() != 6 {
		t.Errorf("misses=%d accesses=%d", fa.Misses(), fa.Accesses())
	}
	if r := fa.MissRatio(); r < 0.66 || r > 0.67 {
		t.Errorf("MissRatio = %v", r)
	}
}

func TestEmptyRatios(t *testing.T) {
	if NewTaggedDM(indexfn.NewBimodal(4)).MissRatio() != 0 {
		t.Error("empty DM ratio")
	}
	if NewTaggedFA(4, 0).MissRatio() != 0 {
		t.Error("empty FA ratio")
	}
}

func TestClassifierDecomposition(t *testing.T) {
	// 4-entry bimodal table. Stream: two conflicting addresses (0, 4)
	// ping-pong: pure conflict. Then a sweep over 8 addresses: capacity.
	c := NewClassifier(indexfn.NewBimodal(2))

	if got := c.Observe(0, 0); got != Compulsory {
		t.Errorf("first ref class = %v", got)
	}
	c.Observe(4, 0) // compulsory (also conflicts, but priority rules)
	for i := 0; i < 10; i++ {
		if got := c.Observe(0, 0); got != Conflict {
			t.Fatalf("ping class = %v, want Conflict", got)
		}
		if got := c.Observe(4, 0); got != Conflict {
			t.Fatalf("pong class = %v, want Conflict", got)
		}
	}
	st := c.Stats()
	if st.Compulsory != 2 {
		t.Errorf("Compulsory = %d, want 2", st.Compulsory)
	}
	if st.Conflict != 20 {
		t.Errorf("Conflict = %d, want 20", st.Conflict)
	}
	if st.Capacity != 0 {
		t.Errorf("Capacity = %d, want 0", st.Capacity)
	}
	if st.Total() != c.DM().Misses() {
		t.Errorf("Total %d != DM misses %d", st.Total(), c.DM().Misses())
	}
}

func TestClassifierCapacity(t *testing.T) {
	// Sweeping 8 addresses through a 4-entry table is pure capacity
	// after the cold pass: both DM and FA miss every time.
	c := NewClassifier(indexfn.NewBimodal(2))
	for round := 0; round < 5; round++ {
		for a := uint64(0); a < 8; a++ {
			c.Observe(a, 0)
		}
	}
	st := c.Stats()
	if st.Compulsory != 8 {
		t.Errorf("Compulsory = %d", st.Compulsory)
	}
	if st.Capacity != 32 {
		t.Errorf("Capacity = %d, want 32", st.Capacity)
	}
	if st.Conflict != 0 {
		t.Errorf("Conflict = %d, want 0 (DM misses equal FA misses here)", st.Conflict)
	}
	if st.Accesses != 40 {
		t.Errorf("Accesses = %d", st.Accesses)
	}
}

func TestThreeCRatios(t *testing.T) {
	c := ThreeC{Accesses: 200, Compulsory: 2, Capacity: 8, Conflict: 10}
	if c.Total() != 20 {
		t.Error("Total")
	}
	if c.CompulsoryRatio() != 0.01 || c.CapacityRatio() != 0.04 ||
		c.ConflictRatio() != 0.05 || c.TotalRatio() != 0.1 {
		t.Error("ratios wrong")
	}
	var zero ThreeC
	if zero.TotalRatio() != 0 {
		t.Error("zero-access ratio should be 0")
	}
	if s := c.String(); s == "" {
		t.Error("String empty")
	}
}

// naiveStackDist is the O(n^2) oracle.
type naiveStackDist struct {
	refs []uint64
}

func (n *naiveStackDist) observe(v uint64) int {
	defer func() { n.refs = append(n.refs, v) }()
	last := -1
	for i := len(n.refs) - 1; i >= 0; i-- {
		if n.refs[i] == v {
			last = i
			break
		}
	}
	if last == -1 {
		return Cold
	}
	distinct := make(map[uint64]struct{})
	for _, u := range n.refs[last+1:] {
		distinct[u] = struct{}{}
	}
	return len(distinct)
}

func TestStackDistMatchesNaive(t *testing.T) {
	f := func(seed uint64, n16 uint16, span8 uint8) bool {
		r := rng.NewXoshiro256(seed)
		n := int(n16%600) + 1
		span := uint64(span8%40) + 2
		sd := NewStackDist(4)
		oracle := &naiveStackDist{}
		for i := 0; i < n; i++ {
			v := r.Uint64n(span)
			if sd.Observe(v) != oracle.observe(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStackDistSimpleSequence(t *testing.T) {
	sd := NewStackDist(16)
	seq := []struct {
		v    uint64
		want int
	}{
		{1, Cold},
		{2, Cold},
		{3, Cold},
		{1, 2}, // 2, 3 touched since
		{1, 0}, // immediate repeat
		{2, 2}, // 3, 1 touched since
		{3, 2}, // 1, 2 touched since
	}
	for i, s := range seq {
		if got := sd.Observe(s.v); got != s.want {
			t.Fatalf("step %d: Observe(%d) = %d, want %d", i, s.v, got, s.want)
		}
	}
	if sd.Distinct() != 3 {
		t.Errorf("Distinct = %d", sd.Distinct())
	}
	if sd.Accesses() != len(seq) {
		t.Errorf("Accesses = %d", sd.Accesses())
	}
}

func TestStackDistMissRatioMatchesFATable(t *testing.T) {
	// The histogram-derived LRU miss ratio must equal an actual
	// TaggedFA simulation at every capacity.
	r := rng.NewXoshiro256(77)
	const n = 20000
	vs := make([]uint64, n)
	for i := range vs {
		// Skewed popularity so there is real reuse structure.
		vs[i] = r.Uint64n(64) * r.Uint64n(64)
	}
	sd := NewStackDist(n)
	for _, v := range vs {
		sd.Observe(v)
	}
	for _, capEntries := range []int{1, 4, 16, 64, 256} {
		fa := NewTaggedFA(capEntries, 0)
		for _, v := range vs {
			fa.Observe(v, 0) // addr = vector, hist 0
		}
		if got, want := sd.MissRatioAt(capEntries), fa.MissRatio(); got != want {
			t.Errorf("capacity %d: stack-dist ratio %.5f != FA simulation %.5f",
				capEntries, got, want)
		}
	}
}

func TestStackDistColdRatio(t *testing.T) {
	sd := NewStackDist(4)
	sd.Observe(1)
	sd.Observe(2)
	sd.Observe(1)
	sd.Observe(2)
	if got := sd.ColdRatio(); got != 0.5 {
		t.Errorf("ColdRatio = %v", got)
	}
	if NewStackDist(4).ColdRatio() != 0 {
		t.Error("empty ColdRatio")
	}
	if NewStackDist(4).MissRatioAt(4) != 0 {
		t.Error("empty MissRatioAt")
	}
}

func TestStackDistGrowth(t *testing.T) {
	// Start with a tiny hint and stream far past it.
	sd := NewStackDist(1)
	r := rng.NewXoshiro256(5)
	oracle := &naiveStackDist{}
	for i := 0; i < 800; i++ {
		v := r.Uint64n(50)
		if got, want := sd.Observe(v), oracle.observe(v); got != want {
			t.Fatalf("after growth: Observe(%d) = %d, want %d", v, got, want)
		}
	}
}

func BenchmarkStackDistObserve(b *testing.B) {
	sd := NewStackDist(b.N)
	r := rng.NewXoshiro256(1)
	vals := make([]uint64, 1<<16)
	for i := range vals {
		vals[i] = r.Uint64n(1 << 14)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sd.Observe(vals[i&(1<<16-1)])
	}
}

func BenchmarkClassifierObserve(b *testing.B) {
	c := NewClassifier(indexfn.NewGShare(12, 8))
	r := rng.NewXoshiro256(1)
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(addrs[i&(1<<16-1)], uint64(i))
	}
}
