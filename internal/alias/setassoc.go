package alias

import (
	"fmt"

	"gskew/internal/indexfn"
)

// TaggedSA is a set-associative tagged table with per-set LRU
// replacement — the classical conflict remedy the paper weighs against
// skewing in section 3.3 (and rejects for predictor tables because of
// the tag cost). Measuring its miss ratios quantifies exactly how much
// conflict aliasing each degree of associativity would remove, which
// is the bar the tag-free skewed organisation has to clear.
type TaggedSA struct {
	fn       indexfn.Func
	ways     int
	tags     []uint64 // sets x ways
	valid    []bool
	age      []uint32 // per-entry LRU clock value
	clock    uint32
	accesses int
	misses   int
}

// NewTaggedSA returns a tagged table of 2^fn.Bits() sets with the
// given associativity. Total capacity is sets x ways entries.
func NewTaggedSA(fn indexfn.Func, ways int) *TaggedSA {
	if ways < 1 || ways > 64 {
		panic(fmt.Sprintf("alias: associativity %d out of range [1,64]", ways))
	}
	n := (1 << fn.Bits()) * ways
	return &TaggedSA{
		fn:    fn,
		ways:  ways,
		tags:  make([]uint64, n),
		valid: make([]bool, n),
		age:   make([]uint32, n),
	}
}

// Observe records a reference and reports whether it missed (the set
// did not hold the reference's vector).
func (t *TaggedSA) Observe(addr, hist uint64) bool {
	v := indexfn.Vector(addr, hist, t.fn.HistoryBits())
	set := int(t.fn.Index(addr, hist)) * t.ways
	t.accesses++
	t.clock++

	// Hit?
	for w := 0; w < t.ways; w++ {
		i := set + w
		if t.valid[i] && t.tags[i] == v {
			t.age[i] = t.clock
			return false
		}
	}
	// Miss: fill an invalid way or evict the LRU way.
	t.misses++
	victim := set
	for w := 0; w < t.ways; w++ {
		i := set + w
		if !t.valid[i] {
			victim = i
			break
		}
		if t.age[i] < t.age[victim] {
			victim = i
		}
	}
	t.valid[victim] = true
	t.tags[victim] = v
	t.age[victim] = t.clock
	return true
}

// Accesses returns the number of references observed.
func (t *TaggedSA) Accesses() int { return t.accesses }

// Misses returns the miss count.
func (t *TaggedSA) Misses() int { return t.misses }

// MissRatio returns misses per access.
func (t *TaggedSA) MissRatio() float64 {
	if t.accesses == 0 {
		return 0
	}
	return float64(t.misses) / float64(t.accesses)
}

// Entries returns the total capacity (sets x ways).
func (t *TaggedSA) Entries() int { return len(t.tags) }

// Ways returns the associativity.
func (t *TaggedSA) Ways() int { return t.ways }
