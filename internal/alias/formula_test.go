package alias

// Empirical validation of the paper's formula (1): for a
// well-dispersing hash onto an N-entry table, the probability that a
// reference with last-use distance D finds its entry overwritten is
// p = 1 - (1 - 1/N)^D. This test drives a tagged direct-mapped table
// and the stack-distance profiler side by side, buckets references by
// D, and compares the measured aliasing rate per bucket against the
// formula — the foundation under the section 5.2 analytical model.

import (
	"math"
	"testing"

	"gskew/internal/indexfn"
	"gskew/internal/model"
	"gskew/internal/rng"
)

func TestAliasProbFormulaEmpirical(t *testing.T) {
	const tableBits = 8 // 256 entries: small so all D regimes get mass
	const n = 1 << tableBits

	// Reference stream: random vectors with a reuse structure that
	// spreads last-use distances across decades — a mixture of hot,
	// warm and cold vectors.
	r := rng.NewXoshiro256(1234)
	gen := func() uint64 {
		switch {
		case r.Bool(0.5):
			return r.Uint64n(32) // hot: tiny D
		case r.Bool(0.6):
			return 1000 + r.Uint64n(400) // warm: D ~ tens-hundreds
		default:
			return 100000 + r.Uint64n(20000) // cold-ish: large D
		}
	}

	// The tagged table must use a well-dispersing index of the vector.
	// Use gshare over (vector, 0) — i.e. hash the vector itself via a
	// mixing function so the "good hashing" assumption of formula (1)
	// holds.
	dm := NewTaggedDM(indexfn.NewGShare(tableBits, 0))
	sd := NewStackDist(1 << 16)

	type bucket struct {
		aliased, total int
		sumP           float64 // formula prediction accumulated per ref
	}
	buckets := map[int]*bucket{} // bucket key: floor(log2(D+1))
	const steps = 400000
	for i := 0; i < steps; i++ {
		v := gen()
		h := rng.Mix64(v) // disperse the vector before indexing
		d := sd.Observe(v)
		aliased := dm.Observe(h, 0)
		if d == Cold {
			continue // formula applies to re-references only
		}
		key := int(math.Log2(float64(d + 2)))
		b := buckets[key]
		if b == nil {
			b = &bucket{}
			buckets[key] = b
		}
		b.total++
		if aliased {
			b.aliased++
		}
		b.sumP += model.AliasProb(d, n)
	}

	checked := 0
	for key, b := range buckets {
		if b.total < 3000 {
			continue // not enough mass for a tight comparison
		}
		measured := float64(b.aliased) / float64(b.total)
		predicted := b.sumP / float64(b.total)
		// Allow generous slack: the hash is good but not ideal, and
		// bucket averaging mixes distances.
		if math.Abs(measured-predicted) > 0.08 {
			t.Errorf("D-bucket 2^%d: measured aliasing %.4f vs formula %.4f", key, measured, predicted)
		}
		checked++
	}
	if checked < 4 {
		t.Fatalf("only %d buckets had enough mass; stream misconfigured", checked)
	}
}
