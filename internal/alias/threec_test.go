package alias_test

import (
	"testing"

	"gskew/internal/alias"
	"gskew/internal/indexfn"
	"gskew/internal/rng"
)

// TestThreeCsIdentities drives the classifier with random reference
// streams and checks the paper's three-Cs accounting identities against
// independent shadow models: a plain map for the first-use detector and
// a map-per-index shadow of the tagged direct-mapped table.
func TestThreeCsIdentities(t *testing.T) {
	fns := []indexfn.Func{
		indexfn.NewBimodal(6),
		indexfn.NewGShare(7, 5),
		indexfn.NewGSelect(7, 4),
	}
	for _, fn := range fns {
		fn := fn
		t.Run(fn.Name(), func(t *testing.T) {
			cl := alias.NewClassifier(fn)
			x := rng.NewXoshiro256(0x3C5)
			seen := make(map[uint64]struct{})
			shadowDM := make(map[uint64]uint64) // index -> last vector
			var tally [4]int
			const refs = 30000
			for i := 0; i < refs; i++ {
				addr := x.Uint64() & 0x1FF
				hist := x.Uint64() & 0x3F
				v := indexfn.Vector(addr, hist, fn.HistoryBits())
				idx := fn.Index(addr, hist)
				_, everSeen := seen[v]
				prev, dmHeld := shadowDM[idx]

				class := cl.Observe(addr, hist)
				tally[class]++

				if !everSeen && class != alias.Compulsory {
					t.Fatalf("ref %d: first use of vector %#x classified %v", i, v, class)
				}
				if everSeen && class == alias.Compulsory {
					t.Fatalf("ref %d: repeat of vector %#x classified compulsory", i, v)
				}
				if class == alias.NoAlias && (!dmHeld || prev != v) {
					t.Fatalf("ref %d: NoAlias but shadow DM entry %d held %#x, not %#x", i, idx, prev, v)
				}
				if class == alias.Conflict && dmHeld && prev == v {
					t.Fatalf("ref %d: Conflict but shadow DM entry %d already held %#x", i, idx, v)
				}

				seen[v] = struct{}{}
				shadowDM[idx] = v
			}

			st := cl.Stats()
			if st.Accesses != refs || cl.DM().Accesses() != refs || cl.FA().Accesses() != refs {
				t.Fatalf("access counts: stats %d, dm %d, fa %d, want %d",
					st.Accesses, cl.DM().Accesses(), cl.FA().Accesses(), refs)
			}
			// The decomposition must sum to the DM table's aliasing count,
			// and the compulsory component must equal the number of
			// distinct vectors (every vector misses exactly once cold).
			if st.Total() != cl.DM().Misses() {
				t.Errorf("compulsory+capacity+conflict = %d, DM misses = %d", st.Total(), cl.DM().Misses())
			}
			if st.Compulsory != len(seen) {
				t.Errorf("compulsory = %d, distinct vectors = %d", st.Compulsory, len(seen))
			}
			if st.Compulsory != tally[alias.Compulsory] {
				t.Errorf("stats compulsory %d != per-ref tally %d", st.Compulsory, tally[alias.Compulsory])
			}
			if got := st.Compulsory + st.Capacity; got != cl.FA().Misses() {
				t.Errorf("compulsory+capacity = %d, FA misses = %d", got, cl.FA().Misses())
			}
			if st.Capacity != tally[alias.Capacity] {
				t.Errorf("stats capacity %d != per-ref tally %d", st.Capacity, tally[alias.Capacity])
			}
			// Every class must actually occur on an adversarial stream this
			// dense, or the test is vacuous.
			for _, class := range []alias.RefClass{alias.Compulsory, alias.Capacity, alias.Conflict} {
				if tally[class] == 0 {
					t.Errorf("class %v never occurred in %d references", class, refs)
				}
			}
		})
	}
}
