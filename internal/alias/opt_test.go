package alias

import (
	"testing"
	"testing/quick"

	"gskew/internal/rng"
)

// bruteOpt is an O(n^2) reference implementation of OPT misses.
func bruteOpt(refs []uint64, capacity int) int {
	resident := make(map[uint64]bool)
	misses := 0
	for i, v := range refs {
		if resident[v] {
			continue
		}
		misses++
		if len(resident) >= capacity {
			// Evict the resident vector whose next use is furthest.
			furthestVec := uint64(0)
			furthestAt := -1
			found := false
			for r := range resident {
				next := len(refs) + 1 // infinity
				for j := i + 1; j < len(refs); j++ {
					if refs[j] == r {
						next = j
						break
					}
				}
				if next > furthestAt {
					furthestAt = next
					furthestVec = r
					found = true
				}
			}
			if found {
				delete(resident, furthestVec)
			}
		}
		resident[v] = true
	}
	return misses
}

func TestOptMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, n16 uint16, cap8, span8 uint8) bool {
		r := rng.NewXoshiro256(seed)
		n := int(n16%300) + 1
		capacity := int(cap8%12) + 1
		span := uint64(span8%24) + 2
		refs := make([]uint64, n)
		for i := range refs {
			refs[i] = r.Uint64n(span)
		}
		return OptMisses(refs, capacity) == bruteOpt(refs, capacity)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOptKnownSequence(t *testing.T) {
	// Classic example: A B C A B D A B with capacity 2.
	// OPT: miss A, miss B, miss C (evict C's slot choice: evict C? we
	// must evict the furthest next use among {A,B} vs C... eviction
	// happens when C arrives: resident {A,B}; A next at 3, B next at 4;
	// evict B? No — OPT evicts the FURTHEST next use: B (pos 4) vs A
	// (pos 3): evict B. Then A hits, B misses (evict C: C never used
	// again), D misses (evict A? A next at 6, B next at 7: evict B),
	// A hits? A was resident... walk it carefully below.
	refs := []uint64{'A', 'B', 'C', 'A', 'B', 'D', 'A', 'B'}
	got := OptMisses(refs, 2)
	want := bruteOpt(refs, 2)
	if got != want {
		t.Errorf("OptMisses = %d, brute force = %d", got, want)
	}
	// OPT can never beat the number of distinct vectors.
	if got < 4 {
		t.Errorf("OptMisses = %d below compulsory floor 4", got)
	}
}

func TestOptNeverWorseThanLRU(t *testing.T) {
	// Property: OPT misses <= LRU misses at every capacity.
	f := func(seed uint64, cap8 uint8) bool {
		r := rng.NewXoshiro256(seed)
		capacity := int(cap8%32) + 1
		refs := make([]uint64, 2000)
		for i := range refs {
			// Skewed popularity with bursts.
			refs[i] = r.Uint64n(8) * r.Uint64n(16)
		}
		fa := NewTaggedFA(capacity, 0)
		lruMisses := 0
		for _, v := range refs {
			if fa.Observe(v, 0) {
				lruMisses++
			}
		}
		return OptMisses(refs, capacity) <= lruMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOptLargeCapacityIsCompulsory(t *testing.T) {
	refs := []uint64{1, 2, 3, 1, 2, 3, 4, 4, 5}
	if got := OptMisses(refs, 100); got != 5 {
		t.Errorf("uncapacitated OPT misses = %d, want 5 (distinct vectors)", got)
	}
}

func TestOptMissRatio(t *testing.T) {
	refs := []uint64{1, 2, 1, 2}
	if got := OptMissRatio(refs, 2); got != 0.5 {
		t.Errorf("OptMissRatio = %v, want 0.5", got)
	}
	if OptMissRatio(nil, 4) != 0 {
		t.Error("empty refs should give 0")
	}
}

func TestOptPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("OptMissRatio(refs, 0) did not panic")
		}
	}()
	OptMissRatio([]uint64{1}, 0)
}

func BenchmarkOptMisses(b *testing.B) {
	r := rng.NewXoshiro256(1)
	refs := make([]uint64, 1<<16)
	for i := range refs {
		refs[i] = r.Uint64n(1 << 12)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptMisses(refs, 1024)
	}
}
