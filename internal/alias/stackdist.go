package alias

// StackDist computes exact LRU stack distances ("last-use distances"
// in the paper's terminology): for each reference to a vector V, the
// number of DISTINCT other vectors referenced since the previous
// reference to V. First-time references report Cold (-1).
//
// This is the quantity D in the paper's aliasing-probability formula
// p = 1 - (1 - 1/N)^D (section 5.2), and also yields FA-LRU miss
// ratios for any capacity in one pass: a reference misses an N-entry
// LRU table iff D >= N.
//
// The implementation is the classical O(log n)-per-reference
// algorithm: a Fenwick (binary indexed) tree over reference timestamps
// marks, for every distinct vector, the position of its most recent
// reference. The stack distance of a reference at time t to a vector
// last seen at time p is the number of marks in (p, t).
type StackDist struct {
	bit      []int          // Fenwick tree, 1-based
	lastPos  map[uint64]int // vector -> timestamp of latest reference
	now      int            // current timestamp (1-based, next to assign)
	histo    map[int]int    // distance -> count (Cold under key -1)
	accesses int
}

// Cold is the distance reported for first-time references.
const Cold = -1

// NewStackDist returns a profiler with capacity hint n references
// (it grows as needed).
func NewStackDist(hint int) *StackDist {
	if hint < 16 {
		hint = 16
	}
	return &StackDist{
		bit:     make([]int, hint+1),
		lastPos: make(map[uint64]int, hint/4),
		histo:   make(map[int]int),
	}
}

func (s *StackDist) grow(n int) {
	if n < len(s.bit) {
		return
	}
	size := len(s.bit)
	for size <= n {
		size *= 2
	}
	// Rebuild the tree with the larger size: Fenwick trees cannot be
	// resized in place, but the marked set is exactly the values in
	// lastPos, so reconstruct from it.
	s.bit = make([]int, size)
	for _, p := range s.lastPos {
		s.add(p, 1)
	}
}

func (s *StackDist) add(i, delta int) {
	for ; i < len(s.bit); i += i & (-i) {
		s.bit[i] += delta
	}
}

// sum returns the number of marks in [1, i].
func (s *StackDist) sum(i int) int {
	t := 0
	for ; i > 0; i -= i & (-i) {
		t += s.bit[i]
	}
	return t
}

// Observe records a reference to vector v and returns its last-use
// distance, or Cold for a first reference.
func (s *StackDist) Observe(v uint64) int {
	s.now++
	t := s.now
	s.grow(t)
	s.accesses++

	d := Cold
	if p, seen := s.lastPos[v]; seen {
		// Marks strictly after p and before t are exactly the distinct
		// vectors touched since the previous reference to v.
		d = s.sum(t-1) - s.sum(p)
		s.add(p, -1)
	}
	s.lastPos[v] = t
	s.add(t, 1)
	s.histo[d]++
	return d
}

// Accesses returns the number of references observed.
func (s *StackDist) Accesses() int { return s.accesses }

// Distinct returns the number of distinct vectors observed.
func (s *StackDist) Distinct() int { return len(s.lastPos) }

// Histogram returns the distance histogram (Cold under key -1). The
// map is live; callers must not modify it.
func (s *StackDist) Histogram() map[int]int { return s.histo }

// MissRatioAt returns the miss ratio an N-entry fully-associative LRU
// table would see on the observed stream: references with D >= N or
// D == Cold miss.
func (s *StackDist) MissRatioAt(n int) float64 {
	if s.accesses == 0 {
		return 0
	}
	misses := 0
	for d, count := range s.histo {
		if d == Cold || d >= n {
			misses += count
		}
	}
	return float64(misses) / float64(s.accesses)
}

// ColdRatio returns the fraction of references that were first uses —
// the compulsory aliasing ratio.
func (s *StackDist) ColdRatio() float64 {
	if s.accesses == 0 {
		return 0
	}
	return float64(s.histo[Cold]) / float64(s.accesses)
}
