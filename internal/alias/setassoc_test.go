package alias

import (
	"testing"
	"testing/quick"

	"gskew/internal/indexfn"
	"gskew/internal/rng"
)

func TestTaggedSAOneWayEqualsDM(t *testing.T) {
	// 1-way set-associative is exactly direct-mapped.
	f := func(seed uint64, n16 uint16) bool {
		fn := indexfn.NewGShare(5, 3)
		sa := NewTaggedSA(fn, 1)
		dm := NewTaggedDM(fn)
		r := rng.NewXoshiro256(seed)
		steps := int(n16%3000) + 1
		for i := 0; i < steps; i++ {
			addr, hist := r.Uint64n(512), r.Uint64n(8)
			if sa.Observe(addr, hist) != dm.Observe(addr, hist) {
				return false
			}
		}
		return sa.Misses() == dm.Misses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTaggedSAFullWidthEqualsFA(t *testing.T) {
	// A single set with N ways is exactly an N-entry fully-associative
	// LRU table. Use a bimodal(0-bit history) index of width... the
	// minimum index width is 1, so use 2 sets and compare against two
	// independent FA tables keyed by the index bit.
	fn := indexfn.NewBimodal(1)
	sa := NewTaggedSA(fn, 8)
	fa0 := NewTaggedFA(8, 0)
	fa1 := NewTaggedFA(8, 0)
	r := rng.NewXoshiro256(3)
	for i := 0; i < 20000; i++ {
		addr := r.Uint64n(64)
		saMiss := sa.Observe(addr, 0)
		var faMiss bool
		if addr&1 == 0 {
			faMiss = fa0.Observe(addr, 0)
		} else {
			faMiss = fa1.Observe(addr, 0)
		}
		if saMiss != faMiss {
			t.Fatalf("step %d: set-assoc diverged from per-set FA-LRU", i)
		}
	}
}

func TestTaggedSAAssociativityRemovesConflicts(t *testing.T) {
	// Two vectors ping-ponging in one set: a 1-way table misses every
	// time after warm-up; a 2-way table holds both.
	fn := indexfn.NewBimodal(2)
	oneWay := NewTaggedSA(fn, 1)
	twoWay := NewTaggedSA(fn, 2)
	for i := 0; i < 100; i++ {
		oneWay.Observe(0, 0)
		oneWay.Observe(4, 0)
		twoWay.Observe(0, 0)
		twoWay.Observe(4, 0)
	}
	if oneWay.Misses() != 200 {
		t.Errorf("1-way misses = %d, want 200 (pure ping-pong)", oneWay.Misses())
	}
	if twoWay.Misses() != 2 {
		t.Errorf("2-way misses = %d, want 2 (cold only)", twoWay.Misses())
	}
}

func TestTaggedSALRUWithinSet(t *testing.T) {
	// Three vectors in a 2-way set: LRU evicts the stalest.
	fn := indexfn.NewBimodal(1)
	sa := NewTaggedSA(fn, 2)
	a, b, c := uint64(0), uint64(2), uint64(4) // all land in set 0
	sa.Observe(a, 0)                           // miss: {a}
	sa.Observe(b, 0)                           // miss: {a,b}
	sa.Observe(a, 0)                           // hit, refreshes a
	if sa.Observe(c, 0) != true {
		t.Fatal("c should miss")
	}
	// b was LRU and evicted; a survives.
	if sa.Observe(a, 0) {
		t.Error("a was wrongly evicted")
	}
	if !sa.Observe(b, 0) {
		t.Error("b should have been evicted")
	}
}

func TestTaggedSAMonotoneInWays(t *testing.T) {
	// More associativity at equal total capacity never increases the
	// miss count on this workload mix (not a theorem in general, but
	// holds for the LRU-friendly streams we generate here).
	r := rng.NewXoshiro256(11)
	refs := make([][2]uint64, 30000)
	for i := range refs {
		refs[i] = [2]uint64{r.Uint64n(512) * r.Uint64n(4), r.Uint64n(16)}
	}
	miss := func(bits uint, ways int) int {
		sa := NewTaggedSA(indexfn.NewGShare(bits, 4), ways)
		for _, ref := range refs {
			sa.Observe(ref[0], ref[1])
		}
		return sa.Misses()
	}
	dm := miss(8, 1) // 256 x 1
	w2 := miss(7, 2) // 128 x 2
	w4 := miss(6, 4) // 64 x 4
	if !(w2 <= dm && w4 <= w2) {
		t.Errorf("associativity did not reduce misses: dm=%d 2w=%d 4w=%d", dm, w2, w4)
	}
}

func TestTaggedSAValidation(t *testing.T) {
	for _, ways := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ways=%d accepted", ways)
				}
			}()
			NewTaggedSA(indexfn.NewBimodal(4), ways)
		}()
	}
	sa := NewTaggedSA(indexfn.NewBimodal(4), 2)
	if sa.Entries() != 32 || sa.Ways() != 2 {
		t.Error("dims wrong")
	}
	if sa.MissRatio() != 0 {
		t.Error("empty ratio")
	}
}

func BenchmarkTaggedSAObserve(b *testing.B) {
	sa := NewTaggedSA(indexfn.NewGShare(10, 8), 4)
	r := rng.NewXoshiro256(1)
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 14)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sa.Observe(addrs[i&(1<<16-1)], uint64(i))
	}
}
