package alias

import (
	"testing"

	"gskew/internal/indexfn"
	"gskew/internal/rng"
)

func TestInterferenceKindString(t *testing.T) {
	names := map[InterferenceKind]string{
		Unaliased:    "unaliased",
		Harmless:     "harmless",
		Destructive:  "destructive",
		Constructive: "constructive",
		ColdOracle:   "cold-oracle",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if InterferenceKind(99).String() != "kind(99)" {
		t.Error("unknown kind string")
	}
}

func TestInterferenceUnaliasedStream(t *testing.T) {
	// A single branch in a big table never aliases: after the cold
	// first reference everything classifies Unaliased.
	n := NewInterference(indexfn.NewBimodal(8), 2)
	first := n.Observe(7, 0, true)
	if first != ColdOracle {
		t.Errorf("first reference = %v, want ColdOracle", first)
	}
	for i := 0; i < 50; i++ {
		if got := n.Observe(7, 0, true); got != Unaliased {
			t.Fatalf("reference %d = %v, want Unaliased", i, got)
		}
	}
	st := n.Stats()
	if st.Aliased() != 0 || st.Unaliased != 50 || st.ColdOracle != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInterferenceDestructive(t *testing.T) {
	// Two branches mapping to the same bimodal entry with opposite
	// stable directions, referenced alternately. The shared 2-bit
	// counter oscillates between weak- and strong-taken (the taken
	// branch re-strengthens it every other reference), so the
	// taken branch's references are aliased-but-harmless while every
	// not-taken reference is destructive: a 50/50 harmless/destructive
	// split with zero constructive occurrences.
	n := NewInterference(indexfn.NewBimodal(2), 2)
	a, b := uint64(0), uint64(4) // congruent mod 4
	// Warm the oracle and the table.
	n.Observe(a, 0, true)
	n.Observe(b, 0, false)
	destructive, harmless := 0, 0
	total := 0
	for i := 0; i < 100; i++ {
		switch n.Observe(a, 0, true) {
		case Destructive:
			destructive++
		case Harmless:
			harmless++
		}
		total++
		switch n.Observe(b, 0, false) {
		case Destructive:
			destructive++
		case Harmless:
			harmless++
		}
		total++
	}
	if destructive != total/2 {
		t.Errorf("destructive = %d, want exactly %d (every not-taken reference)", destructive, total/2)
	}
	if harmless != total/2 {
		t.Errorf("harmless = %d, want exactly %d (every taken reference)", harmless, total/2)
	}
	if n.Stats().Constructive != 0 {
		t.Errorf("unexpectedly constructive: %+v", n.Stats())
	}
}

func TestInterferenceConstructiveExists(t *testing.T) {
	// Craft a constructive case: branch A alternates (the oracle's
	// 2-bit counter is systematically wrong on alternation after it
	// locks weakly-taken... use outcome pattern TTNN repeating, which
	// 2-bit counters mispredict on transitions), while an aliasing
	// partner B keeps pushing the shared counter toward A's next
	// outcome by accident. Rather than over-engineer determinism, we
	// statistically require that SOME constructive occurrences appear
	// in a noisy aliased mix, while destructive ones dominate.
	n := NewInterference(indexfn.NewBimodal(2), 2)
	r := rng.NewXoshiro256(11)
	for i := 0; i < 30000; i++ {
		addr := r.Uint64n(16) // 16 branches in 4 entries: heavy aliasing
		taken := r.Bool(0.5)  // coin-flip outcomes
		n.Observe(addr, 0, taken)
	}
	st := n.Stats()
	if st.Constructive == 0 {
		t.Error("no constructive aliasing in a noisy aliased mix")
	}
	if st.Aliased() == 0 {
		t.Fatal("no aliasing at all; test misconfigured")
	}
}

func TestInterferenceDestructiveDominates(t *testing.T) {
	// The [21] finding the paper relies on: with realistic biased
	// branches, destructive aliasing far outweighs constructive.
	n := NewInterference(indexfn.NewGShare(6, 4), 2)
	r := rng.NewXoshiro256(13)
	// 200 branches with strong per-branch biases in a 64-entry table.
	bias := make(map[uint64]float64)
	hist := uint64(0)
	for i := 0; i < 60000; i++ {
		addr := r.Uint64n(200)
		p, ok := bias[addr]
		if !ok {
			p = 0.95
			if r.Bool(0.5) {
				p = 0.05
			}
			bias[addr] = p
		}
		taken := r.Bool(p)
		n.Observe(addr, hist, taken)
		hist = hist<<1 | map[bool]uint64{true: 1}[taken]
	}
	st := n.Stats()
	if st.Destructive <= 3*st.Constructive {
		t.Errorf("destructive (%d) should far exceed constructive (%d)",
			st.Destructive, st.Constructive)
	}
	if got := st.DestructiveRatio(); got <= 0 || got >= 1 {
		t.Errorf("DestructiveRatio = %v", got)
	}
	if got := st.ConstructiveRatio(); got < 0 || got >= 1 {
		t.Errorf("ConstructiveRatio = %v", got)
	}
	if st.References != 60000 {
		t.Errorf("References = %d", st.References)
	}
}

func TestInterferenceStatsConsistency(t *testing.T) {
	n := NewInterference(indexfn.NewGShare(4, 2), 2)
	r := rng.NewXoshiro256(3)
	for i := 0; i < 5000; i++ {
		n.Observe(r.Uint64n(64), r.Uint64n(4), r.Bool(0.7))
	}
	st := n.Stats()
	sum := st.Unaliased + st.Harmless + st.Destructive + st.Constructive + st.ColdOracle
	if sum != st.References {
		t.Errorf("categories sum to %d, references %d", sum, st.References)
	}
}
