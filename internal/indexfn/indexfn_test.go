package indexfn

import (
	"testing"
	"testing/quick"
)

func TestBimodalTruncates(t *testing.T) {
	b := NewBimodal(4)
	cases := []struct {
		addr uint64
		want uint64
	}{
		{0x0, 0x0},
		{0xf, 0xf},
		{0x10, 0x0},
		{0x123, 0x3},
		{0xffffffffffffffff, 0xf},
	}
	for _, c := range cases {
		if got := b.Index(c.addr, 0xdead); got != c.want {
			t.Errorf("Bimodal.Index(%#x) = %#x, want %#x", c.addr, got, c.want)
		}
	}
}

func TestBimodalIgnoresHistory(t *testing.T) {
	b := NewBimodal(8)
	f := func(addr, h1, h2 uint64) bool {
		return b.Index(addr, h1) == b.Index(addr, h2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGShareHistoryAlignment(t *testing.T) {
	// Footnote 1: with k < n, history bits are XORed with the
	// HIGH-order end of the index. With n=8, k=4 and addr=0, the
	// history h must appear at bits 7..4.
	g := NewGShare(8, 4)
	for h := uint64(0); h < 16; h++ {
		if got, want := g.Index(0, h), h<<4; got != want {
			t.Errorf("gshare(addr=0, hist=%#x) = %#x, want %#x", h, got, want)
		}
	}
}

func TestGShareEqualWidth(t *testing.T) {
	g := NewGShare(8, 8)
	f := func(addr, hist uint64) bool {
		return g.Index(addr, hist) == (addr^hist)&0xff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGShareLongHistoryFolds(t *testing.T) {
	// With k > n every history bit must still affect the index:
	// flipping any single history bit flips the index.
	g := NewGShare(8, 16)
	base := g.Index(0x1234, 0xabcd)
	for bit := uint(0); bit < 16; bit++ {
		flipped := g.Index(0x1234, 0xabcd^(1<<bit))
		if flipped == base {
			t.Errorf("history bit %d does not influence folded gshare index", bit)
		}
	}
}

func TestGShareZeroHistory(t *testing.T) {
	// k = 0 degenerates to bimodal.
	g := NewGShare(10, 0)
	b := NewBimodal(10)
	f := func(addr, hist uint64) bool {
		return g.Index(addr, hist) == b.Index(addr, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGSelectLayout(t *testing.T) {
	// n=8, k=3: index = hist[2:0] ++ addr[4:0].
	g := NewGSelect(8, 3)
	got := g.Index(0b10110, 0b101)
	want := uint64(0b101_10110)
	if got != want {
		t.Errorf("gselect layout: got %#b, want %#b", got, want)
	}
}

func TestGSelectHistoryDominates(t *testing.T) {
	// k >= n: only history bits reach the index. This is the regime
	// where the paper notes gselect collapses (4 addr bits at 64K/12h).
	g := NewGSelect(8, 12)
	f := func(a1, a2, hist uint64) bool {
		return g.Index(a1, hist) == g.Index(a2, hist)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGSelectAddressOnly(t *testing.T) {
	g := NewGSelect(8, 0)
	f := func(addr uint64) bool { return g.Index(addr, 0xffff) == addr&0xff }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndicesInRange(t *testing.T) {
	fns := []Func{
		NewBimodal(6),
		NewGShare(6, 4), NewGShare(6, 6), NewGShare(6, 12),
		NewGSelect(6, 4), NewGSelect(6, 6), NewGSelect(6, 12),
	}
	f := func(addr, hist uint64) bool {
		for _, fn := range fns {
			if fn.Index(addr, hist) >= 1<<fn.Bits() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstructorPanics(t *testing.T) {
	bad := []func(){
		func() { NewBimodal(0) },
		func() { NewBimodal(31) },
		func() { NewGShare(0, 4) },
		func() { NewGShare(8, 31) },
		func() { NewGSelect(31, 4) },
	}
	for i, fn := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("constructor case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNamesAndWidths(t *testing.T) {
	cases := []struct {
		fn   Func
		name string
		n, k uint
	}{
		{NewBimodal(8), "bimodal", 8, 0},
		{NewGShare(10, 4), "gshare", 10, 4},
		{NewGSelect(12, 12), "gselect", 12, 12},
	}
	for _, c := range cases {
		if c.fn.Name() != c.name {
			t.Errorf("Name() = %q, want %q", c.fn.Name(), c.name)
		}
		if c.fn.Bits() != c.n {
			t.Errorf("%s Bits() = %d, want %d", c.name, c.fn.Bits(), c.n)
		}
		if c.fn.HistoryBits() != c.k {
			t.Errorf("%s HistoryBits() = %d, want %d", c.name, c.fn.HistoryBits(), c.k)
		}
	}
}

func TestGShareVsGSelectDiffer(t *testing.T) {
	// Figure 3's point: the two mappings conflict on different pairs.
	// Construct the paper's scenario: two (addr,hist) pairs that
	// collide under gshare but not gselect, and vice versa.
	gsh := NewGShare(4, 2)
	gsel := NewGSelect(4, 2)

	// gshare collision: (a1 ^ h1<<2) == (a2 ^ h2<<2) with different
	// low addr bits -> gselect sees them apart.
	a1, h1 := uint64(0b0000), uint64(0b00)
	a2, h2 := uint64(0b0100), uint64(0b01)
	if gsh.Index(a1, h1) != gsh.Index(a2, h2) {
		t.Fatal("expected gshare collision")
	}
	if gsel.Index(a1, h1) == gsel.Index(a2, h2) {
		t.Fatal("gselect should separate this pair")
	}

	// gselect collision: same low address bits and same history, but
	// address bits within gshare's XOR zone differ, so gshare sees
	// them apart.
	c1, c2 := uint64(0b0110), uint64(0b1010) // low 2 bits equal (10)
	if gsel.Index(c1, 0b11) != gsel.Index(c2, 0b11) {
		t.Fatal("expected gselect collision (same low addr bits, same hist)")
	}
	if gsh.Index(c1, 0b11) == gsh.Index(c2, 0b11) {
		t.Fatal("gshare should separate this pair")
	}
}

func TestVectorLayout(t *testing.T) {
	// V = (addr bits, h_k..h_1): address shifted above k history bits.
	if got, want := Vector(0x3, 0x5, 4), uint64(0x3<<4|0x5); got != want {
		t.Errorf("Vector = %#x, want %#x", got, want)
	}
	// History is masked to k bits.
	if got, want := Vector(1, 0xff, 4), uint64(1<<4|0xf); got != want {
		t.Errorf("Vector mask = %#x, want %#x", got, want)
	}
	// k = 0 keeps only the address.
	if got, want := Vector(0x1234, 0xff, 0), uint64(0x1234); got != want {
		t.Errorf("Vector k=0 = %#x, want %#x", got, want)
	}
}

func TestVectorInjective(t *testing.T) {
	// Distinct (addr, hist) pairs map to distinct vectors (within the
	// masked history width).
	seen := make(map[uint64][2]uint64)
	for addr := uint64(0); addr < 64; addr++ {
		for hist := uint64(0); hist < 16; hist++ {
			v := Vector(addr, hist, 4)
			if prev, dup := seen[v]; dup {
				t.Fatalf("Vector collision: (%d,%d) and (%d,%d) -> %#x",
					addr, hist, prev[0], prev[1], v)
			}
			seen[v] = [2]uint64{addr, hist}
		}
	}
}

func BenchmarkGShareIndex(b *testing.B) {
	g := NewGShare(14, 12)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.Index(uint64(i), uint64(i)>>3)
	}
	_ = sink
}
