// Package indexfn implements the single-table index functions studied
// by the paper as baselines: bimodal (address bit truncation), gshare
// (address XOR history) and gselect (address/history concatenation).
//
// All functions map a word-aligned branch address and a global-history
// register onto a 2^n-entry table. Bit-layout details follow the paper:
//
//   - gshare: the low-order address bits are XORed with the global
//     history; when the history is shorter than the index, the history
//     is aligned with the HIGH-order end of the index (footnote 1,
//     after McFarling). When the history is longer than the index it is
//     folded down by XOR so no history bit is discarded.
//
//   - gselect: the index is the concatenation of the low (n-k) address
//     bits and the k history bits, history in the high part (GAs in
//     Yeh/Patt terminology). When k >= n the index is just the low n
//     history bits — this is the regime in which the paper observes
//     gselect degrading badly (only 4 address bits reach a 64K table
//     with 12 history bits).
//
//   - bimodal: plain address truncation, ignoring history.
package indexfn

import "fmt"

// Func computes a table index from a word-aligned branch address and a
// history register. Implementations are pure functions and safe for
// concurrent use.
type Func interface {
	// Index returns a value in [0, 2^Bits()).
	Index(addr, hist uint64) uint64
	// Bits returns the index width n.
	Bits() uint
	// HistoryBits returns the number of history bits consumed.
	HistoryBits() uint
	// Name returns a short identifier such as "gshare".
	Name() string
}

func checkWidths(n, k uint) {
	if n < 1 || n > 30 {
		panic(fmt.Sprintf("indexfn: index width %d out of range [1,30]", n))
	}
	if k > 30 {
		panic(fmt.Sprintf("indexfn: history length %d out of range [0,30]", k))
	}
}

// Bimodal indexes a table with the low n bits of the branch address.
type Bimodal struct {
	n    uint
	mask uint64
}

// NewBimodal returns a bimodal index function for a 2^n-entry table.
func NewBimodal(n uint) *Bimodal {
	checkWidths(n, 0)
	return &Bimodal{n: n, mask: uint64(1)<<n - 1}
}

// Index implements Func. The history argument is ignored.
func (b *Bimodal) Index(addr, _ uint64) uint64 { return addr & b.mask }

// Bits implements Func.
func (b *Bimodal) Bits() uint { return b.n }

// HistoryBits implements Func; bimodal uses none.
func (b *Bimodal) HistoryBits() uint { return 0 }

// Name implements Func.
func (b *Bimodal) Name() string { return "bimodal" }

// GShare XORs k history bits into an n-bit address index.
type GShare struct {
	n, k uint
	mask uint64
}

// NewGShare returns a gshare index function with an n-bit index and k
// history bits.
func NewGShare(n, k uint) *GShare {
	checkWidths(n, k)
	return &GShare{n: n, k: k, mask: uint64(1)<<n - 1}
}

// Index implements Func.
func (g *GShare) Index(addr, hist uint64) uint64 {
	h := foldHistory(hist, g.k, g.n)
	return (addr ^ h) & g.mask
}

// foldHistory positions k history bits within an n-bit index field.
// For k < n the history occupies the high-order end of the field
// (paper footnote 1). For k == n it fills the field. For k > n the
// history is XOR-folded down to n bits so every history bit still
// influences the index.
func foldHistory(hist uint64, k, n uint) uint64 {
	if k == 0 {
		return 0
	}
	hist &= uint64(1)<<k - 1
	if k <= n {
		return hist << (n - k)
	}
	mask := uint64(1)<<n - 1
	out := uint64(0)
	for hist != 0 {
		out ^= hist & mask
		hist >>= n
	}
	return out
}

// Bits implements Func.
func (g *GShare) Bits() uint { return g.n }

// HistoryBits implements Func.
func (g *GShare) HistoryBits() uint { return g.k }

// Name implements Func.
func (g *GShare) Name() string { return "gshare" }

// GSelect concatenates k history bits with (n-k) address bits.
type GSelect struct {
	n, k uint
	mask uint64
}

// NewGSelect returns a gselect index function with an n-bit index and
// k history bits.
func NewGSelect(n, k uint) *GSelect {
	checkWidths(n, k)
	return &GSelect{n: n, k: k, mask: uint64(1)<<n - 1}
}

// Index implements Func.
func (g *GSelect) Index(addr, hist uint64) uint64 {
	if g.k >= g.n {
		return hist & g.mask
	}
	addrBits := g.n - g.k
	a := addr & (uint64(1)<<addrBits - 1)
	h := hist & (uint64(1)<<g.k - 1)
	return (h << addrBits) | a
}

// Bits implements Func.
func (g *GSelect) Bits() uint { return g.n }

// HistoryBits implements Func.
func (g *GSelect) HistoryBits() uint { return g.k }

// Name implements Func.
func (g *GSelect) Name() string { return "gselect" }

// Vector builds the paper's information vector
// V = (a_N ... a_2, h_k ... h_1): the word-aligned branch address
// shifted up by k bits, with the k history bits in the low positions.
// This is the input to the skewing functions and the identity stored in
// tagged tables when measuring aliasing.
func Vector(addr, hist uint64, k uint) uint64 {
	if k > 63 {
		panic("indexfn: history length out of range")
	}
	return (addr << k) | (hist & (uint64(1)<<k - 1))
}
